// vbatt — command-line driver for the library.
//
//   vbatt trace     --source=wind --days=30 --seed=7 --out=trace.csv
//   vbatt fleet     --solar=4 --wind=6 --days=7 [--storms]
//   vbatt site-sim  --source=wind --days=90 --servers=700
//   vbatt schedule  --policy=mip --days=7 [--vm-level]
//                   [--chaos=<intensity> | --chaos-csv=faults.csv]
//                   [--chaos-seed=7]
//                   [--workload=deadline|harvest|mixed] [--batch-seed=17]
//                   [--objective=cost|carbon|peak]
//   vbatt forecast  --source=solar --lead=24
//
// Every run is deterministic for a given --seed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <numeric>
#include <string>

#include "vbatt/fault/injector.h"
#include "vbatt/vbatt.h"

namespace {

using namespace vbatt;

/// --key=value / --flag argument bag.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      const std::string body = arg.substr(2);
      const std::size_t eq = body.find('=');
      if (eq == std::string::npos) {
        values_.insert_or_assign(body, std::string{"1"});
      } else {
        values_.insert_or_assign(body.substr(0, eq), body.substr(eq + 1));
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  bool flag(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
};

energy::PowerTrace make_trace(const Args& args, std::size_t ticks) {
  const auto seed = static_cast<std::uint64_t>(args.number("seed", 11));
  if (args.get("source", "wind") == "solar") {
    energy::SolarConfig config;
    config.seed = seed;
    return energy::SolarModel{config}.generate(util::TimeAxis{15}, ticks);
  }
  energy::WindConfig config;
  config.seed = seed;
  return energy::WindModel{config}.generate(util::TimeAxis{15}, ticks);
}

int cmd_trace(const Args& args) {
  const auto days = static_cast<std::size_t>(args.number("days", 30));
  const energy::PowerTrace trace = make_trace(args, 96 * days);
  const std::string out = args.get("out", "trace.csv");
  energy::save_trace_csv(trace, out);
  stats::Sampler s{trace.normalized_series()};
  std::printf("wrote %zu samples to %s\n", trace.size(), out.c_str());
  std::printf("median=%.3f p75=%.3f p99=%.3f zeros=%.1f%% cov=%.2f\n",
              s.median(), s.percentile(75), s.percentile(99),
              100.0 * s.zero_fraction(), energy::trace_cov(trace));
  return 0;
}

int cmd_fleet(const Args& args) {
  const auto days = static_cast<std::size_t>(args.number("days", 7));
  energy::FleetConfig config;
  config.n_solar = static_cast<int>(args.number("solar", 4));
  config.n_wind = static_cast<int>(args.number("wind", 6));
  config.region_km = args.number("region", 2500.0);
  config.enable_storms = args.flag("storms");
  config.seed = static_cast<std::uint64_t>(args.number("seed", 1234));
  const energy::Fleet fleet =
      energy::generate_fleet(config, util::TimeAxis{15}, 96 * days);

  std::printf("%-10s %-6s %8s %9s %10s\n", "site", "kind", "cov",
              "stable%", "MWh/day");
  std::vector<const energy::PowerTrace*> traces;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const energy::EnergySplit split = energy::decompose(fleet.traces[i]);
    std::printf("%-10s %-6s %8.2f %8.1f%% %10.0f\n",
                fleet.specs[i].name.c_str(),
                to_string(fleet.specs[i].source).c_str(),
                energy::trace_cov(fleet.traces[i]),
                100.0 * split.stable_fraction(),
                split.total_mwh() / static_cast<double>(days));
    traces.push_back(&fleet.traces[i]);
  }
  const energy::PowerTrace combined = energy::combine(traces);
  const energy::EnergySplit split = energy::decompose(combined);
  std::printf("%-10s %-6s %8.2f %8.1f%% %10.0f\n", "COMBINED", "-",
              energy::trace_cov(combined), 100.0 * split.stable_fraction(),
              split.total_mwh() / static_cast<double>(days));

  int improved = 0;
  int total = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    for (std::size_t j = i + 1; j < fleet.size(); ++j) {
      ++total;
      if (energy::pair_cov_improvement(fleet.traces[i], fleet.traces[j]) >
          0.5) {
        ++improved;
      }
    }
  }
  std::printf("%d/%d site pairs improve cov by >50%%\n", improved, total);
  return 0;
}

int cmd_site_sim(const Args& args) {
  const auto days = static_cast<std::size_t>(args.number("days", 90));
  const energy::PowerTrace trace = make_trace(args, 96 * days);

  dcsim::SiteSimConfig config;
  config.site.n_servers = static_cast<int>(args.number("servers", 700));
  workload::GeneratorConfig gen;
  const double cores = config.site.n_servers * config.site.server.cores;
  const double per_rate =
      workload::expected_steady_cores(gen) / gen.arrivals_per_hour;
  gen.arrivals_per_hour = args.number("load", 0.35) * cores / per_rate;
  const auto vms = workload::VmTraceGenerator{gen}.generate(
      util::TimeAxis{15}, trace.size());

  dcsim::BestFitPolicy policy;
  const dcsim::SiteSimResult result =
      dcsim::simulate_site(trace, vms, config, policy);
  const double out_total =
      std::accumulate(result.out_gb.begin(), result.out_gb.end(), 0.0);
  const double in_total =
      std::accumulate(result.in_gb.begin(), result.in_gb.end(), 0.0);
  std::printf("%zu days on a %d-server %s-powered site (%zu VM arrivals):\n",
              days, config.site.n_servers,
              args.get("source", "wind").c_str(), vms.size());
  std::printf("  out-migration: %.0f GB, in-migration: %.0f GB\n", out_total,
              in_total);
  std::printf("  %.0f%% of power changes caused no migration\n",
              100.0 * result.no_migration_fraction());
  std::printf("  evicted=%lld relaunched=%lld rejected=%lld\n",
              static_cast<long long>(result.vms_evicted),
              static_cast<long long>(result.vms_relaunched),
              static_cast<long long>(result.vms_rejected));
  return 0;
}

int cmd_schedule(const Args& args) {
  const auto days = static_cast<std::size_t>(args.number("days", 7));
  energy::FleetConfig fleet_config;
  fleet_config.n_solar = static_cast<int>(args.number("solar", 4));
  fleet_config.n_wind = static_cast<int>(args.number("wind", 6));
  fleet_config.region_km = args.number("region", 2500.0);
  fleet_config.enable_storms = args.flag("storms");
  const energy::Fleet fleet =
      energy::generate_fleet(fleet_config, util::TimeAxis{15}, 96 * days);
  core::VbGraphConfig graph_config;
  graph_config.cores_per_mw = args.number("cores-per-mw", 20.0);
  const core::VbGraph graph{fleet, graph_config};

  workload::AppGeneratorConfig app_config;
  app_config.apps_per_hour = args.number("apps-per-hour", 2.2);
  const auto apps =
      workload::generate_apps(app_config, util::TimeAxis{15}, 96 * days);

  // --chaos=<intensity> injects a seeded fault schedule (--chaos-seed);
  // --chaos-csv=<path> replays one from disk instead. Without either flag
  // no injector exists and the output is byte-identical to a chaos-free
  // build.
  const bool chaos = args.flag("chaos") || args.flag("chaos-csv");
  std::unique_ptr<fault::FaultInjector> injector;
  if (chaos) {
    fault::FaultSchedule schedule;
    const double seed_arg = args.number("chaos-seed", 7);
    if (seed_arg < 0) {
      std::fprintf(stderr, "ChaosConfig: field 'chaos-seed' must be >= 0, "
                           "got %g\n", seed_arg);
      return 2;
    }
    const auto chaos_seed = static_cast<std::uint64_t>(seed_arg);
    if (args.flag("chaos-csv")) {
      // The strict loader rejects out-of-range sites/ticks and overlapping
      // same-site windows with line/column positions.
      schedule = fault::load_schedule_csv(
          args.get("chaos-csv", ""),
          fault::ScheduleLoadLimits{graph.n_sites(), graph.n_ticks()});
    } else {
      fault::ChaosConfig chaos_config;
      chaos_config.intensity = args.number("chaos", 1.0);
      fault::validate_chaos_config(chaos_config);
      schedule = fault::make_chaos_schedule(graph, chaos_config, chaos_seed);
    }
    injector = std::make_unique<fault::FaultInjector>(
        graph, std::move(schedule), chaos_seed, /*check_invariants=*/true);
  }
  const core::VbGraph& sim_graph = chaos ? injector->graph() : graph;
  core::FaultConfig fault_config;
  fault_config.hooks = injector.get();

  // --workload=deadline|harvest|mixed runs a batch overlay on top of the
  // service workload; --objective=cost|carbon|peak swaps the MIP's
  // second-stage objective (and for cost/carbon attaches the matching
  // per-site signal so the econ ledger meters the run). Both are strictly
  // opt-in: without the flags no overlay or series exists and the output
  // is byte-identical to a build without them.
  const std::string workload_mode = args.get("workload", "");
  workload::BatchWorkload batch;
  if (!workload_mode.empty()) {
    workload::BatchGeneratorConfig batch_config;
    batch_config.seed =
        static_cast<std::uint64_t>(args.number("batch-seed", 17));
    if (workload_mode == "deadline") {
      batch_config.tasks_per_hour = 0.0;
    } else if (workload_mode == "harvest") {
      batch_config.jobs_per_hour = 0.0;
    } else if (workload_mode != "mixed") {
      std::fprintf(stderr, "unknown --workload (deadline|harvest|mixed)\n");
      return 2;
    }
    batch =
        workload::generate_batch(batch_config, util::TimeAxis{15}, 96 * days);
  }
  const std::string objective = args.get("objective", "");
  energy::SiteSeries econ_series;
  if (objective == "cost") {
    econ_series = energy::make_price_series({}, util::TimeAxis{15},
                                            graph.n_sites(), graph.n_ticks());
  } else if (objective == "carbon") {
    econ_series = energy::make_carbon_series({}, util::TimeAxis{15},
                                             graph.n_sites(), graph.n_ticks());
  } else if (!objective.empty() && objective != "peak") {
    std::fprintf(stderr, "unknown --objective (cost|carbon|peak)\n");
    return 2;
  }
  core::ScenarioExtensions ext;
  if (!batch.empty()) ext.batch = &batch;
  if (objective == "cost") ext.price = &econ_series;
  if (objective == "carbon") ext.carbon = &econ_series;

  const std::string policy = args.get("policy", "mip");
  core::SimResult result{graph.n_sites(), graph.n_ticks()};
  if (policy == "replication") {
    if (chaos) {
      std::fprintf(stderr, "--chaos is not supported with --policy=replication\n");
      return 2;
    }
    if (ext.any() || !objective.empty()) {
      std::fprintf(stderr, "--workload / --objective are not supported with "
                           "--policy=replication\n");
      return 2;
    }
    result = core::run_replication_simulation(graph, apps, {});
  } else {
    std::unique_ptr<core::Scheduler> scheduler;
    if (!objective.empty() && policy != "mip") {
      std::fprintf(stderr, "--objective requires --policy=mip\n");
      return 2;
    }
    if (objective == "cost") {
      scheduler = std::make_unique<core::MipScheduler>(
          core::make_mip_cost_config(&econ_series));
    } else if (objective == "carbon") {
      scheduler = std::make_unique<core::MipScheduler>(
          core::make_mip_carbon_config(&econ_series));
    } else if (objective == "peak") {
      scheduler =
          std::make_unique<core::MipScheduler>(core::make_mip_peak_config());
    } else if (policy == "greedy") {
      scheduler = std::make_unique<core::GreedyScheduler>();
    } else if (policy == "mip24h") {
      scheduler =
          std::make_unique<core::MipScheduler>(core::make_mip24h_config());
    } else if (policy == "mippeak") {
      scheduler =
          std::make_unique<core::MipScheduler>(core::make_mip_peak_config());
    } else if (policy == "mip") {
      scheduler =
          std::make_unique<core::MipScheduler>(core::make_mip_config());
    } else {
      std::fprintf(stderr,
                   "unknown --policy (greedy|mip|mip24h|mippeak|replication)\n");
      return 2;
    }
    if (args.flag("vm-level")) {
      // The pool fans per-site shrink/energy; output is thread-invariant.
      core::VmLevelConfig vm_config;
      vm_config.faults.hooks = injector.get();
      vm_config.ext = ext.any() ? &ext : nullptr;
      const core::VmLevelResult vm = core::run_vm_level_simulation(
          sim_graph, apps, *scheduler, vm_config, &util::ThreadPool::shared());
      result = vm.base;
      std::printf("vm-level: %lld VM migrations, %lld fragmentation "
                  "failures, %lld powered server-ticks\n",
                  static_cast<long long>(vm.vm_migrations),
                  static_cast<long long>(vm.fragmentation_failures),
                  static_cast<long long>(vm.powered_server_ticks));
    } else {
      result = core::run_simulation(sim_graph, apps, *scheduler, {},
                                    chaos ? &fault_config : nullptr,
                                    ext.any() ? &ext : nullptr);
    }
  }

  const bool interrupted = util::shutdown_requested();
  if (interrupted) {
    // Flush what we have: series past completed_ticks are untouched zeros,
    // so the summary below covers exactly the simulated prefix.
    std::fprintf(stderr,
                 "interrupted by signal %d: partial results over %lld of %zu "
                 "ticks\n",
                 util::shutdown_signal(),
                 static_cast<long long>(result.completed_ticks),
                 graph.n_ticks());
  }
  const core::PolicyRow row = core::summarize(policy, result);
  std::printf("%s over %zu days (%zu apps):\n", policy.c_str(), days,
              apps.size());
  std::printf("  total=%.0f GB p99=%.0f peak=%.0f std=%.0f zero=%.0f%%\n",
              row.total_gb, row.p99_gb, row.peak_gb, row.std_gb,
              100.0 * row.zero_fraction);
  std::printf("  planned=%lld forced=%lld displaced=%lld energy=%.1f MWh\n",
              static_cast<long long>(row.planned_migrations),
              static_cast<long long>(row.forced_migrations),
              static_cast<long long>(row.displaced_stable_core_ticks),
              row.energy_mwh);
  const core::AvailabilityReport availability =
      core::availability_report(result, apps, graph.n_ticks());
  const energy::CarbonReport carbon = energy::compare_carbon(
      energy::CarbonConfig{}, util::TimeAxis{15}, result.energy_mwh_per_tick);
  std::printf("  availability: mean=%.4f min=%.4f three-nines=%.0f%%\n",
              availability.mean, availability.min,
              100.0 * availability.three_nines_fraction);
  std::printf("  carbon: %.2f tCO2 avoided vs grid (%.0f%%)\n",
              carbon.avoided_tco2(), 100.0 * carbon.avoided_fraction());
  if (chaos) {
    std::printf("  chaos: faulted-site-ticks=%lld retried=%lld "
                "abandoned=%lld fallbacks=%lld downtime-ticks=%lld\n",
                static_cast<long long>(result.faulted_site_ticks),
                static_cast<long long>(result.retried_moves),
                static_cast<long long>(result.abandoned_moves),
                static_cast<long long>(result.fallback_activations),
                static_cast<long long>(result.stable_vm_downtime_ticks));
  }
  if (!batch.empty()) {
    const workload::BatchStats& b = result.batch;
    std::printf("  batch: jobs=%lld done=%lld missed=%lld | harvest "
                "goodput=%lld/%lld core-ticks, tasks done=%lld missed=%lld, "
                "suspends=%lld resumes=%lld\n",
                static_cast<long long>(batch.jobs.size()),
                static_cast<long long>(b.deadline_jobs_completed),
                static_cast<long long>(b.deadline_jobs_missed),
                static_cast<long long>(b.harvest_goodput_core_ticks),
                static_cast<long long>(b.harvest_offered_core_ticks),
                static_cast<long long>(b.harvest_tasks_completed),
                static_cast<long long>(b.harvest_deadline_misses),
                static_cast<long long>(b.suspend_episodes),
                static_cast<long long>(b.resume_episodes));
  }
  if (objective == "cost") {
    std::printf("  electricity: $%.2f over the run\n", result.cost_usd);
  } else if (objective == "carbon") {
    std::printf("  grid-mix carbon: %.1f kgCO2 over the run\n",
                result.carbon_kg);
  }
  return interrupted ? util::kInterruptedExitCode : 0;
}

int cmd_forecast(const Args& args) {
  const auto days = static_cast<std::size_t>(args.number("days", 365));
  const energy::PowerTrace trace = make_trace(args, 96 * days);
  const energy::Forecaster forecaster;
  if (args.flag("lead")) {
    const double lead = args.number("lead", 24.0);
    std::printf("MAPE @ %.0f h: %.1f%%\n", lead,
                forecaster.measured_mape(trace, lead));
    return 0;
  }
  for (const double lead : {3.0, 6.0, 12.0, 24.0, 48.0, 96.0, 168.0}) {
    std::printf("  %5.0f h: %5.1f%%\n", lead,
                forecaster.measured_mape(trace, lead));
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: vbatt <command> [--key=value ...]\n"
               "commands:\n"
               "  trace      generate a power trace CSV\n"
               "  fleet      summarize a generated VB fleet\n"
               "  site-sim   single-site migration simulation (Fig 4)\n"
               "  schedule   multi-site policy run (Table 1); --chaos=<x>\n"
               "             injects a seeded fault schedule;\n"
               "             --workload=deadline|harvest|mixed adds a batch\n"
               "             overlay; --objective=cost|carbon|peak swaps the\n"
               "             MIP's second-stage objective\n"
               "  forecast   forecast-accuracy report (Fig 5)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  util::install_shutdown_handlers();
  const std::string command = argv[1];
  const Args args{argc, argv, 2};
  try {
    if (command == "trace") return cmd_trace(args);
    if (command == "fleet") return cmd_fleet(args);
    if (command == "site-sim") return cmd_site_sim(args);
    if (command == "schedule") return cmd_schedule(args);
    if (command == "forecast") return cmd_forecast(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vbatt: %s\n", e.what());
    return 2;
  }
  return usage();
}
