// vbatt_fuzz — deterministic property-based fuzzing front end.
//
//   vbatt_fuzz --suite=all --cases=200 --seed=1
//   vbatt_fuzz --suite=sim,solver --cases=50
//   vbatt_fuzz --replay='prop=sim.conservation;seed=42;sites=1;...'
//   vbatt_fuzz --list
//
// Exit codes: 0 all properties held, 1 violation found (a minimized spec
// and the exact replay command are printed), 2 usage error.
//
// --json=PATH writes a machine-readable summary. The JSON is byte-stable
// for a given build + flags by default; --timing adds wall-clock fields
// for humans and is deliberately excluded from that guarantee.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "vbatt/testkit/property.h"
#include "vbatt/testkit/spec.h"
#include "vbatt/testkit/suites.h"

namespace {

using vbatt::testkit::CheckOptions;
using vbatt::testkit::Property;
using vbatt::testkit::PropertyReport;
using vbatt::testkit::Spec;

struct Options {
  std::vector<std::string> suites;  // empty = all
  std::uint64_t cases = 100;
  std::uint64_t seed = 1;
  std::optional<std::string> replay;
  std::optional<std::string> json_path;
  bool timing = false;
  bool list = false;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --suite=all|NAME[,NAME...]  suites or suite.property names\n"
      << "  --cases=N                   cases per property (default 100)\n"
      << "  --seed=S                    root seed (default 1)\n"
      << "  --replay=SPEC               re-run one exact case and exit\n"
      << "  --json=PATH                 write a machine-readable summary\n"
      << "  --timing                    include wall-clock ms in output\n"
      << "  --list                      list registered properties\n";
  return 2;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) -> std::optional<std::string> {
      const std::size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) != 0) return std::nullopt;
      return arg.substr(n);
    };
    if (const auto v = value_of("--suite=")) {
      if (*v != "all") {
        std::stringstream ss{*v};
        std::string name;
        while (std::getline(ss, name, ',')) {
          if (!name.empty()) opts.suites.push_back(name);
        }
      }
    } else if (const auto v = value_of("--cases=")) {
      if (!parse_u64(*v, opts.cases) || opts.cases == 0) return std::nullopt;
    } else if (const auto v = value_of("--seed=")) {
      if (!parse_u64(*v, opts.seed)) return std::nullopt;
    } else if (const auto v = value_of("--replay=")) {
      opts.replay = *v;
    } else if (const auto v = value_of("--json=")) {
      opts.json_path = *v;
    } else if (arg == "--timing") {
      opts.timing = true;
    } else if (arg == "--list") {
      opts.list = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  return opts;
}

bool selected(const Property& prop, const std::vector<std::string>& names) {
  if (names.empty()) return true;
  for (const std::string& name : names) {
    if (name == prop.suite || name == prop.full_name()) return true;
  }
  return false;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct TimedReport {
  const Property* prop = nullptr;
  PropertyReport report;
  std::int64_t ms = 0;
};

void write_json(const std::string& path, const Options& opts,
                const std::vector<TimedReport>& runs,
                std::uint64_t violations) {
  // Group in registration order but emit per suite, preserving order of
  // first appearance.
  std::vector<std::string> suite_order;
  std::map<std::string, std::vector<const TimedReport*>> by_suite;
  for (const TimedReport& run : runs) {
    const std::string& suite = run.prop->suite;
    if (by_suite.find(suite) == by_suite.end()) suite_order.push_back(suite);
    by_suite[suite].push_back(&run);
  }

  std::ofstream out{path, std::ios::binary};
  out << "{\n"
      << "  \"tool\": \"vbatt_fuzz\",\n"
      << "  \"seed\": " << opts.seed << ",\n"
      << "  \"cases_per_property\": " << opts.cases << ",\n"
      << "  \"suites\": [\n";
  for (std::size_t s = 0; s < suite_order.size(); ++s) {
    const std::string& suite = suite_order[s];
    out << "    {\"suite\": \"" << json_escape(suite)
        << "\", \"properties\": [\n";
    const auto& members = by_suite[suite];
    for (std::size_t p = 0; p < members.size(); ++p) {
      const TimedReport& run = *members[p];
      out << "      {\"name\": \"" << json_escape(run.prop->name)
          << "\", \"cases\": "
          << run.report.cases_run << ", \"failures\": [";
      for (std::size_t f = 0; f < run.report.failures.size(); ++f) {
        const auto& fail = run.report.failures[f];
        out << (f ? ", " : "") << "{\"case\": " << fail.case_index
            << ", \"spec\": \"" << json_escape(fail.minimized.to_string())
            << "\", \"message\": \"" << json_escape(fail.message) << "\"}";
      }
      out << "]";
      if (opts.timing) out << ", \"ms\": " << run.ms;
      out << "}" << (p + 1 < members.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (s + 1 < suite_order.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"violations\": " << violations << ",\n"
      << "  \"ok\": " << (violations == 0 ? "true" : "false") << "\n"
      << "}\n";
}

int run_replay(const std::vector<Property>& registry,
               const std::string& text) {
  Spec spec;
  try {
    spec = Spec::parse(text);
  } catch (const std::exception& e) {
    std::cerr << "bad spec: " << e.what() << "\n";
    return 2;
  }
  try {
    const auto result = vbatt::testkit::replay(registry, spec);
    if (result.ok) {
      std::cout << "PASS " << spec.get("prop", std::string{}) << "\n";
      return 0;
    }
    std::cout << "FAIL " << spec.get("prop", std::string{}) << "\n"
              << "  " << result.message << "\n"
              << "  spec: " << spec.to_string() << "\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse_args(argc, argv);
  if (!parsed) return usage(argv[0]);
  const Options& opts = *parsed;

  const std::vector<Property> registry = vbatt::testkit::all_properties();

  if (opts.list) {
    for (const Property& prop : registry) {
      std::cout << prop.full_name() << "\n";
    }
    return 0;
  }
  if (opts.replay) return run_replay(registry, *opts.replay);

  std::vector<TimedReport> runs;
  std::uint64_t violations = 0;
  for (const Property& prop : registry) {
    if (!selected(prop, opts.suites)) continue;
    CheckOptions check;
    check.seed = opts.seed;
    check.cases = opts.cases;
    const auto t0 = std::chrono::steady_clock::now();
    TimedReport run;
    run.prop = &prop;
    run.report = vbatt::testkit::check(prop, check);
    run.ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
    violations += run.report.failures.size();

    std::cout << (run.report.ok() ? "PASS" : "FAIL") << " "
              << prop.full_name() << " (" << run.report.cases_run
              << " cases";
    if (opts.timing) std::cout << ", " << run.ms << " ms";
    std::cout << ")\n";
    for (const auto& fail : run.report.failures) {
      std::cout << "  case " << fail.case_index << ": " << fail.message
                << "\n"
                << "  minimized (" << fail.shrink_steps
                << " shrink steps): " << fail.minimized.to_string() << "\n"
                << "  replay: " << argv[0] << " --replay='"
                << fail.minimized.to_string() << "'\n";
    }
    runs.push_back(std::move(run));
  }

  if (runs.empty()) {
    std::cerr << "no properties matched --suite selection\n";
    return 2;
  }
  if (opts.json_path) write_json(*opts.json_path, opts, runs, violations);

  std::cout << (violations == 0 ? "OK" : "VIOLATIONS") << ": "
            << runs.size() << " properties, "
            << violations << " violation(s)\n";
  return violations == 0 ? 0 : 1;
}
