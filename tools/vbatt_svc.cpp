// vbatt_svc — resident control-plane service driver.
//
// Scenario mode (default) builds the same (graph, apps, faults) triple the
// CLI's `schedule` command builds and feeds it through the ControlPlane as
// an event stream:
//
//   vbatt_svc --days=2 --policy=mip [--chaos=1.0 --chaos-seed=7]
//             [--heartbeats] [--verify] [--log=run.evlog]
//             [--snapshot=run.snap --snapshot-every=100]
//             [--recover] [--kill-at=N] [--state-out=final.snap]
//
//   --verify    run the batch engine on the same scenario and require the
//               two SimResults to be byte-equal (fingerprint compare).
//   --log       durable event log; with --snapshot/--snapshot-every a
//               snapshot is written every N ticks.
//   --recover   resume from --snapshot + --log instead of starting fresh:
//               restore, drop any torn log tail, replay, then feed the
//               remaining scenario events.
//   --kill-at=N _exit(9) immediately after the N-th accepted event — the
//               crash half of the kill-and-recover tests (no signal races).
//   --state-out write the final snapshot bytes; recovery tests compare
//               this file across interrupted and uninterrupted runs.
//
// Stdin mode (--stdin) reads operator commands, one per line:
//   tick [n] | power <site> <start> <v>... | arrive <id> <arrival>
//   <lifetime> <cores> <mem_gb> <n_stable> <n_degradable> | depart <id> |
//   job <id> <arrival> <cores> <work_core_ticks> <deadline> |
//   task <id> <arrival> <cores> <work_core_ticks> <resume_lat> <deadline> |
//   fault <blackout|brownout|forecast|link|server> <start> <end> <site>
//   [alpha] [sigma] [peer] [count] | heartbeat <site> | drain <site> |
//   undrain <site> | pause | resume | reconfigure <spec> | status |
//   snapshot | quit
//
// SIGINT/SIGTERM interrupt either mode cooperatively: the log is already
// flushed per record, a final status is printed, and the process exits
// with code 40 (util::kInterruptedExitCode).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "vbatt/fault/stream.h"
#include "vbatt/svc/scenario.h"
#include "vbatt/svc/service.h"
#include "vbatt/util/signal.h"

namespace {

using namespace vbatt;

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      const std::string body = arg.substr(2);
      const std::size_t eq = body.find('=');
      if (eq == std::string::npos) {
        values_.insert_or_assign(body, std::string{"1"});
      } else {
        values_.insert_or_assign(body.substr(0, eq), body.substr(eq + 1));
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  bool flag(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
};

svc::ServiceConfig service_config(const Args& args) {
  svc::ServiceConfig config;
  config.policy = args.get("policy", "mip");
  config.noise_seed = static_cast<std::uint64_t>(args.number("chaos-seed", 7));
  config.replan_on_fault = args.flag("replan-on-fault");
  if (args.flag("heartbeats") || args.flag("health")) {
    config.health.enabled = true;
    config.health.suspect_after =
        static_cast<util::Tick>(args.number("suspect-after", 4));
    config.health.dead_after =
        static_cast<util::Tick>(args.number("dead-after", 12));
    config.health.recovering_ticks =
        static_cast<util::Tick>(args.number("recovering-ticks", 2));
  }
  return config;
}

void write_file(const std::string& path, const std::string& bytes) {
  // Write-then-rename so a crash mid-write never leaves a half snapshot
  // where the recovery path expects a whole one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.flush()) {
      throw std::runtime_error{"cannot write " + tmp};
    }
  }
  std::filesystem::rename(tmp, path);
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"cannot open " + path};
  return std::string{std::istreambuf_iterator<char>{in},
                     std::istreambuf_iterator<char>{}};
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

void print_summary(const svc::ControlPlane& service) {
  const svc::ServiceStatus status = service.status();
  std::printf("%s\n", status.to_string().c_str());
  const std::vector<double>& replans = service.replan_latencies_ms();
  std::printf("replans=%zu p50=%.2fms p99=%.2fms\n", replans.size(),
              percentile(replans, 0.50), percentile(replans, 0.99));
}

int interrupted_exit(const svc::ControlPlane& service) {
  std::fprintf(stderr, "interrupted by signal %d at tick %lld (seq %llu)\n",
               util::shutdown_signal(),
               static_cast<long long>(service.now()),
               static_cast<unsigned long long>(service.last_seq()));
  print_summary(service);
  return util::kInterruptedExitCode;
}

core::SimResult run_batch(const svc::Scenario& scenario,
                          const svc::ServiceConfig& config) {
  // The batch side installs a StreamInjector too (with every fault
  // delivered before tick 0), so hook-gated accounting fields match the
  // service exactly even on fault-free runs.
  fault::StreamInjector injector{scenario.graph, config.noise_seed};
  for (const fault::FaultEvent& f : scenario.schedule.events) {
    injector.inject(f, -1);
  }
  const std::unique_ptr<core::Scheduler> scheduler =
      svc::make_service_scheduler(config.policy);
  core::FaultConfig faults{&injector, config.retry};
  // The service delivers batch entities as submission events; the batch
  // engine gets the same workload attached up front via extensions.
  core::ScenarioExtensions ext;
  if (!scenario.batch.empty()) ext.batch = &scenario.batch;
  return core::run_simulation(injector.graph(), scenario.apps, *scheduler,
                              config.power_model, &faults, &ext);
}

int run_scenario_mode(const Args& args) {
  svc::ScenarioConfig scenario_config;
  scenario_config.days = static_cast<std::size_t>(args.number("days", 2));
  scenario_config.n_solar = static_cast<int>(args.number("solar", 4));
  scenario_config.n_wind = static_cast<int>(args.number("wind", 6));
  scenario_config.region_km = args.number("region", 2500.0);
  scenario_config.storms = args.flag("storms");
  scenario_config.cores_per_mw = args.number("cores-per-mw", 20.0);
  scenario_config.apps_per_hour = args.number("apps-per-hour", 2.2);
  scenario_config.chaos_intensity = args.number("chaos", 0.0);
  scenario_config.chaos_seed =
      static_cast<std::uint64_t>(args.number("chaos-seed", 7));
  scenario_config.batch_jobs_per_hour = args.number("batch-jobs", 0.0);
  scenario_config.batch_tasks_per_hour = args.number("batch-tasks", 0.0);
  scenario_config.batch_seed =
      static_cast<std::uint64_t>(args.number("batch-seed", 17));

  const svc::Scenario scenario = svc::make_scenario(scenario_config);
  const std::vector<svc::Event> events =
      svc::scenario_events(scenario, args.flag("heartbeats"));

  const svc::ServiceConfig config = service_config(args);
  svc::ControlPlane service{scenario.graph, config};

  const std::string log_path = args.get("log", "");
  const std::string snapshot_path = args.get("snapshot", "");
  const auto snapshot_every =
      static_cast<std::int64_t>(args.number("snapshot-every", 0));
  const auto kill_at = static_cast<std::uint64_t>(args.number("kill-at", 0));

  if (args.flag("recover")) {
    if (log_path.empty()) {
      std::fprintf(stderr, "--recover requires --log\n");
      return 2;
    }
    if (!snapshot_path.empty() &&
        std::filesystem::exists(snapshot_path)) {
      service.restore_snapshot(read_file(snapshot_path));
    }
    const svc::EventLogContents log = svc::read_event_log(log_path);
    if (log.torn_tail()) {
      std::fprintf(stderr, "dropping torn log tail: %llu bytes\n",
                   static_cast<unsigned long long>(log.dropped_bytes));
      svc::truncate_event_log(log_path, log.clean_bytes);
    }
    const std::uint64_t replayed = service.replay(log.records);
    std::fprintf(stderr,
                 "recovered to tick %lld: snapshot seq + %llu replayed "
                 "events\n",
                 static_cast<long long>(service.now()),
                 static_cast<unsigned long long>(replayed));
    service.attach_log(
        std::make_unique<svc::EventLogWriter>(log_path, /*truncate=*/false));
  } else if (!log_path.empty()) {
    service.attach_log(
        std::make_unique<svc::EventLogWriter>(log_path, /*truncate=*/true));
  }

  // Event i of the stream carries sequence number i + 1, so a recovered
  // service resumes at stream offset last_seq().
  for (std::size_t i = static_cast<std::size_t>(service.last_seq());
       i < events.size(); ++i) {
    if (util::shutdown_requested()) return interrupted_exit(service);
    service.submit(events[i]);
    if (kill_at != 0 && service.last_seq() >= kill_at) {
      // Die without unwinding: the log keeps only what submit() already
      // flushed, exactly the state a real crash leaves behind.
      std::fflush(nullptr);
      _exit(9);
    }
    if (events[i].kind == svc::EventKind::tick_advance &&
        snapshot_every > 0 && !snapshot_path.empty()) {
      const std::int64_t tick = service.now() + 1;  // ticks completed
      if (tick > 0 && tick % snapshot_every == 0) {
        write_file(snapshot_path, service.snapshot_bytes());
      }
    }
  }

  const std::string state_out = args.get("state-out", "");
  if (!state_out.empty()) {
    write_file(state_out, service.snapshot_bytes());
  }

  print_summary(service);

  if (args.flag("verify")) {
    const core::SimResult batch = run_batch(scenario, config);
    const core::SimResult streamed = service.finish();
    if (svc::result_fingerprint(batch) != svc::result_fingerprint(streamed)) {
      std::fprintf(stderr, "VERIFY FAILED: streamed result diverges from "
                           "the batch engine\n");
      return 1;
    }
    std::printf("VERIFY OK: streamed == batch (%lld ticks, %lld apps)\n",
                static_cast<long long>(streamed.completed_ticks),
                static_cast<long long>(streamed.apps_placed));
  }
  return 0;
}

int run_stdin_mode(const Args& args) {
  svc::ScenarioConfig scenario_config;
  scenario_config.days = static_cast<std::size_t>(args.number("days", 2));
  scenario_config.chaos_intensity = 0.0;
  const svc::Scenario scenario = svc::make_scenario(scenario_config);
  svc::ControlPlane service{scenario.graph, service_config(args)};

  const std::string log_path = args.get("log", "");
  if (!log_path.empty()) {
    service.attach_log(
        std::make_unique<svc::EventLogWriter>(log_path, /*truncate=*/true));
  }
  const std::string snapshot_path = args.get("snapshot", "");

  std::string line;
  while (std::getline(std::cin, line)) {
    if (util::shutdown_requested()) return interrupted_exit(service);
    std::istringstream in{line};
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') continue;
    try {
      svc::Event e;
      if (cmd == "quit") {
        break;
      } else if (cmd == "status") {
        std::printf("%s\n", service.status().to_string().c_str());
      } else if (cmd == "snapshot") {
        if (snapshot_path.empty()) throw std::runtime_error{"no --snapshot"};
        write_file(snapshot_path, service.snapshot_bytes());
        std::printf("snapshot written to %s\n", snapshot_path.c_str());
      } else if (cmd == "tick") {
        std::int64_t n = 1;
        in >> n;
        e.kind = svc::EventKind::tick_advance;
        for (std::int64_t i = 0; i < n; ++i) service.submit(e);
        std::printf("tick=%lld\n", static_cast<long long>(service.now()));
      } else if (cmd == "power") {
        e.kind = svc::EventKind::power_reading;
        in >> e.site >> e.tick;
        double v = 0.0;
        while (in >> v) e.values.push_back(v);
        service.submit(e);
      } else if (cmd == "arrive") {
        e.kind = svc::EventKind::vm_arrival;
        in >> e.app.app_id >> e.app.arrival >> e.app.lifetime_ticks >>
            e.app.shape.cores >> e.app.shape.memory_gb >> e.app.n_stable >>
            e.app.n_degradable;
        service.submit(e);
      } else if (cmd == "depart") {
        e.kind = svc::EventKind::vm_departure;
        in >> e.app_id;
        service.submit(e);
      } else if (cmd == "job") {
        e.kind = svc::EventKind::batch_job;
        in >> e.job.job_id >> e.job.arrival >> e.job.cores >>
            e.job.work_core_ticks >> e.job.deadline;
        service.submit(e);
      } else if (cmd == "task") {
        e.kind = svc::EventKind::harvest_task;
        in >> e.task.task_id >> e.task.arrival >> e.task.cores >>
            e.task.work_core_ticks >> e.task.resume_latency_ticks >>
            e.task.deadline;
        service.submit(e);
      } else if (cmd == "fault") {
        e.kind = svc::EventKind::fault_report;
        std::string kind;
        in >> kind >> e.fault.start >> e.fault.end >> e.fault.site;
        if (kind == "blackout") {
          e.fault.kind = fault::FaultKind::site_blackout;
        } else if (kind == "brownout") {
          e.fault.kind = fault::FaultKind::site_brownout;
          in >> e.fault.alpha;
        } else if (kind == "forecast") {
          e.fault.kind = fault::FaultKind::forecast_error;
          in >> e.fault.alpha >> e.fault.sigma;
        } else if (kind == "link") {
          e.fault.kind = fault::FaultKind::link_down;
          in >> e.fault.peer;
        } else if (kind == "server") {
          e.fault.kind = fault::FaultKind::server_failure;
          in >> e.fault.count;
        } else {
          throw std::runtime_error{"unknown fault kind '" + kind + "'"};
        }
        service.submit(e);
      } else if (cmd == "heartbeat") {
        e.kind = svc::EventKind::heartbeat;
        in >> e.site;
        service.submit(e);
      } else if (cmd == "drain") {
        e.kind = svc::EventKind::drain_site;
        in >> e.site;
        service.submit(e);
      } else if (cmd == "undrain") {
        e.kind = svc::EventKind::undrain_site;
        in >> e.site;
        service.submit(e);
      } else if (cmd == "pause") {
        e.kind = svc::EventKind::pause;
        service.submit(e);
      } else if (cmd == "resume") {
        e.kind = svc::EventKind::resume;
        service.submit(e);
      } else if (cmd == "reconfigure") {
        e.kind = svc::EventKind::reconfigure;
        in >> e.text;
        service.submit(e);
      } else {
        throw std::runtime_error{"unknown command '" + cmd + "'"};
      }
    } catch (const std::exception& err) {
      std::printf("error: %s\n", err.what());
    }
    std::fflush(stdout);
  }
  if (util::shutdown_requested()) return interrupted_exit(service);
  print_summary(service);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: vbatt_svc [--days=2] [--policy=mip] [--chaos=<x>]\n"
               "                 [--batch-jobs=R --batch-tasks=R\n"
               "                  --batch-seed=N]\n"
               "                 [--heartbeats] [--verify] [--log=PATH]\n"
               "                 [--snapshot=PATH --snapshot-every=N]\n"
               "                 [--recover] [--kill-at=N]\n"
               "                 [--state-out=PATH] [--stdin]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::install_shutdown_handlers();
  const Args args{argc, argv};
  if (args.flag("help")) return usage();
  try {
    return args.flag("stdin") ? run_stdin_mode(args) : run_scenario_mode(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vbatt_svc: %s\n", e.what());
    return 2;
  }
}
