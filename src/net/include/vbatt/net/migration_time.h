// Pre-copy live-migration time model (Akoush et al., MASCOTS'10 — the
// paper's reference [2] and its stated future work, footnote 2).
//
// A live migration repeatedly copies dirtied memory: round 0 moves the
// whole footprint; each later round moves what was dirtied during the
// previous round, a geometric series with ratio dirty_rate / bandwidth.
// When the remainder falls under the stop-and-copy threshold (or rounds
// run out), the VM pauses and the rest moves during downtime.
#pragma once

namespace vbatt::net {

struct MigrationTimeConfig {
  /// Network bandwidth available to one migration, Gb/s.
  double bandwidth_gbps = 10.0;
  /// Rate at which the workload dirties memory, Gb/s. Must be below
  /// bandwidth for pre-copy to converge.
  double dirty_rate_gbps = 1.0;
  /// Stop-and-copy once the remaining data is below this, GB.
  double stop_copy_threshold_gb = 0.25;
  /// Safety cap on pre-copy rounds (QEMU-style).
  int max_rounds = 30;
};

struct MigrationEstimate {
  /// Wall-clock duration of the whole migration, seconds.
  double total_seconds = 0.0;
  /// VM pause (stop-and-copy) duration, seconds.
  double downtime_seconds = 0.0;
  /// Total bytes moved including re-copies, GB (>= the VM's memory).
  double transferred_gb = 0.0;
  /// Pre-copy rounds performed before stop-and-copy.
  int rounds = 0;
};

/// Estimate migrating a VM with `memory_gb` of RAM.
MigrationEstimate estimate_migration(double memory_gb,
                                     const MigrationTimeConfig& config = {});

/// Amplification factor: transferred bytes / memory bytes. The multi-site
/// simulators charge raw memory; multiply by this to account for pre-copy
/// re-transmission.
double transfer_amplification(const MigrationTimeConfig& config = {});

}  // namespace vbatt::net
