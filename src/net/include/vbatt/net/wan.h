// WAN capacity accounting (§3 and §5 of the paper).
//
// The paper's WAN math: ~100 sites share an aggregate 50 Tb/s WAN (B4-like),
// i.e. ≈500 Gb/s fair share per site; a 10 TB migration spike completed in
// 5 minutes needs ≈267 Gb/s, "roughly 40% of the share". §5 assumes a
// 200 Gb/s per-site WAN link and finds migration active only 2-4% of time.
#pragma once

#include <cstddef>
#include <vector>

namespace vbatt::net {

struct WanConfig {
  /// Aggregate WAN capacity shared by the fleet, terabits per second.
  double aggregate_tbps = 50.0;
  /// Number of sites sharing the aggregate.
  std::size_t n_sites = 100;
  /// Provisioned per-site WAN link, gigabits per second (§5's assumption).
  double per_site_gbps = 200.0;
  /// Window within which a migration burst must complete, minutes.
  double migration_window_minutes = 5.0;
};

/// Fair per-site share of the aggregate WAN, Gb/s.
double per_site_share_gbps(const WanConfig& config);

/// Throughput needed to move `gigabytes` within the migration window, Gb/s.
double required_gbps(const WanConfig& config, double gigabytes);

/// `required / share`: the paper's "40% of the share of WAN capacity".
double share_fraction(const WanConfig& config, double gigabytes);

/// Fraction of ticks in `transfer_gb` during which the per-site link is
/// busy, assuming each tick's transfer is sent at `per_site_gbps` until
/// drained (§5's "migration occurs only 2-4% of the time").
double busy_fraction(const WanConfig& config,
                     const std::vector<double>& transfer_gb,
                     double minutes_per_tick);

}  // namespace vbatt::net
