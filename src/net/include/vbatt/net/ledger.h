// Migration traffic ledger.
//
// Both simulators (single-site Fig. 4 and multi-site Table 1) report their
// results as per-site, per-tick inbound/outbound migration volume in GB;
// this type is the single accounting sink they share.
#pragma once

#include <cstddef>
#include <vector>

#include "vbatt/util/time.h"

namespace vbatt::net {

/// Per-(site, tick) in/out transfer accounting, GB.
class MigrationLedger {
 public:
  MigrationLedger(std::size_t n_sites, std::size_t n_ticks);

  std::size_t n_sites() const noexcept { return n_sites_; }
  std::size_t n_ticks() const noexcept { return n_ticks_; }

  /// Record `gb` leaving `site` at tick `t` (bounds-checked).
  void record_out(std::size_t site, util::Tick t, double gb);
  /// Record `gb` arriving at `site` at tick `t`.
  void record_in(std::size_t site, util::Tick t, double gb);

  double out_gb(std::size_t site, util::Tick t) const;
  double in_gb(std::size_t site, util::Tick t) const;

  /// Whole out/in series for one site.
  std::vector<double> out_series(std::size_t site) const;
  std::vector<double> in_series(std::size_t site) const;

  /// Per-tick totals across all sites (in + out counted once per transfer:
  /// out at source only, to avoid double counting fleet-level volume).
  std::vector<double> total_out_per_tick() const;
  std::vector<double> total_in_per_tick() const;
  /// Per-tick total migration volume = out totals (each byte moved once).
  std::vector<double> total_moved_per_tick() const { return total_out_per_tick(); }

  /// Sum of all outbound GB (== total bytes migrated).
  double total_moved_gb() const;

 private:
  std::size_t index(std::size_t site, util::Tick t) const;

  std::size_t n_sites_;
  std::size_t n_ticks_;
  std::vector<double> out_;
  std::vector<double> in_;
};

}  // namespace vbatt::net
