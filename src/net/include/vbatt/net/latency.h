// Inter-site latency model and the VB latency graph (§3.1, Figure 6).
//
// The scheduler models the fleet as a graph: nodes are VB sites, and two
// nodes share an edge when their RTT is under a threshold (50 ms in the
// paper), so an application split across a clique never sees a high-latency
// pair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "vbatt/util/geo.h"

namespace vbatt::net {

/// Distance → RTT. Defaults: ~2 ms of fixed overhead plus ~0.021 ms/km
/// (speed of light in fiber, doubled for the round trip, with typical path
/// inflation).
struct RttModel {
  double base_ms = 2.0;
  double ms_per_km = 0.021;

  double rtt_ms(const util::GeoPoint& a, const util::GeoPoint& b) const noexcept {
    return base_ms + ms_per_km * util::distance_km(a, b);
  }
};

/// Undirected latency graph over a set of site locations.
///
/// Edges can be masked dynamically (`set_edge_up`) — the WAN-fault
/// injector severs and restores links mid-simulation. The packed adjacency
/// rows are the single source of truth: `connected`, `neighbors`,
/// `edge_count`, and the clique-enumeration word intersections all read
/// the same bits, so a masked edge disappears from every query at once.
class LatencyGraph {
 public:
  /// Build from site locations: edge iff rtt <= threshold_ms.
  LatencyGraph(const std::vector<util::GeoPoint>& locations,
               const RttModel& model, double threshold_ms);

  std::size_t size() const noexcept { return n_; }
  double threshold_ms() const noexcept { return threshold_ms_; }

  double rtt_ms(std::size_t a, std::size_t b) const {
    return rtt_.at(a * n_ + b);
  }
  bool connected(std::size_t a, std::size_t b) const {
    if (a >= n_ || b >= n_) throw std::out_of_range{"LatencyGraph::connected"};
    return (adjacency_[a * row_words_ + b / 64] >> (b % 64)) & 1u;
  }

  /// Whether the physical link (rtt under threshold) exists, ignoring any
  /// dynamic mask. connected() == link_exists() && !masked.
  bool link_exists(std::size_t a, std::size_t b) const {
    return a != b && rtt_.at(a * n_ + b) <= threshold_ms_;
  }

  /// Sever (`up == false`) or restore (`up == true`) the edge {a, b}.
  /// Restoring is a no-op unless the physical link exists; severing a
  /// non-edge is a no-op. Updates both packed rows, so every derived
  /// query (neighbors, edge_count, clique enumeration) stays consistent.
  void set_edge_up(std::size_t a, std::size_t b, bool up);

  /// Number of currently masked (severed) physical links.
  std::size_t masked_edge_count() const noexcept { return masked_edges_; }

  /// Neighbors of `v` (all u with an edge to v), from the packed row.
  std::vector<std::size_t> neighbors(std::size_t v) const;

  /// Number of (unmasked) edges, from the packed rows.
  std::size_t edge_count() const noexcept;

  /// 64-bit words per packed adjacency row.
  std::size_t row_words() const noexcept { return row_words_; }

  /// Packed adjacency row of `v`: bit `u` is set iff connected(v, u).
  /// `row_words()` words long; enumeration code intersects these
  /// word-at-a-time instead of calling connected() per pair.
  const std::uint64_t* adjacency_row(std::size_t v) const {
    return adjacency_.data() + v * row_words_;
  }

 private:
  std::size_t n_;
  double threshold_ms_;
  std::vector<double> rtt_;  // n x n, row-major
  std::size_t row_words_;
  std::vector<std::uint64_t> adjacency_;  // n x row_words_, row-major
  std::size_t masked_edges_ = 0;
};

}  // namespace vbatt::net
