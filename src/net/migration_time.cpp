#include "vbatt/net/migration_time.h"

#include <stdexcept>

namespace vbatt::net {

MigrationEstimate estimate_migration(double memory_gb,
                                     const MigrationTimeConfig& config) {
  if (memory_gb < 0.0) {
    throw std::invalid_argument{"estimate_migration: negative memory"};
  }
  if (config.bandwidth_gbps <= 0.0 || config.dirty_rate_gbps < 0.0 ||
      config.stop_copy_threshold_gb < 0.0 || config.max_rounds < 0) {
    throw std::invalid_argument{"MigrationTimeConfig: invalid"};
  }

  // All rates in GB/s.
  const double bandwidth = config.bandwidth_gbps / 8.0;
  const double dirty = config.dirty_rate_gbps / 8.0;

  MigrationEstimate estimate;
  double remaining = memory_gb;
  // Pre-copy rounds while the remainder shrinks toward the threshold. If
  // the dirty rate matches/exceeds bandwidth the remainder never shrinks;
  // the max_rounds cap forces stop-and-copy.
  while (remaining > config.stop_copy_threshold_gb &&
         estimate.rounds < config.max_rounds) {
    const double round_seconds = remaining / bandwidth;
    estimate.transferred_gb += remaining;
    estimate.total_seconds += round_seconds;
    const double next = dirty * round_seconds;
    ++estimate.rounds;
    if (next >= remaining) break;  // diverging: give up and stop-and-copy
    remaining = next;
  }
  // Stop-and-copy: the VM pauses while the remainder moves.
  estimate.downtime_seconds = remaining / bandwidth;
  estimate.total_seconds += estimate.downtime_seconds;
  estimate.transferred_gb += remaining;
  return estimate;
}

double transfer_amplification(const MigrationTimeConfig& config) {
  // Geometric series with ratio r = dirty/bandwidth truncated at the
  // stop-and-copy threshold; amplification is workload-size independent in
  // the converging regime, so evaluate on a reference footprint.
  constexpr double kReferenceGb = 16.0;
  return estimate_migration(kReferenceGb, config).transferred_gb /
         kReferenceGb;
}

}  // namespace vbatt::net
