#include "vbatt/net/ledger.h"

#include <stdexcept>

namespace vbatt::net {

MigrationLedger::MigrationLedger(std::size_t n_sites, std::size_t n_ticks)
    : n_sites_{n_sites}, n_ticks_{n_ticks} {
  if (n_sites == 0 || n_ticks == 0) {
    throw std::invalid_argument{"MigrationLedger: empty dimensions"};
  }
  out_.resize(n_sites * n_ticks, 0.0);
  in_.resize(n_sites * n_ticks, 0.0);
}

std::size_t MigrationLedger::index(std::size_t site, util::Tick t) const {
  if (site >= n_sites_ || t < 0 ||
      static_cast<std::size_t>(t) >= n_ticks_) {
    throw std::out_of_range{"MigrationLedger: bad (site, tick)"};
  }
  return site * n_ticks_ + static_cast<std::size_t>(t);
}

void MigrationLedger::record_out(std::size_t site, util::Tick t, double gb) {
  if (gb < 0.0) throw std::invalid_argument{"record_out: negative volume"};
  out_[index(site, t)] += gb;
}

void MigrationLedger::record_in(std::size_t site, util::Tick t, double gb) {
  if (gb < 0.0) throw std::invalid_argument{"record_in: negative volume"};
  in_[index(site, t)] += gb;
}

double MigrationLedger::out_gb(std::size_t site, util::Tick t) const {
  return out_[index(site, t)];
}

double MigrationLedger::in_gb(std::size_t site, util::Tick t) const {
  return in_[index(site, t)];
}

std::vector<double> MigrationLedger::out_series(std::size_t site) const {
  const std::size_t base = index(site, 0);
  return {out_.begin() + static_cast<std::ptrdiff_t>(base),
          out_.begin() + static_cast<std::ptrdiff_t>(base + n_ticks_)};
}

std::vector<double> MigrationLedger::in_series(std::size_t site) const {
  const std::size_t base = index(site, 0);
  return {in_.begin() + static_cast<std::ptrdiff_t>(base),
          in_.begin() + static_cast<std::ptrdiff_t>(base + n_ticks_)};
}

std::vector<double> MigrationLedger::total_out_per_tick() const {
  std::vector<double> out(n_ticks_, 0.0);
  for (std::size_t s = 0; s < n_sites_; ++s) {
    for (std::size_t t = 0; t < n_ticks_; ++t) {
      out[t] += out_[s * n_ticks_ + t];
    }
  }
  return out;
}

std::vector<double> MigrationLedger::total_in_per_tick() const {
  std::vector<double> in(n_ticks_, 0.0);
  for (std::size_t s = 0; s < n_sites_; ++s) {
    for (std::size_t t = 0; t < n_ticks_; ++t) {
      in[t] += in_[s * n_ticks_ + t];
    }
  }
  return in;
}

double MigrationLedger::total_moved_gb() const {
  double sum = 0.0;
  for (const double v : out_) sum += v;
  return sum;
}

}  // namespace vbatt::net
