#include "vbatt/net/latency.h"

#include <stdexcept>

namespace vbatt::net {

LatencyGraph::LatencyGraph(const std::vector<util::GeoPoint>& locations,
                           const RttModel& model, double threshold_ms)
    : n_{locations.size()},
      threshold_ms_{threshold_ms},
      row_words_{(locations.size() + 63) / 64} {
  if (threshold_ms <= 0.0) {
    throw std::invalid_argument{"LatencyGraph: threshold_ms <= 0"};
  }
  rtt_.resize(n_ * n_, 0.0);
  adjacency_.resize(n_ * row_words_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double rtt = model.rtt_ms(locations[i], locations[j]);
      rtt_[i * n_ + j] = rtt;
      rtt_[j * n_ + i] = rtt;
      if (rtt <= threshold_ms_) {
        adjacency_[i * row_words_ + j / 64] |= std::uint64_t{1} << (j % 64);
        adjacency_[j * row_words_ + i / 64] |= std::uint64_t{1} << (i % 64);
      }
    }
  }
}

std::vector<std::size_t> LatencyGraph::neighbors(std::size_t v) const {
  if (v >= n_) throw std::out_of_range{"LatencyGraph::neighbors"};
  std::vector<std::size_t> out;
  for (std::size_t u = 0; u < n_; ++u) {
    if (connected(v, u)) out.push_back(u);
  }
  return out;
}

std::size_t LatencyGraph::edge_count() const noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (connected(i, j)) ++count;
    }
  }
  return count;
}

}  // namespace vbatt::net
