#include "vbatt/net/latency.h"

#include <bit>
#include <stdexcept>

namespace vbatt::net {

LatencyGraph::LatencyGraph(const std::vector<util::GeoPoint>& locations,
                           const RttModel& model, double threshold_ms)
    : n_{locations.size()},
      threshold_ms_{threshold_ms},
      row_words_{(locations.size() + 63) / 64} {
  if (threshold_ms <= 0.0) {
    throw std::invalid_argument{"LatencyGraph: threshold_ms <= 0"};
  }
  rtt_.resize(n_ * n_, 0.0);
  adjacency_.resize(n_ * row_words_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double rtt = model.rtt_ms(locations[i], locations[j]);
      rtt_[i * n_ + j] = rtt;
      rtt_[j * n_ + i] = rtt;
      if (rtt <= threshold_ms_) {
        adjacency_[i * row_words_ + j / 64] |= std::uint64_t{1} << (j % 64);
        adjacency_[j * row_words_ + i / 64] |= std::uint64_t{1} << (i % 64);
      }
    }
  }
}

void LatencyGraph::set_edge_up(std::size_t a, std::size_t b, bool up) {
  if (a >= n_ || b >= n_) throw std::out_of_range{"LatencyGraph::set_edge_up"};
  if (!link_exists(a, b)) return;  // no physical link to mask or restore
  const std::uint64_t bit_b = std::uint64_t{1} << (b % 64);
  const std::uint64_t bit_a = std::uint64_t{1} << (a % 64);
  std::uint64_t& row_ab = adjacency_[a * row_words_ + b / 64];
  std::uint64_t& row_ba = adjacency_[b * row_words_ + a / 64];
  const bool currently_up = (row_ab & bit_b) != 0;
  if (up == currently_up) return;
  if (up) {
    row_ab |= bit_b;
    row_ba |= bit_a;
    --masked_edges_;
  } else {
    row_ab &= ~bit_b;
    row_ba &= ~bit_a;
    ++masked_edges_;
  }
}

std::vector<std::size_t> LatencyGraph::neighbors(std::size_t v) const {
  if (v >= n_) throw std::out_of_range{"LatencyGraph::neighbors"};
  // Walk the packed row so a dynamic edge mask is honored identically here
  // and in the word-wise clique enumeration.
  std::vector<std::size_t> out;
  const std::uint64_t* row = adjacency_row(v);
  for (std::size_t w = 0; w < row_words_; ++w) {
    std::uint64_t bits = row[w];
    while (bits != 0) {
      const std::size_t u =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      out.push_back(u);
    }
  }
  return out;
}

std::size_t LatencyGraph::edge_count() const noexcept {
  // Popcount of the packed rows: every undirected edge sets two bits.
  std::size_t twice = 0;
  for (const std::uint64_t word : adjacency_) {
    twice += static_cast<std::size_t>(std::popcount(word));
  }
  return twice / 2;
}

}  // namespace vbatt::net
