#include "vbatt/net/wan.h"

#include <algorithm>
#include <stdexcept>

namespace vbatt::net {

double per_site_share_gbps(const WanConfig& config) {
  if (config.n_sites == 0) {
    throw std::invalid_argument{"WanConfig: n_sites == 0"};
  }
  return config.aggregate_tbps * 1000.0 /
         static_cast<double>(config.n_sites);
}

double required_gbps(const WanConfig& config, double gigabytes) {
  if (config.migration_window_minutes <= 0.0) {
    throw std::invalid_argument{"WanConfig: migration window <= 0"};
  }
  const double gigabits = gigabytes * 8.0;
  return gigabits / (config.migration_window_minutes * 60.0);
}

double share_fraction(const WanConfig& config, double gigabytes) {
  return required_gbps(config, gigabytes) / per_site_share_gbps(config);
}

double busy_fraction(const WanConfig& config,
                     const std::vector<double>& transfer_gb,
                     double minutes_per_tick) {
  if (transfer_gb.empty()) return 0.0;
  if (config.per_site_gbps <= 0.0 || minutes_per_tick <= 0.0) {
    throw std::invalid_argument{"busy_fraction: bad parameters"};
  }
  const double tick_seconds = minutes_per_tick * 60.0;
  double busy_seconds = 0.0;
  for (const double gb : transfer_gb) {
    const double seconds = gb * 8.0 / config.per_site_gbps;
    busy_seconds += std::min(seconds, tick_seconds);
  }
  return busy_seconds /
         (tick_seconds * static_cast<double>(transfer_gb.size()));
}

}  // namespace vbatt::net
