#include "vbatt/core/fleet_sim.h"

#include "vbatt/dcsim/site_block.h"
#include "vbatt/util/arena.h"
#include "vbatt/util/signal.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vbatt::core {

namespace {

constexpr std::size_t kWordBits = 64;

/// Dense bitset over app slots; iteration yields ascending slot order,
/// which equals ascending app_id order (slots are the rank of the app_id
/// in sorted order) — the same order the unsharded engine's std::set and
/// ordered-map walks produce.
class SlotBits {
 public:
  void resize(std::size_t n) { words_.assign((n + kWordBits - 1) / kWordBits, 0); }
  void set(std::size_t i) {
    words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
  }
  void clear(std::size_t i) {
    words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
  }
  bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
  }
  /// Visit set slots in ascending order. The body may clear the slot it
  /// is visiting (each word is snapshotted before its bits are walked);
  /// it must not set new bits.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto i =
            w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        f(i);
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

dcsim::BlockPolicy block_policy(VmLevelConfig::Placement placement) {
  switch (placement) {
    case VmLevelConfig::Placement::first_fit:
      return dcsim::BlockPolicy::first_fit;
    case VmLevelConfig::Placement::worst_fit:
      return dcsim::BlockPolicy::worst_fit;
    case VmLevelConfig::Placement::best_fit:
      break;
  }
  return dcsim::BlockPolicy::best_fit;
}

}  // namespace

VmLevelResult run_fleet_simulation(
    const VbGraph& graph, const std::vector<workload::Application>& apps,
    Scheduler& scheduler, const VmLevelConfig& config,
    const FleetSimOptions& options) {
  const std::size_t n_sites = graph.n_sites();
  const std::size_t n_ticks = graph.n_ticks();
  VmLevelResult result{n_sites, n_ticks};
  const dcsim::BlockPolicy policy = block_policy(config.placement);

  util::ThreadPool* const pool = options.pool;
  const std::size_t lanes = pool != nullptr ? pool->size() + 1 : 1;
  const std::size_t n_shards = std::clamp<std::size_t>(
      options.n_shards > 0 ? static_cast<std::size_t>(options.n_shards)
                           : lanes,
      1, std::max<std::size_t>(1, n_sites));

  // --- Shards: contiguous site ranges, hot site state as one SiteBlock
  // per shard. site_shard maps a global site to its owner.
  struct Shard {
    std::size_t lo = 0;
    std::size_t hi = 0;
    dcsim::SiteBlock block;
    /// Coordinator-built work lists consumed in the next parallel phase.
    std::vector<std::int64_t> removals;
    std::vector<std::pair<std::size_t, int>> repairs;
    /// Parallel-phase outputs read by the coordinator after the barrier.
    int max_headroom = 0;
  };
  std::vector<Shard> shards;
  std::vector<std::int32_t> site_shard(n_sites, 0);
  {
    shards.reserve(n_shards);
    for (std::size_t k = 0; k < n_shards; ++k) {
      const std::size_t lo = k * n_sites / n_shards;
      const std::size_t hi = (k + 1) * n_sites / n_shards;
      std::vector<dcsim::SiteConfig> configs;
      configs.reserve(hi - lo);
      for (std::size_t s = lo; s < hi; ++s) {
        dcsim::SiteConfig site_config;
        site_config.n_servers =
            std::max(1, graph.site(s).capacity_cores / config.server.cores);
        site_config.server = config.server;
        site_config.utilization_cap = 1.0;  // the scheduler owns admission
        configs.push_back(site_config);
        site_shard[s] = static_cast<std::int32_t>(k);
      }
      shards.push_back(Shard{lo, hi, dcsim::SiteBlock{configs}, {}, {}, 0});
    }
  }
  const auto shard_of = [&](std::size_t s) -> Shard& {
    return shards[static_cast<std::size_t>(site_shard[s])];
  };

  // --- App slots: rank of app_id in sorted order, so slot order ==
  // app_id order and every bitset walk reproduces the unsharded engine's
  // ordered iteration.
  const std::size_t n_apps = apps.size();
  std::vector<std::int64_t> slot_app_id(n_apps);
  std::unordered_map<std::int64_t, std::int32_t> slot_of;
  slot_of.reserve(n_apps);
  {
    for (std::size_t i = 0; i < n_apps; ++i) slot_app_id[i] = apps[i].app_id;
    std::sort(slot_app_id.begin(), slot_app_id.end());
    if (std::adjacent_find(slot_app_id.begin(), slot_app_id.end()) !=
        slot_app_id.end()) {
      throw std::invalid_argument{
          "run_fleet_simulation: duplicate app_id in workload"};
    }
    for (std::size_t i = 0; i < n_apps; ++i) {
      slot_of.emplace(slot_app_id[i], static_cast<std::int32_t>(i));
    }
  }

  // Per-app columns (SoA replacement for the unsharded TrackedApp map).
  // Shape/arrival data is filled up front from the workload; placement
  // state is written at arrival time.
  std::vector<std::int32_t> app_index(n_apps, -1);  // slot -> index in apps
  std::vector<std::int32_t> app_cores(n_apps, 0);
  std::vector<double> app_mem(n_apps, 0.0);
  std::vector<util::Tick> app_end(n_apps, -1);
  std::vector<std::int32_t> app_home(n_apps, 0);
  std::vector<std::int32_t> app_allowed(n_apps, -1);  // interned list id
  // Stable VM ids are handed out consecutively at arrival and never
  // added afterwards, so each app's stable list is the dense range
  // [stable_base, stable_base + stable_n) — no per-app vector needed.
  // Degradable lists mutate (evictions, respawns) and stay as vectors.
  std::vector<std::int64_t> app_stable_base(n_apps, 0);
  std::vector<std::int32_t> app_stable_n(n_apps, 0);
  std::vector<std::vector<std::int64_t>> app_degr_ids(n_apps);
  std::vector<std::int32_t> app_paused(n_apps, 0);
  std::vector<std::int32_t> app_displaced(n_apps, 0);
  SlotBits live_bits, paused_bits, displaced_bits;
  live_bits.resize(n_apps);
  paused_bits.resize(n_apps);
  displaced_bits.resize(n_apps);
  int max_shape_cores = 0;
  for (std::size_t i = 0; i < n_apps; ++i) {
    const std::int32_t slot = slot_of.at(apps[i].app_id);
    app_index[static_cast<std::size_t>(slot)] = static_cast<std::int32_t>(i);
    app_cores[static_cast<std::size_t>(slot)] = apps[i].shape.cores;
    app_mem[static_cast<std::size_t>(slot)] = apps[i].shape.memory_gb;
    max_shape_cores = std::max(max_shape_cores, apps[i].shape.cores);
  }

  // --- Allowed-site lists, interned. Schedulers hand out the same
  // allowed list to every app anchored at the same site; at 1000 sites x
  // millions of apps, storing each copy would dwarf everything else.
  // Lists are deduplicated by content into arena-backed spans.
  util::Arena allowed_arena;
  struct AllowedList {
    const std::int32_t* data = nullptr;
    std::int32_t size = 0;
  };
  std::vector<AllowedList> allowed_lists;
  std::unordered_map<std::uint64_t, std::vector<std::int32_t>> allowed_index;
  const auto intern_allowed =
      [&](const std::vector<std::size_t>& sites) -> std::int32_t {
    std::uint64_t hash = 1469598103934665603ull;  // FNV-1a
    for (const std::size_t s : sites) {
      hash ^= static_cast<std::uint64_t>(s);
      hash *= 1099511628211ull;
    }
    std::vector<std::int32_t>& candidates = allowed_index[hash];
    for (const std::int32_t id : candidates) {
      const AllowedList& list = allowed_lists[static_cast<std::size_t>(id)];
      if (static_cast<std::size_t>(list.size) != sites.size()) continue;
      bool equal = true;
      for (std::int32_t j = 0; j < list.size && equal; ++j) {
        equal = list.data[j] == static_cast<std::int32_t>(sites[j]);
      }
      if (equal) return id;
    }
    std::int32_t* data = allowed_arena.allocate<std::int32_t>(sites.size());
    for (std::size_t j = 0; j < sites.size(); ++j) {
      data[j] = static_cast<std::int32_t>(sites[j]);
    }
    const auto id = static_cast<std::int32_t>(allowed_lists.size());
    allowed_lists.push_back(
        AllowedList{data, static_cast<std::int32_t>(sites.size())});
    candidates.push_back(id);
    return id;
  };

  // --- Per-VM record, indexed by vm_id (ids are handed out
  // sequentially, so registration is a push_back). -1 site = not
  // resident (displaced, paused, or departed). One 16-byte record per
  // VM instead of four parallel columns: every hot VM operation
  // (route-on-departure, detach, re-home) reads site/server/slot/degr
  // together, so packing them puts the whole lookup on one cache line.
  struct VmRec {
    std::int32_t site = -1;
    std::int32_t server = -1;
    std::int32_t slot = 0;
    std::uint8_t degr = 0;
  };
  std::vector<VmRec> vm_recs;
  {
    std::size_t vm_budget = 0;
    for (const workload::Application& app : apps) {
      vm_budget += static_cast<std::size_t>(app.n_stable + app.n_degradable);
    }
    vm_recs.reserve(vm_budget);
  }
  std::int64_t next_vm_id = 0;
  const auto register_vm = [&](std::int32_t slot, bool degradable)
      -> std::int64_t {
    const std::int64_t id = next_vm_id++;
    vm_recs.push_back(
        VmRec{-1, -1, slot, static_cast<std::uint8_t>(degradable ? 1 : 0)});
    return id;
  };

  // --- Fault machinery (identical bookkeeping to the unsharded engine).
  FaultHooks* const hooks = config.faults.hooks;
  const MoveRetryPolicy retry = config.faults.retry;
  struct PendingRetry {
    Move move;
    int attempts = 0;
  };
  std::map<util::Tick, std::vector<PendingRetry>> retry_queue;
  std::map<util::Tick, std::vector<std::pair<std::size_t, int>>> repairs;

  // Fleet-wide degradable counters (per-tick paused/active stats in O(1)).
  std::int64_t fleet_degradable_ids = 0;
  std::int64_t fleet_paused = 0;

  // --- Displaced / paused machinery. The queue holds (vm_id, source);
  // shape and ownership come from the VM/app columns. The unsharded
  // engine's std::map aggregates become flat arrays indexed by core
  // count, with explicit entry counters standing in for .empty().
  std::deque<std::pair<std::int64_t, std::int32_t>> displaced;
  std::vector<std::int64_t> displaced_core_counts(
      static_cast<std::size_t>(max_shape_cores) + 1, 0);
  std::vector<std::int64_t> paused_core_counts(
      static_cast<std::size_t>(max_shape_cores) + 1, 0);
  std::int64_t displaced_entries = 0;
  std::int64_t displaced_cores_total = 0;
  const auto displaced_add = [&](std::int32_t slot, int cores) {
    ++displaced_core_counts[static_cast<std::size_t>(cores)];
    ++displaced_entries;
    if (app_displaced[static_cast<std::size_t>(slot)]++ == 0) {
      displaced_bits.set(static_cast<std::size_t>(slot));
    }
    displaced_cores_total += cores;
  };
  const auto displaced_drop = [&](std::int32_t slot, int cores) {
    --displaced_core_counts[static_cast<std::size_t>(cores)];
    --displaced_entries;
    if (--app_displaced[static_cast<std::size_t>(slot)] == 0) {
      displaced_bits.clear(static_cast<std::size_t>(slot));
    }
    displaced_cores_total -= cores;
  };
  const auto pause_degradable = [&](std::int32_t slot) {
    ++app_paused[static_cast<std::size_t>(slot)];
    ++fleet_paused;
    ++paused_core_counts[
        static_cast<std::size_t>(app_cores[static_cast<std::size_t>(slot)])];
    paused_bits.set(static_cast<std::size_t>(slot));
  };
  const auto drop_degradable_id = [&](std::int32_t slot, std::int64_t vm_id) {
    std::vector<std::int64_t>& ids =
        app_degr_ids[static_cast<std::size_t>(slot)];
    const auto it = std::find(ids.begin(), ids.end(), vm_id);
    if (it != ids.end()) {
      ids.erase(it);
      --fleet_degradable_ids;
    }
  };

  // Event indices, as in the unsharded engine. The departure heap is
  // keyed (end_tick, slot); slot order == app_id order, so pops come out
  // in the unsharded (end_tick, app_id) order.
  using AppDeparture = std::pair<util::Tick, std::int32_t>;
  std::priority_queue<AppDeparture, std::vector<AppDeparture>,
                      std::greater<AppDeparture>>
      app_departures;
  std::map<std::int64_t, std::vector<Move>> pending_moves;
  std::map<util::Tick, std::set<std::int64_t>> due_moves;
  std::size_t next_app = 0;

  FleetState state;
  state.graph = &graph;
  state.stable_cores.assign(n_sites, 0);
  state.degradable_cores.assign(n_sites, 0);

  const auto place_vm = [&](std::int64_t vm_id, std::int32_t slot,
                            bool degradable, std::size_t s) -> bool {
    Shard& shard = shard_of(s);
    const int cores = app_cores[static_cast<std::size_t>(slot)];
    const double mem = app_mem[static_cast<std::size_t>(slot)];
    const int server = shard.block.place(s - shard.lo, vm_id, cores, mem,
                                         degradable, policy);
    if (server < 0) return false;
    (degradable ? state.degradable_cores : state.stable_cores)[s] += cores;
    VmRec& rec = vm_recs[static_cast<std::size_t>(vm_id)];
    rec.site = static_cast<std::int32_t>(s);
    rec.server = server;
    return true;
  };
  /// Detach a VM known to be resident at site `s`.
  const auto remove_vm_at = [&](std::int64_t vm_id, std::size_t s) {
    Shard& shard = shard_of(s);
    VmRec& rec = vm_recs[static_cast<std::size_t>(vm_id)];
    const auto slot = static_cast<std::size_t>(rec.slot);
    const bool degradable = rec.degr != 0;
    shard.block.remove(s - shard.lo, rec.server, vm_id, app_cores[slot],
                       app_mem[slot], degradable);
    (degradable ? state.degradable_cores : state.stable_cores)[s] -=
        app_cores[slot];
    rec.site = -1;
    rec.server = -1;
  };

  const double hours_per_tick = graph.axis().minutes_per_tick() / 60.0;
  const util::Tick replan_period = scheduler.replan_period_ticks();

  // Per-site scratch reused every tick by the parallel phases; each shard
  // writes only its own slices, so results are thread-count-invariant.
  std::vector<std::vector<dcsim::SiteBlock::Evicted>> evicted_by_site(
      n_sites);
  std::vector<int> site_powered(n_sites, 0);
  std::vector<double> site_mwh(n_sites, 0.0);
  std::vector<int> avail(n_sites, 0);
  std::vector<dcsim::SiteBlock::Evicted> failed_evicted;
  std::vector<ServerOutage> outages;    // this tick's server failures
  std::vector<std::int32_t> departing;  // slots departing this tick
  // Replan scratch: per-shard slices of the rebuilt FleetState.apps.
  std::vector<std::vector<std::pair<std::int64_t, LiveApp>>> replan_parts(
      n_shards);

  // Opt-in scenario extensions (coordinator-only state, so the shard count
  // cannot perturb them). The overlay steps at the same serial point as the
  // unsharded engine; econ terms accumulate in the deferred-metering
  // reductions below in the identical (tick, site) order.
  const bool has_overlay = config.ext != nullptr &&
                           config.ext->batch != nullptr &&
                           !config.ext->batch->empty();
  workload::BatchOverlay overlay =
      has_overlay ? workload::BatchOverlay{*config.ext->batch}
                  : workload::BatchOverlay{};
  const energy::SiteSeries* price =
      config.ext != nullptr ? config.ext->price : nullptr;
  const energy::SiteSeries* carbon =
      config.ext != nullptr ? config.ext->carbon : nullptr;
  std::vector<std::int64_t> overlay_free;
  if (has_overlay) overlay_free.assign(n_sites, 0);

  const auto run_sharded = [&](const auto& body) {
    if (pool != nullptr && n_shards > 1) {
      pool->parallel_for(n_shards, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) body(k);
      });
    } else {
      for (std::size_t k = 0; k < n_shards; ++k) body(k);
    }
  };

  /// Fold a batch of evicted VMs (power shrink or server failure at site
  /// `s`) into the displaced/paused machinery — coordinator only, in
  /// global site order.
  const auto absorb_evicted =
      [&](std::size_t s, const std::vector<dcsim::SiteBlock::Evicted>& batch) {
        for (const dcsim::SiteBlock::Evicted& vm : batch) {
          VmRec& rec = vm_recs[static_cast<std::size_t>(vm.vm_id)];
          rec.site = -1;
          rec.server = -1;
          const std::int32_t slot = rec.slot;
          if (!vm.degradable) {
            state.stable_cores[s] -= vm.cores;
            displaced.emplace_back(vm.vm_id, static_cast<std::int32_t>(s));
            displaced_add(slot, vm.cores);
          } else {
            state.degradable_cores[s] -= vm.cores;
            if (live_bits.test(static_cast<std::size_t>(slot))) {
              drop_degradable_id(slot, vm.vm_id);
              pause_degradable(slot);
            }
          }
        }
      };

  std::uint64_t topo_epoch = hooks ? hooks->topology_epoch() : 0;

  for (std::size_t i = 0; i < n_ticks; ++i) {
    if (util::shutdown_requested()) break;
    const auto t = static_cast<util::Tick>(i);
    state.now = t;
    ++result.base.completed_ticks;

    // 0. Serial fault prologue: link transitions apply inside begin_tick;
    //    due server repairs are handed to their shards for phase A. A
    //    topology-epoch advance tells the scheduler to drop warm-start
    //    state keyed to the old fleet.
    for (Shard& shard : shards) {
      shard.removals.clear();
      shard.repairs.clear();
    }
    if (hooks) {
      hooks->begin_tick(t);
      if (const std::uint64_t epoch = hooks->topology_epoch();
          epoch != topo_epoch) {
        topo_epoch = epoch;
        scheduler.on_topology_change();
      }
      if (const auto due = repairs.find(t); due != repairs.end()) {
        for (const auto& [s, count] : due->second) {
          shard_of(s).repairs.emplace_back(s, count);
        }
        repairs.erase(due);
      }
    }

    // 1a. Serial departure prologue: pop the app calendar (end_tick,
    //     app_id order) and route each resident VM's removal to the shard
    //     owning its site. Removals of distinct VMs commute, so shards
    //     can apply them concurrently in phase A.
    departing.clear();
    while (!app_departures.empty() && app_departures.top().first <= t) {
      const std::int32_t slot = app_departures.top().second;
      app_departures.pop();
      // Defensive (apps depart once), and it also dedups same-tick
      // calendar entries before the removal lists are built: the live
      // bit drops here, the rest of the bookkeeping follows in 1b.
      if (!live_bits.test(static_cast<std::size_t>(slot))) continue;
      live_bits.clear(static_cast<std::size_t>(slot));
      departing.push_back(slot);
      const auto route = [&](std::int64_t id) {
        const std::int32_t at = vm_recs[static_cast<std::size_t>(id)].site;
        if (at >= 0) {
          shards[static_cast<std::size_t>(site_shard[at])].removals.push_back(
              id);
        }
      };
      const std::int64_t stable_lo =
          app_stable_base[static_cast<std::size_t>(slot)];
      const std::int64_t stable_hi =
          stable_lo + app_stable_n[static_cast<std::size_t>(slot)];
      for (std::int64_t id = stable_lo; id < stable_hi; ++id) {
        route(id);
      }
      for (const std::int64_t id :
           app_degr_ids[static_cast<std::size_t>(slot)]) {
        route(id);
      }
    }

    // Phase A (parallel over shards): per-site work with no cross-site
    // order — meter the *previous* tick's energy (site state is untouched
    // between the end of tick t-1 and the mutations below, so the fused
    // reading is exact), apply server repairs, fill the tick's power
    // budget, and detach departing VMs.
    const auto phase_a = [&](std::size_t k) {
      Shard& shard = shards[k];
      if (i > 0) {
        for (std::size_t s = shard.lo; s < shard.hi; ++s) {
          const std::size_t local = s - shard.lo;
          const int powered = shard.block.powered_servers(local);
          const int active_cores = shard.block.active_cores(local);
          site_powered[s] = powered;
          site_mwh[s] =
              (powered * config.power.server_idle_watts +
               active_cores * config.power.watts_per_active_core) *
              hours_per_tick / 1e6;
        }
      }
      for (const auto& [s, count] : shard.repairs) {
        shard.block.repair_servers(s - shard.lo, count);
      }
      for (std::size_t s = shard.lo; s < shard.hi; ++s) {
        avail[s] = graph.available_cores(s, t);
      }
      for (const std::int64_t id : shard.removals) {
        remove_vm_at(
            id, static_cast<std::size_t>(vm_recs[static_cast<std::size_t>(id)]
                                             .site));
      }
    };

    // Phase B (parallel over shards): power shrinks are site-local; each
    // shard also reports its max headroom so the coordinator's
    // "can anything fit anywhere" checks stay O(shards).
    const auto phase_b = [&](std::size_t k) {
      Shard& shard = shards[k];
      int max_headroom = std::numeric_limits<int>::min();
      for (std::size_t s = shard.lo; s < shard.hi; ++s) {
        evicted_by_site[s].clear();
        shard.block.shrink_to(s - shard.lo, avail[s], evicted_by_site[s]);
        max_headroom = std::max(
            max_headroom, avail[s] - shard.block.allocated_cores(s - shard.lo));
      }
      shard.max_headroom = max_headroom;
    };

    // Quiet-tick detection: when no serial step between phases A and B
    // touches shard blocks or the avail budget — no replan, no arrivals,
    // no due or retried moves, no server failures — phase B commutes with
    // the serial middle (energy reduction and departure bookkeeping write
    // only coordinator aggregates), so both phases fuse into a single
    // pooled dispatch per tick. Each shard runs A then B over its own
    // sites in the same order the split dispatches would, so the fused
    // tick is bit-identical; the common steady-state tick pays one
    // barrier instead of two. The events that *would* add same-tick work
    // after this test (a replan or arrival scheduling a move due now)
    // already force their flag, so quiet never misses them.
    const bool replan_tick =
        replan_period > 0 && t > 0 && t % replan_period == 0;
    const bool has_arrivals =
        next_app < apps.size() && apps[next_app].arrival <= t;
    const bool has_due_moves =
        due_moves.find(t) != due_moves.end() ||
        (hooks && retry_queue.find(t) != retry_queue.end());
    outages.clear();
    if (hooks) outages = hooks->server_outages_at(t);
    const bool quiet =
        !replan_tick && !has_arrivals && !has_due_moves && outages.empty();

    if (quiet) {
      run_sharded([&](std::size_t k) {
        phase_a(k);
        phase_b(k);
      });
    } else {
      run_sharded(phase_a);
    }
    state.avail_cache = &avail;

    // Epoch barrier: serial reductions in global site order. Energy for
    // tick t-1 lands exactly where the unsharded engine added it.
    if (i > 0) {
      for (std::size_t s = 0; s < n_sites; ++s) {
        result.powered_server_ticks += site_powered[s];
        result.base.energy_mwh += site_mwh[s];
        result.base.energy_mwh_per_tick[i - 1] += site_mwh[s];
        if (price != nullptr) {
          const double usd =
              price->value(s, static_cast<double>(i - 1)) * site_mwh[s];
          result.base.cost_usd += usd;
          result.base.cost_usd_per_tick[i - 1] += usd;
        }
        if (carbon != nullptr) {
          const double kg =
              carbon->value(s, static_cast<double>(i - 1)) * site_mwh[s];
          result.base.carbon_kg += kg;
          result.base.carbon_kg_per_tick[i - 1] += kg;
        }
      }
    }

    // 1b. Departure bookkeeping (serial, calendar pop order): retire
    //     paused/displaced aggregates and drop the app.
    for (const std::int32_t slot : departing) {
      const auto u = static_cast<std::size_t>(slot);
      fleet_degradable_ids -= static_cast<std::int64_t>(app_degr_ids[u].size());
      fleet_paused -= app_paused[u];
      if (app_paused[u] > 0) {
        paused_core_counts[static_cast<std::size_t>(app_cores[u])] -=
            app_paused[u];
        app_paused[u] = 0;
      }
      if (app_displaced[u] > 0) {
        const int cores = app_cores[u];
        displaced_core_counts[static_cast<std::size_t>(cores)] -=
            app_displaced[u];
        displaced_entries -= app_displaced[u];
        displaced_cores_total -=
            static_cast<std::int64_t>(app_displaced[u]) * cores;
        app_displaced[u] = 0;
        displaced_bits.clear(u);
      }
      paused_bits.clear(u);
      pending_moves.erase(slot_app_id[u]);
      // Release, not clear: a year-long run retires millions of apps and
      // their id lists must not linger at peak capacity.
      app_stable_n[u] = 0;
      std::vector<std::int64_t>().swap(app_degr_ids[u]);
    }

    // 2. Replanning. The FleetState mirror is rebuilt from the app
    //    columns: shards each build one contiguous slot range (order-free
    //    construction), the coordinator splices them in slot order, so
    //    the ordered map comes out identical to the unsharded build.
    if (replan_period > 0 && t > 0 && t % replan_period == 0) {
      state.apps.clear();
      run_sharded([&](std::size_t k) {
        std::vector<std::pair<std::int64_t, LiveApp>>& part = replan_parts[k];
        part.clear();
        const std::size_t lo = k * n_apps / n_shards;
        const std::size_t hi = (k + 1) * n_apps / n_shards;
        for (std::size_t u = lo; u < hi; ++u) {
          if (!live_bits.test(u)) continue;
          LiveApp summary;
          summary.app = apps[static_cast<std::size_t>(app_index[u])];
          summary.end_tick = app_end[u];
          summary.site = static_cast<std::size_t>(app_home[u]);
          const AllowedList& list =
              allowed_lists[static_cast<std::size_t>(app_allowed[u])];
          summary.allowed.reserve(static_cast<std::size_t>(list.size));
          for (std::int32_t j = 0; j < list.size; ++j) {
            summary.allowed.push_back(static_cast<std::size_t>(list.data[j]));
          }
          summary.active_degradable = static_cast<int>(app_degr_ids[u].size());
          part.emplace_back(slot_app_id[u], std::move(summary));
        }
      });
      for (std::vector<std::pair<std::int64_t, LiveApp>>& part :
           replan_parts) {
        for (std::pair<std::int64_t, LiveApp>& entry : part) {
          state.apps.emplace_hint(state.apps.end(), entry.first,
                                  std::move(entry.second));
        }
        part.clear();
      }
      pending_moves.clear();
      due_moves.clear();
      retry_queue.clear();  // a replan supersedes every outstanding move
      for (Move& move : scheduler.replan(state)) {
        due_moves[move.at_tick].insert(move.app_id);
        pending_moves[move.app_id].push_back(move);
      }
    }

    // 3. Arrivals (serial: every placement consults the scheduler and
    //    changes the capacity the next one sees).
    while (next_app < apps.size() && apps[next_app].arrival <= t) {
      const workload::Application& app = apps[next_app];
      const Scheduler::Placement placement = scheduler.place(app, state);
      const std::int32_t slot = slot_of.at(app.app_id);
      const auto u = static_cast<std::size_t>(slot);
      app_end[u] = app.lifetime_ticks < 0 ? -1 : t + app.lifetime_ticks;
      app_home[u] = static_cast<std::int32_t>(placement.site);
      app_allowed[u] = intern_allowed(placement.allowed);
      app_stable_base[u] = next_vm_id;
      app_stable_n[u] = app.n_stable;
      app_degr_ids[u].reserve(static_cast<std::size_t>(app.n_degradable));
      for (int v = 0; v < app.n_stable + app.n_degradable; ++v) {
        const bool degradable = v >= app.n_stable;
        const std::int64_t vm_id = register_vm(slot, degradable);
        if (place_vm(vm_id, slot, degradable, placement.site)) {
          if (degradable) app_degr_ids[u].push_back(vm_id);
        } else if (!degradable) {
          ++result.fragmentation_failures;
          displaced.emplace_back(vm_id,
                                 static_cast<std::int32_t>(placement.site));
          displaced_add(slot, app.shape.cores);
        } else {
          ++app_paused[u];
        }
      }
      if (!placement.scheduled_moves.empty()) {
        for (const Move& move : placement.scheduled_moves) {
          due_moves[move.at_tick].insert(app.app_id);
        }
        pending_moves[app.app_id] = placement.scheduled_moves;
      }
      fleet_degradable_ids += static_cast<std::int64_t>(app_degr_ids[u].size());
      fleet_paused += app_paused[u];
      if (app_paused[u] > 0) {
        paused_core_counts[static_cast<std::size_t>(app.shape.cores)] +=
            app_paused[u];
        paused_bits.set(u);
      }
      if (app_end[u] >= 0) app_departures.emplace(app_end[u], slot);
      ++result.base.apps_placed;
      live_bits.set(u);
      ++next_app;
    }

    // 4. Execute due proactive moves (serial: capacity interactions
    //    between same-tick moves are order-dependent).
    const auto move_blocked = [&](std::int32_t slot, const Move& move) {
      return hooks->site_down(move.to_site, t) ||
             !graph.latency().connected(
                 static_cast<std::size_t>(
                     app_home[static_cast<std::size_t>(slot)]),
                 move.to_site);
    };
    const auto defer_move = [&](const Move& move, int prior_attempts) {
      const int attempts = prior_attempts + 1;
      if (attempts >= retry.max_attempts) {
        ++result.base.abandoned_moves;
        return;
      }
      util::Tick backoff = retry.base_backoff_ticks;
      for (int a = 1; a < attempts && backoff < retry.max_backoff_ticks; ++a) {
        backoff *= 2;
      }
      backoff = std::min(backoff, retry.max_backoff_ticks);
      Move again = move;
      again.at_tick = t + backoff;
      retry_queue[again.at_tick].push_back({again, attempts});
      ++result.base.retried_moves;
    };
    const auto execute_app_move = [&](std::int64_t app_id, std::int32_t slot,
                                      const Move& move) {
      const auto u = static_cast<std::size_t>(slot);
      const auto from = static_cast<std::int32_t>(app_home[u]);
      app_home[u] = static_cast<std::int32_t>(move.to_site);
      bool moved_any = false;
      const std::int64_t stable_hi = app_stable_base[u] + app_stable_n[u];
      for (std::int64_t id = app_stable_base[u]; id < stable_hi; ++id) {
        // Only VMs resident at the old home move (a displaced VM re-homed
        // elsewhere stays put, as in the unsharded engine).
        if (vm_recs[static_cast<std::size_t>(id)].site != from) continue;
        remove_vm_at(id, static_cast<std::size_t>(from));
        if (place_vm(id, slot, false, move.to_site)) {
          const double gb = app_mem[u];
          result.base.ledger.record_out(static_cast<std::size_t>(from), t, gb);
          result.base.ledger.record_in(move.to_site, t, gb);
          result.base.moved_gb[i] += gb;
          ++result.vm_migrations;
          moved_any = true;
        } else {
          ++result.fragmentation_failures;
          displaced.emplace_back(id, from);
          displaced_add(slot, app_cores[u]);
        }
      }
      std::vector<std::int64_t> kept_degradable;
      kept_degradable.reserve(app_degr_ids[u].size());
      for (const std::int64_t id : app_degr_ids[u]) {
        if (vm_recs[static_cast<std::size_t>(id)].site != from) {
          kept_degradable.push_back(id);
          continue;
        }
        remove_vm_at(id, static_cast<std::size_t>(from));
        if (place_vm(id, slot, true, move.to_site)) {
          kept_degradable.push_back(id);
        } else {
          pause_degradable(slot);
        }
        // Degradable respawn: no WAN traffic.
      }
      fleet_degradable_ids -= static_cast<std::int64_t>(
          app_degr_ids[u].size() - kept_degradable.size());
      app_degr_ids[u] = std::move(kept_degradable);
      if (moved_any) ++result.base.planned_migrations;
      (void)app_id;
    };
    if (const auto due = due_moves.find(t); due != due_moves.end()) {
      for (const std::int64_t app_id : due->second) {
        const auto pend = pending_moves.find(app_id);
        if (pend == pending_moves.end()) continue;
        const auto slot_it = slot_of.find(app_id);
        if (slot_it == slot_of.end() ||
            !live_bits.test(static_cast<std::size_t>(slot_it->second))) {
          continue;
        }
        const std::int32_t slot = slot_it->second;
        for (const Move& move : pend->second) {
          if (move.at_tick != t ||
              move.to_site ==
                  static_cast<std::size_t>(
                      app_home[static_cast<std::size_t>(slot)])) {
            continue;
          }
          if (hooks && move_blocked(slot, move)) {
            defer_move(move, 0);
          } else {
            execute_app_move(app_id, slot, move);
          }
        }
      }
      due_moves.erase(due);
    }

    // 4b. Retry moves whose backoff expires now (fault runs only).
    if (hooks) {
      if (const auto due = retry_queue.find(t); due != retry_queue.end()) {
        std::vector<PendingRetry> batch = std::move(due->second);
        retry_queue.erase(due);
        for (const PendingRetry& pr : batch) {
          const auto slot_it = slot_of.find(pr.move.app_id);
          if (slot_it == slot_of.end() ||
              !live_bits.test(static_cast<std::size_t>(slot_it->second))) {
            continue;  // departed meanwhile
          }
          const std::int32_t slot = slot_it->second;
          if (pr.move.to_site ==
              static_cast<std::size_t>(
                  app_home[static_cast<std::size_t>(slot)])) {
            continue;  // already there
          }
          if (move_blocked(slot, pr.move)) {
            defer_move(pr.move, pr.attempts);
          } else {
            execute_app_move(pr.move.app_id, slot, pr.move);
          }
        }
      }

      // 4c. Server failures beginning this tick (fetched up top for the
      //     quiet-tick test; the injector lookup is a pure map read).
      for (const ServerOutage& outage : outages) {
        if (outage.site >= n_sites || outage.count <= 0) continue;
        Shard& shard = shard_of(outage.site);
        failed_evicted.clear();
        shard.block.fail_servers(outage.site - shard.lo, outage.count,
                                 failed_evicted);
        absorb_evicted(outage.site, failed_evicted);
        if (outage.repair_tick > t) {
          repairs[outage.repair_tick].emplace_back(outage.site, outage.count);
        }
      }
    }

    // Phase B dispatch: already ran fused with phase A on quiet ticks;
    // eventful ticks (replan/arrival/move/outage mutated shard blocks
    // since phase A) re-shrink here, after all serial mutations.
    if (!quiet) run_sharded(phase_b);
    // 5. Eviction bookkeeping merges serially in global site order.
    for (std::size_t s = 0; s < n_sites; ++s) {
      absorb_evicted(s, evicted_by_site[s]);
    }

    // 6. Re-home displaced stable VMs (serial rotation, identical to the
    //    unsharded pass; the any_can_fit proof uses the per-shard maxima
    //    — absorb_evicted changed no allocation, so they are still exact).
    bool any_can_fit = false;
    if (displaced_entries > 0) {
      int min_cores = 0;
      while (displaced_core_counts[static_cast<std::size_t>(min_cores)] == 0) {
        ++min_cores;
      }
      for (const Shard& shard : shards) {
        if (shard.lo < shard.hi && shard.max_headroom >= min_cores) {
          any_can_fit = true;
          break;
        }
      }
    }
    std::int64_t displaced_this_tick = 0;
    if (!any_can_fit) {
      result.base.displaced_stable_core_ticks += displaced_cores_total;
      displaced_this_tick = displaced_cores_total;
      displaced_bits.for_each([&](std::size_t u) {
        result.base.displaced_by_app[slot_app_id[u]] +=
            static_cast<std::int64_t>(app_displaced[u]) * app_cores[u];
      });
    } else {
      for (std::size_t d = displaced.size(); d-- > 0;) {
        const auto [vm_id, source] = displaced.front();
        displaced.pop_front();
        const std::int32_t slot = vm_recs[static_cast<std::size_t>(vm_id)].slot;
        const auto u = static_cast<std::size_t>(slot);
        if (!live_bits.test(u)) continue;  // tombstone: aggregates retired
        const int cores = app_cores[u];
        bool placed = false;
        const AllowedList& list =
            allowed_lists[static_cast<std::size_t>(app_allowed[u])];
        for (std::int32_t j = 0; j < list.size; ++j) {
          const auto cand = static_cast<std::size_t>(list.data[j]);
          // Coordinator-side headroom: outside phases A/B the state
          // columns mirror the block's allocation exactly, and three
          // flat-array reads beat a pointer chase into the shard header.
          if (avail[cand] - state.stable_cores[cand] -
                  state.degradable_cores[cand] <
              cores) {
            continue;
          }
          if (place_vm(vm_id, slot, false, cand)) {
            const double gb = app_mem[u];
            if (cand != static_cast<std::size_t>(source)) {
              result.base.ledger.record_out(static_cast<std::size_t>(source),
                                            t, gb);
              result.base.ledger.record_in(cand, t, gb);
              result.base.moved_gb[i] += gb;
              ++result.vm_migrations;
              ++result.base.forced_migrations;
            }
            displaced_drop(slot, cores);
            placed = true;
            break;
          }
        }
        if (!placed) {
          result.base.displaced_stable_core_ticks += cores;
          result.base.displaced_by_app[slot_app_id[u]] += cores;
          displaced_this_tick += cores;
          displaced.emplace_back(vm_id, source);
        }
      }
    }

    // 7. Resume paused degradable VMs (serial, slot == app_id order). The
    //    any_can_resume scan re-checks live headroom because step 6's
    //    placements may have consumed what phase B reported.
    bool any_can_resume = false;
    if (fleet_paused > 0) {
      int min_cores = 0;
      while (paused_core_counts[static_cast<std::size_t>(min_cores)] == 0) {
        ++min_cores;
      }
      for (std::size_t s = 0; s < n_sites && !any_can_resume; ++s) {
        any_can_resume = avail[s] - state.stable_cores[s] -
                             state.degradable_cores[s] >=
                         min_cores;
      }
    }
    if (any_can_resume) {
      paused_bits.for_each([&](std::size_t u) {
        const auto slot = static_cast<std::int32_t>(u);
        const auto home = static_cast<std::size_t>(app_home[u]);
        while (app_paused[u] > 0) {
          const int headroom = avail[home] - state.stable_cores[home] -
                               state.degradable_cores[home];
          if (headroom < app_cores[u]) break;
          const std::int64_t vm_id = register_vm(slot, true);
          if (!place_vm(vm_id, slot, true, home)) break;  // fragmentation
          app_degr_ids[u].push_back(vm_id);
          ++fleet_degradable_ids;
          --app_paused[u];
          --fleet_paused;
          --paused_core_counts[static_cast<std::size_t>(app_cores[u])];
        }
        if (app_paused[u] == 0) paused_bits.clear(u);
      });
    }
    result.base.paused_degradable_vm_ticks += fleet_paused;
    result.base.degradable_active_vm_ticks += fleet_degradable_ids;

    // 7b. Batch overlay (serial): identical free-core formula and step
    //     point as the unsharded engine, so the overlay trajectory is
    //     bit-identical at every shard/thread count.
    if (has_overlay) {
      for (std::size_t s = 0; s < n_sites; ++s) {
        const std::int64_t free = static_cast<std::int64_t>(avail[s]) -
                                  state.stable_cores[s] -
                                  state.degradable_cores[s];
        overlay_free[s] = free > 0 ? free : 0;
      }
      overlay.step(t, overlay_free);
    }

    // 8. Energy for this tick is metered in the next tick's phase A (or
    //    the trailing pass below for the last tick): the site counters it
    //    reads do not change between here and there.

    // 9. Fault accounting and end-of-tick observation.
    result.base.displaced_stable_cores_per_tick[i] = displaced_this_tick;
    if (hooks) {
      if (displaced_this_tick > 0) ++result.base.stable_vm_downtime_ticks;
      for (std::size_t s = 0; s < n_sites; ++s) {
        if (hooks->site_degraded(s, t)) ++result.base.faulted_site_ticks;
      }
      TickSnapshot snap;
      snap.t = t;
      snap.available = &avail;
      snap.stable_cores = &state.stable_cores;
      snap.degradable_cores = &state.degradable_cores;
      snap.displaced_stable_cores = displaced_this_tick;
      hooks->on_tick_end(snap);
    }
  }

  // Trailing energy pass for the final tick.
  if (n_ticks > 0) {
    run_sharded([&](std::size_t k) {
      Shard& shard = shards[k];
      for (std::size_t s = shard.lo; s < shard.hi; ++s) {
        const std::size_t local = s - shard.lo;
        const int powered = shard.block.powered_servers(local);
        const int active_cores = shard.block.active_cores(local);
        site_powered[s] = powered;
        site_mwh[s] = (powered * config.power.server_idle_watts +
                       active_cores * config.power.watts_per_active_core) *
                      hours_per_tick / 1e6;
      }
    });
    for (std::size_t s = 0; s < n_sites; ++s) {
      result.powered_server_ticks += site_powered[s];
      result.base.energy_mwh += site_mwh[s];
      result.base.energy_mwh_per_tick[n_ticks - 1] += site_mwh[s];
      if (price != nullptr) {
        const double usd =
            price->value(s, static_cast<double>(n_ticks - 1)) * site_mwh[s];
        result.base.cost_usd += usd;
        result.base.cost_usd_per_tick[n_ticks - 1] += usd;
      }
      if (carbon != nullptr) {
        const double kg =
            carbon->value(s, static_cast<double>(n_ticks - 1)) * site_mwh[s];
        result.base.carbon_kg += kg;
        result.base.carbon_kg_per_tick[n_ticks - 1] += kg;
      }
    }
  }

  if (has_overlay) {
    overlay.finalize();
    result.base.batch = overlay.stats();
  }
  result.base.fallback_activations = scheduler.fallback_count();
  return result;
}

}  // namespace vbatt::core
