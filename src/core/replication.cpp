#include "vbatt/core/replication.h"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>

namespace vbatt::core {

namespace {

struct ReplicatedApp {
  workload::Application app;
  util::Tick end_tick = 0;
  std::size_t primary = 0;
  /// Standby site; nullopt while a rebuild target is being selected.
  std::optional<std::size_t> standby;
  /// Remaining GB of a standby rebuild stream (0 = standby in sync).
  double rebuild_remaining_gb = 0.0;
  int active_degradable = 0;
};

/// Forecast-minimum available cores at `site` over the next day.
int day_ahead_floor(const VbGraph& graph, std::size_t site, util::Tick now) {
  const util::Tick end = std::min<util::Tick>(
      static_cast<util::Tick>(graph.n_ticks()), now + 96);
  int floor_cores = graph.available_cores(site, now);
  for (util::Tick t = now + 1; t < end; t += 4) {
    floor_cores = std::min(floor_cores, graph.forecast_cores(site, t, now));
  }
  return floor_cores;
}

}  // namespace

SimResult run_replication_simulation(
    const VbGraph& graph, const std::vector<workload::Application>& apps,
    const ReplicationConfig& config, const SitePowerModel& power_model) {
  if (config.sync_fraction_per_hour < 0.0 ||
      config.checkpoint_interval_hours <= 0.0 ||
      config.checkpoint_fraction < 0.0 || config.rebuild_hours <= 0.0) {
    throw std::invalid_argument{"ReplicationConfig: invalid"};
  }
  const std::size_t n_sites = graph.n_sites();
  const std::size_t n_ticks = graph.n_ticks();
  SimResult result{n_sites, n_ticks};

  const double hours_per_tick = graph.axis().minutes_per_tick() / 60.0;
  const auto checkpoint_period = std::max<util::Tick>(
      1, graph.axis().from_hours(config.checkpoint_interval_hours));

  std::map<std::int64_t, ReplicatedApp> live;
  std::vector<int> primary_cores(n_sites, 0);
  std::vector<int> degradable_cores(n_sites, 0);
  std::size_t next_app = 0;

  /// Pick the best of `candidates` by day-ahead power floor minus
  /// committed load, excluding `exclude`. An empty candidate list yields
  /// nullopt (a site with no latency neighbors has no standby).
  const auto best_site = [&](util::Tick now,
                             const std::vector<std::size_t>& candidates,
                             std::optional<std::size_t> exclude)
      -> std::optional<std::size_t> {
    std::optional<std::size_t> best;
    int best_headroom = 0;
    for (const std::size_t s : candidates) {
      if (exclude && *exclude == s) continue;
      const int headroom = day_ahead_floor(graph, s, now) - primary_cores[s];
      if (!best || headroom > best_headroom) {
        best = s;
        best_headroom = headroom;
      }
    }
    return best;
  };
  std::vector<std::size_t> all_sites(n_sites);
  for (std::size_t s = 0; s < n_sites; ++s) all_sites[s] = s;

  for (std::size_t i = 0; i < n_ticks; ++i) {
    const auto t = static_cast<util::Tick>(i);

    // 1. Departures.
    for (auto it = live.begin(); it != live.end();) {
      if (it->second.end_tick >= 0 && it->second.end_tick <= t) {
        primary_cores[it->second.primary] -= it->second.app.stable_cores();
        degradable_cores[it->second.primary] -=
            it->second.active_degradable * it->second.app.shape.cores;
        it = live.erase(it);
      } else {
        ++it;
      }
    }

    // 2. Arrivals: primary on the best day-ahead site, standby on the best
    //    latency-neighbor of the primary.
    while (next_app < apps.size() && apps[next_app].arrival <= t) {
      const workload::Application& app = apps[next_app];
      ReplicatedApp rep;
      rep.app = app;
      rep.end_tick = app.lifetime_ticks < 0 ? -1 : t + app.lifetime_ticks;
      rep.primary = best_site(t, all_sites, std::nullopt).value_or(0);
      rep.standby = best_site(t, graph.latency().neighbors(rep.primary),
                              rep.primary);
      rep.active_degradable = app.n_degradable;
      primary_cores[rep.primary] += app.stable_cores();
      degradable_cores[rep.primary] +=
          rep.active_degradable * app.shape.cores;
      ++result.apps_placed;
      live.emplace(app.app_id, std::move(rep));
      ++next_app;
    }

    // 3. Capacity enforcement: pause degradable first, then fail over to
    //    the standby.
    for (std::size_t s = 0; s < n_sites; ++s) {
      const int avail = graph.available_cores(s, t);
      int budget = avail - primary_cores[s];
      for (auto& [id, rep] : live) {
        if (rep.primary != s || rep.app.n_degradable == 0) continue;
        const int want = rep.app.n_degradable;
        const int can = std::clamp(
            budget / std::max(1, rep.app.shape.cores), 0, want);
        if (can != rep.active_degradable) {
          degradable_cores[s] +=
              (can - rep.active_degradable) * rep.app.shape.cores;
          rep.active_degradable = can;
        }
        budget -= can * rep.app.shape.cores;
        result.paused_degradable_vm_ticks += want - can;
        result.degradable_active_vm_ticks += can;
      }
      if (primary_cores[s] <= avail) continue;
      for (auto& [id, rep] : live) {
        if (primary_cores[s] <= avail) break;
        if (rep.primary != s || !rep.standby) continue;
        const std::size_t target = *rep.standby;
        const int target_headroom = graph.available_cores(target, t) -
                                    primary_cores[target] -
                                    degradable_cores[target];
        if (target_headroom < rep.app.stable_cores()) continue;
        // Failover: the standby becomes primary; a fresh standby rebuild
        // begins from the new primary.
        primary_cores[s] -= rep.app.stable_cores();
        degradable_cores[s] -= rep.active_degradable * rep.app.shape.cores;
        rep.primary = target;
        primary_cores[target] += rep.app.stable_cores();
        degradable_cores[target] +=
            rep.active_degradable * rep.app.shape.cores;
        ++result.planned_migrations;  // failovers counted here
        rep.standby = best_site(t, graph.latency().neighbors(rep.primary),
                                rep.primary);
        rep.rebuild_remaining_gb = rep.app.stable_memory_gb();
      }
      if (primary_cores[s] > avail) {
        result.displaced_stable_core_ticks += primary_cores[s] - avail;
      }
    }

    // 4. Replication traffic.
    const double rebuild_rate_gb =
        hours_per_tick / config.rebuild_hours;  // fraction per tick
    for (auto& [id, rep] : live) {
      if (!rep.standby) continue;
      const double mem = rep.app.stable_memory_gb();
      double gb = 0.0;
      if (rep.rebuild_remaining_gb > 0.0) {
        gb = std::min(rep.rebuild_remaining_gb, mem * rebuild_rate_gb);
        rep.rebuild_remaining_gb -= gb;
      } else if (config.hot_standby) {
        gb = mem * config.sync_fraction_per_hour * hours_per_tick;
      } else if (t % checkpoint_period == 0 && t > rep.app.arrival) {
        gb = mem * config.checkpoint_fraction;
      }
      if (gb > 0.0) {
        result.ledger.record_out(rep.primary, t, gb);
        result.ledger.record_in(*rep.standby, t, gb);
        result.moved_gb[i] += gb;
      }
    }

    // 5. Energy (same model as the migration simulator).
    for (std::size_t s = 0; s < n_sites; ++s) {
      const int active = primary_cores[s] + degradable_cores[s];
      if (active <= 0) continue;
      const int servers = (active + power_model.cores_per_server - 1) /
                          power_model.cores_per_server;
      const double mwh = (servers * power_model.server_idle_watts +
                          active * power_model.watts_per_active_core) *
                         hours_per_tick / 1e6;
      result.energy_mwh += mwh;
      result.energy_mwh_per_tick[i] += mwh;
    }
  }
  return result;
}

}  // namespace vbatt::core
