#include "vbatt/core/cliques.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>

#include "vbatt/stats/running_stats.h"

namespace vbatt::core {

namespace {

/// Depth-indexed candidate bitsets for the clique recursion: one
/// row_words-wide row per level, allocated once up front.
struct CandidateStack {
  std::size_t words = 0;
  std::vector<std::uint64_t> rows;

  CandidateStack(int depth, std::size_t row_words)
      : words{row_words},
        rows(static_cast<std::size_t>(depth) * row_words, 0) {}

  std::uint64_t* row(int level) {
    return rows.data() + static_cast<std::size_t>(level) * words;
  }
};

/// Extend `current` (members at levels < depth) with vertices from the
/// candidate set at `depth`: vertices greater than the last member and
/// adjacent to every member. Candidates are packed bitsets, so the
/// per-member connected() probes of the old implementation collapse into
/// one word-wise AND with the new vertex's adjacency row.
void extend_clique(const net::LatencyGraph& graph, int k,
                   std::vector<std::size_t>& current, int depth,
                   CandidateStack& stack,
                   std::vector<std::vector<std::size_t>>& out) {
  const std::size_t words = stack.words;
  const std::uint64_t* cand = stack.row(depth);

  // Prune: not enough candidates left to reach k members.
  std::size_t available = 0;
  for (std::size_t w = 0; w < words; ++w) {
    available += static_cast<std::size_t>(std::popcount(cand[w]));
  }
  if (static_cast<int>(current.size()) + static_cast<int>(available) < k) {
    return;
  }

  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = cand[w];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      const std::size_t v = w * 64 + static_cast<std::size_t>(bit);

      current.push_back(v);
      if (static_cast<int>(current.size()) == k) {
        out.push_back(current);
        current.pop_back();
        continue;
      }
      // Next level: candidates adjacent to v as well, restricted to > v.
      const std::uint64_t* adj = graph.adjacency_row(v);
      std::uint64_t* next = stack.row(depth + 1);
      for (std::size_t i = 0; i < w; ++i) next[i] = 0;
      next[w] = cand[w] & adj[w] & ~((std::uint64_t{2} << bit) - 1);
      for (std::size_t i = w + 1; i < words; ++i) {
        next[i] = cand[i] & adj[i];
      }
      extend_clique(graph, k, current, depth + 1, stack, out);
      current.pop_back();
    }
  }
}

std::vector<RankedSubgraph> score_cliques(
    std::vector<std::vector<std::size_t>> cliques, const ForecastCache& cache,
    util::Tick now, util::Tick end, util::ThreadPool* pool) {
  const std::size_t n_ticks = static_cast<std::size_t>(end - now);
  const std::size_t offset = static_cast<std::size_t>(now - cache.begin());

  std::vector<RankedSubgraph> out(cliques.size());
  const auto score_range = [&](std::size_t first, std::size_t last) {
    // Per-chunk scratch: raw series pointers for the clique, so the tick
    // loop reads contiguous ints with no vector indirection.
    std::vector<const int*> series;
    for (std::size_t c = first; c < last; ++c) {
      std::vector<std::size_t>& clique = cliques[c];
      series.clear();
      for (const std::size_t s : clique) {
        series.push_back(cache.series(s).data() + offset);
      }
      stats::RunningStats rs;
      for (std::size_t i = 0; i < n_ticks; ++i) {
        double cores = 0.0;
        for (const int* site_series : series) cores += site_series[i];
        rs.add(cores);
      }
      out[c] = RankedSubgraph{std::move(clique), rs.cov(), rs.mean()};
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(cliques.size(), score_range);
  } else {
    score_range(0, cliques.size());
  }

  std::sort(out.begin(), out.end(),
            [](const RankedSubgraph& a, const RankedSubgraph& b) {
              if (a.cov != b.cov) return a.cov < b.cov;
              return a.sites < b.sites;
            });
  return out;
}

}  // namespace

std::vector<std::vector<std::size_t>> find_k_cliques(
    const net::LatencyGraph& graph, int k) {
  if (k < 1) throw std::invalid_argument{"find_k_cliques: k < 1"};
  std::vector<std::vector<std::size_t>> out;
  const std::size_t n = graph.size();
  if (n == 0) return out;

  CandidateStack stack{k + 1, graph.row_words()};
  std::uint64_t* all = stack.row(0);
  for (std::size_t v = 0; v < n; ++v) {
    all[v / 64] |= std::uint64_t{1} << (v % 64);
  }
  std::vector<std::size_t> current;
  current.reserve(static_cast<std::size_t>(k));
  extend_clique(graph, k, current, 0, stack, out);
  return out;
}

std::vector<RankedSubgraph> rank_subgraphs(const VbGraph& graph, int k,
                                           util::Tick now,
                                           util::Tick window_ticks,
                                           const ForecastCache& cache,
                                           util::ThreadPool* pool) {
  const util::Tick end = std::min<util::Tick>(
      static_cast<util::Tick>(graph.n_ticks()), now + window_ticks);
  if (now < 0 || now >= end) {
    throw std::out_of_range{"rank_subgraphs: bad window"};
  }
  if (cache.now() != now || cache.begin() > now || cache.end() < end) {
    throw std::invalid_argument{"rank_subgraphs: cache/window mismatch"};
  }
  return score_cliques(find_k_cliques(graph.latency(), k), cache, now, end,
                       pool);
}

std::vector<RankedSubgraph> rank_subgraphs(const VbGraph& graph, int k,
                                           util::Tick now,
                                           util::Tick window_ticks) {
  const util::Tick end = std::min<util::Tick>(
      static_cast<util::Tick>(graph.n_ticks()), now + window_ticks);
  if (now < 0 || now >= end) {
    throw std::out_of_range{"rank_subgraphs: bad window"};
  }
  util::ThreadPool& pool = util::ThreadPool::shared();
  util::ThreadPool* pool_ptr = pool.size() > 0 ? &pool : nullptr;
  ForecastCache cache;
  cache.refresh(graph, now, now, end, pool_ptr);
  return rank_subgraphs(graph, k, now, window_ticks, cache, pool_ptr);
}

}  // namespace vbatt::core
