#include "vbatt/core/cliques.h"

#include <algorithm>
#include <stdexcept>

#include "vbatt/stats/running_stats.h"

namespace vbatt::core {

namespace {

void extend_clique(const net::LatencyGraph& graph, int k,
                   std::vector<std::size_t>& current,
                   std::size_t next_candidate,
                   std::vector<std::vector<std::size_t>>& out) {
  if (static_cast<int>(current.size()) == k) {
    out.push_back(current);
    return;
  }
  for (std::size_t v = next_candidate; v < graph.size(); ++v) {
    bool adjacent_to_all = true;
    for (const std::size_t u : current) {
      if (!graph.connected(u, v)) {
        adjacent_to_all = false;
        break;
      }
    }
    if (!adjacent_to_all) continue;
    current.push_back(v);
    extend_clique(graph, k, current, v + 1, out);
    current.pop_back();
  }
}

}  // namespace

std::vector<std::vector<std::size_t>> find_k_cliques(
    const net::LatencyGraph& graph, int k) {
  if (k < 1) throw std::invalid_argument{"find_k_cliques: k < 1"};
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> current;
  extend_clique(graph, k, current, 0, out);
  return out;
}

std::vector<RankedSubgraph> rank_subgraphs(const VbGraph& graph, int k,
                                           util::Tick now,
                                           util::Tick window_ticks) {
  const util::Tick end = std::min<util::Tick>(
      static_cast<util::Tick>(graph.n_ticks()), now + window_ticks);
  if (now < 0 || now >= end) {
    throw std::out_of_range{"rank_subgraphs: bad window"};
  }
  std::vector<RankedSubgraph> out;
  for (auto& clique : find_k_cliques(graph.latency(), k)) {
    stats::RunningStats rs;
    for (util::Tick t = now; t < end; ++t) {
      double cores = 0.0;
      for (const std::size_t s : clique) {
        cores += graph.forecast_cores(s, t, now);
      }
      rs.add(cores);
    }
    out.push_back(RankedSubgraph{std::move(clique), rs.cov(), rs.mean()});
  }
  std::sort(out.begin(), out.end(),
            [](const RankedSubgraph& a, const RankedSubgraph& b) {
              if (a.cov != b.cov) return a.cov < b.cov;
              return a.sites < b.sites;
            });
  return out;
}

}  // namespace vbatt::core
