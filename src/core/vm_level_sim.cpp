#include "vbatt/core/vm_level_sim.h"

#include "vbatt/util/dense_index.h"
#include "vbatt/util/signal.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace vbatt::core {

namespace {

std::unique_ptr<dcsim::AllocationPolicy> make_policy(
    VmLevelConfig::Placement placement) {
  switch (placement) {
    case VmLevelConfig::Placement::first_fit:
      return std::make_unique<dcsim::FirstFitPolicy>();
    case VmLevelConfig::Placement::worst_fit:
      return std::make_unique<dcsim::WorstFitPolicy>();
    case VmLevelConfig::Placement::best_fit:
      break;
  }
  return std::make_unique<dcsim::BestFitPolicy>();
}

struct TrackedApp {
  workload::Application app;
  util::Tick end_tick = 0;
  std::size_t home = 0;                 // intended site
  std::vector<std::size_t> allowed;
  std::vector<std::int64_t> stable_ids;
  std::vector<std::int64_t> degradable_ids;  // currently running
  int paused_degradable = 0;
};

/// A stable VM evicted by a power dip, waiting for a new home.
struct DisplacedVm {
  dcsim::VmInstance vm;
  std::size_t source = 0;
};

}  // namespace

VmLevelResult run_vm_level_simulation(
    const VbGraph& graph, const std::vector<workload::Application>& apps,
    Scheduler& scheduler, const VmLevelConfig& config,
    util::ThreadPool* pool) {
  const std::size_t n_sites = graph.n_sites();
  const std::size_t n_ticks = graph.n_ticks();
  VmLevelResult result{n_sites, n_ticks};

  const std::unique_ptr<dcsim::AllocationPolicy> policy =
      make_policy(config.placement);

  // Fault machinery; every branch below is gated on `hooks`, so without
  // hooks the run is byte-identical to the pre-fault simulator.
  FaultHooks* const hooks = config.faults.hooks;
  const MoveRetryPolicy retry = config.faults.retry;
  struct PendingRetry {
    Move move;
    int attempts = 0;  // failed attempts so far
  };
  std::map<util::Tick, std::vector<PendingRetry>> retry_queue;
  /// Scheduled server repairs: repair tick -> (site, server count).
  std::map<util::Tick, std::vector<std::pair<std::size_t, int>>> repairs;

  // One dcsim site per VB node, sized from the node's capacity.
  std::vector<dcsim::Site> sites;
  sites.reserve(n_sites);
  for (std::size_t s = 0; s < n_sites; ++s) {
    dcsim::SiteConfig site_config;
    site_config.n_servers = std::max(
        1, graph.site(s).capacity_cores / config.server.cores);
    site_config.server = config.server;
    site_config.utilization_cap = 1.0;  // the scheduler owns admission
    sites.emplace_back(site_config);
  }

  // Hashed, not ordered: the hot paths (displaced re-home, eviction
  // bookkeeping, resume) look apps up by id once per VM touched, and the
  // only iteration (replan's FleetState mirror) fills an ordered map keyed
  // by app_id, which comes out identical regardless of visit order.
  std::unordered_map<std::int64_t, TrackedApp> live;
  live.reserve(apps.size());
  std::map<std::int64_t, std::vector<Move>> pending_moves;
  std::deque<DisplacedVm> displaced;
  std::int64_t next_vm_id = 0;
  std::size_t next_app = 0;

  // Aggregates over the live entries of the displaced queue (count per
  // distinct core size, per owning app, and the core-tick sum) so the
  // re-home pass can prove "nothing can fit anywhere" in O(sites) and skip
  // its full rotation of the queue. Entries of departed apps are not
  // scanned out eagerly: their aggregates are retired when the app departs
  // and the queue nodes become tombstones the next slow pass discards.
  std::map<int, std::int64_t> displaced_core_counts;
  std::unordered_map<std::int64_t, int> displaced_count_by_app;
  std::int64_t displaced_cores_total = 0;
  const auto displaced_add = [&](std::int64_t app_id, int cores) {
    ++displaced_core_counts[cores];
    ++displaced_count_by_app[app_id];
    displaced_cores_total += cores;
  };
  const auto displaced_drop = [&](std::int64_t app_id, int cores) {
    const auto it = displaced_core_counts.find(cores);
    if (--it->second == 0) displaced_core_counts.erase(it);
    const auto ait = displaced_count_by_app.find(app_id);
    if (--ait->second == 0) displaced_count_by_app.erase(ait);
    displaced_cores_total -= cores;
  };

  // Same aggregate for paused degradable VMs: during a power dip no site
  // has headroom, and the resume pass (step 7) can skip its walk of the
  // paused index outright.
  std::map<int, std::int64_t> paused_core_counts;

  // Event indices: apps by departure tick (calendar queue, heap yields
  // app_id order within a tick), pending moves by due tick (step 4 touches
  // only apps with a move due now), and apps with paused degradable VMs
  // (step 7 touches only those). The fleet-wide degradable counters make
  // the per-tick paused/active stats O(1) instead of a live-app sweep.
  using AppDeparture = std::pair<util::Tick, std::int64_t>;
  std::priority_queue<AppDeparture, std::vector<AppDeparture>,
                      std::greater<AppDeparture>>
      app_departures;
  std::map<util::Tick, std::set<std::int64_t>> due_moves;
  std::set<std::int64_t> paused_apps;
  std::int64_t fleet_degradable_ids = 0;  // sum of degradable_ids sizes
  std::int64_t fleet_paused = 0;          // sum of paused_degradable

  // The scheduler sees the same FleetState as the app-level simulator;
  // keep its aggregates in sync with the per-VM truth.
  FleetState state;
  state.graph = &graph;
  state.stable_cores.assign(n_sites, 0);
  state.degradable_cores.assign(n_sites, 0);

  // Where each resident VM currently lives, indexed by vm_id (-1 while the
  // VM is displaced, paused, or departed). VM ids are dense sequential
  // integers, so a flat index makes every lookup and update a single
  // indexed access with no hashing and no per-placement node allocation.
  // Pre-reserved to the workload's whole VM budget so arrivals never
  // reallocate; only resume respawns can grow it past that (geometric).
  util::DenseIndex<std::int32_t> vm_site{-1};
  {
    std::size_t vm_budget = 0;
    for (const workload::Application& app : apps) {
      vm_budget += static_cast<std::size_t>(app.n_stable + app.n_degradable);
    }
    vm_site.reserve(vm_budget);
  }

  const auto place_vm = [&](dcsim::VmInstance vm, std::size_t s) -> bool {
    if (!sites[s].place(vm, *policy)) return false;
    if (vm.vm_class == workload::VmClass::stable) {
      state.stable_cores[s] += vm.shape.cores;
    } else {
      state.degradable_cores[s] += vm.shape.cores;
    }
    vm_site.ensure(vm.vm_id) = static_cast<std::int32_t>(s);
    return true;
  };
  const auto remove_vm = [&](std::int64_t vm_id,
                             std::size_t s) -> std::optional<dcsim::VmInstance> {
    const auto removed = sites[s].remove(vm_id);
    if (removed) {
      if (removed->vm_class == workload::VmClass::stable) {
        state.stable_cores[s] -= removed->shape.cores;
      } else {
        state.degradable_cores[s] -= removed->shape.cores;
      }
      vm_site[vm_id] = -1;
    }
    return removed;
  };
  const auto pause_degradable = [&](std::int64_t app_id, TrackedApp& app) {
    ++app.paused_degradable;
    ++fleet_paused;
    ++paused_core_counts[app.app.shape.cores];
    paused_apps.insert(app_id);
  };
  // degradable_ids holds exactly the *resident* degradable VMs of an app —
  // paused VMs are counted in paused_degradable, never listed. A VM that
  // leaves a server (eviction, failed move) must therefore leave the list
  // too, or the active-tick accounting double-counts it after resume.
  const auto drop_degradable_id = [&](TrackedApp& app, std::int64_t vm_id) {
    const auto it =
        std::find(app.degradable_ids.begin(), app.degradable_ids.end(), vm_id);
    if (it != app.degradable_ids.end()) {
      app.degradable_ids.erase(it);
      --fleet_degradable_ids;
    }
  };

  const double hours_per_tick = graph.axis().minutes_per_tick() / 60.0;
  const util::Tick replan_period = scheduler.replan_period_ticks();

  // Per-site scratch reused every tick by the parallel steps; each lane
  // writes only its own slots, so results are thread-count-invariant.
  std::vector<std::vector<dcsim::VmInstance>> evicted_by_site(n_sites);
  std::vector<int> site_powered(n_sites, 0);
  std::vector<double> site_mwh(n_sites, 0.0);
  std::vector<int> avail(n_sites, 0);
  std::uint64_t topo_epoch = hooks ? hooks->topology_epoch() : 0;

  // Opt-in scenario extensions: batch overlay + econ series. Null keeps
  // every new branch cold, so a default run stays byte-identical.
  const bool has_overlay = config.ext != nullptr &&
                           config.ext->batch != nullptr &&
                           !config.ext->batch->empty();
  workload::BatchOverlay overlay =
      has_overlay ? workload::BatchOverlay{*config.ext->batch}
                  : workload::BatchOverlay{};
  const energy::SiteSeries* price =
      config.ext != nullptr ? config.ext->price : nullptr;
  const energy::SiteSeries* carbon =
      config.ext != nullptr ? config.ext->carbon : nullptr;
  std::vector<std::int64_t> overlay_free;
  if (has_overlay) overlay_free.assign(n_sites, 0);

  for (std::size_t i = 0; i < n_ticks; ++i) {
    if (util::shutdown_requested()) break;
    const auto t = static_cast<util::Tick>(i);
    state.now = t;
    ++result.base.completed_ticks;

    // 0. Fault bookkeeping: link transitions apply inside begin_tick, and
    //    servers whose outage ends now come back (empty, placeable again).
    //    A topology-epoch advance tells the scheduler to drop warm-start
    //    state keyed to the old fleet.
    if (hooks) {
      hooks->begin_tick(t);
      if (const std::uint64_t epoch = hooks->topology_epoch();
          epoch != topo_epoch) {
        topo_epoch = epoch;
        scheduler.on_topology_change();
      }
      if (const auto due = repairs.find(t); due != repairs.end()) {
        for (const auto& [s, count] : due->second) {
          sites[s].repair_servers(count);
        }
        repairs.erase(due);
      }
    }

    // The tick's power budget is pure in (s, t): compute it once instead
    // of per displaced VM / paused app in steps 5-7, and hand it to the
    // scheduler as its available() cache for the tick.
    for (std::size_t s = 0; s < n_sites; ++s) {
      avail[s] = graph.available_cores(s, t);
    }
    state.avail_cache = &avail;

    /// Fold a batch of evicted VMs (power shrink or server failure at site
    /// `s`) into the displaced/paused machinery.
    const auto absorb_evicted =
        [&](std::size_t s, const std::vector<dcsim::VmInstance>& batch) {
          for (const dcsim::VmInstance& vm : batch) {
            vm_site[vm.vm_id] = -1;
            if (vm.vm_class == workload::VmClass::stable) {
              state.stable_cores[s] -= vm.shape.cores;
              displaced.push_back(DisplacedVm{vm, s});
              displaced_add(vm.app_id, vm.shape.cores);
            } else {
              state.degradable_cores[s] -= vm.shape.cores;
              const auto it = live.find(vm.app_id);
              if (it != live.end()) {
                drop_degradable_id(it->second, vm.vm_id);
                pause_degradable(vm.app_id, it->second);
              }
            }
          }
        };

    // 1. App departures, served from the calendar queue.
    while (!app_departures.empty() && app_departures.top().first <= t) {
      const std::int64_t app_id = app_departures.top().second;
      app_departures.pop();
      const auto it = live.find(app_id);
      if (it == live.end()) continue;  // defensive: apps depart once
      TrackedApp& app = it->second;
      const auto remove_resident = [&](std::int64_t id) {
        // Non-resident VMs (displaced, paused, or never placed) read as
        // -1; their queued copies are dropped below.
        const std::int32_t at = vm_site.get(id);
        if (at >= 0) remove_vm(id, static_cast<std::size_t>(at));
      };
      for (const std::int64_t id : app.stable_ids) remove_resident(id);
      for (const std::int64_t id : app.degradable_ids) remove_resident(id);
      fleet_degradable_ids -=
          static_cast<std::int64_t>(app.degradable_ids.size());
      fleet_paused -= app.paused_degradable;
      if (app.paused_degradable > 0) {
        const auto pit = paused_core_counts.find(app.app.shape.cores);
        if ((pit->second -= app.paused_degradable) == 0) {
          paused_core_counts.erase(pit);
        }
      }
      // Retire the app's displaced aggregates now; its queue entries
      // become tombstones the next slow re-home pass discards. (All of an
      // app's VMs share its shape.)
      if (const auto dit = displaced_count_by_app.find(app_id);
          dit != displaced_count_by_app.end()) {
        const int cores = app.app.shape.cores;
        const auto cit = displaced_core_counts.find(cores);
        if ((cit->second -= dit->second) == 0) {
          displaced_core_counts.erase(cit);
        }
        displaced_cores_total -=
            static_cast<std::int64_t>(dit->second) * cores;
        displaced_count_by_app.erase(dit);
      }
      paused_apps.erase(app_id);
      pending_moves.erase(app_id);
      live.erase(it);
    }

    // 2. Replanning — mirror the scheduler state into FleetState.apps.
    if (replan_period > 0 && t > 0 && t % replan_period == 0) {
      state.apps.clear();
      for (const auto& [id, app] : live) {
        LiveApp summary;
        summary.app = app.app;
        summary.end_tick = app.end_tick;
        summary.site = app.home;
        summary.allowed = app.allowed;
        summary.active_degradable =
            static_cast<int>(app.degradable_ids.size());
        state.apps.emplace(id, std::move(summary));
      }
      pending_moves.clear();
      due_moves.clear();
      retry_queue.clear();  // a replan supersedes every outstanding move
      for (Move& move : scheduler.replan(state)) {
        due_moves[move.at_tick].insert(move.app_id);
        pending_moves[move.app_id].push_back(move);
      }
    }

    // 3. Arrivals.
    while (next_app < apps.size() && apps[next_app].arrival <= t) {
      const workload::Application& app = apps[next_app];
      const Scheduler::Placement placement = scheduler.place(app, state);
      TrackedApp tracked;
      tracked.app = app;
      tracked.end_tick =
          app.lifetime_ticks < 0 ? -1 : t + app.lifetime_ticks;
      tracked.home = placement.site;
      tracked.allowed = placement.allowed;
      const util::Tick vm_end = tracked.end_tick;
      for (int v = 0; v < app.n_stable + app.n_degradable; ++v) {
        dcsim::VmInstance vm;
        vm.vm_id = next_vm_id++;
        vm.app_id = app.app_id;
        vm.shape = app.shape;
        vm.vm_class = v < app.n_stable ? workload::VmClass::stable
                                       : workload::VmClass::degradable;
        vm.end_tick = vm_end;
        if (place_vm(vm, placement.site)) {
          (vm.vm_class == workload::VmClass::stable
               ? tracked.stable_ids
               : tracked.degradable_ids)
              .push_back(vm.vm_id);
        } else if (vm.vm_class == workload::VmClass::stable) {
          ++result.fragmentation_failures;
          displaced.push_back(DisplacedVm{vm, placement.site});
          displaced_add(vm.app_id, vm.shape.cores);
          tracked.stable_ids.push_back(vm.vm_id);
        } else {
          ++tracked.paused_degradable;
        }
      }
      if (!placement.scheduled_moves.empty()) {
        for (const Move& move : placement.scheduled_moves) {
          due_moves[move.at_tick].insert(app.app_id);
        }
        pending_moves[app.app_id] = placement.scheduled_moves;
      }
      fleet_degradable_ids +=
          static_cast<std::int64_t>(tracked.degradable_ids.size());
      fleet_paused += tracked.paused_degradable;
      if (tracked.paused_degradable > 0) {
        paused_core_counts[app.shape.cores] += tracked.paused_degradable;
        paused_apps.insert(app.app_id);
      }
      if (tracked.end_tick >= 0) {
        app_departures.emplace(tracked.end_tick, app.app_id);
      }
      ++result.base.apps_placed;
      live.emplace(app.app_id, std::move(tracked));
      ++next_app;
    }

    // 4. Execute due proactive moves: relocate every resident VM. The due
    // index hands over exactly the apps with a move due this tick, in
    // app_id order (as the full pending_moves sweep used to).
    /// Whether `move` can execute right now under active faults.
    const auto move_blocked = [&](const TrackedApp& app, const Move& move) {
      return hooks->site_down(move.to_site, t) ||
             !graph.latency().connected(app.home, move.to_site);
    };
    /// Re-queue a blocked move with capped exponential backoff, or abandon
    /// it once the attempt budget is spent.
    const auto defer_move = [&](const Move& move, int prior_attempts) {
      const int attempts = prior_attempts + 1;
      if (attempts >= retry.max_attempts) {
        ++result.base.abandoned_moves;
        return;
      }
      util::Tick backoff = retry.base_backoff_ticks;
      for (int a = 1; a < attempts && backoff < retry.max_backoff_ticks; ++a) {
        backoff *= 2;
      }
      backoff = std::min(backoff, retry.max_backoff_ticks);
      Move again = move;
      again.at_tick = t + backoff;
      retry_queue[again.at_tick].push_back({again, attempts});
      ++result.base.retried_moves;
    };
    /// Carry out one app move: relocate every resident VM.
    const auto execute_app_move = [&](std::int64_t app_id, TrackedApp& app,
                                      const Move& move) {
      const std::size_t from = app.home;
      app.home = move.to_site;
      bool moved_any = false;
      for (const std::int64_t id : app.stable_ids) {
        const auto vm = remove_vm(id, from);
        if (!vm) continue;  // currently displaced or elsewhere
        if (place_vm(*vm, move.to_site)) {
          const double gb = vm->shape.memory_gb;
          result.base.ledger.record_out(from, t, gb);
          result.base.ledger.record_in(move.to_site, t, gb);
          result.base.moved_gb[i] += gb;
          ++result.vm_migrations;
          moved_any = true;
        } else {
          ++result.fragmentation_failures;
          displaced.push_back(DisplacedVm{*vm, from});
          displaced_add(vm->app_id, vm->shape.cores);
        }
      }
      std::vector<std::int64_t> kept_degradable;
      kept_degradable.reserve(app.degradable_ids.size());
      for (const std::int64_t id : app.degradable_ids) {
        const auto vm = remove_vm(id, from);
        if (!vm || place_vm(*vm, move.to_site)) {
          kept_degradable.push_back(id);
        } else {
          pause_degradable(app_id, app);
        }
        // Degradable respawn: no WAN traffic.
      }
      fleet_degradable_ids -= static_cast<std::int64_t>(
          app.degradable_ids.size() - kept_degradable.size());
      app.degradable_ids = std::move(kept_degradable);
      if (moved_any) ++result.base.planned_migrations;
    };
    if (const auto due = due_moves.find(t); due != due_moves.end()) {
      for (const std::int64_t app_id : due->second) {
        const auto pend = pending_moves.find(app_id);
        if (pend == pending_moves.end()) continue;
        const auto live_it = live.find(app_id);
        if (live_it == live.end()) continue;
        TrackedApp& app = live_it->second;
        for (const Move& move : pend->second) {
          if (move.at_tick != t || move.to_site == app.home) continue;
          if (hooks && move_blocked(app, move)) {
            defer_move(move, 0);
          } else {
            execute_app_move(app_id, app, move);
          }
        }
      }
      due_moves.erase(due);
    }

    // 4b. Retry moves whose backoff expires now (fault runs only).
    if (hooks) {
      if (const auto due = retry_queue.find(t); due != retry_queue.end()) {
        std::vector<PendingRetry> batch = std::move(due->second);
        retry_queue.erase(due);
        for (const PendingRetry& pr : batch) {
          const auto live_it = live.find(pr.move.app_id);
          if (live_it == live.end()) continue;  // departed meanwhile
          TrackedApp& app = live_it->second;
          if (pr.move.to_site == app.home) continue;  // already there
          if (move_blocked(app, pr.move)) {
            defer_move(pr.move, pr.attempts);
          } else {
            execute_app_move(pr.move.app_id, app, pr.move);
          }
        }
      }

      // 4c. Server failures beginning this tick: take the servers offline
      //     and fold their evicted residents into the displaced/paused
      //     machinery, exactly as a power shrink would.
      for (const ServerOutage& outage : hooks->server_outages_at(t)) {
        if (outage.site >= n_sites || outage.count <= 0) continue;
        absorb_evicted(outage.site,
                       sites[outage.site].fail_servers(outage.count));
        if (outage.repair_tick > t) {
          repairs[outage.repair_tick].emplace_back(outage.site,
                                                   outage.count);
        }
      }
    }

    // 5. Power enforcement: each site sheds to its powered-core budget.
    // Shrinks are site-local, so they fan across the pool; eviction
    // bookkeeping merges serially in site order (deterministic).
    const auto shrink_sites = [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        evicted_by_site[s] = sites[s].shrink_to(avail[s]);
      }
    };
    if (pool != nullptr && n_sites > 1) {
      pool->parallel_for(n_sites, shrink_sites);
    } else {
      shrink_sites(0, n_sites);
    }
    for (std::size_t s = 0; s < n_sites; ++s) {
      absorb_evicted(s, evicted_by_site[s]);
    }

    // 6. Re-home displaced stable VMs (migration traffic on success). When
    // no site has headroom for even the smallest displaced VM, every retry
    // would fail and the full rotation would leave the queue unchanged, so
    // the pass collapses to one counter bump (the sum the rotation would
    // have accumulated). This is the common case during long power dips.
    bool any_can_fit = false;
    if (!displaced_core_counts.empty()) {
      const int min_cores = displaced_core_counts.begin()->first;
      for (std::size_t s = 0; s < n_sites && !any_can_fit; ++s) {
        any_can_fit = avail[s] - sites[s].allocated_cores() >= min_cores;
      }
    }
    std::int64_t displaced_this_tick = 0;
    if (!any_can_fit) {
      // Sum over live entries only: tombstones stay queued but were
      // already retired from the aggregates when their app departed.
      result.base.displaced_stable_core_ticks += displaced_cores_total;
      displaced_this_tick = displaced_cores_total;
      // Per-app attribution: iteration order doesn't matter, += into the
      // ordered result map touches each app exactly once.
      for (const auto& [app_id, count] : displaced_count_by_app) {
        result.base.displaced_by_app[app_id] +=
            static_cast<std::int64_t>(count) *
            live.at(app_id).app.shape.cores;
      }
    } else {
      for (std::size_t d = displaced.size(); d-- > 0;) {
        DisplacedVm entry = displaced.front();
        displaced.pop_front();
        const auto it = live.find(entry.vm.app_id);
        if (it == live.end()) continue;  // tombstone: aggregates retired
        bool placed = false;
        for (const std::size_t cand : it->second.allowed) {
          if (avail[cand] - sites[cand].allocated_cores() <
              entry.vm.shape.cores) {
            continue;
          }
          if (place_vm(entry.vm, cand)) {
            const double gb = entry.vm.shape.memory_gb;
            if (cand != entry.source) {
              result.base.ledger.record_out(entry.source, t, gb);
              result.base.ledger.record_in(cand, t, gb);
              result.base.moved_gb[i] += gb;
              ++result.vm_migrations;
              ++result.base.forced_migrations;
            }
            displaced_drop(entry.vm.app_id, entry.vm.shape.cores);
            placed = true;
            break;
          }
        }
        if (!placed) {
          result.base.displaced_stable_core_ticks += entry.vm.shape.cores;
          result.base.displaced_by_app[entry.vm.app_id] +=
              entry.vm.shape.cores;
          displaced_this_tick += entry.vm.shape.cores;
          displaced.push_back(entry);
        }
      }
    }

    // 7. Resume paused degradable VMs at their app's home site. Only apps
    // in the paused index are touched (in app_id order, matching the old
    // full sweep); the per-tick stats come from the fleet counters. When
    // no site has headroom for even the smallest paused shape — the whole
    // of every power dip — the walk is skipped outright: headroom never
    // grows during the pass, so every iteration would be a no-op.
    bool any_can_resume = false;
    if (!paused_core_counts.empty()) {
      const int min_cores = paused_core_counts.begin()->first;
      for (std::size_t s = 0; s < n_sites && !any_can_resume; ++s) {
        any_can_resume = avail[s] - sites[s].allocated_cores() >= min_cores;
      }
    }
    for (auto it = paused_apps.begin();
         any_can_resume && it != paused_apps.end();) {
      const std::int64_t id = *it;
      TrackedApp& app = live.at(id);
      while (app.paused_degradable > 0) {
        const int headroom =
            avail[app.home] - sites[app.home].allocated_cores();
        if (headroom < app.app.shape.cores) break;
        dcsim::VmInstance vm;
        vm.vm_id = next_vm_id++;
        vm.app_id = id;
        vm.shape = app.app.shape;
        vm.vm_class = workload::VmClass::degradable;
        vm.end_tick = app.end_tick;
        if (!place_vm(vm, app.home)) break;  // fragmentation
        app.degradable_ids.push_back(vm.vm_id);
        ++fleet_degradable_ids;
        --app.paused_degradable;
        --fleet_paused;
        const auto pit = paused_core_counts.find(app.app.shape.cores);
        if (--pit->second == 0) paused_core_counts.erase(pit);
      }
      it = app.paused_degradable == 0 ? paused_apps.erase(it)
                                      : std::next(it);
    }
    result.base.paused_degradable_vm_ticks += fleet_paused;
    result.base.degradable_active_vm_ticks += fleet_degradable_ids;

    // 7b. Batch overlay: gang-schedule deadline jobs and harvest fillers
    // onto the cores the service ledger leaves free this tick. Uses the
    // fleet ledger (not server-level headroom) so the sharded fleet engine
    // computes the identical free series.
    if (has_overlay) {
      for (std::size_t s = 0; s < n_sites; ++s) {
        const std::int64_t free = static_cast<std::int64_t>(avail[s]) -
                                  state.stable_cores[s] -
                                  state.degradable_cores[s];
        overlay_free[s] = free > 0 ? free : 0;
      }
      overlay.step(t, overlay_free);
    }

    // 8. Energy: only servers actually hosting VMs are powered. The site
    // counters make each term O(1); the per-site terms fan across the
    // pool and reduce serially in site order (bit-identical).
    const auto energy_body = [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        const int powered = sites[s].powered_servers();
        const int active_cores = sites[s].active_cores();
        site_powered[s] = powered;
        site_mwh[s] =
            (powered * config.power.server_idle_watts +
             active_cores * config.power.watts_per_active_core) *
            hours_per_tick / 1e6;
      }
    };
    if (pool != nullptr && n_sites > 1) {
      pool->parallel_for(n_sites, energy_body);
    } else {
      energy_body(0, n_sites);
    }
    for (std::size_t s = 0; s < n_sites; ++s) {
      result.powered_server_ticks += site_powered[s];
      result.base.energy_mwh += site_mwh[s];
      result.base.energy_mwh_per_tick[i] += site_mwh[s];
      if (price != nullptr) {
        const double usd =
            price->value(s, static_cast<double>(t)) * site_mwh[s];
        result.base.cost_usd += usd;
        result.base.cost_usd_per_tick[i] += usd;
      }
      if (carbon != nullptr) {
        const double kg =
            carbon->value(s, static_cast<double>(t)) * site_mwh[s];
        result.base.carbon_kg += kg;
        result.base.carbon_kg_per_tick[i] += kg;
      }
    }

    // 9. Fault accounting and end-of-tick observation.
    result.base.displaced_stable_cores_per_tick[i] = displaced_this_tick;
    if (hooks) {
      if (displaced_this_tick > 0) ++result.base.stable_vm_downtime_ticks;
      for (std::size_t s = 0; s < n_sites; ++s) {
        if (hooks->site_degraded(s, t)) ++result.base.faulted_site_ticks;
      }
      TickSnapshot snap;
      snap.t = t;
      snap.available = &avail;
      snap.stable_cores = &state.stable_cores;
      snap.degradable_cores = &state.degradable_cores;
      snap.displaced_stable_cores = displaced_this_tick;
      hooks->on_tick_end(snap);
    }
  }
  if (has_overlay) {
    overlay.finalize();
    result.base.batch = overlay.stats();
  }
  result.base.fallback_activations = scheduler.fallback_count();
  return result;
}

}  // namespace vbatt::core
