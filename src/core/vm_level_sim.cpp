#include "vbatt/core/vm_level_sim.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace vbatt::core {

namespace {

std::unique_ptr<dcsim::AllocationPolicy> make_policy(
    VmLevelConfig::Placement placement) {
  switch (placement) {
    case VmLevelConfig::Placement::first_fit:
      return std::make_unique<dcsim::FirstFitPolicy>();
    case VmLevelConfig::Placement::worst_fit:
      return std::make_unique<dcsim::WorstFitPolicy>();
    case VmLevelConfig::Placement::best_fit:
      break;
  }
  return std::make_unique<dcsim::BestFitPolicy>();
}

struct TrackedApp {
  workload::Application app;
  util::Tick end_tick = 0;
  std::size_t home = 0;                 // intended site
  std::vector<std::size_t> allowed;
  std::vector<std::int64_t> stable_ids;
  std::vector<std::int64_t> degradable_ids;  // currently running
  int paused_degradable = 0;
};

/// A stable VM evicted by a power dip, waiting for a new home.
struct DisplacedVm {
  dcsim::VmInstance vm;
  std::size_t source = 0;
};

}  // namespace

VmLevelResult run_vm_level_simulation(
    const VbGraph& graph, const std::vector<workload::Application>& apps,
    Scheduler& scheduler, const VmLevelConfig& config) {
  const std::size_t n_sites = graph.n_sites();
  const std::size_t n_ticks = graph.n_ticks();
  VmLevelResult result{n_sites, n_ticks};

  const std::unique_ptr<dcsim::AllocationPolicy> policy =
      make_policy(config.placement);

  // One dcsim site per VB node, sized from the node's capacity.
  std::vector<dcsim::Site> sites;
  sites.reserve(n_sites);
  for (std::size_t s = 0; s < n_sites; ++s) {
    dcsim::SiteConfig site_config;
    site_config.n_servers = std::max(
        1, graph.site(s).capacity_cores / config.server.cores);
    site_config.server = config.server;
    site_config.utilization_cap = 1.0;  // the scheduler owns admission
    sites.emplace_back(site_config);
  }

  std::map<std::int64_t, TrackedApp> live;
  std::map<std::int64_t, std::vector<Move>> pending_moves;
  std::deque<DisplacedVm> displaced;
  std::int64_t next_vm_id = 0;
  std::size_t next_app = 0;

  // The scheduler sees the same FleetState as the app-level simulator;
  // keep its aggregates in sync with the per-VM truth.
  FleetState state;
  state.graph = &graph;
  state.stable_cores.assign(n_sites, 0);
  state.degradable_cores.assign(n_sites, 0);

  // Where each resident VM currently lives. Kept in lockstep with every
  // site mutation so removals are O(1) lookups instead of a probe over
  // all sites (displaced VMs are absent until re-placed).
  std::unordered_map<std::int64_t, std::size_t> vm_site;

  const auto place_vm = [&](dcsim::VmInstance vm, std::size_t s) -> bool {
    if (!sites[s].place(vm, *policy)) return false;
    if (vm.vm_class == workload::VmClass::stable) {
      state.stable_cores[s] += vm.shape.cores;
    } else {
      state.degradable_cores[s] += vm.shape.cores;
    }
    vm_site[vm.vm_id] = s;
    return true;
  };
  const auto remove_vm = [&](std::int64_t vm_id,
                             std::size_t s) -> std::optional<dcsim::VmInstance> {
    const auto removed = sites[s].remove(vm_id);
    if (removed) {
      if (removed->vm_class == workload::VmClass::stable) {
        state.stable_cores[s] -= removed->shape.cores;
      } else {
        state.degradable_cores[s] -= removed->shape.cores;
      }
      vm_site.erase(vm_id);
    }
    return removed;
  };

  const double hours_per_tick = graph.axis().minutes_per_tick() / 60.0;
  const util::Tick replan_period = scheduler.replan_period_ticks();

  for (std::size_t i = 0; i < n_ticks; ++i) {
    const auto t = static_cast<util::Tick>(i);
    state.now = t;

    // 1. App departures.
    for (auto it = live.begin(); it != live.end();) {
      TrackedApp& app = it->second;
      if (app.end_tick >= 0 && app.end_tick <= t) {
        const auto remove_resident = [&](std::int64_t id) {
          // Displaced VMs have no index entry; their queued copies are
          // dropped below.
          const auto at = vm_site.find(id);
          if (at != vm_site.end()) remove_vm(id, at->second);
        };
        for (const std::int64_t id : app.stable_ids) remove_resident(id);
        for (const std::int64_t id : app.degradable_ids) remove_resident(id);
        pending_moves.erase(it->first);
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    // Drop displaced VMs of departed apps.
    displaced.erase(
        std::remove_if(displaced.begin(), displaced.end(),
                       [&](const DisplacedVm& d) {
                         return !live.contains(d.vm.app_id);
                       }),
        displaced.end());

    // 2. Replanning — mirror the scheduler state into FleetState.apps.
    if (replan_period > 0 && t > 0 && t % replan_period == 0) {
      state.apps.clear();
      for (const auto& [id, app] : live) {
        LiveApp summary;
        summary.app = app.app;
        summary.end_tick = app.end_tick;
        summary.site = app.home;
        summary.allowed = app.allowed;
        summary.active_degradable =
            static_cast<int>(app.degradable_ids.size());
        state.apps.emplace(id, std::move(summary));
      }
      pending_moves.clear();
      for (Move& move : scheduler.replan(state)) {
        pending_moves[move.app_id].push_back(move);
      }
    }

    // 3. Arrivals.
    while (next_app < apps.size() && apps[next_app].arrival <= t) {
      const workload::Application& app = apps[next_app];
      const Scheduler::Placement placement = scheduler.place(app, state);
      TrackedApp tracked;
      tracked.app = app;
      tracked.end_tick =
          app.lifetime_ticks < 0 ? -1 : t + app.lifetime_ticks;
      tracked.home = placement.site;
      tracked.allowed = placement.allowed;
      const util::Tick vm_end = tracked.end_tick;
      for (int v = 0; v < app.n_stable + app.n_degradable; ++v) {
        dcsim::VmInstance vm;
        vm.vm_id = next_vm_id++;
        vm.app_id = app.app_id;
        vm.shape = app.shape;
        vm.vm_class = v < app.n_stable ? workload::VmClass::stable
                                       : workload::VmClass::degradable;
        vm.end_tick = vm_end;
        if (place_vm(vm, placement.site)) {
          (vm.vm_class == workload::VmClass::stable
               ? tracked.stable_ids
               : tracked.degradable_ids)
              .push_back(vm.vm_id);
        } else if (vm.vm_class == workload::VmClass::stable) {
          ++result.fragmentation_failures;
          displaced.push_back(DisplacedVm{vm, placement.site});
          tracked.stable_ids.push_back(vm.vm_id);
        } else {
          ++tracked.paused_degradable;
          tracked.degradable_ids.push_back(vm.vm_id);
        }
      }
      if (!placement.scheduled_moves.empty()) {
        pending_moves[app.app_id] = placement.scheduled_moves;
      }
      ++result.base.apps_placed;
      live.emplace(app.app_id, std::move(tracked));
      ++next_app;
    }

    // 4. Execute due proactive moves: relocate every resident VM.
    for (auto& [app_id, moves] : pending_moves) {
      const auto live_it = live.find(app_id);
      if (live_it == live.end()) continue;
      TrackedApp& app = live_it->second;
      for (const Move& move : moves) {
        if (move.at_tick != t || move.to_site == app.home) continue;
        const std::size_t from = app.home;
        app.home = move.to_site;
        bool moved_any = false;
        for (const std::int64_t id : app.stable_ids) {
          const auto vm = remove_vm(id, from);
          if (!vm) continue;  // currently displaced or elsewhere
          if (place_vm(*vm, move.to_site)) {
            const double gb = vm->shape.memory_gb;
            result.base.ledger.record_out(from, t, gb);
            result.base.ledger.record_in(move.to_site, t, gb);
            result.base.moved_gb[i] += gb;
            ++result.vm_migrations;
            moved_any = true;
          } else {
            ++result.fragmentation_failures;
            displaced.push_back(DisplacedVm{*vm, from});
          }
        }
        for (const std::int64_t id : app.degradable_ids) {
          const auto vm = remove_vm(id, from);
          if (!vm) continue;
          if (!place_vm(*vm, move.to_site)) ++app.paused_degradable;
          // Degradable respawn: no WAN traffic.
        }
        if (moved_any) ++result.base.planned_migrations;
      }
    }

    // 5. Power enforcement: each site sheds to its powered-core budget.
    for (std::size_t s = 0; s < n_sites; ++s) {
      const int avail = graph.available_cores(s, t);
      const std::vector<dcsim::VmInstance> evicted = sites[s].shrink_to(avail);
      for (const dcsim::VmInstance& vm : evicted) {
        vm_site.erase(vm.vm_id);
        if (vm.vm_class == workload::VmClass::stable) {
          state.stable_cores[s] -= vm.shape.cores;
          displaced.push_back(DisplacedVm{vm, s});
        } else {
          state.degradable_cores[s] -= vm.shape.cores;
          const auto it = live.find(vm.app_id);
          if (it != live.end()) ++it->second.paused_degradable;
        }
      }
    }

    // 6. Re-home displaced stable VMs (migration traffic on success).
    for (std::size_t d = displaced.size(); d-- > 0;) {
      DisplacedVm entry = displaced.front();
      displaced.pop_front();
      const auto it = live.find(entry.vm.app_id);
      if (it == live.end()) continue;
      bool placed = false;
      for (const std::size_t cand : it->second.allowed) {
        if (graph.available_cores(cand, t) - sites[cand].allocated_cores() <
            entry.vm.shape.cores) {
          continue;
        }
        if (place_vm(entry.vm, cand)) {
          const double gb = entry.vm.shape.memory_gb;
          if (cand != entry.source) {
            result.base.ledger.record_out(entry.source, t, gb);
            result.base.ledger.record_in(cand, t, gb);
            result.base.moved_gb[i] += gb;
            ++result.vm_migrations;
            ++result.base.forced_migrations;
          }
          placed = true;
          break;
        }
      }
      if (!placed) {
        result.base.displaced_stable_core_ticks += entry.vm.shape.cores;
        displaced.push_back(entry);
      }
    }

    // 7. Resume paused degradable VMs at their app's home site.
    for (auto& [id, app] : live) {
      while (app.paused_degradable > 0) {
        const int headroom = graph.available_cores(app.home, t) -
                             sites[app.home].allocated_cores();
        if (headroom < app.app.shape.cores) break;
        dcsim::VmInstance vm;
        vm.vm_id = next_vm_id++;
        vm.app_id = id;
        vm.shape = app.app.shape;
        vm.vm_class = workload::VmClass::degradable;
        vm.end_tick = app.end_tick;
        if (!place_vm(vm, app.home)) break;  // fragmentation
        app.degradable_ids.push_back(vm.vm_id);
        --app.paused_degradable;
      }
      result.base.paused_degradable_vm_ticks += app.paused_degradable;
      result.base.degradable_active_vm_ticks +=
          static_cast<std::int64_t>(app.degradable_ids.size()) -
          app.paused_degradable;
    }

    // 8. Energy: only servers actually hosting VMs are powered.
    for (std::size_t s = 0; s < n_sites; ++s) {
      int powered = 0;
      int active_cores = 0;
      for (const dcsim::ServerState& server : sites[s].servers()) {
        if (server.vm_count > 0) {
          ++powered;
          active_cores += config.server.cores - server.free_cores;
        }
      }
      result.powered_server_ticks += powered;
      const double mwh = (powered * config.power.server_idle_watts +
                          active_cores * config.power.watts_per_active_core) *
                         hours_per_tick / 1e6;
      result.base.energy_mwh += mwh;
      result.base.energy_mwh_per_tick[i] += mwh;
    }
  }
  return result;
}

}  // namespace vbatt::core
