#include "vbatt/core/vb_graph.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vbatt::core {

namespace {

net::LatencyGraph build_latency(const energy::Fleet& fleet,
                                const VbGraphConfig& config) {
  std::vector<util::GeoPoint> points;
  points.reserve(fleet.specs.size());
  for (const energy::SiteSpec& spec : fleet.specs) {
    points.push_back(spec.location);
  }
  return net::LatencyGraph{points, config.rtt, config.rtt_threshold_ms};
}

}  // namespace

VbGraph::VbGraph(const energy::Fleet& fleet, const VbGraphConfig& config)
    : axis_{fleet.axis},
      leads_hours_{config.forecast_leads_hours},
      latency_{build_latency(fleet, config)} {
  if (fleet.specs.size() != fleet.traces.size() || fleet.specs.empty()) {
    throw std::invalid_argument{"VbGraph: malformed fleet"};
  }
  if (!std::is_sorted(leads_hours_.begin(), leads_hours_.end())) {
    throw std::invalid_argument{"VbGraph: forecast leads must ascend"};
  }
  n_ticks_ = fleet.traces.front().size();

  const energy::Forecaster forecaster{config.forecaster};
  sites_.reserve(fleet.specs.size());
  for (std::size_t i = 0; i < fleet.specs.size(); ++i) {
    const energy::SiteSpec& spec = fleet.specs[i];
    const energy::PowerTrace& trace = fleet.traces[i];
    if (trace.size() != n_ticks_) {
      throw std::invalid_argument{"VbGraph: trace length mismatch"};
    }
    VbSite site;
    site.id = spec.id;
    site.name = spec.name;
    site.source = spec.source;
    site.location = spec.location;
    site.capacity_cores = static_cast<int>(
        std::lround(spec.peak_mw * config.cores_per_mw));
    site.power_norm = trace.normalized_series();
    site.forecast_norm.reserve(leads_hours_.size());
    for (const double lead : leads_hours_) {
      site.forecast_norm.push_back(config.oracle_forecasts
                                       ? trace.normalized_series()
                                       : forecaster.forecast(trace, lead));
    }
    sites_.push_back(std::move(site));
  }
}

int VbGraph::available_cores(std::size_t s, util::Tick t) const {
  const VbSite& site = sites_.at(s);
  if (t < 0 || static_cast<std::size_t>(t) >= n_ticks_) {
    throw std::out_of_range{"VbGraph::available_cores: bad tick"};
  }
  return static_cast<int>(std::floor(
      site.power_norm[static_cast<std::size_t>(t)] * site.capacity_cores));
}

int VbGraph::forecast_cores(std::size_t s, util::Tick target,
                            util::Tick now) const {
  const VbSite& site = sites_.at(s);
  if (target < 0 || static_cast<std::size_t>(target) >= n_ticks_) {
    throw std::out_of_range{"VbGraph::forecast_cores: bad tick"};
  }
  if (target <= now) return available_cores(s, target);
  const double lead_hours = axis_.hours(target - now);
  std::size_t idx = leads_hours_.size() - 1;
  for (std::size_t i = 0; i < leads_hours_.size(); ++i) {
    if (leads_hours_[i] >= lead_hours) {
      idx = i;
      break;
    }
  }
  const double norm =
      site.forecast_norm[idx][static_cast<std::size_t>(target)];
  return static_cast<int>(std::floor(norm * site.capacity_cores));
}

std::vector<int> VbGraph::forecast_series(std::size_t s, util::Tick now,
                                          util::Tick begin,
                                          util::Tick end) const {
  const VbSite& site = sites_.at(s);
  if (begin < 0 || begin > end ||
      static_cast<std::size_t>(end) > n_ticks_) {
    throw std::out_of_range{"VbGraph::forecast_series: bad range"};
  }
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  const double cap = site.capacity_cores;

  // Oracle region: target <= now reads the actual series.
  const util::Tick oracle_end = std::clamp<util::Tick>(now + 1, begin, end);
  for (util::Tick t = begin; t < oracle_end; ++t) {
    out.push_back(static_cast<int>(
        std::floor(site.power_norm[static_cast<std::size_t>(t)] * cap)));
  }

  // Forecast region: the lead grows monotonically with the target, so one
  // forward walk over the ascending lead table replaces the per-tick scan
  // forecast_cores does. Snapping matches forecast_cores exactly: first
  // lead >= the query lead, else the last (blurriest) one.
  std::size_t idx = 0;
  const std::size_t last = leads_hours_.size() - 1;
  for (util::Tick t = oracle_end; t < end; ++t) {
    const double lead_hours = axis_.hours(t - now);
    while (idx < last && leads_hours_[idx] < lead_hours) ++idx;
    out.push_back(static_cast<int>(std::floor(
        site.forecast_norm[idx][static_cast<std::size_t>(t)] * cap)));
  }
  return out;
}

}  // namespace vbatt::core
