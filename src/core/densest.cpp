#include "vbatt/core/densest.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "vbatt/core/forecast_cache.h"
#include "vbatt/stats/running_stats.h"

namespace vbatt::core {

std::vector<std::size_t> densest_subgraph(const net::LatencyGraph& graph) {
  const std::size_t n = graph.size();
  if (n == 0) return {};

  std::vector<bool> alive(n, true);
  std::vector<int> degree(n, 0);
  int edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (graph.connected(i, j)) {
        ++degree[i];
        ++degree[j];
        ++edges;
      }
    }
  }

  std::vector<std::size_t> removal_order;
  removal_order.reserve(n);
  double best_density = -1.0;
  std::size_t best_prefix = 0;  // number of removals before the best set
  int remaining_edges = edges;
  std::size_t remaining = n;

  // Evaluate the full graph, then peel.
  std::vector<int> deg = degree;
  for (std::size_t step = 0; step < n; ++step) {
    const double density =
        static_cast<double>(remaining_edges) / static_cast<double>(remaining);
    if (density > best_density) {
      best_density = density;
      best_prefix = step;
    }
    // Remove the minimum-degree alive vertex (ties: smallest index).
    std::size_t victim = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (alive[v] && (victim == n || deg[v] < deg[victim])) victim = v;
    }
    alive[victim] = false;
    removal_order.push_back(victim);
    for (std::size_t u = 0; u < n; ++u) {
      if (alive[u] && graph.connected(victim, u)) {
        --deg[u];
        --remaining_edges;
      }
    }
    --remaining;
    if (remaining == 0) break;
  }

  // The best set is everything not removed in the first `best_prefix`
  // steps.
  std::vector<bool> removed(n, false);
  for (std::size_t i = 0; i < best_prefix; ++i) {
    removed[removal_order[i]] = true;
  }
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < n; ++v) {
    if (!removed[v]) out.push_back(v);
  }
  return out;
}

std::vector<RankedSubgraph> peel_candidate_groups(const VbGraph& graph,
                                                  int k, int count,
                                                  util::Tick now,
                                                  util::Tick window_ticks) {
  if (k < 1 || count < 1) {
    throw std::invalid_argument{"peel_candidate_groups: k/count < 1"};
  }
  const util::Tick end = std::min<util::Tick>(
      static_cast<util::Tick>(graph.n_ticks()), now + window_ticks);
  if (now < 0 || now >= end) {
    throw std::out_of_range{"peel_candidate_groups: bad window"};
  }

  // One forecast materialization for the whole peel instead of a
  // forecast_cores call per (site, tick, candidate-evaluation).
  ForecastCache cache;
  cache.refresh(graph, now, now, end);
  const std::size_t window = static_cast<std::size_t>(end - now);

  const auto group_stats = [&](const std::vector<std::size_t>& sites) {
    stats::RunningStats rs;
    for (std::size_t i = 0; i < window; ++i) {
      double cores = 0.0;
      for (const std::size_t s : sites) {
        cores += cache.series(s)[i];
      }
      rs.add(cores);
    }
    return rs;
  };

  std::vector<bool> used(graph.n_sites(), false);
  std::vector<RankedSubgraph> groups;
  for (int g = 0; g < count; ++g) {
    // Build the residual latency graph's dense core.
    std::vector<std::size_t> pool;
    for (std::size_t v = 0; v < graph.n_sites(); ++v) {
      if (!used[v]) pool.push_back(v);
    }
    if (static_cast<int>(pool.size()) < k) break;

    // Greedy complementarity selection inside the pool: start from the
    // unused site with the highest mean forecast, then repeatedly add the
    // *connected* site that minimizes the combined cov.
    std::vector<std::size_t> group;
    {
      // Seed scan over single sites: prefix sums give each mean in O(1).
      std::size_t seed = pool.front();
      double best_mean = -1.0;
      for (const std::size_t v : pool) {
        const double mean = static_cast<double>(cache.range_sum(v, now, end)) /
                            static_cast<double>(window);
        if (mean > best_mean) {
          best_mean = mean;
          seed = v;
        }
      }
      group.push_back(seed);
    }
    while (static_cast<int>(group.size()) < k) {
      std::size_t best = graph.n_sites();
      double best_cov = std::numeric_limits<double>::infinity();
      for (const std::size_t v : pool) {
        if (std::find(group.begin(), group.end(), v) != group.end()) continue;
        bool connected_to_all = true;
        for (const std::size_t u : group) {
          if (!graph.latency().connected(u, v)) {
            connected_to_all = false;
            break;
          }
        }
        if (!connected_to_all) continue;
        std::vector<std::size_t> candidate = group;
        candidate.push_back(v);
        const double cov = group_stats(candidate).cov();
        if (cov < best_cov) {
          best_cov = cov;
          best = v;
        }
      }
      if (best == graph.n_sites()) break;  // no connected extension
      group.push_back(best);
    }
    if (static_cast<int>(group.size()) < k) break;

    std::sort(group.begin(), group.end());
    const stats::RunningStats rs = group_stats(group);
    for (const std::size_t v : group) used[v] = true;
    groups.push_back(RankedSubgraph{std::move(group), rs.cov(), rs.mean()});
  }
  std::sort(groups.begin(), groups.end(),
            [](const RankedSubgraph& a, const RankedSubgraph& b) {
              return a.cov < b.cov;
            });
  return groups;
}

}  // namespace vbatt::core
