#include "vbatt/core/mip_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "vbatt/stats/quantile.h"
#include "vbatt/util/thread_pool.h"

namespace vbatt::core {

MipScheduler::MipScheduler(MipSchedulerConfig config)
    : config_{std::move(config)} {
  if (config_.clique_k < 1 || config_.candidate_subgraphs < 1 ||
      config_.bucket_ticks < 1 || config_.max_buckets < 1) {
    throw std::invalid_argument{"MipSchedulerConfig: invalid"};
  }
  if (config_.capacity_safety <= 0.0 || config_.capacity_safety > 1.0) {
    throw std::invalid_argument{
        "MipSchedulerConfig: capacity_safety out of (0, 1]"};
  }
  if (config_.objective != MipSchedulerConfig::Objective::none) {
    if (config_.objective_signal == nullptr) {
      throw std::invalid_argument{
          "MipSchedulerConfig: objective != none requires objective_signal"};
    }
    if (config_.objective_kw_per_core <= 0.0 ||
        config_.objective_eps_rel < 0.0) {
      throw std::invalid_argument{
          "MipSchedulerConfig: invalid econ objective parameters"};
    }
  }
}

int MipScheduler::bucket_count(const FleetState& state,
                               util::Tick end_tick) const {
  util::Tick horizon_end = static_cast<util::Tick>(state.graph->n_ticks());
  if (config_.horizon_ticks >= 0) {
    horizon_end = std::min(horizon_end, cache_now_ + config_.horizon_ticks);
  }
  if (end_tick >= 0) horizon_end = std::min(horizon_end, end_tick);
  const util::Tick span = std::max<util::Tick>(1, horizon_end - cache_now_);
  const auto buckets = static_cast<int>(
      (span + config_.bucket_ticks - 1) / config_.bucket_ticks);
  return std::min(buckets, config_.max_buckets);
}

void MipScheduler::refresh_capacity(const FleetState& state) {
  cache_now_ = state.now;
  const std::size_t n_sites = state.graph->n_sites();
  const int buckets = bucket_count(state, /*end_tick=*/-1);

  capacity_.assign(n_sites, std::vector<double>(
                                static_cast<std::size_t>(buckets), 0.0));
  load_.assign(n_sites, std::vector<double>(
                             static_cast<std::size_t>(buckets), 0.0));
  committed_moves_gb_.assign(static_cast<std::size_t>(buckets), 0.0);

  const auto trace_end = static_cast<util::Tick>(state.graph->n_ticks());
  const util::Tick window_end = std::min(
      trace_end,
      cache_now_ + config_.bucket_ticks * static_cast<util::Tick>(buckets));

  util::ThreadPool& shared_pool = util::ThreadPool::shared();
  util::ThreadPool* pool = shared_pool.size() > 0 ? &shared_pool : nullptr;

  // One forecast materialization per replan; capacity bucketing and clique
  // ranking both read from it instead of per-tick forecast_cores calls.
  forecast_cache_.refresh(*state.graph, cache_now_, cache_now_, window_end,
                          pool);

  const auto fill_sites = [&](std::size_t first, std::size_t last) {
    std::vector<double> cores;
    for (std::size_t s = first; s < last; ++s) {
      const std::vector<int>& series = forecast_cache_.series(s);
      for (int b = 0; b < buckets; ++b) {
        const util::Tick begin = cache_now_ + b * config_.bucket_ticks;
        const util::Tick end =
            std::min(trace_end, begin + config_.bucket_ticks);
        // Bucket capacity: 25th percentile of the forecast over the bucket.
        // A strict window-minimum proved too trigger-happy (forecast noise
        // manufactures phantom deficits and churns the plan) while the mean
        // lets the planner ride the capacity edge and get bitten by
        // intra-bucket dips; the lower quartile balances the two.
        cores.clear();
        for (util::Tick t = begin; t < end; ++t) {
          cores.push_back(static_cast<double>(
              series[static_cast<std::size_t>(t - cache_now_)]));
        }
        double value = 0.0;
        if (!cores.empty()) {
          value = stats::order_statistic_in_place(cores, cores.size() / 4);
        }
        capacity_[s][static_cast<std::size_t>(b)] = value;
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(n_sites, fill_sites);
  } else {
    fill_sites(0, n_sites);
  }

  ranked_ = rank_subgraphs(*state.graph, config_.clique_k, cache_now_,
                           config_.bucket_ticks *
                               static_cast<util::Tick>(buckets),
                           forecast_cache_, pool);

  // Econ-stage coefficients: the price/carbon signal summed over each
  // bucket's ticks, same bucket boundaries as capacity_. The per-app x
  // cost is this sum scaled by the app's core power draw.
  if (config_.objective != MipSchedulerConfig::Objective::none) {
    objective_sum_.assign(
        n_sites,
        std::vector<double>(static_cast<std::size_t>(buckets), 0.0));
    const energy::SiteSeries& signal = *config_.objective_signal;
    for (std::size_t s = 0; s < n_sites; ++s) {
      for (int b = 0; b < buckets; ++b) {
        const util::Tick begin = cache_now_ + b * config_.bucket_ticks;
        const util::Tick end =
            std::min(trace_end, begin + config_.bucket_ticks);
        double sum = 0.0;
        for (util::Tick t = begin; t < end; ++t) {
          sum += signal.value(s, static_cast<double>(t));
        }
        objective_sum_[s][static_cast<std::size_t>(b)] = sum;
      }
    }
  } else {
    objective_sum_.clear();
  }
}

std::optional<MipScheduler::Trajectory> MipScheduler::solve_app(
    const FleetState& state, int stable_cores, double stable_mem_gb,
    util::Tick end_tick, const std::vector<std::size_t>& sites,
    std::optional<std::size_t> current_site, const Trajectory* previous,
    solver::MipBasisHint* hint) {
  const int total_buckets = static_cast<int>(committed_moves_gb_.size());
  int b0 = static_cast<int>((state.now - cache_now_) / config_.bucket_ticks);
  b0 = std::clamp(b0, 0, total_buckets - 1);
  int b_end = bucket_count(state, end_tick);
  b_end = std::clamp(b_end, b0 + 1, total_buckets);
  const int full_nb = b_end - b0;
  const auto n_sites = sites.size();
  if (n_sites == 0) return std::nullopt;

  const double demand = static_cast<double>(stable_cores);
  const bool econ_stage =
      config_.objective != MipSchedulerConfig::Objective::none;
  // Scale turning a bucket's summed signal into real units for this app:
  // cores * kW/core * h/tick gives kWh per tick; /1000 converts $/MWh
  // to $/kWh (cost) or g to kg (carbon). Undiscounted by design — the
  // stage value must replay exactly against a per-tick ledger.
  const double econ_scale =
      econ_stage ? demand * config_.objective_kw_per_core *
                       (state.graph->axis().minutes_per_tick() / 60.0) /
                       1000.0
                 : 0.0;

  /// Build and solve the model over `nb` buckets; nullopt when the solver
  /// fails (infeasible or node budget exhausted).
  const auto attempt = [&](const int nb) -> std::optional<Trajectory> {
  const bool has_y0 = current_site.has_value();
  const int y_k0 = has_y0 ? 0 : 1;  // first bucket carrying y vars

  // Variable layout, fixed per structural family (nb, n_sites, has_y0):
  // the x block first, k-major — x[k][s] = "app resides at sites[s]
  // during bucket b0+k" — then the y block, also k-major (move-in
  // indicators; continuous, the x-differences they bound are integral at
  // optimality). Initial placements transfer no state, so k=0 has no y.
  const auto x_index = [n_sites](int k, std::size_t s) {
    return static_cast<std::size_t>(k) * n_sites + s;
  };
  const auto y_index = [nb, n_sites, y_k0](int k, std::size_t s) {
    return static_cast<std::size_t>(nb) * n_sites +
           static_cast<std::size_t>(k - y_k0) * n_sites + s;
  };
  const auto has_y = [has_y0](int k) { return k > 0 || has_y0; };

  // The replan-dependent data: cost vectors and the k=0 move-row rhs.
  // Scratch build and in-place patch both evaluate these expressions in
  // the same order, which is what makes a patched model bitwise-identical
  // to a rebuilt one.
  const auto x_cost = [&](int k, std::size_t s) {
    const std::size_t b = static_cast<std::size_t>(b0 + k);
    const double cap = config_.capacity_safety * capacity_[sites[s]][b];
    const double overflow = load_[sites[s]][b] + demand - cap;
    const double deficit_frac =
        demand > 0.0 ? std::clamp(overflow / demand, 0.0, 1.0) : 0.0;
    const double discount =
        std::pow(config_.discount_per_bucket, static_cast<double>(k));
    return stable_mem_gb * deficit_frac * config_.deficit_penalty * discount;
  };
  const auto y_cost = [&](int k) {
    return stable_mem_gb *
           std::pow(config_.discount_per_bucket, static_cast<double>(k));
  };
  const auto k0_rhs = [&](std::size_t s) {
    return has_y0 && sites[s] == *current_site ? 1.0 : 0.0;
  };

  const auto build_scratch = [&]() {
    solver::Model fresh_model;
    for (int k = 0; k < nb; ++k) {
      for (std::size_t s = 0; s < n_sites; ++s) {
        fresh_model.add_binary("x", x_cost(k, s));
      }
    }
    for (int k = y_k0; k < nb; ++k) {
      const double cost = y_cost(k);
      for (std::size_t s = 0; s < n_sites; ++s) {
        fresh_model.add_var("y", cost, 0.0, 1.0);
      }
    }
    for (int k = 0; k < nb; ++k) {
      std::vector<std::pair<int, double>> one;
      for (std::size_t s = 0; s < n_sites; ++s) {
        one.emplace_back(static_cast<int>(x_index(k, s)), 1.0);
      }
      fresh_model.add_constraint(std::move(one), solver::Rel::eq, 1.0);

      if (!has_y(k)) continue;
      for (std::size_t s = 0; s < n_sites; ++s) {
        // x[k][s] - x[k-1][s] - y[k][s] <= (k==0 ? [s==current] : 0)
        std::vector<std::pair<int, double>> terms;
        terms.emplace_back(static_cast<int>(x_index(k, s)), 1.0);
        double rhs = 0.0;
        if (k > 0) {
          terms.emplace_back(static_cast<int>(x_index(k - 1, s)), -1.0);
        } else {
          rhs = k0_rhs(s);
        }
        terms.emplace_back(static_cast<int>(y_index(k, s)), -1.0);
        fresh_model.add_constraint(std::move(terms), solver::Rel::le, rhs);
      }
    }
    return fresh_model;
  };

  // Patch a cached model of the same family in place: every allocation
  // (variable vector, term vectors, name strings) is reused; only costs
  // and the k=0 move-row rhs are rewritten.
  const auto patch = [&](solver::Model& cached) {
    for (int k = 0; k < nb; ++k) {
      for (std::size_t s = 0; s < n_sites; ++s) {
        cached.vars()[x_index(k, s)].cost = x_cost(k, s);
      }
    }
    for (int k = y_k0; k < nb; ++k) {
      const double cost = y_cost(k);
      for (std::size_t s = 0; s < n_sites; ++s) {
        cached.vars()[y_index(k, s)].cost = cost;
      }
    }
    if (has_y0) {
      // Row layout: k=0's eq row sits at 0 followed by its n_sites move
      // rows — the only rows whose rhs depends on replan data (the
      // current-site position).
      for (std::size_t s = 0; s < n_sites; ++s) {
        cached.set_rhs(1 + s, k0_rhs(s));
      }
    }
  };

  solver::Model scratch_model;  // used when incremental build is off
  solver::Model* model_ptr = nullptr;
  const auto build_t0 = std::chrono::steady_clock::now();
  if (config_.incremental_build) {
    const solver::ModelCache::Key key{
        nb, static_cast<std::int64_t>(n_sites), has_y0 ? 1 : 0};
    bool fresh = false;
    solver::Model& cached = model_cache_.get(key, build_scratch, &fresh);
    if (fresh) {
      ++model_builds_;
    } else {
      patch(cached);
      ++model_patches_;
      if (config_.verify_incremental_build) {
        const solver::Model rebuilt = build_scratch();
        const std::string diff = solver::diff_models_bitwise(cached, rebuilt);
        if (!diff.empty()) {
          throw std::logic_error{
              "MipScheduler: patched model diverged from scratch build: " +
              diff};
        }
      }
    }
    model_ptr = &cached;
  } else {
    scratch_model = build_scratch();
    ++model_builds_;
    model_ptr = &scratch_model;
  }
  model_build_ms_ += std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - build_t0)
                         .count();
  solver::Model& model = *model_ptr;

  // Warm-start incumbent: the previous round's trajectory re-aligned to
  // this horizon (held site extended past its end), expressed in this
  // model's variables. The solver validates it and uses it purely as a
  // cutoff, so feeding it never changes the schedule.
  solver::MipWarmStart warm;
  bool have_warm = false;
  if (config_.warm_start && previous != nullptr && !previous->sites.empty()) {
    const util::Tick start = cache_now_ + b0 * config_.bucket_ticks;
    warm.x.assign(model.n_vars(), 0.0);
    std::vector<std::size_t> warm_col(static_cast<std::size_t>(nb), 0);
    have_warm = true;
    for (int k = 0; k < nb && have_warm; ++k) {
      const util::Tick tick =
          start + static_cast<util::Tick>(k) * config_.bucket_ticks;
      auto j = static_cast<std::ptrdiff_t>(
          (tick - previous->start) / config_.bucket_ticks);
      j = std::clamp<std::ptrdiff_t>(
          j, 0, static_cast<std::ptrdiff_t>(previous->sites.size()) - 1);
      const std::size_t site = previous->sites[static_cast<std::size_t>(j)];
      const auto found = std::find(sites.begin(), sites.end(), site);
      if (found == sites.end()) {
        have_warm = false;  // previous site left the candidate set
        break;
      }
      const auto s = static_cast<std::size_t>(found - sites.begin());
      warm.x[x_index(k, s)] = 1.0;
      warm_col[static_cast<std::size_t>(k)] = s;
    }
    if (have_warm) {
      for (int k = 0; k < nb; ++k) {
        if (!has_y(k)) continue;
        for (std::size_t s = 0; s < n_sites; ++s) {
          const double here =
              warm_col[static_cast<std::size_t>(k)] == s ? 1.0 : 0.0;
          const double before =
              k > 0 ? (warm_col[static_cast<std::size_t>(k - 1)] == s ? 1.0
                                                                      : 0.0)
                    : (sites[s] == *current_site ? 1.0 : 0.0);
          warm.x[y_index(k, s)] = std::max(0.0, here - before);
        }
      }
    }
  }

  ++solve_count_;
  // The persisted basis is consumed and refreshed in place; a shape
  // mismatch (different horizon or candidate set than last round) is
  // ignored by the solver and simply replaced, so no validation is needed
  // here beyond the topology invalidation done in on_topology_change.
  solver::MipResult primary = solver::solve_mip(
      model, config_.mip, have_warm ? &warm : nullptr, hint);
  if (hint != nullptr) {
    if (primary.used_basis_hint) {
      ++basis_hint_hits_;
    } else {
      ++basis_hint_misses_;
    }
  }
  if (primary.status != solver::LpStatus::optimal) return std::nullopt;

  solver::MipResult chosen = primary;

  // Econ stage (in place): cap O1 at the stage-1 optimum, swap in the
  // undiscounted cost/carbon coefficients, and minimize. The coefficient
  // vector is cached per structural family and patched in place exactly
  // like the model itself — patch and scratch evaluate the same
  // expressions in the same order, so a patched vector is
  // bitwise-identical to a rebuilt one. On success the cap row and econ
  // costs stay active through the optional peak stage (which then bounds
  // the econ objective, keeping the chain lexicographic) and are undone
  // after it; on failure they unwind immediately and the peak stage runs
  // against O1 as before.
  std::vector<double> econ_saved_costs;
  bool econ_capped = false;
  if (econ_stage) {
    const std::size_t n_structural = model.n_vars();
    const auto econ_coeff = [&](int k, std::size_t s) {
      return objective_sum_[sites[s]][static_cast<std::size_t>(b0 + k)] *
             econ_scale;
    };
    const auto econ_scratch = [&]() {
      std::vector<double> c(n_structural, 0.0);
      for (int k = 0; k < nb; ++k) {
        for (std::size_t s = 0; s < n_sites; ++s) {
          c[x_index(k, s)] = econ_coeff(k, s);
        }
      }
      return c;
    };
    const std::tuple<int, std::int64_t, int> key{
        nb, static_cast<std::int64_t>(n_sites), has_y0 ? 1 : 0};
    const auto [slot, fresh] = econ_cache_.try_emplace(key);
    if (fresh) {
      slot->second = econ_scratch();
    } else {
      for (int k = 0; k < nb; ++k) {
        for (std::size_t s = 0; s < n_sites; ++s) {
          slot->second[x_index(k, s)] = econ_coeff(k, s);
        }
      }
      if (config_.verify_incremental_build) {
        const std::vector<double> rebuilt = econ_scratch();
        if (rebuilt.size() != slot->second.size() ||
            (!rebuilt.empty() &&
             std::memcmp(rebuilt.data(), slot->second.data(),
                         rebuilt.size() * sizeof(double)) != 0)) {
          throw std::logic_error{
              "MipScheduler: patched econ coefficients diverged from "
              "scratch build"};
        }
      }
    }
    const std::vector<double>& econ = slot->second;

    econ_saved_costs.resize(n_structural);
    std::vector<std::pair<int, double>> o1_terms;
    for (std::size_t v = 0; v < n_structural; ++v) {
      const double c = model.vars()[v].cost;
      econ_saved_costs[v] = c;
      if (c != 0.0) o1_terms.emplace_back(static_cast<int>(v), c);
    }
    model.add_constraint(std::move(o1_terms), solver::Rel::le,
                         primary.objective +
                             std::abs(primary.objective) *
                                 config_.objective_eps_rel +
                             1e-6);
    for (std::size_t v = 0; v < n_structural; ++v) {
      model.vars()[v].cost = econ[v];
    }
    solver::MipWarmStart econ_warm;
    if (config_.warm_start) econ_warm.x = primary.x;
    ++solve_count_;
    solver::MipResult second = solver::solve_mip(
        model, config_.mip, config_.warm_start ? &econ_warm : nullptr);
    if (second.status == solver::LpStatus::optimal) {
      chosen = second;
      econ_capped = true;
    } else {
      // Unwind immediately: the peak stage below must see O1 costs.
      model.pop_constraint();
      for (std::size_t v = 0; v < n_structural; ++v) {
        model.vars()[v].cost = econ_saved_costs[v];
      }
    }
  }

  if (config_.optimize_peak) {
    // Peak stage, in place: cap the objective of the stage just solved
    // (O1, or the econ objective when that stage is active — its costs
    // are still on the model), zero the costs, and minimize the peak
    // per-bucket move volume; every edit is undone after the solve.
    const std::size_t n_structural = model.n_vars();
    std::vector<std::pair<int, double>> o1_terms;
    std::vector<double> primary_costs(n_structural, 0.0);
    for (std::size_t i = 0; i < n_structural; ++i) {
      const double c = model.vars()[i].cost;
      primary_costs[i] = c;
      if (c != 0.0) o1_terms.emplace_back(static_cast<int>(i), c);
    }
    model.add_constraint(std::move(o1_terms), solver::Rel::le,
                         chosen.objective +
                             std::abs(chosen.objective) *
                                 config_.peak_eps_rel +
                             1e-6);
    for (std::size_t i = 0; i < n_structural; ++i) {
      model.vars()[i].cost = 0.0;
    }
    const int peak = model.add_var("peak", 1.0);
    int peak_rows = 0;
    for (int k = 0; k < nb; ++k) {
      if (!has_y(k)) continue;
      std::vector<std::pair<int, double>> terms;
      for (std::size_t s = 0; s < n_sites; ++s) {
        terms.emplace_back(static_cast<int>(y_index(k, s)), stable_mem_gb);
      }
      terms.emplace_back(peak, -1.0);
      model.add_constraint(
          std::move(terms), solver::Rel::le,
          -committed_moves_gb_[static_cast<std::size_t>(b0 + k)]);
      ++peak_rows;
    }
    // Peak-stage warm start: the incumbent (stage-1 or econ optimum)
    // satisfies every active cap by construction; the peak variable takes
    // its implied value.
    solver::MipWarmStart stage2_warm;
    if (config_.warm_start) {
      stage2_warm.x = chosen.x;
      stage2_warm.x.resize(model.n_vars(), 0.0);
      double peak_value = 0.0;
      for (int k = 0; k < nb; ++k) {
        if (!has_y(k)) continue;
        double volume = committed_moves_gb_[static_cast<std::size_t>(b0 + k)];
        for (std::size_t s = 0; s < n_sites; ++s) {
          volume += stable_mem_gb * chosen.x[y_index(k, s)];
        }
        peak_value = std::max(peak_value, volume);
      }
      stage2_warm.x[static_cast<std::size_t>(peak)] = peak_value;
    }
    ++solve_count_;
    solver::MipResult second = solver::solve_mip(
        model, config_.mip, config_.warm_start ? &stage2_warm : nullptr);
    // Restore the stage-1 model: peak rows, peak variable, O1 cap, costs.
    for (int r = 0; r < peak_rows; ++r) model.pop_constraint();
    model.pop_var();
    model.pop_constraint();
    for (std::size_t i = 0; i < n_structural; ++i) {
      model.vars()[i].cost = primary_costs[i];
    }
    if (second.status == solver::LpStatus::optimal) {
      second.x.resize(n_structural);  // drop the peak variable
      chosen = second;
      chosen.objective = model.objective_of(second.x);
    }
  }

  if (econ_capped) {
    // Undo the econ stage (LIFO under the peak stage's own pops) and
    // re-express the chosen objective in O1 units, as every caller of
    // Trajectory::cost expects.
    model.pop_constraint();
    for (std::size_t v = 0; v < econ_saved_costs.size(); ++v) {
      model.vars()[v].cost = econ_saved_costs[v];
    }
    chosen.objective = model.objective_of(chosen.x);
  }

  Trajectory trajectory;
  trajectory.cost = chosen.objective;
  trajectory.start = cache_now_ + b0 * config_.bucket_ticks;
  trajectory.sites.resize(static_cast<std::size_t>(nb));
  for (int k = 0; k < nb; ++k) {
    std::size_t site = sites[0];
    for (std::size_t s = 0; s < n_sites; ++s) {
      if (chosen.x[x_index(k, s)] > 0.5) {
        site = sites[s];
        break;
      }
    }
    trajectory.sites[static_cast<std::size_t>(k)] = site;
  }
  if (econ_stage) {
    // Econ value of the final plan, bucket by bucket in horizon order —
    // the exact quantity the accounting-identity tests replay per tick.
    double econ_value = 0.0;
    for (int k = 0; k < nb; ++k) {
      const std::size_t site = trajectory.sites[static_cast<std::size_t>(k)];
      econ_value +=
          objective_sum_[site][static_cast<std::size_t>(b0 + k)] * econ_scale;
    }
    trajectory.objective_cost = econ_value;
  }
  return trajectory;
  };  // attempt

  std::optional<Trajectory> trajectory = attempt(full_nb);
  if (trajectory) return trajectory;
  // Fallback rung 1: the full-horizon model failed; a model half as deep
  // is exponentially cheaper to branch on and usually feasible.
  if (full_nb > 1) {
    ++fallback_count_;
    trajectory = attempt(std::max(1, full_nb / 2));
    if (trajectory) return trajectory;
  }
  // Fallback rung 2: no MIP answer at any horizon. The caller degrades to
  // greedy behavior (greedy placement for arrivals; replans keep the
  // current site, i.e. greedy's purely reactive stance). Never fatal.
  ++fallback_count_;
  return std::nullopt;
}

std::vector<Move> MipScheduler::commit(std::int64_t app_id,
                                       const Trajectory& trajectory,
                                       int stable_cores, double stable_mem_gb,
                                       std::optional<std::size_t> current_site) {
  std::vector<Move> moves;
  const int total_buckets = static_cast<int>(committed_moves_gb_.size());
  const int b0 = static_cast<int>(
      (trajectory.start - cache_now_) / config_.bucket_ticks);
  std::optional<std::size_t> prev = current_site;
  for (std::size_t k = 0; k < trajectory.sites.size(); ++k) {
    const std::size_t site = trajectory.sites[k];
    const int b = b0 + static_cast<int>(k);
    if (b >= 0 && b < total_buckets) {
      load_[site][static_cast<std::size_t>(b)] +=
          static_cast<double>(stable_cores);
      if (prev.has_value() && *prev != site) {
        committed_moves_gb_[static_cast<std::size_t>(b)] += stable_mem_gb;
      }
    }
    if (prev.has_value() && *prev != site) {
      util::Tick at = trajectory.start +
                      static_cast<util::Tick>(k) * config_.bucket_ticks;
      if (config_.spread_moves_in_bucket) {
        // Deterministic stagger inside the bucket (keyed by app id).
        at += static_cast<util::Tick>(
            static_cast<std::uint64_t>(app_id) %
            static_cast<std::uint64_t>(config_.bucket_ticks));
      }
      moves.push_back(Move{app_id, site, std::max(cache_now_, at)});
    }
    prev = site;
  }
  return moves;
}

Scheduler::Placement MipScheduler::place(const workload::Application& app,
                                         const FleetState& state) {
  if (cache_now_ < 0) refresh_capacity(state);

  const util::Tick end_tick =
      app.lifetime_ticks < 0 ? -1 : state.now + app.lifetime_ticks;

  // Evaluate the top-ranked candidate subgraphs with the MIP; keep the
  // cheapest trajectory (steps 2+3 of §3.1 combined).
  std::optional<Trajectory> best;
  const std::vector<std::size_t>* best_sites = nullptr;
  int evaluated = 0;
  for (const RankedSubgraph& candidate : ranked_) {
    if (evaluated >= config_.candidate_subgraphs) break;
    if (candidate.mean_cores < app.stable_cores()) continue;  // hopeless
    ++evaluated;
    // No persisted basis for arrivals: several candidate subgraphs are
    // tried and only one wins, so a hint would be refreshed by losers.
    const std::optional<Trajectory> trajectory =
        solve_app(state, app.stable_cores(), app.stable_memory_gb(),
                  end_tick, candidate.sites, std::nullopt, nullptr, nullptr);
    if (trajectory && (!best || trajectory->cost < best->cost)) {
      best = trajectory;
      best_sites = &candidate.sites;
    }
  }

  Placement placement;
  if (!best) {
    // Degenerate fallback (no clique fits / every solve failed): greedy
    // headroom site.
    ++fallback_count_;
    GreedyScheduler greedy;
    return greedy.place(app, state);
  }
  placement.allowed = *best_sites;
  placement.site = best->sites.front();
  placement.scheduled_moves = commit(app.app_id, *best, app.stable_cores(),
                                     app.stable_memory_gb(), std::nullopt);
  prev_trajectories_[app.app_id] = *best;  // seeds the next replan
  return placement;
}

std::vector<Move> MipScheduler::replan(const FleetState& state) {
  refresh_capacity(state);

  // Re-solve live apps largest-first against fresh ledgers.
  std::vector<const LiveApp*> live;
  live.reserve(state.apps.size());
  for (const auto& [id, app] : state.apps) live.push_back(&app);
  std::sort(live.begin(), live.end(), [](const LiveApp* a, const LiveApp* b) {
    if (a->app.stable_cores() != b->app.stable_cores()) {
      return a->app.stable_cores() > b->app.stable_cores();
    }
    return a->app.app_id < b->app.app_id;
  });

  // Drop stored trajectories and bases of departed apps.
  for (auto it = prev_trajectories_.begin();
       it != prev_trajectories_.end();) {
    if (state.apps.find(it->first) == state.apps.end()) {
      basis_hints_.erase(it->first);
      it = prev_trajectories_.erase(it);
    } else {
      ++it;
    }
  }

  std::vector<Move> schedule;
  for (const LiveApp* app : live) {
    const auto prev_it = prev_trajectories_.find(app->app.app_id);
    const Trajectory* previous =
        prev_it != prev_trajectories_.end() ? &prev_it->second : nullptr;
    // One solve per app per replan: its persisted basis (if any) seeds the
    // root and is refreshed in place for the next round. The pinned
    // engine ignores hints, so don't offer one (keeps hit/miss honest).
    solver::MipBasisHint* hint = nullptr;
    if (config_.reuse_basis &&
        config_.mip.engine != solver::MipEngine::pinned) {
      hint = &basis_hints_[app->app.app_id];
    }
    const std::optional<Trajectory> trajectory = solve_app(
        state, app->app.stable_cores(), app->app.stable_memory_gb(),
        app->end_tick, app->allowed, app->site, previous, hint);
    if (!trajectory) continue;
    std::vector<Move> moves =
        commit(app->app.app_id, *trajectory, app->app.stable_cores(),
               app->app.stable_memory_gb(), app->site);
    schedule.insert(schedule.end(), moves.begin(), moves.end());
    prev_trajectories_[app->app.app_id] = *trajectory;
  }
  return schedule;
}

MipSchedulerConfig make_mip_config() {
  MipSchedulerConfig config;
  config.name = "MIP";
  config.horizon_ticks = -1;
  config.optimize_peak = false;
  return config;
}

void MipScheduler::save_state(util::wire::Writer& w) const {
  if (config_.reuse_basis) {
    throw std::runtime_error{
        "MipScheduler::save_state: basis hints are not serializable; "
        "construct the scheduler with reuse_basis=false (see header)"};
  }
  const auto save_matrix = [&w](const std::vector<std::vector<double>>& m) {
    w.u64(m.size());
    for (const std::vector<double>& row : m) w.vec_f64(row);
  };
  w.i64(cache_now_);
  save_matrix(capacity_);
  save_matrix(load_);
  w.vec_f64(committed_moves_gb_);
  save_matrix(objective_sum_);
  w.u64(ranked_.size());
  for (const RankedSubgraph& sub : ranked_) {
    w.u64(sub.sites.size());
    for (const std::size_t s : sub.sites) w.u64(s);
    w.f64(sub.cov);
    w.f64(sub.mean_cores);
  }
  w.u64(prev_trajectories_.size());
  for (const auto& [id, trajectory] : prev_trajectories_) {
    w.i64(id);
    w.f64(trajectory.cost);
    w.f64(trajectory.objective_cost);
    w.i64(trajectory.start);
    w.u64(trajectory.sites.size());
    for (const std::size_t s : trajectory.sites) w.u64(s);
  }
}

void MipScheduler::restore_state(util::wire::Reader& r) {
  if (config_.reuse_basis) {
    throw std::runtime_error{
        "MipScheduler::restore_state: construct with reuse_basis=false"};
  }
  const auto load_matrix = [&r] {
    const std::uint64_t n = r.u64();
    std::vector<std::vector<double>> m;
    m.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) m.push_back(r.vec_f64());
    return m;
  };
  const auto load_sites = [&r] {
    const std::uint64_t n = r.u64();
    std::vector<std::size_t> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      v.push_back(static_cast<std::size_t>(r.u64()));
    }
    return v;
  };
  cache_now_ = r.i64();
  capacity_ = load_matrix();
  load_ = load_matrix();
  committed_moves_gb_ = r.vec_f64();
  objective_sum_ = load_matrix();
  ranked_.clear();
  const std::uint64_t n_ranked = r.u64();
  for (std::uint64_t i = 0; i < n_ranked; ++i) {
    RankedSubgraph sub;
    sub.sites = load_sites();
    sub.cov = r.f64();
    sub.mean_cores = r.f64();
    ranked_.push_back(std::move(sub));
  }
  prev_trajectories_.clear();
  const std::uint64_t n_prev = r.u64();
  for (std::uint64_t i = 0; i < n_prev; ++i) {
    const std::int64_t id = r.i64();
    Trajectory trajectory;
    trajectory.cost = r.f64();
    trajectory.objective_cost = r.f64();
    trajectory.start = r.i64();
    trajectory.sites = load_sites();
    prev_trajectories_.emplace(id, std::move(trajectory));
  }
}

MipSchedulerConfig make_mip24h_config() {
  MipSchedulerConfig config;
  config.name = "MIP-24h";
  config.horizon_ticks = 96;  // one day at 15-minute ticks
  config.optimize_peak = false;
  return config;
}

MipSchedulerConfig make_mip_peak_config() {
  MipSchedulerConfig config;
  config.name = "MIP-peak";
  config.horizon_ticks = -1;
  config.optimize_peak = true;
  config.spread_moves_in_bucket = true;
  return config;
}

MipSchedulerConfig make_mip_cost_config(const energy::SiteSeries* signal) {
  MipSchedulerConfig config;
  config.name = "MIP-cost";
  config.horizon_ticks = -1;
  config.objective = MipSchedulerConfig::Objective::cost;
  config.objective_signal = signal;
  return config;
}

MipSchedulerConfig make_mip_carbon_config(const energy::SiteSeries* signal) {
  MipSchedulerConfig config;
  config.name = "MIP-carbon";
  config.horizon_ticks = -1;
  config.objective = MipSchedulerConfig::Objective::carbon;
  config.objective_signal = signal;
  return config;
}

}  // namespace vbatt::core
