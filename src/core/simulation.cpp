#include "vbatt/core/simulation.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace vbatt::core {

namespace {

/// Move an app between sites in the state ledgers.
void relocate(FleetState& state, LiveApp& app, std::size_t to) {
  state.stable_cores[app.site] -= app.app.stable_cores();
  state.degradable_cores[app.site] -=
      app.active_degradable * app.app.shape.cores;
  app.site = to;
  state.stable_cores[to] += app.app.stable_cores();
  state.degradable_cores[to] += app.active_degradable * app.app.shape.cores;
}

}  // namespace

SimResult run_simulation(const VbGraph& graph,
                         const std::vector<workload::Application>& apps,
                         Scheduler& scheduler,
                         const SitePowerModel& power_model) {
  const std::size_t n_sites = graph.n_sites();
  const std::size_t n_ticks = graph.n_ticks();
  SimResult result{n_sites, n_ticks};

  FleetState state;
  state.graph = &graph;
  state.stable_cores.assign(n_sites, 0);
  state.degradable_cores.assign(n_sites, 0);

  // Pending proactive moves, per app (replans replace the whole set).
  std::map<std::int64_t, std::vector<Move>> pending;

  const util::Tick replan_period = scheduler.replan_period_ticks();
  std::size_t next_app = 0;

  for (std::size_t i = 0; i < n_ticks; ++i) {
    const auto t = static_cast<util::Tick>(i);
    state.now = t;

    // 1. Departures.
    for (auto it = state.apps.begin(); it != state.apps.end();) {
      if (it->second.end_tick >= 0 && it->second.end_tick <= t) {
        LiveApp& app = it->second;
        state.stable_cores[app.site] -= app.app.stable_cores();
        state.degradable_cores[app.site] -=
            app.active_degradable * app.app.shape.cores;
        pending.erase(it->first);
        it = state.apps.erase(it);
      } else {
        ++it;
      }
    }

    // 2. Replanning: the returned schedule supersedes all pending moves.
    if (replan_period > 0 && t > 0 && t % replan_period == 0) {
      pending.clear();
      for (Move& move : scheduler.replan(state)) {
        pending[move.app_id].push_back(move);
      }
    }

    // 3. Arrivals.
    while (next_app < apps.size() && apps[next_app].arrival <= t) {
      const workload::Application& app = apps[next_app];
      const Scheduler::Placement placement = scheduler.place(app, state);
      LiveApp live;
      live.app = app;
      live.end_tick = app.lifetime_ticks < 0 ? -1 : t + app.lifetime_ticks;
      live.site = placement.site;
      live.allowed = placement.allowed;
      live.active_degradable = app.n_degradable;
      state.stable_cores[live.site] += app.stable_cores();
      state.degradable_cores[live.site] +=
          live.active_degradable * app.shape.cores;
      state.apps.emplace(app.app_id, std::move(live));
      if (!placement.scheduled_moves.empty()) {
        pending[app.app_id] = placement.scheduled_moves;
      }
      ++result.apps_placed;
      ++next_app;
    }

    // 4. Execute due proactive moves.
    for (auto& [app_id, moves] : pending) {
      const auto live_it = state.apps.find(app_id);
      if (live_it == state.apps.end()) continue;
      LiveApp& app = live_it->second;
      for (const Move& move : moves) {
        if (move.at_tick > t) break;  // moves are emitted in time order
        if (move.at_tick == t && move.to_site != app.site) {
          const double gb = app.app.stable_memory_gb();
          result.ledger.record_out(app.site, t, gb);
          result.ledger.record_in(move.to_site, t, gb);
          result.moved_gb[i] += gb;
          relocate(state, app, move.to_site);
          ++result.planned_migrations;
        }
      }
    }

    // 5. Capacity enforcement, site by site.
    for (std::size_t s = 0; s < n_sites; ++s) {
      const int avail = graph.available_cores(s, t);

      // 5a. Degradable VMs absorb the dip first: pause until the site's
      //     stable + active-degradable demand fits (or all are paused).
      int stable = state.stable_cores[s];
      int budget = avail - stable;  // cores left for degradable
      for (auto& [id, app] : state.apps) {
        if (app.site != s || app.app.n_degradable == 0) continue;
        const int want = app.app.n_degradable;
        const int can =
            std::clamp(budget / std::max(1, app.app.shape.cores), 0, want);
        if (can != app.active_degradable) {
          state.degradable_cores[s] +=
              (can - app.active_degradable) * app.app.shape.cores;
          app.active_degradable = can;
        }
        budget -= can * app.app.shape.cores;
        result.paused_degradable_vm_ticks += want - can;
        result.degradable_active_vm_ticks += can;
      }

      // 5b. Forced migration of whole apps while stable demand exceeds
      //     powered capacity.
      if (stable > avail) {
        for (auto& [id, app] : state.apps) {
          if (stable <= avail) break;
          if (app.site != s) continue;
          // Best target: allowed site with the most headroom that fits.
          std::size_t target = s;
          int best_headroom = 0;
          for (const std::size_t cand : app.allowed) {
            if (cand == s) continue;
            const int headroom = graph.available_cores(cand, t) -
                                 state.stable_cores[cand] -
                                 state.degradable_cores[cand];
            if (headroom >= app.app.stable_cores() &&
                headroom > best_headroom) {
              target = cand;
              best_headroom = headroom;
            }
          }
          if (target == s) continue;  // nowhere to go
          const double gb = app.app.stable_memory_gb();
          result.ledger.record_out(s, t, gb);
          result.ledger.record_in(target, t, gb);
          result.moved_gb[i] += gb;
          relocate(state, app, target);
          ++result.forced_migrations;
          stable = state.stable_cores[s];
        }
        if (stable > avail) {
          result.displaced_stable_core_ticks += stable - avail;
          // Attribute the shortfall to resident apps (ascending id) so the
          // availability report can rank per-app impact.
          int deficit = stable - avail;
          for (const auto& [id, app] : state.apps) {
            if (deficit <= 0) break;
            if (app.site != s) continue;
            const int hit = std::min(deficit, app.app.stable_cores());
            result.displaced_by_app[id] += hit;
            deficit -= hit;
          }
        }
      }
    }

    // 6. Compute energy accounting (goal iii): powered servers draw idle
    //    power, active cores draw incremental power.
    const double hours_per_tick = graph.axis().minutes_per_tick() / 60.0;
    for (std::size_t s = 0; s < n_sites; ++s) {
      const int active = state.stable_cores[s] + state.degradable_cores[s];
      if (active <= 0) continue;
      const int servers =
          (active + power_model.cores_per_server - 1) /
          power_model.cores_per_server;
      const double watts = servers * power_model.server_idle_watts +
                           active * power_model.watts_per_active_core;
      const double mwh = watts * hours_per_tick / 1e6;
      result.energy_mwh += mwh;
      result.energy_mwh_per_tick[i] += mwh;
    }
  }
  return result;
}

}  // namespace vbatt::core
