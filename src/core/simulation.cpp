#include "vbatt/core/simulation.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>
#include <utility>

namespace vbatt::core {

namespace {

/// Move an app between sites in the state ledgers and the per-site index.
void relocate(FleetState& state, std::vector<std::set<std::int64_t>>& by_site,
              std::int64_t app_id, LiveApp& app, std::size_t to) {
  state.stable_cores[app.site] -= app.app.stable_cores();
  state.degradable_cores[app.site] -=
      app.active_degradable * app.app.shape.cores;
  by_site[app.site].erase(app_id);
  app.site = to;
  state.stable_cores[to] += app.app.stable_cores();
  state.degradable_cores[to] += app.active_degradable * app.app.shape.cores;
  by_site[to].insert(app_id);
}

}  // namespace

SimResult run_simulation(const VbGraph& graph,
                         const std::vector<workload::Application>& apps,
                         Scheduler& scheduler,
                         const SitePowerModel& power_model,
                         const FaultConfig* faults) {
  const std::size_t n_sites = graph.n_sites();
  const std::size_t n_ticks = graph.n_ticks();
  SimResult result{n_sites, n_ticks};

  // Every fault branch below is gated on `hooks` so the no-fault run stays
  // byte-identical to the pre-fault simulator.
  FaultHooks* const hooks = faults ? faults->hooks : nullptr;
  const MoveRetryPolicy retry = faults ? faults->retry : MoveRetryPolicy{};
  /// A proactive move that could not execute (target blacked out or link
  /// severed), waiting out its backoff.
  struct PendingRetry {
    Move move;
    int attempts = 0;  // failed attempts so far
  };
  std::map<util::Tick, std::vector<PendingRetry>> retry_queue;
  std::vector<int> avail_cache;  // per-tick available, for the snapshot
  if (hooks) avail_cache.assign(n_sites, 0);

  FleetState state;
  state.graph = &graph;
  state.stable_cores.assign(n_sites, 0);
  state.degradable_cores.assign(n_sites, 0);

  // Pending proactive moves, per app (replans replace the whole set), plus
  // a due-tick index so each tick touches only apps with a move due now.
  std::map<std::int64_t, std::vector<Move>> pending;
  std::map<util::Tick, std::set<std::int64_t>> due_moves;

  // Departure calendar queue and resident apps per site (app_id-ordered,
  // so per-site sweeps see the same order the global sweep produced).
  using AppDeparture = std::pair<util::Tick, std::int64_t>;
  std::priority_queue<AppDeparture, std::vector<AppDeparture>,
                      std::greater<AppDeparture>>
      departures;
  std::vector<std::set<std::int64_t>> site_apps(n_sites);

  const util::Tick replan_period = scheduler.replan_period_ticks();
  std::size_t next_app = 0;
  std::uint64_t topo_epoch = hooks ? hooks->topology_epoch() : 0;

  for (std::size_t i = 0; i < n_ticks; ++i) {
    const auto t = static_cast<util::Tick>(i);
    state.now = t;

    // 0. Fault bookkeeping for this tick (link up/down transitions apply
    //    to the graph inside begin_tick). A topology-epoch advance tells
    //    the scheduler to drop warm-start state keyed to the old fleet.
    if (hooks) {
      hooks->begin_tick(t);
      if (const std::uint64_t epoch = hooks->topology_epoch();
          epoch != topo_epoch) {
        topo_epoch = epoch;
        scheduler.on_topology_change();
      }
    }

    /// Whether `move` can execute right now under active faults.
    const auto move_blocked = [&](const LiveApp& app, const Move& move) {
      return hooks->site_down(move.to_site, t) ||
             !graph.latency().connected(app.site, move.to_site);
    };
    /// Charge and apply a proactive move.
    const auto execute_move = [&](std::int64_t app_id, LiveApp& app,
                                  const Move& move) {
      const double gb = app.app.stable_memory_gb();
      result.ledger.record_out(app.site, t, gb);
      result.ledger.record_in(move.to_site, t, gb);
      result.moved_gb[i] += gb;
      relocate(state, site_apps, app_id, app, move.to_site);
      ++result.planned_migrations;
    };
    /// Re-queue a blocked move with capped exponential backoff, or abandon
    /// it once the attempt budget is spent.
    const auto defer_move = [&](const Move& move, int prior_attempts) {
      const int attempts = prior_attempts + 1;
      if (attempts >= retry.max_attempts) {
        ++result.abandoned_moves;
        return;
      }
      util::Tick backoff = retry.base_backoff_ticks;
      for (int a = 1; a < attempts && backoff < retry.max_backoff_ticks; ++a) {
        backoff *= 2;
      }
      backoff = std::min(backoff, retry.max_backoff_ticks);
      Move again = move;
      again.at_tick = t + backoff;
      retry_queue[again.at_tick].push_back({again, attempts});
      ++result.retried_moves;
    };

    // 1. Departures, served from the calendar queue.
    while (!departures.empty() && departures.top().first <= t) {
      const std::int64_t app_id = departures.top().second;
      departures.pop();
      const auto it = state.apps.find(app_id);
      if (it == state.apps.end()) continue;  // defensive: apps depart once
      LiveApp& app = it->second;
      state.stable_cores[app.site] -= app.app.stable_cores();
      state.degradable_cores[app.site] -=
          app.active_degradable * app.app.shape.cores;
      site_apps[app.site].erase(app_id);
      pending.erase(app_id);
      state.apps.erase(it);
    }

    // 2. Replanning: the returned schedule supersedes all pending moves.
    if (replan_period > 0 && t > 0 && t % replan_period == 0) {
      pending.clear();
      due_moves.clear();
      retry_queue.clear();  // a replan supersedes every outstanding move
      for (Move& move : scheduler.replan(state)) {
        due_moves[move.at_tick].insert(move.app_id);
        pending[move.app_id].push_back(move);
      }
    }

    // 3. Arrivals.
    while (next_app < apps.size() && apps[next_app].arrival <= t) {
      const workload::Application& app = apps[next_app];
      const Scheduler::Placement placement = scheduler.place(app, state);
      LiveApp live;
      live.app = app;
      live.end_tick = app.lifetime_ticks < 0 ? -1 : t + app.lifetime_ticks;
      live.site = placement.site;
      live.allowed = placement.allowed;
      live.active_degradable = app.n_degradable;
      state.stable_cores[live.site] += app.stable_cores();
      state.degradable_cores[live.site] +=
          live.active_degradable * app.shape.cores;
      site_apps[live.site].insert(app.app_id);
      if (live.end_tick >= 0) departures.emplace(live.end_tick, app.app_id);
      state.apps.emplace(app.app_id, std::move(live));
      if (!placement.scheduled_moves.empty()) {
        for (const Move& move : placement.scheduled_moves) {
          due_moves[move.at_tick].insert(app.app_id);
        }
        pending[app.app_id] = placement.scheduled_moves;
      }
      ++result.apps_placed;
      ++next_app;
    }

    // 4. Execute due proactive moves (only apps with a move due now).
    if (const auto due = due_moves.find(t); due != due_moves.end()) {
      for (const std::int64_t app_id : due->second) {
        const auto pend = pending.find(app_id);
        if (pend == pending.end()) continue;
        const auto live_it = state.apps.find(app_id);
        if (live_it == state.apps.end()) continue;
        LiveApp& app = live_it->second;
        for (const Move& move : pend->second) {
          if (move.at_tick > t) break;  // moves are emitted in time order
          if (move.at_tick == t && move.to_site != app.site) {
            if (hooks && move_blocked(app, move)) {
              defer_move(move, 0);
            } else {
              execute_move(app_id, app, move);
            }
          }
        }
      }
      due_moves.erase(due);
    }

    // 4b. Retry moves whose backoff expires now (fault runs only).
    if (hooks) {
      if (const auto due = retry_queue.find(t); due != retry_queue.end()) {
        std::vector<PendingRetry> batch = std::move(due->second);
        retry_queue.erase(due);
        for (const PendingRetry& pr : batch) {
          const auto live_it = state.apps.find(pr.move.app_id);
          if (live_it == state.apps.end()) continue;  // departed meanwhile
          LiveApp& app = live_it->second;
          if (pr.move.to_site == app.site) continue;  // already there
          if (move_blocked(app, pr.move)) {
            defer_move(pr.move, pr.attempts);
          } else {
            execute_move(pr.move.app_id, app, pr.move);
          }
        }
      }
    }

    // 5. Capacity enforcement, site by site (resident apps only, via the
    //    per-site index — no fleet-wide app sweep per site). A blacked-out
    //    site has 0 available cores in the (baked) graph, so the ordering
    //    below is exactly the emergency path: pause every degradable VM
    //    first (5a), then force-migrate stable apps out (5b), and count
    //    whatever cannot leave as displaced.
    std::int64_t displaced_this_tick = 0;
    for (std::size_t s = 0; s < n_sites; ++s) {
      const int avail = graph.available_cores(s, t);
      if (hooks) avail_cache[s] = avail;

      // 5a. Degradable VMs absorb the dip first: pause until the site's
      //     stable + active-degradable demand fits (or all are paused).
      int stable = state.stable_cores[s];
      int budget = avail - stable;  // cores left for degradable
      for (const std::int64_t id : site_apps[s]) {
        LiveApp& app = state.apps.at(id);
        if (app.app.n_degradable == 0) continue;
        const int want = app.app.n_degradable;
        const int can =
            std::clamp(budget / std::max(1, app.app.shape.cores), 0, want);
        if (can != app.active_degradable) {
          state.degradable_cores[s] +=
              (can - app.active_degradable) * app.app.shape.cores;
          app.active_degradable = can;
        }
        budget -= can * app.app.shape.cores;
        result.paused_degradable_vm_ticks += want - can;
        result.degradable_active_vm_ticks += can;
      }

      // 5b. Forced migration of whole apps while stable demand exceeds
      //     powered capacity. Snapshot the residents: relocation mutates
      //     the per-site index mid-iteration.
      if (stable > avail) {
        const std::vector<std::int64_t> residents(site_apps[s].begin(),
                                                  site_apps[s].end());
        for (const std::int64_t id : residents) {
          if (stable <= avail) break;
          LiveApp& app = state.apps.at(id);
          if (app.site != s) continue;
          // Best target: allowed site with the most headroom that fits.
          std::size_t target = s;
          int best_headroom = 0;
          for (const std::size_t cand : app.allowed) {
            if (cand == s) continue;
            const int headroom = graph.available_cores(cand, t) -
                                 state.stable_cores[cand] -
                                 state.degradable_cores[cand];
            if (headroom >= app.app.stable_cores() &&
                headroom > best_headroom) {
              target = cand;
              best_headroom = headroom;
            }
          }
          if (target == s) continue;  // nowhere to go
          const double gb = app.app.stable_memory_gb();
          result.ledger.record_out(s, t, gb);
          result.ledger.record_in(target, t, gb);
          result.moved_gb[i] += gb;
          relocate(state, site_apps, id, app, target);
          ++result.forced_migrations;
          stable = state.stable_cores[s];
        }
        if (stable > avail) {
          result.displaced_stable_core_ticks += stable - avail;
          displaced_this_tick += stable - avail;
          // Attribute the shortfall to resident apps (ascending id) so the
          // availability report can rank per-app impact.
          int deficit = stable - avail;
          for (const std::int64_t id : site_apps[s]) {
            if (deficit <= 0) break;
            const LiveApp& app = state.apps.at(id);
            const int hit = std::min(deficit, app.app.stable_cores());
            result.displaced_by_app[id] += hit;
            deficit -= hit;
          }
        }
      }
    }

    // 6. Compute energy accounting (goal iii): powered servers draw idle
    //    power, active cores draw incremental power.
    const double hours_per_tick = graph.axis().minutes_per_tick() / 60.0;
    for (std::size_t s = 0; s < n_sites; ++s) {
      const int active = state.stable_cores[s] + state.degradable_cores[s];
      if (active <= 0) continue;
      const int servers =
          (active + power_model.cores_per_server - 1) /
          power_model.cores_per_server;
      const double watts = servers * power_model.server_idle_watts +
                           active * power_model.watts_per_active_core;
      const double mwh = watts * hours_per_tick / 1e6;
      result.energy_mwh += mwh;
      result.energy_mwh_per_tick[i] += mwh;
    }

    // 7. Fault accounting and end-of-tick observation.
    result.displaced_stable_cores_per_tick[i] = displaced_this_tick;
    if (hooks) {
      if (displaced_this_tick > 0) ++result.stable_vm_downtime_ticks;
      for (std::size_t s = 0; s < n_sites; ++s) {
        if (hooks->site_degraded(s, t)) ++result.faulted_site_ticks;
      }
      TickSnapshot snap;
      snap.t = t;
      snap.available = &avail_cache;
      snap.stable_cores = &state.stable_cores;
      snap.degradable_cores = &state.degradable_cores;
      snap.displaced_stable_cores = displaced_this_tick;
      hooks->on_tick_end(snap);
    }
  }
  result.fallback_activations = scheduler.fallback_count();
  return result;
}

}  // namespace vbatt::core
