#include "vbatt/core/simulation.h"

#include "vbatt/core/sim_stepper.h"
#include "vbatt/util/signal.h"

namespace vbatt::core {

SimResult run_simulation(const VbGraph& graph,
                         const std::vector<workload::Application>& apps,
                         Scheduler& scheduler,
                         const SitePowerModel& power_model,
                         const FaultConfig* faults,
                         const ScenarioExtensions* ext) {
  // Thin batch driver over the incremental stepper (sim_stepper.h): the
  // stepper owns all per-run state and the phase bodies; this loop only
  // feeds the arrival trace and polls the cooperative shutdown flag.
  SimStepper stepper{graph, scheduler, power_model, faults, ext};
  const std::size_t n_ticks = graph.n_ticks();
  std::size_t next_app = 0;

  for (std::size_t i = 0; i < n_ticks; ++i) {
    if (util::shutdown_requested()) break;
    const auto t = static_cast<util::Tick>(i);
    stepper.begin_tick(t);
    stepper.process_departures();
    stepper.maybe_replan();
    while (next_app < apps.size() && apps[next_app].arrival <= t) {
      stepper.arrive(apps[next_app]);
      ++next_app;
    }
    stepper.execute_due_moves();
    stepper.enforce_and_meter();
  }
  return stepper.take_result();
}

}  // namespace vbatt::core
