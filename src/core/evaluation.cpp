#include "vbatt/core/evaluation.h"

#include <algorithm>

#include "vbatt/core/mip_scheduler.h"
#include "vbatt/stats/quantile.h"
#include "vbatt/stats/running_stats.h"

namespace vbatt::core {

PolicyRow summarize(const std::string& policy, const SimResult& result) {
  PolicyRow row;
  row.policy = policy;
  stats::RunningStats rs;
  for (const double v : result.moved_gb) rs.add(v);
  // One quantile of a throwaway copy: selection, not a full sort.
  std::vector<double> moved = result.moved_gb;
  row.total_gb = rs.sum();
  row.p99_gb = stats::quantile_in_place(moved, 99.0);
  row.peak_gb = rs.max();
  row.std_gb = rs.stddev();
  row.zero_fraction =
      moved.empty() ? 0.0
                    : static_cast<double>(
                          std::count(moved.begin(), moved.end(), 0.0)) /
                          static_cast<double>(moved.size());
  row.planned_migrations = result.planned_migrations;
  row.forced_migrations = result.forced_migrations;
  row.displaced_stable_core_ticks = result.displaced_stable_core_ticks;
  row.energy_mwh = result.energy_mwh;
  row.degradable_active_vm_ticks = result.degradable_active_vm_ticks;
  return row;
}

Comparison compare_policies(const VbGraph& graph,
                            const std::vector<workload::Application>& apps) {
  Comparison comparison;
  const auto run = [&](std::unique_ptr<Scheduler> scheduler) {
    const SimResult result = run_simulation(graph, apps, *scheduler);
    comparison.rows.push_back(summarize(scheduler->name(), result));
    comparison.moved_gb.push_back(result.moved_gb);
  };
  run(std::make_unique<GreedyScheduler>());
  run(std::make_unique<MipScheduler>(make_mip24h_config()));
  run(std::make_unique<MipScheduler>(make_mip_config()));
  run(std::make_unique<MipScheduler>(make_mip_peak_config()));
  return comparison;
}

}  // namespace vbatt::core
