// Approximate dense-subgraph identification for large fleets.
//
// Exact k-clique enumeration (cliques.h) is fine for tens of sites but
// combinatorial beyond that. The paper notes that "identifying dense
// subgraphs has been a well-studied problem in literature with tractable
// approximate solutions" (its reference [11]); this module provides the
// classic 2-approximation: Charikar's greedy peeling for the densest
// subgraph, plus a size-bounded variant that extracts candidate VB groups
// of a target size, ordered by combined forecast complementarity.
#pragma once

#include <cstddef>
#include <vector>

#include "vbatt/core/cliques.h"
#include "vbatt/core/vb_graph.h"

namespace vbatt::core {

/// Charikar's greedy peeling: repeatedly remove the minimum-degree vertex;
/// return the densest prefix (by average degree |E|/|V|). 2-approximation
/// of the densest subgraph. O(V^2) on the dense matrix representation.
std::vector<std::size_t> densest_subgraph(const net::LatencyGraph& graph);

/// Extract up to `count` disjoint candidate groups of exactly `k` sites:
/// peel to a dense core, pick the k members with the lowest combined
/// forecast cov (greedy complementarity selection within the core),
/// remove them, repeat. Falls back to fewer groups when the graph runs
/// out of connected material. Groups are internally connected cliques-or-
/// near-cliques suitable as scheduling subgraphs at fleet scales where
/// exact enumeration is too slow.
std::vector<RankedSubgraph> peel_candidate_groups(const VbGraph& graph,
                                                  int k, int count,
                                                  util::Tick now,
                                                  util::Tick window_ticks);

}  // namespace vbatt::core
