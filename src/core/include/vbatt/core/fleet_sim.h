// Sharded fleet-scale VM-level simulator.
//
// run_vm_level_simulation is a single event loop over one global site
// array; at fleet scale (1000 sites, millions of VMs) its per-VM heap
// objects and global sweeps dominate. run_fleet_simulation produces
// bit-identical results from a sharded engine: the fleet is split into
// contiguous site ranges, each owning its sites' hot state as one SoA
// dcsim::SiteBlock, and each tick alternates between
//
//   * parallel shard phases — work that only touches one site and
//     commutes across sites (energy metering, server repairs, power-budget
//     fill, departure removals, power shrinks), fanned over the
//     ThreadPool with every shard writing only its own slices; and
//   * serial coordinator phases — every decision whose outcome depends on
//     cross-site order (scheduler calls, proactive moves, displaced
//     re-home, resume, and all floating-point reductions), executed in
//     exactly the unsharded engine's order.
//
// Cross-shard effects (inter-site migrations, displacements) are emitted
// as per-shard logs during parallel phases and merged by the coordinator
// in global site order at the epoch barrier between phases, so the
// result is bit-identical to run_vm_level_simulation for every
// VBATT_THREADS and shard-count setting. The determinism contract and
// the phase schedule are documented in docs/SIMULATOR.md.
#pragma once

#include "vbatt/core/vm_level_sim.h"

namespace vbatt::core {

struct FleetSimOptions {
  /// Number of shards (contiguous site ranges). 0 = one shard per pool
  /// lane (pool size + 1; 1 when pool is null), clamped to [1, n_sites].
  /// The shard count never changes the result, only the partitioning.
  int n_shards = 0;
  /// Pool for the parallel shard phases; nullptr runs them inline.
  util::ThreadPool* pool = nullptr;
};

/// Sharded equivalent of run_vm_level_simulation: same inputs, same
/// result, field-for-field and bit-for-bit.
VmLevelResult run_fleet_simulation(
    const VbGraph& graph, const std::vector<workload::Application>& apps,
    Scheduler& scheduler, const VmLevelConfig& config = {},
    const FleetSimOptions& options = {});

}  // namespace vbatt::core
