// VM-granular multi-site simulation (§3.1 step 4 integrated).
//
// The app-level simulator (simulation.h) treats each VB node as a bag of
// cores — the right granularity for Table 1. This variant additionally
// models every node as a cluster of servers (dcsim::Site) and places each
// VM through an allocation policy, so intra-site effects become visible:
//   * fragmentation: cores may be free but no server fits a VM;
//   * consolidation: best-fit packing leaves whole servers empty, and
//     empty servers draw no power (the paper's "power down unallocated
//     cores" taken to server granularity);
//   * per-VM eviction: a power dip evicts individual VMs round-robin over
//     servers rather than whole applications.
#pragma once

#include "vbatt/core/scheduler.h"
#include "vbatt/core/simulation.h"
#include "vbatt/dcsim/site.h"
#include "vbatt/util/thread_pool.h"

namespace vbatt::core {

struct VmLevelConfig {
  dcsim::ServerSpec server{40, 512.0};
  SitePowerModel power{};
  /// Which allocation policy packs VMs onto servers.
  enum class Placement { first_fit, best_fit, worst_fit };
  Placement placement = Placement::best_fit;
  /// Optional fault injection (hooks == nullptr keeps the no-fault path
  /// byte-identical) plus the move retry/backoff discipline.
  FaultConfig faults{};
  /// Opt-in scenario extensions (batch overlay, price/carbon series); null
  /// keeps the run byte-identical. The overlay is stepped at a serial
  /// point after degradable resume, so the sharded fleet engine
  /// (fleet_sim.h) reproduces it bit-for-bit at any thread count.
  const ScenarioExtensions* ext = nullptr;
};

struct VmLevelResult {
  SimResult base;
  /// Individual VM moves (the app-level sim counts app moves).
  std::int64_t vm_migrations = 0;
  /// Placements that failed on fragmentation despite aggregate headroom.
  std::int64_t fragmentation_failures = 0;
  /// Tick-summed count of powered servers across the fleet (for energy /
  /// consolidation comparisons).
  std::int64_t powered_server_ticks = 0;

  VmLevelResult(std::size_t n_sites, std::size_t n_ticks)
      : base{n_sites, n_ticks} {}
};

/// Run `apps` against `graph` at VM granularity under `scheduler` (the
/// same Scheduler implementations the app-level simulator uses). With a
/// `pool`, the independent per-site power-enforcement and energy steps fan
/// out over its lanes; the output is bit-identical to the serial run
/// (every site writes only its own slot), so the thread count never
/// changes the answer.
VmLevelResult run_vm_level_simulation(
    const VbGraph& graph, const std::vector<workload::Application>& apps,
    Scheduler& scheduler, const VmLevelConfig& config = {},
    util::ThreadPool* pool = nullptr);

}  // namespace vbatt::core
