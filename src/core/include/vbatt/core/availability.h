// Per-application availability report (scheduling goal i of §3.1).
//
// The simulators count displaced stable core-ticks per app; this module
// turns those into the metric a cloud provider actually sells: the
// fraction of each app's demanded stable capacity that was powered.
#pragma once

#include <vector>

#include "vbatt/core/simulation.h"

namespace vbatt::core {

struct AppAvailability {
  std::int64_t app_id = 0;
  /// Served / demanded stable core-ticks, in [0, 1]. 1.0 = never degraded.
  double availability = 1.0;
};

struct AvailabilityReport {
  std::vector<AppAvailability> apps;  // sorted ascending by availability
  double min = 1.0;
  double p5 = 1.0;
  double mean = 1.0;
  /// Fraction of apps with availability >= 0.999 ("three nines" of stable
  /// capacity — the cloud-grade bar the paper's multi-VB design targets).
  double three_nines_fraction = 1.0;
};

/// Build the report for a finished run. `apps` must be the same list the
/// simulation consumed; `n_ticks` bounds residency for immortal apps.
AvailabilityReport availability_report(
    const SimResult& result, const std::vector<workload::Application>& apps,
    std::size_t n_ticks);

}  // namespace vbatt::core
