// Policy evaluation harness: Table 1 and Figure 7.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "vbatt/core/simulation.h"
#include "vbatt/stats/percentile.h"

namespace vbatt::core {

/// One row of Table 1: migration-overhead statistics of a policy, computed
/// over the per-tick fleet totals (zeros included, as the paper's Std and
/// 99%ile imply).
struct PolicyRow {
  std::string policy;
  double total_gb = 0.0;
  double p99_gb = 0.0;
  double peak_gb = 0.0;
  double std_gb = 0.0;
  /// Fraction of ticks with zero migration (Fig. 7's CDF intercepts).
  double zero_fraction = 0.0;
  std::int64_t planned_migrations = 0;
  std::int64_t forced_migrations = 0;
  std::int64_t displaced_stable_core_ticks = 0;
  double energy_mwh = 0.0;
  /// Delivered degradable (harvest/spot) capacity, VM-ticks.
  std::int64_t degradable_active_vm_ticks = 0;
};

/// Summarize a simulation run into a Table-1 row.
PolicyRow summarize(const std::string& policy, const SimResult& result);

/// Run all four of the paper's policies (Greedy, MIP-24h, MIP, MIP-peak)
/// on the same fleet and workload. Returns rows in the paper's order plus
/// the per-tick series for CDF plotting (parallel to the rows).
struct Comparison {
  std::vector<PolicyRow> rows;
  std::vector<std::vector<double>> moved_gb;  // per policy, per tick
};
Comparison compare_policies(const VbGraph& graph,
                            const std::vector<workload::Application>& apps);

}  // namespace vbatt::core
