// Incremental tick-stepping core of the app-level simulator.
//
// run_simulation() (simulation.h) is a batch driver: it owns the tick loop
// and feeds arrivals from a pre-loaded trace. The control-plane service
// (vbatt::svc) needs the same engine advanced one phase at a time by
// *streamed* events — arrivals, departures, and replans arrive from the
// outside world instead of a trace. SimStepper is that seam: it holds all
// the per-run state (fleet ledgers, pending proactive moves, retry queue,
// departure calendar, result accumulators) and exposes the tick phases in
// the exact order the batch loop runs them, so a trace-driven run through
// the stepper is byte-identical to the historical run_simulation body.
//
// Phase order per tick t (the batch loop's steps 0-7):
//   begin_tick(t)          fault bookkeeping, topology-epoch watch
//   process_departures()   calendar-due app departures
//   [depart_now(id)...]    externally ordered departures (service only)
//   maybe_replan()         cadence replan  — or force_replan() on trigger
//   [arrive(app)...]       arrivals due this tick, in trace order
//   execute_due_moves()    proactive moves due now + fault retries
//   enforce_and_meter()    capacity enforcement, energy, fault accounting
//
// save()/restore() serialize the complete logical state between ticks
// (after enforce_and_meter, before the next begin_tick), so a restored
// stepper continues bit-identically. The scheduler is NOT serialized:
// recovery constructs a fresh one, which is output-identical only for
// schedulers that carry no result-bearing state across replans (Greedy
// always; MipScheduler with warm_start and reuse_basis off — warm starts
// are cutoff-only and hints are inert under the pinned engine, but the
// service disables both so the contract is self-evident).
#pragma once

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "vbatt/core/simulation.h"
#include "vbatt/util/wire.h"

namespace vbatt::core {

class SimStepper {
 public:
  /// State is sized to `graph.n_ticks()`; ticks step 0, 1, ….
  /// `ext` (optional) attaches the opt-in scenario extensions: a batch
  /// overlay stepped inside enforce_and_meter, and price/carbon series
  /// that score the metered energy. Null leaves the run byte-identical.
  SimStepper(const VbGraph& graph, Scheduler& scheduler,
             const SitePowerModel& power_model = {},
             const FaultConfig* faults = nullptr,
             const ScenarioExtensions* ext = nullptr);

  /// Last tick fully stepped (-1 before the first begin_tick).
  util::Tick now() const noexcept { return now_; }
  std::size_t n_sites() const noexcept { return n_sites_; }
  std::size_t n_ticks() const noexcept { return n_ticks_; }
  const FleetState& fleet() const noexcept { return state_; }
  const SimResult& result() const noexcept { return result_; }

  // -- tick phases, in order -----------------------------------------------
  void begin_tick(util::Tick t);
  void process_departures();
  /// Depart `app_id` immediately (externally ordered — a VmDeparture event).
  /// Unknown ids are ignored, matching the calendar's defensive skip.
  void depart_now(std::int64_t app_id);
  void maybe_replan();
  /// Replan immediately regardless of cadence (service fault trigger).
  void force_replan();
  void arrive(const workload::Application& app);
  void execute_due_moves();
  void enforce_and_meter();

  /// Dynamic batch submissions (BatchJob / HarvestTask service events).
  /// Entities join the overlay's admission scan on the next
  /// enforce_and_meter whose tick has reached their arrival.
  void submit_batch_job(const workload::DeadlineJob& job);
  void submit_harvest_task(const workload::HarvestTask& task);

  /// Finalize counters copied from the scheduler and move the result out.
  /// The stepper is spent afterwards.
  SimResult take_result();

  /// Scheduler fallback rungs taken so far, including pre-restore history.
  std::int64_t fallback_activations() const;

  /// Serialize every result-bearing field. Deterministic: equal logical
  /// states produce equal bytes.
  void save(util::wire::Writer& w) const;
  /// Inverse of save(). The stepper must be freshly constructed against the
  /// same graph/scheduler/config the saved one used.
  void restore(util::wire::Reader& r);

 private:
  struct PendingRetry {
    Move move;
    int attempts = 0;  // failed attempts so far
  };

  bool move_blocked(const LiveApp& app, const Move& move) const;
  void execute_move(std::int64_t app_id, LiveApp& app, const Move& move);
  void defer_move(const Move& move, int prior_attempts);
  void adopt_replan(std::vector<Move> moves);

  const VbGraph& graph_;
  Scheduler& scheduler_;
  SitePowerModel power_model_;
  FaultHooks* hooks_ = nullptr;
  MoveRetryPolicy retry_;
  std::size_t n_sites_ = 0;
  std::size_t n_ticks_ = 0;
  util::Tick replan_period_ = 0;

  util::Tick now_ = -1;
  FleetState state_;
  SimResult result_;
  std::vector<int> avail_cache_;  // per-tick available, for the snapshot

  /// Opt-in extensions: the overlay executor plus econ series pointers.
  /// has_overlay_ flips on when a BatchWorkload is attached or the first
  /// dynamic submission arrives; a default run never touches these.
  workload::BatchOverlay overlay_;
  bool has_overlay_ = false;
  const energy::SiteSeries* price_ = nullptr;
  const energy::SiteSeries* carbon_ = nullptr;
  std::vector<std::int64_t> overlay_free_;  // scratch, per-site free cores

  /// Pending proactive moves per app (replans replace the whole set), plus
  /// a due-tick index so each tick touches only apps with a move due now.
  std::map<std::int64_t, std::vector<Move>> pending_;
  std::map<util::Tick, std::set<std::int64_t>> due_moves_;
  std::map<util::Tick, std::vector<PendingRetry>> retry_queue_;

  /// Departure calendar, ordered (end_tick, app_id) — pop order identical
  /// to the historical min-heap, and trivially serializable.
  std::set<std::pair<util::Tick, std::int64_t>> departures_;
  std::vector<std::set<std::int64_t>> site_apps_;

  std::uint64_t topo_epoch_ = 0;
  /// Fallback rungs recorded by schedulers that died before a restore;
  /// added to the live scheduler's count at take_result().
  std::int64_t fallback_base_ = 0;
};

}  // namespace vbatt::core
