// Standby replication — §3's alternative to migration.
//
// "Such applications must rely on either hot/cold standbys using
// continuous replication or migration. This introduces continuous or
// bursty network overheads." This module implements the standby side of
// that trade-off so the two can be compared on the same fleet/workload:
//
//   * hot standby: a replica at a second (complementary) site receives a
//     continuous delta-sync stream; on a power loss at the primary, roles
//     swap instantly (negligible traffic) and a new standby is rebuilt in
//     the background;
//   * cold standby: periodic checkpoints ship to the standby site; on
//     failover the standby restores from the last checkpoint (the state
//     since then is lost time, not modeled further).
#pragma once

#include "vbatt/core/simulation.h"

namespace vbatt::core {

struct ReplicationConfig {
  bool hot_standby = true;
  /// Hot: fraction of the app's stable memory synced per hour.
  double sync_fraction_per_hour = 0.05;
  /// Cold: checkpoint cadence and per-checkpoint delta size.
  double checkpoint_interval_hours = 6.0;
  double checkpoint_fraction = 0.20;
  /// Rebuilding a lost standby streams the full footprint over this long.
  double rebuild_hours = 2.0;
};

/// Run the fleet with primary+standby placement instead of migration.
/// Traffic charged: continuous sync (hot) or periodic checkpoints (cold),
/// plus standby rebuild streams after failovers. The returned SimResult
/// uses `planned_migrations` for failovers and `forced_migrations` = 0.
SimResult run_replication_simulation(
    const VbGraph& graph, const std::vector<workload::Application>& apps,
    const ReplicationConfig& config = {},
    const SitePowerModel& power_model = {});

}  // namespace vbatt::core
