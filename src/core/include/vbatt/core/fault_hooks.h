// Fault-injection seam between the simulators and vbatt::fault.
//
// The simulators never depend on the fault library; they only talk to this
// abstract interface. When no hooks are installed (the default), every
// fault branch in the simulators is skipped and the output is byte-for-byte
// identical to a build that has never heard of faults. vbatt::fault's
// FaultInjector implements the interface and additionally *bakes* power
// faults (blackout, brownout, forecast error) into a private copy of the
// VbGraph, so the hot paths keep reading plain arrays — no virtual call per
// core lookup, only a handful per tick.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vbatt/util/time.h"

namespace vbatt::core {

/// A batch of servers at one site going offline this tick; they return at
/// `repair_tick` (exclusive — repaired at the top of that tick).
struct ServerOutage {
  std::size_t site = 0;
  int count = 0;
  util::Tick repair_tick = 0;
};

/// End-of-tick observation handed to the hooks (drives invariant checking
/// and per-tick fault accounting). Pointers refer to simulator-owned
/// per-site arrays, valid only for the duration of the call.
struct TickSnapshot {
  util::Tick t = 0;
  /// Per-site available cores after faults (what the sim enforced against).
  const std::vector<int>* available = nullptr;
  /// Per-site resident stable cores after enforcement.
  const std::vector<int>* stable_cores = nullptr;
  /// Per-site currently active degradable cores.
  const std::vector<int>* degradable_cores = nullptr;
  /// Stable cores with no powered home this tick, fleet-wide.
  std::int64_t displaced_stable_cores = 0;
};

/// Interface the simulators call at fixed points of the tick loop. All
/// methods are invoked from the simulation thread only.
class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// Top of tick `t`, before any simulator step. Dynamic topology faults
  /// (WAN link down/up transitions) are applied to the graph here.
  virtual void begin_tick(util::Tick t) = 0;

  /// Monotone counter bumped whenever the topology the schedulers plan
  /// against changes shape: a WAN link going down or up, a server-failure
  /// batch starting, or its repair landing. Simulators compare it across
  /// begin_tick calls and notify schedulers (Scheduler::on_topology_change)
  /// so cross-replan solver state (dual values, basis snapshots) keyed to
  /// the old topology is discarded rather than seeded into a stale solve.
  /// Default 0 forever: no topology faults, nothing to invalidate.
  virtual std::uint64_t topology_epoch() const { return 0; }

  /// True while site `s` is blacked out at `t` — power forced to zero *by a
  /// fault*. A solar night is not a blackout; the simulators use this to
  /// trigger emergency eviction rather than ordinary shrinking.
  virtual bool site_down(std::size_t s, util::Tick t) const = 0;

  /// True while any fault (blackout, brownout, server outage) is active on
  /// site `s` at `t`; feeds the faulted-site-tick counter.
  virtual bool site_degraded(std::size_t s, util::Tick t) const = 0;

  /// Server-failure batches that begin at tick `t` (empty for most ticks).
  virtual std::vector<ServerOutage> server_outages_at(util::Tick t) = 0;

  /// Bottom of tick `t`, after energy accounting. Observation only.
  virtual void on_tick_end(const TickSnapshot& snap) = 0;
};

/// Retry discipline for proactive moves that cannot execute (target down,
/// link severed, no room): capped exponential backoff, then abandonment.
struct MoveRetryPolicy {
  util::Tick base_backoff_ticks = 2;
  util::Tick max_backoff_ticks = 16;
  int max_attempts = 5;
};

/// Everything a simulator needs to run under fault injection. `hooks ==
/// nullptr` disables every fault branch.
struct FaultConfig {
  FaultHooks* hooks = nullptr;
  MoveRetryPolicy retry{};
};

}  // namespace vbatt::core
