// The VB fleet graph (§3.1, Figure 6).
//
// Nodes are VB sites carrying capacity, actual power, and multi-horizon
// forecasts; edges connect sites whose RTT is under the scheduling
// threshold (50 ms). This is the input to subgraph identification and to
// every scheduler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vbatt/energy/forecast.h"
#include "vbatt/energy/site.h"
#include "vbatt/energy/trace.h"
#include "vbatt/net/latency.h"
#include "vbatt/util/time.h"

namespace vbatt::core {

/// One VB site as the scheduler sees it.
struct VbSite {
  int id = 0;
  std::string name;
  energy::Source source = energy::Source::solar;
  util::GeoPoint location{};
  /// Cluster size when fully powered.
  int capacity_cores = 0;
  /// Actual normalized power per tick.
  std::vector<double> power_norm;
  /// Forecast series per lead (parallel to VbGraph::forecast_leads_hours).
  std::vector<std::vector<double>> forecast_norm;
};

struct VbGraphConfig {
  double rtt_threshold_ms = 50.0;
  net::RttModel rtt{};
  /// Fixed forecast leads precomputed per site; schedulers snap a query
  /// lead to the nearest not-smaller entry (conservative: farther lead =
  /// blurrier forecast). Must be ascending.
  std::vector<double> forecast_leads_hours{3.0, 6.0, 12.0, 24.0,
                                           48.0, 96.0, 168.0};
  energy::ForecastConfig forecaster{};
  /// Cores per MW of farm peak capacity (sizes each site's cluster so full
  /// farm output powers it completely, as in §3's setup).
  double cores_per_mw = 70.0;
  /// Oracle mode: forecasts are the actual series at every lead. Used by
  /// ablations to measure the value of forecast accuracy (§3.1's premise
  /// isolated from everything else).
  bool oracle_forecasts = false;
};

/// Immutable scheduling substrate built from a generated fleet.
class VbGraph {
 public:
  VbGraph(const energy::Fleet& fleet, const VbGraphConfig& config);

  std::size_t n_sites() const noexcept { return sites_.size(); }
  std::size_t n_ticks() const noexcept { return n_ticks_; }
  const util::TimeAxis& axis() const noexcept { return axis_; }
  const VbSite& site(std::size_t s) const { return sites_.at(s); }
  const std::vector<VbSite>& sites() const noexcept { return sites_; }
  const net::LatencyGraph& latency() const noexcept { return latency_; }

  // Fault-injection seams (vbatt::fault bakes faults into a *copy* of the
  // graph through these; nothing else mutates a built graph, so the
  // schedulers' immutability assumption holds on the original).
  std::vector<VbSite>& mutable_sites() noexcept { return sites_; }
  net::LatencyGraph& mutable_latency() noexcept { return latency_; }

  /// Cores actually available at site `s`, tick `t`.
  int available_cores(std::size_t s, util::Tick t) const;

  /// Cores predicted available at `target` as seen from `now` (lead =
  /// target - now, snapped to the next precomputed horizon). A perfect
  /// oracle for target <= now.
  int forecast_cores(std::size_t s, util::Tick target, util::Tick now) const;

  /// Bulk forecast: element i is forecast_cores(s, begin + i, now) for
  /// every tick in [begin, end), value-identical to the per-tick calls.
  /// One bounds check and a single monotone walk over the lead table for
  /// the whole range instead of a lead search per tick — this is the
  /// hot-path API; ForecastCache materializes it once per replan.
  std::vector<int> forecast_series(std::size_t s, util::Tick now,
                                   util::Tick begin, util::Tick end) const;

 private:
  util::TimeAxis axis_{};
  std::size_t n_ticks_ = 0;
  std::vector<VbSite> sites_;
  std::vector<double> leads_hours_;
  net::LatencyGraph latency_;
};

}  // namespace vbatt::core
