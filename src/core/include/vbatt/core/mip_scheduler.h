// The power & network aware MIP co-scheduler (§3.1, steps 1-3).
//
// For each application the scheduler:
//   1. ranks k-cliques of the latency graph by combined forecast cov
//      (subgraph identification),
//   2. evaluates the best few candidates by solving a per-app MIP over a
//      bucketed horizon: binary x[s][τ] = "app resides at site s during
//      bucket τ", move indicators y[s][τ] ≥ x[s][τ] − x[s][τ−1], objective
//      O1 = Σ move_bytes + Σ predicted forced-migration bytes (subgraph +
//      site selection),
//   3. optionally (MIP-peak) re-optimizes lexicographically: subject to
//      O1 within (1+ε) of optimal, minimize the peak per-bucket migration
//      volume P ≥ committed[τ] + app's moves in τ (O2).
//
// Applications are committed sequentially against shared capacity/traffic
// ledgers — a decomposition of the paper's joint MIP that keeps every
// subproblem small (the per-app LP relaxation has interval structure and
// solves at the root node almost always). Capacity is soft (deficit cost),
// matching O1/O2's pure-overhead objectives.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>

#include "vbatt/core/cliques.h"
#include "vbatt/core/forecast_cache.h"
#include "vbatt/core/scheduler.h"
#include "vbatt/energy/signal.h"
#include "vbatt/solver/branch_bound.h"
#include "vbatt/solver/incremental.h"

namespace vbatt::core {

struct MipSchedulerConfig {
  std::string name = "MIP";
  /// Clique size for subgraph identification (paper: k = 2..5).
  int clique_k = 4;
  /// How many top-ranked subgraphs to evaluate with the MIP.
  int candidate_subgraphs = 3;
  /// Planning bucket width in ticks (24 ticks = 6 h at 15-min resolution).
  util::Tick bucket_ticks = 24;
  /// Lookahead; < 0 means "to the end of the trace" (the paper's MIP /
  /// MIP-peak). MIP-24h sets this to one day.
  util::Tick horizon_ticks = -1;
  /// Replanning cadence (forecast-update cadence), ticks.
  util::Tick replan_period = 24;
  /// Enable the lexicographic peak objective (MIP-peak).
  bool optimize_peak = false;
  /// Allowed O1 degradation when minimizing the peak.
  double peak_eps_rel = 0.10;
  /// Secondary *economic* objective, applied lexicographically after O1
  /// (move + predicted-displacement bytes) and before the optional peak
  /// stage: subject to O1 within objective_eps_rel of optimal, minimize
  /// the app's summed electricity cost in USD (cost) or embodied grid
  /// carbon in kg (carbon) over its planned trajectory. The coefficient
  /// for residing at site s during bucket b is the signal summed over the
  /// bucket's ticks times the app's stable cores, objective_kw_per_core,
  /// and hours-per-tick (real units, deliberately undiscounted so the
  /// stage value replays exactly against a per-tick ledger).
  enum class Objective { none, cost, carbon };
  Objective objective = Objective::none;
  /// Per-(site, tick) signal backing the econ stage: electricity price in
  /// $/MWh when objective == cost, grid carbon intensity in gCO2/kWh when
  /// objective == carbon. Must be non-null (and outlive the scheduler)
  /// whenever objective != none.
  const energy::SiteSeries* objective_signal = nullptr;
  /// Power attributed to one stable core when pricing a trajectory, kW
  /// (default mirrors SitePowerModel::watts_per_active_core = 8 W).
  double objective_kw_per_core = 0.008;
  /// Allowed O1 degradation when minimizing the econ objective.
  double objective_eps_rel = 0.01;
  /// Plan against this fraction of forecast capacity (forecast headroom).
  double capacity_safety = 0.90;
  /// Weight of predicted forced-migration/displacement cost relative to a
  /// proactive move of the same bytes. > 1: sitting in a predicted deficit
  /// is worse than moving away from it (a forced move costs the same bytes
  /// *plus* availability risk).
  double deficit_penalty = 2.0;
  /// Per-bucket discount on future costs: far-horizon forecasts are blurry
  /// and far-future problems can be fixed by a later replan, so they weigh
  /// less now. 1.0 disables discounting.
  double discount_per_bucket = 0.92;
  /// Spread each planned move uniformly inside its bucket instead of firing
  /// at the bucket boundary. Enabled for MIP-peak (its whole point is to
  /// de-burst migrations); MIP / MIP-24h fire at boundaries, which is what
  /// produces their paper-reported high peaks despite low totals.
  bool spread_moves_in_bucket = false;
  /// Hard cap on buckets per solve (bounds model size).
  int max_buckets = 32;
  /// Feed the solver warm starts: each replan seeds an app's MIP with its
  /// previous round's trajectory, and the MIP-peak stage 2 is seeded with
  /// the stage-1 optimum. Warm starts are cutoff-only (solve_mip returns
  /// bit-identical results with or without them), so this is purely a
  /// performance knob; disabling it is useful for determinism tests.
  bool warm_start = true;
  /// Carry solver bases and duals across replans: each app's optimal root
  /// basis from the last replan seeds the next one (solver::MipBasisHint),
  /// so the root LP starts dual-feasible and usually re-optimizes in a
  /// handful of pivots. Unlike `warm_start` this can change which of
  /// several equal-cost optima the solver lands on, so it is a separate
  /// knob; the pinned default engine ignores hints entirely and stays
  /// byte-stable regardless. Hints are invalidated wholesale whenever the
  /// simulator reports a topology change (on_topology_change) — a basis
  /// for a fleet that lost a link or a rack describes the wrong polytope.
  bool reuse_basis = true;
  /// Reuse the previous structurally-identical model across solves: the
  /// trajectory MIP's shape is fully determined by (buckets, candidate
  /// sites, has-current-site), so between replans only the cost vectors
  /// and the k=0 move-row rhs change. On a cache hit those are patched in
  /// place instead of rebuilding — the patched model is bitwise-identical
  /// to a scratch build (same arithmetic, same order), so every engine
  /// including pinned produces byte-identical schedules. The cache is
  /// dropped wholesale by on_topology_change.
  bool incremental_build = true;
  /// Debug cross-check: after every patch, also build from scratch and
  /// require bitwise equality (solver::models_bitwise_equal), throwing
  /// std::logic_error with the first divergence. Expensive — it negates
  /// the build savings — so it is reserved for tests and the
  /// solver.delta_model_identity fuzz property.
  bool verify_incremental_build = false;
  solver::MipOptions mip{};
};

class MipScheduler final : public Scheduler {
 public:
  explicit MipScheduler(MipSchedulerConfig config);

  std::string name() const override { return config_.name; }
  Placement place(const workload::Application& app,
                  const FleetState& state) override;
  std::vector<Move> replan(const FleetState& state) override;
  util::Tick replan_period_ticks() const override {
    return config_.replan_period;
  }

  /// Topology changed under us (link flap, server-failure start/repair):
  /// every persisted basis describes a stale polytope — drop them all and
  /// let the next replan solve cold. The cached models go too: their
  /// structure would still be right, but a from-scratch rebuild on epoch
  /// bumps keeps the invalidation story uniform and cheap to reason about.
  void on_topology_change() override {
    basis_hint_invalidations_ +=
        static_cast<std::int64_t>(basis_hints_.size());
    basis_hints_.clear();
    model_cache_invalidations_ +=
        static_cast<std::int64_t>(model_cache_.size() + econ_cache_.size());
    model_cache_.clear();
    econ_cache_.clear();
  }

  /// Total per-app MIP solves performed (observability / tests).
  std::int64_t solve_count() const noexcept { return solve_count_; }

  /// Cross-replan basis reuse observability: solves whose root was seeded
  /// from a persisted basis / solves that went cold despite a hint being
  /// offered / hints dropped by topology invalidation.
  std::int64_t basis_hint_hits() const noexcept { return basis_hint_hits_; }
  std::int64_t basis_hint_misses() const noexcept {
    return basis_hint_misses_;
  }
  std::int64_t basis_hint_invalidations() const noexcept {
    return basis_hint_invalidations_;
  }

  /// Incremental-build observability: models constructed from scratch /
  /// cache hits patched in place / cached models dropped by topology
  /// invalidation.
  std::int64_t model_build_count() const noexcept { return model_builds_; }
  std::int64_t model_patch_count() const noexcept { return model_patches_; }
  std::int64_t model_cache_invalidations() const noexcept {
    return model_cache_invalidations_;
  }

  /// Cumulative wall time spent constructing or patching solver models,
  /// for replan-latency decomposition (bench_svc reports it alongside
  /// total replan time). Observability only — never serialized.
  double model_build_ms() const override { return model_build_ms_; }

  /// Fallback-ladder activations: a solver failure (node budget exhausted,
  /// infeasible) first shrinks the horizon to half the buckets, then
  /// degrades to greedy behavior (greedy placement for arrivals, keep the
  /// current site on replans). Each rung taken counts once; a solver
  /// failure is never fatal.
  std::int64_t fallback_count() const override { return fallback_count_; }

  /// Serialize the placement-bearing caches: cache_now_, bucketized
  /// capacity/load/traffic ledgers, the subgraph ranking, and the
  /// prev-trajectory incumbents. The forecast cache is NOT serialized —
  /// nothing reads it between refreshes, and the next refresh_capacity
  /// rebuilds it from the graph. Cross-replan basis hints are not
  /// serialized either and save_state refuses to run with reuse_basis on:
  /// hints can steer which equal-cost optimum the solver lands on, so a
  /// restored scheduler could diverge. The service pins reuse_basis (and
  /// warm_start) off for exactly this reason.
  void save_state(util::wire::Writer& w) const override;
  void restore_state(util::wire::Reader& r) override;

  struct Trajectory {
    double cost = 0.0;                   // O1 value of the chosen plan
    /// Econ-stage value of the chosen plan (USD or kg, per config_.objective);
    /// 0 when the econ stage is off. Undiscounted real units: replaying
    /// signal(site, t) * stable_cores * kw_per_core * hours_per_tick / 1000
    /// over the trajectory's modeled ticks reproduces it exactly.
    double objective_cost = 0.0;
    util::Tick start = 0;                // tick of bucket 0
    std::vector<std::size_t> sites;      // site per bucket
  };

  /// Last committed trajectory per live app (observability: the econ
  /// accounting-identity tests replay these against the signal series).
  const std::map<std::int64_t, Trajectory>& trajectories() const noexcept {
    return prev_trajectories_;
  }

 private:
  /// Bucketized conservative capacity forecast for all sites, refreshed
  /// whenever `now` advances.
  void refresh_capacity(const FleetState& state);

  /// Solve the per-app MIP over `sites`. `current_site` engaged for live
  /// apps (moving away from it costs bytes); nullopt for new arrivals.
  /// `previous` (may be null) is the app's last committed trajectory; it is
  /// re-aligned to the new horizon and fed to the solver as a warm-start
  /// incumbent. `hint` (may be null) is the app's persisted cross-replan
  /// basis; solve_mip consumes and refreshes it in place.
  std::optional<Trajectory> solve_app(const FleetState& state,
                                      int stable_cores, double stable_mem_gb,
                                      util::Tick end_tick,
                                      const std::vector<std::size_t>& sites,
                                      std::optional<std::size_t> current_site,
                                      const Trajectory* previous,
                                      solver::MipBasisHint* hint);

  /// Commit a trajectory: add loads and planned-move volume to the ledgers
  /// and derive Moves.
  std::vector<Move> commit(std::int64_t app_id, const Trajectory& trajectory,
                           int stable_cores, double stable_mem_gb,
                           std::optional<std::size_t> current_site);

  int bucket_count(const FleetState& state, util::Tick end_tick) const;

  MipSchedulerConfig config_;
  std::int64_t solve_count_ = 0;
  std::int64_t fallback_count_ = 0;
  std::int64_t basis_hint_hits_ = 0;
  std::int64_t basis_hint_misses_ = 0;
  std::int64_t basis_hint_invalidations_ = 0;
  std::int64_t model_builds_ = 0;
  std::int64_t model_patches_ = 0;
  std::int64_t model_cache_invalidations_ = 0;
  double model_build_ms_ = 0.0;

  // Per-replan caches, keyed to the `now` they were computed at.
  util::Tick cache_now_ = -1;
  /// Materialized forecast series shared by capacity bucketing and clique
  /// ranking; invalidated (re-keyed) whenever `now` changes.
  ForecastCache forecast_cache_;
  std::vector<std::vector<double>> capacity_;   // [site][bucket]
  std::vector<std::vector<double>> load_;       // [site][bucket] cores
  std::vector<double> committed_moves_gb_;      // [bucket]
  /// Econ-stage signal summed over each bucket's ticks, [site][bucket]
  /// (same bucket boundaries as capacity_). Empty when objective == none.
  std::vector<std::vector<double>> objective_sum_;
  std::vector<RankedSubgraph> ranked_;
  /// Last committed trajectory per live app; the next replan feeds it back
  /// to the solver as a warm-start incumbent. Pruned as apps depart.
  std::map<std::int64_t, Trajectory> prev_trajectories_;
  /// Persisted per-app solver bases + duals (cross-replan warm starts for
  /// the revised-family engines). Pruned with prev_trajectories_; cleared
  /// wholesale by on_topology_change.
  std::map<std::int64_t, solver::MipBasisHint> basis_hints_;
  /// Built trajectory models keyed by structural family (buckets,
  /// candidate-set size, has-current-site); hits are patched in place
  /// (costs + k=0 rhs) instead of rebuilt. Pure derived state — never
  /// serialized; the patch makes any cached entry exact before use.
  /// Cleared wholesale by on_topology_change.
  solver::ModelCache model_cache_;
  /// Econ-stage cost vectors keyed by the same structural family as
  /// model_cache_ (buckets, candidate-set size, has-current-site). Hits
  /// are patched in place exactly like the model cache — the patched
  /// vector is bitwise-identical to a scratch build (same arithmetic,
  /// same order) — and verify_incremental_build cross-checks it too.
  /// Pure derived state; cleared wholesale by on_topology_change.
  std::map<std::tuple<int, std::int64_t, int>, std::vector<double>>
      econ_cache_;
};

/// Convenience factories for the paper's four policies (Table 1).
MipSchedulerConfig make_mip_config();
MipSchedulerConfig make_mip24h_config();
MipSchedulerConfig make_mip_peak_config();
/// Econ variants: MIP with a lexicographic electricity-cost / carbon
/// stage driven by `signal` ($/MWh or gCO2/kWh per site and tick). The
/// series must outlive the scheduler.
MipSchedulerConfig make_mip_cost_config(const energy::SiteSeries* signal);
MipSchedulerConfig make_mip_carbon_config(const energy::SiteSeries* signal);

}  // namespace vbatt::core
