// Per-replan forecast materialization (the scheduler hot-path cache).
//
// Cliques overlap heavily: ranking C(n, k) subgraphs reads each site's
// forecast series hundreds of times, and MipScheduler::refresh_capacity
// reads it once more per bucket. This cache calls
// VbGraph::forecast_series exactly once per site per (now, window) and
// hands out contiguous int series (plus prefix sums for O(1) range
// sums). It is keyed by (graph, now, begin, end): a replan at a new
// `now` invalidates it, so entries never outlive the forecasts they
// were derived from.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/core/vb_graph.h"
#include "vbatt/util/thread_pool.h"

namespace vbatt::core {

class ForecastCache {
 public:
  /// Materialize every site's forecast-cores series for ticks
  /// [begin, end) as seen from `now`. No-op when the cache already holds
  /// exactly this key. Site materialization fans out over `pool` when
  /// given (deterministic: each site owns its slot).
  void refresh(const VbGraph& graph, util::Tick now, util::Tick begin,
               util::Tick end, util::ThreadPool* pool = nullptr);

  /// Does the cache currently hold (graph, now, begin, end)?
  bool matches(const VbGraph* graph, util::Tick now, util::Tick begin,
               util::Tick end) const noexcept {
    return graph_ == graph && now_ == now && begin_ == begin && end_ == end;
  }

  bool empty() const noexcept { return graph_ == nullptr; }
  util::Tick now() const noexcept { return now_; }
  util::Tick begin() const noexcept { return begin_; }
  util::Tick end() const noexcept { return end_; }
  std::size_t n_sites() const noexcept { return series_.size(); }

  /// Site s's forecast cores for ticks [begin, end): element i is
  /// forecast_cores(s, begin + i, now), bit-identical to the per-tick API.
  const std::vector<int>& series(std::size_t s) const {
    return series_.at(s);
  }

  /// Sum of series(s) over ticks [a, b) (absolute ticks inside
  /// [begin, end)), via prefix sums; exact integer arithmetic.
  std::int64_t range_sum(std::size_t s, util::Tick a, util::Tick b) const;

 private:
  const VbGraph* graph_ = nullptr;
  util::Tick now_ = -1;
  util::Tick begin_ = 0;
  util::Tick end_ = 0;
  std::vector<std::vector<int>> series_;
  /// prefix_[s][i] = sum of the first i entries of series_[s].
  std::vector<std::vector<std::int64_t>> prefix_;
};

}  // namespace vbatt::core
