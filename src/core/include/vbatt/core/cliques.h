// Subgraph identification (§3.1 step 1).
//
// Find all k-cliques of the latency graph (k = 2..5 in the paper) and rank
// them by combined coefficient of variation of predicted power — low-cov
// subgraphs have complementary sites and give the scheduler headroom to
// absorb dips without migrating.
#pragma once

#include <cstddef>
#include <vector>

#include "vbatt/core/forecast_cache.h"
#include "vbatt/core/vb_graph.h"
#include "vbatt/util/thread_pool.h"

namespace vbatt::core {

/// All cliques of exactly `k` vertices, each sorted ascending; the list is
/// in lexicographic order (deterministic).
std::vector<std::vector<std::size_t>> find_k_cliques(
    const net::LatencyGraph& graph, int k);

struct RankedSubgraph {
  std::vector<std::size_t> sites;
  /// Coefficient of variation of the subgraph's combined forecast power
  /// over the ranking window (lower = more complementary).
  double cov = 0.0;
  /// Mean combined cores over the window (used as a capacity tiebreak).
  double mean_cores = 0.0;
};

/// Rank all k-cliques by combined *forecast* cov over [now, now + window).
/// Sorted ascending by cov. Materializes a local ForecastCache and fans
/// clique scoring across util::ThreadPool::shared() (serial when
/// VBATT_THREADS=1); results are bit-identical either way.
std::vector<RankedSubgraph> rank_subgraphs(const VbGraph& graph, int k,
                                           util::Tick now,
                                           util::Tick window_ticks);

/// Same ranking against a caller-owned cache (must cover
/// [now, min(n_ticks, now + window)) as seen from `now`) and an explicit
/// pool (nullptr = serial). This is the replan path: MipScheduler shares
/// one cache between capacity refresh and ranking. Clique scoring is
/// embarrassingly parallel — each clique owns one output slot — so the
/// pool changes wall-clock time only, never a bit of the result.
std::vector<RankedSubgraph> rank_subgraphs(const VbGraph& graph, int k,
                                           util::Tick now,
                                           util::Tick window_ticks,
                                           const ForecastCache& cache,
                                           util::ThreadPool* pool);

}  // namespace vbatt::core
