// Scheduler interface and the fleet state it observes.
//
// A scheduler decides (a) where a newly arrived application goes and which
// sites it may ever occupy (its subgraph), and (b) at replanning points,
// which proactive migrations to schedule. The simulator owns the state and
// executes both kinds of decision, charging migration traffic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vbatt/core/vb_graph.h"
#include "vbatt/util/time.h"
#include "vbatt/util/wire.h"
#include "vbatt/workload/app.h"

namespace vbatt::core {

/// A live application as tracked by the simulator.
struct LiveApp {
  workload::Application app;
  util::Tick end_tick = 0;
  std::size_t site = 0;
  /// Sites the app may occupy (its subgraph; pairwise RTT under threshold).
  std::vector<std::size_t> allowed;
  /// Degradable VMs currently running (the rest are paused).
  int active_degradable = 0;
};

/// Read-only view of the fleet handed to schedulers.
struct FleetState {
  const VbGraph* graph = nullptr;
  util::Tick now = 0;
  std::map<std::int64_t, LiveApp> apps;
  /// Per-site resident stable cores and currently active degradable cores.
  std::vector<int> stable_cores;
  std::vector<int> degradable_cores;

  /// Optional per-site available-cores cache for `now`, installed by
  /// engines that already computed the tick's power budget; holds exactly
  /// graph->available_cores(s, now) for every site, so reads through it
  /// are bit-identical to the uncached path. nullptr = ask the graph.
  const std::vector<int>* avail_cache = nullptr;

  int available(std::size_t s) const {
    return avail_cache != nullptr ? (*avail_cache)[s]
                                  : graph->available_cores(s, now);
  }
  int headroom(std::size_t s) const {
    return available(s) - stable_cores.at(s) - degradable_cores.at(s);
  }
};

/// A proactive migration order: move `app_id` to `to_site` at `at_tick`.
struct Move {
  std::int64_t app_id = 0;
  std::size_t to_site = 0;
  util::Tick at_tick = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;

  struct Placement {
    std::size_t site = 0;
    std::vector<std::size_t> allowed;
    /// Future proactive moves already decided for this app (may be empty).
    std::vector<Move> scheduled_moves;
  };
  /// Place a newly arrived application.
  virtual Placement place(const workload::Application& app,
                          const FleetState& state) = 0;

  /// Invoked every `replan_period_ticks()`. The returned set is the
  /// *complete* new proactive-move schedule: the simulator drops all
  /// previously pending moves and adopts these. Default: purely reactive.
  virtual std::vector<Move> replan(const FleetState& state) {
    (void)state;
    return {};
  }
  /// 0 = never replan.
  virtual util::Tick replan_period_ticks() const { return 0; }

  /// The simulator observed a topology change (FaultHooks::topology_epoch
  /// advanced): a link flap or a server-failure start/repair. Schedulers
  /// carrying warm-start state across replans (bases, duals) must drop it
  /// here — it describes a fleet that no longer exists. Default: stateless
  /// schedulers ignore it.
  virtual void on_topology_change() {}

  /// How many times this scheduler degraded to a cheaper decision rung
  /// (e.g. MIP solver timeout -> shrunken horizon -> greedy). Schedulers
  /// without a fallback ladder report 0.
  virtual std::int64_t fallback_count() const { return 0; }

  /// Cumulative wall-clock milliseconds this scheduler spent constructing
  /// (or incrementally patching) solver models, as opposed to solving
  /// them. Lets replan latency decompose into build vs solve the same way
  /// bench_solver reports it. Schedulers without a model stage report 0.
  virtual double model_build_ms() const { return 0.0; }

  /// Serialize decision-bearing internal state (SimStepper save/restore):
  /// everything a placement or replan between now and the next cache
  /// refresh reads. Stateless schedulers write nothing. Observability
  /// counters are deliberately excluded — the stepper accounts for those
  /// separately (fallback_base_).
  virtual void save_state(util::wire::Writer& w) const { (void)w; }
  /// Inverse of save_state(), on a freshly constructed scheduler with the
  /// same config.
  virtual void restore_state(util::wire::Reader& r) { (void)r; }
};

/// The paper's baseline: "always assigns VMs to the site with the most
/// available power"; never migrates proactively. Its subgraph is the
/// chosen site plus its latency neighbors (forced migrations stay inside).
class GreedyScheduler final : public Scheduler {
 public:
  std::string name() const override { return "Greedy"; }
  Placement place(const workload::Application& app,
                  const FleetState& state) override;
};

}  // namespace vbatt::core
