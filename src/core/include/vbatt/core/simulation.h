// Multi-site trace-driven simulation (drives Table 1 / Figure 7).
//
// Replays an application arrival trace against a VB fleet under a chosen
// scheduler. Each tick: departures, replanning (at the scheduler's
// cadence), arrivals, execution of scheduled proactive moves, and per-site
// capacity enforcement — degradable VMs pause first, then whole
// applications are force-migrated within their allowed subgraph, and any
// remainder is counted as displaced (availability loss). All migration
// traffic (proactive and forced) is charged as the moved stable memory.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "vbatt/core/fault_hooks.h"
#include "vbatt/core/scheduler.h"
#include "vbatt/energy/signal.h"
#include "vbatt/net/ledger.h"
#include "vbatt/workload/batch.h"

namespace vbatt::core {

/// Power draw of the compute itself (scheduling goal iii of §3.1:
/// "minimizes energy usage"). A site powers ceil(active/cores_per_server)
/// servers; each powered server draws idle power plus a per-active-core
/// increment.
struct SitePowerModel {
  int cores_per_server = 40;
  double server_idle_watts = 150.0;
  double watts_per_active_core = 8.0;
};

struct SimResult {
  /// Per-tick migrated volume across the fleet, GB (each byte counted once).
  std::vector<double> moved_gb;
  net::MigrationLedger ledger;

  std::int64_t apps_placed = 0;
  std::int64_t planned_migrations = 0;   // scheduler-ordered app moves
  std::int64_t forced_migrations = 0;    // reactive app moves on power dips
  /// Core-ticks of stable demand that had no powered home (availability
  /// loss — the quantity the paper's schedulers implicitly protect).
  std::int64_t displaced_stable_core_ticks = 0;
  /// VM-ticks of degradable capacity paused to absorb power dips.
  std::int64_t paused_degradable_vm_ticks = 0;
  /// VM-ticks of degradable capacity actually delivered — the harvest/spot
  /// capacity the paper wants variable energy to back (§2.3).
  std::int64_t degradable_active_vm_ticks = 0;
  /// Compute energy consumed across the fleet, MWh (goal iii of §3.1),
  /// total and per tick (the per-tick series feeds carbon accounting).
  double energy_mwh = 0.0;
  std::vector<double> energy_mwh_per_tick;
  /// Core-ticks of displaced stable demand attributed per application
  /// (feeds the per-app availability report).
  std::map<std::int64_t, std::int64_t> displaced_by_app;

  // Fault / degradation accounting. All stay zero without fault hooks
  // (except the displaced series, which mirrors displaced_stable_core_ticks
  // per tick and is filled unconditionally).
  /// Site-ticks spent under an active fault (blackout, brownout, outage).
  std::int64_t faulted_site_ticks = 0;
  /// Proactive moves re-queued with backoff after a failed attempt.
  std::int64_t retried_moves = 0;
  /// Proactive moves dropped after exhausting MoveRetryPolicy::max_attempts.
  std::int64_t abandoned_moves = 0;
  /// Times the scheduler fell back to a cheaper rung (see
  /// Scheduler::fallback_count); copied from the scheduler at sim end.
  std::int64_t fallback_activations = 0;
  /// Ticks during which at least one stable core was displaced — the
  /// "stable VM downtime" a chaos run tries to minimize.
  std::int64_t stable_vm_downtime_ticks = 0;
  /// Fleet-wide displaced stable cores per tick (p99 recovery analysis).
  std::vector<std::int64_t> displaced_stable_cores_per_tick;
  /// Ticks fully simulated. Equals the horizon length on a normal run;
  /// smaller when a cooperative shutdown (util::shutdown_requested) stopped
  /// the loop early — per-tick series past this index are untouched zeros.
  std::int64_t completed_ticks = 0;

  // Opt-in scenario extensions (ScenarioExtensions). All stay zero on a
  // default run.
  /// Batch overlay counters (deadline jobs + harvest fillers).
  workload::BatchStats batch;
  /// Metered energy priced with the attached per-site electricity price
  /// series, USD, total and per tick.
  double cost_usd = 0.0;
  std::vector<double> cost_usd_per_tick;
  /// Metered energy scored with the attached per-site grid carbon
  /// intensity series, kgCO2 (gCO2/kWh × MWh = kg), total and per tick.
  double carbon_kg = 0.0;
  std::vector<double> carbon_kg_per_tick;

  SimResult(std::size_t n_sites, std::size_t n_ticks)
      : moved_gb(n_ticks, 0.0),
        ledger{n_sites, n_ticks},
        energy_mwh_per_tick(n_ticks, 0.0),
        displaced_stable_cores_per_tick(n_ticks, 0),
        cost_usd_per_tick(n_ticks, 0.0),
        carbon_kg_per_tick(n_ticks, 0.0) {}
};

/// Opt-in scenario extensions, threaded through every engine behind null
/// defaults: a default run takes zero new branches and stays byte-identical
/// to a build without this struct.
struct ScenarioExtensions {
  /// Batch overlay workload (deadline jobs + suspendable harvest tasks),
  /// gang-scheduled each tick onto the cores the service workload leaves
  /// free. Overlay cores soak surplus (otherwise-curtailed) renewable
  /// capacity and are deliberately NOT added to energy_mwh — the service
  /// energy series stays comparable across scenarios; use
  /// BatchStats::overlay_active_core_ticks to derive overlay energy.
  const workload::BatchWorkload* batch = nullptr;
  /// Electricity price, $/MWh per (site, tick).
  const energy::SiteSeries* price = nullptr;
  /// Grid carbon intensity, gCO2/kWh per (site, tick).
  const energy::SiteSeries* carbon = nullptr;

  bool any() const noexcept {
    return batch != nullptr || price != nullptr || carbon != nullptr;
  }
};

/// Run the full span of `graph` with `apps` (sorted by arrival tick).
/// `faults` (optional) installs fault hooks plus the retry policy; with
/// `faults == nullptr` or `faults->hooks == nullptr` the run is
/// byte-identical to one without the parameter.
SimResult run_simulation(const VbGraph& graph,
                         const std::vector<workload::Application>& apps,
                         Scheduler& scheduler,
                         const SitePowerModel& power_model = {},
                         const FaultConfig* faults = nullptr,
                         const ScenarioExtensions* ext = nullptr);

}  // namespace vbatt::core
