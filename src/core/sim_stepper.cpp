#include "vbatt/core/sim_stepper.h"

#include <algorithm>
#include <stdexcept>

namespace vbatt::core {

namespace {

/// Move an app between sites in the state ledgers and the per-site index.
void relocate(FleetState& state, std::vector<std::set<std::int64_t>>& by_site,
              std::int64_t app_id, LiveApp& app, std::size_t to) {
  state.stable_cores[app.site] -= app.app.stable_cores();
  state.degradable_cores[app.site] -=
      app.active_degradable * app.app.shape.cores;
  by_site[app.site].erase(app_id);
  app.site = to;
  state.stable_cores[to] += app.app.stable_cores();
  state.degradable_cores[to] += app.active_degradable * app.app.shape.cores;
  by_site[to].insert(app_id);
}

}  // namespace

SimStepper::SimStepper(const VbGraph& graph, Scheduler& scheduler,
                       const SitePowerModel& power_model,
                       const FaultConfig* faults,
                       const ScenarioExtensions* ext)
    : graph_{graph},
      scheduler_{scheduler},
      power_model_{power_model},
      hooks_{faults ? faults->hooks : nullptr},
      retry_{faults ? faults->retry : MoveRetryPolicy{}},
      n_sites_{graph.n_sites()},
      n_ticks_{graph.n_ticks()},
      replan_period_{scheduler.replan_period_ticks()},
      result_{graph.n_sites(), graph.n_ticks()},
      site_apps_(graph.n_sites()) {
  if (hooks_) avail_cache_.assign(n_sites_, 0);
  state_.graph = &graph;
  state_.stable_cores.assign(n_sites_, 0);
  state_.degradable_cores.assign(n_sites_, 0);
  topo_epoch_ = hooks_ ? hooks_->topology_epoch() : 0;
  if (ext != nullptr) {
    if (ext->batch != nullptr && !ext->batch->empty()) {
      overlay_ = workload::BatchOverlay{*ext->batch};
      has_overlay_ = true;
    }
    price_ = ext->price;
    carbon_ = ext->carbon;
  }
}

void SimStepper::submit_batch_job(const workload::DeadlineJob& job) {
  overlay_.submit(job);
  has_overlay_ = true;
}

void SimStepper::submit_harvest_task(const workload::HarvestTask& task) {
  overlay_.submit(task);
  has_overlay_ = true;
}

void SimStepper::begin_tick(util::Tick t) {
  now_ = t;
  state_.now = t;
  // Fault bookkeeping for this tick (link up/down transitions apply to the
  // graph inside begin_tick). A topology-epoch advance tells the scheduler
  // to drop warm-start state keyed to the old fleet.
  if (hooks_) {
    hooks_->begin_tick(t);
    if (const std::uint64_t epoch = hooks_->topology_epoch();
        epoch != topo_epoch_) {
      topo_epoch_ = epoch;
      scheduler_.on_topology_change();
    }
  }
}

bool SimStepper::move_blocked(const LiveApp& app, const Move& move) const {
  return hooks_->site_down(move.to_site, now_) ||
         !graph_.latency().connected(app.site, move.to_site);
}

void SimStepper::execute_move(std::int64_t app_id, LiveApp& app,
                              const Move& move) {
  const double gb = app.app.stable_memory_gb();
  result_.ledger.record_out(app.site, now_, gb);
  result_.ledger.record_in(move.to_site, now_, gb);
  result_.moved_gb[static_cast<std::size_t>(now_)] += gb;
  relocate(state_, site_apps_, app_id, app, move.to_site);
  ++result_.planned_migrations;
}

void SimStepper::defer_move(const Move& move, int prior_attempts) {
  const int attempts = prior_attempts + 1;
  if (attempts >= retry_.max_attempts) {
    ++result_.abandoned_moves;
    return;
  }
  util::Tick backoff = retry_.base_backoff_ticks;
  for (int a = 1; a < attempts && backoff < retry_.max_backoff_ticks; ++a) {
    backoff *= 2;
  }
  backoff = std::min(backoff, retry_.max_backoff_ticks);
  Move again = move;
  again.at_tick = now_ + backoff;
  retry_queue_[again.at_tick].push_back({again, attempts});
  ++result_.retried_moves;
}

void SimStepper::process_departures() {
  while (!departures_.empty() && departures_.begin()->first <= now_) {
    const std::int64_t app_id = departures_.begin()->second;
    departures_.erase(departures_.begin());
    depart_now(app_id);
  }
}

void SimStepper::depart_now(std::int64_t app_id) {
  const auto it = state_.apps.find(app_id);
  if (it == state_.apps.end()) return;  // defensive: apps depart once
  LiveApp& app = it->second;
  state_.stable_cores[app.site] -= app.app.stable_cores();
  state_.degradable_cores[app.site] -=
      app.active_degradable * app.app.shape.cores;
  site_apps_[app.site].erase(app_id);
  pending_.erase(app_id);
  state_.apps.erase(it);
}

void SimStepper::adopt_replan(std::vector<Move> moves) {
  pending_.clear();
  due_moves_.clear();
  retry_queue_.clear();  // a replan supersedes every outstanding move
  for (Move& move : moves) {
    due_moves_[move.at_tick].insert(move.app_id);
    pending_[move.app_id].push_back(move);
  }
}

void SimStepper::maybe_replan() {
  if (replan_period_ > 0 && now_ > 0 && now_ % replan_period_ == 0) {
    adopt_replan(scheduler_.replan(state_));
  }
}

void SimStepper::force_replan() { adopt_replan(scheduler_.replan(state_)); }

void SimStepper::arrive(const workload::Application& app) {
  const Scheduler::Placement placement = scheduler_.place(app, state_);
  LiveApp live;
  live.app = app;
  live.end_tick = app.lifetime_ticks < 0 ? -1 : now_ + app.lifetime_ticks;
  live.site = placement.site;
  live.allowed = placement.allowed;
  live.active_degradable = app.n_degradable;
  state_.stable_cores[live.site] += app.stable_cores();
  state_.degradable_cores[live.site] +=
      live.active_degradable * app.shape.cores;
  site_apps_[live.site].insert(app.app_id);
  if (live.end_tick >= 0) departures_.emplace(live.end_tick, app.app_id);
  state_.apps.emplace(app.app_id, std::move(live));
  if (!placement.scheduled_moves.empty()) {
    for (const Move& move : placement.scheduled_moves) {
      due_moves_[move.at_tick].insert(app.app_id);
    }
    pending_[app.app_id] = placement.scheduled_moves;
  }
  ++result_.apps_placed;
}

void SimStepper::execute_due_moves() {
  const util::Tick t = now_;
  // Execute due proactive moves (only apps with a move due now).
  if (const auto due = due_moves_.find(t); due != due_moves_.end()) {
    for (const std::int64_t app_id : due->second) {
      const auto pend = pending_.find(app_id);
      if (pend == pending_.end()) continue;
      const auto live_it = state_.apps.find(app_id);
      if (live_it == state_.apps.end()) continue;
      LiveApp& app = live_it->second;
      for (const Move& move : pend->second) {
        if (move.at_tick > t) break;  // moves are emitted in time order
        if (move.at_tick == t && move.to_site != app.site) {
          if (hooks_ && move_blocked(app, move)) {
            defer_move(move, 0);
          } else {
            execute_move(app_id, app, move);
          }
        }
      }
    }
    due_moves_.erase(due);
  }

  // Retry moves whose backoff expires now (fault runs only).
  if (hooks_) {
    if (const auto due = retry_queue_.find(t); due != retry_queue_.end()) {
      std::vector<PendingRetry> batch = std::move(due->second);
      retry_queue_.erase(due);
      for (const PendingRetry& pr : batch) {
        const auto live_it = state_.apps.find(pr.move.app_id);
        if (live_it == state_.apps.end()) continue;  // departed meanwhile
        LiveApp& app = live_it->second;
        if (pr.move.to_site == app.site) continue;  // already there
        if (move_blocked(app, pr.move)) {
          defer_move(pr.move, pr.attempts);
        } else {
          execute_move(pr.move.app_id, app, pr.move);
        }
      }
    }
  }
}

void SimStepper::enforce_and_meter() {
  const util::Tick t = now_;
  const auto i = static_cast<std::size_t>(t);

  // Capacity enforcement, site by site (resident apps only, via the
  // per-site index — no fleet-wide app sweep per site). A blacked-out site
  // has 0 available cores in the (baked) graph, so the ordering below is
  // exactly the emergency path: pause every degradable VM first (a), then
  // force-migrate stable apps out (b), and count whatever cannot leave as
  // displaced.
  std::int64_t displaced_this_tick = 0;
  for (std::size_t s = 0; s < n_sites_; ++s) {
    const int avail = graph_.available_cores(s, t);
    if (hooks_) avail_cache_[s] = avail;

    // a. Degradable VMs absorb the dip first: pause until the site's
    //    stable + active-degradable demand fits (or all are paused).
    int stable = state_.stable_cores[s];
    int budget = avail - stable;  // cores left for degradable
    for (const std::int64_t id : site_apps_[s]) {
      LiveApp& app = state_.apps.at(id);
      if (app.app.n_degradable == 0) continue;
      const int want = app.app.n_degradable;
      const int can =
          std::clamp(budget / std::max(1, app.app.shape.cores), 0, want);
      if (can != app.active_degradable) {
        state_.degradable_cores[s] +=
            (can - app.active_degradable) * app.app.shape.cores;
        app.active_degradable = can;
      }
      budget -= can * app.app.shape.cores;
      result_.paused_degradable_vm_ticks += want - can;
      result_.degradable_active_vm_ticks += can;
    }

    // b. Forced migration of whole apps while stable demand exceeds
    //    powered capacity. Snapshot the residents: relocation mutates the
    //    per-site index mid-iteration.
    if (stable > avail) {
      const std::vector<std::int64_t> residents(site_apps_[s].begin(),
                                                site_apps_[s].end());
      for (const std::int64_t id : residents) {
        if (stable <= avail) break;
        LiveApp& app = state_.apps.at(id);
        if (app.site != s) continue;
        // Best target: allowed site with the most headroom that fits.
        std::size_t target = s;
        int best_headroom = 0;
        for (const std::size_t cand : app.allowed) {
          if (cand == s) continue;
          const int headroom = graph_.available_cores(cand, t) -
                               state_.stable_cores[cand] -
                               state_.degradable_cores[cand];
          if (headroom >= app.app.stable_cores() &&
              headroom > best_headroom) {
            target = cand;
            best_headroom = headroom;
          }
        }
        if (target == s) continue;  // nowhere to go
        const double gb = app.app.stable_memory_gb();
        result_.ledger.record_out(s, t, gb);
        result_.ledger.record_in(target, t, gb);
        result_.moved_gb[i] += gb;
        relocate(state_, site_apps_, id, app, target);
        ++result_.forced_migrations;
        stable = state_.stable_cores[s];
      }
      if (stable > avail) {
        result_.displaced_stable_core_ticks += stable - avail;
        displaced_this_tick += stable - avail;
        // Attribute the shortfall to resident apps (ascending id) so the
        // availability report can rank per-app impact.
        int deficit = stable - avail;
        for (const std::int64_t id : site_apps_[s]) {
          if (deficit <= 0) break;
          const LiveApp& app = state_.apps.at(id);
          const int hit = std::min(deficit, app.app.stable_cores());
          result_.displaced_by_app[id] += hit;
          deficit -= hit;
        }
      }
    }
  }

  // Batch overlay: gang-schedule deadline jobs and harvest fillers onto
  // whatever the service workload left free this tick. Strictly opt-in —
  // a run without an overlay never enters this branch.
  if (has_overlay_) {
    overlay_free_.assign(n_sites_, 0);
    for (std::size_t s = 0; s < n_sites_; ++s) {
      const int free = graph_.available_cores(s, t) -
                       state_.stable_cores[s] - state_.degradable_cores[s];
      overlay_free_[s] = std::max(0, free);
    }
    overlay_.step(t, overlay_free_);
  }

  // Compute energy accounting (goal iii): powered servers draw idle power,
  // active cores draw incremental power.
  const double hours_per_tick = graph_.axis().minutes_per_tick() / 60.0;
  for (std::size_t s = 0; s < n_sites_; ++s) {
    const int active = state_.stable_cores[s] + state_.degradable_cores[s];
    if (active <= 0) continue;
    const int servers = (active + power_model_.cores_per_server - 1) /
                        power_model_.cores_per_server;
    const double watts = servers * power_model_.server_idle_watts +
                         active * power_model_.watts_per_active_core;
    const double mwh = watts * hours_per_tick / 1e6;
    result_.energy_mwh += mwh;
    result_.energy_mwh_per_tick[i] += mwh;
    if (price_ != nullptr) {
      const double usd =
          price_->value(s, static_cast<double>(t)) * mwh;
      result_.cost_usd += usd;
      result_.cost_usd_per_tick[i] += usd;
    }
    if (carbon_ != nullptr) {
      // gCO2/kWh × MWh = kgCO2.
      const double kg =
          carbon_->value(s, static_cast<double>(t)) * mwh;
      result_.carbon_kg += kg;
      result_.carbon_kg_per_tick[i] += kg;
    }
  }

  // Fault accounting and end-of-tick observation.
  result_.displaced_stable_cores_per_tick[i] = displaced_this_tick;
  if (hooks_) {
    if (displaced_this_tick > 0) ++result_.stable_vm_downtime_ticks;
    for (std::size_t s = 0; s < n_sites_; ++s) {
      if (hooks_->site_degraded(s, t)) ++result_.faulted_site_ticks;
    }
    TickSnapshot snap;
    snap.t = t;
    snap.available = &avail_cache_;
    snap.stable_cores = &state_.stable_cores;
    snap.degradable_cores = &state_.degradable_cores;
    snap.displaced_stable_cores = displaced_this_tick;
    hooks_->on_tick_end(snap);
  }
}

std::int64_t SimStepper::fallback_activations() const {
  return fallback_base_ + scheduler_.fallback_count();
}

SimResult SimStepper::take_result() {
  result_.fallback_activations = fallback_activations();
  result_.completed_ticks = now_ + 1;
  if (has_overlay_) {
    overlay_.finalize();
    result_.batch = overlay_.stats();
  }
  return std::move(result_);
}

// --- serialization --------------------------------------------------------
//
// Versioned flat encoding via util::wire. Everything result-bearing is
// written; rebuildable indices (site_apps_, avail_cache_) are not.

namespace {

// Version 2 appends the batch-overlay state and the econ ledgers.
constexpr std::uint32_t kStepperFormatVersion = 2;

void save_move(util::wire::Writer& w, const Move& m) {
  w.i64(m.app_id);
  w.u64(m.to_site);
  w.i64(m.at_tick);
}

Move load_move(util::wire::Reader& r) {
  Move m;
  m.app_id = r.i64();
  m.to_site = static_cast<std::size_t>(r.u64());
  m.at_tick = r.i64();
  return m;
}

void save_app(util::wire::Writer& w, const LiveApp& a) {
  w.i64(a.app.app_id);
  w.i64(a.app.arrival);
  w.i64(a.app.lifetime_ticks);
  w.i64(a.app.shape.cores);
  w.f64(a.app.shape.memory_gb);
  w.i64(a.app.n_stable);
  w.i64(a.app.n_degradable);
  w.i64(a.end_tick);
  w.u64(a.site);
  w.u64(a.allowed.size());
  for (const std::size_t s : a.allowed) w.u64(s);
  w.i64(a.active_degradable);
}

LiveApp load_app(util::wire::Reader& r) {
  LiveApp a;
  a.app.app_id = r.i64();
  a.app.arrival = r.i64();
  a.app.lifetime_ticks = r.i64();
  a.app.shape.cores = static_cast<int>(r.i64());
  a.app.shape.memory_gb = r.f64();
  a.app.n_stable = static_cast<int>(r.i64());
  a.app.n_degradable = static_cast<int>(r.i64());
  a.end_tick = r.i64();
  a.site = static_cast<std::size_t>(r.u64());
  const std::uint64_t n = r.u64();
  a.allowed.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    a.allowed.push_back(static_cast<std::size_t>(r.u64()));
  }
  a.active_degradable = static_cast<int>(r.i64());
  return a;
}

}  // namespace

void SimStepper::save(util::wire::Writer& w) const {
  w.u32(kStepperFormatVersion);
  w.i64(now_);
  w.u64(topo_epoch_);
  w.i64(fallback_base_ + scheduler_.fallback_count());

  w.u64(state_.apps.size());
  for (const auto& [id, app] : state_.apps) save_app(w, app);
  w.vec_int(state_.stable_cores);
  w.vec_int(state_.degradable_cores);

  w.u64(pending_.size());
  for (const auto& [id, moves] : pending_) {
    w.i64(id);
    w.u64(moves.size());
    for (const Move& m : moves) save_move(w, m);
  }
  w.u64(due_moves_.size());
  for (const auto& [tick, ids] : due_moves_) {
    w.i64(tick);
    w.u64(ids.size());
    for (const std::int64_t id : ids) w.i64(id);
  }
  w.u64(retry_queue_.size());
  for (const auto& [tick, batch] : retry_queue_) {
    w.i64(tick);
    w.u64(batch.size());
    for (const PendingRetry& pr : batch) {
      save_move(w, pr.move);
      w.i64(pr.attempts);
    }
  }
  w.u64(departures_.size());
  for (const auto& [tick, id] : departures_) {
    w.i64(tick);
    w.i64(id);
  }

  // Result accumulators.
  w.vec_f64(result_.moved_gb);
  for (std::size_t s = 0; s < n_sites_; ++s) {
    w.vec_f64(result_.ledger.out_series(s));
    w.vec_f64(result_.ledger.in_series(s));
  }
  w.i64(result_.apps_placed);
  w.i64(result_.planned_migrations);
  w.i64(result_.forced_migrations);
  w.i64(result_.displaced_stable_core_ticks);
  w.i64(result_.paused_degradable_vm_ticks);
  w.i64(result_.degradable_active_vm_ticks);
  w.f64(result_.energy_mwh);
  w.vec_f64(result_.energy_mwh_per_tick);
  w.u64(result_.displaced_by_app.size());
  for (const auto& [id, v] : result_.displaced_by_app) {
    w.i64(id);
    w.i64(v);
  }
  w.i64(result_.faulted_site_ticks);
  w.i64(result_.retried_moves);
  w.i64(result_.abandoned_moves);
  w.i64(result_.stable_vm_downtime_ticks);
  w.vec_i64(result_.displaced_stable_cores_per_tick);

  // Scenario extensions (v2): the overlay carries its own definitions, so
  // a restore reproduces it even on a stepper constructed without one.
  w.u8(has_overlay_ ? 1 : 0);
  if (has_overlay_) overlay_.save_state(w);
  w.f64(result_.cost_usd);
  w.vec_f64(result_.cost_usd_per_tick);
  w.f64(result_.carbon_kg);
  w.vec_f64(result_.carbon_kg_per_tick);

  // The scheduler's decision-bearing caches ride along: placements between
  // replans read state (capacity/load ledgers, subgraph ranking) that a
  // fresh scheduler would not rebuild until its next refresh.
  scheduler_.save_state(w);
}

void SimStepper::restore(util::wire::Reader& r) {
  if (const std::uint32_t version = r.u32();
      version != kStepperFormatVersion) {
    throw std::runtime_error{"SimStepper::restore: unsupported version " +
                             std::to_string(version)};
  }
  now_ = r.i64();
  state_.now = now_;
  topo_epoch_ = r.u64();
  fallback_base_ = r.i64();

  state_.apps.clear();
  for (auto& site : site_apps_) site.clear();
  const std::uint64_t n_apps = r.u64();
  for (std::uint64_t i = 0; i < n_apps; ++i) {
    LiveApp app = load_app(r);
    const std::int64_t id = app.app.app_id;
    site_apps_[app.site].insert(id);
    state_.apps.emplace(id, std::move(app));
  }
  state_.stable_cores = r.vec_int();
  state_.degradable_cores = r.vec_int();
  if (state_.stable_cores.size() != n_sites_ ||
      state_.degradable_cores.size() != n_sites_) {
    throw std::runtime_error{"SimStepper::restore: site count mismatch"};
  }

  pending_.clear();
  const std::uint64_t n_pending = r.u64();
  for (std::uint64_t i = 0; i < n_pending; ++i) {
    const std::int64_t id = r.i64();
    const std::uint64_t n_moves = r.u64();
    std::vector<Move>& moves = pending_[id];
    moves.reserve(n_moves);
    for (std::uint64_t k = 0; k < n_moves; ++k) {
      moves.push_back(load_move(r));
    }
  }
  due_moves_.clear();
  const std::uint64_t n_due = r.u64();
  for (std::uint64_t i = 0; i < n_due; ++i) {
    const util::Tick tick = r.i64();
    const std::uint64_t n_ids = r.u64();
    std::set<std::int64_t>& ids = due_moves_[tick];
    for (std::uint64_t k = 0; k < n_ids; ++k) ids.insert(r.i64());
  }
  retry_queue_.clear();
  const std::uint64_t n_retry = r.u64();
  for (std::uint64_t i = 0; i < n_retry; ++i) {
    const util::Tick tick = r.i64();
    const std::uint64_t n_batch = r.u64();
    std::vector<PendingRetry>& batch = retry_queue_[tick];
    batch.reserve(n_batch);
    for (std::uint64_t k = 0; k < n_batch; ++k) {
      PendingRetry pr;
      pr.move = load_move(r);
      pr.attempts = static_cast<int>(r.i64());
      batch.push_back(pr);
    }
  }
  departures_.clear();
  const std::uint64_t n_dep = r.u64();
  for (std::uint64_t i = 0; i < n_dep; ++i) {
    const util::Tick tick = r.i64();
    const std::int64_t id = r.i64();
    departures_.emplace(tick, id);
  }

  result_ = SimResult{n_sites_, n_ticks_};
  result_.moved_gb = r.vec_f64();
  for (std::size_t s = 0; s < n_sites_; ++s) {
    const std::vector<double> out = r.vec_f64();
    const std::vector<double> in = r.vec_f64();
    for (std::size_t t = 0; t < out.size(); ++t) {
      const auto tick = static_cast<util::Tick>(t);
      if (out[t] != 0.0) result_.ledger.record_out(s, tick, out[t]);
      if (in[t] != 0.0) result_.ledger.record_in(s, tick, in[t]);
    }
  }
  result_.apps_placed = r.i64();
  result_.planned_migrations = r.i64();
  result_.forced_migrations = r.i64();
  result_.displaced_stable_core_ticks = r.i64();
  result_.paused_degradable_vm_ticks = r.i64();
  result_.degradable_active_vm_ticks = r.i64();
  result_.energy_mwh = r.f64();
  result_.energy_mwh_per_tick = r.vec_f64();
  result_.displaced_by_app.clear();
  const std::uint64_t n_disp = r.u64();
  for (std::uint64_t i = 0; i < n_disp; ++i) {
    const std::int64_t id = r.i64();
    result_.displaced_by_app[id] = r.i64();
  }
  result_.faulted_site_ticks = r.i64();
  result_.retried_moves = r.i64();
  result_.abandoned_moves = r.i64();
  result_.stable_vm_downtime_ticks = r.i64();
  result_.displaced_stable_cores_per_tick = r.vec_i64();
  has_overlay_ = r.u8() != 0;
  if (has_overlay_) {
    overlay_.restore_state(r);
  } else {
    overlay_ = workload::BatchOverlay{};
  }
  result_.cost_usd = r.f64();
  result_.cost_usd_per_tick = r.vec_f64();
  result_.carbon_kg = r.f64();
  result_.carbon_kg_per_tick = r.vec_f64();
  if (result_.moved_gb.size() != n_ticks_ ||
      result_.energy_mwh_per_tick.size() != n_ticks_) {
    throw std::runtime_error{"SimStepper::restore: tick count mismatch"};
  }
  if (hooks_) avail_cache_.assign(n_sites_, 0);
  scheduler_.restore_state(r);
}

}  // namespace vbatt::core
