#include "vbatt/core/forecast_cache.h"

#include <stdexcept>

namespace vbatt::core {

void ForecastCache::refresh(const VbGraph& graph, util::Tick now,
                            util::Tick begin, util::Tick end,
                            util::ThreadPool* pool) {
  if (matches(&graph, now, begin, end)) return;
  graph_ = &graph;
  now_ = now;
  begin_ = begin;
  end_ = end;

  const std::size_t n_sites = graph.n_sites();
  series_.assign(n_sites, {});
  prefix_.assign(n_sites, {});

  const auto materialize = [&](std::size_t first, std::size_t last) {
    for (std::size_t s = first; s < last; ++s) {
      series_[s] = graph.forecast_series(s, now, begin, end);
      const std::vector<int>& values = series_[s];
      std::vector<std::int64_t>& prefix = prefix_[s];
      prefix.resize(values.size() + 1);
      prefix[0] = 0;
      for (std::size_t i = 0; i < values.size(); ++i) {
        prefix[i + 1] = prefix[i] + values[i];
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(n_sites, materialize);
  } else {
    materialize(0, n_sites);
  }
}

std::int64_t ForecastCache::range_sum(std::size_t s, util::Tick a,
                                      util::Tick b) const {
  const std::vector<std::int64_t>& prefix = prefix_.at(s);
  if (a < begin_ || b < a || b > end_) {
    throw std::out_of_range{"ForecastCache::range_sum: bad range"};
  }
  return prefix[static_cast<std::size_t>(b - begin_)] -
         prefix[static_cast<std::size_t>(a - begin_)];
}

}  // namespace vbatt::core
