#include "vbatt/core/scheduler.h"

namespace vbatt::core {

Scheduler::Placement GreedyScheduler::place(const workload::Application& app,
                                            const FleetState& state) {
  (void)app;
  // The paper's baseline is deliberately myopic: "always assigns VMs to
  // the site with the most available power" — raw current power, not
  // residual headroom (headroom breaks ties).
  const std::size_t n = state.graph->n_sites();
  std::size_t best = 0;
  int best_avail = state.available(0);
  int best_headroom = state.headroom(0);
  for (std::size_t s = 1; s < n; ++s) {
    const int a = state.available(s);
    if (a < best_avail) continue;
    const int h = state.headroom(s);
    if (a > best_avail || h > best_headroom) {
      best = s;
      best_avail = a;
      best_headroom = h;
    }
  }
  Placement placement;
  placement.site = best;
  placement.allowed = state.graph->latency().neighbors(best);
  placement.allowed.push_back(best);
  return placement;
}

}  // namespace vbatt::core
