#include "vbatt/core/availability.h"

#include <algorithm>

namespace vbatt::core {

AvailabilityReport availability_report(
    const SimResult& result, const std::vector<workload::Application>& apps,
    std::size_t n_ticks) {
  AvailabilityReport report;
  double sum = 0.0;
  std::size_t counted = 0;
  int good = 0;
  for (const workload::Application& app : apps) {
    if (app.arrival >= static_cast<util::Tick>(n_ticks)) continue;
    const util::Tick end =
        app.lifetime_ticks < 0
            ? static_cast<util::Tick>(n_ticks)
            : std::min<util::Tick>(static_cast<util::Tick>(n_ticks),
                                   app.arrival + app.lifetime_ticks);
    const auto resident_ticks = static_cast<double>(end - app.arrival);
    const double demanded =
        static_cast<double>(app.stable_cores()) * resident_ticks;

    double displaced = 0.0;
    const auto it = result.displaced_by_app.find(app.app_id);
    if (it != result.displaced_by_app.end()) {
      displaced = static_cast<double>(it->second);
    }
    AppAvailability entry;
    entry.app_id = app.app_id;
    entry.availability =
        demanded > 0.0
            ? std::clamp(1.0 - displaced / demanded, 0.0, 1.0)
            : 1.0;
    sum += entry.availability;
    if (entry.availability >= 0.999) ++good;
    ++counted;
    report.apps.push_back(entry);
  }
  std::sort(report.apps.begin(), report.apps.end(),
            [](const AppAvailability& a, const AppAvailability& b) {
              return a.availability < b.availability;
            });
  if (!report.apps.empty()) {
    report.min = report.apps.front().availability;
    report.p5 =
        report.apps[report.apps.size() / 20].availability;
    report.mean = sum / static_cast<double>(counted);
    report.three_nines_fraction =
        static_cast<double>(good) / static_cast<double>(counted);
  }
  return report;
}

}  // namespace vbatt::core
