#include "vbatt/solver/presolve.h"

#include <algorithm>
#include <cmath>

namespace vbatt::solver {

namespace {

constexpr double kFeasTol = 1e-7;
/// Minimum improvement for a tightened bound to be applied; keeps the pass
/// from churning on round-off and guarantees the fixpoint terminates.
constexpr double kTightenTol = 1e-7;
constexpr int kMaxPasses = 16;

bool fixed(double lo, double up) { return up - lo <= kFeasTol; }

}  // namespace

PresolveResult presolve(const Model& model, const std::vector<double>& lb,
                        const std::vector<double>& ub, bool integrality) {
  const std::size_t n = model.n_vars();
  const std::size_t m = model.n_constraints();
  PresolveResult out;
  out.lb = lb;
  out.ub = ub;

  std::vector<char> alive(m, 1);
  for (std::size_t j = 0; j < n; ++j) {
    if (out.lb[j] > out.ub[j] + kFeasTol) {
      out.infeasible = true;
      return out;
    }
  }

  bool changed = true;
  for (int pass = 0; pass < kMaxPasses && changed; ++pass) {
    changed = false;
    for (std::size_t i = 0; i < m; ++i) {
      if (!alive[i]) continue;
      const Constraint& con = model.constraints()[i];

      // Fold fixed variables into the rhs; collect the free terms.
      double rhs = con.rhs;
      std::size_t n_free = 0;
      int single_var = -1;
      double single_coeff = 0.0;
      for (const auto& [idx, coeff] : con.terms) {
        const auto j = static_cast<std::size_t>(idx);
        if (coeff == 0.0) continue;
        if (fixed(out.lb[j], out.ub[j])) {
          rhs -= coeff * out.lb[j];
        } else {
          ++n_free;
          single_var = idx;
          single_coeff = coeff;
        }
      }

      if (n_free == 0) {
        // Empty row: pure feasibility check, then drop.
        const bool ok = con.rel == Rel::le   ? rhs >= -kFeasTol
                        : con.rel == Rel::ge ? rhs <= kFeasTol
                                             : std::abs(rhs) <= kFeasTol;
        if (!ok) {
          out.infeasible = true;
          return out;
        }
        alive[i] = 0;
        changed = true;
        continue;
      }

      if (n_free == 1) {
        // Singleton row: a * x {<=,>=,=} rhs is just a bound on x.
        const auto j = static_cast<std::size_t>(single_var);
        const double v = rhs / single_coeff;
        const bool upper = (con.rel == Rel::le) == (single_coeff > 0.0);
        double new_lo = out.lb[j];
        double new_up = out.ub[j];
        if (con.rel == Rel::eq) {
          new_lo = std::max(new_lo, v);
          new_up = std::min(new_up, v);
        } else if (upper) {
          new_up = std::min(new_up, v);
        } else {
          new_lo = std::max(new_lo, v);
        }
        if (integrality && model.vars()[j].integer) {
          new_lo = std::ceil(new_lo - kFeasTol);
          new_up = std::floor(new_up + kFeasTol);
        }
        if (new_lo > new_up + kFeasTol) {
          out.infeasible = true;
          return out;
        }
        out.lb[j] = new_lo;
        out.ub[j] = std::max(new_up, new_lo);
        alive[i] = 0;
        changed = true;
        continue;
      }

      // Bound tightening from row activity bounds over the free terms
      // (fixed variables are already folded into rhs). Infinite partial
      // activities disable the corresponding direction.
      double min_act = 0.0;
      double max_act = 0.0;
      bool min_finite = true;
      bool max_finite = true;
      for (const auto& [idx, coeff] : con.terms) {
        const auto j = static_cast<std::size_t>(idx);
        if (coeff == 0.0 || fixed(out.lb[j], out.ub[j])) continue;
        const double at_min = coeff > 0.0 ? out.lb[j] : out.ub[j];
        const double at_max = coeff > 0.0 ? out.ub[j] : out.lb[j];
        if (std::isfinite(at_min)) {
          min_act += coeff * at_min;
        } else {
          min_finite = false;
        }
        if (std::isfinite(at_max)) {
          max_act += coeff * at_max;
        } else {
          max_finite = false;
        }
      }
      for (const auto& [idx, coeff] : con.terms) {
        const auto j = static_cast<std::size_t>(idx);
        if (coeff == 0.0 || fixed(out.lb[j], out.ub[j])) continue;
        const double own_min = coeff > 0.0 ? out.lb[j] : out.ub[j];
        const double own_max = coeff > 0.0 ? out.ub[j] : out.lb[j];
        // Upper side (<= or =): coeff*x <= rhs - min_act_others.
        if (con.rel != Rel::ge && min_finite && std::isfinite(own_min)) {
          const double room = rhs - (min_act - coeff * own_min);
          const double implied = room / coeff;
          if (coeff > 0.0) {
            double cap = implied;
            if (integrality && model.vars()[j].integer) {
              cap = std::floor(cap + kFeasTol);
            }
            if (cap < out.ub[j] - kTightenTol) {
              out.ub[j] = cap;
              changed = true;
            }
          } else {
            double floor_v = implied;
            if (integrality && model.vars()[j].integer) {
              floor_v = std::ceil(floor_v - kFeasTol);
            }
            if (floor_v > out.lb[j] + kTightenTol) {
              out.lb[j] = floor_v;
              changed = true;
            }
          }
        }
        // Lower side (>= or =): coeff*x >= rhs - max_act_others.
        if (con.rel != Rel::le && max_finite && std::isfinite(own_max)) {
          const double room = rhs - (max_act - coeff * own_max);
          const double implied = room / coeff;
          if (coeff > 0.0) {
            double floor_v = implied;
            if (integrality && model.vars()[j].integer) {
              floor_v = std::ceil(floor_v - kFeasTol);
            }
            if (floor_v > out.lb[j] + kTightenTol) {
              out.lb[j] = floor_v;
              changed = true;
            }
          } else {
            double cap = implied;
            if (integrality && model.vars()[j].integer) {
              cap = std::floor(cap + kFeasTol);
            }
            if (cap < out.ub[j] - kTightenTol) {
              out.ub[j] = cap;
              changed = true;
            }
          }
        }
        if (out.lb[j] > out.ub[j] + kFeasTol) {
          out.infeasible = true;
          return out;
        }
      }
    }
  }

  out.rows.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (alive[i]) out.rows.push_back(static_cast<int>(i));
  }

  out.x.assign(n, 0.0);
  bool all_fixed = true;
  for (std::size_t j = 0; j < n; ++j) {
    out.x[j] = std::isfinite(out.lb[j]) ? out.lb[j] : 0.0;
    if (!fixed(out.lb[j], out.ub[j])) all_fixed = false;
  }
  out.solved = all_fixed && out.rows.empty();
  return out;
}

}  // namespace vbatt::solver
