#include "vbatt/solver/simplex.h"

#include <cmath>
#include <stdexcept>

#include "vbatt/solver/presolve.h"
#include "vbatt/solver/revised.h"

namespace vbatt::solver {

namespace {

constexpr double kFeasTol = 1e-7;

std::int64_t auto_budget(std::size_t rows, std::size_t vars) {
  return 2000 + 60 * static_cast<std::int64_t>(rows + vars);
}

/// LP with no surviving rows: every free variable sits at whichever bound
/// its own cost prefers (lower on ties, matching the seed's vertex).
void solve_box_only(const Model& model, const PresolveResult& pre,
                    LpResult& result) {
  result.x = pre.x;
  for (std::size_t j = 0; j < result.x.size(); ++j) {
    if (pre.ub[j] - pre.lb[j] <= kFeasTol) continue;
    if (model.vars()[j].cost < 0.0) {
      if (!std::isfinite(pre.ub[j])) {
        result.status = LpStatus::unbounded;
        result.x.clear();
        return;
      }
      result.x[j] = pre.ub[j];
    }
  }
  result.status = LpStatus::optimal;
  result.objective = model.objective_of(result.x);
}

}  // namespace

LpResult solve_lp_bounded(const Model& model, const std::vector<double>& lb,
                          const std::vector<double>& ub,
                          const LpOptions& options) {
  const std::size_t nv = model.n_vars();
  if (lb.size() != nv || ub.size() != nv) {
    throw std::invalid_argument{"solve_lp_bounded: bound size mismatch"};
  }
  LpResult result;
  for (std::size_t i = 0; i < nv; ++i) {
    if (!(lb[i] <= ub[i])) return result;  // infeasible box
    if (!std::isfinite(lb[i])) {
      throw std::invalid_argument{"solve_lp_bounded: -inf lower bound"};
    }
  }

  const PresolveResult pre = presolve(model, lb, ub, /*integrality=*/false);
  if (pre.infeasible) return result;
  if (pre.solved) {
    result.status = LpStatus::optimal;
    result.x = pre.x;
    result.objective = model.objective_of(result.x);
    return result;
  }
  if (pre.rows.empty()) {
    solve_box_only(model, pre, result);
    return result;
  }

  RevisedSolver solver{model, pre.rows};
  Basis basis;
  const std::int64_t budget = options.max_pivots >= 0
                                  ? options.max_pivots
                                  : auto_budget(pre.rows.size(), nv);
  result.status = solver.solve_primal(pre.lb, pre.ub, basis, budget);
  result.pivots = solver.pivots();
  if (result.status == LpStatus::optimal) {
    result.x = solver.x();
    result.objective = model.objective_of(result.x);
  }
  return result;
}

LpResult solve_lp(const Model& model, const LpOptions& options) {
  std::vector<double> lb;
  std::vector<double> ub;
  lb.reserve(model.n_vars());
  ub.reserve(model.n_vars());
  for (const Variable& v : model.vars()) {
    lb.push_back(v.lb);
    ub.push_back(v.ub);
  }
  return solve_lp_bounded(model, lb, ub, options);
}

}  // namespace vbatt::solver
