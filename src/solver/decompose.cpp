#include "vbatt/solver/decompose.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bb_detail.h"

namespace vbatt::solver {

namespace {

/// One coalesced row: duplicate terms summed, zero coefficients dropped,
/// terms sorted by variable index. The chain detector needs canonical
/// rows to classify them, and RevisedSolver applies the same
/// normalization, so sub-models built from these rows are equivalent.
struct Row {
  std::vector<std::pair<int, double>> terms;
  Rel rel = Rel::le;
  double rhs = 0.0;
};

Row coalesce(const Constraint& con) {
  Row row;
  row.rel = con.rel;
  row.rhs = con.rhs;
  row.terms.assign(con.terms.begin(), con.terms.end());
  std::sort(row.terms.begin(), row.terms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<int, double>> out;
  out.reserve(row.terms.size());
  for (const auto& [idx, coeff] : row.terms) {
    if (!out.empty() && out.back().first == idx) {
      out.back().second += coeff;
    } else {
      out.emplace_back(idx, coeff);
    }
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const auto& t) { return t.second == 0.0; }),
            out.end());
  row.terms = std::move(out);
  return row;
}

struct Dsu {
  std::vector<int> parent;
  explicit Dsu(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  }
  int find(int a) {
    while (parent[static_cast<std::size_t>(a)] != a) {
      parent[static_cast<std::size_t>(a)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(a)])];
      a = parent[static_cast<std::size_t>(a)];
    }
    return a;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    // Deterministic: smaller root wins, so component ids are the smallest
    // member and block order is by first variable index.
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[static_cast<std::size_t>(b)] = a;
  }
};

/// One independent block: its variables and the rows they own, both in
/// ascending original-index order.
struct Block {
  std::vector<int> vars;
  std::vector<int> rows;
};

bool is_binary01(const Variable& v) {
  return v.integer && (v.lb == 0.0 || v.lb == 1.0) &&
         (v.ub == 0.0 || v.ub == 1.0) && v.lb <= v.ub;
}

/// A verified move row `x_a - x_b - y <= rhs` (x_b absent for the
/// horizon-start rows `x_a - y <= rhs`).
struct TransRow {
  int x_a = -1;
  int x_b = -1;
  int y = -1;
  double rhs = 0.0;
};

enum class ChainOutcome { no_match, solved, infeasible };

/// Try to solve `block` as a stagewise chain with the exact DP master.
/// On `solved`, the block's variables are written into `x_full` and
/// `stages_out` gets the number of stage-merge (master) iterations.
ChainOutcome try_chain(const Model& model, const std::vector<Row>& all_rows,
                       const Block& block, std::vector<double>& x_full,
                       int* stages_out) {
  const auto& vars = model.vars();

  // --- classify every block row as assignment or move, else bail ---
  std::vector<int> assign_rows;
  std::vector<TransRow> trans;
  for (const int ri : block.rows) {
    const Row& r = all_rows[static_cast<std::size_t>(ri)];
    if (r.rel == Rel::eq && r.rhs == 1.0 && !r.terms.empty()) {
      bool ok = true;
      for (const auto& [v, c] : r.terms) {
        if (c != 1.0 || !is_binary01(vars[static_cast<std::size_t>(v)])) {
          ok = false;
          break;
        }
      }
      if (ok) {
        assign_rows.push_back(ri);
        continue;
      }
    }
    if (r.rel != Rel::le || r.rhs < 0.0) return ChainOutcome::no_match;
    TransRow t;
    t.rhs = r.rhs;
    for (const auto& [v, c] : r.terms) {
      const Variable& var = vars[static_cast<std::size_t>(v)];
      if (var.integer) {
        if (!is_binary01(var)) return ChainOutcome::no_match;
        if (c == 1.0 && t.x_a < 0) {
          t.x_a = v;
        } else if (c == -1.0 && t.x_b < 0) {
          t.x_b = v;
        } else {
          return ChainOutcome::no_match;
        }
      } else {
        // The move slack: continuous, owned by this row alone (checked
        // below), zero lower bound, nonnegative cost, and enough headroom
        // to absorb a full move (ub + rhs >= 1) — the conditions that
        // make its optimal value max(0, 1 - rhs - stay) closed-form.
        if (c != -1.0 || t.y >= 0) return ChainOutcome::no_match;
        if (var.lb != 0.0 || var.cost < 0.0 || var.ub + r.rhs < 1.0) {
          return ChainOutcome::no_match;
        }
        t.y = v;
      }
    }
    if (t.x_a < 0 || t.y < 0) return ChainOutcome::no_match;
    trans.push_back(t);
  }
  if (assign_rows.empty()) return ChainOutcome::no_match;

  // --- role bookkeeping: each x in exactly one assignment row, at most
  // one incoming move row; each y owned by exactly one move row ---
  const std::size_t n = model.n_vars();
  std::vector<int> stage_of(n, -1);     // x var -> stage index
  std::vector<int> incoming(n, -1);     // x var -> index into `trans`
  std::vector<std::uint8_t> is_y(n, 0);
  const int n_stages = static_cast<int>(assign_rows.size());
  for (int s = 0; s < n_stages; ++s) {
    const Row& r = all_rows[static_cast<std::size_t>(assign_rows[
        static_cast<std::size_t>(s)])];
    for (const auto& [v, c] : r.terms) {
      (void)c;
      if (stage_of[static_cast<std::size_t>(v)] >= 0) {
        return ChainOutcome::no_match;  // x in two assignment rows
      }
      stage_of[static_cast<std::size_t>(v)] = s;
    }
  }
  for (std::size_t ti = 0; ti < trans.size(); ++ti) {
    const TransRow& t = trans[ti];
    if (stage_of[static_cast<std::size_t>(t.x_a)] < 0) {
      return ChainOutcome::no_match;  // x_a not covered by an assignment
    }
    if (t.x_b >= 0 && stage_of[static_cast<std::size_t>(t.x_b)] < 0) {
      return ChainOutcome::no_match;
    }
    if (incoming[static_cast<std::size_t>(t.x_a)] >= 0) {
      return ChainOutcome::no_match;  // two incoming move rows
    }
    incoming[static_cast<std::size_t>(t.x_a)] = static_cast<int>(ti);
    if (is_y[static_cast<std::size_t>(t.y)]) {
      return ChainOutcome::no_match;  // y shared by two move rows
    }
    is_y[static_cast<std::size_t>(t.y)] = 1;
  }
  for (const int v : block.vars) {
    // Every block variable must have exactly one role.
    const bool x_role = stage_of[static_cast<std::size_t>(v)] >= 0;
    const bool y_role = is_y[static_cast<std::size_t>(v)] != 0;
    if (x_role == y_role) return ChainOutcome::no_match;
  }

  // --- the stage-interaction graph must be a single path ---
  std::vector<int> pred(static_cast<std::size_t>(n_stages), -1);
  std::vector<int> succ(static_cast<std::size_t>(n_stages), -1);
  for (const TransRow& t : trans) {
    if (t.x_b < 0) continue;
    const int q = stage_of[static_cast<std::size_t>(t.x_a)];
    const int p = stage_of[static_cast<std::size_t>(t.x_b)];
    if (p == q) return ChainOutcome::no_match;
    if (pred[static_cast<std::size_t>(q)] == -1) {
      pred[static_cast<std::size_t>(q)] = p;
    } else if (pred[static_cast<std::size_t>(q)] != p) {
      return ChainOutcome::no_match;
    }
    if (succ[static_cast<std::size_t>(p)] == -1) {
      succ[static_cast<std::size_t>(p)] = q;
    } else if (succ[static_cast<std::size_t>(p)] != q) {
      return ChainOutcome::no_match;
    }
  }
  int root = -1;
  for (int s = 0; s < n_stages; ++s) {
    if (pred[static_cast<std::size_t>(s)] == -1) {
      if (root != -1 && n_stages > 1) return ChainOutcome::no_match;
      if (root == -1) root = s;
    }
  }
  if (root == -1) return ChainOutcome::no_match;  // cycle
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n_stages));
  for (int s = root; s != -1; s = succ[static_cast<std::size_t>(s)]) {
    if (static_cast<int>(order.size()) >= n_stages) {
      return ChainOutcome::no_match;  // cycle
    }
    order.push_back(s);
  }
  if (static_cast<int>(order.size()) != n_stages) {
    return ChainOutcome::no_match;  // disconnected stage graph
  }

  // --- exact DP over the path: f_q(a) = cx(a) + min(stay, jump) where
  // stay follows a's own move row for free and jump pays the move slack
  // cost cy(a) * max(0, 1 - rhs). All ties break toward "stay", then the
  // smallest site index, so the chosen vertex is deterministic. ---
  constexpr double kInfCost = std::numeric_limits<double>::infinity();
  std::vector<std::vector<int>> states(static_cast<std::size_t>(n_stages));
  for (int s = 0; s < n_stages; ++s) {
    const Row& r = all_rows[static_cast<std::size_t>(assign_rows[
        static_cast<std::size_t>(s)])];
    auto& st = states[static_cast<std::size_t>(s)];
    st.reserve(r.terms.size());
    for (const auto& [v, c] : r.terms) {
      (void)c;
      st.push_back(v);
    }
  }
  // f/bp indexed [stage position in `order`][state position].
  std::vector<std::vector<double>> f(static_cast<std::size_t>(n_stages));
  std::vector<std::vector<int>> bp(static_cast<std::size_t>(n_stages));
  std::vector<int> prev_pos_of(n, -1);  // x var -> position in prev stage
  for (int pos = 0; pos < n_stages; ++pos) {
    const int s = order[static_cast<std::size_t>(pos)];
    const auto& st = states[static_cast<std::size_t>(s)];
    auto& fs = f[static_cast<std::size_t>(pos)];
    auto& bs = bp[static_cast<std::size_t>(pos)];
    fs.assign(st.size(), kInfCost);
    bs.assign(st.size(), -1);

    // Fixed variables: a state with lb == 1 must be chosen; two of them
    // make the assignment row infeasible. ub == 0 excludes a state.
    int forced = -1;
    for (std::size_t i = 0; i < st.size(); ++i) {
      if (vars[static_cast<std::size_t>(st[i])].lb == 1.0) {
        if (forced >= 0) return ChainOutcome::infeasible;
        forced = static_cast<int>(i);
      }
    }

    // Best reachable previous state (for the "jump" branch).
    double best_prev = kInfCost;
    int best_prev_pos = -1;
    if (pos > 0) {
      const auto& fp = f[static_cast<std::size_t>(pos - 1)];
      for (std::size_t i = 0; i < fp.size(); ++i) {
        if (fp[i] < best_prev) {
          best_prev = fp[i];
          best_prev_pos = static_cast<int>(i);
        }
      }
      if (best_prev_pos < 0) return ChainOutcome::infeasible;
    }

    for (std::size_t i = 0; i < st.size(); ++i) {
      const int v = st[i];
      if (forced >= 0 && static_cast<int>(i) != forced) continue;
      if (vars[static_cast<std::size_t>(v)].ub == 0.0) {
        if (forced == static_cast<int>(i)) return ChainOutcome::infeasible;
        continue;
      }
      const double cx = vars[static_cast<std::size_t>(v)].cost;
      const int ti = incoming[static_cast<std::size_t>(v)];
      double pen = 0.0;
      int from = -1;
      if (ti >= 0) {
        const TransRow& t = trans[static_cast<std::size_t>(ti)];
        pen = vars[static_cast<std::size_t>(t.y)].cost *
              std::max(0.0, 1.0 - t.rhs);
        from = t.x_b;
      }
      if (pos == 0) {
        // Root stage: move rows here are unary (no previous stage), so
        // the penalty always applies when nonzero.
        fs[i] = cx + pen;
        bs[i] = -1;
        continue;
      }
      double stay = kInfCost;
      int stay_pos = -1;
      if (from >= 0) {
        stay_pos = prev_pos_of[static_cast<std::size_t>(from)];
        if (stay_pos >= 0) {
          stay = f[static_cast<std::size_t>(pos - 1)]
                  [static_cast<std::size_t>(stay_pos)];
        }
      } else if (ti >= 0) {
        // Unary move row in a non-root stage: penalty regardless of the
        // previous choice.
        stay = kInfCost;
      }
      const double jump = best_prev + pen;
      if (from >= 0 && stay <= jump) {
        fs[i] = cx + stay;
        bs[i] = stay_pos;
      } else {
        fs[i] = cx + jump;
        bs[i] = best_prev_pos;
      }
      if (ti < 0) {
        // No move row at all: previous choice is unconstrained and free.
        fs[i] = cx + best_prev;
        bs[i] = best_prev_pos;
      }
    }

    prev_pos_of.assign(n, -1);
    for (std::size_t i = 0; i < st.size(); ++i) {
      prev_pos_of[static_cast<std::size_t>(st[i])] = static_cast<int>(i);
    }
  }

  // Final-stage argmin, then backtrack.
  const auto& flast = f[static_cast<std::size_t>(n_stages - 1)];
  double best = kInfCost;
  int best_pos = -1;
  for (std::size_t i = 0; i < flast.size(); ++i) {
    if (flast[i] < best) {
      best = flast[i];
      best_pos = static_cast<int>(i);
    }
  }
  if (best_pos < 0) return ChainOutcome::infeasible;
  std::vector<int> chosen(static_cast<std::size_t>(n_stages), -1);
  for (int pos = n_stages - 1; pos >= 0; --pos) {
    chosen[static_cast<std::size_t>(pos)] = best_pos;
    best_pos = bp[static_cast<std::size_t>(pos)]
                 [static_cast<std::size_t>(best_pos)];
  }

  // Materialize the block solution: chosen x = 1, the rest 0; each move
  // slack at its closed-form minimum.
  std::vector<int> chosen_var(static_cast<std::size_t>(n_stages), -1);
  for (int pos = 0; pos < n_stages; ++pos) {
    const int s = order[static_cast<std::size_t>(pos)];
    const auto& st = states[static_cast<std::size_t>(s)];
    for (const int v : st) x_full[static_cast<std::size_t>(v)] = 0.0;
    const int cv = st[static_cast<std::size_t>(
        chosen[static_cast<std::size_t>(pos)])];
    x_full[static_cast<std::size_t>(cv)] = 1.0;
    chosen_var[static_cast<std::size_t>(pos)] = cv;
  }
  std::vector<int> pos_of_stage(static_cast<std::size_t>(n_stages), -1);
  for (int pos = 0; pos < n_stages; ++pos) {
    pos_of_stage[static_cast<std::size_t>(
        order[static_cast<std::size_t>(pos)])] = pos;
  }
  for (const TransRow& t : trans) {
    double y = 0.0;
    if (x_full[static_cast<std::size_t>(t.x_a)] == 1.0) {
      const double stay =
          t.x_b >= 0 ? x_full[static_cast<std::size_t>(t.x_b)] : 0.0;
      y = std::max(0.0, 1.0 - t.rhs - stay);
    }
    x_full[static_cast<std::size_t>(t.y)] = y;
  }
  *stages_out = n_stages;
  return ChainOutcome::solved;
}

/// Solve a non-chain block as its own revised B&B subproblem.
MipResult solve_block_bb(const Model& model, const std::vector<Row>& all_rows,
                         const Block& block, const MipOptions& options,
                         const MipWarmStart* warm,
                         std::vector<double>& x_full) {
  Model sub;
  for (const int v : block.vars) {
    const Variable& var = model.vars()[static_cast<std::size_t>(v)];
    sub.add_var(var.name, var.cost, var.lb, var.ub, var.integer);
  }
  const auto local_of = [&](int v) {
    const auto it =
        std::lower_bound(block.vars.begin(), block.vars.end(), v);
    return static_cast<int>(it - block.vars.begin());
  };
  for (const int ri : block.rows) {
    const Row& r = all_rows[static_cast<std::size_t>(ri)];
    std::vector<std::pair<int, double>> terms;
    terms.reserve(r.terms.size());
    for (const auto& [v, c] : r.terms) terms.emplace_back(local_of(v), c);
    sub.add_constraint(std::move(terms), r.rel, r.rhs);
  }
  MipOptions sub_opts = options;
  sub_opts.engine = MipEngine::revised;
  MipWarmStart sub_warm;
  const MipWarmStart* wp = nullptr;
  if (warm && warm->x.size() == model.n_vars()) {
    sub_warm.x.reserve(block.vars.size());
    for (const int v : block.vars) {
      sub_warm.x.push_back(warm->x[static_cast<std::size_t>(v)]);
    }
    wp = &sub_warm;
  }
  MipResult r = solve_mip(sub, sub_opts, wp, nullptr);
  if (r.status == LpStatus::optimal) {
    for (std::size_t i = 0; i < block.vars.size(); ++i) {
      x_full[static_cast<std::size_t>(block.vars[i])] = r.x[i];
    }
  }
  return r;
}

}  // namespace

MipResult solve_mip_decomposed(const Model& model, const MipOptions& options,
                               const MipWarmStart* warm, MipBasisHint* hint) {
  const std::size_t n = model.n_vars();
  MipResult result;

  for (const Variable& v : model.vars()) {
    if (!std::isfinite(v.lb)) {
      throw std::invalid_argument{"solve_mip: -inf lower bound"};
    }
  }
  for (const Variable& v : model.vars()) {
    if (!(v.lb <= v.ub)) {
      ++result.nodes_explored;
      return result;  // infeasible box
    }
  }

  const auto fallback = [&]() {
    MipOptions mono = options;
    mono.engine = MipEngine::revised;
    MipResult r = solve_mip(model, mono, warm, hint);
    r.monolithic_fallback = true;
    return r;
  };

  // Canonical rows; any degenerate (term-free) row means presolve-level
  // reasoning we don't replicate here — punt to the monolithic path so
  // edge-case semantics stay byte-for-byte those of the revised engine.
  std::vector<Row> rows;
  rows.reserve(model.n_constraints());
  for (const Constraint& con : model.constraints()) {
    rows.push_back(coalesce(con));
    if (rows.back().terms.empty()) return fallback();
  }

  // Block detection: union-find over variables sharing a row.
  Dsu dsu(n);
  for (const Row& r : rows) {
    for (std::size_t t = 1; t < r.terms.size(); ++t) {
      dsu.unite(r.terms[0].first, r.terms[t].first);
    }
  }
  std::vector<std::vector<int>> comp_vars;  // row-bearing components
  std::vector<int> comp_of(n, -1);
  std::vector<std::uint8_t> has_row(n, 0);
  for (const Row& r : rows) {
    for (const auto& [v, c] : r.terms) {
      (void)c;
      has_row[static_cast<std::size_t>(v)] = 1;
    }
  }
  std::vector<int> box_vars;
  std::vector<Block> blocks;
  {
    std::vector<int> comp_index(n, -1);
    for (std::size_t v = 0; v < n; ++v) {
      if (!has_row[v]) {
        box_vars.push_back(static_cast<int>(v));
        continue;
      }
      const int root = dsu.find(static_cast<int>(v));
      int& ci = comp_index[static_cast<std::size_t>(root)];
      if (ci < 0) {
        ci = static_cast<int>(blocks.size());
        blocks.emplace_back();
      }
      blocks[static_cast<std::size_t>(ci)].vars.push_back(
          static_cast<int>(v));
      comp_of[v] = ci;
    }
    for (std::size_t ri = 0; ri < rows.size(); ++ri) {
      const int v0 = rows[ri].terms[0].first;
      blocks[static_cast<std::size_t>(comp_of[static_cast<std::size_t>(v0)])]
          .rows.push_back(static_cast<int>(ri));
    }
  }

  // One non-chain block spanning the whole model is not a decomposition;
  // hand it (with the caller's warm start and basis hint) to the
  // monolithic revised engine. Probe the chain first so the headline
  // single-app trajectory model still gets the DP master.
  result.x.assign(n, 0.0);
  result.status = LpStatus::optimal;
  result.proven_optimal = true;

  for (const Block& block : blocks) {
    int stages = 0;
    const ChainOutcome outcome =
        try_chain(model, rows, block, result.x, &stages);
    if (outcome == ChainOutcome::solved) {
      ++result.nodes_explored;
      ++result.blocks;
      ++result.chain_blocks;
      result.master_iterations += stages;
      continue;
    }
    if (outcome == ChainOutcome::infeasible) {
      ++result.nodes_explored;
      result.status = LpStatus::infeasible;
      result.x.clear();
      result.proven_optimal = false;
      result.objective = 0.0;
      return result;
    }
    if (blocks.size() == 1 && box_vars.empty()) return fallback();
    const MipResult sub =
        solve_block_bb(model, rows, block, options, warm, result.x);
    result.nodes_explored += sub.nodes_explored;
    result.pivots += sub.pivots;
    ++result.blocks;
    if (sub.status != LpStatus::optimal) {
      result.status = sub.status;
      result.x.clear();
      result.proven_optimal = false;
      result.objective = 0.0;
      return result;
    }
    result.proven_optimal = result.proven_optimal && sub.proven_optimal;
  }

  if (!box_vars.empty()) {
    // All row-less variables form one box block: each sits at whichever
    // bound (rounded inward for integers) its cost prefers.
    ++result.nodes_explored;
    ++result.blocks;
    for (const int v : box_vars) {
      const Variable& var = model.vars()[static_cast<std::size_t>(v)];
      double lo = var.lb;
      double hi = var.ub;
      if (var.integer) {
        lo = std::ceil(lo - options.int_tol);
        hi = std::floor(hi + options.int_tol);
        if (lo > hi) {
          result.status = LpStatus::infeasible;
          result.x.clear();
          result.proven_optimal = false;
          return result;
        }
      }
      if (var.cost < 0.0) {
        if (!std::isfinite(hi)) {
          result.status = LpStatus::unbounded;
          result.x.clear();
          result.proven_optimal = false;
          return result;
        }
        result.x[static_cast<std::size_t>(v)] = hi;
      } else {
        result.x[static_cast<std::size_t>(v)] = lo;
      }
    }
  }

  result.objective = model.objective_of(result.x);
  return result;
}

}  // namespace vbatt::solver
