// Linear / mixed-integer model builder.
//
// Stands in for the commercial MIP solver the paper presumably used: a
// minimal modeling layer (variables with bounds and costs, linear
// constraints) consumed by the bundled simplex + branch & bound engine.
// Minimization only — negate costs to maximize.
#pragma once

#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace vbatt::solver {

enum class Rel { le, ge, eq };

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Variable {
  std::string name;
  double cost = 0.0;
  double lb = 0.0;
  double ub = kInf;
  bool integer = false;
};

struct Constraint {
  /// (variable index, coefficient) pairs; indices must be valid.
  std::vector<std::pair<int, double>> terms;
  Rel rel = Rel::le;
  double rhs = 0.0;
};

/// A minimization model: min cᵀx  s.t.  Ax {≤,≥,=} b,  lb ≤ x ≤ ub,
/// x_i integer for flagged variables.
class Model {
 public:
  /// Returns the new variable's index.
  int add_var(std::string name, double cost, double lb = 0.0,
              double ub = kInf, bool integer = false) {
    if (!(lb <= ub)) throw std::invalid_argument{"add_var: lb > ub"};
    vars_.push_back(Variable{std::move(name), cost, lb, ub, integer});
    return static_cast<int>(vars_.size()) - 1;
  }

  /// Convenience: binary decision variable.
  int add_binary(std::string name, double cost) {
    return add_var(std::move(name), cost, 0.0, 1.0, true);
  }

  void add_constraint(std::vector<std::pair<int, double>> terms, Rel rel,
                      double rhs) {
    for (const auto& [idx, coeff] : terms) {
      (void)coeff;
      if (idx < 0 || idx >= static_cast<int>(vars_.size())) {
        throw std::invalid_argument{"add_constraint: bad variable index"};
      }
    }
    constraints_.push_back(Constraint{std::move(terms), rel, rhs});
  }

  /// Remove the most recently added constraint. Lets callers append a
  /// temporary row (e.g. a lexicographic objective cap), solve, and restore
  /// the model without copying it.
  void pop_constraint() {
    if (constraints_.empty()) {
      throw std::logic_error{"pop_constraint: no constraints"};
    }
    constraints_.pop_back();
  }

  /// Remove the most recently added variable. The caller must first pop any
  /// constraints that reference it.
  void pop_var() {
    if (vars_.empty()) throw std::logic_error{"pop_var: no variables"};
    const int idx = static_cast<int>(vars_.size()) - 1;
    for (const Constraint& con : constraints_) {
      for (const auto& [i, coeff] : con.terms) {
        (void)coeff;
        if (i == idx) {
          throw std::logic_error{"pop_var: variable still referenced"};
        }
      }
    }
    vars_.pop_back();
  }

  /// Overwrite one row's right-hand side in place. The structural patch
  /// primitive for incremental model reuse: between replans of the same
  /// planning family only costs and a handful of rhs values change.
  void set_rhs(std::size_t row, double rhs) {
    if (row >= constraints_.size()) {
      throw std::out_of_range{"set_rhs: bad row index"};
    }
    constraints_[row].rhs = rhs;
  }

  std::size_t n_vars() const noexcept { return vars_.size(); }
  std::size_t n_constraints() const noexcept { return constraints_.size(); }
  const std::vector<Variable>& vars() const noexcept { return vars_; }
  std::vector<Variable>& vars() noexcept { return vars_; }
  const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }

  /// Objective value of a point under the current costs.
  double objective_of(const std::vector<double>& x) const {
    if (x.size() != vars_.size()) {
      throw std::invalid_argument{"objective_of: size mismatch"};
    }
    double sum = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) sum += vars_[i].cost * x[i];
    return sum;
  }

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> constraints_;
};

}  // namespace vbatt::solver
