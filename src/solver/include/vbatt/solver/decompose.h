// Stage-3 decomposition layer behind MipEngine::decomposed.
//
// The scheduling MIPs are block-structured: union-find over "variables
// sharing a constraint row" splits the model into independent blocks that
// can be solved as separate subproblems and stitched by summation (the
// master problem is trivial when no row couples two blocks — it only adds
// the block objectives). Within a block, the layer additionally detects
// the stagewise chain structure the trajectory scheduler emits — per-
// bucket assignment rows (pick exactly one site) linked only by move rows
// `x[k][s] - x[k-1][s] - y[k][s] <= r` — which is exactly a shortest-path
// problem over (stage, site) states. Such blocks are solved by an exact
// dynamic-programming master that merges each stage's column proposals in
// one deterministic O(states) sweep per stage (a degenerate Dantzig-Wolfe
// step: every extreme point of a stage block is a single site choice, and
// the path recurrence prices them all simultaneously). Blocks that match
// neither pattern run through the monolithic revised B&B individually;
// a model that is one non-chain block falls back to the monolithic path
// outright (MipResult::monolithic_fallback).
//
// Exactness contract: the chain DP is only used when every structural
// condition it needs is verified on the raw model (binary x's covered by
// exactly one assignment row each, continuous nonnegative-cost y's owned
// by exactly one move row each, unit coefficients, nonnegative move rhs,
// path-shaped stage graph). Anything else — the lexicographic cap row,
// peak rows, arbitrary testkit models — fails verification and takes a
// B&B path, so decomposed objectives always match the monolithic engines
// to 1e-6 (`solver.decomposed_diff` fuzzes exactly this claim).
#pragma once

#include "vbatt/solver/branch_bound.h"
#include "vbatt/solver/model.h"

namespace vbatt::solver {

/// Entry point dispatched by solve_mip for MipEngine::decomposed.
///
/// `warm` is sliced per block (a feasible monolithic incumbent restricted
/// to a block's variables is a feasible block incumbent). `hint` is used
/// and refreshed only on the monolithic fallback path — per-block bases
/// do not compose into a monolithic hint and chain blocks need none.
MipResult solve_mip_decomposed(const Model& model,
                               const MipOptions& options = {},
                               const MipWarmStart* warm = nullptr,
                               MipBasisHint* hint = nullptr);

}  // namespace vbatt::solver
