// Dense two-phase primal simplex.
//
// Scope: the scheduling LPs in this repository (≤ a few thousand
// rows/columns, dense-ish assignment structure). Variables may have general
// finite bounds; lower bounds are shifted out, finite upper bounds become
// explicit rows. Degeneracy is handled by switching from Dantzig pricing to
// Bland's rule after an iteration budget.
#pragma once

#include <vector>

#include "vbatt/solver/model.h"

namespace vbatt::solver {

enum class LpStatus { optimal, infeasible, unbounded, iteration_limit };

struct LpResult {
  LpStatus status = LpStatus::infeasible;
  double objective = 0.0;
  /// Values for the model's structural variables (original space).
  std::vector<double> x;
};

/// Solve the LP relaxation of `model` (integrality flags ignored).
LpResult solve_lp(const Model& model);

/// Solve with per-variable bound overrides (used by branch & bound). Both
/// vectors must have model.n_vars() entries.
LpResult solve_lp_bounded(const Model& model, const std::vector<double>& lb,
                          const std::vector<double>& ub);

}  // namespace vbatt::solver
