// LP entry points, backed by the revised simplex with implicit bounds
// (see revised.h). The seed dense-tableau implementation lives on as the
// cross-check oracle in reference.h.
//
// Scope: the scheduling LPs in this repository (≤ a few thousand
// rows/columns). Variables may have general finite bounds; lower bounds
// must be finite, upper bounds may be +inf. Degeneracy is handled by
// switching from Dantzig pricing to Bland's rule after an iteration
// budget; every solve is additionally capped by a pivot budget so a
// degenerate model surfaces as a failed solve instead of a stall.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/solver/model.h"

namespace vbatt::solver {

enum class LpStatus { optimal, infeasible, unbounded, iteration_limit };

struct LpOptions {
  /// Hard pivot budget per solve; < 0 picks an automatic budget scaled to
  /// the model size. Exhaustion returns LpStatus::iteration_limit.
  std::int64_t max_pivots = -1;
};

struct LpResult {
  LpStatus status = LpStatus::infeasible;
  double objective = 0.0;
  /// Values for the model's structural variables (original space).
  std::vector<double> x;
  /// Simplex pivots spent (phase 1 + phase 2, bound flips included).
  std::int64_t pivots = 0;
};

/// Solve the LP relaxation of `model` (integrality flags ignored).
LpResult solve_lp(const Model& model, const LpOptions& options = {});

/// Solve with per-variable bound overrides (used by branch & bound). Both
/// vectors must have model.n_vars() entries.
LpResult solve_lp_bounded(const Model& model, const std::vector<double>& lb,
                          const std::vector<double>& ub,
                          const LpOptions& options = {});

}  // namespace vbatt::solver
