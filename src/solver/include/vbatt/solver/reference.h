// Frozen seed solver (dense two-phase tableau simplex + best-first branch
// & bound), retained verbatim as the correctness oracle for the revised
// engine — the same role dcsim's `scan_reference.h` plays for the indexed
// site queries. Tests and `bench_solver` cross-check every LP/MIP objective
// against this implementation; it is never used on the production path.
#pragma once

#include "vbatt/solver/branch_bound.h"
#include "vbatt/solver/model.h"
#include "vbatt/solver/simplex.h"

namespace vbatt::solver::reference {

/// Seed dense-tableau LP solve (finite upper bounds materialized as rows).
LpResult solve_lp(const Model& model);
LpResult solve_lp_bounded(const Model& model, const std::vector<double>& lb,
                          const std::vector<double>& ub);

/// Seed branch & bound (cold LP re-solve per node, most-fractional
/// branching, no warm starts, no presolve).
MipResult solve_mip(const Model& model, const MipOptions& options = {});

}  // namespace vbatt::solver::reference
