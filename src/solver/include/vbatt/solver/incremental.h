// Incremental model reuse across replans.
//
// PR 7 drove trajectory-MIP solve time down far enough that building the
// Model from scratch costs as much as solving it (BENCH_solver.json,
// 250 sites / k=4 / 168h: build_ms ~= decomposed_ms). Between consecutive
// replans the model *structure* is frozen by the planning family — the
// same variables in the same order, the same rows with the same terms —
// and only the data changes: cost vectors (forecast-driven deficit
// penalties), and the k=0 move-row rhs that pins the app's current site.
//
// ModelCache keeps one built Model per structural family key. A cache hit
// skips every allocation (variable vector, per-row term vectors, name
// strings) and the caller patches costs/rhs in place; because patch and
// scratch paths evaluate the same arithmetic in the same order, the
// patched model is bitwise-identical to a from-scratch build. That claim
// is enforced, not assumed: models_bitwise_equal() backs the
// solver.delta_model_identity fuzz property and MipSchedulerConfig::
// verify_incremental_build, and the cache is dropped whole on
// topology-epoch bumps.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "vbatt/solver/model.h"

namespace vbatt::solver {

/// One cached Model per planning-family key. Not thread-safe; intended to
/// be owned by a single scheduler instance.
class ModelCache {
 public:
  /// Structural family: callers encode whatever determines the model's
  /// shape (e.g. bucket count, candidate-site count, has-current-site).
  struct Key {
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::int64_t c = 0;
    bool operator<(const Key& other) const noexcept {
      if (a != other.a) return a < other.a;
      if (b != other.b) return b < other.b;
      return c < other.c;
    }
  };

  /// Return the cached model for `key`, building it via `build` on a
  /// miss. `*fresh` (optional) reports whether `build` ran — on a hit the
  /// caller must patch stale costs/rhs before solving.
  Model& get(const Key& key, const std::function<Model()>& build,
             bool* fresh = nullptr);

  /// Drop every cached model (topology-epoch invalidation).
  void clear() { cache_.clear(); }

  std::size_t size() const noexcept { return cache_.size(); }

 private:
  std::map<Key, Model> cache_;
};

/// True when the two models are indistinguishable to the solver at the
/// bit level: same variables (name, bounds, integrality, cost compared as
/// bit patterns) and same constraints (terms, relation, rhs bit
/// patterns). Bitwise double comparison deliberately distinguishes -0.0
/// from 0.0 and is NaN-reflexive — "would solve identically" must mean
/// byte-for-byte, not approximately.
bool models_bitwise_equal(const Model& a, const Model& b);

/// Empty string when bitwise-equal, otherwise a one-line description of
/// the first divergence (for test/fuzzer diagnostics).
std::string diff_models_bitwise(const Model& a, const Model& b);

}  // namespace vbatt::solver
