// Simplex basis bookkeeping shared by the revised primal/dual engine and
// branch & bound.
//
// A `Basis` is the cheap, copyable warm-start token: which variable is
// basic in each row plus the at-bound side of every nonbasic. Branch &
// bound snapshots one per node (a child differs from its parent by a
// single tightened bound, which leaves the parent basis dual-feasible);
// `solve_lexicographic` carries the stage-1 basis into stage 2.
//
// `BasisInverse` is the dense explicit inverse of the basis matrix,
// maintained by product-form updates and periodically refactorized. Dense
// is deliberate: the scheduling LPs stay at a few hundred rows, where an
// m x m inverse with O(m^2) updates beats sparse-LU bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

namespace vbatt::solver {

enum class VarStatus : std::uint8_t {
  at_lower,  // nonbasic at its lower bound
  at_upper,  // nonbasic at its upper bound
  basic,
};

/// Warm-start token over the standard-form variable space
/// [structural 0..n-1 | logical n..n+m-1].
struct Basis {
  std::vector<int> basic;         // per row: index of the basic variable
  std::vector<VarStatus> status;  // per variable
  bool empty() const noexcept { return basic.empty(); }

  /// Remap for a model that gained `added_vars` structural variables and
  /// `added_rows` constraints after this basis was taken: logical indices
  /// shift up, new structurals start nonbasic at lower, new rows get their
  /// logical basic. Keeps the basis valid (and, when the new rows are
  /// satisfied by the old solution, primal-feasible).
  void extend(std::size_t old_n_vars, std::size_t added_vars,
              std::size_t added_rows);
};

/// Dense explicit inverse of the m x m basis matrix.
class BasisInverse {
 public:
  /// (Re)factorize from basic columns: `cols[i]` is the sparse column of
  /// the variable basic in row i, as (row, coeff) pairs. Returns false if
  /// the matrix is numerically singular.
  bool refactor(std::size_t m,
                const std::vector<std::vector<std::pair<int, double>>>& cols);

  /// Product-form update after the variable with ftran image `alpha`
  /// (= B^-1 A_q) replaces the variable basic in `pivot_row`. `alpha` must
  /// have a nonzero pivot element. Returns false when the pivot is too
  /// small to be trustworthy (caller should refactor).
  bool update(std::size_t pivot_row, const std::vector<double>& alpha);

  /// out = B^-1 * a for a sparse column a (as (row, coeff) pairs).
  void ftran(const std::vector<std::pair<int, double>>& a,
             std::vector<double>& out) const;

  /// out = B^-1 * v for a dense vector v.
  void ftran_dense(const std::vector<double>& v,
                   std::vector<double>& out) const;

  /// out' = c' B^-1 for a dense row vector c (indexed by basis position).
  void btran(const std::vector<double>& c, std::vector<double>& out) const;

  /// Row `r` of B^-1 (for the dual ratio test).
  void row(std::size_t r, std::vector<double>& out) const;

  std::size_t size() const noexcept { return m_; }

 private:
  std::size_t m_ = 0;
  std::vector<double> inv_;  // row-major m x m
};

}  // namespace vbatt::solver
