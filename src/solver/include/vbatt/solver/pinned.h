// The pinned LP engine: the seed dense-tableau simplex re-implemented with
// sparsity-aware pivoting, kept *decision-equivalent* to the frozen oracle
// in reference.h.
//
// Why it exists: the scheduling MIPs are massively degenerate (most site
// columns cost exactly 0), so which optimal vertex a simplex returns is
// decided by tie-breaks — and the seed's tie-breaks hinge on the exact
// floating-point values its tableau accumulates. Any engine with different
// arithmetic (e.g. the bounded-variable revised simplex in revised.h)
// legally returns a *different* optimal vertex, which would change every
// schedule downstream. This engine therefore performs the seed's pivot
// sequence with bit-identical arithmetic — same formulation (explicit
// upper-bound rows, artificials), same pricing, same ratio test — and only
// skips work that provably cannot change any stored value: multiplications
// by exact zeros and divisions by an exactly-1.0 pivot. `solve_mip` uses it
// by default (MipEngine::pinned) so solutions stay byte-stable across
// solver generations; the revised engine is the opt-in fast path.
//
// test_solver_revised.cpp pins bitwise equality (status, x, objective)
// against reference::solve_lp_bounded on fuzzed models.
#pragma once

#include <vector>

#include "vbatt/solver/model.h"
#include "vbatt/solver/simplex.h"

namespace vbatt::solver {

/// Seed-equivalent bounded LP solve. Decision- and output-identical to
/// reference::solve_lp_bounded, down to the pivot count (the oracle counts
/// its pivots too, as pure instrumentation, so tests can pin equality).
LpResult solve_lp_pinned(const Model& model, const std::vector<double>& lb,
                         const std::vector<double>& ub);

}  // namespace vbatt::solver
