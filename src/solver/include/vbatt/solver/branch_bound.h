// Branch & bound MIP solver over the bundled simplex.
//
// Best-first search on the LP bound, branching on the most fractional
// integer variable via bound tightening (which the simplex exploits by
// eliminating fixed variables). The scheduling MIPs have assignment
// structure with near-integral relaxations, so trees stay small.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/solver/model.h"
#include "vbatt/solver/simplex.h"

namespace vbatt::solver {

struct MipOptions {
  /// Node budget; on exhaustion the incumbent (if any) is returned with
  /// proven_optimal = false.
  int max_nodes = 20000;
  /// Integrality tolerance.
  double int_tol = 1e-6;
  /// Stop when bound and incumbent are within this absolute gap.
  double gap_abs = 1e-6;
};

struct MipResult {
  LpStatus status = LpStatus::infeasible;
  double objective = 0.0;
  std::vector<double> x;
  int nodes_explored = 0;
  bool proven_optimal = false;
};

/// Solve `model` honoring integrality flags.
MipResult solve_mip(const Model& model, const MipOptions& options = {});

/// Lexicographic bi-objective solve: minimize the model's costs first; then
/// minimize `secondary` costs subject to primary ≤ opt * (1 + eps_rel) +
/// eps_abs. Returns the second-stage result (its `objective` is the
/// secondary objective value).
MipResult solve_lexicographic(Model model, const std::vector<double>& secondary,
                              double eps_rel = 0.01, double eps_abs = 1e-6,
                              const MipOptions& options = {});

}  // namespace vbatt::solver
