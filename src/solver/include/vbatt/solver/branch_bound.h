// Branch & bound MIP solver with two selectable engines.
//
// MipEngine::pinned (default) reproduces the seed solver's search decision
// for decision — cold pinned-tableau LP per node (see pinned.h),
// bound-only priority queue, most-fractional branching — so the returned
// solution is byte-stable against the frozen reference across solver
// generations. The scheduling MIPs are degenerate enough that "any optimal
// vertex" is not reproducible; "the seed's optimal vertex" is.
//
// MipEngine::revised is the fast path: best-first search on a
// deterministic (bound, push order) heap. One RevisedSolver is built per
// tree from the root presolve; each child re-solves from its parent's
// basis with the dual simplex (a single tightened bound leaves the parent
// basis dual-feasible), falling back to a cold primal solve if the dual
// path stalls. Branching uses pseudo-costs once the tree has produced
// observations and the most-fractional rule before that. Warm-start
// incumbents prune the heap without changing the result.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/solver/basis.h"
#include "vbatt/solver/model.h"
#include "vbatt/solver/simplex.h"

namespace vbatt::solver {

enum class MipEngine {
  /// Seed-equivalent search over the pinned LP engine: byte-stable
  /// solutions, warm starts ignored (see MipWarmStart).
  pinned,
  /// Revised simplex + dual-simplex warm-started B&B with presolve,
  /// pseudo-cost branching, and incumbent cutoffs. Objectives match the
  /// pinned engine to 1e-6; the chosen vertex may differ on degenerate
  /// (alternative-optima) models.
  revised,
  /// Stage-3 decomposition layer (decompose.h): splits the model into
  /// independent blocks (union-find over shared rows), solves stagewise
  /// chain blocks with an exact shortest-path master and the rest as
  /// separate revised B&B subproblems, and stitches the results. Any
  /// structure it cannot prove separable falls back to the monolithic
  /// revised path (MipResult::monolithic_fallback). Objectives match the
  /// monolithic engines to 1e-6.
  decomposed,
  /// Deterministic parallel B&B (parallel_bb.h): epoch-batched node
  /// expansion over util::ThreadPool with a (bound, seq)-keyed frontier
  /// and serial merge. Bit-identical (incumbent, objective, node count)
  /// at every VBATT_THREADS, including 1.
  parallel,
  /// Adaptive: resolve_engine(model) picks one of the concrete engines
  /// above from the model's shape (see its contract), then dispatches.
  /// Never resolves to pinned — callers who need byte-stability must ask
  /// for it explicitly — and the choice is a pure function of the model,
  /// independent of thread count, so results stay invariant across
  /// VBATT_THREADS for the engines that guarantee it.
  auto_select,
};

/// The engine auto_select dispatches `model` to: a deterministic, pure
/// function of model shape.
///
///   - tiny models (few vars or rows): revised — the decomposition probe
///     costs more than it saves;
///   - multi-block or chain-shaped models (unit-coefficient eq rows over
///     binaries plus short coupling rows — the trajectory family's
///     signature): decomposed, whose union-find + chain-DP master beats
///     the monolithic engines on every benchmarked cell and falls back to
///     revised when the probe was wrong;
///   - large single-block models with no chain signature: parallel, whose
///     epoch-batched tree search amortizes deep non-chain trees and stays
///     bit-identical at every thread count;
///   - everything else: revised.
///
/// BENCH_solver.json documents the shape→engine map this encodes: on the
/// trajectory sweep decomposed wins every cell, parallel loses every cell
/// (batching overhead dwarfs the near-root searches), so parallel is only
/// picked where decomposition has provably nothing to split.
MipEngine resolve_engine(const Model& model);

/// Stable lower-case name for an engine ("pinned", "revised", ...), for
/// logs and bench JSON.
const char* engine_name(MipEngine engine) noexcept;

struct MipOptions {
  /// Node budget; on exhaustion the incumbent (if any) is returned with
  /// proven_optimal = false.
  int max_nodes = 20000;
  /// Integrality tolerance.
  double int_tol = 1e-6;
  /// Stop when bound and incumbent are within this absolute gap.
  double gap_abs = 1e-6;
  /// Pivot budget per node LP (revised engine); < 0 picks an automatic
  /// budget scaled to the model size. A child LP that exhausts it is
  /// dropped and the result is marked not proven optimal, so degenerate
  /// models surface as failed or unproven solves instead of hangs. The
  /// pinned engine keeps the seed's own fixed size-scaled budget so its
  /// solves stay decision-identical (they are equally hang-proof).
  std::int64_t max_lp_pivots = -1;
  /// Which search/LP engine to use. Defaults to the byte-stable pinned
  /// engine; opt into MipEngine::revised for speed when exact vertex
  /// reproducibility is not required.
  MipEngine engine = MipEngine::pinned;
};

struct MipWarmStart {
  /// Candidate integral solution in model variable space, e.g. the
  /// previous replanning round's schedule.
  ///
  /// Revised engine: validated against bounds, integrality, and every
  /// constraint; a valid vector acts purely as a static cutoff that keeps
  /// provably useless nodes out of the open heap. solve_mip returns
  /// exactly what the cold solve returns (this vector is never the
  /// returned solution), so warm and cold runs are bit-identical.
  ///
  /// Pinned engine: ignored. Pruning the seed's bound-only priority queue
  /// would perturb its tie order among equal-bound nodes and change which
  /// of several equally-optimal incumbents is found first, breaking
  /// byte-stability.
  std::vector<double> x;
};

/// Cross-solve warm-start state: the root basis (and its row duals) of a
/// previous solve of a structurally identical model, persisted by callers
/// between replanning rounds (MipScheduler keeps one per app).
///
/// Consumed and refreshed in place by solve_mip for the revised-family
/// engines: on entry a hint whose shape matches the current presolve
/// (same variable count, same surviving row subset) primes the root LP
/// with a primal warm start, skipping phase 1; on an optimal root exit
/// the hint is overwritten with the new root basis and duals. A hint
/// that no longer matches is ignored and replaced — never an error.
/// The pinned engine ignores hints entirely (byte-stability).
///
/// `epoch` is owned by the caller: MipScheduler stamps the fault
/// subsystem's topology epoch at capture and discards hints whose epoch
/// predates a topology-changing fault (server failure, link flap).
struct MipBasisHint {
  Basis basis;
  /// Row duals (simplex multipliers) at `basis`, in presolve row order.
  std::vector<double> duals;
  /// Presolve row subset `basis` is valid for (original row indices).
  std::vector<int> rows;
  std::size_t n_vars = 0;
  std::uint64_t epoch = 0;
  bool empty() const noexcept { return basis.empty(); }
  void clear() {
    basis = Basis{};
    duals.clear();
    rows.clear();
    n_vars = 0;
    epoch = 0;
  }
};

struct MipResult {
  LpStatus status = LpStatus::infeasible;
  double objective = 0.0;
  std::vector<double> x;
  int nodes_explored = 0;
  /// Simplex pivots summed over every node LP (incl. the root).
  std::int64_t pivots = 0;
  bool proven_optimal = false;

  // --- stage-3 observability (zero for the pinned/revised engines
  // unless noted) ---
  /// Independent blocks the decomposition layer detected (>= 1 when the
  /// decomposed engine actually decomposed; 0 on fallback).
  int blocks = 0;
  /// Blocks solved by the exact stagewise-chain (shortest-path) master.
  int chain_blocks = 0;
  /// Master stitch iterations (decomposed engine).
  int master_iterations = 0;
  /// Decomposed engine could not prove separable structure and solved
  /// the model monolithically with the revised engine instead.
  bool monolithic_fallback = false;
  /// The root LP was primed from a valid MipBasisHint.
  bool used_basis_hint = false;
};

/// Solve `model` honoring integrality flags. `hint` (optional, in-out)
/// carries a cross-solve basis warm start; see MipBasisHint.
MipResult solve_mip(const Model& model, const MipOptions& options = {},
                    const MipWarmStart* warm = nullptr,
                    MipBasisHint* hint = nullptr);

/// Lexicographic bi-objective solve: minimize the model's costs first; then
/// minimize `secondary` costs subject to primary ≤ opt * (1 + eps_rel) +
/// eps_abs. Returns the second-stage result (its `objective` is the
/// secondary objective value).
///
/// Works in place: stage 2 appends the primary-cap row and swaps the
/// costs, then restores `model` exactly before returning (no model copy).
/// With the revised engine, stage 2 warm-starts from stage 1: its optimum
/// seeds the incumbent cutoff and its root basis primes the stage-2 root
/// LP. The pinned engine re-solves stage 2 cold, matching the seed.
/// `warm` seeds stage 1, same semantics as solve_mip.
/// `hint` seeds stage 1, same semantics as solve_mip; the stage-2 tree
/// (with its extra cap row) never touches it.
MipResult solve_lexicographic(Model& model,
                              const std::vector<double>& secondary,
                              double eps_rel = 0.01, double eps_abs = 1e-6,
                              const MipOptions& options = {},
                              const MipWarmStart* warm = nullptr,
                              MipBasisHint* hint = nullptr);

/// N-stage lexicographic solve. Stage 0 minimizes the model's own costs;
/// stage j > 0 minimizes `stages[j-1]` subject to every earlier stage's
/// objective staying within its cap (value + |value| * eps_rel + eps_abs).
/// Returns the final stage's result (`objective` is the last stage's
/// value); `stage_values` (optional) receives each stage's achieved
/// objective, stage 0 first.
///
/// Works in place like solve_lexicographic: each stage appends one cap row
/// and swaps the costs; all rows are popped and the original costs
/// restored exactly before returning. A stage that fails to solve keeps
/// the incumbent solution evaluated under the new costs
/// (proven_optimal=false) and still caps it for later stages. `warm`
/// seeds stage 0 only; later stages warm-start from the incumbent.
MipResult solve_lexicographic_stages(
    Model& model, const std::vector<std::vector<double>>& stages,
    double eps_rel = 0.01, double eps_abs = 1e-6,
    const MipOptions& options = {}, const MipWarmStart* warm = nullptr,
    std::vector<double>* stage_values = nullptr);

}  // namespace vbatt::solver
