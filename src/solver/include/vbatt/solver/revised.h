// Revised simplex with implicit variable bounds.
//
// The engine behind `solve_lp` / `solve_mip`. Differences from the frozen
// seed tableau solver (`reference.h`) that buy the speed:
//
//  * Bounded-variable pivoting: finite upper bounds are handled by the
//    ratio test (nonbasic-at-upper states and bound flips), not
//    materialized as extra `x <= u` rows. The scheduling LPs are roughly
//    half upper-bound rows, so this halves m outright.
//  * Revised form: only the m x m basis inverse is maintained (dense, with
//    product-form updates and periodic refactorization); the constraint
//    matrix is stored once as sparse columns and never rewritten. A pivot
//    costs O(m^2 + nnz), not O(m_tab * n_tab) tableau sweeps.
//  * A dual simplex sharing the same basis state, so branch & bound can
//    re-solve a child from the parent basis in a handful of pivots (the
//    child differs by one tightened bound, which leaves the parent basis
//    dual-feasible).
//
// One RevisedSolver is built per model (per branch & bound tree) and
// re-solved under many bound sets; constructing it is the only pass over
// the model's constraints.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/solver/basis.h"
#include "vbatt/solver/model.h"
#include "vbatt/solver/simplex.h"

namespace vbatt::solver {

class RevisedSolver {
 public:
  /// Builds the standard form: one logical (slack) variable per row with
  /// bounds [0,inf) for <=, (-inf,0] for >=, [0,0] for =. Structural
  /// columns are stored sparse, column-major. `rows` selects the surviving
  /// constraints (presolve output); empty + `all_rows` -> every row.
  RevisedSolver(const Model& model, const std::vector<int>& rows);
  explicit RevisedSolver(const Model& model);

  /// Primal solve under the given structural bounds. `basis` is in-out:
  /// empty -> all-logical start (phase 1 as needed); non-empty -> warm
  /// start from it (used for cost re-solves, e.g. lexicographic stage 2).
  /// On return (optimal) holds the final basis.
  LpStatus solve_primal(const std::vector<double>& lb,
                        const std::vector<double>& ub, Basis& basis,
                        std::int64_t max_pivots);

  /// Dual solve from a dual-feasible warm basis after bound tightening.
  /// Returns iteration_limit when the warm path stalls; callers should
  /// retry with solve_primal and a fresh basis.
  LpStatus solve_dual(const std::vector<double>& lb,
                      const std::vector<double>& ub, Basis& basis,
                      std::int64_t max_pivots);

  /// Structural solution / objective of the last optimal solve.
  const std::vector<double>& x() const noexcept { return x_out_; }
  double objective() const noexcept { return objective_; }
  /// Pivots spent in the last solve call.
  std::int64_t pivots() const noexcept { return pivots_; }

  /// Override the structural cost vector (size n). Used by lexicographic
  /// stage 2; pass the model's own costs back to restore.
  void set_costs(const std::vector<double>& costs);

  /// Row duals (simplex multipliers y^T = c_B^T B^-1) for `basis`,
  /// refactorized from scratch so it works for any basis this solver has
  /// produced, not just the most recent one. `out` is resized to
  /// n_rows(). Returns false on a size mismatch or singular basis.
  bool compute_duals(const Basis& basis, std::vector<double>& out);

  std::size_t n_rows() const noexcept { return m_; }
  std::size_t n_structural() const noexcept { return n_; }

 private:
  // Standard-form data (fixed per model).
  std::size_t n_ = 0;  // structural variables
  std::size_t m_ = 0;  // rows
  std::vector<std::vector<std::pair<int, double>>> cols_;  // n+m sparse cols
  std::vector<double> rhs_;
  std::vector<double> cost_;        // n+m (logical costs are 0)
  std::vector<double> logical_lo_;  // m
  std::vector<double> logical_up_;  // m

  // Per-solve state.
  std::vector<double> lo_;  // n+m active bounds
  std::vector<double> up_;
  BasisInverse binv_;
  std::vector<double> xb_;  // values of basic variables, by row
  std::vector<double> x_out_;
  double objective_ = 0.0;
  std::int64_t pivots_ = 0;

  // Scratch buffers reused across iterations.
  std::vector<double> y_;
  std::vector<double> alpha_;
  std::vector<double> rho_;
  std::vector<double> cb_;

  void load_bounds(const std::vector<double>& lb,
                   const std::vector<double>& ub);
  void logical_basis(Basis& basis) const;
  bool factorize(const Basis& basis);
  void compute_xb(const Basis& basis);
  double nonbasic_value(const Basis& basis, std::size_t j) const;
  void extract(const Basis& basis);
  /// Primal phase 2 (and composite phase 1 when `phase1` is set) main loop.
  LpStatus primal_loop(Basis& basis, bool phase1, std::int64_t max_pivots);
};

}  // namespace vbatt::solver
