// Deterministic parallel branch & bound behind MipEngine::parallel.
//
// The same epoch-barrier discipline that made the sharded fleet engine
// bit-identical in parallel, applied to the B&B tree: instead of popping
// one node at a time, the search pops a fixed-size batch (kBatch = 8,
// independent of thread count) of non-prunable nodes from the
// deterministic (bound, seq) best-first frontier, solves their LP
// relaxations concurrently on util::ThreadPool — item i always uses
// solver copy i, so results are a pure function of the node, never of
// thread scheduling — and then merges the results serially in batch
// order: pseudo-cost updates, incumbent updates, and child pushes (with
// a serial seq counter) all happen on the calling thread. Batch
// composition depends only on the frontier and incumbent at the epoch
// barrier, both of which evolve identically at every thread count, so
// the incumbent, objective, and node count are bit-identical at every
// VBATT_THREADS, including 1.
//
// Relative to the serial revised engine the tradeoff is speculative
// work: a batch may LP-solve nodes a one-at-a-time search would have
// pruned with a fresher incumbent (they are still discarded at merge).
// Node counts therefore differ from MipEngine::revised, but objectives
// match to 1e-6 — `solver.parallel_bb_invariance` fuzzes the
// thread-count contract and the bench cross-checks the objective.
#pragma once

#include "vbatt/solver/branch_bound.h"
#include "vbatt/solver/model.h"

namespace vbatt::util {
class ThreadPool;
}

namespace vbatt::solver {

/// Entry point dispatched by solve_mip for MipEngine::parallel. `warm`
/// and `hint` have solve_mip semantics. `pool` is injectable for tests
/// (serial-vs-parallel bit-identity); nullptr uses ThreadPool::shared().
MipResult solve_mip_parallel(const Model& model,
                             const MipOptions& options = {},
                             const MipWarmStart* warm = nullptr,
                             MipBasisHint* hint = nullptr,
                             util::ThreadPool* pool = nullptr);

}  // namespace vbatt::solver
