// Presolve for the scheduling LPs/MIPs: cheap reductions applied once per
// solve (and once per branch & bound tree, at the root bounds) before the
// revised simplex sees the model.
//
// Rules (all solution-set preserving; postsolve is pure value fill-in):
//  * fixed-variable substitution  — ub - lb <= tol folds the variable into
//    the row rhs (branch & bound children fix many binaries, so the seed
//    engine already relied on this; presolve extends it to the rules
//    below),
//  * empty-row elimination        — rows with no surviving terms are
//    feasibility-checked and dropped,
//  * singleton-row elimination    — a*x {<=,>=,=} b tightens x's bound and
//    drops the row,
//  * bound tightening             — per-row activity bounds imply tighter
//    variable bounds; integer bounds are rounded. Runs to a small
//    fixpoint.
//
// Tightening can fix variables, which can empty rows, which is why the
// rules iterate. A model can presolve away entirely (`solved`), in which
// case `x` already holds the unique solution.
#pragma once

#include <vector>

#include "vbatt/solver/model.h"

namespace vbatt::solver {

struct PresolveResult {
  /// Presolve proved the box/rows inconsistent.
  bool infeasible = false;
  /// Every variable got fixed and every row discharged; `x` is the answer.
  bool solved = false;

  /// Reduced model (original variable indices are kept — eliminated
  /// variables become fixed [v,v] boxes in `lb`/`ub`, so no index
  /// remapping is needed downstream).
  std::vector<double> lb;
  std::vector<double> ub;
  /// Rows that survived, as indices into model.constraints().
  std::vector<int> rows;

  /// Values for eliminated variables (and lower bounds for the rest);
  /// postsolve overwrites kept entries with the solver's solution.
  std::vector<double> x;
};

/// Run the reductions on (model, lb, ub). `integrality` rounds tightened
/// bounds of integer-flagged variables (branch & bound); plain LP solves
/// pass false.
PresolveResult presolve(const Model& model, const std::vector<double>& lb,
                        const std::vector<double>& ub, bool integrality);

}  // namespace vbatt::solver
