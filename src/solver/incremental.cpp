#include "vbatt/solver/incremental.h"

#include <cstring>
#include <sstream>

namespace vbatt::solver {

namespace {

std::uint64_t bits_of(double x) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

bool same_bits(double x, double y) { return bits_of(x) == bits_of(y); }

}  // namespace

Model& ModelCache::get(const Key& key, const std::function<Model()>& build,
                       bool* fresh) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, build()).first;
    if (fresh != nullptr) *fresh = true;
  } else if (fresh != nullptr) {
    *fresh = false;
  }
  return it->second;
}

bool models_bitwise_equal(const Model& a, const Model& b) {
  return diff_models_bitwise(a, b).empty();
}

std::string diff_models_bitwise(const Model& a, const Model& b) {
  std::ostringstream out;
  if (a.n_vars() != b.n_vars()) {
    out << "n_vars " << a.n_vars() << " != " << b.n_vars();
    return out.str();
  }
  if (a.n_constraints() != b.n_constraints()) {
    out << "n_constraints " << a.n_constraints() << " != "
        << b.n_constraints();
    return out.str();
  }
  for (std::size_t i = 0; i < a.n_vars(); ++i) {
    const Variable& va = a.vars()[i];
    const Variable& vb = b.vars()[i];
    if (va.name != vb.name) {
      out << "var " << i << " name '" << va.name << "' != '" << vb.name
          << "'";
      return out.str();
    }
    if (!same_bits(va.cost, vb.cost)) {
      out << "var " << i << " cost bits " << va.cost << " != " << vb.cost;
      return out.str();
    }
    if (!same_bits(va.lb, vb.lb) || !same_bits(va.ub, vb.ub)) {
      out << "var " << i << " bounds [" << va.lb << "," << va.ub << "] != ["
          << vb.lb << "," << vb.ub << "]";
      return out.str();
    }
    if (va.integer != vb.integer) {
      out << "var " << i << " integrality " << va.integer << " != "
          << vb.integer;
      return out.str();
    }
  }
  for (std::size_t r = 0; r < a.n_constraints(); ++r) {
    const Constraint& ca = a.constraints()[r];
    const Constraint& cb = b.constraints()[r];
    if (ca.rel != cb.rel) {
      out << "row " << r << " relation differs";
      return out.str();
    }
    if (!same_bits(ca.rhs, cb.rhs)) {
      out << "row " << r << " rhs bits " << ca.rhs << " != " << cb.rhs;
      return out.str();
    }
    if (ca.terms.size() != cb.terms.size()) {
      out << "row " << r << " term count " << ca.terms.size() << " != "
          << cb.terms.size();
      return out.str();
    }
    for (std::size_t t = 0; t < ca.terms.size(); ++t) {
      if (ca.terms[t].first != cb.terms[t].first ||
          !same_bits(ca.terms[t].second, cb.terms[t].second)) {
        out << "row " << r << " term " << t << " (" << ca.terms[t].first
            << "," << ca.terms[t].second << ") != (" << cb.terms[t].first
            << "," << cb.terms[t].second << ")";
        return out.str();
      }
    }
  }
  return {};
}

}  // namespace vbatt::solver
