#include "vbatt/solver/parallel_bb.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bb_detail.h"
#include "vbatt/solver/basis.h"
#include "vbatt/solver/presolve.h"
#include "vbatt/solver/revised.h"
#include "vbatt/util/thread_pool.h"

namespace vbatt::solver {

namespace {

using detail::kBoundTol;
using detail::Node;
using detail::NodeOrder;

/// Nodes LP-solved per epoch. Fixed — NOT derived from the thread count —
/// so batch composition (and with it the whole search) is identical at
/// every VBATT_THREADS. 8 saturates small hosts without over-speculating.
constexpr std::size_t kBatch = 8;

/// Explored-node count below which epochs hold a single node and skip the
/// pool entirely. Near the root, best-first order is at its most
/// informative and most searches finish outright — batching there only
/// speculates on nodes the serial search would have pruned and pays a
/// dispatch barrier for each. The gate reads result.nodes_explored, which
/// is itself bit-identical at every VBATT_THREADS, so batching engages at
/// the same point of the search regardless of thread count.
constexpr int kBatchNodeThreshold = 64;

}  // namespace

MipResult solve_mip_parallel(const Model& model, const MipOptions& options,
                             const MipWarmStart* warm, MipBasisHint* hint,
                             util::ThreadPool* pool) {
  if (pool == nullptr) pool = &util::ThreadPool::shared();
  MipResult result;
  const std::size_t n = model.n_vars();

  std::vector<double> lb0;
  std::vector<double> ub0;
  lb0.reserve(n);
  ub0.reserve(n);
  for (const Variable& v : model.vars()) {
    if (!std::isfinite(v.lb)) {
      throw std::invalid_argument{"solve_mip: -inf lower bound"};
    }
    lb0.push_back(v.lb);
    ub0.push_back(v.ub);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!(lb0[i] <= ub0[i])) {
      ++result.nodes_explored;
      return result;  // infeasible box
    }
  }

  const PresolveResult pre = presolve(model, lb0, ub0, /*integrality=*/true);
  if (pre.infeasible) {
    ++result.nodes_explored;
    result.status = LpStatus::infeasible;
    return result;
  }

  const bool box_only = pre.rows.empty();
  // One solver copy per batch slot: item i of every epoch uses solver i,
  // a thread-independent assignment, so each copy is touched by exactly
  // one item per epoch and the LP outcome is a pure function of the node.
  std::vector<RevisedSolver> solvers;
  if (!box_only) {
    solvers.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) solvers.emplace_back(model, pre.rows);
  }
  const std::int64_t lp_budget =
      options.max_lp_pivots >= 0
          ? options.max_lp_pivots
          : 2000 + 60 * static_cast<std::int64_t>(pre.rows.size() + n);

  // Solve one node's LP on a given solver copy. Identical semantics to
  // the serial revised engine's solve_node.
  const auto solve_node = [&](RevisedSolver* solver,
                              const std::vector<double>& nlb,
                              const std::vector<double>& nub, Basis& basis,
                              bool allow_dual) -> LpResult {
    LpResult r;
    for (std::size_t j = 0; j < n; ++j) {
      if (nlb[j] > nub[j] + kBoundTol) return r;  // infeasible box
    }
    if (box_only) {
      r.x = nlb;
      for (std::size_t j = 0; j < n; ++j) {
        if (nub[j] - nlb[j] <= kBoundTol) continue;
        if (model.vars()[j].cost < 0.0) {
          if (!std::isfinite(nub[j])) {
            r.status = LpStatus::unbounded;
            r.x.clear();
            return r;
          }
          r.x[j] = nub[j];
        }
      }
      r.status = LpStatus::optimal;
      r.objective = model.objective_of(r.x);
      return r;
    }
    LpStatus s;
    if (allow_dual && !basis.empty()) {
      s = solver->solve_dual(nlb, nub, basis, lp_budget);
      r.pivots += solver->pivots();
      if (s == LpStatus::iteration_limit) {
        basis = Basis{};
        s = solver->solve_primal(nlb, nub, basis, lp_budget);
        r.pivots += solver->pivots();
      }
    } else {
      s = solver->solve_primal(nlb, nub, basis, lp_budget);
      r.pivots += solver->pivots();
    }
    r.status = s;
    if (s == LpStatus::optimal) {
      r.x = solver->x();
      r.objective = model.objective_of(r.x);
    }
    return r;
  };

  Basis root_basis;
  if (hint && !hint->basis.empty() && hint->n_vars == n &&
      hint->rows == pre.rows) {
    root_basis = hint->basis;
    result.used_basis_hint = true;
  }
  RevisedSolver* root_solver = box_only ? nullptr : &solvers[0];
  const LpResult root =
      solve_node(root_solver, pre.lb, pre.ub, root_basis,
                 /*allow_dual=*/false);
  result.pivots += root.pivots;
  ++result.nodes_explored;
  if (root.status != LpStatus::optimal) {
    result.status = root.status;
    return result;
  }
  if (hint) {
    if (box_only) {
      hint->clear();
    } else {
      hint->basis = root_basis;
      hint->rows = pre.rows;
      hint->n_vars = n;
      if (!solvers[0].compute_duals(root_basis, hint->duals)) {
        hint->duals.clear();
      }
    }
  }

  bool have_cutoff = false;
  double cutoff = 0.0;
  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  std::uint64_t next_seq = 0;
  const auto push_child = [&](Node&& node) {
    const auto bv = static_cast<std::size_t>(node.branch_var);
    if (node.branch_var >= 0 && node.lb[bv] > node.ub[bv]) return;
    if (have_cutoff && node.bound > cutoff + options.gap_abs) return;
    node.seq = next_seq++;
    open.push(std::move(node));
  };

  if (warm) {
    const std::optional<double> wc =
        detail::warm_cutoff(model, warm->x, pre.lb, pre.ub, options.int_tol);
    if (wc) {
      have_cutoff = true;
      cutoff = *wc;
    }
  }

  detail::PseudoCostTable pc(n);

  bool have_incumbent = false;
  double incumbent = 0.0;
  std::vector<double> incumbent_x;
  bool exhausted_cleanly = true;

  // Expand the root in place (see the serial engine).
  {
    const int branch = detail::most_fractional(model, root.x, options.int_tol);
    if (branch < 0) {
      have_incumbent = true;
      incumbent = root.objective;
      incumbent_x = root.x;
    } else {
      const auto bi = static_cast<std::size_t>(branch);
      const double value = root.x[bi];
      const double frac = value - std::floor(value);
      Node down{root.objective, 0,     pre.lb, pre.ub, root_basis,
                branch,         false, frac};
      down.ub[bi] = std::floor(value);
      push_child(std::move(down));
      Node up{root.objective, 0,    pre.lb, pre.ub, std::move(root_basis),
              branch,         true, frac};
      up.lb[bi] = std::ceil(value);
      push_child(std::move(up));
    }
  }

  std::vector<Node> batch;
  std::vector<LpResult> lps;
  batch.reserve(kBatch);
  while (!open.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      exhausted_cleanly = false;
      break;
    }

    // --- epoch start: assemble a batch of non-prunable nodes ---
    batch.clear();
    const std::size_t budget_left = static_cast<std::size_t>(
        options.max_nodes - result.nodes_explored);
    const std::size_t epoch_width =
        result.nodes_explored < kBatchNodeThreshold ? 1 : kBatch;
    while (batch.size() < std::min(epoch_width, budget_left) &&
           !open.empty()) {
      Node nd = open.top();
      open.pop();
      if (have_incumbent && nd.bound >= incumbent - options.gap_abs) {
        continue;  // cannot improve: discarded unsolved, same as serial
      }
      batch.push_back(std::move(nd));
    }
    if (batch.empty()) continue;  // heap drained of prunables

    // --- fan the LP relaxations across the pool (barrier) ---
    lps.assign(batch.size(), LpResult{});
    const auto run_items = [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        lps[i] = solve_node(box_only ? nullptr : &solvers[i], batch[i].lb,
                            batch[i].ub, batch[i].basis,
                            /*allow_dual=*/true);
      }
    };
    if (box_only || pool->size() == 0 || batch.size() == 1) {
      run_items(0, batch.size());
    } else {
      pool->parallel_for(batch.size(), run_items);
    }

    // --- serial merge in batch order ---
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Node& node = batch[i];
      LpResult& lp = lps[i];
      result.pivots += lp.pivots;
      ++result.nodes_explored;
      if (lp.status == LpStatus::unbounded) {
        result.status = LpStatus::unbounded;
        return result;
      }
      if (lp.status == LpStatus::iteration_limit) {
        exhausted_cleanly = false;
        continue;
      }
      if (lp.status != LpStatus::optimal) continue;  // pruned (infeasible)

      if (node.branch_var >= 0) {
        pc.observe(static_cast<std::size_t>(node.branch_var), node.went_up,
                   node.frac, lp.objective - node.bound);
      }
      if (have_incumbent && lp.objective >= incumbent - options.gap_abs) {
        continue;  // superseded by an earlier item of this very batch
      }
      const int branch = pc.select(model, lp.x, options.int_tol);
      if (branch < 0) {
        have_incumbent = true;
        incumbent = lp.objective;
        incumbent_x = std::move(lp.x);
        continue;
      }
      const auto bi = static_cast<std::size_t>(branch);
      const double value = lp.x[bi];
      const double frac = value - std::floor(value);

      Node down{lp.objective, 0,     node.lb, node.ub, node.basis,
                branch,       false, frac};
      down.ub[bi] = std::floor(value);
      push_child(std::move(down));

      Node up{lp.objective,       0,    std::move(node.lb),
              std::move(node.ub), std::move(node.basis),
              branch,             true, frac};
      up.lb[bi] = std::ceil(value);
      push_child(std::move(up));
    }
  }

  if (!have_incumbent) {
    result.status =
        exhausted_cleanly ? LpStatus::infeasible : LpStatus::iteration_limit;
    return result;
  }
  result.status = LpStatus::optimal;
  result.objective = incumbent;
  result.x = std::move(incumbent_x);
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    if (model.vars()[i].integer) {
      result.x[i] = std::round(result.x[i]);
    }
  }
  result.proven_optimal = exhausted_cleanly;
  return result;
}

}  // namespace vbatt::solver
