#include "vbatt/solver/branch_bound.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace vbatt::solver {

namespace {

struct Node {
  double bound = 0.0;  // LP objective of the parent relaxation
  std::vector<double> lb;
  std::vector<double> ub;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    return a.bound > b.bound;  // min-heap on bound: best-first
  }
};

/// Index of the most fractional integer variable, or -1 if all integral.
int most_fractional(const Model& model, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_dist = tol;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!model.vars()[i].integer) continue;
    const double frac = x[i] - std::floor(x[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

MipResult solve_mip(const Model& model, const MipOptions& options) {
  MipResult result;

  std::vector<double> lb0;
  std::vector<double> ub0;
  for (const Variable& v : model.vars()) {
    lb0.push_back(v.lb);
    ub0.push_back(v.ub);
  }

  const LpResult root = solve_lp_bounded(model, lb0, ub0);
  ++result.nodes_explored;
  if (root.status != LpStatus::optimal) {
    result.status = root.status;
    return result;
  }

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  open.push(Node{root.objective, lb0, ub0});

  bool have_incumbent = false;
  double incumbent = 0.0;
  std::vector<double> incumbent_x;
  bool exhausted_cleanly = true;

  while (!open.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      exhausted_cleanly = false;
      break;
    }
    Node node = open.top();
    open.pop();
    if (have_incumbent && node.bound >= incumbent - options.gap_abs) {
      continue;  // cannot improve
    }
    const LpResult lp = solve_lp_bounded(model, node.lb, node.ub);
    ++result.nodes_explored;
    if (lp.status == LpStatus::unbounded) {
      result.status = LpStatus::unbounded;
      return result;
    }
    if (lp.status != LpStatus::optimal) continue;  // pruned (infeasible)
    if (have_incumbent && lp.objective >= incumbent - options.gap_abs) {
      continue;
    }
    const int branch = most_fractional(model, lp.x, options.int_tol);
    if (branch < 0) {
      // Integral: new incumbent.
      have_incumbent = true;
      incumbent = lp.objective;
      incumbent_x = lp.x;
      continue;
    }
    const auto bi = static_cast<std::size_t>(branch);
    const double value = lp.x[bi];

    Node down = node;
    down.bound = lp.objective;
    down.ub[bi] = std::floor(value);
    if (down.ub[bi] >= down.lb[bi]) open.push(std::move(down));

    Node up = std::move(node);
    up.bound = lp.objective;
    up.lb[bi] = std::ceil(value);
    if (up.lb[bi] <= up.ub[bi]) open.push(std::move(up));
  }

  if (!have_incumbent) {
    result.status =
        exhausted_cleanly ? LpStatus::infeasible : LpStatus::iteration_limit;
    return result;
  }
  result.status = LpStatus::optimal;
  result.objective = incumbent;
  result.x = std::move(incumbent_x);
  // Snap near-integral values exactly.
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    if (model.vars()[i].integer) {
      result.x[i] = std::round(result.x[i]);
    }
  }
  result.proven_optimal = exhausted_cleanly;
  return result;
}

MipResult solve_lexicographic(Model model, const std::vector<double>& secondary,
                              double eps_rel, double eps_abs,
                              const MipOptions& options) {
  if (secondary.size() != model.n_vars()) {
    throw std::invalid_argument{"solve_lexicographic: cost size mismatch"};
  }
  const MipResult first = solve_mip(model, options);
  if (first.status != LpStatus::optimal) return first;

  // Bound the primary objective, then swap in the secondary costs.
  std::vector<std::pair<int, double>> terms;
  for (std::size_t i = 0; i < model.n_vars(); ++i) {
    const double c = model.vars()[i].cost;
    if (c != 0.0) terms.emplace_back(static_cast<int>(i), c);
  }
  const double cap = first.objective +
                     std::abs(first.objective) * eps_rel + eps_abs;
  model.add_constraint(std::move(terms), Rel::le, cap);
  for (std::size_t i = 0; i < model.n_vars(); ++i) {
    model.vars()[i].cost = secondary[i];
  }
  MipResult second = solve_mip(model, options);
  if (second.status != LpStatus::optimal) {
    // Numerical edge: fall back to the stage-1 solution evaluated under
    // the secondary costs rather than failing the caller.
    second = first;
    double obj = 0.0;
    for (std::size_t i = 0; i < secondary.size(); ++i) {
      obj += secondary[i] * first.x[i];
    }
    second.objective = obj;
    second.proven_optimal = false;
    second.status = LpStatus::optimal;
  }
  return second;
}

}  // namespace vbatt::solver
