#include "vbatt/solver/branch_bound.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <queue>
#include <stdexcept>
#include <utility>

#include "bb_detail.h"
#include "vbatt/solver/basis.h"
#include "vbatt/solver/decompose.h"
#include "vbatt/solver/parallel_bb.h"
#include "vbatt/solver/pinned.h"
#include "vbatt/solver/presolve.h"
#include "vbatt/solver/revised.h"

namespace vbatt::solver {

namespace {

using detail::kBoundTol;
using detail::Node;
using detail::NodeOrder;

MipResult solve_mip_impl(const Model& model, const MipOptions& options,
                         const MipWarmStart* warm, MipBasisHint* hint) {
  MipResult result;
  const std::size_t n = model.n_vars();

  std::vector<double> lb0;
  std::vector<double> ub0;
  lb0.reserve(n);
  ub0.reserve(n);
  for (const Variable& v : model.vars()) {
    if (!std::isfinite(v.lb)) {
      throw std::invalid_argument{"solve_mip: -inf lower bound"};
    }
    lb0.push_back(v.lb);
    ub0.push_back(v.ub);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!(lb0[i] <= ub0[i])) {
      ++result.nodes_explored;
      return result;  // infeasible box
    }
  }

  const PresolveResult pre =
      presolve(model, lb0, ub0, /*integrality=*/true);
  if (pre.infeasible) {
    ++result.nodes_explored;
    result.status = LpStatus::infeasible;
    return result;
  }

  const bool box_only = pre.rows.empty();
  std::optional<RevisedSolver> solver;
  if (!box_only) solver.emplace(model, pre.rows);
  const std::int64_t lp_budget =
      options.max_lp_pivots >= 0
          ? options.max_lp_pivots
          : 2000 + 60 * static_cast<std::int64_t>(pre.rows.size() + n);

  // Solve one node's LP. `basis` is in-out: on entry the parent's final
  // basis (dual-simplex warm start when `allow_dual`), on optimal exit this
  // node's final basis, handed down to its children.
  const auto solve_node = [&](const std::vector<double>& nlb,
                              const std::vector<double>& nub, Basis& basis,
                              bool allow_dual) -> LpResult {
    LpResult r;
    for (std::size_t j = 0; j < n; ++j) {
      if (nlb[j] > nub[j] + kBoundTol) return r;  // infeasible box
    }
    if (box_only) {
      // Bound-constrained only: each free variable sits at whichever bound
      // its cost prefers (lower on ties, matching the seed's vertex).
      r.x = nlb;
      for (std::size_t j = 0; j < n; ++j) {
        if (nub[j] - nlb[j] <= kBoundTol) continue;
        if (model.vars()[j].cost < 0.0) {
          if (!std::isfinite(nub[j])) {
            r.status = LpStatus::unbounded;
            r.x.clear();
            return r;
          }
          r.x[j] = nub[j];
        }
      }
      r.status = LpStatus::optimal;
      r.objective = model.objective_of(r.x);
      return r;
    }
    LpStatus s;
    if (allow_dual && !basis.empty()) {
      s = solver->solve_dual(nlb, nub, basis, lp_budget);
      r.pivots += solver->pivots();
      if (s == LpStatus::iteration_limit) {
        // Warm path stalled: cold primal restart.
        basis = Basis{};
        s = solver->solve_primal(nlb, nub, basis, lp_budget);
        r.pivots += solver->pivots();
      }
    } else {
      s = solver->solve_primal(nlb, nub, basis, lp_budget);
      r.pivots += solver->pivots();
    }
    r.status = s;
    if (s == LpStatus::optimal) {
      r.x = solver->x();
      r.objective = model.objective_of(r.x);
    }
    return r;
  };

  Basis root_basis;
  if (hint && !hint->basis.empty() && hint->n_vars == n &&
      hint->rows == pre.rows) {
    // Primal warm start from the previous solve's root basis (a previous
    // lexicographic stage, or — via MipBasisHint persisted by the caller
    // — the previous replanning round's structurally identical model).
    root_basis = hint->basis;
    result.used_basis_hint = true;
  }
  const LpResult root =
      solve_node(pre.lb, pre.ub, root_basis, /*allow_dual=*/false);
  result.pivots += root.pivots;
  ++result.nodes_explored;
  if (root.status != LpStatus::optimal) {
    result.status = root.status;
    return result;
  }
  if (hint) {
    if (box_only) {
      hint->clear();  // no basis exists; don't leave a stale one behind
    } else {
      hint->basis = root_basis;
      hint->rows = pre.rows;
      hint->n_vars = n;
      if (!solver->compute_duals(root_basis, hint->duals)) {
        hint->duals.clear();
      }
    }
  }

  bool have_cutoff = false;
  double cutoff = 0.0;
  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  std::uint64_t next_seq = 0;
  const auto push_child = [&](Node&& node) {
    const auto bv = static_cast<std::size_t>(node.branch_var);
    if (node.branch_var >= 0 && node.lb[bv] > node.ub[bv]) return;
    if (have_cutoff && node.bound > cutoff + options.gap_abs) return;
    node.seq = next_seq++;
    open.push(std::move(node));
  };

  // Validate the warm solution; a valid one becomes a static cutoff that
  // keeps nodes whose bound already exceeds it out of the heap. Such nodes
  // are provably never LP-solved by the cold search either (best-first
  // reaches the optimum through strictly lower bounds first), so warm and
  // cold runs explore identical node sequences and return identical
  // results — the cutoff only bounds heap growth and drain work.
  if (warm) {
    const std::optional<double> wc =
        detail::warm_cutoff(model, warm->x, pre.lb, pre.ub, options.int_tol);
    if (wc) {
      have_cutoff = true;
      cutoff = *wc;
    }
  }

  detail::PseudoCostTable pc(n);

  bool have_incumbent = false;
  double incumbent = 0.0;
  std::vector<double> incumbent_x;
  bool exhausted_cleanly = true;

  // Expand the root in place rather than pushing it and re-solving it as
  // the first popped node (the seed does the latter; the root basis is
  // already optimal, so that second solve can never learn anything). Root
  // children carry a bound no larger than any integral optimum, so a valid
  // warm cutoff never drops them.
  {
    const int branch = detail::most_fractional(model, root.x, options.int_tol);
    if (branch < 0) {
      have_incumbent = true;
      incumbent = root.objective;
      incumbent_x = root.x;
    } else {
      const auto bi = static_cast<std::size_t>(branch);
      const double value = root.x[bi];
      const double frac = value - std::floor(value);
      Node down{root.objective, 0,     pre.lb, pre.ub, root_basis,
                branch,         false, frac};
      down.ub[bi] = std::floor(value);
      push_child(std::move(down));
      Node up{root.objective, 0,    pre.lb, pre.ub, std::move(root_basis),
              branch,         true, frac};
      up.lb[bi] = std::ceil(value);
      push_child(std::move(up));
    }
  }

  while (!open.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      exhausted_cleanly = false;
      break;
    }
    Node node = open.top();
    open.pop();
    if (have_incumbent && node.bound >= incumbent - options.gap_abs) {
      continue;  // cannot improve
    }
    LpResult lp = solve_node(node.lb, node.ub, node.basis, true);
    result.pivots += lp.pivots;
    ++result.nodes_explored;
    if (lp.status == LpStatus::unbounded) {
      result.status = LpStatus::unbounded;
      return result;
    }
    if (lp.status == LpStatus::iteration_limit) {
      // Node LP ran out of pivots even after the cold retry: drop the node
      // but record that the tree is no longer exhaustive.
      exhausted_cleanly = false;
      continue;
    }
    if (lp.status != LpStatus::optimal) continue;  // pruned (infeasible)

    if (node.branch_var >= 0) {
      pc.observe(static_cast<std::size_t>(node.branch_var), node.went_up,
                 node.frac, lp.objective - node.bound);
    }

    if (have_incumbent && lp.objective >= incumbent - options.gap_abs) {
      continue;
    }
    const int branch = pc.select(model, lp.x, options.int_tol);
    if (branch < 0) {
      // Integral: new incumbent.
      have_incumbent = true;
      incumbent = lp.objective;
      incumbent_x = std::move(lp.x);
      continue;
    }
    const auto bi = static_cast<std::size_t>(branch);
    const double value = lp.x[bi];
    const double frac = value - std::floor(value);

    Node down{lp.objective, 0,      node.lb, node.ub, node.basis,
              branch,       false,  frac};
    down.ub[bi] = std::floor(value);
    push_child(std::move(down));

    Node up{lp.objective,          0,    std::move(node.lb),
            std::move(node.ub),    std::move(node.basis),
            branch,                true, frac};
    up.lb[bi] = std::ceil(value);
    push_child(std::move(up));
  }

  if (!have_incumbent) {
    result.status =
        exhausted_cleanly ? LpStatus::infeasible : LpStatus::iteration_limit;
    return result;
  }
  result.status = LpStatus::optimal;
  result.objective = incumbent;
  result.x = std::move(incumbent_x);
  // Snap near-integral values exactly.
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    if (model.vars()[i].integer) {
      result.x[i] = std::round(result.x[i]);
    }
  }
  result.proven_optimal = exhausted_cleanly;
  return result;
}

/// The seed branch & bound, decision-for-decision, over the pinned LP
/// engine: best-first on a bound-only priority queue (even its tie order
/// among equal bounds is part of the pinned behavior — equal-bound pops
/// follow the heap's structural order, which depends on the exact push
/// sequence), cold LP solve per node, most-fractional branching. Warm
/// starts are deliberately ignored: removing a node from the queue — even
/// one that would never be expanded — changes the heap's tie order and
/// with it which of several equally-optimal incumbents is found first.
MipResult solve_mip_pinned(const Model& model, const MipOptions& options) {
  MipResult result;

  std::vector<double> lb0;
  std::vector<double> ub0;
  for (const Variable& v : model.vars()) {
    lb0.push_back(v.lb);
    ub0.push_back(v.ub);
  }

  const LpResult root = solve_lp_pinned(model, lb0, ub0);
  result.pivots += root.pivots;
  ++result.nodes_explored;
  if (root.status != LpStatus::optimal) {
    result.status = root.status;
    return result;
  }

  struct PinnedNode {
    double bound = 0.0;
    std::vector<double> lb;
    std::vector<double> ub;
  };
  struct PinnedOrder {
    bool operator()(const PinnedNode& a, const PinnedNode& b) const {
      return a.bound > b.bound;  // min-heap on bound: best-first
    }
  };
  std::priority_queue<PinnedNode, std::vector<PinnedNode>, PinnedOrder> open;
  open.push(PinnedNode{root.objective, lb0, ub0});

  bool have_incumbent = false;
  double incumbent = 0.0;
  std::vector<double> incumbent_x;
  bool exhausted_cleanly = true;

  while (!open.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      exhausted_cleanly = false;
      break;
    }
    PinnedNode node = open.top();
    open.pop();
    if (have_incumbent && node.bound >= incumbent - options.gap_abs) {
      continue;  // cannot improve
    }
    const LpResult lp = solve_lp_pinned(model, node.lb, node.ub);
    result.pivots += lp.pivots;
    ++result.nodes_explored;
    if (lp.status == LpStatus::unbounded) {
      result.status = LpStatus::unbounded;
      return result;
    }
    if (lp.status != LpStatus::optimal) continue;  // pruned (infeasible)
    if (have_incumbent && lp.objective >= incumbent - options.gap_abs) {
      continue;
    }
    const int branch =
        detail::most_fractional(model, lp.x, options.int_tol);
    if (branch < 0) {
      // Integral: new incumbent.
      have_incumbent = true;
      incumbent = lp.objective;
      incumbent_x = lp.x;
      continue;
    }
    const auto bi = static_cast<std::size_t>(branch);
    const double value = lp.x[bi];

    PinnedNode down = node;
    down.bound = lp.objective;
    down.ub[bi] = std::floor(value);
    if (down.ub[bi] >= down.lb[bi]) open.push(std::move(down));

    PinnedNode up = std::move(node);
    up.bound = lp.objective;
    up.lb[bi] = std::ceil(value);
    if (up.lb[bi] <= up.ub[bi]) open.push(std::move(up));
  }

  if (!have_incumbent) {
    result.status =
        exhausted_cleanly ? LpStatus::infeasible : LpStatus::iteration_limit;
    return result;
  }
  result.status = LpStatus::optimal;
  result.objective = incumbent;
  result.x = std::move(incumbent_x);
  // Snap near-integral values exactly.
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    if (model.vars()[i].integer) {
      result.x[i] = std::round(result.x[i]);
    }
  }
  result.proven_optimal = exhausted_cleanly;
  return result;
}

}  // namespace

MipEngine resolve_engine(const Model& model) {
  const std::size_t nv = model.n_vars();
  const std::size_t nc = model.n_constraints();
  // Tiny models solve in microseconds on the monolithic path; any probing
  // or decomposition bookkeeping would dominate.
  if (nv < 24 || nc < 12) return MipEngine::revised;

  // Block count: union-find over variables coupled by shared rows — the
  // same notion of separability the decomposed engine uses, at O(nnz α).
  std::vector<int> parent(nv);
  for (std::size_t i = 0; i < nv; ++i) parent[i] = static_cast<int>(i);
  const auto find = [&parent](int i) {
    while (parent[static_cast<std::size_t>(i)] != i) {
      parent[static_cast<std::size_t>(i)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(i)])];
      i = parent[static_cast<std::size_t>(i)];
    }
    return i;
  };
  std::vector<char> constrained(nv, 0);
  for (const Constraint& row : model.constraints()) {
    if (row.terms.empty()) continue;
    const int first = find(row.terms.front().first);
    for (const auto& [idx, coeff] : row.terms) {
      (void)coeff;
      constrained[static_cast<std::size_t>(idx)] = 1;
      parent[static_cast<std::size_t>(find(idx))] = first;
    }
  }
  std::size_t blocks = 0;
  for (std::size_t i = 0; i < nv; ++i) {
    if (constrained[i] && find(static_cast<int>(i)) == static_cast<int>(i)) {
      ++blocks;
    }
  }

  // Chain signature (necessary conditions only — decomposed verifies the
  // real thing and falls back if the probe guessed wrong): assignment-style
  // eq rows with all-unit coefficients over binaries, every other row a
  // short coupling row. That is the trajectory family's shape.
  bool chainish = true;
  std::size_t eq_unit_rows = 0;
  for (const Constraint& row : model.constraints()) {
    if (!chainish) break;
    if (row.rel == Rel::eq) {
      for (const auto& [idx, coeff] : row.terms) {
        const Variable& var = model.vars()[static_cast<std::size_t>(idx)];
        if (coeff != 1.0 || !var.integer || var.lb != 0.0 || var.ub != 1.0) {
          chainish = false;
          break;
        }
      }
      ++eq_unit_rows;
    } else if (row.terms.size() > 3) {
      chainish = false;
    }
  }
  chainish = chainish && eq_unit_rows >= 2;

  if (blocks > 1 || chainish) return MipEngine::decomposed;
  // Large monolithic model with nothing to split: the epoch-batched
  // parallel tree is the only engine that amortizes a deep search, and it
  // stays bit-identical at every thread count so picking it never breaks
  // VBATT_THREADS invariance.
  if (nc >= 256) return MipEngine::parallel;
  return MipEngine::revised;
}

const char* engine_name(MipEngine engine) noexcept {
  switch (engine) {
    case MipEngine::pinned:
      return "pinned";
    case MipEngine::revised:
      return "revised";
    case MipEngine::decomposed:
      return "decomposed";
    case MipEngine::parallel:
      return "parallel";
    case MipEngine::auto_select:
      return "auto";
  }
  return "unknown";
}

MipResult solve_mip(const Model& model, const MipOptions& options,
                    const MipWarmStart* warm, MipBasisHint* hint) {
  switch (options.engine) {
    case MipEngine::pinned:
      return solve_mip_pinned(model, options);
    case MipEngine::revised:
      return solve_mip_impl(model, options, warm, hint);
    case MipEngine::decomposed:
      return solve_mip_decomposed(model, options, warm, hint);
    case MipEngine::parallel:
      return solve_mip_parallel(model, options, warm, hint);
    case MipEngine::auto_select: {
      MipOptions resolved = options;
      resolved.engine = resolve_engine(model);
      return solve_mip(model, resolved, warm, hint);
    }
  }
  return solve_mip_impl(model, options, warm, hint);  // unreachable
}

MipResult solve_lexicographic(Model& model,
                              const std::vector<double>& secondary,
                              double eps_rel, double eps_abs,
                              const MipOptions& options,
                              const MipWarmStart* warm, MipBasisHint* hint) {
  if (secondary.size() != model.n_vars()) {
    throw std::invalid_argument{"solve_lexicographic: cost size mismatch"};
  }
  const bool pinned = options.engine == MipEngine::pinned;
  const bool revised = options.engine == MipEngine::revised;
  // Stage-to-stage basis carry (revised engine). The caller's hint doubles
  // as the carrier when provided, so cross-replan warm starts compose with
  // the lexicographic flow; otherwise a local stage-scoped one is used.
  MipBasisHint local_tree;
  MipBasisHint* tree = hint ? hint : &local_tree;
  MipResult first;
  if (pinned) {
    first = solve_mip_pinned(model, options);
  } else if (revised) {
    first = solve_mip_impl(model, options, warm, tree);
  } else {
    first = solve_mip(model, options, warm, hint);
  }
  if (first.status != LpStatus::optimal) return first;

  // Bound the primary objective, then swap in the secondary costs — in
  // place; both edits are undone before returning.
  std::vector<std::pair<int, double>> terms;
  std::vector<double> primary_costs;
  primary_costs.reserve(model.n_vars());
  for (std::size_t i = 0; i < model.n_vars(); ++i) {
    const double c = model.vars()[i].cost;
    primary_costs.push_back(c);
    if (c != 0.0) terms.emplace_back(static_cast<int>(i), c);
  }
  const double cap =
      first.objective + std::abs(first.objective) * eps_rel + eps_abs;
  model.add_constraint(std::move(terms), Rel::le, cap);
  for (std::size_t i = 0; i < model.n_vars(); ++i) {
    model.vars()[i].cost = secondary[i];
  }

  // Stage 2 warm-starts from stage 1 (revised-family engines): the
  // stage-1 optimum satisfies the cap row by construction (incumbent
  // cutoff). With the plain revised engine the stage-1 root basis
  // extended with the new row's logical additionally stays primal
  // feasible (root basis warm start), skipping phase 1 outright. The
  // decomposed engine typically takes its monolithic fallback here —
  // the cap row couples every block — and the parallel engine runs its
  // own epoch-batched tree; both only use the incumbent cutoff.
  MipResult second;
  if (pinned) {
    second = solve_mip_pinned(model, options);
  } else if (revised) {
    MipBasisHint tree2;
    if (!tree->basis.empty()) {
      tree2.basis = tree->basis;
      tree2.basis.extend(model.n_vars(), 0, 1);
      tree2.n_vars = model.n_vars();
      tree2.rows = tree->rows;
      tree2.rows.push_back(static_cast<int>(model.n_constraints()) - 1);
    }
    const MipWarmStart stage2_warm{first.x};
    second = solve_mip_impl(model, options, &stage2_warm, &tree2);
  } else {
    const MipWarmStart stage2_warm{first.x};
    second = solve_mip(model, options, &stage2_warm, nullptr);
  }
  // Surface stage-2 decomposition/warm-start observability; stage 1's
  // used_basis_hint is the one callers care about (it reflects `hint`).
  second.used_basis_hint = first.used_basis_hint;

  for (std::size_t i = 0; i < model.n_vars(); ++i) {
    model.vars()[i].cost = primary_costs[i];
  }
  model.pop_constraint();

  if (second.status != LpStatus::optimal) {
    // Numerical edge: fall back to the stage-1 solution evaluated under
    // the secondary costs rather than failing the caller.
    const bool hinted = second.used_basis_hint;
    second = first;
    double obj = 0.0;
    for (std::size_t i = 0; i < secondary.size(); ++i) {
      obj += secondary[i] * first.x[i];
    }
    second.objective = obj;
    second.proven_optimal = false;
    second.status = LpStatus::optimal;
    second.used_basis_hint = hinted;
  }
  return second;
}

MipResult solve_lexicographic_stages(
    Model& model, const std::vector<std::vector<double>>& stages,
    double eps_rel, double eps_abs, const MipOptions& options,
    const MipWarmStart* warm, std::vector<double>* stage_values) {
  for (const std::vector<double>& costs : stages) {
    if (costs.size() != model.n_vars()) {
      throw std::invalid_argument{
          "solve_lexicographic_stages: cost size mismatch"};
    }
  }
  if (stage_values != nullptr) stage_values->clear();

  MipResult incumbent = solve_mip(model, options, warm);
  if (incumbent.status != LpStatus::optimal) return incumbent;
  if (stage_values != nullptr) stage_values->push_back(incumbent.objective);

  std::vector<double> original_costs;
  original_costs.reserve(model.n_vars());
  for (std::size_t i = 0; i < model.n_vars(); ++i) {
    original_costs.push_back(model.vars()[i].cost);
  }

  std::size_t caps = 0;
  for (const std::vector<double>& costs : stages) {
    // Cap the stage just solved (its costs are still on the model), then
    // swap in this stage's costs and re-solve from the incumbent.
    std::vector<std::pair<int, double>> terms;
    for (std::size_t i = 0; i < model.n_vars(); ++i) {
      const double c = model.vars()[i].cost;
      if (c != 0.0) terms.emplace_back(static_cast<int>(i), c);
    }
    const double cap = incumbent.objective +
                       std::abs(incumbent.objective) * eps_rel + eps_abs;
    model.add_constraint(std::move(terms), Rel::le, cap);
    ++caps;
    for (std::size_t i = 0; i < model.n_vars(); ++i) {
      model.vars()[i].cost = costs[i];
    }
    const MipWarmStart stage_warm{incumbent.x};
    MipResult next = solve_mip(model, options, &stage_warm);
    if (next.status == LpStatus::optimal) {
      next.used_basis_hint = incumbent.used_basis_hint;
      incumbent = next;
    } else {
      // Numerical edge: keep the incumbent, evaluated under this stage's
      // costs, so the chain (and its caps) stays well-defined.
      double obj = 0.0;
      for (std::size_t i = 0; i < costs.size(); ++i) {
        obj += costs[i] * incumbent.x[i];
      }
      incumbent.objective = obj;
      incumbent.proven_optimal = false;
    }
    if (stage_values != nullptr) stage_values->push_back(incumbent.objective);
  }

  for (std::size_t i = 0; i < model.n_vars(); ++i) {
    model.vars()[i].cost = original_costs[i];
  }
  while (caps-- > 0) model.pop_constraint();
  return incumbent;
}

}  // namespace vbatt::solver
