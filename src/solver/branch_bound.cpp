#include "vbatt/solver/branch_bound.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <queue>
#include <stdexcept>
#include <utility>

#include "vbatt/solver/basis.h"
#include "vbatt/solver/pinned.h"
#include "vbatt/solver/presolve.h"
#include "vbatt/solver/revised.h"

namespace vbatt::solver {

namespace {

constexpr double kBoundTol = 1e-7;
/// Tolerance for accepting a caller-provided warm solution as feasible.
constexpr double kWarmTol = 1e-6;

struct Node {
  double bound = 0.0;  // LP objective of the parent relaxation
  std::uint64_t seq = 0;
  std::vector<double> lb;
  std::vector<double> ub;
  Basis basis;  // parent's final basis: dual-feasible start for this node
  int branch_var = -1;
  bool went_up = false;
  double frac = 0.0;  // fractional part of the branch variable at the parent
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    // Min-heap on (bound, push order): best-first, deterministic ties.
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.seq > b.seq;
  }
};

/// Index of the most fractional integer variable, or -1 if all integral.
/// The seed's rule; used until pseudo-costs have observations.
int most_fractional(const Model& model, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_dist = tol;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!model.vars()[i].integer) continue;
    const double frac = x[i] - std::floor(x[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = static_cast<int>(i);
    }
  }
  return best;
}

/// Per-variable pseudo-costs: average objective degradation per unit of
/// fractionality pushed, by branch direction, within one tree.
struct PseudoCost {
  double down_sum = 0.0;
  double up_sum = 0.0;
  int down_n = 0;
  int up_n = 0;
};

/// Stage-to-stage carry for solve_lexicographic: the root basis of the
/// previous tree and the presolve row subset it is valid for.
struct TreeState {
  Basis basis;
  std::vector<int> rows;
};

MipResult solve_mip_impl(const Model& model, const MipOptions& options,
                         const MipWarmStart* warm, TreeState* tree) {
  MipResult result;
  const std::size_t n = model.n_vars();

  std::vector<double> lb0;
  std::vector<double> ub0;
  lb0.reserve(n);
  ub0.reserve(n);
  for (const Variable& v : model.vars()) {
    if (!std::isfinite(v.lb)) {
      throw std::invalid_argument{"solve_mip: -inf lower bound"};
    }
    lb0.push_back(v.lb);
    ub0.push_back(v.ub);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!(lb0[i] <= ub0[i])) {
      ++result.nodes_explored;
      return result;  // infeasible box
    }
  }

  const PresolveResult pre =
      presolve(model, lb0, ub0, /*integrality=*/true);
  if (pre.infeasible) {
    ++result.nodes_explored;
    result.status = LpStatus::infeasible;
    return result;
  }

  const bool box_only = pre.rows.empty();
  std::optional<RevisedSolver> solver;
  if (!box_only) solver.emplace(model, pre.rows);
  const std::int64_t lp_budget =
      options.max_lp_pivots >= 0
          ? options.max_lp_pivots
          : 2000 + 60 * static_cast<std::int64_t>(pre.rows.size() + n);

  // Solve one node's LP. `basis` is in-out: on entry the parent's final
  // basis (dual-simplex warm start when `allow_dual`), on optimal exit this
  // node's final basis, handed down to its children.
  const auto solve_node = [&](const std::vector<double>& nlb,
                              const std::vector<double>& nub, Basis& basis,
                              bool allow_dual) -> LpResult {
    LpResult r;
    for (std::size_t j = 0; j < n; ++j) {
      if (nlb[j] > nub[j] + kBoundTol) return r;  // infeasible box
    }
    if (box_only) {
      // Bound-constrained only: each free variable sits at whichever bound
      // its cost prefers (lower on ties, matching the seed's vertex).
      r.x = nlb;
      for (std::size_t j = 0; j < n; ++j) {
        if (nub[j] - nlb[j] <= kBoundTol) continue;
        if (model.vars()[j].cost < 0.0) {
          if (!std::isfinite(nub[j])) {
            r.status = LpStatus::unbounded;
            r.x.clear();
            return r;
          }
          r.x[j] = nub[j];
        }
      }
      r.status = LpStatus::optimal;
      r.objective = model.objective_of(r.x);
      return r;
    }
    LpStatus s;
    if (allow_dual && !basis.empty()) {
      s = solver->solve_dual(nlb, nub, basis, lp_budget);
      r.pivots += solver->pivots();
      if (s == LpStatus::iteration_limit) {
        // Warm path stalled: cold primal restart.
        basis = Basis{};
        s = solver->solve_primal(nlb, nub, basis, lp_budget);
        r.pivots += solver->pivots();
      }
    } else {
      s = solver->solve_primal(nlb, nub, basis, lp_budget);
      r.pivots += solver->pivots();
    }
    r.status = s;
    if (s == LpStatus::optimal) {
      r.x = solver->x();
      r.objective = model.objective_of(r.x);
    }
    return r;
  };

  Basis root_basis;
  if (tree && !tree->basis.empty() && tree->rows == pre.rows) {
    root_basis = tree->basis;  // primal warm start from the previous stage
  }
  const LpResult root =
      solve_node(pre.lb, pre.ub, root_basis, /*allow_dual=*/false);
  result.pivots += root.pivots;
  ++result.nodes_explored;
  if (root.status != LpStatus::optimal) {
    result.status = root.status;
    return result;
  }
  if (tree) {
    tree->basis = root_basis;
    tree->rows = pre.rows;
  }

  bool have_cutoff = false;
  double cutoff = 0.0;
  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  std::uint64_t next_seq = 0;
  const auto push_child = [&](Node&& node) {
    const auto bv = static_cast<std::size_t>(node.branch_var);
    if (node.branch_var >= 0 && node.lb[bv] > node.ub[bv]) return;
    if (have_cutoff && node.bound > cutoff + options.gap_abs) return;
    node.seq = next_seq++;
    open.push(std::move(node));
  };

  // Validate the warm solution; a valid one becomes a static cutoff that
  // keeps nodes whose bound already exceeds it out of the heap. Such nodes
  // are provably never LP-solved by the cold search either (best-first
  // reaches the optimum through strictly lower bounds first), so warm and
  // cold runs explore identical node sequences and return identical
  // results — the cutoff only bounds heap growth and drain work.
  if (warm && warm->x.size() == n) {
    std::vector<double> xw = warm->x;
    bool ok = true;
    for (std::size_t j = 0; j < n && ok; ++j) {
      if (model.vars()[j].integer) {
        const double snapped = std::round(xw[j]);
        if (std::abs(xw[j] - snapped) > options.int_tol) {
          ok = false;
          break;
        }
        xw[j] = snapped;
      }
      if (xw[j] < pre.lb[j] - kWarmTol || xw[j] > pre.ub[j] + kWarmTol) {
        ok = false;
      }
    }
    for (std::size_t i = 0; ok && i < model.n_constraints(); ++i) {
      const Constraint& con = model.constraints()[i];
      double act = 0.0;
      for (const auto& [idx, coeff] : con.terms) {
        act += coeff * xw[static_cast<std::size_t>(idx)];
      }
      switch (con.rel) {
        case Rel::le: ok = act <= con.rhs + kWarmTol; break;
        case Rel::ge: ok = act >= con.rhs - kWarmTol; break;
        case Rel::eq: ok = std::abs(act - con.rhs) <= kWarmTol; break;
      }
    }
    if (ok) {
      have_cutoff = true;
      cutoff = model.objective_of(xw);
    }
  }


  std::vector<PseudoCost> pc(n);
  std::int64_t pc_observations = 0;
  double pc_total = 0.0;
  const auto select_branch = [&](const std::vector<double>& x) {
    if (pc_observations == 0) {
      return most_fractional(model, x, options.int_tol);
    }
    const double global =
        pc_total / static_cast<double>(pc_observations);
    int best = -1;
    double best_score = -1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!model.vars()[j].integer) continue;
      const double frac = x[j] - std::floor(x[j]);
      if (std::min(frac, 1.0 - frac) <= options.int_tol) continue;
      const double down =
          (pc[j].down_n > 0 ? pc[j].down_sum / pc[j].down_n : global) * frac;
      const double up = (pc[j].up_n > 0 ? pc[j].up_sum / pc[j].up_n : global) *
                        (1.0 - frac);
      const double score =
          std::max(down, 1e-12) * std::max(up, 1e-12);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(j);
      }
    }
    return best;
  };

  bool have_incumbent = false;
  double incumbent = 0.0;
  std::vector<double> incumbent_x;
  bool exhausted_cleanly = true;

  // Expand the root in place rather than pushing it and re-solving it as
  // the first popped node (the seed does the latter; the root basis is
  // already optimal, so that second solve can never learn anything). Root
  // children carry a bound no larger than any integral optimum, so a valid
  // warm cutoff never drops them.
  {
    const int branch = most_fractional(model, root.x, options.int_tol);
    if (branch < 0) {
      have_incumbent = true;
      incumbent = root.objective;
      incumbent_x = root.x;
    } else {
      const auto bi = static_cast<std::size_t>(branch);
      const double value = root.x[bi];
      const double frac = value - std::floor(value);
      Node down{root.objective, 0,     pre.lb, pre.ub, root_basis,
                branch,         false, frac};
      down.ub[bi] = std::floor(value);
      push_child(std::move(down));
      Node up{root.objective, 0,    pre.lb, pre.ub, std::move(root_basis),
              branch,         true, frac};
      up.lb[bi] = std::ceil(value);
      push_child(std::move(up));
    }
  }

  while (!open.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      exhausted_cleanly = false;
      break;
    }
    Node node = open.top();
    open.pop();
    if (have_incumbent && node.bound >= incumbent - options.gap_abs) {
      continue;  // cannot improve
    }
    LpResult lp = solve_node(node.lb, node.ub, node.basis, true);
    result.pivots += lp.pivots;
    ++result.nodes_explored;
    if (lp.status == LpStatus::unbounded) {
      result.status = LpStatus::unbounded;
      return result;
    }
    if (lp.status == LpStatus::iteration_limit) {
      // Node LP ran out of pivots even after the cold retry: drop the node
      // but record that the tree is no longer exhaustive.
      exhausted_cleanly = false;
      continue;
    }
    if (lp.status != LpStatus::optimal) continue;  // pruned (infeasible)

    if (node.branch_var >= 0) {
      const auto bv = static_cast<std::size_t>(node.branch_var);
      const double gain = std::max(0.0, lp.objective - node.bound);
      const double step = node.went_up ? 1.0 - node.frac : node.frac;
      const double rate = gain / std::max(step, 1e-6);
      if (node.went_up) {
        pc[bv].up_sum += rate;
        ++pc[bv].up_n;
      } else {
        pc[bv].down_sum += rate;
        ++pc[bv].down_n;
      }
      ++pc_observations;
      pc_total += rate;
    }

    if (have_incumbent && lp.objective >= incumbent - options.gap_abs) {
      continue;
    }
    const int branch = select_branch(lp.x);
    if (branch < 0) {
      // Integral: new incumbent.
      have_incumbent = true;
      incumbent = lp.objective;
      incumbent_x = std::move(lp.x);
      continue;
    }
    const auto bi = static_cast<std::size_t>(branch);
    const double value = lp.x[bi];
    const double frac = value - std::floor(value);

    Node down{lp.objective, 0,      node.lb, node.ub, node.basis,
              branch,       false,  frac};
    down.ub[bi] = std::floor(value);
    push_child(std::move(down));

    Node up{lp.objective,          0,    std::move(node.lb),
            std::move(node.ub),    std::move(node.basis),
            branch,                true, frac};
    up.lb[bi] = std::ceil(value);
    push_child(std::move(up));
  }

  if (!have_incumbent) {
    result.status =
        exhausted_cleanly ? LpStatus::infeasible : LpStatus::iteration_limit;
    return result;
  }
  result.status = LpStatus::optimal;
  result.objective = incumbent;
  result.x = std::move(incumbent_x);
  // Snap near-integral values exactly.
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    if (model.vars()[i].integer) {
      result.x[i] = std::round(result.x[i]);
    }
  }
  result.proven_optimal = exhausted_cleanly;
  return result;
}

/// The seed branch & bound, decision-for-decision, over the pinned LP
/// engine: best-first on a bound-only priority queue (even its tie order
/// among equal bounds is part of the pinned behavior — equal-bound pops
/// follow the heap's structural order, which depends on the exact push
/// sequence), cold LP solve per node, most-fractional branching. Warm
/// starts are deliberately ignored: removing a node from the queue — even
/// one that would never be expanded — changes the heap's tie order and
/// with it which of several equally-optimal incumbents is found first.
MipResult solve_mip_pinned(const Model& model, const MipOptions& options) {
  MipResult result;

  std::vector<double> lb0;
  std::vector<double> ub0;
  for (const Variable& v : model.vars()) {
    lb0.push_back(v.lb);
    ub0.push_back(v.ub);
  }

  const LpResult root = solve_lp_pinned(model, lb0, ub0);
  result.pivots += root.pivots;
  ++result.nodes_explored;
  if (root.status != LpStatus::optimal) {
    result.status = root.status;
    return result;
  }

  struct PinnedNode {
    double bound = 0.0;
    std::vector<double> lb;
    std::vector<double> ub;
  };
  struct PinnedOrder {
    bool operator()(const PinnedNode& a, const PinnedNode& b) const {
      return a.bound > b.bound;  // min-heap on bound: best-first
    }
  };
  std::priority_queue<PinnedNode, std::vector<PinnedNode>, PinnedOrder> open;
  open.push(PinnedNode{root.objective, lb0, ub0});

  bool have_incumbent = false;
  double incumbent = 0.0;
  std::vector<double> incumbent_x;
  bool exhausted_cleanly = true;

  while (!open.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      exhausted_cleanly = false;
      break;
    }
    PinnedNode node = open.top();
    open.pop();
    if (have_incumbent && node.bound >= incumbent - options.gap_abs) {
      continue;  // cannot improve
    }
    const LpResult lp = solve_lp_pinned(model, node.lb, node.ub);
    result.pivots += lp.pivots;
    ++result.nodes_explored;
    if (lp.status == LpStatus::unbounded) {
      result.status = LpStatus::unbounded;
      return result;
    }
    if (lp.status != LpStatus::optimal) continue;  // pruned (infeasible)
    if (have_incumbent && lp.objective >= incumbent - options.gap_abs) {
      continue;
    }
    const int branch = most_fractional(model, lp.x, options.int_tol);
    if (branch < 0) {
      // Integral: new incumbent.
      have_incumbent = true;
      incumbent = lp.objective;
      incumbent_x = lp.x;
      continue;
    }
    const auto bi = static_cast<std::size_t>(branch);
    const double value = lp.x[bi];

    PinnedNode down = node;
    down.bound = lp.objective;
    down.ub[bi] = std::floor(value);
    if (down.ub[bi] >= down.lb[bi]) open.push(std::move(down));

    PinnedNode up = std::move(node);
    up.bound = lp.objective;
    up.lb[bi] = std::ceil(value);
    if (up.lb[bi] <= up.ub[bi]) open.push(std::move(up));
  }

  if (!have_incumbent) {
    result.status =
        exhausted_cleanly ? LpStatus::infeasible : LpStatus::iteration_limit;
    return result;
  }
  result.status = LpStatus::optimal;
  result.objective = incumbent;
  result.x = std::move(incumbent_x);
  // Snap near-integral values exactly.
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    if (model.vars()[i].integer) {
      result.x[i] = std::round(result.x[i]);
    }
  }
  result.proven_optimal = exhausted_cleanly;
  return result;
}

}  // namespace

MipResult solve_mip(const Model& model, const MipOptions& options,
                    const MipWarmStart* warm) {
  if (options.engine == MipEngine::pinned) {
    return solve_mip_pinned(model, options);
  }
  return solve_mip_impl(model, options, warm, nullptr);
}

MipResult solve_lexicographic(Model& model,
                              const std::vector<double>& secondary,
                              double eps_rel, double eps_abs,
                              const MipOptions& options,
                              const MipWarmStart* warm) {
  if (secondary.size() != model.n_vars()) {
    throw std::invalid_argument{"solve_lexicographic: cost size mismatch"};
  }
  const bool pinned = options.engine == MipEngine::pinned;
  TreeState tree;
  const MipResult first = pinned
                              ? solve_mip_pinned(model, options)
                              : solve_mip_impl(model, options, warm, &tree);
  if (first.status != LpStatus::optimal) return first;

  // Bound the primary objective, then swap in the secondary costs — in
  // place; both edits are undone before returning.
  std::vector<std::pair<int, double>> terms;
  std::vector<double> primary_costs;
  primary_costs.reserve(model.n_vars());
  for (std::size_t i = 0; i < model.n_vars(); ++i) {
    const double c = model.vars()[i].cost;
    primary_costs.push_back(c);
    if (c != 0.0) terms.emplace_back(static_cast<int>(i), c);
  }
  const double cap =
      first.objective + std::abs(first.objective) * eps_rel + eps_abs;
  model.add_constraint(std::move(terms), Rel::le, cap);
  for (std::size_t i = 0; i < model.n_vars(); ++i) {
    model.vars()[i].cost = secondary[i];
  }

  // Stage 2 warm-starts from stage 1 (revised engine only): the stage-1
  // optimum satisfies the cap row by construction (incumbent cutoff), and
  // the stage-1 root basis extended with the new row's logical stays primal
  // feasible (root basis warm start), skipping phase 1 outright.
  MipResult second;
  if (pinned) {
    second = solve_mip_pinned(model, options);
  } else {
    TreeState tree2;
    if (!tree.basis.empty()) {
      tree2.basis = tree.basis;
      tree2.basis.extend(model.n_vars(), 0, 1);
      tree2.rows = tree.rows;
      tree2.rows.push_back(static_cast<int>(model.n_constraints()) - 1);
    }
    const MipWarmStart stage2_warm{first.x};
    second = solve_mip_impl(model, options, &stage2_warm, &tree2);
  }

  for (std::size_t i = 0; i < model.n_vars(); ++i) {
    model.vars()[i].cost = primary_costs[i];
  }
  model.pop_constraint();

  if (second.status != LpStatus::optimal) {
    // Numerical edge: fall back to the stage-1 solution evaluated under
    // the secondary costs rather than failing the caller.
    second = first;
    double obj = 0.0;
    for (std::size_t i = 0; i < secondary.size(); ++i) {
      obj += secondary[i] * first.x[i];
    }
    second.objective = obj;
    second.proven_optimal = false;
    second.status = LpStatus::optimal;
  }
  return second;
}

}  // namespace vbatt::solver
