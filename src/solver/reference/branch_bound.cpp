// Seed best-first branch & bound, frozen as the reference oracle: cold
// tableau LP solve per node, most-fractional branching, no incumbent input
// and no warm starts. Kept byte-for-byte equivalent to the seed so the
// revised engine's objectives (and, on the scheduling models, solutions)
// can be diffed against it forever.
#include "vbatt/solver/reference.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace vbatt::solver::reference {

namespace {

struct Node {
  double bound = 0.0;  // LP objective of the parent relaxation
  std::vector<double> lb;
  std::vector<double> ub;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    return a.bound > b.bound;  // min-heap on bound: best-first
  }
};

/// Index of the most fractional integer variable, or -1 if all integral.
int most_fractional(const Model& model, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_dist = tol;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!model.vars()[i].integer) continue;
    const double frac = x[i] - std::floor(x[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

MipResult solve_mip(const Model& model, const MipOptions& options) {
  MipResult result;

  std::vector<double> lb0;
  std::vector<double> ub0;
  for (const Variable& v : model.vars()) {
    lb0.push_back(v.lb);
    ub0.push_back(v.ub);
  }

  const LpResult root = reference::solve_lp_bounded(model, lb0, ub0);
  ++result.nodes_explored;
  result.pivots += root.pivots;
  if (root.status != LpStatus::optimal) {
    result.status = root.status;
    return result;
  }

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  open.push(Node{root.objective, lb0, ub0});

  bool have_incumbent = false;
  double incumbent = 0.0;
  std::vector<double> incumbent_x;
  bool exhausted_cleanly = true;

  while (!open.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      exhausted_cleanly = false;
      break;
    }
    Node node = open.top();
    open.pop();
    if (have_incumbent && node.bound >= incumbent - options.gap_abs) {
      continue;  // cannot improve
    }
    const LpResult lp = reference::solve_lp_bounded(model, node.lb, node.ub);
    ++result.nodes_explored;
    result.pivots += lp.pivots;
    if (lp.status == LpStatus::unbounded) {
      result.status = LpStatus::unbounded;
      return result;
    }
    if (lp.status != LpStatus::optimal) continue;  // pruned (infeasible)
    if (have_incumbent && lp.objective >= incumbent - options.gap_abs) {
      continue;
    }
    const int branch = most_fractional(model, lp.x, options.int_tol);
    if (branch < 0) {
      // Integral: new incumbent.
      have_incumbent = true;
      incumbent = lp.objective;
      incumbent_x = lp.x;
      continue;
    }
    const auto bi = static_cast<std::size_t>(branch);
    const double value = lp.x[bi];

    Node down = node;
    down.bound = lp.objective;
    down.ub[bi] = std::floor(value);
    if (down.ub[bi] >= down.lb[bi]) open.push(std::move(down));

    Node up = std::move(node);
    up.bound = lp.objective;
    up.lb[bi] = std::ceil(value);
    if (up.lb[bi] <= up.ub[bi]) open.push(std::move(up));
  }

  if (!have_incumbent) {
    result.status =
        exhausted_cleanly ? LpStatus::infeasible : LpStatus::iteration_limit;
    return result;
  }
  result.status = LpStatus::optimal;
  result.objective = incumbent;
  result.x = std::move(incumbent_x);
  // Snap near-integral values exactly.
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    if (model.vars()[i].integer) {
      result.x[i] = std::round(result.x[i]);
    }
  }
  result.proven_optimal = exhausted_cleanly;
  return result;
}

}  // namespace vbatt::solver::reference
