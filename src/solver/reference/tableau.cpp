// Seed dense two-phase tableau simplex, frozen as the reference oracle.
// Deliberately untouched beyond the namespace move and a pivot counter
// (pure instrumentation for bench_solver; it feeds no decision): finite
// upper bounds still become explicit rows, pricing still switches Dantzig
// -> Bland at the iteration-budget midpoint. Do not "improve" this file —
// its value is that it stays exactly what the seed shipped.
#include "vbatt/solver/reference.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace vbatt::solver::reference {

namespace {

constexpr double kPivotTol = 1e-9;
constexpr double kFeasTol = 1e-7;

/// Dense tableau state for one solve.
struct Tableau {
  std::size_t m = 0;        // rows
  std::size_t n = 0;        // columns excluding rhs
  std::size_t art_begin = 0;  // first artificial column
  std::vector<std::vector<double>> a;  // m rows of n+1 (rhs last)
  std::vector<double> phase1;          // n+1 reduced-cost row
  std::vector<double> phase2;          // n+1 reduced-cost row
  std::vector<int> basis;              // basis variable per row
  std::int64_t pivots = 0;             // instrumentation only

  void pivot(std::size_t row, std::size_t col) {
    ++pivots;
    std::vector<double>& pr = a[row];
    const double piv = pr[col];
    for (double& v : pr) v /= piv;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == row) continue;
      const double factor = a[i][col];
      if (factor == 0.0) continue;
      std::vector<double>& ri = a[i];
      for (std::size_t j = 0; j <= n; ++j) ri[j] -= factor * pr[j];
    }
    for (std::vector<double>* cost : {&phase1, &phase2}) {
      const double factor = (*cost)[col];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j <= n; ++j) (*cost)[j] -= factor * pr[j];
    }
    basis[row] = static_cast<int>(col);
  }
};

/// Run the simplex loop on one phase. `allow_artificials` permits artificial
/// columns to enter (phase 1 only). Returns optimal / unbounded /
/// iteration_limit.
LpStatus iterate(Tableau& t, std::vector<double>& cost,
                 bool allow_artificials, std::size_t max_iters) {
  std::size_t iters = 0;
  const std::size_t bland_after = max_iters / 2;
  while (true) {
    if (++iters > max_iters) return LpStatus::iteration_limit;
    const bool bland = iters > bland_after;

    // Entering column.
    std::size_t enter = t.n;
    double best = -kFeasTol;
    const std::size_t limit = allow_artificials ? t.n : t.art_begin;
    for (std::size_t j = 0; j < limit; ++j) {
      const double c = cost[j];
      if (c < best) {
        enter = j;
        if (bland) break;  // Bland: first improving index
        best = c;
      } else if (bland && c < -kFeasTol) {
        enter = j;
        break;
      }
    }
    if (enter == t.n) return LpStatus::optimal;

    // Ratio test; ties broken by smallest basis index (anti-cycling aid).
    std::size_t leave = t.m;
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < t.m; ++i) {
      const double aij = t.a[i][enter];
      if (aij <= kPivotTol) continue;
      const double ratio = t.a[i][t.n] / aij;
      if (leave == t.m || ratio < best_ratio - kPivotTol ||
          (std::abs(ratio - best_ratio) <= kPivotTol &&
           t.basis[i] < t.basis[leave])) {
        leave = i;
        best_ratio = ratio;
      }
    }
    if (leave == t.m) return LpStatus::unbounded;
    t.pivot(leave, enter);
  }
}

}  // namespace

LpResult solve_lp_bounded(const Model& model, const std::vector<double>& lb,
                          const std::vector<double>& ub) {
  const std::size_t nv = model.n_vars();
  if (lb.size() != nv || ub.size() != nv) {
    throw std::invalid_argument{"solve_lp_bounded: bound size mismatch"};
  }
  LpResult result;
  for (std::size_t i = 0; i < nv; ++i) {
    if (!(lb[i] <= ub[i])) return result;  // infeasible box
    if (!std::isfinite(lb[i])) {
      throw std::invalid_argument{"solve_lp_bounded: -inf lower bound"};
    }
  }

  // Active variables are those not fixed by their bounds; fixed ones are
  // substituted as constants. Shift actives so their lower bound is zero.
  std::vector<int> active;       // model index of each active column
  std::vector<int> col_of(nv, -1);
  for (std::size_t i = 0; i < nv; ++i) {
    if (ub[i] - lb[i] > kFeasTol) {
      col_of[i] = static_cast<int>(active.size());
      active.push_back(static_cast<int>(i));
    }
  }
  const std::size_t ns = active.size();

  // Gather rows: model constraints plus finite upper-bound rows.
  struct Row {
    std::vector<double> coeff;  // ns structural coefficients
    Rel rel;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(model.n_constraints() + ns);
  for (const Constraint& con : model.constraints()) {
    Row row{std::vector<double>(ns, 0.0), con.rel, con.rhs};
    for (const auto& [idx, coeff] : con.terms) {
      row.rhs -= coeff * lb[static_cast<std::size_t>(idx)];
      if (col_of[static_cast<std::size_t>(idx)] >= 0) {
        row.coeff[static_cast<std::size_t>(
            col_of[static_cast<std::size_t>(idx)])] += coeff;
      }
    }
    rows.push_back(std::move(row));
  }
  for (std::size_t k = 0; k < ns; ++k) {
    const auto i = static_cast<std::size_t>(active[k]);
    if (std::isfinite(ub[i])) {
      Row row{std::vector<double>(ns, 0.0), Rel::le, ub[i] - lb[i]};
      row.coeff[k] = 1.0;
      rows.push_back(std::move(row));
    }
  }

  // Quick validity check for fixed-variable-only rows.
  for (const Row& row : rows) {
    bool any = false;
    for (const double c : row.coeff) {
      if (c != 0.0) {
        any = true;
        break;
      }
    }
    if (!any) {
      const bool ok = (row.rel == Rel::le && row.rhs >= -kFeasTol) ||
                      (row.rel == Rel::ge && row.rhs <= kFeasTol) ||
                      (row.rel == Rel::eq && std::abs(row.rhs) <= kFeasTol);
      if (!ok) return result;  // infeasible
    }
  }

  const std::size_t m = rows.size();

  // Column layout: [structural | slack/surplus | artificial].
  std::size_t n_slack = 0;
  for (const Row& row : rows) {
    if (row.rel != Rel::eq) ++n_slack;
  }
  Tableau t;
  t.m = m;
  t.art_begin = ns + n_slack;
  t.n = t.art_begin + m;  // one artificial column reserved per row (not all used)
  t.a.assign(m, std::vector<double>(t.n + 1, 0.0));
  t.basis.assign(m, -1);
  t.phase1.assign(t.n + 1, 0.0);
  t.phase2.assign(t.n + 1, 0.0);

  std::size_t slack_col = ns;
  for (std::size_t i = 0; i < m; ++i) {
    Row row = rows[i];
    // Normalize to nonnegative rhs.
    if (row.rhs < 0.0) {
      for (double& c : row.coeff) c = -c;
      row.rhs = -row.rhs;
      row.rel = row.rel == Rel::le ? Rel::ge
                : row.rel == Rel::ge ? Rel::le
                                     : Rel::eq;
    }
    for (std::size_t j = 0; j < ns; ++j) t.a[i][j] = row.coeff[j];
    t.a[i][t.n] = row.rhs;

    if (row.rel == Rel::le) {
      t.a[i][slack_col] = 1.0;
      t.basis[i] = static_cast<int>(slack_col);
      ++slack_col;
    } else {
      if (row.rel == Rel::ge) {
        t.a[i][slack_col] = -1.0;
        ++slack_col;
      }
      const std::size_t art = t.art_begin + i;
      t.a[i][art] = 1.0;
      t.basis[i] = static_cast<int>(art);
      // Phase-1 objective: minimize this artificial → price out its row.
      for (std::size_t j = 0; j <= t.n; ++j) t.phase1[j] -= t.a[i][j];
      t.phase1[art] += 1.0;  // cost of the artificial itself
    }
  }

  // Phase-2 costs (structural only), priced out against the initial basis
  // lazily: initial basis is slacks/artificials with zero phase-2 cost, so
  // the raw cost row is already correct.
  for (std::size_t k = 0; k < ns; ++k) {
    t.phase2[k] = model.vars()[static_cast<std::size_t>(active[k])].cost;
  }

  const std::size_t max_iters = 2000 + 60 * (m + t.n);

  // Phase 1 (skip when no artificials are in the basis).
  bool need_phase1 = false;
  for (std::size_t i = 0; i < m; ++i) {
    if (static_cast<std::size_t>(t.basis[i]) >= t.art_begin) {
      need_phase1 = true;
      break;
    }
  }
  if (need_phase1) {
    const LpStatus s1 = iterate(t, t.phase1, /*allow_artificials=*/true,
                                max_iters);
    if (s1 == LpStatus::iteration_limit) {
      result.status = s1;
      result.pivots = t.pivots;
      return result;
    }
    // Residual infeasibility?
    if (-t.phase1[t.n] > 1e-6) {
      result.status = LpStatus::infeasible;
      result.pivots = t.pivots;
      return result;
    }
    // Drive lingering zero-valued artificials out of the basis.
    for (std::size_t i = 0; i < m; ++i) {
      if (static_cast<std::size_t>(t.basis[i]) < t.art_begin) continue;
      std::size_t col = t.n;
      for (std::size_t j = 0; j < t.art_begin; ++j) {
        if (std::abs(t.a[i][j]) > kPivotTol) {
          col = j;
          break;
        }
      }
      if (col != t.n) t.pivot(i, col);
      // Otherwise the row is redundant; the artificial stays basic at zero
      // and is barred from re-entering in phase 2.
    }
  }

  const LpStatus s2 =
      iterate(t, t.phase2, /*allow_artificials=*/false, max_iters);
  result.pivots = t.pivots;
  if (s2 != LpStatus::optimal) {
    result.status = s2;
    return result;
  }

  result.status = LpStatus::optimal;
  result.x.assign(nv, 0.0);
  for (std::size_t i = 0; i < nv; ++i) result.x[i] = lb[i];
  for (std::size_t i = 0; i < m; ++i) {
    const auto b = static_cast<std::size_t>(t.basis[i]);
    if (b < ns) {
      result.x[static_cast<std::size_t>(active[b])] += t.a[i][t.n];
    }
  }
  result.objective = model.objective_of(result.x);
  return result;
}

LpResult solve_lp(const Model& model) {
  std::vector<double> lb;
  std::vector<double> ub;
  lb.reserve(model.n_vars());
  ub.reserve(model.n_vars());
  for (const Variable& v : model.vars()) {
    lb.push_back(v.lb);
    ub.push_back(v.ub);
  }
  return reference::solve_lp_bounded(model, lb, ub);
}

}  // namespace vbatt::solver::reference
