#include "vbatt/solver/revised.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace vbatt::solver {

namespace {

constexpr double kPivotTol = 1e-9;
constexpr double kFeasTol = 1e-7;
constexpr double kDjTol = 1e-7;
constexpr double kRatioTol = 1e-9;
/// Matches the seed's fixed-variable threshold: boxes narrower than this
/// are treated as fixed at the lower bound and never priced.
constexpr double kFixedTol = 1e-7;
constexpr std::int64_t kRefactorEvery = 64;

double dot_sparse(const std::vector<double>& y,
                  const std::vector<std::pair<int, double>>& col) {
  double sum = 0.0;
  for (const auto& [row, coeff] : col) {
    sum += y[static_cast<std::size_t>(row)] * coeff;
  }
  return sum;
}

}  // namespace

RevisedSolver::RevisedSolver(const Model& model, const std::vector<int>& rows)
    : n_{model.n_vars()}, m_{rows.size()} {
  cols_.assign(n_ + m_, {});
  rhs_.assign(m_, 0.0);
  cost_.assign(n_ + m_, 0.0);
  logical_lo_.assign(m_, 0.0);
  logical_up_.assign(m_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) cost_[j] = model.vars()[j].cost;
  for (std::size_t i = 0; i < m_; ++i) {
    const Constraint& con =
        model.constraints()[static_cast<std::size_t>(rows[i])];
    // Coalesce repeated variable indices within a row (the Model allows
    // them; the dense tableau sums them). A column must hold at most one
    // entry per row or the pivot-element lookup reads a partial
    // coefficient.
    std::vector<int> order;
    std::unordered_map<int, double> merged;
    for (const auto& [idx, coeff] : con.terms) {
      const auto [it, fresh] = merged.emplace(idx, 0.0);
      if (fresh) order.push_back(idx);
      it->second += coeff;
    }
    for (const int idx : order) {
      const double coeff = merged.at(idx);
      if (coeff != 0.0) {
        cols_[static_cast<std::size_t>(idx)].emplace_back(
            static_cast<int>(i), coeff);
      }
    }
    rhs_[i] = con.rhs;
    // Logical variable: row i becomes  a_i x + s_i = b_i.
    cols_[n_ + i].emplace_back(static_cast<int>(i), 1.0);
    switch (con.rel) {
      case Rel::le:
        logical_lo_[i] = 0.0;
        logical_up_[i] = kInf;
        break;
      case Rel::ge:
        logical_lo_[i] = -kInf;
        logical_up_[i] = 0.0;
        break;
      case Rel::eq:
        logical_lo_[i] = 0.0;
        logical_up_[i] = 0.0;
        break;
    }
  }
}

RevisedSolver::RevisedSolver(const Model& model)
    : RevisedSolver{model, [&] {
        std::vector<int> all(model.n_constraints());
        for (std::size_t i = 0; i < all.size(); ++i) {
          all[i] = static_cast<int>(i);
        }
        return all;
      }()} {}

void RevisedSolver::set_costs(const std::vector<double>& costs) {
  for (std::size_t j = 0; j < n_; ++j) cost_[j] = costs[j];
}

void RevisedSolver::load_bounds(const std::vector<double>& lb,
                                const std::vector<double>& ub) {
  lo_.assign(n_ + m_, 0.0);
  up_.assign(n_ + m_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    lo_[j] = lb[j];
    up_[j] = ub[j];
  }
  for (std::size_t i = 0; i < m_; ++i) {
    lo_[n_ + i] = logical_lo_[i];
    up_[n_ + i] = logical_up_[i];
  }
}

void RevisedSolver::logical_basis(Basis& basis) const {
  basis.basic.assign(m_, 0);
  basis.status.assign(n_ + m_, VarStatus::at_lower);
  for (std::size_t i = 0; i < m_; ++i) {
    basis.basic[i] = static_cast<int>(n_ + i);
    basis.status[n_ + i] = VarStatus::basic;
  }
}

bool RevisedSolver::factorize(const Basis& basis) {
  std::vector<std::vector<std::pair<int, double>>> cols(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    cols[i] = cols_[static_cast<std::size_t>(basis.basic[i])];
  }
  return binv_.refactor(m_, cols);
}

bool RevisedSolver::compute_duals(const Basis& basis,
                                  std::vector<double>& out) {
  if (basis.basic.size() != m_ || basis.status.size() != n_ + m_) {
    return false;
  }
  if (!factorize(basis)) return false;
  if (cb_.size() < m_) cb_.resize(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    cb_[i] = cost_[static_cast<std::size_t>(basis.basic[i])];
  }
  out.assign(m_, 0.0);
  binv_.btran(cb_, out);
  return true;
}

double RevisedSolver::nonbasic_value(const Basis& basis,
                                     std::size_t j) const {
  if (basis.status[j] == VarStatus::at_upper && std::isfinite(up_[j])) {
    return up_[j];
  }
  return std::isfinite(lo_[j]) ? lo_[j] : 0.0;
}

void RevisedSolver::compute_xb(const Basis& basis) {
  std::vector<double> v = rhs_;
  for (std::size_t j = 0; j < n_ + m_; ++j) {
    if (basis.status[j] == VarStatus::basic) continue;
    const double value = nonbasic_value(basis, j);
    if (value == 0.0) continue;
    for (const auto& [row, coeff] : cols_[j]) {
      v[static_cast<std::size_t>(row)] -= coeff * value;
    }
  }
  binv_.ftran_dense(v, xb_);
}

void RevisedSolver::extract(const Basis& basis) {
  x_out_.assign(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    x_out_[j] = nonbasic_value(basis, j);
  }
  for (std::size_t i = 0; i < m_; ++i) {
    const auto b = static_cast<std::size_t>(basis.basic[i]);
    if (b < n_) x_out_[b] = xb_[i];
  }
  objective_ = 0.0;
  for (std::size_t j = 0; j < n_; ++j) objective_ += cost_[j] * x_out_[j];
}

LpStatus RevisedSolver::primal_loop(Basis& basis, bool phase1,
                                    std::int64_t max_pivots) {
  const std::int64_t bland_after = max_pivots / 2;
  int bad_updates = 0;
  while (true) {
    if (phase1) {
      // Composite phase-1 costs: gradient of the total bound violation of
      // the basic variables. Rebuilt every iteration because each step can
      // change which basics are infeasible.
      cb_.assign(m_, 0.0);
      bool any = false;
      for (std::size_t i = 0; i < m_; ++i) {
        const auto b = static_cast<std::size_t>(basis.basic[i]);
        if (xb_[i] < lo_[b] - kFeasTol) {
          cb_[i] = -1.0;
          any = true;
        } else if (xb_[i] > up_[b] + kFeasTol) {
          cb_[i] = 1.0;
          any = true;
        }
      }
      if (!any) return LpStatus::optimal;  // primal feasible
    } else {
      cb_.resize(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        cb_[i] = cost_[static_cast<std::size_t>(basis.basic[i])];
      }
    }
    if (pivots_ >= max_pivots) return LpStatus::iteration_limit;
    const bool bland = pivots_ > bland_after;
    binv_.btran(cb_, y_);

    // Pricing. Dantzig (largest dual violation, lowest index on ties);
    // Bland (first eligible index) once the budget midpoint passes.
    std::size_t enter = n_ + m_;
    double best = kDjTol;
    int sigma = 0;
    for (std::size_t j = 0; j < n_ + m_; ++j) {
      if (basis.status[j] == VarStatus::basic) continue;
      if (up_[j] - lo_[j] <= kFixedTol) continue;  // fixed: never priced
      const double cj = phase1 ? 0.0 : cost_[j];
      const double d = cj - dot_sparse(y_, cols_[j]);
      double viol = 0.0;
      int dir = 0;
      if (basis.status[j] == VarStatus::at_lower && d < -kDjTol) {
        viol = -d;
        dir = 1;
      } else if (basis.status[j] == VarStatus::at_upper && d > kDjTol) {
        viol = d;
        dir = -1;
      } else {
        continue;
      }
      if (bland) {
        enter = j;
        sigma = dir;
        break;
      }
      if (viol > best) {
        best = viol;
        enter = j;
        sigma = dir;
      }
    }
    if (enter == n_ + m_) {
      if (!phase1) return LpStatus::optimal;
      return LpStatus::infeasible;  // violation is minimal but nonzero
    }

    binv_.ftran(cols_[enter], alpha_);

    // Bounded ratio test. The entering variable moves by sigma * t; basic
    // i moves by -sigma * t * alpha_i. Blocking events: a feasible basic
    // reaching a bound, an infeasible basic (phase 1) reaching the bound
    // it violates, or the entering variable reaching its far bound (bound
    // flip — no basis change at all). Ties prefer the flip, then the
    // smallest basic variable index (deterministic, anti-cycling aid).
    const double span = up_[enter] - lo_[enter];
    const double flip = std::isfinite(span) ? span : kInf;
    double t_limit = kInf;
    std::size_t leave = m_;
    bool leave_to_upper = false;
    for (std::size_t i = 0; i < m_; ++i) {
      const double delta = -static_cast<double>(sigma) * alpha_[i];
      if (std::abs(delta) <= kPivotTol) continue;
      const auto b = static_cast<std::size_t>(basis.basic[i]);
      const double v = xb_[i];
      double t = 0.0;
      bool to_upper = false;
      if (phase1 && v < lo_[b] - kFeasTol) {
        if (delta <= 0.0) continue;  // moving further below: no block
        t = (lo_[b] - v) / delta;
        to_upper = false;
      } else if (phase1 && v > up_[b] + kFeasTol) {
        if (delta >= 0.0) continue;
        t = (v - up_[b]) / -delta;
        to_upper = true;
      } else if (delta > 0.0) {
        if (!std::isfinite(up_[b])) continue;
        t = (up_[b] - v) / delta;
        to_upper = true;
      } else {
        if (!std::isfinite(lo_[b])) continue;
        t = (v - lo_[b]) / -delta;
        to_upper = false;
      }
      t = std::max(t, 0.0);
      if (t < t_limit - kRatioTol ||
          (t <= t_limit + kRatioTol &&
           (leave == m_ || basis.basic[i] < basis.basic[leave]))) {
        t_limit = t;
        leave = i;
        leave_to_upper = to_upper;
      }
    }

    if (flip <= t_limit + kRatioTol) {
      // Bound flip wins (ties included): the entering variable crosses its
      // box to the opposite bound; the basis is unchanged.
      if (!std::isfinite(flip)) {
        // No row blocks and the box is infinite.
        return phase1 ? LpStatus::iteration_limit : LpStatus::unbounded;
      }
      for (std::size_t i = 0; i < m_; ++i) {
        xb_[i] -= static_cast<double>(sigma) * flip * alpha_[i];
      }
      basis.status[enter] = sigma > 0 ? VarStatus::at_upper
                                      : VarStatus::at_lower;
      ++pivots_;
      continue;
    }
    if (leave == m_) {
      return phase1 ? LpStatus::iteration_limit : LpStatus::unbounded;
    }

    const double enter_value =
        nonbasic_value(basis, enter) + static_cast<double>(sigma) * t_limit;
    if (!binv_.update(leave, alpha_)) {
      // Pivot element too small for a stable product-form update: rebuild
      // the inverse and re-run the iteration from fresh numbers.
      if (++bad_updates > 3) return LpStatus::iteration_limit;
      if (!factorize(basis)) return LpStatus::iteration_limit;
      compute_xb(basis);
      continue;
    }
    bad_updates = 0;
    for (std::size_t i = 0; i < m_; ++i) {
      xb_[i] -= static_cast<double>(sigma) * t_limit * alpha_[i];
    }
    const auto leaving = static_cast<std::size_t>(basis.basic[leave]);
    basis.status[leaving] =
        leave_to_upper ? VarStatus::at_upper : VarStatus::at_lower;
    basis.basic[leave] = static_cast<int>(enter);
    basis.status[enter] = VarStatus::basic;
    xb_[leave] = enter_value;
    ++pivots_;
    if (pivots_ % kRefactorEvery == 0) {
      if (!factorize(basis)) return LpStatus::iteration_limit;
      compute_xb(basis);
    }
  }
}

LpStatus RevisedSolver::solve_primal(const std::vector<double>& lb,
                                     const std::vector<double>& ub,
                                     Basis& basis, std::int64_t max_pivots) {
  load_bounds(lb, ub);
  pivots_ = 0;
  if (basis.empty() || basis.basic.size() != m_ ||
      basis.status.size() != n_ + m_) {
    logical_basis(basis);
  }
  if (!factorize(basis)) {
    logical_basis(basis);
    if (!factorize(basis)) return LpStatus::iteration_limit;
  }
  compute_xb(basis);

  const LpStatus s1 = primal_loop(basis, /*phase1=*/true, max_pivots);
  if (s1 != LpStatus::optimal) return s1;
  const LpStatus s2 = primal_loop(basis, /*phase1=*/false, max_pivots);
  if (s2 == LpStatus::optimal) extract(basis);
  return s2;
}

LpStatus RevisedSolver::solve_dual(const std::vector<double>& lb,
                                   const std::vector<double>& ub,
                                   Basis& basis, std::int64_t max_pivots) {
  load_bounds(lb, ub);
  pivots_ = 0;
  if (basis.empty() || basis.basic.size() != m_ ||
      basis.status.size() != n_ + m_) {
    return LpStatus::iteration_limit;  // no warm basis: caller goes primal
  }
  if (!factorize(basis)) return LpStatus::iteration_limit;
  compute_xb(basis);

  while (true) {
    // Leaving row: most violated basic bound, smallest variable index on
    // ties. None -> the (still dual-feasible) basis is primal feasible,
    // hence optimal.
    std::size_t leave = m_;
    double worst = kFeasTol;
    bool below = false;
    for (std::size_t i = 0; i < m_; ++i) {
      const auto b = static_cast<std::size_t>(basis.basic[i]);
      double v = 0.0;
      bool is_below = false;
      if (xb_[i] < lo_[b] - kFeasTol) {
        v = lo_[b] - xb_[i];
        is_below = true;
      } else if (xb_[i] > up_[b] + kFeasTol) {
        v = xb_[i] - up_[b];
      } else {
        continue;
      }
      if (v > worst ||
          (v >= worst - kRatioTol && leave != m_ &&
           basis.basic[i] < basis.basic[leave])) {
        worst = v;
        leave = i;
        below = is_below;
      }
    }
    if (leave == m_) {
      extract(basis);
      return LpStatus::optimal;
    }
    if (pivots_ >= max_pivots) return LpStatus::iteration_limit;

    // Reduced costs under the current basis (bound changes never disturb
    // dual feasibility, so these stay correctly signed between pivots).
    cb_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      cb_[i] = cost_[static_cast<std::size_t>(basis.basic[i])];
    }
    binv_.btran(cb_, y_);
    binv_.row(leave, rho_);

    // Dual ratio test: among nonbasics whose movement pushes the leaving
    // basic toward its violated bound, pick the smallest |d| / |alpha_r|
    // (smallest index on ties) so every other reduced cost keeps its sign.
    const auto lb_var = static_cast<std::size_t>(basis.basic[leave]);
    std::size_t enter = n_ + m_;
    double best_ratio = 0.0;
    double alpha_r_enter = 0.0;
    for (std::size_t j = 0; j < n_ + m_; ++j) {
      if (basis.status[j] == VarStatus::basic) continue;
      if (up_[j] - lo_[j] <= kFixedTol) continue;
      const double a = dot_sparse(rho_, cols_[j]);
      if (std::abs(a) <= kPivotTol) continue;
      const bool at_lower = basis.status[j] != VarStatus::at_upper;
      // Below-violation needs xb to rise: at_lower wants a < 0, at_upper
      // wants a > 0. Above-violation is the mirror image.
      if (below ? (at_lower ? a >= 0.0 : a <= 0.0)
                : (at_lower ? a <= 0.0 : a >= 0.0)) {
        continue;
      }
      const double d = cost_[j] - dot_sparse(y_, cols_[j]);
      const double ratio = std::abs(d) / std::abs(a);
      if (enter == n_ + m_ || ratio < best_ratio - kRatioTol) {
        enter = j;
        best_ratio = ratio;
        alpha_r_enter = a;
      }
    }
    if (enter == n_ + m_) return LpStatus::infeasible;  // dual unbounded

    binv_.ftran(cols_[enter], alpha_);
    const double target = below ? lo_[lb_var] : up_[lb_var];
    const double step = (xb_[leave] - target) / alpha_r_enter;
    if (!binv_.update(leave, alpha_)) {
      if (!factorize(basis)) return LpStatus::iteration_limit;
      compute_xb(basis);
      ++pivots_;
      continue;
    }
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == leave) continue;
      xb_[i] -= step * alpha_[i];
    }
    const double enter_value = nonbasic_value(basis, enter) + step;
    basis.status[lb_var] =
        below ? VarStatus::at_lower : VarStatus::at_upper;
    basis.basic[leave] = static_cast<int>(enter);
    basis.status[enter] = VarStatus::basic;
    xb_[leave] = enter_value;
    ++pivots_;
    if (pivots_ % kRefactorEvery == 0) {
      if (!factorize(basis)) return LpStatus::iteration_limit;
      compute_xb(basis);
    }
  }
}

}  // namespace vbatt::solver
