#include "vbatt/solver/basis.h"

#include <cmath>

namespace vbatt::solver {

namespace {
constexpr double kSingularTol = 1e-11;
constexpr double kUpdateTol = 1e-9;
}  // namespace

void Basis::extend(std::size_t old_n_vars, std::size_t added_vars,
                   std::size_t added_rows) {
  const std::size_t old_m = basic.size();
  const auto shift = static_cast<int>(added_vars);
  if (added_vars > 0) {
    for (int& b : basic) {
      if (b >= static_cast<int>(old_n_vars)) b += shift;
    }
    // Rebuild status: [old structurals | new structurals | logicals].
    std::vector<VarStatus> next(status.size() + added_vars,
                                VarStatus::at_lower);
    for (std::size_t i = 0; i < old_n_vars; ++i) next[i] = status[i];
    for (std::size_t i = old_n_vars; i < status.size(); ++i) {
      next[i + added_vars] = status[i];
    }
    status = std::move(next);
  }
  for (std::size_t r = 0; r < added_rows; ++r) {
    const auto logical =
        static_cast<int>(old_n_vars + added_vars + old_m + r);
    basic.push_back(logical);
    status.push_back(VarStatus::basic);
  }
}

bool BasisInverse::refactor(
    std::size_t m,
    const std::vector<std::vector<std::pair<int, double>>>& cols) {
  m_ = m;
  // Gauss-Jordan with partial pivoting on [B | I], tracking only I -> B^-1.
  std::vector<double> b(m * m, 0.0);
  inv_.assign(m * m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    for (const auto& [row, coeff] : cols[j]) {
      b[static_cast<std::size_t>(row) * m + j] = coeff;
    }
    inv_[j * m + j] = 1.0;
  }
  std::vector<std::size_t> perm(m);
  for (std::size_t j = 0; j < m; ++j) perm[j] = j;
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t piv = col;
    double best = std::abs(b[perm[col] * m + col]);
    for (std::size_t r = col + 1; r < m; ++r) {
      const double v = std::abs(b[perm[r] * m + col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best <= kSingularTol) return false;
    std::swap(perm[col], perm[piv]);
    const std::size_t pr = perm[col];
    const double scale = 1.0 / b[pr * m + col];
    for (std::size_t j = 0; j < m; ++j) {
      b[pr * m + j] *= scale;
      inv_[pr * m + j] *= scale;
    }
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t rr = perm[r];
      if (rr == pr) continue;
      const double factor = b[rr * m + col];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < m; ++j) {
        b[rr * m + j] -= factor * b[pr * m + j];
        inv_[rr * m + j] -= factor * inv_[pr * m + j];
      }
    }
  }
  // Undo the row permutation: row i of B^-1 is the row that eliminated
  // column i.
  std::vector<double> ordered(m * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      ordered[i * m + j] = inv_[perm[i] * m + j];
    }
  }
  inv_ = std::move(ordered);
  return true;
}

bool BasisInverse::update(std::size_t pivot_row,
                          const std::vector<double>& alpha) {
  const double piv = alpha[pivot_row];
  if (std::abs(piv) <= kUpdateTol) return false;
  double* pr = &inv_[pivot_row * m_];
  const double scale = 1.0 / piv;
  for (std::size_t j = 0; j < m_; ++j) pr[j] *= scale;
  for (std::size_t i = 0; i < m_; ++i) {
    if (i == pivot_row) continue;
    const double factor = alpha[i];
    if (factor == 0.0) continue;
    double* ri = &inv_[i * m_];
    for (std::size_t j = 0; j < m_; ++j) ri[j] -= factor * pr[j];
  }
  return true;
}

void BasisInverse::ftran(const std::vector<std::pair<int, double>>& a,
                         std::vector<double>& out) const {
  out.assign(m_, 0.0);
  for (const auto& [row, coeff] : a) {
    const auto r = static_cast<std::size_t>(row);
    for (std::size_t i = 0; i < m_; ++i) {
      out[i] += inv_[i * m_ + r] * coeff;
    }
  }
}

void BasisInverse::ftran_dense(const std::vector<double>& v,
                               std::vector<double>& out) const {
  out.assign(m_, 0.0);
  for (std::size_t j = 0; j < m_; ++j) {
    const double vj = v[j];
    if (vj == 0.0) continue;
    for (std::size_t i = 0; i < m_; ++i) out[i] += inv_[i * m_ + j] * vj;
  }
}

void BasisInverse::btran(const std::vector<double>& c,
                         std::vector<double>& out) const {
  out.assign(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const double ci = c[i];
    if (ci == 0.0) continue;
    const double* ri = &inv_[i * m_];
    for (std::size_t j = 0; j < m_; ++j) out[j] += ci * ri[j];
  }
}

void BasisInverse::row(std::size_t r, std::vector<double>& out) const {
  out.assign(inv_.begin() + static_cast<std::ptrdiff_t>(r * m_),
             inv_.begin() + static_cast<std::ptrdiff_t>((r + 1) * m_));
}

}  // namespace vbatt::solver
