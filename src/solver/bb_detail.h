// Internals shared by the branch & bound engines (serial revised, epoch-
// batched parallel, and the decomposition layer's per-block solves).
// Private to src/solver/ — not installed with the public headers.
//
// Everything here is pure bookkeeping: the node record, the deterministic
// (bound, seq) frontier order, most-fractional and pseudo-cost branching,
// and warm-start incumbent validation. Keeping one copy is what makes the
// engines agree: the parallel engine must branch exactly like the serial
// one on identical data or thread-count invariance tests would chase two
// diverging heuristics.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "vbatt/solver/basis.h"
#include "vbatt/solver/model.h"

namespace vbatt::solver::detail {

constexpr double kBoundTol = 1e-7;
/// Tolerance for accepting a caller-provided warm solution as feasible.
constexpr double kWarmTol = 1e-6;

struct Node {
  double bound = 0.0;  // LP objective of the parent relaxation
  std::uint64_t seq = 0;
  std::vector<double> lb;
  std::vector<double> ub;
  Basis basis;  // parent's final basis: dual-feasible start for this node
  int branch_var = -1;
  bool went_up = false;
  double frac = 0.0;  // fractional part of the branch variable at the parent
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    // Min-heap on (bound, push order): best-first, deterministic ties.
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.seq > b.seq;
  }
};

/// Index of the most fractional integer variable, or -1 if all integral.
/// The seed's rule; used until pseudo-costs have observations.
inline int most_fractional(const Model& model, const std::vector<double>& x,
                           double tol) {
  int best = -1;
  double best_dist = tol;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!model.vars()[i].integer) continue;
    const double frac = x[i] - std::floor(x[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = static_cast<int>(i);
    }
  }
  return best;
}

/// Per-variable pseudo-costs: average objective degradation per unit of
/// fractionality pushed, by branch direction, within one tree.
struct PseudoCost {
  double down_sum = 0.0;
  double up_sum = 0.0;
  int down_n = 0;
  int up_n = 0;
};

/// Pseudo-cost state for one tree; identical update and selection rules
/// across the serial and parallel engines.
struct PseudoCostTable {
  std::vector<PseudoCost> pc;
  std::int64_t observations = 0;
  double total = 0.0;

  explicit PseudoCostTable(std::size_t n) : pc(n) {}

  /// Record the observed bound degradation of an expanded child.
  void observe(std::size_t var, bool went_up, double frac, double gain) {
    const double step = went_up ? 1.0 - frac : frac;
    const double rate = std::max(0.0, gain) / std::max(step, 1e-6);
    if (went_up) {
      pc[var].up_sum += rate;
      ++pc[var].up_n;
    } else {
      pc[var].down_sum += rate;
      ++pc[var].down_n;
    }
    ++observations;
    total += rate;
  }

  /// Pseudo-cost branching once observations exist, most-fractional
  /// before. Returns -1 when x is integral.
  int select(const Model& model, const std::vector<double>& x,
             double int_tol) const {
    if (observations == 0) return most_fractional(model, x, int_tol);
    const double global = total / static_cast<double>(observations);
    int best = -1;
    double best_score = -1.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      if (!model.vars()[j].integer) continue;
      const double frac = x[j] - std::floor(x[j]);
      if (std::min(frac, 1.0 - frac) <= int_tol) continue;
      const double down =
          (pc[j].down_n > 0 ? pc[j].down_sum / pc[j].down_n : global) * frac;
      const double up =
          (pc[j].up_n > 0 ? pc[j].up_sum / pc[j].up_n : global) *
          (1.0 - frac);
      const double score = std::max(down, 1e-12) * std::max(up, 1e-12);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(j);
      }
    }
    return best;
  }
};

/// Validate a caller-provided warm solution against the (presolve-
/// tightened) box, integrality, and every model row. A valid vector's
/// objective becomes a static cutoff; an invalid one is silently ignored
/// (same contract as the serial engine).
inline std::optional<double> warm_cutoff(const Model& model,
                                         const std::vector<double>& warm_x,
                                         const std::vector<double>& lb,
                                         const std::vector<double>& ub,
                                         double int_tol) {
  const std::size_t n = model.n_vars();
  if (warm_x.size() != n) return std::nullopt;
  std::vector<double> xw = warm_x;
  for (std::size_t j = 0; j < n; ++j) {
    if (model.vars()[j].integer) {
      const double snapped = std::round(xw[j]);
      if (std::abs(xw[j] - snapped) > int_tol) return std::nullopt;
      xw[j] = snapped;
    }
    if (xw[j] < lb[j] - kWarmTol || xw[j] > ub[j] + kWarmTol) {
      return std::nullopt;
    }
  }
  for (const Constraint& con : model.constraints()) {
    double act = 0.0;
    for (const auto& [idx, coeff] : con.terms) {
      act += coeff * xw[static_cast<std::size_t>(idx)];
    }
    switch (con.rel) {
      case Rel::le:
        if (!(act <= con.rhs + kWarmTol)) return std::nullopt;
        break;
      case Rel::ge:
        if (!(act >= con.rhs - kWarmTol)) return std::nullopt;
        break;
      case Rel::eq:
        if (!(std::abs(act - con.rhs) <= kWarmTol)) return std::nullopt;
        break;
    }
  }
  return model.objective_of(xw);
}

}  // namespace vbatt::solver::detail
