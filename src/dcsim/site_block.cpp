#include "vbatt/dcsim/site_block.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace vbatt::dcsim {

namespace {

constexpr std::size_t kWordBits = 64;

}  // namespace

SiteBlock::SiteBlock(const std::vector<SiteConfig>& configs) {
  if (configs.empty()) return;  // a block over zero sites is inert
  const ServerSpec spec = configs.front().server;
  if (spec.cores <= 0 || spec.memory_gb <= 0.0) {
    throw std::invalid_argument{"SiteBlock: non-positive server capacity"};
  }
  top_ = spec.cores;
  server_memory_gb_ = spec.memory_gb;

  std::size_t total_servers = 0;
  std::size_t total_words = 0;
  sites_.reserve(configs.size());
  for (const SiteConfig& config : configs) {
    if (config.n_servers <= 0) {
      throw std::invalid_argument{"SiteBlock: non-positive server count"};
    }
    if (config.server.cores != spec.cores ||
        config.server.memory_gb != spec.memory_gb) {
      throw std::invalid_argument{
          "SiteBlock: all sites must share one ServerSpec"};
    }
    const auto n = static_cast<std::size_t>(config.n_servers);
    SiteState site;
    site.n_servers = config.n_servers;
    site.server_base = total_servers;
    site.n_words = (n + kWordBits - 1) / kWordBits;
    site.word_base = total_words;
    site.count_base = (&config - configs.data()) *
                      (static_cast<std::size_t>(top_) + 1);
    sites_.push_back(site);
    total_servers += n;
    total_words += site.n_words * (static_cast<std::size_t>(top_) + 1);
  }

  free_cores_.assign(total_servers, top_);
  free_memory_gb_.assign(total_servers, spec.memory_gb);
  vm_count_.assign(total_servers, 0);
  failed_.assign(total_servers, 0);
  victims_.assign(total_servers, {});
  bucket_words_.assign(total_words, 0);
  bucket_count_.assign(sites_.size() * (static_cast<std::size_t>(top_) + 1),
                       0);
  mask_words_ = (static_cast<std::size_t>(top_) + 1 + 63) / 64;
  bucket_mask_.assign(sites_.size() * mask_words_, 0);

  // Every server starts empty: all of them live in the top (all-free)
  // bucket of their site.
  for (SiteState& site : sites_) {
    std::uint64_t* const words = bucket(site, top_);
    for (std::size_t i = 0; i < static_cast<std::size_t>(site.n_servers);
         ++i) {
      words[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
    }
    bucket_count(site, top_) = site.n_servers;
    update_mask(static_cast<std::size_t>(&site - sites_.data()), top_, true);
  }
}

int SiteBlock::next_nonempty(std::size_t s_index, int from, int limit) const {
  if (from >= limit) return limit;
  const std::uint64_t* const mask = bucket_mask_.data() + s_index * mask_words_;
  auto w = static_cast<std::size_t>(from) / 64;
  std::uint64_t bits = mask[w] & (~std::uint64_t{0}
                                  << (static_cast<std::size_t>(from) % 64));
  for (;;) {
    if (bits != 0) {
      const int b = static_cast<int>(w * 64 +
                                     static_cast<std::size_t>(
                                         std::countr_zero(bits)));
      return b < limit ? b : limit;
    }
    if (++w >= mask_words_) return limit;
    bits = mask[w];
  }
}

int SiteBlock::prev_nonempty(std::size_t s_index, int from, int limit) const {
  if (from < limit) return limit - 1;
  const std::uint64_t* const mask = bucket_mask_.data() + s_index * mask_words_;
  auto w = static_cast<std::size_t>(from) / 64;
  std::uint64_t bits =
      mask[w] & (~std::uint64_t{0} >>
                 (63 - static_cast<std::size_t>(from) % 64));
  for (;;) {
    if (bits != 0) {
      const int b = static_cast<int>(
          w * 64 + (63 - static_cast<std::size_t>(std::countl_zero(bits))));
      return b >= limit ? b : limit - 1;
    }
    if (w == 0) return limit - 1;
    bits = mask[--w];
  }
}

void SiteBlock::move_bucket(const SiteState& site, int server, int old_free,
                            int new_free) {
  // Clamp defensively, as Site does: a shape larger than a server must
  // not index out of range.
  const auto from = std::clamp(old_free, 0, top_);
  const auto to = std::clamp(new_free, 0, top_);
  if (from == to) return;
  const auto i = static_cast<std::size_t>(server);
  const std::uint64_t bit = std::uint64_t{1} << (i % kWordBits);
  bucket(site, from)[i / kWordBits] &= ~bit;
  bucket(site, to)[i / kWordBits] |= bit;
  const auto s_index = static_cast<std::size_t>(&site - sites_.data());
  if (--bucket_count_[site.count_base + static_cast<std::size_t>(from)] ==
      0) {
    update_mask(s_index, from, false);
  }
  if (++bucket_count_[site.count_base + static_cast<std::size_t>(to)] == 1) {
    update_mask(s_index, to, true);
  }
}

void SiteBlock::attach(SiteState& site, int server, std::int64_t vm_id,
                       int cores, double memory_gb, bool degradable) {
  const std::size_t idx = site.server_base + static_cast<std::size_t>(server);
  const int old_free = free_cores_[idx];
  const bool was_top_used = old_free == top_ && vm_count_[idx] > 0;
  free_cores_[idx] -= cores;
  free_memory_gb_[idx] -= memory_gb;
  if (++vm_count_[idx] == 1) ++site.powered_servers;
  site.top_used +=
      static_cast<int>(free_cores_[idx] == top_ && vm_count_[idx] > 0) -
      static_cast<int>(was_top_used);
  move_bucket(site, server, old_free, free_cores_[idx]);
  site.allocated_cores += cores;
  site.allocated_memory_gb += memory_gb;
  std::vector<Victim>& order = victims_[idx];
  const Victim entry{degradable ? 0 : 1, vm_id, cores, memory_gb};
  const auto pos = std::lower_bound(
      order.begin(), order.end(), entry, [](const Victim& a, const Victim& b) {
        return a.rank != b.rank ? a.rank < b.rank : a.vm_id < b.vm_id;
      });
  order.insert(pos, entry);
}

void SiteBlock::detach(SiteState& site, int server, const Victim& entry) {
  const std::size_t idx = site.server_base + static_cast<std::size_t>(server);
  const int old_free = free_cores_[idx];
  const bool was_top_used = old_free == top_ && vm_count_[idx] > 0;
  free_cores_[idx] += entry.cores;
  free_memory_gb_[idx] += entry.memory_gb;
  if (--vm_count_[idx] == 0) --site.powered_servers;
  site.top_used +=
      static_cast<int>(free_cores_[idx] == top_ && vm_count_[idx] > 0) -
      static_cast<int>(was_top_used);
  move_bucket(site, server, old_free, free_cores_[idx]);
  std::vector<Victim>& order = victims_[idx];
  const auto pos = std::lower_bound(
      order.begin(), order.end(), entry, [](const Victim& a, const Victim& b) {
        return a.rank != b.rank ? a.rank < b.rank : a.vm_id < b.vm_id;
      });
  order.erase(pos);
  site.allocated_cores -= entry.cores;
  site.allocated_memory_gb -= entry.memory_gb;
}

int SiteBlock::place(std::size_t s, std::int64_t vm_id, int cores,
                     double memory_gb, bool degradable, BlockPolicy policy) {
  SiteState& site = sites_[s];
  int server = -1;
  switch (policy) {
    case BlockPolicy::first_fit:
      server = choose_first_fit(site, cores, memory_gb);
      break;
    case BlockPolicy::best_fit:
      server = choose_best_fit(site, cores, memory_gb);
      break;
    case BlockPolicy::worst_fit:
      server = choose_worst_fit(site, cores, memory_gb);
      break;
  }
  if (server < 0) return -1;
  attach(site, server, vm_id, cores, memory_gb, degradable);
  return server;
}

void SiteBlock::remove(std::size_t s, int server, std::int64_t vm_id,
                       int cores, double memory_gb, bool degradable) {
  detach(sites_[s], server, Victim{degradable ? 0 : 1, vm_id, cores,
                                   memory_gb});
}

void SiteBlock::shrink_to(std::size_t s, int available_cores,
                          std::vector<Evicted>& out) {
  SiteState& site = sites_[s];
  if (site.allocated_cores <= available_cores) return;

  // Round-robin over servers from the persistent cursor; within a server
  // the victim order (degradable first, then vm_id) is already maintained
  // by attach/detach.
  const int n = site.n_servers;
  for (int step = 0; step < n && site.allocated_cores > available_cores;
       ++step) {
    const int server = (site.eviction_cursor + step) % n;
    std::vector<Victim>& order =
        victims_[site.server_base + static_cast<std::size_t>(server)];
    while (!order.empty() && site.allocated_cores > available_cores) {
      const Victim entry = order.front();
      out.push_back(Evicted{entry.vm_id, entry.cores, entry.memory_gb,
                            server, entry.rank == 0});
      detach(site, server, entry);  // also pops the victim entry
    }
  }
  site.eviction_cursor = (site.eviction_cursor + 1) % n;
}

void SiteBlock::fail_servers(std::size_t s, int count,
                             std::vector<Evicted>& out) {
  SiteState& site = sites_[s];
  const int n = site.n_servers;
  for (int i = 0; i < n && count > 0; ++i) {
    const std::size_t idx = site.server_base + static_cast<std::size_t>(i);
    if (failed_[idx]) continue;
    --count;
    // Evict residents in the per-server victim order (degradable first,
    // then vm_id — the same priority-class order a power shrink uses).
    std::vector<Victim>& order = victims_[idx];
    while (!order.empty()) {
      const Victim entry = order.front();
      out.push_back(
          Evicted{entry.vm_id, entry.cores, entry.memory_gb, i,
                  entry.rank == 0});
      detach(site, i, entry);  // also pops the victim entry
    }
    // The server is empty now (all cores free): pull it out of the
    // bucket index so no choose query can see it until repair.
    const int b = free_cores_[idx];
    bucket(site, b)[static_cast<std::size_t>(i) / kWordBits] &=
        ~(std::uint64_t{1} << (static_cast<std::size_t>(i) % kWordBits));
    if (--bucket_count(site, b) == 0) {
      update_mask(s, b, false);
    }
    failed_[idx] = 1;
    ++site.failed_servers;
  }
}

void SiteBlock::repair_servers(std::size_t s, int count) {
  SiteState& site = sites_[s];
  const int n = site.n_servers;
  for (int i = 0; i < n && count > 0; ++i) {
    const std::size_t idx = site.server_base + static_cast<std::size_t>(i);
    if (!failed_[idx]) continue;
    --count;
    const int b = free_cores_[idx];
    bucket(site, b)[static_cast<std::size_t>(i) / kWordBits] |=
        std::uint64_t{1} << (static_cast<std::size_t>(i) % kWordBits);
    if (++bucket_count(site, b) == 1) {
      update_mask(s, b, true);
    }
    failed_[idx] = 0;
    --site.failed_servers;
  }
}

int SiteBlock::first_fit_in_bucket(const SiteState& site, int b, int cores,
                                   double memory_gb) const {
  const std::uint64_t* const words = bucket(site, b);
  for (std::size_t w = 0; w < site.n_words; ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const auto i = w * kWordBits +
                     static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::size_t idx = site.server_base + i;
      if (free_cores_[idx] >= cores && free_memory_gb_[idx] >= memory_gb) {
        return static_cast<int>(i);
      }
    }
  }
  return -1;
}

int SiteBlock::choose_first_fit(const SiteState& site, int cores,
                                double memory_gb) const {
  const int lo = std::clamp(cores, 0, top_ + 1);
  if (lo > top_) return -1;
  // Lowest server id across every viable bucket: merge the buckets word
  // by word so ids come out in index order.
  for (std::size_t w = 0; w < site.n_words; ++w) {
    std::uint64_t merged = 0;
    for (int b = lo; b <= top_; ++b) {
      if (bucket_count(site, b) > 0) merged |= bucket(site, b)[w];
    }
    while (merged != 0) {
      const auto i = w * kWordBits +
                     static_cast<std::size_t>(std::countr_zero(merged));
      merged &= merged - 1;
      const std::size_t idx = site.server_base + i;
      if (free_cores_[idx] >= cores && free_memory_gb_[idx] >= memory_gb) {
        return static_cast<int>(i);
      }
    }
  }
  return -1;
}

int SiteBlock::choose_best_fit(const SiteState& site, int cores,
                               double memory_gb) const {
  const int lo = std::clamp(cores, 0, top_ + 1);
  const auto s_index = static_cast<std::size_t>(&site - sites_.data());
  // Buckets below the top hold only partially-used servers (an empty
  // server has every core free), so the first fit there is the answer.
  for (int b = next_nonempty(s_index, lo, top_); b < top_;
       b = next_nonempty(s_index, b + 1, top_)) {
    const int hit = first_fit_in_bucket(site, b, cores, memory_gb);
    if (hit >= 0) return hit;
  }
  if (lo > top_ || bucket_count(site, top_) == 0) return -1;
  // Top bucket: prefer a server already hosting VMs (never start an empty
  // server if a partially-used one fits) — only zero-core VMs can put a
  // used server here. With none present (the overwhelmingly common case,
  // tracked by top_used), every candidate is a factory-empty server with
  // identical capacity: answer with the first set bit instead of sweeping
  // per-server columns.
  if (site.top_used == 0) {
    if (cores > top_ || memory_gb > server_memory_gb_) return -1;
    const std::uint64_t* const words = bucket(site, top_);
    for (std::size_t w = 0; w < site.n_words; ++w) {
      if (words[w] != 0) {
        return static_cast<int>(w * kWordBits +
                                static_cast<std::size_t>(
                                    std::countr_zero(words[w])));
      }
    }
    return -1;  // unreachable: bucket_count(top_) > 0
  }
  int first_empty = -1;
  const std::uint64_t* const words = bucket(site, top_);
  for (std::size_t w = 0; w < site.n_words; ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const auto i = w * kWordBits +
                     static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::size_t idx = site.server_base + i;
      if (free_cores_[idx] < cores || free_memory_gb_[idx] < memory_gb) {
        continue;
      }
      if (vm_count_[idx] > 0) return static_cast<int>(i);
      if (first_empty < 0) first_empty = static_cast<int>(i);
    }
  }
  return first_empty;
}

int SiteBlock::choose_worst_fit(const SiteState& site, int cores,
                                double memory_gb) const {
  const int lo = std::clamp(cores, 0, top_ + 1);
  if (lo > top_) return -1;
  const auto s_index = static_cast<std::size_t>(&site - sites_.data());
  for (int b = prev_nonempty(s_index, top_, lo); b >= lo;
       b = prev_nonempty(s_index, b - 1, lo)) {
    const int hit = first_fit_in_bucket(site, b, cores, memory_gb);
    if (hit >= 0) return hit;
  }
  return -1;
}

}  // namespace vbatt::dcsim
