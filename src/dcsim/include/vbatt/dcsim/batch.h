// Checkpointed batch jobs on degradable capacity.
//
// §2.3 pitches batch / ML-training jobs as the natural consumers of a VB's
// *variable* energy (Harvest/Spot-style), and §4 cites checkpointing
// systems (CheckFreq, SCR) as the enabling mechanism. This module models
// the goodput of batch work running on power-driven preemptible capacity:
// jobs checkpoint every τ; a power dip preempts slots, losing the work
// since the last checkpoint plus a restore cost on resume. The classic
// Young–Daly rule gives the optimal τ from the checkpoint cost and the
// observed mean time between preemptions.
#pragma once

#include <vector>

#include "vbatt/util/time.h"

namespace vbatt::dcsim {

struct BatchConfig {
  /// Checkpoint cadence, hours of work between checkpoints.
  double checkpoint_interval_hours = 1.0;
  /// Time to write one checkpoint, minutes.
  double checkpoint_cost_minutes = 2.0;
  /// Time to restore a preempted slot when capacity returns, minutes.
  double restore_cost_minutes = 3.0;
};

struct BatchResult {
  /// VM-hours of degradable capacity offered by the power trace.
  double offered_vm_hours = 0.0;
  /// VM-hours of actual forward progress.
  double useful_vm_hours = 0.0;
  double checkpoint_overhead_hours = 0.0;
  double lost_work_hours = 0.0;
  double restore_overhead_hours = 0.0;
  /// Slot preemption events (capacity drops).
  std::int64_t preemptions = 0;

  /// Useful fraction of the offered capacity.
  double goodput() const noexcept {
    return offered_vm_hours > 0.0 ? useful_vm_hours / offered_vm_hours : 0.0;
  }
};

/// Run the expected-value batch model over a per-tick count of runnable
/// degradable VM slots (e.g. from a SimResult or a power trace scaled to
/// slots). Preemptions are capacity drops; each preempted slot loses on
/// average half a checkpoint interval of work (capped by the interval).
BatchResult run_batch_jobs(const util::TimeAxis& axis,
                           const std::vector<int>& active_slots,
                           const BatchConfig& config = {});

/// Young–Daly optimal checkpoint interval: sqrt(2 * cost * MTBF).
double young_daly_interval_hours(double checkpoint_cost_hours,
                                 double mtbf_hours);

/// Mean time between preemptions per slot implied by a capacity series:
/// total slot-hours / preemption events. Returns +inf with no events.
double observed_mtbf_hours(const util::TimeAxis& axis,
                           const std::vector<int>& active_slots);

}  // namespace vbatt::dcsim
