// A VB site: a cluster of servers under a power cap.
//
// Models §3's experimental site: ~700 servers of 40 cores / 512 GB, an
// admission-control utilization cap (70%), and the paper's power-shrink
// policy: power down unallocated cores first, then evict VMs from servers
// in round-robin order.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "vbatt/util/time.h"
#include "vbatt/workload/vm.h"

namespace vbatt::dcsim {

struct ServerSpec {
  int cores = 40;
  double memory_gb = 512.0;
};

struct SiteConfig {
  int n_servers = 700;
  ServerSpec server{};
  /// Admission control rejects VMs that would push allocated cores above
  /// this fraction of the *currently powered* capacity (the paper's 70%).
  /// The 30% headroom is exactly what lets minor power dips be absorbed by
  /// powering down unallocated cores (Fig. 4a: >80% of power changes cause
  /// no migration).
  double utilization_cap = 0.70;
};

/// A VM resident on (or pending for) a site.
struct VmInstance {
  std::int64_t vm_id = 0;
  std::int64_t app_id = -1;
  workload::VmShape shape{};
  workload::VmClass vm_class = workload::VmClass::stable;
  /// Tick at which the VM departs (exclusive); <0 = runs forever.
  util::Tick end_tick = -1;
  /// Server currently hosting the VM (meaningful for placed VMs only).
  int server = -1;
};

/// Per-server free-resource bookkeeping.
struct ServerState {
  int free_cores = 0;
  double free_memory_gb = 0.0;
  int vm_count = 0;
};

class Site;

/// Strategy choosing a host server for a VM. Returns the server index or
/// std::nullopt when no server fits.
class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;
  virtual std::optional<int> choose(const Site& site,
                                    const workload::VmShape& shape) = 0;
};

class Site {
 public:
  explicit Site(SiteConfig config);

  const SiteConfig& config() const noexcept { return config_; }
  int total_cores() const noexcept {
    return config_.n_servers * config_.server.cores;
  }
  int allocated_cores() const noexcept { return allocated_cores_; }
  double allocated_memory_gb() const noexcept { return allocated_memory_gb_; }
  std::size_t vm_count() const noexcept { return vms_.size(); }
  double utilization() const noexcept {
    return static_cast<double>(allocated_cores_) / total_cores();
  }

  const std::vector<ServerState>& servers() const noexcept { return servers_; }

  /// Cores that must stay powered: exactly the allocated ones (unallocated
  /// cores are powered down for free — the paper's first-line response).
  int required_cores() const noexcept { return allocated_cores_; }

  /// Whether a VM of `shape` passes admission control (utilization cap and
  /// the current power budget of `available_cores`).
  bool admits(const workload::VmShape& shape, int available_cores) const;

  /// Place a VM via `policy`. Returns false if no server fits (admission
  /// must be checked by the caller; placement can still fail on
  /// fragmentation).
  bool place(const VmInstance& vm, AllocationPolicy& policy);

  /// Remove a VM (departure or migration); no-op returns nullopt if absent.
  std::optional<VmInstance> remove(std::int64_t vm_id);

  /// Shrink to the power budget: evict VMs from servers in round-robin
  /// order until allocated cores <= available_cores. Evicted VMs are
  /// returned (the caller decides whether they migrate or die). Degradable
  /// VMs on a server are evicted before stable ones — they absorb the hit,
  /// per §3.1's "sources of benefits".
  std::vector<VmInstance> shrink_to(int available_cores);

  /// All VMs whose end_tick == t, removed from the site.
  std::vector<VmInstance> collect_departures(util::Tick t);

  /// Look up a resident VM.
  const VmInstance* find(std::int64_t vm_id) const;

 private:
  void detach(const VmInstance& vm);

  SiteConfig config_;
  std::vector<ServerState> servers_;
  std::unordered_map<std::int64_t, VmInstance> vms_;
  int allocated_cores_ = 0;
  double allocated_memory_gb_ = 0.0;
  /// Round-robin eviction cursor over servers (persists across shrinks, as
  /// in the paper's round-robin order).
  int eviction_cursor_ = 0;
};

/// First server with room.
class FirstFitPolicy final : public AllocationPolicy {
 public:
  std::optional<int> choose(const Site& site,
                            const workload::VmShape& shape) override;
};

/// Server with the least free cores that still fits: consolidates load so
/// unallocated cores concentrate on empty servers (which then power down
/// first). This mimics Protean-style packing and is what produces the
/// paper's ">80% of power changes cause no migration".
class BestFitPolicy final : public AllocationPolicy {
 public:
  std::optional<int> choose(const Site& site,
                            const workload::VmShape& shape) override;
};

/// Server with the most free cores: anti-consolidation baseline for
/// ablations.
class WorstFitPolicy final : public AllocationPolicy {
 public:
  std::optional<int> choose(const Site& site,
                            const workload::VmShape& shape) override;
};

/// Protean-style policy (Hadary et al., OSDI '20 — the paper's VM
/// allocation reference): consolidate like best-fit, but break core ties
/// by least free memory so both dimensions pack tightly and large-memory
/// VMs keep landing spots.
class ProteanLikePolicy final : public AllocationPolicy {
 public:
  std::optional<int> choose(const Site& site,
                            const workload::VmShape& shape) override;
};

}  // namespace vbatt::dcsim
