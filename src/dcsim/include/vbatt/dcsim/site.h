// A VB site: a cluster of servers under a power cap.
//
// Models §3's experimental site: ~700 servers of 40 cores / 512 GB, an
// admission-control utilization cap (70%), and the paper's power-shrink
// policy: power down unallocated cores first, then evict VMs from servers
// in round-robin order.
//
// The container is event-driven: every mutation (place / remove / shrink)
// maintains three incremental indices so the per-tick simulators never
// rescan the cluster —
//   * a free-cores bucket index (one bitset of server ids per free-core
//     count) that answers all four allocation-policy `choose` queries in
//     O(#buckets) instead of O(n_servers), returning the same server id as
//     the linear scan (see scan_reference.h for the retained reference);
//   * a calendar queue (min-heap on end_tick) so collect_departures costs
//     O(departures · log n) instead of a full-VM sweep;
//   * per-server victim order (degradable first, then vm_id) kept as an
//     ordered set so shrink_to no longer rebuilds and sorts a by-server
//     table on every power dip;
// plus O(1) powered-server / active-core counters for energy accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "vbatt/util/time.h"
#include "vbatt/workload/vm.h"

namespace vbatt::dcsim {

struct ServerSpec {
  int cores = 40;
  double memory_gb = 512.0;
};

struct SiteConfig {
  int n_servers = 700;
  ServerSpec server{};
  /// Admission control rejects VMs that would push allocated cores above
  /// this fraction of the *currently powered* capacity (the paper's 70%).
  /// The 30% headroom is exactly what lets minor power dips be absorbed by
  /// powering down unallocated cores (Fig. 4a: >80% of power changes cause
  /// no migration).
  double utilization_cap = 0.70;
};

/// A VM resident on (or pending for) a site.
struct VmInstance {
  std::int64_t vm_id = 0;
  std::int64_t app_id = -1;
  workload::VmShape shape{};
  workload::VmClass vm_class = workload::VmClass::stable;
  /// Tick at which the VM departs (exclusive); <0 = runs forever.
  util::Tick end_tick = -1;
  /// Server currently hosting the VM (meaningful for placed VMs only).
  int server = -1;
};

/// Per-server free-resource bookkeeping.
struct ServerState {
  int free_cores = 0;
  double free_memory_gb = 0.0;
  int vm_count = 0;
};

class Site;

/// Strategy choosing a host server for a VM. Returns the server index or
/// std::nullopt when no server fits.
class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;
  virtual std::optional<int> choose(const Site& site,
                                    const workload::VmShape& shape) = 0;
};

class Site {
 public:
  explicit Site(SiteConfig config);

  const SiteConfig& config() const noexcept { return config_; }
  int total_cores() const noexcept {
    return config_.n_servers * config_.server.cores;
  }
  int allocated_cores() const noexcept { return allocated_cores_; }
  double allocated_memory_gb() const noexcept { return allocated_memory_gb_; }
  std::size_t vm_count() const noexcept { return vms_.size(); }
  double utilization() const noexcept {
    return static_cast<double>(allocated_cores_) / total_cores();
  }

  const std::vector<ServerState>& servers() const noexcept { return servers_; }

  /// Servers currently hosting at least one VM (those draw power);
  /// maintained incrementally, O(1).
  int powered_servers() const noexcept { return powered_servers_; }
  /// Cores in use on powered servers — equals allocated cores, since only
  /// VMs allocate and only VM-hosting servers are powered. O(1), kept as
  /// its own accessor so energy accounting reads as intended.
  int active_cores() const noexcept { return allocated_cores_; }

  /// Cores that must stay powered: exactly the allocated ones (unallocated
  /// cores are powered down for free — the paper's first-line response).
  int required_cores() const noexcept { return allocated_cores_; }

  /// Whether a VM of `shape` passes admission control (utilization cap and
  /// the current power budget of `available_cores`).
  bool admits(const workload::VmShape& shape, int available_cores) const;

  /// Place a VM via `policy`. Returns false if no server fits (admission
  /// must be checked by the caller; placement can still fail on
  /// fragmentation).
  bool place(const VmInstance& vm, AllocationPolicy& policy);

  /// Remove a VM (departure or migration); no-op returns nullopt if absent.
  std::optional<VmInstance> remove(std::int64_t vm_id);

  /// Shrink to the power budget: evict VMs from servers in round-robin
  /// order until allocated cores <= available_cores. Evicted VMs are
  /// returned (the caller decides whether they migrate or die). Degradable
  /// VMs on a server are evicted before stable ones — they absorb the hit,
  /// per §3.1's "sources of benefits". Victim order is maintained
  /// incrementally per server; nothing is rebuilt or sorted here.
  std::vector<VmInstance> shrink_to(int available_cores);

  /// All VMs whose end_tick == t, removed from the site. Served from the
  /// departure calendar queue: O(departures · log n) per call.
  std::vector<VmInstance> collect_departures(util::Tick t);

  /// Hardware fault injection: take `count` healthy servers offline
  /// (lowest index first). Resident VMs are evicted and returned —
  /// degradable before stable per server, then by vm_id, the same
  /// priority-class order shrink_to uses. Failed servers leave the
  /// free-cores bucket index, so no allocation policy can choose them
  /// until repair. Returns fewer evictions than requested servers imply
  /// when the site runs out of healthy servers.
  std::vector<VmInstance> fail_servers(int count);

  /// Return `count` failed servers to service (lowest index first). The
  /// repaired servers come back empty and immediately placeable. Repairing
  /// more servers than are failed repairs all of them.
  void repair_servers(int count);

  /// Servers currently offline due to fail_servers.
  int failed_servers() const noexcept { return failed_servers_; }

  /// Whether server `i` is offline (invisible to every choose_* query).
  bool server_failed(std::size_t i) const noexcept {
    return failed_[i] != 0;
  }

  /// Cores on servers currently in service (total minus failed capacity);
  /// the capacity ceiling fault-aware callers should plan against.
  int online_cores() const noexcept {
    return (config_.n_servers - failed_servers_) * config_.server.cores;
  }

  /// Look up a resident VM.
  const VmInstance* find(std::int64_t vm_id) const;

  // Indexed allocation queries (used by the AllocationPolicy
  // implementations below). Each walks the free-cores buckets instead of
  // the server array and returns the exact server id the corresponding
  // linear scan in scan_reference.h would return.
  std::optional<int> choose_first_fit(const workload::VmShape& shape) const;
  std::optional<int> choose_best_fit(const workload::VmShape& shape) const;
  std::optional<int> choose_worst_fit(const workload::VmShape& shape) const;
  std::optional<int> choose_protean(const workload::VmShape& shape) const;

 private:
  void detach(const VmInstance& vm);
  void move_bucket(int server, int old_free, int new_free);
  /// Lowest-index server in bucket `b` at or after `from` whose free
  /// memory fits; -1 if none.
  int first_fit_in_bucket(int b, const workload::VmShape& shape) const;

  SiteConfig config_;
  std::vector<ServerState> servers_;
  std::unordered_map<std::int64_t, VmInstance> vms_;
  int allocated_cores_ = 0;
  double allocated_memory_gb_ = 0.0;
  int powered_servers_ = 0;
  int failed_servers_ = 0;
  /// failed_[i] != 0 while server i is offline (fault injection).
  std::vector<char> failed_;
  /// Round-robin eviction cursor over servers (persists across shrinks, as
  /// in the paper's round-robin order).
  int eviction_cursor_ = 0;

  /// Free-cores bucket index: buckets_[f] is a bitset of server ids whose
  /// free_cores == f; bucket_count_[f] its population (lets chooses skip
  /// empty buckets in O(1)).
  std::vector<std::vector<std::uint64_t>> buckets_;
  std::vector<int> bucket_count_;

  /// Per-server eviction order: (0 for degradable / 1 for stable, vm_id),
  /// kept as a flat sorted vector — a server hosts few VMs, so shifting on
  /// insert/erase beats a node-based set's allocation per placement.
  std::vector<std::vector<std::pair<int, std::int64_t>>> victims_;

  /// Departure calendar queue: (end_tick, vm_id), lazily invalidated —
  /// entries whose VM is gone or re-placed with a different end_tick are
  /// skipped on pop.
  using Departure = std::pair<util::Tick, std::int64_t>;
  std::priority_queue<Departure, std::vector<Departure>,
                      std::greater<Departure>>
      departures_;
};

/// First server with room.
class FirstFitPolicy final : public AllocationPolicy {
 public:
  std::optional<int> choose(const Site& site,
                            const workload::VmShape& shape) override;
};

/// Server with the least free cores that still fits: consolidates load so
/// unallocated cores concentrate on empty servers (which then power down
/// first). Never starts an empty server if a partially-used one fits
/// (ties on free cores break toward servers already hosting VMs — this
/// only matters for zero-core shapes, where free cores alone cannot tell
/// an empty server from a used one). This mimics Protean-style packing
/// and is what produces the paper's ">80% of power changes cause no
/// migration".
class BestFitPolicy final : public AllocationPolicy {
 public:
  std::optional<int> choose(const Site& site,
                            const workload::VmShape& shape) override;
};

/// Server with the most free cores: anti-consolidation baseline for
/// ablations.
class WorstFitPolicy final : public AllocationPolicy {
 public:
  std::optional<int> choose(const Site& site,
                            const workload::VmShape& shape) override;
};

/// Protean-style policy (Hadary et al., OSDI '20 — the paper's VM
/// allocation reference): consolidate like best-fit, but break core ties
/// by least free memory so both dimensions pack tightly and large-memory
/// VMs keep landing spots.
class ProteanLikePolicy final : public AllocationPolicy {
 public:
  std::optional<int> choose(const Site& site,
                            const workload::VmShape& shape) override;
};

}  // namespace vbatt::dcsim
