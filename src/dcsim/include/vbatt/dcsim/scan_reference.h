// Retained linear-scan allocation chooses.
//
// These are the original O(n_servers) `AllocationPolicy::choose` loops the
// free-cores bucket index replaced. They are kept (a) as the executable
// specification of each policy's exact semantics — including tie-breaks —
// and (b) as the oracle for the property tests and the scale bench: every
// indexed choose on Site must return the identical server id these scans
// return, on any reachable site state. Failed servers stay in servers()
// with their free capacity intact but are never placement candidates, so
// every scan checks server_failed(i) first.
#pragma once

#include <optional>

#include "vbatt/dcsim/site.h"

namespace vbatt::dcsim::scan_reference {

/// First server with room, by index.
inline std::optional<int> first_fit(const Site& site,
                                    const workload::VmShape& shape) {
  const auto& servers = site.servers();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    if (!site.server_failed(i) && servers[i].free_cores >= shape.cores &&
        servers[i].free_memory_gb >= shape.memory_gb) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

/// Least free cores that still fit; ties prefer servers already hosting
/// VMs (never start an empty server if a partially-used one fits), then
/// the lowest index. The vm_count tie-break only fires for zero-core
/// shapes — for any positive shape a used server always has strictly
/// fewer free cores than an empty one.
inline std::optional<int> best_fit(const Site& site,
                                   const workload::VmShape& shape) {
  const auto& servers = site.servers();
  std::optional<int> best;
  int best_free = 0;
  bool best_used = false;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const ServerState& s = servers[i];
    if (site.server_failed(i) || s.free_cores < shape.cores ||
        s.free_memory_gb < shape.memory_gb) {
      continue;
    }
    const bool used = s.vm_count > 0;
    const bool better = !best || (used && !best_used) ||
                        (used == best_used && s.free_cores < best_free);
    if (better) {
      best = static_cast<int>(i);
      best_free = s.free_cores;
      best_used = used;
    }
  }
  return best;
}

/// Most free cores; ties to the lowest index.
inline std::optional<int> worst_fit(const Site& site,
                                    const workload::VmShape& shape) {
  const auto& servers = site.servers();
  std::optional<int> best;
  int best_free = -1;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const ServerState& s = servers[i];
    if (site.server_failed(i) || s.free_cores < shape.cores ||
        s.free_memory_gb < shape.memory_gb) {
      continue;
    }
    if (s.free_cores > best_free) {
      best = static_cast<int>(i);
      best_free = s.free_cores;
    }
  }
  return best;
}

/// Least free cores, then least free memory, then lowest index.
inline std::optional<int> protean(const Site& site,
                                  const workload::VmShape& shape) {
  const auto& servers = site.servers();
  std::optional<int> best;
  int best_free_cores = 0;
  double best_free_mem = 0.0;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const ServerState& s = servers[i];
    if (site.server_failed(i) || s.free_cores < shape.cores ||
        s.free_memory_gb < shape.memory_gb) {
      continue;
    }
    const bool better =
        !best || s.free_cores < best_free_cores ||
        (s.free_cores == best_free_cores && s.free_memory_gb < best_free_mem);
    if (better) {
      best = static_cast<int>(i);
      best_free_cores = s.free_cores;
      best_free_mem = s.free_memory_gb;
    }
  }
  return best;
}

}  // namespace vbatt::dcsim::scan_reference
