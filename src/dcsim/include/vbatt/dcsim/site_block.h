// SoA container for a contiguous block of sites — one simulation shard.
//
// Site keeps each VM as a node in a per-site unordered_map and each
// server's bookkeeping behind two levels of vector indirection; at fleet
// scale (1000 sites, millions of VMs) that scatters the hot state of a
// shard across the heap and pays a hash or an allocation per placement.
// SiteBlock stores the same state as flat parallel arrays shared by every
// site in the block — server free-resource columns, one contiguous
// free-cores bucket-bitset region, per-server victim lists that carry the
// victim's shape inline — so a shard's tick touches a few dense arrays
// instead of chasing pointers.
//
// Semantics are a field-for-field port of Site: choose_first/best/worst
// fit answer with the exact server id Site would pick, shrink_to uses the
// same persistent round-robin cursor (advanced by one only when the call
// had to evict), and fail/repair walk servers lowest-index-first. The
// differential test in tests/test_dcsim_site_block.cpp drives both
// containers through identical op streams and demands identical answers.
// What SiteBlock deliberately does not replicate: Site's internal
// departure calendar (the VM-level engines keep their own app-level
// calendar and never call collect_departures) and per-VM instance storage
// (the engine owns VM identity in its own SoA arrays; SiteBlock only
// needs each resident's shape, which its victim entries carry).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vbatt/dcsim/site.h"

namespace vbatt::dcsim {

/// The allocation policies the VM-level engines use (a strategy object is
/// pointless here: the block answers choose queries itself).
enum class BlockPolicy { first_fit, best_fit, worst_fit };

class SiteBlock {
 public:
  /// A VM evicted by shrink_to or fail_servers. Shape and class ride
  /// along so the caller needs no side lookup to detach its bookkeeping.
  struct Evicted {
    std::int64_t vm_id = 0;
    std::int32_t cores = 0;
    double memory_gb = 0.0;
    std::int32_t server = -1;
    bool degradable = false;
  };

  /// One config per site in the block (empty = inert block). All sites
  /// must share one ServerSpec (the VM-level engines size every site from
  /// the same config.server); throws std::invalid_argument otherwise.
  explicit SiteBlock(const std::vector<SiteConfig>& configs);

  std::size_t n_sites() const noexcept { return sites_.size(); }
  int n_servers(std::size_t s) const { return sites_[s].n_servers; }
  int allocated_cores(std::size_t s) const { return sites_[s].allocated_cores; }
  double allocated_memory_gb(std::size_t s) const {
    return sites_[s].allocated_memory_gb;
  }
  int powered_servers(std::size_t s) const { return sites_[s].powered_servers; }
  /// Equals allocated cores — see Site::active_cores.
  int active_cores(std::size_t s) const { return sites_[s].allocated_cores; }
  int failed_servers(std::size_t s) const { return sites_[s].failed_servers; }

  /// Choose a server under `policy` and commit the placement. Returns the
  /// hosting server id (identical to Site::place via the matching
  /// AllocationPolicy) or -1 when no server fits.
  int place(std::size_t s, std::int64_t vm_id, int cores, double memory_gb,
            bool degradable, BlockPolicy policy);

  /// Detach one resident VM (departure or migration). The caller names
  /// the hosting server and the VM's shape/class exactly as placed.
  void remove(std::size_t s, int server, std::int64_t vm_id, int cores,
              double memory_gb, bool degradable);

  /// Evict round-robin until allocated cores <= available_cores,
  /// appending victims to `out` in eviction order (Site::shrink_to's
  /// order: degradable first, then vm_id, per server). The persistent
  /// cursor advances only when the site was over budget on entry.
  void shrink_to(std::size_t s, int available_cores,
                 std::vector<Evicted>& out);

  /// Take `count` healthy servers offline (lowest index first), evicting
  /// their residents into `out` in Site::fail_servers order.
  void fail_servers(std::size_t s, int count, std::vector<Evicted>& out);

  /// Return `count` failed servers to service (lowest index first).
  void repair_servers(std::size_t s, int count);

 private:
  /// Victim-order entry: sorted by (rank, vm_id); rank 0 = degradable,
  /// 1 = stable (degradable VMs are evicted first). Shape rides along so
  /// evictions never consult caller state.
  struct Victim {
    std::int32_t rank = 0;
    std::int64_t vm_id = 0;
    std::int32_t cores = 0;
    double memory_gb = 0.0;
  };

  /// Per-site header over the flat server/bucket columns.
  struct SiteState {
    std::int32_t n_servers = 0;
    std::size_t server_base = 0;  // index into server columns / victims_
    std::size_t word_base = 0;    // index into bucket_words_, per bucket
    std::size_t n_words = 0;      // bitset words per bucket at this site
    std::size_t count_base = 0;   // index into bucket_count_
    int allocated_cores = 0;
    double allocated_memory_gb = 0.0;
    int powered_servers = 0;
    int failed_servers = 0;
    int eviction_cursor = 0;
    /// Servers in the top (all-cores-free) bucket that still host VMs —
    /// only zero-core VMs can create them. While 0, best-fit's "prefer a
    /// used server" sweep over the top bucket is provably empty, so the
    /// query short-circuits to the first set bit (every candidate is a
    /// factory-empty server with identical capacity).
    int top_used = 0;
  };

  void move_bucket(const SiteState& site, int server, int old_free,
                   int new_free);
  void attach(SiteState& site, int server, std::int64_t vm_id, int cores,
              double memory_gb, bool degradable);
  /// Pops the victim entry and restores free resources; `entry` must be a
  /// current victim of `server`.
  void detach(SiteState& site, int server, const Victim& entry);

  int choose_first_fit(const SiteState& site, int cores,
                       double memory_gb) const;
  int choose_best_fit(const SiteState& site, int cores,
                      double memory_gb) const;
  int choose_worst_fit(const SiteState& site, int cores,
                       double memory_gb) const;
  /// Lowest-index fitting server in bucket `b` of `site`; -1 if none.
  int first_fit_in_bucket(const SiteState& site, int b, int cores,
                          double memory_gb) const;

  std::uint64_t* bucket(const SiteState& site, int b) {
    return bucket_words_.data() + site.word_base +
           static_cast<std::size_t>(b) * site.n_words;
  }
  const std::uint64_t* bucket(const SiteState& site, int b) const {
    return bucket_words_.data() + site.word_base +
           static_cast<std::size_t>(b) * site.n_words;
  }
  int& bucket_count(const SiteState& site, int b) {
    return bucket_count_[site.count_base + static_cast<std::size_t>(b)];
  }
  int bucket_count(const SiteState& site, int b) const {
    return bucket_count_[site.count_base + static_cast<std::size_t>(b)];
  }

  int top_ = 0;  // server cores; bucket ids run 0..top_
  double server_memory_gb_ = 0.0;
  std::vector<SiteState> sites_;

  // Server columns, all indexed by site.server_base + local server id.
  std::vector<std::int32_t> free_cores_;
  std::vector<double> free_memory_gb_;
  std::vector<std::int32_t> vm_count_;
  std::vector<std::uint8_t> failed_;
  std::vector<std::vector<Victim>> victims_;

  /// All bucket bitsets of the whole block, one contiguous region:
  /// site s, bucket b lives at [word_base + b*n_words, +n_words).
  std::vector<std::uint64_t> bucket_words_;
  /// Population per (site, bucket), flat at bucket_count_base + b.
  std::vector<int> bucket_count_;
  /// One bit per bucket, set while the bucket is nonempty, so choose
  /// queries skip empty fill levels with a bit scan instead of walking
  /// the count array. Site s's mask starts at s * mask_words_.
  std::vector<std::uint64_t> bucket_mask_;
  std::size_t mask_words_ = 0;

  void update_mask(std::size_t s_index, int b, bool nonempty) {
    const std::size_t w =
        s_index * mask_words_ + static_cast<std::size_t>(b) / 64;
    const std::uint64_t bit = std::uint64_t{1}
                              << (static_cast<std::size_t>(b) % 64);
    if (nonempty) {
      bucket_mask_[w] |= bit;
    } else {
      bucket_mask_[w] &= ~bit;
    }
  }
  /// Lowest nonempty bucket id in [from, limit), or `limit` if none.
  int next_nonempty(std::size_t s_index, int from, int limit) const;
  /// Highest nonempty bucket id in [limit, from], or limit - 1 if none.
  int prev_nonempty(std::size_t s_index, int from, int limit) const;
};

}  // namespace vbatt::dcsim
