// Single-site trace-driven simulation (§3, Figure 4).
//
// Replays a VM arrival trace against one VB site powered by a renewable
// trace scaled so that full farm output powers the whole cluster. Power
// drops first power down unallocated cores; if allocation still exceeds
// the budget, VMs are evicted server-by-server round-robin and their
// memory footprint is charged as outbound migration traffic. Rejected or
// evicted VMs are relaunched when power returns, charged as inbound
// traffic (the paper's accounting).
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/energy/trace.h"
#include "vbatt/net/ledger.h"
#include "vbatt/dcsim/site.h"
#include "vbatt/workload/batch.h"
#include "vbatt/workload/vm.h"

namespace vbatt::dcsim {

struct SiteSimConfig {
  SiteConfig site{};
  /// If true (Fig. 4 accounting), evicted VMs re-enter the pending queue
  /// and are relaunched ("migrated in") when power returns.
  bool relaunch_evicted = true;
  /// How long a rejected/evicted VM waits for power before being served
  /// elsewhere. Bounded: a request never outwaits its own lifetime either.
  /// This is what keeps dawn relaunch floods small relative to dusk
  /// eviction cliffs (Fig. 4b: in-spikes ≈7x smaller than out at the 99th).
  double pending_retry_window_hours = 3.0;
  /// Server power model: a server hosting at least one VM draws idle
  /// power plus per-active-core power; empty servers are off (the paper's
  /// "power down unallocated cores", at server granularity).
  double server_idle_watts = 150.0;
  double watts_per_active_core = 8.0;
  /// Opt-in batch overlay (deadline jobs + suspendable harvest tasks),
  /// gang-scheduled each tick onto `available - allocated` cores. Site
  /// indices in the workload must all be 0 (one site). Null keeps the run
  /// byte-identical.
  const workload::BatchWorkload* batch = nullptr;
};

struct SiteSimResult {
  /// Per-tick outbound / inbound migration traffic, GB.
  std::vector<double> out_gb;
  std::vector<double> in_gb;
  /// Per-tick available cores (after the power cap) and allocated cores.
  std::vector<int> available_cores;
  std::vector<int> allocated_cores;

  std::int64_t power_change_ticks = 0;   // ticks where the core budget moved
  std::int64_t migration_ticks = 0;      // power-change ticks with evictions
  std::int64_t vms_rejected = 0;         // admission-control rejections
  std::int64_t vms_evicted = 0;
  std::int64_t vms_relaunched = 0;
  /// Compute energy drawn over the run, MWh, and its powered-server basis
  /// (allocation-policy consolidation shows up here).
  double energy_mwh = 0.0;
  std::int64_t powered_server_ticks = 0;
  /// Batch overlay counters; all zero unless SiteSimConfig::batch is set.
  workload::BatchStats batch;

  /// Fraction of power changes that caused no migration (paper: >80%).
  double no_migration_fraction() const noexcept {
    return power_change_ticks == 0
               ? 1.0
               : 1.0 - static_cast<double>(migration_ticks) /
                           static_cast<double>(power_change_ticks);
  }
};

/// Run the simulation: `power` supplies one normalized sample per tick and
/// `vms` must be sorted by arrival tick (as the generator emits them).
SiteSimResult simulate_site(const energy::PowerTrace& power,
                            const std::vector<workload::VmRequest>& vms,
                            const SiteSimConfig& config,
                            AllocationPolicy& policy);

}  // namespace vbatt::dcsim
