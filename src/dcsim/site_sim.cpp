#include "vbatt/dcsim/site_sim.h"

#include <cmath>
#include <deque>
#include <stdexcept>

namespace vbatt::dcsim {

namespace {

/// A VM waiting for power (rejected at arrival or evicted): relaunching it
/// counts as in-migration.
struct PendingVm {
  VmInstance vm;
  util::Tick lifetime_ticks = 0;  // remaining run time once (re)launched
  util::Tick queued_at = 0;
};

}  // namespace

SiteSimResult simulate_site(const energy::PowerTrace& power,
                            const std::vector<workload::VmRequest>& vms,
                            const SiteSimConfig& config,
                            AllocationPolicy& policy) {
  const std::size_t n_ticks = power.size();
  if (n_ticks == 0) throw std::invalid_argument{"simulate_site: empty trace"};

  Site site{config.site};
  const int total_cores = site.total_cores();

  SiteSimResult result;
  result.out_gb.assign(n_ticks, 0.0);
  result.in_gb.assign(n_ticks, 0.0);
  result.available_cores.assign(n_ticks, 0);
  result.allocated_cores.assign(n_ticks, 0);

  // Opt-in batch overlay on the cores the service VMs leave free.
  const bool has_overlay = config.batch != nullptr && !config.batch->empty();
  workload::BatchOverlay overlay = has_overlay
                                       ? workload::BatchOverlay{*config.batch}
                                       : workload::BatchOverlay{};
  std::vector<std::int64_t> overlay_free(1, 0);

  std::deque<PendingVm> pending;
  std::size_t next_vm = 0;
  int prev_available = total_cores;
  const util::Tick retry_ticks =
      power.axis().from_hours(config.pending_retry_window_hours);

  for (std::size_t i = 0; i < n_ticks; ++i) {
    const auto t = static_cast<util::Tick>(i);
    // The farm at full output powers the full cluster (paper's scaling).
    const int available = static_cast<int>(
        std::floor(power.normalized(t) * total_cores));
    result.available_cores[i] = available;
    if (i > 0 && available != prev_available) ++result.power_change_ticks;

    // 1. Departures free resources.
    (void)site.collect_departures(t);

    // 2. Power shrink: idle cores absorb the dip for free; evict past that.
    if (site.allocated_cores() > available) {
      const std::vector<VmInstance> evicted = site.shrink_to(available);
      if (!evicted.empty() && i > 0 && available != prev_available) {
        ++result.migration_ticks;
      }
      for (const VmInstance& vm : evicted) {
        result.out_gb[i] += vm.shape.memory_gb;
        ++result.vms_evicted;
        if (config.relaunch_evicted && (vm.end_tick < 0 || vm.end_tick > t)) {
          const util::Tick remaining =
              vm.end_tick < 0 ? -1 : vm.end_tick - t;
          pending.push_back(PendingVm{vm, remaining, t});
        }
      }
    }

    // 3. Arrivals.
    while (next_vm < vms.size() && vms[next_vm].arrival <= t) {
      const workload::VmRequest& req = vms[next_vm];
      VmInstance vm;
      vm.vm_id = req.vm_id;
      vm.app_id = req.app_id;
      vm.shape = req.shape;
      vm.vm_class = req.vm_class;
      vm.end_tick = req.lifetime_ticks < 0 ? -1 : t + req.lifetime_ticks;
      if (site.admits(vm.shape, available) && site.place(vm, policy)) {
        // Admitted fresh arrivals are not migration traffic.
      } else {
        ++result.vms_rejected;
        pending.push_back(PendingVm{
            vm, req.lifetime_ticks < 0 ? -1 : req.lifetime_ticks, t});
      }
      ++next_vm;
    }

    // 4. Power growth: relaunch pending VMs ("migrated into the site").
    std::size_t scan = pending.size();
    while (scan-- > 0 && !pending.empty()) {
      PendingVm entry = pending.front();
      pending.pop_front();
      // A request does not wait longer than its own lifetime or the retry
      // window; it would have been served elsewhere.
      const util::Tick waited = t - entry.queued_at;
      if ((entry.lifetime_ticks >= 0 && waited > entry.lifetime_ticks) ||
          waited > retry_ticks) {
        continue;
      }
      if (!site.admits(entry.vm.shape, available)) {
        pending.push_back(entry);
        continue;
      }
      VmInstance vm = entry.vm;
      vm.end_tick =
          entry.lifetime_ticks < 0 ? -1 : t + entry.lifetime_ticks;
      if (site.place(vm, policy)) {
        result.in_gb[i] += vm.shape.memory_gb;
        ++result.vms_relaunched;
      } else {
        pending.push_back(entry);
      }
    }

    result.allocated_cores[i] = site.allocated_cores();
    prev_available = available;

    if (has_overlay) {
      const std::int64_t free = available - site.allocated_cores();
      overlay_free[0] = free > 0 ? free : 0;
      overlay.step(t, overlay_free);
    }

    // Energy: powered servers (those hosting VMs) draw idle + active-core
    // power for this tick. Both counts are maintained incrementally by the
    // site, so this is O(1) instead of a server sweep.
    const int powered = site.powered_servers();
    const int active_cores = site.active_cores();
    result.powered_server_ticks += powered;
    const double hours_per_tick = power.axis().minutes_per_tick() / 60.0;
    result.energy_mwh += (powered * config.server_idle_watts +
                          active_cores * config.watts_per_active_core) *
                         hours_per_tick / 1e6;
  }
  if (has_overlay) {
    overlay.finalize();
    result.batch = overlay.stats();
  }
  return result;
}

}  // namespace vbatt::dcsim
