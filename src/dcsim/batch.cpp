#include "vbatt/dcsim/batch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vbatt::dcsim {

BatchResult run_batch_jobs(const util::TimeAxis& axis,
                           const std::vector<int>& active_slots,
                           const BatchConfig& config) {
  if (config.checkpoint_interval_hours <= 0.0 ||
      config.checkpoint_cost_minutes < 0.0 ||
      config.restore_cost_minutes < 0.0) {
    throw std::invalid_argument{"BatchConfig: invalid"};
  }
  const double hours_per_tick = axis.minutes_per_tick() / 60.0;
  const double ckpt_cost_hours = config.checkpoint_cost_minutes / 60.0;
  const double restore_hours = config.restore_cost_minutes / 60.0;
  const double tau = config.checkpoint_interval_hours;

  BatchResult result;
  int prev = active_slots.empty() ? 0 : active_slots.front();
  for (std::size_t i = 0; i < active_slots.size(); ++i) {
    const int slots = active_slots[i];
    if (slots < 0) throw std::invalid_argument{"negative slot count"};
    result.offered_vm_hours += slots * hours_per_tick;
    // Steady-state checkpoint overhead: cost/(tau+cost) of the run time.
    result.checkpoint_overhead_hours +=
        slots * hours_per_tick * ckpt_cost_hours / (tau + ckpt_cost_hours);
    if (i > 0) {
      const int preempted = std::max(0, prev - slots);
      const int resumed = std::max(0, slots - prev);
      result.preemptions += preempted;
      // Expected rework per preempted slot: half an interval (uniform
      // preemption within the interval), never more than the interval.
      result.lost_work_hours +=
          preempted * std::min(tau, tau / 2.0 + ckpt_cost_hours / 2.0);
      result.restore_overhead_hours += resumed * restore_hours;
    }
    prev = slots;
  }
  result.useful_vm_hours = std::max(
      0.0, result.offered_vm_hours - result.checkpoint_overhead_hours -
               result.lost_work_hours - result.restore_overhead_hours);
  return result;
}

double young_daly_interval_hours(double checkpoint_cost_hours,
                                 double mtbf_hours) {
  if (checkpoint_cost_hours < 0.0 || mtbf_hours <= 0.0) {
    throw std::invalid_argument{"young_daly: invalid inputs"};
  }
  return std::sqrt(2.0 * checkpoint_cost_hours * mtbf_hours);
}

double observed_mtbf_hours(const util::TimeAxis& axis,
                           const std::vector<int>& active_slots) {
  const double hours_per_tick = axis.minutes_per_tick() / 60.0;
  double slot_hours = 0.0;
  std::int64_t events = 0;
  int prev = active_slots.empty() ? 0 : active_slots.front();
  for (std::size_t i = 0; i < active_slots.size(); ++i) {
    slot_hours += active_slots[i] * hours_per_tick;
    if (i > 0) events += std::max(0, prev - active_slots[i]);
    prev = active_slots[i];
  }
  return events > 0 ? slot_hours / static_cast<double>(events)
                    : std::numeric_limits<double>::infinity();
}

}  // namespace vbatt::dcsim
