#include "vbatt/dcsim/site.h"

#include <algorithm>
#include <stdexcept>

namespace vbatt::dcsim {

Site::Site(SiteConfig config) : config_{config} {
  if (config.n_servers <= 0 || config.server.cores <= 0 ||
      config.server.memory_gb <= 0.0) {
    throw std::invalid_argument{"SiteConfig: non-positive capacity"};
  }
  if (config.utilization_cap <= 0.0 || config.utilization_cap > 1.0) {
    throw std::invalid_argument{"SiteConfig: utilization_cap out of (0, 1]"};
  }
  servers_.assign(static_cast<std::size_t>(config.n_servers),
                  ServerState{config.server.cores, config.server.memory_gb, 0});
}

bool Site::admits(const workload::VmShape& shape,
                  int available_cores) const {
  const int after = allocated_cores_ + shape.cores;
  const double cap = config_.utilization_cap *
                     static_cast<double>(std::min(available_cores,
                                                  total_cores()));
  return static_cast<double>(after) <= cap;
}

bool Site::place(const VmInstance& vm, AllocationPolicy& policy) {
  if (vms_.contains(vm.vm_id)) {
    throw std::invalid_argument{"Site::place: duplicate vm_id"};
  }
  const std::optional<int> server = policy.choose(*this, vm.shape);
  if (!server) return false;
  ServerState& s = servers_[static_cast<std::size_t>(*server)];
  s.free_cores -= vm.shape.cores;
  s.free_memory_gb -= vm.shape.memory_gb;
  ++s.vm_count;
  allocated_cores_ += vm.shape.cores;
  allocated_memory_gb_ += vm.shape.memory_gb;
  VmInstance placed = vm;
  placed.server = *server;
  vms_.emplace(vm.vm_id, placed);
  return true;
}

void Site::detach(const VmInstance& vm) {
  ServerState& s = servers_[static_cast<std::size_t>(vm.server)];
  s.free_cores += vm.shape.cores;
  s.free_memory_gb += vm.shape.memory_gb;
  --s.vm_count;
  allocated_cores_ -= vm.shape.cores;
  allocated_memory_gb_ -= vm.shape.memory_gb;
}

std::optional<VmInstance> Site::remove(std::int64_t vm_id) {
  const auto it = vms_.find(vm_id);
  if (it == vms_.end()) return std::nullopt;
  const VmInstance vm = it->second;
  detach(vm);
  vms_.erase(it);
  return vm;
}

std::vector<VmInstance> Site::shrink_to(int available_cores) {
  std::vector<VmInstance> evicted;
  if (allocated_cores_ <= available_cores) return evicted;

  // Index VMs by server for deterministic round-robin eviction. Within a
  // server, degradable VMs go first, then by vm_id for determinism.
  std::vector<std::vector<const VmInstance*>> by_server(servers_.size());
  for (const auto& [id, vm] : vms_) {
    by_server[static_cast<std::size_t>(vm.server)].push_back(&vm);
  }
  for (auto& list : by_server) {
    std::sort(list.begin(), list.end(),
              [](const VmInstance* a, const VmInstance* b) {
                if (a->vm_class != b->vm_class) {
                  return a->vm_class == workload::VmClass::degradable;
                }
                return a->vm_id < b->vm_id;
              });
  }

  const int n = static_cast<int>(servers_.size());
  std::vector<std::int64_t> victim_ids;
  for (int step = 0; step < n && allocated_cores_ > available_cores;
       ++step) {
    const auto server =
        static_cast<std::size_t>((eviction_cursor_ + step) % n);
    for (const VmInstance* vm : by_server[server]) {
      if (allocated_cores_ <= available_cores) break;
      victim_ids.push_back(vm->vm_id);
      // Detach immediately so allocated_cores_ tracks progress.
      evicted.push_back(*vm);
      detach(*vm);
    }
    by_server[server].clear();
  }
  eviction_cursor_ = (eviction_cursor_ + 1) % n;
  for (const std::int64_t id : victim_ids) vms_.erase(id);
  return evicted;
}

std::vector<VmInstance> Site::collect_departures(util::Tick t) {
  std::vector<VmInstance> out;
  for (auto it = vms_.begin(); it != vms_.end();) {
    if (it->second.end_tick >= 0 && it->second.end_tick <= t) {
      out.push_back(it->second);
      detach(it->second);
      it = vms_.erase(it);
    } else {
      ++it;
    }
  }
  // Deterministic order regardless of hash iteration.
  std::sort(out.begin(), out.end(),
            [](const VmInstance& a, const VmInstance& b) {
              return a.vm_id < b.vm_id;
            });
  return out;
}

const VmInstance* Site::find(std::int64_t vm_id) const {
  const auto it = vms_.find(vm_id);
  return it == vms_.end() ? nullptr : &it->second;
}

std::optional<int> FirstFitPolicy::choose(const Site& site,
                                          const workload::VmShape& shape) {
  const auto& servers = site.servers();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    if (servers[i].free_cores >= shape.cores &&
        servers[i].free_memory_gb >= shape.memory_gb) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

std::optional<int> BestFitPolicy::choose(const Site& site,
                                         const workload::VmShape& shape) {
  const auto& servers = site.servers();
  std::optional<int> best;
  int best_free = 0;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const ServerState& s = servers[i];
    if (s.free_cores < shape.cores || s.free_memory_gb < shape.memory_gb) {
      continue;
    }
    // Prefer the fullest server that fits; never start an empty server if
    // a partially-used one fits (consolidation).
    if (!best || s.free_cores < best_free) {
      best = static_cast<int>(i);
      best_free = s.free_cores;
    }
  }
  return best;
}

std::optional<int> ProteanLikePolicy::choose(const Site& site,
                                             const workload::VmShape& shape) {
  const auto& servers = site.servers();
  std::optional<int> best;
  int best_free_cores = 0;
  double best_free_mem = 0.0;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const ServerState& s = servers[i];
    if (s.free_cores < shape.cores || s.free_memory_gb < shape.memory_gb) {
      continue;
    }
    const bool better =
        !best || s.free_cores < best_free_cores ||
        (s.free_cores == best_free_cores && s.free_memory_gb < best_free_mem);
    if (better) {
      best = static_cast<int>(i);
      best_free_cores = s.free_cores;
      best_free_mem = s.free_memory_gb;
    }
  }
  return best;
}

std::optional<int> WorstFitPolicy::choose(const Site& site,
                                          const workload::VmShape& shape) {
  const auto& servers = site.servers();
  std::optional<int> best;
  int best_free = -1;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const ServerState& s = servers[i];
    if (s.free_cores < shape.cores || s.free_memory_gb < shape.memory_gb) {
      continue;
    }
    if (s.free_cores > best_free) {
      best = static_cast<int>(i);
      best_free = s.free_cores;
    }
  }
  return best;
}

}  // namespace vbatt::dcsim
