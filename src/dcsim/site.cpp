#include "vbatt/dcsim/site.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace vbatt::dcsim {

namespace {

constexpr std::size_t kWordBits = 64;

/// Eviction rank within a server: degradable VMs go first.
int victim_rank(const VmInstance& vm) {
  return vm.vm_class == workload::VmClass::degradable ? 0 : 1;
}

}  // namespace

Site::Site(SiteConfig config) : config_{config} {
  if (config.n_servers <= 0 || config.server.cores <= 0 ||
      config.server.memory_gb <= 0.0) {
    throw std::invalid_argument{"SiteConfig: non-positive capacity"};
  }
  if (config.utilization_cap <= 0.0 || config.utilization_cap > 1.0) {
    throw std::invalid_argument{"SiteConfig: utilization_cap out of (0, 1]"};
  }
  const auto n = static_cast<std::size_t>(config.n_servers);
  servers_.assign(n,
                  ServerState{config.server.cores, config.server.memory_gb, 0});
  victims_.assign(n, {});
  failed_.assign(n, 0);

  const std::size_t n_words = (n + kWordBits - 1) / kWordBits;
  buckets_.assign(static_cast<std::size_t>(config.server.cores) + 1,
                  std::vector<std::uint64_t>(n_words, 0));
  bucket_count_.assign(buckets_.size(), 0);
  // Every server starts empty: all of them live in the top (all-free)
  // bucket.
  std::vector<std::uint64_t>& top = buckets_.back();
  for (std::size_t i = 0; i < n; ++i) {
    top[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
  }
  bucket_count_.back() = config.n_servers;
}

void Site::move_bucket(int server, int old_free, int new_free) {
  // Clamp defensively: a misbehaving policy that overcommits a server must
  // not index out of range (candidates re-check free_cores anyway).
  const int top = config_.server.cores;
  const auto from = static_cast<std::size_t>(std::clamp(old_free, 0, top));
  const auto to = static_cast<std::size_t>(std::clamp(new_free, 0, top));
  if (from == to) return;
  const auto i = static_cast<std::size_t>(server);
  const std::uint64_t bit = std::uint64_t{1} << (i % kWordBits);
  buckets_[from][i / kWordBits] &= ~bit;
  buckets_[to][i / kWordBits] |= bit;
  --bucket_count_[from];
  ++bucket_count_[to];
}

bool Site::admits(const workload::VmShape& shape,
                  int available_cores) const {
  const int after = allocated_cores_ + shape.cores;
  const double cap = config_.utilization_cap *
                     static_cast<double>(std::min(available_cores,
                                                  total_cores()));
  return static_cast<double>(after) <= cap;
}

bool Site::place(const VmInstance& vm, AllocationPolicy& policy) {
  if (vms_.contains(vm.vm_id)) {
    throw std::invalid_argument{"Site::place: duplicate vm_id"};
  }
  const std::optional<int> server = policy.choose(*this, vm.shape);
  if (!server) return false;
  ServerState& s = servers_[static_cast<std::size_t>(*server)];
  const int old_free = s.free_cores;
  s.free_cores -= vm.shape.cores;
  s.free_memory_gb -= vm.shape.memory_gb;
  if (++s.vm_count == 1) ++powered_servers_;
  move_bucket(*server, old_free, s.free_cores);
  allocated_cores_ += vm.shape.cores;
  allocated_memory_gb_ += vm.shape.memory_gb;
  VmInstance placed = vm;
  placed.server = *server;
  std::vector<std::pair<int, std::int64_t>>& order =
      victims_[static_cast<std::size_t>(*server)];
  const std::pair<int, std::int64_t> key{victim_rank(placed), placed.vm_id};
  order.insert(std::lower_bound(order.begin(), order.end(), key), key);
  if (placed.end_tick >= 0) departures_.emplace(placed.end_tick, placed.vm_id);
  vms_.emplace(vm.vm_id, placed);
  return true;
}

void Site::detach(const VmInstance& vm) {
  ServerState& s = servers_[static_cast<std::size_t>(vm.server)];
  const int old_free = s.free_cores;
  s.free_cores += vm.shape.cores;
  s.free_memory_gb += vm.shape.memory_gb;
  if (--s.vm_count == 0) --powered_servers_;
  move_bucket(vm.server, old_free, s.free_cores);
  std::vector<std::pair<int, std::int64_t>>& order =
      victims_[static_cast<std::size_t>(vm.server)];
  const std::pair<int, std::int64_t> key{victim_rank(vm), vm.vm_id};
  order.erase(std::lower_bound(order.begin(), order.end(), key));
  allocated_cores_ -= vm.shape.cores;
  allocated_memory_gb_ -= vm.shape.memory_gb;
  // Any calendar-queue entry for this VM goes stale and is skipped on pop.
}

std::optional<VmInstance> Site::remove(std::int64_t vm_id) {
  const auto it = vms_.find(vm_id);
  if (it == vms_.end()) return std::nullopt;
  const VmInstance vm = it->second;
  detach(vm);
  vms_.erase(it);
  return vm;
}

std::vector<VmInstance> Site::shrink_to(int available_cores) {
  std::vector<VmInstance> evicted;
  if (allocated_cores_ <= available_cores) return evicted;

  // Round-robin over servers from the persistent cursor; within a server
  // the victim order (degradable first, then vm_id) is already maintained
  // by place/detach.
  const int n = static_cast<int>(servers_.size());
  for (int step = 0; step < n && allocated_cores_ > available_cores;
       ++step) {
    const auto server =
        static_cast<std::size_t>((eviction_cursor_ + step) % n);
    std::vector<std::pair<int, std::int64_t>>& order = victims_[server];
    while (!order.empty() && allocated_cores_ > available_cores) {
      const std::int64_t id = order.front().second;
      const VmInstance vm = vms_.at(id);
      evicted.push_back(vm);
      detach(vm);  // also pops the victim entry
      vms_.erase(id);
    }
  }
  eviction_cursor_ = (eviction_cursor_ + 1) % n;
  return evicted;
}

std::vector<VmInstance> Site::collect_departures(util::Tick t) {
  std::vector<VmInstance> out;
  while (!departures_.empty() && departures_.top().first <= t) {
    const auto [end_tick, vm_id] = departures_.top();
    departures_.pop();
    const auto it = vms_.find(vm_id);
    // Stale entries: the VM left earlier (remove/evict) or was re-placed
    // with a different end_tick (its live entry is elsewhere in the heap).
    if (it == vms_.end() || it->second.end_tick != end_tick) continue;
    out.push_back(it->second);
    detach(it->second);
    vms_.erase(it);
  }
  // Deterministic order (the heap yields end_tick order, not vm_id order).
  std::sort(out.begin(), out.end(),
            [](const VmInstance& a, const VmInstance& b) {
              return a.vm_id < b.vm_id;
            });
  return out;
}

std::vector<VmInstance> Site::fail_servers(int count) {
  std::vector<VmInstance> evicted;
  const int n = config_.n_servers;
  for (int i = 0; i < n && count > 0; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (failed_[idx]) continue;
    --count;
    // Evict residents in the per-server victim order (degradable first,
    // then vm_id — the same priority-class order a power shrink uses).
    std::vector<std::pair<int, std::int64_t>>& order = victims_[idx];
    while (!order.empty()) {
      const std::int64_t id = order.front().second;
      const VmInstance vm = vms_.at(id);
      evicted.push_back(vm);
      detach(vm);  // also pops the victim entry
      vms_.erase(id);
    }
    // The server is empty now (all cores free): pull it out of the top
    // bucket so no choose_* query can see it until repair.
    ServerState& s = servers_[idx];
    const auto bucket = static_cast<std::size_t>(s.free_cores);
    buckets_[bucket][idx / kWordBits] &=
        ~(std::uint64_t{1} << (idx % kWordBits));
    --bucket_count_[bucket];
    failed_[idx] = 1;
    ++failed_servers_;
  }
  return evicted;
}

void Site::repair_servers(int count) {
  const int n = config_.n_servers;
  for (int i = 0; i < n && count > 0; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!failed_[idx]) continue;
    --count;
    const auto bucket = static_cast<std::size_t>(servers_[idx].free_cores);
    buckets_[bucket][idx / kWordBits] |= std::uint64_t{1}
                                         << (idx % kWordBits);
    ++bucket_count_[bucket];
    failed_[idx] = 0;
    --failed_servers_;
  }
}

const VmInstance* Site::find(std::int64_t vm_id) const {
  const auto it = vms_.find(vm_id);
  return it == vms_.end() ? nullptr : &it->second;
}

int Site::first_fit_in_bucket(int b, const workload::VmShape& shape) const {
  const std::vector<std::uint64_t>& words = buckets_[static_cast<std::size_t>(b)];
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const auto i = w * kWordBits +
                     static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const ServerState& s = servers_[i];
      if (s.free_cores >= shape.cores && s.free_memory_gb >= shape.memory_gb) {
        return static_cast<int>(i);
      }
    }
  }
  return -1;
}

std::optional<int> Site::choose_first_fit(
    const workload::VmShape& shape) const {
  const int top = config_.server.cores;
  const int lo = std::clamp(shape.cores, 0, top + 1);
  if (lo > top) return std::nullopt;
  // Lowest server id across every viable bucket: merge the buckets word by
  // word so ids come out in index order.
  const std::size_t n_words = buckets_.front().size();
  for (std::size_t w = 0; w < n_words; ++w) {
    std::uint64_t merged = 0;
    for (int b = lo; b <= top; ++b) {
      if (bucket_count_[static_cast<std::size_t>(b)] > 0) {
        merged |= buckets_[static_cast<std::size_t>(b)][w];
      }
    }
    while (merged != 0) {
      const auto i = w * kWordBits +
                     static_cast<std::size_t>(std::countr_zero(merged));
      merged &= merged - 1;
      const ServerState& s = servers_[i];
      if (s.free_cores >= shape.cores && s.free_memory_gb >= shape.memory_gb) {
        return static_cast<int>(i);
      }
    }
  }
  return std::nullopt;
}

std::optional<int> Site::choose_best_fit(
    const workload::VmShape& shape) const {
  const int top = config_.server.cores;
  const int lo = std::clamp(shape.cores, 0, top + 1);
  // Buckets below the top hold only partially-used servers (an empty
  // server has every core free), so the first fit there is the answer.
  for (int b = lo; b < top; ++b) {
    if (bucket_count_[static_cast<std::size_t>(b)] == 0) continue;
    const int hit = first_fit_in_bucket(b, shape);
    if (hit >= 0) return hit;
  }
  if (lo > top || bucket_count_[static_cast<std::size_t>(top)] == 0) {
    return std::nullopt;
  }
  // Top bucket: prefer a server already hosting VMs (never start an empty
  // server if a partially-used one fits) — only zero-core VMs can put a
  // used server here.
  int first_empty = -1;
  const std::vector<std::uint64_t>& words =
      buckets_[static_cast<std::size_t>(top)];
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const auto i = w * kWordBits +
                     static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const ServerState& s = servers_[i];
      if (s.free_cores < shape.cores || s.free_memory_gb < shape.memory_gb) {
        continue;
      }
      if (s.vm_count > 0) return static_cast<int>(i);
      if (first_empty < 0) first_empty = static_cast<int>(i);
    }
  }
  if (first_empty >= 0) return first_empty;
  return std::nullopt;
}

std::optional<int> Site::choose_worst_fit(
    const workload::VmShape& shape) const {
  const int top = config_.server.cores;
  const int lo = std::clamp(shape.cores, 0, top + 1);
  for (int b = top; b >= lo; --b) {
    if (bucket_count_[static_cast<std::size_t>(b)] == 0) continue;
    const int hit = first_fit_in_bucket(b, shape);
    if (hit >= 0) return hit;
  }
  return std::nullopt;
}

std::optional<int> Site::choose_protean(
    const workload::VmShape& shape) const {
  const int top = config_.server.cores;
  const int lo = std::clamp(shape.cores, 0, top + 1);
  for (int b = lo; b <= top; ++b) {
    if (bucket_count_[static_cast<std::size_t>(b)] == 0) continue;
    // Within the lowest viable bucket: least free memory, ties to the
    // lowest id (strict < keeps the earlier server, as the scan does).
    int best = -1;
    double best_mem = 0.0;
    const std::vector<std::uint64_t>& words =
        buckets_[static_cast<std::size_t>(b)];
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t bits = words[w];
      while (bits != 0) {
        const auto i = w * kWordBits +
                       static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const ServerState& s = servers_[i];
        if (s.free_cores < shape.cores ||
            s.free_memory_gb < shape.memory_gb) {
          continue;
        }
        if (best < 0 || s.free_memory_gb < best_mem) {
          best = static_cast<int>(i);
          best_mem = s.free_memory_gb;
        }
      }
    }
    if (best >= 0) return best;
  }
  return std::nullopt;
}

std::optional<int> FirstFitPolicy::choose(const Site& site,
                                          const workload::VmShape& shape) {
  return site.choose_first_fit(shape);
}

std::optional<int> BestFitPolicy::choose(const Site& site,
                                         const workload::VmShape& shape) {
  return site.choose_best_fit(shape);
}

std::optional<int> ProteanLikePolicy::choose(const Site& site,
                                             const workload::VmShape& shape) {
  return site.choose_protean(shape);
}

std::optional<int> WorstFitPolicy::choose(const Site& site,
                                          const workload::VmShape& shape) {
  return site.choose_worst_fit(shape);
}

}  // namespace vbatt::dcsim
