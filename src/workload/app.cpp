#include "vbatt/workload/app.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "vbatt/util/rng.h"

namespace vbatt::workload {

std::vector<Application> generate_apps(const AppGeneratorConfig& config,
                                       const util::TimeAxis& axis,
                                       std::size_t n_ticks) {
  if (config.apps_per_hour <= 0.0 || config.min_vms < 1 ||
      config.max_vms < config.min_vms || config.shapes.empty()) {
    throw std::invalid_argument{"AppGeneratorConfig: invalid"};
  }
  if (config.degradable_fraction < 0.0 || config.degradable_fraction > 1.0) {
    throw std::invalid_argument{
        "AppGeneratorConfig: degradable_fraction out of [0, 1]"};
  }
  double total_weight = 0.0;
  for (const ShapeOption& option : config.shapes) total_weight += option.weight;

  util::Rng rng{util::seed_for(config.seed, "app-trace")};
  std::vector<Application> out;
  const double hours_per_tick = axis.minutes_per_tick() / 60.0;
  std::int64_t next_id = 0;

  for (std::size_t i = 0; i < n_ticks; ++i) {
    const double rate = config.apps_per_hour * hours_per_tick;
    const std::uint64_t arrivals = rng.poisson(rate);
    for (std::uint64_t k = 0; k < arrivals; ++k) {
      Application app;
      app.app_id = next_id++;
      app.arrival = static_cast<util::Tick>(i);

      double pick = rng.uniform(0.0, total_weight);
      app.shape = config.shapes.back().shape;
      for (const ShapeOption& option : config.shapes) {
        pick -= option.weight;
        if (pick <= 0.0) {
          app.shape = option.shape;
          break;
        }
      }

      const int n_vms =
          config.min_vms +
          static_cast<int>(rng.below(static_cast<std::uint64_t>(
              config.max_vms - config.min_vms + 1)));
      // Binomial split keeps the expected degradable fraction while letting
      // individual apps vary (some all-stable, some mostly degradable).
      int degradable = 0;
      for (int v = 0; v < n_vms; ++v) {
        if (rng.chance(config.degradable_fraction)) ++degradable;
      }
      app.n_degradable = degradable;
      app.n_stable = n_vms - degradable;

      const double hours =
          rng.lognormal(std::log(config.median_lifetime_hours),
                        config.sigma_log);
      app.lifetime_ticks = std::max<util::Tick>(
          axis.ticks_per_hour(), axis.from_hours(hours));
      out.push_back(app);
    }
  }
  return out;
}

}  // namespace vbatt::workload
