#include "vbatt/workload/batch.h"

#include <algorithm>
#include <stdexcept>

#include "vbatt/util/rng.h"

namespace vbatt::workload {

void BatchOverlay::validate(const DeadlineJob& job) {
  if (job.cores <= 0 || job.work_core_ticks <= 0 || job.arrival < 0 ||
      job.deadline <= job.arrival) {
    throw std::invalid_argument{"DeadlineJob: invalid (job_id " +
                                std::to_string(job.job_id) + ")"};
  }
}

void BatchOverlay::validate(const HarvestTask& task) {
  if (task.cores <= 0 || task.work_core_ticks <= 0 || task.arrival < 0 ||
      task.deadline <= task.arrival || task.resume_latency_ticks < 0) {
    throw std::invalid_argument{"HarvestTask: invalid (task_id " +
                                std::to_string(task.task_id) + ")"};
  }
}

BatchOverlay::BatchOverlay(const BatchWorkload& workload) {
  jobs_.reserve(workload.jobs.size());
  for (const DeadlineJob& job : workload.jobs) submit(job);
  tasks_.reserve(workload.tasks.size());
  for (const HarvestTask& task : workload.tasks) submit(task);
}

void BatchOverlay::submit(const DeadlineJob& job) {
  validate(job);
  JobState state;
  state.job = job;
  state.remaining = job.work_core_ticks;
  jobs_.push_back(state);
}

void BatchOverlay::submit(const HarvestTask& task) {
  validate(task);
  TaskState state;
  state.task = task;
  state.remaining = task.work_core_ticks;
  tasks_.push_back(state);
}

void BatchOverlay::step(util::Tick t,
                        const std::vector<std::int64_t>& free_cores) {
  if (finalized_) {
    throw std::logic_error{"BatchOverlay::step after finalize"};
  }
  std::vector<std::int64_t> free = free_cores;

  // 1. Admission: everything that has arrived by t joins the pool.
  for (JobState& job : jobs_) {
    if (!job.admitted && job.job.arrival <= t) job.admitted = true;
  }
  for (TaskState& task : tasks_) {
    if (!task.admitted && task.task.arrival <= t) {
      task.admitted = true;
      stats_.harvest_offered_core_ticks += task.task.work_core_ticks;
    }
  }

  // 2. Slack exhaustion: an entity that cannot finish even running its
  // full gang every remaining tick before the deadline is marked missed
  // now (never later, never earlier — the conservation fuzz property pins
  // exactly this rule).
  for (JobState& job : jobs_) {
    if (!job.admitted || job.completed || job.missed) continue;
    const util::Tick ticks_left = job.job.deadline - t;
    if (job.remaining >
        static_cast<std::int64_t>(job.job.cores) * ticks_left) {
      job.missed = true;
      job.site = -1;
      ++stats_.deadline_jobs_missed;
    }
  }
  for (TaskState& task : tasks_) {
    if (!task.admitted || task.completed || task.missed) continue;
    const util::Tick ticks_left = task.task.deadline - t;
    if (task.remaining >
        static_cast<std::int64_t>(task.task.cores) * ticks_left) {
      task.missed = true;
      task.site = -1;  // a kill, not a checkpoint: no suspend episode
      ++stats_.harvest_deadline_misses;
      stats_.harvest_lost_core_ticks += task.remaining;
    }
  }

  // Gang placement with site stickiness: keep the current site while it
  // still fits, else take the emptiest site (ties to the lowest index).
  const auto pick_site = [&free](std::int64_t current,
                                 int cores) -> std::int64_t {
    if (current >= 0 &&
        free[static_cast<std::size_t>(current)] >= cores) {
      return current;
    }
    std::int64_t best = -1;
    std::int64_t best_free = 0;
    for (std::size_t s = 0; s < free.size(); ++s) {
      if (free[s] >= cores && free[s] > best_free) {
        best = static_cast<std::int64_t>(s);
        best_free = free[s];
      }
    }
    return best;
  };

  // 3. EDF over deadline jobs — strictly ahead of every harvest filler.
  std::vector<std::size_t> order;
  order.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobState& job = jobs_[i];
    if (job.admitted && !job.completed && !job.missed) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (jobs_[a].job.deadline != jobs_[b].job.deadline) {
      return jobs_[a].job.deadline < jobs_[b].job.deadline;
    }
    return jobs_[a].job.job_id < jobs_[b].job.job_id;
  });
  for (const std::size_t i : order) {
    JobState& job = jobs_[i];
    const std::int64_t site = pick_site(job.site, job.job.cores);
    if (site < 0) {
      job.site = -1;  // deferred into its slack window
      continue;
    }
    free[static_cast<std::size_t>(site)] -= job.job.cores;
    stats_.overlay_active_core_ticks += job.job.cores;
    job.site = site;
    const std::int64_t progress =
        std::min<std::int64_t>(job.job.cores, job.remaining);
    job.remaining -= progress;
    stats_.deadline_work_core_ticks += progress;
    if (job.remaining == 0) {
      job.completed = true;
      job.finish_tick = t;
      job.site = -1;
      ++stats_.deadline_jobs_completed;
    }
  }

  // 4. EDF over harvest fillers on whatever is left.
  order.clear();
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const TaskState& task = tasks_[i];
    if (task.admitted && !task.completed && !task.missed) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (tasks_[a].task.deadline != tasks_[b].task.deadline) {
      return tasks_[a].task.deadline < tasks_[b].task.deadline;
    }
    return tasks_[a].task.task_id < tasks_[b].task.task_id;
  });
  for (const std::size_t i : order) {
    TaskState& task = tasks_[i];
    const std::int64_t prev_site = task.site;
    const std::int64_t site = pick_site(prev_site, task.task.cores);
    if (site < 0) {
      if (prev_site >= 0) {
        // Displaced: checkpoint and wait.
        ++stats_.suspend_episodes;
        ++task.suspends;
      }
      task.site = -1;
      continue;
    }
    bool resumed = false;
    if (prev_site < 0) {
      resumed = task.ever_ran;  // first start pays no warmup
    } else if (prev_site != site) {
      // Migrated mid-flight: checkpoint here, restore there.
      ++stats_.suspend_episodes;
      ++task.suspends;
      resumed = true;
    }
    if (resumed) {
      ++stats_.resume_episodes;
      ++task.resumes;
      task.warmup_left = task.task.resume_latency_ticks;
    }
    free[static_cast<std::size_t>(site)] -= task.task.cores;
    stats_.overlay_active_core_ticks += task.task.cores;
    task.site = site;
    task.ever_ran = true;
    if (task.warmup_left > 0) {
      --task.warmup_left;
      stats_.harvest_warmup_core_ticks += task.task.cores;
      continue;
    }
    const std::int64_t progress =
        std::min<std::int64_t>(task.task.cores, task.remaining);
    task.remaining -= progress;
    stats_.harvest_goodput_core_ticks += progress;
    if (task.remaining == 0) {
      task.completed = true;
      task.finish_tick = t;
      task.site = -1;
      ++stats_.harvest_tasks_completed;
    }
  }
}

void BatchOverlay::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (const TaskState& task : tasks_) {
    if (task.admitted && !task.completed && !task.missed) {
      stats_.harvest_suspended_core_ticks += task.remaining;
    }
  }
}

std::vector<BatchOverlay::JobRecord> BatchOverlay::job_records() const {
  std::vector<JobRecord> records;
  records.reserve(jobs_.size());
  for (const JobState& job : jobs_) {
    records.push_back({job.job.job_id, job.admitted, job.completed,
                       job.missed, job.finish_tick, job.remaining});
  }
  return records;
}

std::vector<BatchOverlay::TaskRecord> BatchOverlay::task_records() const {
  std::vector<TaskRecord> records;
  records.reserve(tasks_.size());
  for (const TaskState& task : tasks_) {
    records.push_back({task.task.task_id, task.admitted, task.completed,
                       task.missed, task.finish_tick, task.remaining,
                       task.suspends, task.resumes});
  }
  return records;
}

void BatchOverlay::save_state(util::wire::Writer& w) const {
  w.u8(finalized_ ? 1 : 0);
  w.i64(stats_.deadline_jobs_completed);
  w.i64(stats_.deadline_jobs_missed);
  w.i64(stats_.deadline_work_core_ticks);
  w.i64(stats_.harvest_offered_core_ticks);
  w.i64(stats_.harvest_goodput_core_ticks);
  w.i64(stats_.harvest_lost_core_ticks);
  w.i64(stats_.harvest_suspended_core_ticks);
  w.i64(stats_.harvest_warmup_core_ticks);
  w.i64(stats_.harvest_tasks_completed);
  w.i64(stats_.harvest_deadline_misses);
  w.i64(stats_.suspend_episodes);
  w.i64(stats_.resume_episodes);
  w.i64(stats_.overlay_active_core_ticks);
  w.u64(jobs_.size());
  for (const JobState& job : jobs_) {
    w.i64(job.job.job_id);
    w.i64(job.job.arrival);
    w.i64(job.job.cores);
    w.i64(job.job.work_core_ticks);
    w.i64(job.job.deadline);
    w.i64(job.remaining);
    w.i64(job.site);
    w.u8(static_cast<std::uint8_t>((job.admitted ? 1 : 0) |
                                   (job.completed ? 2 : 0) |
                                   (job.missed ? 4 : 0)));
    w.i64(job.finish_tick);
  }
  w.u64(tasks_.size());
  for (const TaskState& task : tasks_) {
    w.i64(task.task.task_id);
    w.i64(task.task.arrival);
    w.i64(task.task.cores);
    w.i64(task.task.work_core_ticks);
    w.i64(task.task.resume_latency_ticks);
    w.i64(task.task.deadline);
    w.i64(task.remaining);
    w.i64(task.site);
    w.i64(task.warmup_left);
    w.u8(static_cast<std::uint8_t>((task.admitted ? 1 : 0) |
                                   (task.completed ? 2 : 0) |
                                   (task.missed ? 4 : 0) |
                                   (task.ever_ran ? 8 : 0)));
    w.i64(task.finish_tick);
    w.i64(task.suspends);
    w.i64(task.resumes);
  }
}

void BatchOverlay::restore_state(util::wire::Reader& r) {
  finalized_ = r.u8() != 0;
  stats_ = BatchStats{};
  stats_.deadline_jobs_completed = r.i64();
  stats_.deadline_jobs_missed = r.i64();
  stats_.deadline_work_core_ticks = r.i64();
  stats_.harvest_offered_core_ticks = r.i64();
  stats_.harvest_goodput_core_ticks = r.i64();
  stats_.harvest_lost_core_ticks = r.i64();
  stats_.harvest_suspended_core_ticks = r.i64();
  stats_.harvest_warmup_core_ticks = r.i64();
  stats_.harvest_tasks_completed = r.i64();
  stats_.harvest_deadline_misses = r.i64();
  stats_.suspend_episodes = r.i64();
  stats_.resume_episodes = r.i64();
  stats_.overlay_active_core_ticks = r.i64();
  jobs_.clear();
  const std::uint64_t n_jobs = r.u64();
  jobs_.reserve(n_jobs);
  for (std::uint64_t i = 0; i < n_jobs; ++i) {
    JobState job;
    job.job.job_id = r.i64();
    job.job.arrival = r.i64();
    job.job.cores = static_cast<int>(r.i64());
    job.job.work_core_ticks = r.i64();
    job.job.deadline = r.i64();
    job.remaining = r.i64();
    job.site = r.i64();
    const std::uint8_t flags = r.u8();
    job.admitted = (flags & 1) != 0;
    job.completed = (flags & 2) != 0;
    job.missed = (flags & 4) != 0;
    job.finish_tick = r.i64();
    jobs_.push_back(job);
  }
  tasks_.clear();
  const std::uint64_t n_tasks = r.u64();
  tasks_.reserve(n_tasks);
  for (std::uint64_t i = 0; i < n_tasks; ++i) {
    TaskState task;
    task.task.task_id = r.i64();
    task.task.arrival = r.i64();
    task.task.cores = static_cast<int>(r.i64());
    task.task.work_core_ticks = r.i64();
    task.task.resume_latency_ticks = r.i64();
    task.task.deadline = r.i64();
    task.remaining = r.i64();
    task.site = r.i64();
    task.warmup_left = r.i64();
    const std::uint8_t flags = r.u8();
    task.admitted = (flags & 1) != 0;
    task.completed = (flags & 2) != 0;
    task.missed = (flags & 4) != 0;
    task.ever_ran = (flags & 8) != 0;
    task.finish_tick = r.i64();
    task.suspends = r.i64();
    task.resumes = r.i64();
    tasks_.push_back(task);
  }
}

BatchWorkload generate_batch(const BatchGeneratorConfig& config,
                             const util::TimeAxis& axis,
                             std::size_t n_ticks) {
  if (config.jobs_per_hour < 0.0 || config.tasks_per_hour < 0.0 ||
      config.min_cores < 1 || config.max_cores < config.min_cores ||
      config.min_run_ticks < 1 ||
      config.max_run_ticks < config.min_run_ticks ||
      config.min_slack < 1.0 || config.max_slack < config.min_slack ||
      config.max_resume_latency_ticks < 0) {
    throw std::invalid_argument{"BatchGeneratorConfig: invalid"};
  }
  BatchWorkload workload;
  const double ticks_per_hour = static_cast<double>(axis.ticks_per_hour());
  const auto draw_cores = [&config](util::Rng& rng) {
    return config.min_cores +
           static_cast<int>(rng.below(static_cast<std::uint64_t>(
               config.max_cores - config.min_cores + 1)));
  };
  const auto draw_run = [&config](util::Rng& rng) {
    return config.min_run_ticks +
           static_cast<util::Tick>(rng.below(static_cast<std::uint64_t>(
               config.max_run_ticks - config.min_run_ticks + 1)));
  };

  util::Rng job_rng{util::seed_for(config.seed, "batch-jobs")};
  const double job_rate =
      std::min(1.0, config.jobs_per_hour / ticks_per_hour);
  std::int64_t next_job_id = 1;
  for (std::size_t t = 0; t < n_ticks; ++t) {
    if (job_rng.uniform() >= job_rate) continue;
    DeadlineJob job;
    job.job_id = next_job_id++;
    job.arrival = static_cast<util::Tick>(t);
    job.cores = draw_cores(job_rng);
    const util::Tick run = draw_run(job_rng);
    job.work_core_ticks = static_cast<std::int64_t>(job.cores) * run;
    const double slack = job_rng.uniform(config.min_slack, config.max_slack);
    job.deadline =
        job.arrival +
        std::max<util::Tick>(
            1, static_cast<util::Tick>(static_cast<double>(run) * slack));
    workload.jobs.push_back(job);
  }

  util::Rng task_rng{util::seed_for(config.seed, "batch-tasks")};
  const double task_rate =
      std::min(1.0, config.tasks_per_hour / ticks_per_hour);
  std::int64_t next_task_id = 1;
  for (std::size_t t = 0; t < n_ticks; ++t) {
    if (task_rng.uniform() >= task_rate) continue;
    HarvestTask task;
    task.task_id = next_task_id++;
    task.arrival = static_cast<util::Tick>(t);
    task.cores = draw_cores(task_rng);
    const util::Tick run = draw_run(task_rng);
    task.work_core_ticks = static_cast<std::int64_t>(task.cores) * run;
    task.resume_latency_ticks = static_cast<util::Tick>(task_rng.below(
        static_cast<std::uint64_t>(config.max_resume_latency_ticks + 1)));
    const double slack =
        task_rng.uniform(config.min_slack, config.max_slack);
    task.deadline =
        task.arrival +
        std::max<util::Tick>(
            1, static_cast<util::Tick>(static_cast<double>(run) * slack));
    workload.tasks.push_back(task);
  }
  return workload;
}

}  // namespace vbatt::workload
