// VM request model (the Azure-trace substitute's vocabulary).
#pragma once

#include <cstdint>

#include "vbatt/util/time.h"

namespace vbatt::workload {

/// The paper's two application classes (§2.3): stable VMs need cloud-grade
/// availability (they migrate rather than die when power drops); degradable
/// VMs tolerate preemption (Harvest/Spot-like) and simply pause.
enum class VmClass { stable, degradable };

/// Resource shape of a VM.
struct VmShape {
  int cores = 2;
  double memory_gb = 8.0;
};

/// One VM request from the arrival trace.
struct VmRequest {
  std::int64_t vm_id = 0;
  /// Application this VM belongs to; -1 for standalone VMs (Fig. 4 sim).
  std::int64_t app_id = -1;
  util::Tick arrival = 0;
  /// Ticks the VM runs once started; <0 means "runs until the end".
  util::Tick lifetime_ticks = -1;
  VmShape shape{};
  VmClass vm_class = VmClass::stable;
};

}  // namespace vbatt::workload
