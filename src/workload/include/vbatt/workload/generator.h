// Azure-like VM arrival trace generator.
//
// The paper replays a proprietary Azure production arrival trace; we match
// its published distributional shape instead: Poisson arrivals with diurnal
// modulation, a discrete menu of VM shapes dominated by small sizes
// (~4 GB/core), heavy-tailed lifetimes (most VMs are short-lived, a minority
// run for days and dominate occupancy), and a stable/degradable class mix.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/util/rng.h"
#include "vbatt/util/time.h"
#include "vbatt/workload/vm.h"

namespace vbatt::workload {

/// One entry of the VM shape menu with its selection weight.
struct ShapeOption {
  VmShape shape{};
  double weight = 1.0;
};

struct GeneratorConfig {
  /// Mean arrivals per hour at the diurnal baseline.
  double arrivals_per_hour = 40.0;
  /// Diurnal modulation: rate * (1 + amp * cos(2*pi*(h - peak)/24)).
  double diurnal_amplitude = 0.35;
  double diurnal_peak_hour = 14.0;

  /// Shape menu; defaults follow Azure-trace characterizations (most VMs
  /// small, a thin tail of large ones, ≈4 GB per core).
  std::vector<ShapeOption> shapes{
      {{1, 4.0}, 0.35},   {{2, 8.0}, 0.30},    {{4, 16.0}, 0.18},
      {{8, 32.0}, 0.10},  {{16, 64.0}, 0.05},  {{24, 112.0}, 0.015},
      {{32, 256.0}, 0.005},
  };

  /// Lifetimes: a short-lived lognormal mode (median ≈ 1 h) mixed with a
  /// long-lived mode (median ≈ 2 days). Long-lived VMs are the minority of
  /// arrivals but the bulk of core-hours, as in the Azure trace.
  double short_fraction = 0.70;
  double short_median_hours = 1.0;
  double short_sigma_log = 1.1;
  double long_median_hours = 48.0;
  double long_sigma_log = 0.9;

  /// Fraction of VMs that require stable (cloud-grade) availability.
  double stable_fraction = 0.60;

  std::uint64_t seed = 77;
};

/// Generates a full arrival trace up front (it is small: 10^4-10^5 requests
/// for the simulated spans) so simulators can replay it deterministically.
class VmTraceGenerator {
 public:
  explicit VmTraceGenerator(GeneratorConfig config);

  /// All VMs arriving in ticks [0, n_ticks), ordered by arrival tick.
  std::vector<VmRequest> generate(const util::TimeAxis& axis,
                                  std::size_t n_ticks) const;

  const GeneratorConfig& config() const noexcept { return config_; }

 private:
  GeneratorConfig config_;
  double total_weight_;
};

/// Average cores in steady state implied by a config (rate × mean lifetime
/// × mean cores): lets callers size a cluster for a target utilization.
double expected_steady_cores(const GeneratorConfig& config);

}  // namespace vbatt::workload
