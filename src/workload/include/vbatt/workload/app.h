// Application model for the multi-VB co-scheduler (§3.1).
//
// The scheduler's unit of placement is an application: a bundle of VMs with
// a stable/degradable split. Stable VMs must survive power dips (by
// migrating within the app's assigned subgraph); degradable VMs pause.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/util/time.h"
#include "vbatt/workload/generator.h"
#include "vbatt/workload/vm.h"

namespace vbatt::workload {

struct Application {
  std::int64_t app_id = 0;
  util::Tick arrival = 0;
  /// Ticks the application runs; <0 means "until the end of the horizon".
  util::Tick lifetime_ticks = -1;
  /// All VMs in one app share a shape (uniform tiers are the common cloud
  /// pattern and keep migration accounting simple).
  VmShape shape{};
  int n_stable = 1;
  int n_degradable = 0;

  int total_vms() const noexcept { return n_stable + n_degradable; }
  int total_cores() const noexcept { return total_vms() * shape.cores; }
  int stable_cores() const noexcept { return n_stable * shape.cores; }
  double total_memory_gb() const noexcept {
    return total_vms() * shape.memory_gb;
  }
  double stable_memory_gb() const noexcept {
    return n_stable * shape.memory_gb;
  }
};

struct AppGeneratorConfig {
  double apps_per_hour = 1.5;
  int min_vms = 2;
  int max_vms = 24;
  /// Expected fraction of an app's VMs that are degradable.
  double degradable_fraction = 0.40;
  /// App lifetimes: lognormal, median in hours. Apps are long-lived
  /// relative to VMs — they are services, not tasks.
  double median_lifetime_hours = 72.0;
  double sigma_log = 0.8;
  std::vector<ShapeOption> shapes{
      {{2, 8.0}, 0.40}, {{4, 16.0}, 0.35}, {{8, 32.0}, 0.25}};
  std::uint64_t seed = 99;
};

/// Deterministic application arrival trace.
std::vector<Application> generate_apps(const AppGeneratorConfig& config,
                                       const util::TimeAxis& axis,
                                       std::size_t n_ticks);

}  // namespace vbatt::workload
