// Deadline batch jobs and suspendable harvest tasks (ROADMAP: opening the
// scenario space beyond the Azure-like service mix).
//
// Two workload classes ride on top of the VM fleet as an *overlay* over
// whatever cores the service workload leaves free each tick:
//
//   - DeadlineJob: a gang of `cores` cores with `work_core_ticks` of total
//     work and an absolute deadline. Schedulable anywhere in its slack
//     window — the scheduler may defer, run, pause, and resume it freely
//     (checkpointing is free for batch), as long as the work finishes
//     before the deadline.
//   - HarvestTask: a preemptible filler that soaks surplus renewable
//     cores. It checkpoints on suspend and pays `resume_latency_ticks` of
//     warmup (cores occupied, no progress) on every resume, and carries a
//     real-time completion deadline of its own (arXiv 2411.07628's
//     SLO-backed harvest VMs).
//
// BatchOverlay is the shared executor: every simulator (vm_level_sim,
// fleet_sim, dcsim, the app-level stepper) feeds it the per-site free-core
// vector once per tick at a serial point, and the overlay's decisions are
// a pure function of (admitted entities, free vector) — integer-exact, no
// floating point — so engines that agree on free cores agree bit-for-bit
// on every batch counter.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/util/time.h"
#include "vbatt/util/wire.h"

namespace vbatt::workload {

struct DeadlineJob {
  std::int64_t job_id = 0;
  util::Tick arrival = 0;
  /// Gang width: the job runs on exactly this many cores at one site.
  int cores = 1;
  /// Total work, core-ticks. One scheduled tick burns `cores` of it
  /// (except the final partial tick, which still occupies the full gang).
  std::int64_t work_core_ticks = 1;
  /// Absolute deadline: all work must be done by the end of tick
  /// `deadline - 1`.
  util::Tick deadline = 1;
};

struct HarvestTask {
  std::int64_t task_id = 0;
  util::Tick arrival = 0;
  int cores = 1;
  std::int64_t work_core_ticks = 1;
  /// Warmup ticks after every resume (not the first start): the gang
  /// occupies its cores but makes no progress while the checkpoint
  /// restores.
  util::Tick resume_latency_ticks = 0;
  util::Tick deadline = 1;
};

struct BatchWorkload {
  std::vector<DeadlineJob> jobs;
  std::vector<HarvestTask> tasks;
  bool empty() const noexcept { return jobs.empty() && tasks.empty(); }
};

/// Integer-exact batch counters. Closure invariant (after finalize):
///   harvest_offered == harvest_goodput + harvest_lost + harvest_suspended
/// Warmup core-ticks are occupancy without progress and are tracked
/// outside the closure.
struct BatchStats {
  std::int64_t deadline_jobs_completed = 0;
  std::int64_t deadline_jobs_missed = 0;
  /// Work actually executed for deadline jobs, core-ticks.
  std::int64_t deadline_work_core_ticks = 0;
  /// Σ work_core_ticks of admitted harvest tasks.
  std::int64_t harvest_offered_core_ticks = 0;
  /// Harvest work executed, core-ticks.
  std::int64_t harvest_goodput_core_ticks = 0;
  /// Work remaining on harvest tasks that missed their deadline.
  std::int64_t harvest_lost_core_ticks = 0;
  /// Work outstanding (checkpointed) on live tasks at the end of the run.
  std::int64_t harvest_suspended_core_ticks = 0;
  /// Core-ticks burned restoring checkpoints after resumes.
  std::int64_t harvest_warmup_core_ticks = 0;
  std::int64_t harvest_tasks_completed = 0;
  std::int64_t harvest_deadline_misses = 0;
  std::int64_t suspend_episodes = 0;
  std::int64_t resume_episodes = 0;
  /// Cores occupied by the overlay summed over ticks (both classes,
  /// including warmup occupancy).
  std::int64_t overlay_active_core_ticks = 0;

  friend bool operator==(const BatchStats&, const BatchStats&) = default;
};

/// Deterministic serial executor for the batch overlay. Drive it with one
/// step() per simulated tick (after the service workload has claimed its
/// cores), then finalize() once at the end of the horizon.
class BatchOverlay {
 public:
  BatchOverlay() = default;
  /// Validates every entity (positive cores/work, deadline > arrival >= 0)
  /// and throws std::invalid_argument on the first violation.
  explicit BatchOverlay(const BatchWorkload& workload);

  /// Dynamic submission (control-plane events). The entity joins the
  /// admission scan on the next step() whose tick >= its arrival.
  void submit(const DeadlineJob& job);
  void submit(const HarvestTask& task);

  bool empty() const noexcept { return jobs_.empty() && tasks_.empty(); }

  /// Advance one tick: admit arrivals, mark entities whose slack is
  /// exhausted as missed, then gang-schedule EDF (deadline jobs strictly
  /// before harvest fillers) onto `free_cores` with site stickiness.
  void step(util::Tick t, const std::vector<std::int64_t>& free_cores);

  /// End-of-horizon accounting: outstanding harvest work becomes
  /// `harvest_suspended_core_ticks`. Idempotent.
  void finalize();

  const BatchStats& stats() const noexcept { return stats_; }

  // -- per-entity observability (directed tests) ---------------------------
  struct JobRecord {
    std::int64_t job_id = 0;
    bool admitted = false;
    bool completed = false;
    bool missed = false;
    /// Tick whose step() completed the job (-1 if it never finished).
    util::Tick finish_tick = -1;
    std::int64_t remaining_core_ticks = 0;
  };
  struct TaskRecord {
    std::int64_t task_id = 0;
    bool admitted = false;
    bool completed = false;
    bool missed = false;
    util::Tick finish_tick = -1;
    std::int64_t remaining_core_ticks = 0;
    std::int64_t suspends = 0;
    std::int64_t resumes = 0;
  };
  std::vector<JobRecord> job_records() const;
  std::vector<TaskRecord> task_records() const;

  /// Serialize the complete overlay state (definitions + dynamic state +
  /// stats); equal logical states produce equal bytes.
  void save_state(util::wire::Writer& w) const;
  void restore_state(util::wire::Reader& r);

 private:
  struct JobState {
    DeadlineJob job;
    std::int64_t remaining = 0;
    /// Site the gang ran at last tick; -1 when not running.
    std::int64_t site = -1;
    bool admitted = false;
    bool completed = false;
    bool missed = false;
    util::Tick finish_tick = -1;
  };
  struct TaskState {
    HarvestTask task;
    std::int64_t remaining = 0;
    std::int64_t site = -1;
    util::Tick warmup_left = 0;
    bool admitted = false;
    bool ever_ran = false;
    bool completed = false;
    bool missed = false;
    util::Tick finish_tick = -1;
    std::int64_t suspends = 0;
    std::int64_t resumes = 0;
  };

  static void validate(const DeadlineJob& job);
  static void validate(const HarvestTask& task);

  std::vector<JobState> jobs_;
  std::vector<TaskState> tasks_;
  BatchStats stats_;
  bool finalized_ = false;
};

/// Deterministic synthetic batch trace (the CLI's --workload scenarios and
/// the testkit generators both build on this).
struct BatchGeneratorConfig {
  /// Deadline-job arrivals per simulated hour (0 disables the class).
  double jobs_per_hour = 0.5;
  /// Harvest-task arrivals per simulated hour (0 disables the class).
  double tasks_per_hour = 1.0;
  int min_cores = 2;
  int max_cores = 16;
  /// Job work drawn so that run length at full gang width lands in
  /// [min_run_ticks, max_run_ticks].
  util::Tick min_run_ticks = 4;
  util::Tick max_run_ticks = 48;
  /// Deadline slack factor: deadline = arrival + run_ticks * slack drawn
  /// uniformly in [min_slack, max_slack].
  double min_slack = 1.2;
  double max_slack = 4.0;
  /// Harvest resume latency range, ticks.
  util::Tick max_resume_latency_ticks = 4;
  std::uint64_t seed = 17;
};

/// Deterministic arrival trace over `n_ticks`; ids are dense from 1
/// (jobs and tasks numbered independently).
BatchWorkload generate_batch(const BatchGeneratorConfig& config,
                             const util::TimeAxis& axis, std::size_t n_ticks);

}  // namespace vbatt::workload
