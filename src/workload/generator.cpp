#include "vbatt/workload/generator.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vbatt::workload {

VmTraceGenerator::VmTraceGenerator(GeneratorConfig config)
    : config_{std::move(config)}, total_weight_{0.0} {
  if (config_.arrivals_per_hour <= 0.0) {
    throw std::invalid_argument{"GeneratorConfig: arrivals_per_hour <= 0"};
  }
  if (config_.shapes.empty()) {
    throw std::invalid_argument{"GeneratorConfig: empty shape menu"};
  }
  if (config_.short_fraction < 0.0 || config_.short_fraction > 1.0 ||
      config_.stable_fraction < 0.0 || config_.stable_fraction > 1.0) {
    throw std::invalid_argument{"GeneratorConfig: fraction out of [0, 1]"};
  }
  for (const ShapeOption& option : config_.shapes) {
    if (option.weight < 0.0 || option.shape.cores <= 0 ||
        option.shape.memory_gb <= 0.0) {
      throw std::invalid_argument{"GeneratorConfig: bad shape option"};
    }
    total_weight_ += option.weight;
  }
  if (total_weight_ <= 0.0) {
    throw std::invalid_argument{"GeneratorConfig: zero total shape weight"};
  }
}

std::vector<VmRequest> VmTraceGenerator::generate(const util::TimeAxis& axis,
                                                  std::size_t n_ticks) const {
  util::Rng rng{util::seed_for(config_.seed, "vm-trace")};
  std::vector<VmRequest> out;
  const double hours_per_tick = axis.minutes_per_tick() / 60.0;
  std::int64_t next_id = 0;

  for (std::size_t i = 0; i < n_ticks; ++i) {
    const auto t = static_cast<util::Tick>(i);
    const double hour = axis.hour_of_day(t);
    const double rate =
        config_.arrivals_per_hour * hours_per_tick *
        (1.0 + config_.diurnal_amplitude *
                   std::cos(2.0 * std::numbers::pi *
                            (hour - config_.diurnal_peak_hour) / 24.0));
    const std::uint64_t arrivals = rng.poisson(std::max(0.0, rate));
    for (std::uint64_t k = 0; k < arrivals; ++k) {
      VmRequest vm;
      vm.vm_id = next_id++;
      vm.arrival = t;

      double pick = rng.uniform(0.0, total_weight_);
      vm.shape = config_.shapes.back().shape;
      for (const ShapeOption& option : config_.shapes) {
        pick -= option.weight;
        if (pick <= 0.0) {
          vm.shape = option.shape;
          break;
        }
      }

      const bool short_lived = rng.chance(config_.short_fraction);
      const double median =
          short_lived ? config_.short_median_hours : config_.long_median_hours;
      const double sigma =
          short_lived ? config_.short_sigma_log : config_.long_sigma_log;
      const double hours = rng.lognormal(std::log(median), sigma);
      vm.lifetime_ticks =
          std::max<util::Tick>(1, axis.from_hours(hours));

      vm.vm_class = rng.chance(config_.stable_fraction) ? VmClass::stable
                                                        : VmClass::degradable;
      out.push_back(vm);
    }
  }
  return out;
}

double expected_steady_cores(const GeneratorConfig& config) {
  double weight = 0.0;
  double mean_cores = 0.0;
  for (const ShapeOption& option : config.shapes) {
    weight += option.weight;
    mean_cores += option.weight * option.shape.cores;
  }
  mean_cores /= weight;
  // Lognormal mean = median * exp(sigma^2 / 2).
  const double mean_hours =
      config.short_fraction * config.short_median_hours *
          std::exp(0.5 * config.short_sigma_log * config.short_sigma_log) +
      (1.0 - config.short_fraction) * config.long_median_hours *
          std::exp(0.5 * config.long_sigma_log * config.long_sigma_log);
  return config.arrivals_per_hour * mean_hours * mean_cores;
}

}  // namespace vbatt::workload
