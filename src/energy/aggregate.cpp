#include "vbatt/energy/aggregate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "vbatt/stats/running_stats.h"

namespace vbatt::energy {

EnergySplit decompose(const PowerTrace& trace, util::Tick begin,
                      util::Tick end) {
  if (begin < 0 || end > static_cast<util::Tick>(trace.size()) ||
      begin >= end) {
    throw std::out_of_range{"decompose: bad window"};
  }
  double min_norm = std::numeric_limits<double>::infinity();
  double sum_norm = 0.0;
  for (util::Tick t = begin; t < end; ++t) {
    const double v = trace.normalized(t);
    min_norm = std::min(min_norm, v);
    sum_norm += v;
  }
  const double hours_per_tick = trace.axis().minutes_per_tick() / 60.0;
  const double window_hours =
      static_cast<double>(end - begin) * hours_per_tick;
  EnergySplit split;
  split.floor_mw = min_norm * trace.peak_mw();
  split.stable_mwh = split.floor_mw * window_hours;
  split.variable_mwh =
      sum_norm * trace.peak_mw() * hours_per_tick - split.stable_mwh;
  return split;
}

EnergySplit decompose(const PowerTrace& trace) {
  return decompose(trace, 0, static_cast<util::Tick>(trace.size()));
}

double trace_cov(const PowerTrace& trace, util::Tick begin, util::Tick end) {
  if (begin < 0 || end > static_cast<util::Tick>(trace.size()) ||
      begin >= end) {
    throw std::out_of_range{"trace_cov: bad window"};
  }
  stats::RunningStats rs;
  for (util::Tick t = begin; t < end; ++t) rs.add(trace.normalized(t));
  return rs.cov();
}

double trace_cov(const PowerTrace& trace) {
  return trace_cov(trace, 0, static_cast<util::Tick>(trace.size()));
}

PurchaseResult purchase_fill(const PowerTrace& trace, double budget_mwh) {
  if (budget_mwh < 0.0) {
    throw std::invalid_argument{"purchase_fill: negative budget"};
  }
  const std::vector<double> mw = trace.mw_series();
  const double hours_per_tick = trace.axis().minutes_per_tick() / 60.0;

  const auto cost_to_reach = [&](double level) {
    double cost = 0.0;
    for (const double p : mw) cost += std::max(0.0, level - p) * hours_per_tick;
    return cost;
  };

  const double old_floor = *std::min_element(mw.begin(), mw.end());
  // Binary search for the waterfill level. Upper bound: raising everything
  // to max(p) costs the most that could ever be useful.
  double lo = old_floor;
  double hi = *std::max_element(mw.begin(), mw.end());
  if (cost_to_reach(hi) <= budget_mwh) {
    lo = hi;  // budget floods the whole trace flat
  } else {
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (cost_to_reach(mid) <= budget_mwh) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }

  PurchaseResult result;
  result.level_mw = lo;
  result.fill_mw.resize(mw.size());
  for (std::size_t i = 0; i < mw.size(); ++i) {
    result.fill_mw[i] = std::max(0.0, lo - mw[i]);
  }
  result.purchased_mwh = cost_to_reach(lo);

  const double window_hours =
      static_cast<double>(mw.size()) * hours_per_tick;
  result.added_stable_mwh = (lo - old_floor) * window_hours;
  result.stabilized_mwh = result.added_stable_mwh - result.purchased_mwh;
  return result;
}

double pair_cov_improvement(const PowerTrace& a, const PowerTrace& b) {
  const double single = std::max(trace_cov(a), trace_cov(b));
  if (single <= 0.0) return 0.0;
  const PowerTrace both = combine({&a, &b});
  return 1.0 - trace_cov(both) / single;
}

}  // namespace vbatt::energy
