// Latent weather processes shared by the solar and wind production models.
//
// The paper's traces (ELIA / EMHIRES) are driven by real weather; we replace
// them with three classic stochastic building blocks:
//   * a per-day sky-condition Markov chain (sunny / variable / overcast) —
//     produces the "overcast day at 3.5% peak next to a sunny day at 77%"
//     contrast of Fig. 2a;
//   * an Ornstein–Uhlenbeck process — mean-reverting fast noise (cloud
//     passage, wind gusts);
//   * a "front" process (sum of slow sinusoids with random phases plus a
//     slow OU term) — multi-hour weather systems. Fronts can be *shared*
//     across sites with per-site loadings, which is how the curated Fig. 3
//     scenario obtains complementary (anti-correlated) wind sites.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/util/rng.h"
#include "vbatt/util/time.h"

namespace vbatt::energy {

/// Per-day sky condition, in order of decreasing clearness.
enum class SkyState { sunny, variable, overcast };

/// Day-to-day sky persistence model.
struct SkyChainConfig {
  /// Row-stochastic transition matrix indexed [from][to], order
  /// sunny/variable/overcast. Defaults keep a ~45/33/22 steady state with
  /// multi-day persistence (weather regimes last days, which is also what
  /// makes them forecastable a week out — Fig. 5).
  double transition[3][3] = {{0.68, 0.20, 0.12},
                             {0.30, 0.45, 0.25},
                             {0.25, 0.30, 0.45}};
  std::uint64_t seed = 1;
};

/// Draw a sky state per day for `days` days.
std::vector<SkyState> generate_sky_states(const SkyChainConfig& config,
                                          int days);

/// Ornstein–Uhlenbeck sample path of length `n` on the given axis:
/// dx = -theta * x * dt + sigma * dW, x(0) = 0, dt in hours.
std::vector<double> generate_ou(util::Rng& rng, const util::TimeAxis& axis,
                                std::size_t n, double theta_per_hour,
                                double sigma_per_sqrt_hour);

/// Slow weather-system ("front") process in roughly [-1, 1].
struct FrontConfig {
  /// Periods of the sinusoidal components, in hours.
  std::vector<double> period_hours{30.0, 52.0, 90.0};
  /// Extra slow OU roughness on top of the sinusoids.
  double ou_theta_per_hour = 0.05;
  double ou_sigma = 0.15;
  std::uint64_t seed = 2;
};

/// Generate the front path. Two calls with the same config produce the same
/// path, so multiple sites can load on one shared front deterministically.
std::vector<double> generate_front(const FrontConfig& config,
                                   const util::TimeAxis& axis, std::size_t n);

}  // namespace vbatt::energy
