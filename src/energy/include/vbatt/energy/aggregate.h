// Multi-site aggregation analysis (§2.3).
//
// The paper's core feasibility argument: combining complementary sites
// reduces the coefficient of variation and raises the *stable* share of
// energy (window-minimum power × window length), which is what can back
// cloud-grade "stable" VMs; the remainder is "variable" energy for
// degradable VMs. A small grid purchase can waterfill the worst valleys
// and stabilize a disproportionate amount of variable energy (Fig. 3a).
#pragma once

#include <vector>

#include "vbatt/energy/trace.h"

namespace vbatt::energy {

/// Stable/variable split of a trace over one analysis window.
struct EnergySplit {
  double stable_mwh = 0.0;
  double variable_mwh = 0.0;
  /// Guaranteed (minimum) power level over the window, MW.
  double floor_mw = 0.0;

  double total_mwh() const noexcept { return stable_mwh + variable_mwh; }
  /// Fraction of energy that is stable; 0 for an empty window.
  double stable_fraction() const noexcept {
    const double total = total_mwh();
    return total > 0.0 ? stable_mwh / total : 0.0;
  }
  double variable_fraction() const noexcept {
    return total_mwh() > 0.0 ? 1.0 - stable_fraction() : 0.0;
  }
};

/// Decompose a trace into stable and variable energy over the window
/// [begin, end) of ticks: stable = min power in window × window hours.
EnergySplit decompose(const PowerTrace& trace, util::Tick begin,
                      util::Tick end);

/// Decompose the whole trace.
EnergySplit decompose(const PowerTrace& trace);

/// Coefficient of variation of a trace's power over [begin, end).
double trace_cov(const PowerTrace& trace, util::Tick begin, util::Tick end);
double trace_cov(const PowerTrace& trace);

/// Result of a grid-purchase waterfill (Fig. 3a's shaded "Purchased" band).
struct PurchaseResult {
  /// The flat power level the purchase raises the combined trace to, MW.
  double level_mw = 0.0;
  /// Energy actually purchased, MWh (≈ the requested budget).
  double purchased_mwh = 0.0;
  /// Variable energy converted to stable by the purchase, MWh — energy the
  /// farm was already producing that only becomes *guaranteed* thanks to
  /// the purchased fill.
  double stabilized_mwh = 0.0;
  /// Total new stable energy = purchased + stabilized.
  double added_stable_mwh = 0.0;
  /// Per-tick purchased power, MW (the plot band).
  std::vector<double> fill_mw;
};

/// Spend up to `budget_mwh` of firm (grid/battery/backup) energy to raise
/// the minimum power level of `trace` as high as possible — the optimal
/// policy for maximizing stable energy, computed by waterfilling: find the
/// level L such that sum_t max(0, L - p(t)) * dt == budget.
PurchaseResult purchase_fill(const PowerTrace& trace, double budget_mwh);

/// cov improvement of combining two traces, relative to running the worse
/// site alone: 1 - cov(a+b) / max(cov(a), cov(b)). Positive is better; 0.5
/// is the paper's ">50% improvement" threshold (§2.3).
double pair_cov_improvement(const PowerTrace& a, const PowerTrace& b);

}  // namespace vbatt::energy
