// Economic model behind §2.1's motivation numbers, plus the per-site
// electricity price series the cost-aware MIP objective optimizes against.
#pragma once

#include <cstdint>

#include "vbatt/energy/signal.h"
#include "vbatt/energy/trace.h"
#include "vbatt/util/time.h"

namespace vbatt::energy {

struct CostModelConfig {
  /// Share of datacenter operating cost that is power (paper cites 20%).
  double power_share_of_opex = 0.20;
  /// Share of power expense that is transmission/distribution (cites 50%).
  double transmission_share_of_power = 0.50;
  /// Fraction of renewable generation curtailed by grid operators today
  /// (paper cites up to 6% and rising).
  double curtailment_fraction = 0.06;
  /// Wholesale value of energy, $/MWh, for curtailment-recovery estimates.
  double wholesale_usd_per_mwh = 40.0;
};

/// Derived economics of co-locating compute with generation.
struct CostSummary {
  /// Fraction of total DC opex saved by eliminating transmission
  /// (= power share × transmission share; the paper's ≈10%).
  double opex_saving_fraction = 0.0;
  /// Energy that would have been curtailed but a VB can absorb, MWh.
  double recoverable_curtailed_mwh = 0.0;
  /// Wholesale value of that energy, USD.
  double recoverable_value_usd = 0.0;
};

/// Evaluate the VB economics for a farm with the given production trace.
CostSummary evaluate_economics(const CostModelConfig& config,
                               const PowerTrace& trace);

/// Deterministic synthetic day-ahead price series: a diurnal wholesale
/// curve (base + swing·cos peaking in the evening demand ramp) plus a
/// fixed per-site basis offset, so sites are price-distinguishable and the
/// cost objective has something to arbitrage.
struct PriceSeriesConfig {
  double base_usd_per_mwh = 42.0;
  double swing_usd_per_mwh = 18.0;
  double peak_hour = 18.0;
  /// Per-site offset drawn uniformly in ±this (seeded, fixed per site):
  /// the regional basis spread between interconnect nodes.
  double site_spread_usd_per_mwh = 6.0;
  std::uint64_t seed = 7;
};

/// One price sample per (site, tick), $/MWh. Negative prices are legal
/// (they happen in real markets); the swing and spread must be >= 0.
SiteSeries make_price_series(const PriceSeriesConfig& config,
                             const util::TimeAxis& axis, std::size_t n_sites,
                             std::size_t n_ticks);

}  // namespace vbatt::energy
