// Economic model behind §2.1's motivation numbers.
#pragma once

#include "vbatt/energy/trace.h"

namespace vbatt::energy {

struct CostModelConfig {
  /// Share of datacenter operating cost that is power (paper cites 20%).
  double power_share_of_opex = 0.20;
  /// Share of power expense that is transmission/distribution (cites 50%).
  double transmission_share_of_power = 0.50;
  /// Fraction of renewable generation curtailed by grid operators today
  /// (paper cites up to 6% and rising).
  double curtailment_fraction = 0.06;
  /// Wholesale value of energy, $/MWh, for curtailment-recovery estimates.
  double wholesale_usd_per_mwh = 40.0;
};

/// Derived economics of co-locating compute with generation.
struct CostSummary {
  /// Fraction of total DC opex saved by eliminating transmission
  /// (= power share × transmission share; the paper's ≈10%).
  double opex_saving_fraction = 0.0;
  /// Energy that would have been curtailed but a VB can absorb, MWh.
  double recoverable_curtailed_mwh = 0.0;
  /// Wholesale value of that energy, USD.
  double recoverable_value_usd = 0.0;
};

/// Evaluate the VB economics for a farm with the given production trace.
CostSummary evaluate_economics(const CostModelConfig& config,
                               const PowerTrace& trace);

}  // namespace vbatt::energy
