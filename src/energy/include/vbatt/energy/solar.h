// Synthetic solar production model.
//
// Substitutes for the ELIA / EMHIRES solar traces: a clear-sky envelope
// (day-of-year dependent day length and seasonal amplitude) modulated by a
// per-day sky-condition Markov chain and a fast cloud-noise OU process.
// Calibration targets come from the paper's own Fig. 2 statistics: >50%
// exact-zero samples over a year (nights), winter peak ≈75% below summer,
// overcast days near zero next to sunny days near capacity, and a 99th/75th
// percentile ratio of ≈4x.
#pragma once

#include <cstdint>

#include "vbatt/energy/trace.h"
#include "vbatt/energy/weather.h"

namespace vbatt::energy {

struct SolarConfig {
  double peak_mw = 400.0;

  /// Day-of-year (0-based) of tick 0; sets the season of the trace start.
  int start_day_of_year = 120;  // early May, like the paper's Fig. 2a window

  /// Local solar noon, hours. Shifting it models longitude differences.
  double noon_hour = 12.5;

  /// Mean day length and its seasonal swing (hours). Day length =
  /// mean + swing * sin(2*pi*(doy - 80)/365): equinox at doy 80.
  double day_length_mean_hours = 11.7;
  double day_length_swing_hours = 4.0;

  /// Seasonal clear-sky amplitude a + b*sin(...): defaults give a winter
  /// peak that is 25% of the summer peak (the paper's "≈75% less").
  double amplitude_base = 0.625;
  double amplitude_swing = 0.375;

  /// Mean clearness per sky state (sunny / variable / overcast).
  double clearness_sunny = 0.88;
  double clearness_variable = 0.55;
  double clearness_overcast = 0.10;

  /// Fast cloud-noise OU sigma per sky state; the "variable" state is what
  /// produces Fig. 2a's spiky days.
  double cloud_sigma_sunny = 0.04;
  double cloud_sigma_variable = 0.18;
  double cloud_sigma_overcast = 0.025;
  double cloud_theta_per_hour = 1.2;

  SkyChainConfig sky{};
  std::uint64_t seed = 11;
};

/// Generator for solar PowerTraces. Stateless; all state is in the config
/// so two generators with equal configs emit identical traces.
class SolarModel {
 public:
  explicit SolarModel(SolarConfig config);

  /// Generate `n_ticks` samples on `axis` starting at tick 0.
  PowerTrace generate(const util::TimeAxis& axis, std::size_t n_ticks) const;

  /// Clear-sky (cloud-free) normalized output at a tick — the envelope the
  /// stochastic model modulates. Exposed for tests and climatology.
  double clear_sky(const util::TimeAxis& axis, util::Tick t) const noexcept;

  const SolarConfig& config() const noexcept { return config_; }

 private:
  SolarConfig config_;
};

}  // namespace vbatt::energy
