// Physical battery simulation — the alternative the Virtual Battery
// replaces.
//
// The paper's framing (§1, Fig. 1) is that chemical storage is the
// incumbent answer to renewable variability but is tiny at grid scale
// (US battery capacity ≈ 0.4% of solar+wind capacity). This module makes
// that comparison quantitative: simulate a battery firming a renewable
// trace, and size the battery a site would need to match what multi-VB
// aggregation achieves for free.
#pragma once

#include <vector>

#include "vbatt/energy/trace.h"

namespace vbatt::energy {

struct BatteryConfig {
  /// Usable energy capacity, MWh.
  double capacity_mwh = 400.0;
  /// Charge / discharge power limits, MW. Defaults give a "C/4" battery.
  double max_charge_mw = 100.0;
  double max_discharge_mw = 100.0;
  /// Round-trip efficiency; losses are split evenly between charge and
  /// discharge (sqrt on each side). Li-ion grid storage is ~86%.
  double round_trip_efficiency = 0.86;
  /// Initial state of charge as a fraction of capacity.
  double initial_soc = 0.5;
};

struct BatteryResult {
  /// Power delivered to the load after the battery, MW per tick.
  std::vector<double> delivered_mw;
  /// State of charge per tick, MWh (after the tick's flow).
  std::vector<double> soc_mwh;
  /// Total energy that passed through the battery (charge side), MWh.
  double charged_mwh = 0.0;
  double discharged_mwh = 0.0;
  /// Conversion losses, MWh.
  double loss_mwh = 0.0;

  /// Guaranteed delivery floor over the run, MW.
  double floor_mw() const;
};

/// Greedy firming dispatch toward a flat `target_mw` delivery: surplus
/// above target charges (within limits), deficit discharges. This is the
/// optimal causal policy for maximizing the delivery floor at a given
/// target.
BatteryResult firm_trace(const PowerTrace& trace, const BatteryConfig& config,
                         double target_mw);

/// Smallest battery capacity (MWh) that lifts the trace's guaranteed floor
/// to `floor_target_mw`, with power limits scaling as capacity/4 (C/4) and
/// the given efficiency. Returns +inf if even an enormous battery cannot
/// (e.g. not enough total energy). Bisection on capacity.
double required_battery_mwh(const PowerTrace& trace, double floor_target_mw,
                            double round_trip_efficiency = 0.86);

}  // namespace vbatt::energy
