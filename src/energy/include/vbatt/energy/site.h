// VB site descriptions and fleet generation (the EMHIRES substitute).
//
// EMHIRES provides normalized traces for >500 European sites; we generate a
// configurable fleet with the structure that matters to the paper: mixed
// solar/wind, geographic spread (→ latency graph), longitude phase offsets
// for solar, and wind sites loading with alternating signs on shared
// regional weather fronts (→ complementary pairs for §2.3 / Fig. 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vbatt/energy/solar.h"
#include "vbatt/energy/trace.h"
#include "vbatt/energy/wind.h"
#include "vbatt/util/geo.h"
#include "vbatt/util/time.h"

namespace vbatt::energy {

/// Identity + generation parameters of one VB site. The full model config
/// is kept so a site's trace (and nothing else) can be regenerated on
/// demand at any length.
struct SiteSpec {
  int id = 0;
  std::string name;
  Source source = Source::solar;
  double peak_mw = 400.0;
  util::GeoPoint location{};
  /// Exactly one of these is meaningful, per `source`.
  SolarConfig solar{};
  WindConfig wind{};

  PowerTrace generate(const util::TimeAxis& axis, std::size_t n_ticks) const;
};

struct FleetConfig {
  int n_solar = 5;
  int n_wind = 5;
  /// Sites are scattered uniformly in a region_km x region_km square.
  double region_km = 900.0;
  double peak_mw = 400.0;  // median large-farm capacity per the paper
  int start_day_of_year = 120;
  /// Number of distinct regional weather fronts wind sites load on; sites
  /// alternate loading sign within a front, creating complementary pairs.
  int n_fronts = 2;
  /// Storm surges on fleet wind sites (off by default: the §2.3 pair
  /// statistics assume farm-aggregate smoothness; Table 1 benches turn
  /// them on to stress the scheduler).
  bool enable_storms = false;
  std::uint64_t seed = 1234;
};

/// A generated fleet: specs plus their traces over one common span.
struct Fleet {
  util::TimeAxis axis{};
  std::vector<SiteSpec> specs;
  std::vector<PowerTrace> traces;  // parallel to specs

  std::size_t size() const noexcept { return specs.size(); }
};

/// Deterministically generate a fleet per the config.
Fleet generate_fleet(const FleetConfig& config, const util::TimeAxis& axis,
                     std::size_t n_ticks);

}  // namespace vbatt::energy
