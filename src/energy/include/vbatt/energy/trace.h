// Power traces: normalized renewable production on the shared tick grid.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "vbatt/util/time.h"

namespace vbatt::energy {

/// Kind of renewable source backing a trace or a site.
enum class Source { solar, wind };

std::string to_string(Source s);

/// A renewable production time series.
///
/// `normalized[t]` is production at tick `t` as a fraction of the farm's
/// peak capacity (the form both EMHIRES and ELIA publish); `peak_mw` scales
/// it to megawatts. Invariant: every sample lies in [0, 1].
class PowerTrace {
 public:
  PowerTrace(util::TimeAxis axis, double peak_mw,
             std::vector<double> normalized, Source source);

  const util::TimeAxis& axis() const noexcept { return axis_; }
  double peak_mw() const noexcept { return peak_mw_; }
  Source source() const noexcept { return source_; }
  std::size_t size() const noexcept { return normalized_.size(); }

  /// Normalized production in [0, 1] at tick `t` (bounds-checked).
  double normalized(util::Tick t) const {
    return normalized_.at(static_cast<std::size_t>(t));
  }
  /// Production in MW at tick `t`.
  double mw(util::Tick t) const { return normalized(t) * peak_mw_; }

  const std::vector<double>& normalized_series() const noexcept {
    return normalized_;
  }
  /// The whole series in MW.
  std::vector<double> mw_series() const;

  /// Energy over [begin, end) ticks in MWh.
  double energy_mwh(util::Tick begin, util::Tick end) const;
  /// Energy of the whole trace in MWh.
  double total_energy_mwh() const {
    return energy_mwh(0, static_cast<util::Tick>(size()));
  }

  /// Copy of ticks [begin, end).
  PowerTrace slice(util::Tick begin, util::Tick end) const;

  /// Trace with a different peak capacity (normalized values unchanged).
  PowerTrace rescaled(double new_peak_mw) const;

 private:
  util::TimeAxis axis_;
  double peak_mw_;
  std::vector<double> normalized_;
  Source source_;
};

/// Element-wise MW sum of traces (axes and lengths must match). The result's
/// peak is the sum of peaks; `source` is taken from the first trace and is
/// only informational for combined traces.
PowerTrace combine(const std::vector<const PowerTrace*>& traces);

}  // namespace vbatt::energy
