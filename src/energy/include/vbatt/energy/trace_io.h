// Trace serialization — plug in real data.
//
// Everything in this repository runs on synthetic traces, but the
// simulators only care about a normalized power column: users with an
// actual ELIA/EMHIRES export (or any 15-minute production CSV) can load
// it here and rerun every experiment on real data.
#pragma once

#include <string>

#include "vbatt/energy/trace.h"

namespace vbatt::energy {

/// Write `tick,normalized` rows (with a header) to `path`.
void save_trace_csv(const PowerTrace& trace, const std::string& path);

/// Load a trace from a CSV with a header row and the normalized power in
/// `column` (0-based). Values are validated to [0, 1]. Throws
/// std::runtime_error on malformed input.
PowerTrace load_trace_csv(const std::string& path, const util::TimeAxis& axis,
                          double peak_mw, Source source, int column = 1);

}  // namespace vbatt::energy
