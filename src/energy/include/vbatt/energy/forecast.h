// Multi-horizon power forecasts.
//
// ELIA ships weather-model forecasts with its production data; the paper
// (Fig. 5) reports their accuracy as MAPE ≈ 8.5-9% at 3 hours ahead,
// 18-25% day-ahead and 44-75% (solar-wind) week-ahead, and notes that the
// sharp power changes driving migrations are predictable about a day out.
//
// We emulate such a forecaster without a weather model: the forecast at
// lead L is the actual series smoothed over a window that grows with L
// (an "oracle-smoothing" surrogate — a weather model knows the future, but
// blurrier the further out), blended toward the empirical climatology and
// perturbed by AR(1) multiplicative noise whose scale grows with L. The
// three knobs are calibrated per source so the measured MAPE lands in the
// paper's bands; tests assert that.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/energy/trace.h"

namespace vbatt::energy {

struct ForecastConfig {
  /// Smoothing window as a fraction of the lead time.
  double window_per_lead = 0.22;

  /// Climatology blend beta(L) = beta_max * L / (L + half_life).
  double beta_max_solar = 0.25;
  double beta_half_life_solar_hours = 120.0;
  double beta_max_wind = 0.60;
  double beta_half_life_wind_hours = 120.0;

  /// Multiplicative noise sigma(L) = s0 + s1 * sqrt(L / 24h).
  double sigma0_solar = 0.045;
  double sigma1_solar = 0.065;
  double sigma0_wind = 0.050;
  double sigma1_wind = 0.090;

  /// AR(1) correlation time of the noise, hours.
  double noise_decay_hours = 6.0;

  std::uint64_t seed = 21;
};

/// Produces forecast series for a PowerTrace at arbitrary lead times.
/// Deterministic given (config, trace, lead): repeated calls agree, and the
/// scheduler can regenerate forecasts instead of storing them.
class Forecaster {
 public:
  explicit Forecaster(ForecastConfig config = {});

  /// Forecast of the trace's whole span made `lead_hours` in advance.
  /// Element t is the prediction for tick t. Values lie in [0, 1].
  std::vector<double> forecast(const PowerTrace& actual,
                               double lead_hours) const;

  /// Empirical climatology of a trace: mean normalized power per
  /// tick-of-day. Returned series has ticks_per_day entries.
  static std::vector<double> climatology(const PowerTrace& actual);

  /// Measured MAPE (%) of this forecaster on `actual` at a lead, skipping
  /// points with actual below `floor` (nights / becalmed periods).
  double measured_mape(const PowerTrace& actual, double lead_hours,
                       double floor = 0.02) const;

  const ForecastConfig& config() const noexcept { return config_; }

 private:
  ForecastConfig config_;
};

}  // namespace vbatt::energy
