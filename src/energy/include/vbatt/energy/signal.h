// Per-site economic signals: electricity price and grid carbon intensity.
//
// The cost/carbon modules (cost.h, carbon.h) score a *finished* run; this
// module supplies the forward-looking series the scheduler optimizes
// against — one scalar sample per (site, tick), e.g. a day-ahead
// electricity price or a regional grid carbon intensity. SiteSeries is
// the shared container: dense site-major storage, linear interpolation
// between samples (clamped at both ends), and a CSV round-trip in the
// fault-schedule style (shortest round-trip decimals on save; line/column
// diagnostics on load).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace vbatt::energy {

/// A per-site scalar signal sampled once per tick on the simulation grid.
class SiteSeries {
 public:
  SiteSeries() = default;
  SiteSeries(std::size_t n_sites, std::size_t n_ticks, double fill = 0.0)
      : n_sites_{n_sites},
        n_ticks_{n_ticks},
        values_(n_sites * n_ticks, fill) {
    if (n_sites == 0 || n_ticks == 0) {
      throw std::invalid_argument{"SiteSeries: empty dimensions"};
    }
  }

  std::size_t n_sites() const noexcept { return n_sites_; }
  std::size_t n_ticks() const noexcept { return n_ticks_; }
  bool empty() const noexcept { return values_.empty(); }

  double& at(std::size_t site, std::size_t tick) {
    return values_[site * n_ticks_ + tick];
  }
  double at(std::size_t site, std::size_t tick) const {
    return values_[site * n_ticks_ + tick];
  }

  /// Signal value at a (possibly fractional, possibly out-of-range) tick:
  /// linear interpolation between adjacent samples, clamped to the first /
  /// last sample outside [0, n_ticks - 1]. Sites are never interpolated —
  /// `site` must be in range.
  double value(std::size_t site, double t) const {
    if (n_ticks_ == 0) return 0.0;
    if (t <= 0.0) return at(site, 0);
    const double last = static_cast<double>(n_ticks_ - 1);
    if (t >= last) return at(site, n_ticks_ - 1);
    const auto lo = static_cast<std::size_t>(t);
    const double frac = t - static_cast<double>(lo);
    if (frac == 0.0) return at(site, lo);
    return at(site, lo) + frac * (at(site, lo + 1) - at(site, lo));
  }

  friend bool operator==(const SiteSeries&, const SiteSeries&) = default;

 private:
  std::size_t n_sites_ = 0;
  std::size_t n_ticks_ = 0;
  /// Site-major: values_[site * n_ticks_ + tick].
  std::vector<double> values_;
};

/// Write `series` as CSV: header `site,tick,value`, one row per sample in
/// (site, tick) order, values printed with the shortest decimal
/// representation that round-trips bit-exactly. Throws std::runtime_error
/// when the file cannot be written.
void save_series_csv(const SiteSeries& series, const std::string& path);

/// Inverse of save_series_csv. Rows must cover the full (site, tick) grid
/// in (site, tick) order; any malformation throws std::runtime_error with
/// a `load_series_csv: <what> at line L, column C` message.
SiteSeries load_series_csv(const std::string& path);

}  // namespace vbatt::energy
