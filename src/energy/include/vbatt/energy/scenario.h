// Curated scenarios reproducing the paper's named site combinations.
#pragma once

#include <cstdint>

#include "vbatt/energy/site.h"
#include "vbatt/energy/trace.h"
#include "vbatt/util/time.h"

namespace vbatt::energy {

/// The three-site scenario of Fig. 3: a Norwegian solar farm, a UK wind
/// farm and a Portuguese wind farm, each 400 MW. The UK site's wind dips
/// around midday (night-peaking), complementing solar; the PT site loads
/// on the same Atlantic front system as the UK site but with opposite
/// sign, so when PT wind is high UK wind is low and vice versa — exactly
/// the complementarity the paper's Fig. 3a calls out.
struct Fig3Scenario {
  SiteSpec no_solar;
  SiteSpec uk_wind;
  SiteSpec pt_wind;

  PowerTrace trace_no;
  PowerTrace trace_uk;
  PowerTrace trace_pt;
};

/// Build the Fig. 3 scenario over `n_ticks` on `axis`.
Fig3Scenario make_fig3_scenario(const util::TimeAxis& axis,
                                std::size_t n_ticks,
                                std::uint64_t seed = 2015);

}  // namespace vbatt::energy
