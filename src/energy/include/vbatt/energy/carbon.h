// Carbon accounting — the paper's motivation made measurable.
//
// §1 opens with cloud computing's carbon footprint surpassing aviation and
// the providers' neutrality pledges. This module quantifies what a VB
// deployment avoids: running the same compute load on grid power (whose
// carbon intensity varies diurnally as fossil peakers fill the evening
// gap) versus on co-located renewables (lifecycle emissions only).
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/energy/signal.h"
#include "vbatt/util/time.h"

namespace vbatt::energy {

struct CarbonConfig {
  /// Grid carbon intensity: base + swing * cos peaking in the evening
  /// (fossil units covering the post-solar demand ramp). gCO2 / kWh.
  double grid_base_gco2_per_kwh = 320.0;
  double grid_swing_gco2_per_kwh = 90.0;
  double grid_peak_hour = 19.0;
  /// Lifecycle emissions of on-site wind/solar generation. gCO2 / kWh.
  double renewable_gco2_per_kwh = 15.0;
};

/// Grid carbon intensity at a tick, gCO2/kWh.
double grid_intensity_gco2(const CarbonConfig& config,
                           const util::TimeAxis& axis, util::Tick t);

struct CarbonReport {
  /// Emissions if the same per-tick consumption ran on grid power, tCO2.
  double grid_tco2 = 0.0;
  /// Emissions with VB (renewable lifecycle), tCO2.
  double vb_tco2 = 0.0;
  double avoided_tco2() const noexcept { return grid_tco2 - vb_tco2; }
  double avoided_fraction() const noexcept {
    return grid_tco2 > 0.0 ? avoided_tco2() / grid_tco2 : 0.0;
  }
};

/// Score a compute-energy series (MWh consumed per tick, e.g.
/// SimResult::energy_mwh_per_tick) against the two power sources.
CarbonReport compare_carbon(const CarbonConfig& config,
                            const util::TimeAxis& axis,
                            const std::vector<double>& consumption_mwh);

/// Deterministic per-site grid carbon-intensity series: the diurnal
/// grid_intensity_gco2 curve plus a fixed per-site offset (regional grid
/// mix differences), clamped to stay non-negative.
struct CarbonSeriesConfig {
  CarbonConfig grid{};
  /// Per-site offset drawn uniformly in ±this (seeded, fixed per site),
  /// gCO2/kWh.
  double site_spread_gco2_per_kwh = 25.0;
  std::uint64_t seed = 11;
};

/// One intensity sample per (site, tick), gCO2/kWh, always >= 0.
SiteSeries make_carbon_series(const CarbonSeriesConfig& config,
                              const util::TimeAxis& axis, std::size_t n_sites,
                              std::size_t n_ticks);

}  // namespace vbatt::energy
