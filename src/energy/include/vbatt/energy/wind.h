// Synthetic wind production model.
//
// Wind speed = seasonal base + shared "front" weather system (with a
// per-site loading, enabling the anti-correlated site pairs of Fig. 3)
// + optional diurnal component + gust OU noise; speed goes through a
// standard turbine power curve (cubic between cut-in and rated, flat to
// cut-out). Calibration targets from Fig. 2b: median ≤20% of peak, rarely
// exactly zero, 99th/75th percentile ratio ≈2x, sharp multi-hour peaks
// and valleys.
#pragma once

#include <cstdint>

#include "vbatt/energy/trace.h"
#include "vbatt/energy/weather.h"

namespace vbatt::energy {

/// Turbine power curve parameters (speeds in m/s).
struct PowerCurve {
  double cut_in = 3.0;
  double rated = 11.5;
  double cut_out = 25.0;

  /// Normalized power for wind speed `v`: 0 below cut-in and above cut-out,
  /// cubic ramp between cut-in and rated, 1.0 between rated and cut-out.
  double power(double v) const noexcept;
};

struct WindConfig {
  double peak_mw = 400.0;

  int start_day_of_year = 120;

  /// Mean wind speed (m/s) and its seasonal swing (winter windier).
  double base_speed = 7.0;
  double seasonal_swing_speed = 0.9;

  /// Loading (m/s per unit of front value) on the shared front process.
  /// Opposite-sign loadings on the same `front` config produce the
  /// complementary site pairs exploited in §2.3.
  FrontConfig front{};
  double front_loading_speed = 2.4;

  /// Diurnal speed component: amp * cos(2*pi*(h - peak_hour)/24). Zero by
  /// default; the curated UK site uses a nighttime peak so wind complements
  /// solar.
  double diurnal_amplitude_speed = 0.0;
  double diurnal_peak_hour = 0.0;

  /// Gust noise OU parameters (per hour / m/s). Defaults give ≈0.37 m/s
  /// stationary noise — farm-aggregate output is much smoother than a
  /// single turbine.
  double gust_theta_per_hour = 1.1;
  double gust_sigma = 0.45;

  /// Storm surges: occasional speed spikes that push the farm past the
  /// turbine cut-out, collapsing output to zero within a tick — the "sharp
  /// peaks and valleys" of Fig. 2a and the cliff-like migration events of
  /// Fig. 4. Mean gap between events (days), duration range (hours) and
  /// speed amplitude range (m/s). Set mean_gap <= 0 to disable.
  double storm_mean_gap_days = 5.0;
  double storm_min_hours = 2.0;
  double storm_max_hours = 8.0;
  double storm_min_speed = 15.0;
  double storm_max_speed = 20.0;

  PowerCurve curve{};
  std::uint64_t seed = 12;
};

/// Generator for wind PowerTraces; stateless like SolarModel.
class WindModel {
 public:
  explicit WindModel(WindConfig config);

  PowerTrace generate(const util::TimeAxis& axis, std::size_t n_ticks) const;

  /// Deterministic (noise-free) speed component at a tick; for tests.
  double mean_speed(const util::TimeAxis& axis, util::Tick t) const noexcept;

  const WindConfig& config() const noexcept { return config_; }

 private:
  WindConfig config_;
};

}  // namespace vbatt::energy
