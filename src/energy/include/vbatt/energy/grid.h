// Grid-export model — the other incumbent the Virtual Battery replaces.
//
// Fig. 1's "current deployment": renewable farms feed the grid through
// transmission lines (losing energy and money along the way) and are
// periodically curtailed when supply outruns demand. This module scores
// the three ways a farm's energy can be used — exported over the grid,
// shifted through a battery, or consumed on-site by a VB datacenter — on
// delivered energy and effective value.
#pragma once

#include "vbatt/energy/battery.h"
#include "vbatt/energy/trace.h"

namespace vbatt::energy {

struct GridConfig {
  /// Physical transmission & distribution loss (global average ~8-12%;
  /// the paper's [59] argues losses are "a lot" — default 10%).
  double transmission_loss = 0.10;
  /// Share of generation curtailed by the grid operator (paper: ~6%).
  double curtailment_fraction = 0.06;
  /// Share of the energy's economic value eaten by transmission &
  /// distribution charges (paper's [27]: ~half the cost).
  double value_loss_fraction = 0.50;
};

/// Outcome of one delivery strategy over a trace.
struct DeliveryOutcome {
  /// Energy usefully delivered/consumed, MWh.
  double delivered_mwh = 0.0;
  /// Energy lost (transmission, curtailment, conversion), MWh.
  double lost_mwh = 0.0;
  /// Effective economic value as a fraction of the raw energy value.
  double value_fraction = 0.0;
};

/// Export everything over the grid: curtailment first, then line losses,
/// then the transmission cost haircut.
DeliveryOutcome deliver_via_grid(const PowerTrace& trace,
                                 const GridConfig& config);

/// Firm through a battery, then export: conversion losses on shifted
/// energy plus the same grid losses downstream.
DeliveryOutcome deliver_via_battery(const PowerTrace& trace,
                                    const GridConfig& grid,
                                    const BatteryConfig& battery,
                                    double target_mw);

/// Consume on-site in a VB datacenter: no transmission, no curtailment;
/// compute absorbs what it can (utilization-capped), the rest is spilled.
DeliveryOutcome deliver_via_virtual_battery(const PowerTrace& trace,
                                            double compute_utilization = 0.95);

}  // namespace vbatt::energy
