#include "vbatt/energy/solar.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vbatt::energy {

namespace {

double seasonal_sin(int day_of_year) noexcept {
  return std::sin(2.0 * std::numbers::pi * (day_of_year - 80) / 365.0);
}

}  // namespace

SolarModel::SolarModel(SolarConfig config) : config_{config} {
  if (config_.peak_mw <= 0.0) {
    throw std::invalid_argument{"SolarConfig: peak_mw <= 0"};
  }
  if (config_.day_length_mean_hours - config_.day_length_swing_hours <= 0.0) {
    throw std::invalid_argument{"SolarConfig: day length can reach zero"};
  }
}

double SolarModel::clear_sky(const util::TimeAxis& axis,
                             util::Tick t) const noexcept {
  const int doy =
      static_cast<int>((config_.start_day_of_year + axis.day_index(t)) % 365);
  const double season = seasonal_sin(doy);
  const double day_length = config_.day_length_mean_hours +
                            config_.day_length_swing_hours * season;
  const double amplitude =
      config_.amplitude_base + config_.amplitude_swing * season;
  const double hour = axis.hour_of_day(t);
  const double sunrise = config_.noon_hour - day_length / 2.0;
  const double sunset = config_.noon_hour + day_length / 2.0;
  if (hour <= sunrise || hour >= sunset) return 0.0;
  const double s =
      std::sin(std::numbers::pi * (hour - sunrise) / day_length);
  return amplitude * std::pow(s, 1.1);
}

PowerTrace SolarModel::generate(const util::TimeAxis& axis,
                                std::size_t n_ticks) const {
  const int days =
      static_cast<int>((n_ticks + static_cast<std::size_t>(axis.ticks_per_day()) - 1) /
                       static_cast<std::size_t>(axis.ticks_per_day()));
  SkyChainConfig sky = config_.sky;
  sky.seed = util::seed_for(config_.seed, "solar-sky");
  const std::vector<SkyState> states = generate_sky_states(sky, days);

  util::Rng rng{util::seed_for(config_.seed, "solar-cloud")};
  // One continuous unit-variance OU path; per-state sigma scales it so sky
  // transitions do not introduce discontinuities in the noise itself.
  const std::vector<double> noise =
      generate_ou(rng, axis, n_ticks, config_.cloud_theta_per_hour,
                  std::sqrt(2.0 * config_.cloud_theta_per_hour));

  util::Rng day_rng{util::seed_for(config_.seed, "solar-day")};
  std::vector<double> day_scale(states.size());
  for (std::size_t d = 0; d < states.size(); ++d) {
    day_scale[d] = 1.0 + 0.08 * day_rng.normal();
  }

  std::vector<double> out(n_ticks);
  for (std::size_t i = 0; i < n_ticks; ++i) {
    const auto t = static_cast<util::Tick>(i);
    const auto day = static_cast<std::size_t>(axis.day_index(t));
    const SkyState state = states[day];
    double clearness = 0.0;
    double sigma = 0.0;
    switch (state) {
      case SkyState::sunny:
        clearness = config_.clearness_sunny;
        sigma = config_.cloud_sigma_sunny;
        break;
      case SkyState::variable:
        clearness = config_.clearness_variable;
        sigma = config_.cloud_sigma_variable;
        break;
      case SkyState::overcast:
        clearness = config_.clearness_overcast;
        sigma = config_.cloud_sigma_overcast;
        break;
    }
    clearness = std::clamp(clearness * day_scale[day] + sigma * noise[i],
                           0.0, 1.0);
    out[i] = std::clamp(clear_sky(axis, t) * clearness, 0.0, 1.0);
  }
  return PowerTrace{axis, config_.peak_mw, std::move(out), Source::solar};
}

}  // namespace vbatt::energy
