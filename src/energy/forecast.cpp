#include "vbatt/energy/forecast.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "vbatt/stats/series.h"
#include "vbatt/util/rng.h"

namespace vbatt::energy {

Forecaster::Forecaster(ForecastConfig config) : config_{config} {
  if (config_.window_per_lead <= 0.0) {
    throw std::invalid_argument{"ForecastConfig: window_per_lead <= 0"};
  }
}

std::vector<double> Forecaster::climatology(const PowerTrace& actual) {
  const auto per_day =
      static_cast<std::size_t>(actual.axis().ticks_per_day());
  std::vector<double> sum(per_day, 0.0);
  std::vector<std::size_t> count(per_day, 0);
  const auto& series = actual.normalized_series();
  for (std::size_t i = 0; i < series.size(); ++i) {
    sum[i % per_day] += series[i];
    ++count[i % per_day];
  }
  for (std::size_t i = 0; i < per_day; ++i) {
    sum[i] = count[i] ? sum[i] / static_cast<double>(count[i]) : 0.0;
  }
  return sum;
}

std::vector<double> Forecaster::forecast(const PowerTrace& actual,
                                         double lead_hours) const {
  if (lead_hours < 0.0) {
    throw std::invalid_argument{"forecast: negative lead"};
  }
  const auto& series = actual.normalized_series();
  const std::size_t n = series.size();
  if (n == 0) return {};
  const util::TimeAxis& axis = actual.axis();
  const bool solar = actual.source() == Source::solar;

  const std::vector<double> clim = climatology(actual);
  const auto per_day = static_cast<std::size_t>(axis.ticks_per_day());
  constexpr double clim_floor = 0.02;

  // 1. Work in the shape-preserving ratio domain r = actual / climatology.
  //    Smoothing r over a lead-dependent window blurs weather regimes
  //    without destroying the diurnal shape (a week-ahead solar forecast
  //    still knows day from night). Centered smoothing is the "oracle
  //    smoothing" surrogate: a weather model legitimately sees the future,
  //    only blurrier the further out.
  std::vector<double> ratio(n, 0.0);
  std::vector<double> valid(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = clim[i % per_day];
    if (c > clim_floor) {
      ratio[i] = series[i] / c;
      valid[i] = 1.0;
    }
  }
  const auto window_ticks = static_cast<std::size_t>(std::max<util::Tick>(
      1, axis.from_hours(config_.window_per_lead * lead_hours)));
  // Masked moving average: nights contribute neither value nor weight, so
  // a multi-day solar smoothing window sees only daytime regimes.
  const std::vector<double> num = stats::moving_average(
      [&] {
        std::vector<double> masked(n);
        for (std::size_t i = 0; i < n; ++i) masked[i] = ratio[i] * valid[i];
        return masked;
      }(),
      window_ticks);
  const std::vector<double> den = stats::moving_average(valid, window_ticks);
  std::vector<double> smoothed(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (den[i] > 1e-9) smoothed[i] = num[i] / den[i];
  }

  // 2. Blend the smoothed ratio toward 1 (= pure climatology) with a weight
  //    that grows with lead.
  const double half_life = solar ? config_.beta_half_life_solar_hours
                                 : config_.beta_half_life_wind_hours;
  const double beta_max =
      solar ? config_.beta_max_solar : config_.beta_max_wind;
  const double beta =
      lead_hours <= 0.0
          ? 0.0
          : beta_max * lead_hours / (lead_hours + half_life);

  // 3. AR(1) multiplicative noise whose scale grows with lead. Seeded by
  //    (seed, source, lead quantized to minutes) for determinism.
  const double sigma =
      (solar ? config_.sigma0_solar : config_.sigma0_wind) +
      (solar ? config_.sigma1_solar : config_.sigma1_wind) *
          std::sqrt(std::max(0.0, lead_hours) / 24.0);
  util::Rng rng{util::seed_for(
      config_.seed, solar ? "fc-solar" : "fc-wind",
      static_cast<std::uint64_t>(lead_hours * 60.0))};
  const double dt = axis.minutes_per_tick() / 60.0;
  const double decay = std::exp(-dt / config_.noise_decay_hours);
  const double step_sigma = sigma * std::sqrt(1.0 - decay * decay);

  std::vector<double> out(n);
  double noise = sigma * rng.normal();
  for (std::size_t i = 0; i < n; ++i) {
    noise = noise * decay + step_sigma * rng.normal();
    const double c = clim[i % per_day];
    if (c <= clim_floor) {
      // A forecaster always knows the deterministic near-zero regime
      // (solar night); emit the climatological residue unchanged.
      out[i] = std::clamp(c, 0.0, 1.0);
      continue;
    }
    const double r_hat = (1.0 - beta) * smoothed[i] + beta * 1.0;
    out[i] = std::clamp(c * r_hat * (1.0 + noise), 0.0, 1.0);
  }
  return out;
}

double Forecaster::measured_mape(const PowerTrace& actual, double lead_hours,
                                 double floor) const {
  return stats::mape(actual.normalized_series(), forecast(actual, lead_hours),
                     floor);
}

}  // namespace vbatt::energy
