#include "vbatt/energy/scenario.h"

#include "vbatt/util/rng.h"

namespace vbatt::energy {

Fig3Scenario make_fig3_scenario(const util::TimeAxis& axis,
                                std::size_t n_ticks, std::uint64_t seed) {
  const std::uint64_t front_seed = util::seed_for(seed, "fig3-front");

  SiteSpec no_solar;
  no_solar.id = 0;
  no_solar.name = "NO solar";
  no_solar.source = Source::solar;
  no_solar.peak_mw = 400.0;
  no_solar.location = {900.0, 1600.0};
  no_solar.solar.peak_mw = 400.0;
  no_solar.solar.start_day_of_year = 123;  // early May, as in Fig. 3a
  no_solar.solar.seed = util::seed_for(seed, "fig3-no");
  // High latitude: long May days but a weak sun — Norwegian May capacity
  // factors stay well below a southern farm's (Fig. 3a shows NO solar as
  // small bumps under the dominating wind bands).
  no_solar.solar.day_length_mean_hours = 13.0;
  no_solar.solar.day_length_swing_hours = 5.0;
  no_solar.solar.amplitude_base = 0.40;
  no_solar.solar.amplitude_swing = 0.24;

  SiteSpec uk_wind;
  uk_wind.id = 1;
  uk_wind.name = "UK wind";
  uk_wind.source = Source::wind;
  uk_wind.peak_mw = 400.0;
  uk_wind.location = {0.0, 900.0};
  uk_wind.wind.peak_mw = 400.0;
  uk_wind.wind.start_day_of_year = 123;
  uk_wind.wind.seed = util::seed_for(seed, "fig3-uk");
  uk_wind.wind.front.seed = front_seed;
  uk_wind.wind.front_loading_speed = 1.5;
  // Night-peaking: dips around midday, complementing solar.
  uk_wind.wind.diurnal_amplitude_speed = 0.6;
  uk_wind.wind.diurnal_peak_hour = 1.0;
  uk_wind.wind.base_speed = 9.1;
  uk_wind.wind.gust_sigma = 0.40;
  uk_wind.wind.storm_mean_gap_days = 0.0;  // keep the curated window storm-free

  SiteSpec pt_wind;
  pt_wind.id = 2;
  pt_wind.name = "PT wind";
  pt_wind.source = Source::wind;
  pt_wind.peak_mw = 400.0;
  pt_wind.location = {150.0, 0.0};
  pt_wind.wind.peak_mw = 400.0;
  pt_wind.wind.start_day_of_year = 123;
  pt_wind.wind.seed = util::seed_for(seed, "fig3-pt");
  // Same Atlantic front system, opposite loading: anti-correlated with UK.
  pt_wind.wind.front.seed = front_seed;
  // Loading scaled so the two sites' *power* responses to the front cancel
  // (the PT power curve is steeper at its lower base speed).
  pt_wind.wind.front_loading_speed = -2.5;
  pt_wind.wind.base_speed = 6.9;
  pt_wind.wind.diurnal_amplitude_speed = 1.2;
  pt_wind.wind.diurnal_peak_hour = 1.0;
  pt_wind.wind.gust_sigma = 0.40;
  pt_wind.wind.storm_mean_gap_days = 0.0;

  Fig3Scenario scenario{
      .no_solar = no_solar,
      .uk_wind = uk_wind,
      .pt_wind = pt_wind,
      .trace_no = no_solar.generate(axis, n_ticks),
      .trace_uk = uk_wind.generate(axis, n_ticks),
      .trace_pt = pt_wind.generate(axis, n_ticks),
  };
  return scenario;
}

}  // namespace vbatt::energy
