#include "vbatt/energy/cost.h"

#include <stdexcept>

namespace vbatt::energy {

CostSummary evaluate_economics(const CostModelConfig& config,
                               const PowerTrace& trace) {
  if (config.power_share_of_opex < 0.0 || config.power_share_of_opex > 1.0 ||
      config.transmission_share_of_power < 0.0 ||
      config.transmission_share_of_power > 1.0 ||
      config.curtailment_fraction < 0.0 ||
      config.curtailment_fraction > 1.0) {
    throw std::invalid_argument{"CostModelConfig: fractions out of [0, 1]"};
  }
  CostSummary summary;
  summary.opex_saving_fraction =
      config.power_share_of_opex * config.transmission_share_of_power;
  summary.recoverable_curtailed_mwh =
      trace.total_energy_mwh() * config.curtailment_fraction;
  summary.recoverable_value_usd =
      summary.recoverable_curtailed_mwh * config.wholesale_usd_per_mwh;
  return summary;
}

}  // namespace vbatt::energy
