#include "vbatt/energy/cost.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "vbatt/util/rng.h"

namespace vbatt::energy {

CostSummary evaluate_economics(const CostModelConfig& config,
                               const PowerTrace& trace) {
  if (config.power_share_of_opex < 0.0 || config.power_share_of_opex > 1.0 ||
      config.transmission_share_of_power < 0.0 ||
      config.transmission_share_of_power > 1.0 ||
      config.curtailment_fraction < 0.0 ||
      config.curtailment_fraction > 1.0) {
    throw std::invalid_argument{"CostModelConfig: fractions out of [0, 1]"};
  }
  CostSummary summary;
  summary.opex_saving_fraction =
      config.power_share_of_opex * config.transmission_share_of_power;
  summary.recoverable_curtailed_mwh =
      trace.total_energy_mwh() * config.curtailment_fraction;
  summary.recoverable_value_usd =
      summary.recoverable_curtailed_mwh * config.wholesale_usd_per_mwh;
  return summary;
}

SiteSeries make_price_series(const PriceSeriesConfig& config,
                             const util::TimeAxis& axis, std::size_t n_sites,
                             std::size_t n_ticks) {
  if (config.swing_usd_per_mwh < 0.0 || config.site_spread_usd_per_mwh < 0.0) {
    throw std::invalid_argument{"PriceSeriesConfig: negative swing or spread"};
  }
  SiteSeries series{n_sites, n_ticks};
  for (std::size_t s = 0; s < n_sites; ++s) {
    util::Rng rng{util::seed_for(config.seed, "price-site", s)};
    const double offset = rng.uniform(-config.site_spread_usd_per_mwh,
                                      config.site_spread_usd_per_mwh);
    for (std::size_t t = 0; t < n_ticks; ++t) {
      const double hour = axis.hour_of_day(static_cast<util::Tick>(t));
      series.at(s, t) =
          config.base_usd_per_mwh +
          config.swing_usd_per_mwh *
              std::cos(2.0 * std::numbers::pi *
                       (hour - config.peak_hour) / 24.0) +
          offset;
    }
  }
  return series;
}

}  // namespace vbatt::energy
