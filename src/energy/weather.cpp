#include "vbatt/energy/weather.h"

#include <cmath>
#include <numbers>

namespace vbatt::energy {

std::vector<SkyState> generate_sky_states(const SkyChainConfig& config,
                                          int days) {
  util::Rng rng{config.seed};
  std::vector<SkyState> out;
  out.reserve(static_cast<std::size_t>(days));
  int state = 0;  // start sunny; burn-in below decorrelates the start
  for (int warm = 0; warm < 8; ++warm) {
    const double u = rng.uniform();
    state = u < config.transition[state][0]                                ? 0
            : u < config.transition[state][0] + config.transition[state][1] ? 1
                                                                            : 2;
  }
  for (int d = 0; d < days; ++d) {
    const double u = rng.uniform();
    state = u < config.transition[state][0]                                ? 0
            : u < config.transition[state][0] + config.transition[state][1] ? 1
                                                                            : 2;
    out.push_back(static_cast<SkyState>(state));
  }
  return out;
}

std::vector<double> generate_ou(util::Rng& rng, const util::TimeAxis& axis,
                                std::size_t n, double theta_per_hour,
                                double sigma_per_sqrt_hour) {
  const double dt = axis.minutes_per_tick() / 60.0;
  const double decay = std::exp(-theta_per_hour * dt);
  // Exact discretization of the OU transition density.
  const double step_sigma =
      theta_per_hour > 0.0
          ? sigma_per_sqrt_hour *
                std::sqrt((1.0 - decay * decay) / (2.0 * theta_per_hour))
          : sigma_per_sqrt_hour * std::sqrt(dt);
  std::vector<double> out(n);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * decay + step_sigma * rng.normal();
    out[i] = x;
  }
  return out;
}

std::vector<double> generate_front(const FrontConfig& config,
                                   const util::TimeAxis& axis,
                                   std::size_t n) {
  util::Rng rng{config.seed};
  const std::size_t k = config.period_hours.size();
  std::vector<double> phase(k);
  std::vector<double> amp(k);
  double amp_total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    phase[i] = rng.uniform(0.0, 2.0 * std::numbers::pi);
    amp[i] = rng.uniform(0.6, 1.0);
    amp_total += amp[i];
  }
  std::vector<double> ou = generate_ou(rng, axis, n, config.ou_theta_per_hour,
                                       config.ou_sigma);
  std::vector<double> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double hours = axis.hours(static_cast<util::Tick>(t));
    double v = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      v += amp[i] * std::sin(2.0 * std::numbers::pi * hours /
                                 config.period_hours[i] +
                             phase[i]);
    }
    out[t] = v / (amp_total > 0.0 ? amp_total : 1.0) + ou[t];
  }
  return out;
}

}  // namespace vbatt::energy
