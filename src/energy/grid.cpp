#include "vbatt/energy/grid.h"

#include <stdexcept>

namespace vbatt::energy {

namespace {

void validate(const GridConfig& config) {
  if (config.transmission_loss < 0.0 || config.transmission_loss > 1.0 ||
      config.curtailment_fraction < 0.0 ||
      config.curtailment_fraction > 1.0 ||
      config.value_loss_fraction < 0.0 || config.value_loss_fraction > 1.0) {
    throw std::invalid_argument{"GridConfig: fractions out of [0, 1]"};
  }
}

}  // namespace

DeliveryOutcome deliver_via_grid(const PowerTrace& trace,
                                 const GridConfig& config) {
  validate(config);
  const double produced = trace.total_energy_mwh();
  const double after_curtailment =
      produced * (1.0 - config.curtailment_fraction);
  const double delivered =
      after_curtailment * (1.0 - config.transmission_loss);
  DeliveryOutcome outcome;
  outcome.delivered_mwh = delivered;
  outcome.lost_mwh = produced - delivered;
  outcome.value_fraction = (delivered / produced) *
                           (1.0 - config.value_loss_fraction);
  return outcome;
}

DeliveryOutcome deliver_via_battery(const PowerTrace& trace,
                                    const GridConfig& grid,
                                    const BatteryConfig& battery,
                                    double target_mw) {
  validate(grid);
  const BatteryResult firmed = firm_trace(trace, battery, target_mw);
  const double produced = trace.total_energy_mwh();
  const double hours_per_tick = trace.axis().minutes_per_tick() / 60.0;
  double exported = 0.0;
  for (const double mw : firmed.delivered_mw) exported += mw * hours_per_tick;
  // Firmed output is dispatchable: no curtailment, but line losses remain.
  const double delivered = exported * (1.0 - grid.transmission_loss);
  DeliveryOutcome outcome;
  outcome.delivered_mwh = delivered;
  outcome.lost_mwh = produced - delivered;
  outcome.value_fraction =
      (delivered / produced) * (1.0 - grid.value_loss_fraction);
  return outcome;
}

DeliveryOutcome deliver_via_virtual_battery(const PowerTrace& trace,
                                            double compute_utilization) {
  if (compute_utilization <= 0.0 || compute_utilization > 1.0) {
    throw std::invalid_argument{
        "deliver_via_virtual_battery: utilization out of (0, 1]"};
  }
  const double produced = trace.total_energy_mwh();
  const double consumed = produced * compute_utilization;
  DeliveryOutcome outcome;
  outcome.delivered_mwh = consumed;
  outcome.lost_mwh = produced - consumed;
  // On-site consumption keeps the full energy value (no T&D haircut).
  outcome.value_fraction = consumed / produced;
  return outcome;
}

}  // namespace vbatt::energy
