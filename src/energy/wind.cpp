#include "vbatt/energy/wind.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vbatt::energy {

double PowerCurve::power(double v) const noexcept {
  if (v < cut_in || v >= cut_out) return 0.0;
  if (v >= rated) return 1.0;
  const double v3 = v * v * v;
  const double ci3 = cut_in * cut_in * cut_in;
  const double r3 = rated * rated * rated;
  return std::clamp((v3 - ci3) / (r3 - ci3), 0.0, 1.0);
}

WindModel::WindModel(WindConfig config) : config_{config} {
  if (config_.peak_mw <= 0.0) {
    throw std::invalid_argument{"WindConfig: peak_mw <= 0"};
  }
  if (!(config_.curve.cut_in < config_.curve.rated &&
        config_.curve.rated < config_.curve.cut_out)) {
    throw std::invalid_argument{"WindConfig: power curve speeds not ordered"};
  }
}

double WindModel::mean_speed(const util::TimeAxis& axis,
                             util::Tick t) const noexcept {
  const int doy =
      static_cast<int>((config_.start_day_of_year + axis.day_index(t)) % 365);
  // Winter maximum: opposite phase to the solar seasonal term.
  const double season =
      -std::sin(2.0 * std::numbers::pi * (doy - 80) / 365.0);
  const double hour = axis.hour_of_day(t);
  const double diurnal =
      config_.diurnal_amplitude_speed *
      std::cos(2.0 * std::numbers::pi * (hour - config_.diurnal_peak_hour) /
               24.0);
  return config_.base_speed + config_.seasonal_swing_speed * season + diurnal;
}

PowerTrace WindModel::generate(const util::TimeAxis& axis,
                               std::size_t n_ticks) const {
  const std::vector<double> front =
      generate_front(config_.front, axis, n_ticks);
  util::Rng rng{util::seed_for(config_.seed, "wind-gust")};
  const std::vector<double> gust = generate_ou(
      rng, axis, n_ticks, config_.gust_theta_per_hour, config_.gust_sigma);

  // Storm surge speed additions (trapezoid: 30 min ramps).
  std::vector<double> surge(n_ticks, 0.0);
  if (config_.storm_mean_gap_days > 0.0) {
    util::Rng storm_rng{util::seed_for(config_.seed, "wind-storm")};
    const double ramp_hours = 0.5;
    double cursor_hours =
        storm_rng.exponential(config_.storm_mean_gap_days * 24.0);
    const double span_hours =
        axis.hours(static_cast<util::Tick>(n_ticks));
    while (cursor_hours < span_hours) {
      const double duration = storm_rng.uniform(config_.storm_min_hours,
                                                config_.storm_max_hours);
      const double amplitude = storm_rng.uniform(config_.storm_min_speed,
                                                 config_.storm_max_speed);
      const util::Tick begin = axis.from_hours(cursor_hours);
      const util::Tick end = axis.from_hours(cursor_hours + duration);
      for (util::Tick t = std::max<util::Tick>(0, begin);
           t < std::min<util::Tick>(static_cast<util::Tick>(n_ticks), end);
           ++t) {
        const double into = axis.hours(t) - cursor_hours;
        const double left = cursor_hours + duration - axis.hours(t);
        const double envelope =
            std::min({1.0, into / ramp_hours, left / ramp_hours});
        surge[static_cast<std::size_t>(t)] =
            amplitude * std::max(0.0, envelope);
      }
      cursor_hours += duration +
                      storm_rng.exponential(config_.storm_mean_gap_days * 24.0);
    }
  }

  std::vector<double> out(n_ticks);
  for (std::size_t i = 0; i < n_ticks; ++i) {
    const auto t = static_cast<util::Tick>(i);
    const double v = mean_speed(axis, t) +
                     config_.front_loading_speed * front[i] + gust[i] +
                     surge[i];
    out[i] = config_.curve.power(std::max(0.0, v));
  }
  return PowerTrace{axis, config_.peak_mw, std::move(out), Source::wind};
}

}  // namespace vbatt::energy
