#include "vbatt/energy/trace.h"

#include <algorithm>

namespace vbatt::energy {

std::string to_string(Source s) {
  return s == Source::solar ? "solar" : "wind";
}

PowerTrace::PowerTrace(util::TimeAxis axis, double peak_mw,
                       std::vector<double> normalized, Source source)
    : axis_{axis},
      peak_mw_{peak_mw},
      normalized_{std::move(normalized)},
      source_{source} {
  if (peak_mw <= 0.0) throw std::invalid_argument{"PowerTrace: peak_mw <= 0"};
  for (const double v : normalized_) {
    if (v < 0.0 || v > 1.0) {
      throw std::invalid_argument{"PowerTrace: sample outside [0, 1]"};
    }
  }
}

std::vector<double> PowerTrace::mw_series() const {
  std::vector<double> out(normalized_.size());
  for (std::size_t i = 0; i < normalized_.size(); ++i) {
    out[i] = normalized_[i] * peak_mw_;
  }
  return out;
}

double PowerTrace::energy_mwh(util::Tick begin, util::Tick end) const {
  if (begin < 0 || end > static_cast<util::Tick>(size()) || begin > end) {
    throw std::out_of_range{"PowerTrace::energy_mwh: bad range"};
  }
  const double hours_per_tick = axis_.minutes_per_tick() / 60.0;
  double sum = 0.0;
  for (util::Tick t = begin; t < end; ++t) {
    sum += normalized_[static_cast<std::size_t>(t)];
  }
  return sum * peak_mw_ * hours_per_tick;
}

PowerTrace PowerTrace::slice(util::Tick begin, util::Tick end) const {
  if (begin < 0 || end > static_cast<util::Tick>(size()) || begin > end) {
    throw std::out_of_range{"PowerTrace::slice: bad range"};
  }
  return PowerTrace{
      axis_, peak_mw_,
      std::vector<double>(normalized_.begin() + begin,
                          normalized_.begin() + end),
      source_};
}

PowerTrace PowerTrace::rescaled(double new_peak_mw) const {
  return PowerTrace{axis_, new_peak_mw, normalized_, source_};
}

PowerTrace combine(const std::vector<const PowerTrace*>& traces) {
  if (traces.empty()) throw std::invalid_argument{"combine: no traces"};
  const PowerTrace& first = *traces.front();
  double peak = 0.0;
  for (const PowerTrace* t : traces) {
    if (t->axis() != first.axis() || t->size() != first.size()) {
      throw std::invalid_argument{"combine: mismatched traces"};
    }
    peak += t->peak_mw();
  }
  std::vector<double> norm(first.size(), 0.0);
  for (const PowerTrace* t : traces) {
    for (std::size_t i = 0; i < norm.size(); ++i) {
      norm[i] += t->normalized_series()[i] * t->peak_mw();
    }
  }
  for (double& v : norm) v = std::clamp(v / peak, 0.0, 1.0);
  return PowerTrace{first.axis(), peak, std::move(norm), first.source()};
}

}  // namespace vbatt::energy
