#include "vbatt/energy/signal.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace vbatt::energy {

namespace {

/// "load_series_csv: <what> at line L, column C" — same diagnostic shape
/// as the fault schedule loader, so tooling can treat both uniformly.
[[noreturn]] void reject(const std::string& what, std::size_t line_no,
                         int column) {
  throw std::runtime_error{"load_series_csv: " + what + " at line " +
                           std::to_string(line_no) + ", column " +
                           std::to_string(column)};
}

double parse_number(const std::string& cell, std::size_t line_no,
                    int column) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(cell, &consumed);
  } catch (const std::exception&) {
    reject("non-numeric value", line_no, column);
  }
  if (consumed == 0 || std::isnan(value)) {
    reject("non-numeric value", line_no, column);
  }
  return value;
}

/// Shortest decimal that round-trips the exact bit pattern (to_chars
/// shortest form), so save → load is bit-exact.
std::string shortest_double(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return std::string{buf, end};
}

}  // namespace

void save_series_csv(const SiteSeries& series, const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"save_series_csv: cannot open " + path};
  }
  out << "site,tick,value\n";
  for (std::size_t s = 0; s < series.n_sites(); ++s) {
    for (std::size_t t = 0; t < series.n_ticks(); ++t) {
      out << s << ',' << t << ',' << shortest_double(series.at(s, t)) << '\n';
    }
  }
}

SiteSeries load_series_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"load_series_csv: cannot open " + path};
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error{"load_series_csv: empty file " + path};
  }
  if (line != "site,tick,value") reject("bad header", 1, 0);

  // Rows must enumerate the dense (site, tick) grid in order; the first
  // site's rows fix n_ticks, every later site must match it exactly.
  std::vector<double> values;
  std::size_t n_ticks = 0;
  std::size_t expect_site = 0;
  std::size_t expect_tick = 0;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row{line};
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    if (cells.size() != 3) {
      reject("expected 3 columns, got " + std::to_string(cells.size()),
             line_no, 0);
    }
    const double site = parse_number(cells[0], line_no, 0);
    const double tick = parse_number(cells[1], line_no, 1);
    const double value = parse_number(cells[2], line_no, 2);
    if (site < 0) reject("negative site", line_no, 0);
    if (tick < 0) reject("negative tick", line_no, 1);
    if (std::isinf(value)) reject("non-finite value", line_no, 2);
    const auto s_idx = static_cast<std::size_t>(site);
    const auto t_idx = static_cast<std::size_t>(tick);
    if (s_idx == expect_site + 1 && t_idx == 0 && expect_tick > 0) {
      // Site rollover: the first site fixes n_ticks, later ones must match.
      if (n_ticks == 0) {
        n_ticks = expect_tick;
      } else if (expect_tick != n_ticks) {
        reject("site " + std::to_string(expect_site) + " has " +
                   std::to_string(expect_tick) + " of " +
                   std::to_string(n_ticks) + " ticks",
               line_no, 1);
      }
      ++expect_site;
      expect_tick = 0;
    }
    if (s_idx != expect_site) {
      reject("expected site " + std::to_string(expect_site), line_no, 0);
    }
    if (t_idx != expect_tick) {
      reject("expected tick " + std::to_string(expect_tick), line_no, 1);
    }
    values.push_back(value);
    ++expect_tick;
  }
  if (values.empty()) {
    throw std::runtime_error{"load_series_csv: no samples in " + path};
  }
  if (n_ticks == 0) {
    n_ticks = expect_tick;  // single-site file: the body is site 0's ticks
  } else if (expect_tick != n_ticks) {
    reject("site " + std::to_string(expect_site) + " has " +
               std::to_string(expect_tick) + " of " + std::to_string(n_ticks) +
               " ticks",
           line_no + 1, 0);
  }
  const std::size_t n_sites = expect_site + 1;
  SiteSeries series{n_sites, n_ticks};
  for (std::size_t s = 0; s < n_sites; ++s) {
    for (std::size_t t = 0; t < n_ticks; ++t) {
      series.at(s, t) = values[s * n_ticks + t];
    }
  }
  return series;
}

}  // namespace vbatt::energy
