#include "vbatt/energy/trace_io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "vbatt/util/csv.h"

namespace vbatt::energy {

namespace {

/// "load_trace_csv: <what> at line L, column C" — every rejection names
/// the exact cell so a malformed export is fixable without bisecting it.
[[noreturn]] void reject(const std::string& what, std::size_t line_no,
                         int column) {
  throw std::runtime_error{"load_trace_csv: " + what + " at line " +
                           std::to_string(line_no) + ", column " +
                           std::to_string(column)};
}

double parse_cell(const std::string& cell, std::size_t line_no, int column) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(cell, &consumed);
  } catch (const std::exception&) {
    reject("non-numeric value", line_no, column);
  }
  if (consumed == 0) reject("non-numeric value", line_no, column);
  return value;
}

}  // namespace

void save_trace_csv(const PowerTrace& trace, const std::string& path) {
  util::CsvWriter csv{path, {"tick", "normalized"}};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    csv.row({static_cast<double>(i),
             trace.normalized(static_cast<util::Tick>(i))});
  }
}

PowerTrace load_trace_csv(const std::string& path, const util::TimeAxis& axis,
                          double peak_mw, Source source, int column) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"load_trace_csv: cannot open " + path};
  if (column < 0) throw std::invalid_argument{"load_trace_csv: bad column"};

  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error{"load_trace_csv: empty file " + path};
  }
  std::vector<double> values;
  std::size_t line_no = 1;
  bool have_prev_timestamp = false;
  double prev_timestamp = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream row{line};
    std::string cell;
    std::string timestamp_cell;
    for (int c = 0; c <= column; ++c) {
      if (!std::getline(row, cell, ',')) {
        reject("missing column", line_no, c);
      }
      if (c == 0) timestamp_cell = cell;
    }
    // Timestamp discipline: when the power value is not itself in the
    // first column, column 0 is the tick/timestamp and must be a strictly
    // increasing finite number — duplicated or shuffled rows would
    // silently shift the whole simulation otherwise.
    if (column > 0) {
      const double ts = parse_cell(timestamp_cell, line_no, 0);
      if (std::isnan(ts) || std::isinf(ts)) {
        reject("non-finite timestamp", line_no, 0);
      }
      if (have_prev_timestamp && ts <= prev_timestamp) {
        reject("non-monotonic timestamp", line_no, 0);
      }
      prev_timestamp = ts;
      have_prev_timestamp = true;
    }
    const double value = parse_cell(cell, line_no, column);
    // NaN fails every range comparison, so test it explicitly: a NaN that
    // slips through poisons cov/percentile statistics downstream.
    if (std::isnan(value)) reject("NaN power value", line_no, column);
    if (value < 0.0) reject("negative power value", line_no, column);
    if (value > 1.0) reject("value out of [0, 1]", line_no, column);
    values.push_back(value);
  }
  if (values.empty()) {
    throw std::runtime_error{"load_trace_csv: no samples in " + path};
  }
  return PowerTrace{axis, peak_mw, std::move(values), source};
}

}  // namespace vbatt::energy
