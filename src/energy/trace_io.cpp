#include "vbatt/energy/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "vbatt/util/csv.h"

namespace vbatt::energy {

void save_trace_csv(const PowerTrace& trace, const std::string& path) {
  util::CsvWriter csv{path, {"tick", "normalized"}};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    csv.row({static_cast<double>(i),
             trace.normalized(static_cast<util::Tick>(i))});
  }
}

PowerTrace load_trace_csv(const std::string& path, const util::TimeAxis& axis,
                          double peak_mw, Source source, int column) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"load_trace_csv: cannot open " + path};
  if (column < 0) throw std::invalid_argument{"load_trace_csv: bad column"};

  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error{"load_trace_csv: empty file " + path};
  }
  std::vector<double> values;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream row{line};
    std::string cell;
    for (int c = 0; c <= column; ++c) {
      if (!std::getline(row, cell, ',')) {
        throw std::runtime_error{"load_trace_csv: missing column at line " +
                                 std::to_string(line_no)};
      }
    }
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(cell, &consumed);
    } catch (const std::exception&) {
      throw std::runtime_error{"load_trace_csv: non-numeric value at line " +
                               std::to_string(line_no)};
    }
    if (consumed == 0 || value < 0.0 || value > 1.0) {
      throw std::runtime_error{"load_trace_csv: value out of [0, 1] at line " +
                               std::to_string(line_no)};
    }
    values.push_back(value);
  }
  if (values.empty()) {
    throw std::runtime_error{"load_trace_csv: no samples in " + path};
  }
  return PowerTrace{axis, peak_mw, std::move(values), source};
}

}  // namespace vbatt::energy
