#include "vbatt/energy/site.h"

#include <stdexcept>

#include "vbatt/util/rng.h"

namespace vbatt::energy {

PowerTrace SiteSpec::generate(const util::TimeAxis& axis,
                              std::size_t n_ticks) const {
  if (source == Source::solar) {
    return SolarModel{solar}.generate(axis, n_ticks);
  }
  return WindModel{wind}.generate(axis, n_ticks);
}

Fleet generate_fleet(const FleetConfig& config, const util::TimeAxis& axis,
                     std::size_t n_ticks) {
  if (config.n_solar < 0 || config.n_wind < 0 ||
      config.n_solar + config.n_wind == 0) {
    throw std::invalid_argument{"FleetConfig: need at least one site"};
  }
  if (config.n_fronts <= 0) {
    throw std::invalid_argument{"FleetConfig: n_fronts must be positive"};
  }

  util::Rng geo_rng{util::seed_for(config.seed, "fleet-geo")};
  Fleet fleet;
  fleet.axis = axis;
  int id = 0;

  for (int i = 0; i < config.n_solar; ++i, ++id) {
    SiteSpec spec;
    spec.id = id;
    spec.name = "solar-" + std::to_string(i);
    spec.source = Source::solar;
    spec.peak_mw = config.peak_mw;
    spec.location = {geo_rng.uniform(0.0, config.region_km),
                     geo_rng.uniform(0.0, config.region_km)};
    spec.solar.peak_mw = config.peak_mw;
    spec.solar.start_day_of_year = config.start_day_of_year;
    // Longitude spread: solar noon shifts up to ±1.25 h across the region.
    spec.solar.noon_hour =
        12.5 + 2.5 * (spec.location.x_km / config.region_km - 0.5);
    spec.solar.seed = util::seed_for(config.seed, "fleet-solar",
                                     static_cast<std::uint64_t>(i));
    fleet.specs.push_back(spec);
  }

  for (int i = 0; i < config.n_wind; ++i, ++id) {
    SiteSpec spec;
    spec.id = id;
    spec.name = "wind-" + std::to_string(i);
    spec.source = Source::wind;
    spec.peak_mw = config.peak_mw;
    spec.location = {geo_rng.uniform(0.0, config.region_km),
                     geo_rng.uniform(0.0, config.region_km)};
    spec.wind.peak_mw = config.peak_mw;
    spec.wind.start_day_of_year = config.start_day_of_year;
    // Wind sites share one of `n_fronts` regional weather systems and load
    // on it with alternating sign — adjacent indices are complementary.
    const int front_id = i % config.n_fronts;
    spec.wind.front.seed = util::seed_for(
        config.seed, "fleet-front", static_cast<std::uint64_t>(front_id));
    const double sign = (i / config.n_fronts) % 2 == 0 ? 1.0 : -1.0;
    spec.wind.front_loading_speed = sign * 2.0;
    spec.wind.base_speed = 7.8;
    spec.wind.gust_sigma = 0.40;
    if (!config.enable_storms) spec.wind.storm_mean_gap_days = 0.0;
    // Mild nocturnal wind maximum, complementing the fleet's solar sites.
    spec.wind.diurnal_amplitude_speed = 0.7;
    spec.wind.diurnal_peak_hour = 1.0;
    spec.wind.seed = util::seed_for(config.seed, "fleet-wind",
                                    static_cast<std::uint64_t>(i));
    fleet.specs.push_back(spec);
  }

  fleet.traces.reserve(fleet.specs.size());
  for (const SiteSpec& spec : fleet.specs) {
    fleet.traces.push_back(spec.generate(axis, n_ticks));
  }
  return fleet;
}

}  // namespace vbatt::energy
