#include "vbatt/energy/carbon.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "vbatt/util/rng.h"

namespace vbatt::energy {

double grid_intensity_gco2(const CarbonConfig& config,
                           const util::TimeAxis& axis, util::Tick t) {
  const double hour = axis.hour_of_day(t);
  return config.grid_base_gco2_per_kwh +
         config.grid_swing_gco2_per_kwh *
             std::cos(2.0 * std::numbers::pi *
                      (hour - config.grid_peak_hour) / 24.0);
}

CarbonReport compare_carbon(const CarbonConfig& config,
                            const util::TimeAxis& axis,
                            const std::vector<double>& consumption_mwh) {
  if (config.grid_base_gco2_per_kwh < config.grid_swing_gco2_per_kwh) {
    throw std::invalid_argument{
        "CarbonConfig: swing exceeds base (negative intensity)"};
  }
  if (config.renewable_gco2_per_kwh < 0.0) {
    throw std::invalid_argument{"CarbonConfig: negative renewable intensity"};
  }
  CarbonReport report;
  for (std::size_t i = 0; i < consumption_mwh.size(); ++i) {
    const double kwh = consumption_mwh[i] * 1000.0;
    report.grid_tco2 +=
        kwh *
        grid_intensity_gco2(config, axis, static_cast<util::Tick>(i)) / 1e6;
    report.vb_tco2 += kwh * config.renewable_gco2_per_kwh / 1e6;
  }
  return report;
}

SiteSeries make_carbon_series(const CarbonSeriesConfig& config,
                              const util::TimeAxis& axis, std::size_t n_sites,
                              std::size_t n_ticks) {
  if (config.grid.grid_base_gco2_per_kwh <
      config.grid.grid_swing_gco2_per_kwh) {
    throw std::invalid_argument{
        "CarbonConfig: swing exceeds base (negative intensity)"};
  }
  if (config.site_spread_gco2_per_kwh < 0.0) {
    throw std::invalid_argument{"CarbonSeriesConfig: negative spread"};
  }
  SiteSeries series{n_sites, n_ticks};
  for (std::size_t s = 0; s < n_sites; ++s) {
    util::Rng rng{util::seed_for(config.seed, "carbon-site", s)};
    const double offset = rng.uniform(-config.site_spread_gco2_per_kwh,
                                      config.site_spread_gco2_per_kwh);
    for (std::size_t t = 0; t < n_ticks; ++t) {
      const double intensity =
          grid_intensity_gco2(config.grid, axis, static_cast<util::Tick>(t)) +
          offset;
      series.at(s, t) = std::max(0.0, intensity);
    }
  }
  return series;
}

}  // namespace vbatt::energy
