#include "vbatt/energy/battery.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vbatt::energy {

double BatteryResult::floor_mw() const {
  if (delivered_mw.empty()) return 0.0;
  return *std::min_element(delivered_mw.begin(), delivered_mw.end());
}

BatteryResult firm_trace(const PowerTrace& trace, const BatteryConfig& config,
                         double target_mw) {
  if (config.capacity_mwh < 0.0 || config.max_charge_mw < 0.0 ||
      config.max_discharge_mw < 0.0) {
    throw std::invalid_argument{"BatteryConfig: negative limits"};
  }
  if (config.round_trip_efficiency <= 0.0 ||
      config.round_trip_efficiency > 1.0) {
    throw std::invalid_argument{"BatteryConfig: efficiency out of (0, 1]"};
  }
  if (config.initial_soc < 0.0 || config.initial_soc > 1.0) {
    throw std::invalid_argument{"BatteryConfig: initial_soc out of [0, 1]"};
  }
  if (target_mw < 0.0) {
    throw std::invalid_argument{"firm_trace: negative target"};
  }

  const double hours_per_tick = trace.axis().minutes_per_tick() / 60.0;
  const double side_eff = std::sqrt(config.round_trip_efficiency);

  BatteryResult result;
  const std::size_t n = trace.size();
  result.delivered_mw.resize(n);
  result.soc_mwh.resize(n);

  double soc = config.initial_soc * config.capacity_mwh;
  for (std::size_t i = 0; i < n; ++i) {
    const double produced = trace.mw(static_cast<util::Tick>(i));
    double delivered = produced;
    if (produced > target_mw) {
      // Surplus: charge within power limit and remaining headroom.
      const double surplus = produced - target_mw;
      const double charge_mw = std::min(
          {surplus, config.max_charge_mw,
           (config.capacity_mwh - soc) / (side_eff * hours_per_tick)});
      soc += charge_mw * side_eff * hours_per_tick;
      result.charged_mwh += charge_mw * hours_per_tick;
      result.loss_mwh += charge_mw * (1.0 - side_eff) * hours_per_tick;
      delivered = produced - charge_mw;
    } else if (produced < target_mw) {
      // Deficit: discharge within power limit and available energy.
      const double deficit = target_mw - produced;
      const double discharge_mw = std::min(
          {deficit, config.max_discharge_mw,
           soc * side_eff / hours_per_tick});
      soc -= discharge_mw / side_eff * hours_per_tick;
      result.discharged_mwh += discharge_mw * hours_per_tick;
      result.loss_mwh +=
          discharge_mw * (1.0 / side_eff - 1.0) * hours_per_tick;
      delivered = produced + discharge_mw;
    }
    soc = std::clamp(soc, 0.0, config.capacity_mwh);
    result.soc_mwh[i] = soc;
    result.delivered_mw[i] = delivered;
  }
  return result;
}

double required_battery_mwh(const PowerTrace& trace, double floor_target_mw,
                            double round_trip_efficiency) {
  if (floor_target_mw <= 0.0) return 0.0;
  // Feasibility: a sustainable battery cannot deliver a floor above the
  // mean production — energy can only be shifted, not created (and losses
  // only make it worse). Without this check a huge battery's initial
  // charge could fake feasibility over a finite window.
  const double hours = static_cast<double>(trace.size()) *
                       trace.axis().minutes_per_tick() / 60.0;
  const double mean_mw = trace.total_energy_mwh() / hours;
  if (floor_target_mw >= mean_mw) {
    return std::numeric_limits<double>::infinity();
  }
  const double huge = trace.peak_mw() * 24.0 * 365.0;

  const auto achieves = [&](double capacity) {
    BatteryConfig config;
    config.capacity_mwh = capacity;
    config.max_charge_mw = capacity / 4.0;
    config.max_discharge_mw = capacity / 4.0;
    config.round_trip_efficiency = round_trip_efficiency;
    config.initial_soc = 0.5;
    return firm_trace(trace, config, floor_target_mw).floor_mw() >=
           floor_target_mw - 1e-6;
  };

  if (!achieves(huge)) return std::numeric_limits<double>::infinity();
  double lo = 0.0;
  double hi = huge;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (achieves(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace vbatt::energy
