#include "vbatt/fault/stream.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "vbatt/util/rng.h"

namespace vbatt::fault {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw std::runtime_error{"StreamInjector: " + what};
}

std::pair<std::size_t, std::size_t> canonical_edge(std::size_t a,
                                                   std::size_t b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

StreamInjector::StreamInjector(const core::VbGraph& graph,
                               std::uint64_t noise_seed)
    : graph_{graph},
      noise_seed_{noise_seed},
      n_sites_{graph.n_sites()},
      n_ticks_{graph.n_ticks()} {
  base_power_.reserve(n_sites_);
  base_forecast_.reserve(n_sites_);
  for (const core::VbSite& site : graph_.sites()) {
    base_power_.push_back(site.power_norm);
    base_forecast_.push_back(site.forecast_norm);
  }
  blackouts_.resize(n_sites_);
  brownouts_.resize(n_sites_);
  forecast_faults_.resize(n_sites_);
  outage_windows_.resize(n_sites_);
  admin_.resize(n_sites_);
  drains_.resize(n_sites_);
  admin_open_.assign(n_sites_, 0);
  drain_open_.assign(n_sites_, 0);
  down_.assign(n_sites_ * n_ticks_, 0);
  degraded_.assign(n_sites_ * n_ticks_, 0);
}

void StreamInjector::inject(const FaultEvent& e, util::Tick now) {
  const auto horizon = static_cast<util::Tick>(n_ticks_);
  if (e.site >= n_sites_) {
    reject("fault event field 'site' out of range: " +
           std::to_string(e.site));
  }
  if (e.start <= now) {
    reject("fault event field 'start' not in the future (start=" +
           std::to_string(e.start) + ", now=" + std::to_string(now) + ")");
  }
  if (e.end <= e.start) {
    reject("fault event field 'end' must exceed 'start' (start=" +
           std::to_string(e.start) + ", end=" + std::to_string(e.end) + ")");
  }
  const util::Tick stop = std::min(e.end, horizon);

  switch (e.kind) {
    case FaultKind::site_blackout:
      blackouts_[e.site].push_back({e.start, stop});
      break;
    case FaultKind::site_brownout:
      if (e.alpha < 0.0 || e.alpha >= 1.0) {
        reject("fault event field 'alpha' outside [0, 1) for brownout: " +
               std::to_string(e.alpha));
      }
      brownouts_[e.site].push_back({e.start, stop, e.alpha});
      break;
    case FaultKind::forecast_error:
      if (e.sigma < 0.0) {
        reject("fault event field 'sigma' negative: " +
               std::to_string(e.sigma));
      }
      forecast_faults_[e.site].push_back(
          {e.start, stop, e.alpha, e.sigma, accepted_});
      break;
    case FaultKind::link_down:
      if (e.peer >= n_sites_) {
        reject("fault event field 'peer' out of range: " +
               std::to_string(e.peer));
      }
      if (e.peer == e.site) {
        reject("fault event field 'peer' equals 'site' for link_down");
      }
      if (!graph_.latency().link_exists(e.site, e.peer)) {
        reject("fault event names a non-existent link " +
               std::to_string(e.site) + "-" + std::to_string(e.peer));
      }
      link_transitions_[e.start].emplace_back(e.site, e.peer, false);
      ++epoch_bumps_[e.start];
      if (e.end < horizon) {
        link_transitions_[e.end].emplace_back(e.site, e.peer, true);
        ++epoch_bumps_[e.end];
      }
      break;
    case FaultKind::server_failure:
      if (e.count <= 0) {
        reject("fault event field 'count' not positive: " +
               std::to_string(e.count));
      }
      outages_[e.start].push_back(core::ServerOutage{e.site, e.count, e.end});
      ++epoch_bumps_[e.start];
      if (e.end < horizon) ++epoch_bumps_[e.end];  // repair lands
      outage_windows_[e.site].push_back({e.start, stop});
      break;
  }
  ++accepted_;
  rebake_site(e.site);
}

void StreamInjector::admin_down(std::size_t site, util::Tick from) {
  if (site >= n_sites_) reject("admin_down: site out of range");
  if (admin_open_[site]) return;  // already down
  admin_[site].push_back({from, static_cast<util::Tick>(n_ticks_)});
  admin_open_[site] = 1;
  ++epoch_bumps_[from];
  rebake_site(site);
}

void StreamInjector::admin_up(std::size_t site, util::Tick from) {
  if (site >= n_sites_) reject("admin_up: site out of range");
  if (!admin_open_[site]) return;
  admin_[site].back().end = from;
  admin_open_[site] = 0;
  ++epoch_bumps_[from];
  rebake_site(site);
}

bool StreamInjector::admin_is_down(std::size_t site) const {
  return site < n_sites_ && admin_open_[site] != 0;
}

void StreamInjector::drain(std::size_t site, util::Tick from) {
  if (site >= n_sites_) reject("drain: site out of range");
  if (drain_open_[site]) return;
  drains_[site].push_back({from, static_cast<util::Tick>(n_ticks_)});
  drain_open_[site] = 1;
  rebake_site(site);
}

void StreamInjector::undrain(std::size_t site, util::Tick from) {
  if (site >= n_sites_) reject("undrain: site out of range");
  if (!drain_open_[site]) return;
  drains_[site].back().end = from;
  drain_open_[site] = 0;
  rebake_site(site);
}

bool StreamInjector::is_draining(std::size_t site) const {
  return site < n_sites_ && drain_open_[site] != 0;
}

void StreamInjector::set_power(std::size_t site, util::Tick start,
                               const std::vector<double>& values,
                               util::Tick now) {
  if (site >= n_sites_) reject("set_power: site out of range");
  if (start <= now) reject("set_power: start tick not in the future");
  if (static_cast<std::size_t>(start) + values.size() > n_ticks_) {
    reject("set_power: series runs past the horizon");
  }
  std::copy(values.begin(), values.end(),
            base_power_[site].begin() + static_cast<std::size_t>(start));
  rebake_site(site);
}

void StreamInjector::set_forecast(std::size_t site, std::size_t lead,
                                  util::Tick start,
                                  const std::vector<double>& values,
                                  util::Tick now) {
  if (site >= n_sites_) reject("set_forecast: site out of range");
  if (lead >= base_forecast_[site].size()) {
    reject("set_forecast: lead index out of range");
  }
  if (start <= now) reject("set_forecast: start tick not in the future");
  if (static_cast<std::size_t>(start) + values.size() > n_ticks_) {
    reject("set_forecast: series runs past the horizon");
  }
  std::copy(values.begin(), values.end(),
            base_forecast_[site][lead].begin() +
                static_cast<std::size_t>(start));
  rebake_site(site);
}

void StreamInjector::rebake_site(std::size_t s) {
  core::VbSite& site = graph_.mutable_sites()[s];
  site.power_norm = base_power_[s];
  site.forecast_norm = base_forecast_[s];

  // Power: brownouts multiply, then every zeroing window (blackout, drain,
  // admin) absorbs — order-independent, so a fixed pass order reproduces
  // what schedule-order interleaving bakes.
  for (const Brownout& b : brownouts_[s]) {
    for (util::Tick t = b.start; t < b.end; ++t) {
      site.power_norm[static_cast<std::size_t>(t)] *= b.alpha;
    }
  }
  const auto zero = [&](const std::vector<Window>& windows) {
    for (const Window& w : windows) {
      for (util::Tick t = w.start; t < w.end; ++t) {
        site.power_norm[static_cast<std::size_t>(t)] = 0.0;
      }
    }
  };
  zero(blackouts_[s]);
  zero(drains_[s]);
  zero(admin_[s]);

  // Forecast corruption: per-event child stream, identical to
  // FaultInjector's baking loop (noise_index stands in for the schedule
  // index), so the same events yield the same corrupted series.
  for (const ForecastFault& f : forecast_faults_[s]) {
    util::Rng rng{util::seed_for(noise_seed_, "forecast-noise",
                                 f.noise_index)};
    for (std::vector<double>& lead : site.forecast_norm) {
      for (util::Tick t = f.start; t < f.end; ++t) {
        double& v = lead[static_cast<std::size_t>(t)];
        v = std::clamp(v * (1.0 + f.alpha) + rng.normal(0.0, f.sigma), 0.0,
                       1.0);
      }
    }
  }

  rebake_masks(s);
}

void StreamInjector::rebake_masks(std::size_t s) {
  const std::size_t base = s * n_ticks_;
  std::fill(down_.begin() + base, down_.begin() + base + n_ticks_, 0);
  std::fill(degraded_.begin() + base, degraded_.begin() + base + n_ticks_, 0);
  const auto mask = [&](std::vector<char>& m, const Window& w) {
    for (util::Tick t = w.start; t < w.end; ++t) {
      m[base + static_cast<std::size_t>(t)] = 1;
    }
  };
  for (const Window& w : blackouts_[s]) {
    mask(down_, w);
    mask(degraded_, w);
  }
  for (const Window& w : admin_[s]) {
    mask(down_, w);
    mask(degraded_, w);
  }
  for (const Brownout& b : brownouts_[s]) mask(degraded_, {b.start, b.end});
  for (const Window& w : outage_windows_[s]) mask(degraded_, w);
  // Drains deliberately set neither mask.
}

void StreamInjector::rebake_all() {
  for (std::size_t s = 0; s < n_sites_; ++s) rebake_site(s);
}

void StreamInjector::begin_tick(util::Tick t) {
  if (const auto bump = epoch_bumps_.find(t); bump != epoch_bumps_.end()) {
    epoch_ += bump->second;
    epoch_bumps_.erase(bump);
  }
  const auto due = link_transitions_.find(t);
  if (due == link_transitions_.end()) return;
  for (const auto& [a, b, up] : due->second) {
    graph_.mutable_latency().set_edge_up(a, b, up);
    if (up) {
      severed_.erase(canonical_edge(a, b));
    } else {
      severed_.insert(canonical_edge(a, b));
    }
  }
  link_transitions_.erase(due);
}

bool StreamInjector::site_down(std::size_t s, util::Tick t) const {
  if (t < 0 || static_cast<std::size_t>(t) >= n_ticks_) return false;
  const std::size_t at = s * n_ticks_ + static_cast<std::size_t>(t);
  return at < down_.size() && down_[at] != 0;
}

bool StreamInjector::site_degraded(std::size_t s, util::Tick t) const {
  if (t < 0 || static_cast<std::size_t>(t) >= n_ticks_) return false;
  const std::size_t at = s * n_ticks_ + static_cast<std::size_t>(t);
  return at < degraded_.size() && degraded_[at] != 0;
}

std::vector<core::ServerOutage> StreamInjector::server_outages_at(
    util::Tick t) {
  const auto due = outages_.find(t);
  if (due == outages_.end()) return {};
  return due->second;
}

void StreamInjector::on_tick_end(const core::TickSnapshot& snap) {
  (void)snap;  // observation-only hook; the service reads status directly
}

// --- serialization --------------------------------------------------------

namespace {
constexpr std::uint32_t kInjectorFormatVersion = 1;
}  // namespace

void StreamInjector::save(util::wire::Writer& w) const {
  w.u32(kInjectorFormatVersion);
  w.u64(noise_seed_);
  w.u64(epoch_);
  w.u64(accepted_);

  for (std::size_t s = 0; s < n_sites_; ++s) {
    w.vec_f64(base_power_[s]);
    w.u64(base_forecast_[s].size());
    for (const std::vector<double>& lead : base_forecast_[s]) {
      w.vec_f64(lead);
    }
  }
  const auto save_windows = [&w](const std::vector<Window>& v) {
    w.u64(v.size());
    for (const Window& x : v) {
      w.i64(x.start);
      w.i64(x.end);
    }
  };
  for (std::size_t s = 0; s < n_sites_; ++s) {
    save_windows(blackouts_[s]);
    w.u64(brownouts_[s].size());
    for (const Brownout& b : brownouts_[s]) {
      w.i64(b.start);
      w.i64(b.end);
      w.f64(b.alpha);
    }
    w.u64(forecast_faults_[s].size());
    for (const ForecastFault& f : forecast_faults_[s]) {
      w.i64(f.start);
      w.i64(f.end);
      w.f64(f.alpha);
      w.f64(f.sigma);
      w.u64(f.noise_index);
    }
    save_windows(outage_windows_[s]);
    save_windows(admin_[s]);
    save_windows(drains_[s]);
    w.u8(admin_open_[s]);
    w.u8(drain_open_[s]);
  }

  w.u64(link_transitions_.size());
  for (const auto& [tick, list] : link_transitions_) {
    w.i64(tick);
    w.u64(list.size());
    for (const auto& [a, b, up] : list) {
      w.u64(a);
      w.u64(b);
      w.u8(up ? 1 : 0);
    }
  }
  w.u64(severed_.size());
  for (const auto& [a, b] : severed_) {
    w.u64(a);
    w.u64(b);
  }
  w.u64(outages_.size());
  for (const auto& [tick, list] : outages_) {
    w.i64(tick);
    w.u64(list.size());
    for (const core::ServerOutage& o : list) {
      w.u64(o.site);
      w.i64(o.count);
      w.i64(o.repair_tick);
    }
  }
  w.u64(epoch_bumps_.size());
  for (const auto& [tick, n] : epoch_bumps_) {
    w.i64(tick);
    w.u64(n);
  }
}

void StreamInjector::restore(util::wire::Reader& r) {
  if (const std::uint32_t version = r.u32();
      version != kInjectorFormatVersion) {
    throw std::runtime_error{"StreamInjector::restore: unsupported version " +
                             std::to_string(version)};
  }
  noise_seed_ = r.u64();
  epoch_ = r.u64();
  accepted_ = r.u64();

  for (std::size_t s = 0; s < n_sites_; ++s) {
    base_power_[s] = r.vec_f64();
    if (base_power_[s].size() != n_ticks_) {
      throw std::runtime_error{"StreamInjector::restore: power series size"};
    }
    const std::uint64_t n_leads = r.u64();
    if (n_leads != base_forecast_[s].size()) {
      throw std::runtime_error{"StreamInjector::restore: lead count"};
    }
    for (std::vector<double>& lead : base_forecast_[s]) lead = r.vec_f64();
  }
  const auto load_windows = [&r](std::vector<Window>& v) {
    v.clear();
    const std::uint64_t n = r.u64();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Window x;
      x.start = r.i64();
      x.end = r.i64();
      v.push_back(x);
    }
  };
  for (std::size_t s = 0; s < n_sites_; ++s) {
    load_windows(blackouts_[s]);
    brownouts_[s].clear();
    const std::uint64_t n_brown = r.u64();
    for (std::uint64_t i = 0; i < n_brown; ++i) {
      Brownout b;
      b.start = r.i64();
      b.end = r.i64();
      b.alpha = r.f64();
      brownouts_[s].push_back(b);
    }
    forecast_faults_[s].clear();
    const std::uint64_t n_fore = r.u64();
    for (std::uint64_t i = 0; i < n_fore; ++i) {
      ForecastFault f;
      f.start = r.i64();
      f.end = r.i64();
      f.alpha = r.f64();
      f.sigma = r.f64();
      f.noise_index = r.u64();
      forecast_faults_[s].push_back(f);
    }
    load_windows(outage_windows_[s]);
    load_windows(admin_[s]);
    load_windows(drains_[s]);
    admin_open_[s] = static_cast<char>(r.u8());
    drain_open_[s] = static_cast<char>(r.u8());
  }

  link_transitions_.clear();
  const std::uint64_t n_trans = r.u64();
  for (std::uint64_t i = 0; i < n_trans; ++i) {
    const util::Tick tick = r.i64();
    const std::uint64_t n_list = r.u64();
    auto& list = link_transitions_[tick];
    for (std::uint64_t k = 0; k < n_list; ++k) {
      const std::size_t a = static_cast<std::size_t>(r.u64());
      const std::size_t b = static_cast<std::size_t>(r.u64());
      const bool up = r.u8() != 0;
      list.emplace_back(a, b, up);
    }
  }
  severed_.clear();
  const std::uint64_t n_sev = r.u64();
  for (std::uint64_t i = 0; i < n_sev; ++i) {
    const std::size_t a = static_cast<std::size_t>(r.u64());
    const std::size_t b = static_cast<std::size_t>(r.u64());
    severed_.emplace(a, b);
  }
  outages_.clear();
  const std::uint64_t n_out = r.u64();
  for (std::uint64_t i = 0; i < n_out; ++i) {
    const util::Tick tick = r.i64();
    const std::uint64_t n_list = r.u64();
    auto& list = outages_[tick];
    for (std::uint64_t k = 0; k < n_list; ++k) {
      core::ServerOutage o;
      o.site = static_cast<std::size_t>(r.u64());
      o.count = static_cast<int>(r.i64());
      o.repair_tick = r.i64();
      list.push_back(o);
    }
  }
  epoch_bumps_.clear();
  const std::uint64_t n_bumps = r.u64();
  for (std::uint64_t i = 0; i < n_bumps; ++i) {
    const util::Tick tick = r.i64();
    epoch_bumps_[tick] = r.u64();
  }

  rebake_all();
  for (const auto& [a, b] : severed_) {
    graph_.mutable_latency().set_edge_up(a, b, false);
  }
}

}  // namespace vbatt::fault
