#include "vbatt/fault/injector.h"

#include <algorithm>
#include <cmath>

#include "vbatt/util/rng.h"

namespace vbatt::fault {

FaultInjector::FaultInjector(const core::VbGraph& graph,
                             FaultSchedule schedule, std::uint64_t noise_seed,
                             bool check_invariants)
    : graph_{graph},
      schedule_{std::move(schedule)},
      n_ticks_{graph.n_ticks()} {
  schedule_.validate(graph.n_sites(), graph.n_ticks());
  const std::size_t n_sites = graph.n_sites();
  down_.assign(n_sites * n_ticks_, 0);
  degraded_.assign(n_sites * n_ticks_, 0);
  if (check_invariants) checker_ = std::make_unique<InvariantChecker>();

  const auto end_tick = static_cast<util::Tick>(n_ticks_);
  for (std::size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    const util::Tick stop = std::min(e.end, end_tick);
    core::VbSite& site = graph_.mutable_sites()[e.site];
    const auto mask = [&](std::vector<char>& m) {
      for (util::Tick t = e.start; t < stop; ++t) {
        m[e.site * n_ticks_ + static_cast<std::size_t>(t)] = 1;
      }
    };
    switch (e.kind) {
      case FaultKind::site_blackout:
        for (util::Tick t = e.start; t < stop; ++t) {
          site.power_norm[static_cast<std::size_t>(t)] = 0.0;
        }
        mask(down_);
        mask(degraded_);
        break;
      case FaultKind::site_brownout:
        for (util::Tick t = e.start; t < stop; ++t) {
          site.power_norm[static_cast<std::size_t>(t)] *= e.alpha;
        }
        mask(degraded_);
        break;
      case FaultKind::forecast_error: {
        // Corrupt every lead's forecast over the window; actuals untouched.
        // One child stream per event keeps the noise deterministic and
        // independent of event ordering elsewhere in the schedule.
        util::Rng rng{util::seed_for(noise_seed, "forecast-noise", i)};
        for (std::vector<double>& lead : site.forecast_norm) {
          for (util::Tick t = e.start; t < stop; ++t) {
            double& f = lead[static_cast<std::size_t>(t)];
            f = std::clamp(f * (1.0 + e.alpha) + rng.normal(0.0, e.sigma),
                           0.0, 1.0);
          }
        }
        break;
      }
      case FaultKind::link_down:
        link_transitions_[e.start].emplace_back(e.site, e.peer, false);
        ++epoch_bumps_[e.start];
        if (e.end < end_tick) {
          link_transitions_[e.end].emplace_back(e.site, e.peer, true);
          ++epoch_bumps_[e.end];
        }
        break;
      case FaultKind::server_failure:
        outages_[e.start].push_back(
            core::ServerOutage{e.site, e.count, e.end});
        ++epoch_bumps_[e.start];
        if (e.end < end_tick) ++epoch_bumps_[e.end];  // repair lands
        mask(degraded_);
        break;
    }
  }
}

void FaultInjector::begin_tick(util::Tick t) {
  if (const auto bump = epoch_bumps_.find(t); bump != epoch_bumps_.end()) {
    epoch_ += bump->second;
  }
  const auto due = link_transitions_.find(t);
  if (due == link_transitions_.end()) return;
  for (const auto& [a, b, up] : due->second) {
    graph_.mutable_latency().set_edge_up(a, b, up);
  }
}

bool FaultInjector::site_down(std::size_t s, util::Tick t) const {
  if (t < 0 || static_cast<std::size_t>(t) >= n_ticks_) return false;
  const std::size_t at = s * n_ticks_ + static_cast<std::size_t>(t);
  return at < down_.size() && down_[at] != 0;
}

bool FaultInjector::site_degraded(std::size_t s, util::Tick t) const {
  if (t < 0 || static_cast<std::size_t>(t) >= n_ticks_) return false;
  const std::size_t at = s * n_ticks_ + static_cast<std::size_t>(t);
  return at < degraded_.size() && degraded_[at] != 0;
}

std::vector<core::ServerOutage> FaultInjector::server_outages_at(
    util::Tick t) {
  const auto due = outages_.find(t);
  if (due == outages_.end()) return {};
  return due->second;
}

void FaultInjector::on_tick_end(const core::TickSnapshot& snap) {
  if (!checker_) return;
  const std::size_t n_sites = graph_.n_sites();
  std::vector<char> down_now(n_sites, 0);
  for (std::size_t s = 0; s < n_sites; ++s) {
    down_now[s] = site_down(s, snap.t) ? 1 : 0;
  }
  checker_->check(snap, down_now);
}

}  // namespace vbatt::fault
