#include "vbatt/fault/invariants.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace vbatt::fault {

void InvariantChecker::check(const core::TickSnapshot& snap,
                             const std::vector<char>& site_down) {
  const auto fail = [&](const std::string& law) {
    throw std::logic_error{"InvariantChecker: tick " +
                           std::to_string(snap.t) + ": " + law};
  };
  if (snap.available == nullptr || snap.stable_cores == nullptr ||
      snap.degradable_cores == nullptr) {
    fail("missing snapshot arrays");
  }
  const std::size_t n = snap.available->size();
  if (snap.stable_cores->size() != n ||
      snap.degradable_cores->size() != n || site_down.size() != n) {
    fail("snapshot array size mismatch");
  }
  if (snap.displaced_stable_cores < 0) fail("negative displaced total");

  std::int64_t over_budget = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const int stable = (*snap.stable_cores)[s];
    const int degradable = (*snap.degradable_cores)[s];
    const int avail = (*snap.available)[s];
    const std::string at = " at site " + std::to_string(s);
    if (stable < 0) fail("negative stable cores" + at);
    if (degradable < 0) fail("negative degradable cores" + at);
    if (site_down[s] != 0) {
      if (avail > 0) fail("blacked-out site reports available cores" + at);
      if (degradable > 0) {
        fail("active degradable VMs on blacked-out site" + at);
      }
    }
    over_budget += std::max(0, stable + degradable - std::max(avail, 0));
  }
  // Nothing may run on unpowered cores unaccounted: any excess of served
  // cores over the power budget must appear in the displaced total.
  if (over_budget > snap.displaced_stable_cores) {
    fail("served cores exceed available beyond the displaced total (" +
         std::to_string(over_budget) + " > " +
         std::to_string(snap.displaced_stable_cores) + ")");
  }
  ++checked_ticks_;
}

}  // namespace vbatt::fault
