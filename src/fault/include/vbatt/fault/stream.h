// StreamInjector: runtime fault injection for the control-plane service.
//
// FaultInjector (injector.h) bakes a complete FaultSchedule into a copied
// VbGraph at construction — fine for batch runs where the schedule is known
// upfront, useless for a resident service where FaultReport events arrive
// while the clock is running. StreamInjector keeps the same wrapper shape
// (it owns the effective graph and implements core::FaultHooks) but accepts
// events online: each accepted event re-bakes the affected site's power /
// forecast series from pristine baselines, so only *future* ticks ever
// change (inject() rejects events that start at or before the current
// tick). Events delivered before the first tick bake exactly what
// FaultInjector would have baked from the same schedule — the parity test
// (test_fault_stream) pins blackout / brownout / forecast / link / server
// equivalence bit for bit, forecast noise included (same per-event child
// stream, seed_for(noise_seed, "forecast-noise", i)).
//
// On top of scheduled fault kinds the service needs three administrative
// controls with distinct semantics:
//   admin_down / admin_up  — a site declared Dead by the health machine:
//                            power zeroed, site_down + degraded masks set,
//                            topology epoch bumped (emergency eviction).
//   drain / undrain        — operator drain: power zeroed so capacity
//                            enforcement migrates residents out, but the
//                            site is NOT reported down or degraded — a
//                            graceful evacuation, not a fault.
//   set_power/set_forecast — streamed telemetry (PowerReading /
//                            ForecastUpdate events) overriding the
//                            *baseline* series from a tick onward.
//
// save()/restore() serialize baselines plus the accepted-event state (not
// the derived arrays); restore() re-bakes, so a restored injector is
// byte-equivalent to the uninterrupted one.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "vbatt/core/fault_hooks.h"
#include "vbatt/core/vb_graph.h"
#include "vbatt/fault/schedule.h"
#include "vbatt/util/wire.h"

namespace vbatt::fault {

class StreamInjector final : public core::FaultHooks {
 public:
  /// Copy `graph` as both the pristine baseline and the effective graph.
  /// `noise_seed` drives forecast-noise child streams exactly as in
  /// FaultInjector.
  explicit StreamInjector(const core::VbGraph& graph,
                          std::uint64_t noise_seed = 0);

  /// The effective (faulted) graph: run the stepper against *this*.
  const core::VbGraph& graph() const noexcept { return graph_; }

  /// Number of fault events accepted so far (also the next forecast-noise
  /// child-stream index, mirroring FaultInjector's schedule index).
  std::uint64_t accepted_events() const noexcept { return accepted_; }

  /// Accept a fault event. `now` is the last fully stepped tick; the event
  /// must start strictly after it (history is immutable). Throws
  /// std::runtime_error naming the offending field on a malformed event.
  void inject(const FaultEvent& e, util::Tick now);

  /// Health-machine site kill: zero power, set down + degraded masks and
  /// bump the topology epoch from `from` (exclusive end `until`, default
  /// the horizon). admin_up() closes the open window at `from`.
  void admin_down(std::size_t site, util::Tick from);
  void admin_up(std::size_t site, util::Tick from);
  /// True while an admin window on `site` is still open.
  bool admin_is_down(std::size_t site) const;

  /// Operator drain: zero power from `from` (so enforcement migrates
  /// residents away) without marking the site down or degraded.
  void drain(std::size_t site, util::Tick from);
  void undrain(std::size_t site, util::Tick from);
  bool is_draining(std::size_t site) const;

  /// Override the baseline power series of `site` for ticks
  /// [start, start + values.size()); start must be > now.
  void set_power(std::size_t site, util::Tick start,
                 const std::vector<double>& values, util::Tick now);
  /// Same for the forecast series of one lead index.
  void set_forecast(std::size_t site, std::size_t lead, util::Tick start,
                    const std::vector<double>& values, util::Tick now);

  // core::FaultHooks
  void begin_tick(util::Tick t) override;
  std::uint64_t topology_epoch() const override { return epoch_; }
  bool site_down(std::size_t s, util::Tick t) const override;
  bool site_degraded(std::size_t s, util::Tick t) const override;
  std::vector<core::ServerOutage> server_outages_at(util::Tick t) override;
  void on_tick_end(const core::TickSnapshot& snap) override;

  /// Serialize baselines + accepted-event state. Deterministic.
  void save(util::wire::Writer& w) const;
  /// Inverse of save(); must be called on a freshly constructed injector
  /// over the same original graph. Re-bakes every derived series/mask.
  void restore(util::wire::Reader& r);

 private:
  struct Window {
    util::Tick start = 0;
    util::Tick end = 0;  // exclusive
  };
  struct Brownout {
    util::Tick start = 0;
    util::Tick end = 0;
    double alpha = 0.0;
  };
  struct ForecastFault {
    util::Tick start = 0;
    util::Tick end = 0;
    double alpha = 0.0;
    double sigma = 0.0;
    std::uint64_t noise_index = 0;  // child-stream index at acceptance
  };

  void rebake_site(std::size_t s);
  void rebake_masks(std::size_t s);
  void rebake_all();

  core::VbGraph graph_;  // effective copy the simulator reads
  std::uint64_t noise_seed_ = 0;
  std::size_t n_sites_ = 0;
  std::size_t n_ticks_ = 0;

  /// Pristine per-site series, mutated only by set_power/set_forecast.
  std::vector<std::vector<double>> base_power_;
  std::vector<std::vector<std::vector<double>>> base_forecast_;

  // Accepted-event state, in acceptance order per site.
  std::vector<std::vector<Window>> blackouts_;
  std::vector<std::vector<Brownout>> brownouts_;
  std::vector<std::vector<ForecastFault>> forecast_faults_;
  std::vector<std::vector<Window>> outage_windows_;  // degraded-mask only
  std::vector<std::vector<Window>> admin_;  // last may be open (end==horizon)
  std::vector<std::vector<Window>> drains_;
  std::vector<char> admin_open_;
  std::vector<char> drain_open_;

  /// Link transitions due at a tick: (a, b, up); consumed by begin_tick.
  std::map<util::Tick,
           std::vector<std::tuple<std::size_t, std::size_t, bool>>>
      link_transitions_;
  /// Currently severed edges (canonical a < b), for restore.
  std::set<std::pair<std::size_t, std::size_t>> severed_;
  std::map<util::Tick, std::vector<core::ServerOutage>> outages_;
  /// Pending topology-epoch bumps; consumed by begin_tick.
  std::map<util::Tick, std::uint64_t> epoch_bumps_;
  std::uint64_t epoch_ = 0;
  std::uint64_t accepted_ = 0;

  /// Per-site fault masks, tick-indexed (site * n_ticks + t).
  std::vector<char> down_;
  std::vector<char> degraded_;
};

}  // namespace vbatt::fault
