// Debug-mode invariant checking for chaos runs.
//
// The checker is handed the simulator's end-of-tick snapshot plus the
// injector's view of which sites are blacked out, and throws
// std::logic_error naming the violated law. It exists to catch silent
// accounting corruption the moment a fault path breaks it, not ticks later
// when a counter looks odd.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/core/fault_hooks.h"

namespace vbatt::fault {

class InvariantChecker {
 public:
  /// Verify the tick. `site_down` holds, per site, whether a blackout is
  /// active this tick. Laws enforced:
  ///   1. Ledger sanity: per-site stable/degradable core counts are
  ///      non-negative, and the fleet displaced total is non-negative.
  ///   2. Capacity: served cores beyond a site's available budget must be
  ///      covered by the displaced total (nothing runs on unpowered
  ///      cores unaccounted).
  ///   3. Blackout: a blacked-out site has no available cores (the bake
  ///      worked) and no active degradable VMs on it.
  void check(const core::TickSnapshot& snap,
             const std::vector<char>& site_down);

  std::int64_t checked_ticks() const noexcept { return checked_ticks_; }

 private:
  std::int64_t checked_ticks_ = 0;
};

}  // namespace vbatt::fault
