// FaultInjector: turns a FaultSchedule into live faults.
//
// Wrapper-based injection: the injector owns a *copy* of the VbGraph with
// power faults (blackout, brownout) and forecast corruption baked directly
// into the copied series at construction time. Simulators run against the
// copy through the ordinary const VbGraph& path — the hot loops read plain
// arrays exactly as before, and the no-fault path of the simulators stays
// byte-identical because it never sees an injector at all. Only the
// dynamic faults (WAN link flaps, server failures) act at runtime, through
// the core::FaultHooks callbacks.
#pragma once

#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "vbatt/core/fault_hooks.h"
#include "vbatt/core/vb_graph.h"
#include "vbatt/fault/invariants.h"
#include "vbatt/fault/schedule.h"

namespace vbatt::fault {

class FaultInjector final : public core::FaultHooks {
 public:
  /// Bake `schedule` (validated against `graph`) into a private copy of
  /// `graph`. `noise_seed` drives the forecast-noise stream; equal seeds
  /// give identical baked graphs. With `check_invariants`, every on_tick_end
  /// runs the InvariantChecker (throws std::logic_error on violation).
  FaultInjector(const core::VbGraph& graph, FaultSchedule schedule,
                std::uint64_t noise_seed = 0, bool check_invariants = false);

  /// The faulted graph: run the simulation against *this*, not the
  /// original.
  const core::VbGraph& graph() const noexcept { return graph_; }

  const FaultSchedule& schedule() const noexcept { return schedule_; }

  /// Ticks the InvariantChecker has vetted (0 unless enabled).
  std::int64_t checked_ticks() const noexcept {
    return checker_ ? checker_->checked_ticks() : 0;
  }

  // core::FaultHooks
  void begin_tick(util::Tick t) override;
  std::uint64_t topology_epoch() const override { return epoch_; }
  bool site_down(std::size_t s, util::Tick t) const override;
  bool site_degraded(std::size_t s, util::Tick t) const override;
  std::vector<core::ServerOutage> server_outages_at(util::Tick t) override;
  void on_tick_end(const core::TickSnapshot& snap) override;

 private:
  core::VbGraph graph_;  // the faulted copy
  FaultSchedule schedule_;
  std::size_t n_ticks_ = 0;
  /// Per-site fault masks, tick-indexed (site * n_ticks + t).
  std::vector<char> down_;      // blackout active
  std::vector<char> degraded_;  // any site fault active
  /// Link transitions due at a tick: (a, b, up).
  std::map<util::Tick,
           std::vector<std::tuple<std::size_t, std::size_t, bool>>>
      link_transitions_;
  std::map<util::Tick, std::vector<core::ServerOutage>> outages_;
  /// Topology-epoch bumps due at a tick (link transitions plus
  /// server-failure starts and repairs), accumulated into epoch_ by
  /// begin_tick.
  std::map<util::Tick, std::uint64_t> epoch_bumps_;
  std::uint64_t epoch_ = 0;
  std::unique_ptr<InvariantChecker> checker_;
};

}  // namespace vbatt::fault
