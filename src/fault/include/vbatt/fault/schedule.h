// Deterministic, typed fault schedules.
//
// A FaultSchedule is a validated list of timed fault events — the single
// input to FaultInjector. Schedules come from two places: the seeded chaos
// generator (make_chaos_schedule, per-(kind, site) child RNG streams so
// adding a fault kind never perturbs the others) or a CSV on disk
// (load_schedule_csv, trace_io-style validation that names the offending
// row and column). Either way the schedule is plain data: replaying the
// same schedule yields the same faults, bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "vbatt/core/vb_graph.h"
#include "vbatt/util/time.h"

namespace vbatt::fault {

enum class FaultKind {
  /// Site power forced to 0 over [start, end): grid/inverter failure.
  site_blackout,
  /// Site power derated (x alpha in [0, 1)) over [start, end).
  site_brownout,
  /// Forecast corruption over [start, end): every lead's forecast is scaled
  /// by (1 + alpha) and perturbed with N(0, sigma) noise. Actuals are
  /// untouched — the fleet runs on real power but plans on lies.
  forecast_error,
  /// WAN link (site, peer) severed over [start, end); flaps are just short
  /// windows. Only existing links can go down.
  link_down,
  /// `count` servers at `site` fail at `start` and are repaired at `end`.
  server_failure,
};

/// Human-readable kind name (CSV token); inverse of parse in the loader.
const char* to_string(FaultKind kind) noexcept;

struct FaultEvent {
  FaultKind kind = FaultKind::site_blackout;
  util::Tick start = 0;
  /// Exclusive end tick (repair happens at the top of this tick).
  util::Tick end = 0;
  std::size_t site = 0;
  /// link_down only: the other endpoint.
  std::size_t peer = 0;
  /// site_brownout: derating factor in [0, 1). forecast_error: relative
  /// bias (forecast *= 1 + alpha).
  double alpha = 0.0;
  /// forecast_error only: stddev of additive noise on normalized forecasts.
  double sigma = 0.0;
  /// server_failure only: servers taken down.
  int count = 0;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const noexcept { return events.empty(); }

  /// Reject malformed schedules with a std::runtime_error naming the event
  /// index and field: bad site/peer, start >= end, out-of-range alpha /
  /// sigma / count for the kind.
  void validate(std::size_t n_sites, std::size_t n_ticks) const;
};

/// Knobs of the chaos generator. Rates are expected events per site (or
/// per link) per week of simulated time, all scaled by `intensity`;
/// intensity 0 yields the empty schedule.
struct ChaosConfig {
  double intensity = 1.0;
  /// Ticks per day of the driven trace (96 = 15-minute ticks).
  util::Tick ticks_per_day = 96;

  double blackouts_per_site_week = 0.5;
  util::Tick blackout_mean_ticks = 8;

  double brownouts_per_site_week = 1.0;
  util::Tick brownout_mean_ticks = 24;
  double brownout_alpha = 0.5;

  double forecast_errors_per_site_week = 1.0;
  util::Tick forecast_error_mean_ticks = 48;
  double forecast_bias = 0.3;
  double forecast_sigma = 0.1;

  double link_downs_per_link_week = 0.5;
  util::Tick link_down_mean_ticks = 12;

  double server_failures_per_site_week = 1.0;
  util::Tick server_repair_mean_ticks = 96;
  /// Fraction of a site's servers taken down per failure event.
  double server_failure_frac = 0.05;
  /// Cores per server (sizes the server count off capacity_cores).
  int server_cores = 40;
};

/// Draw a schedule for `graph` under `config`, seeded by `seed`. Events
/// are emitted sorted by (start, kind, site) so equal seeds give equal
/// schedules regardless of generation order. The result is validated.
FaultSchedule make_chaos_schedule(const core::VbGraph& graph,
                                  const ChaosConfig& config,
                                  std::uint64_t seed);

/// CSV round-trip: header `kind,start,end,site,peer,alpha,sigma,count`.
void save_schedule_csv(const FaultSchedule& schedule, const std::string& path);

/// Load and validate a schedule CSV. Every rejection (unknown kind,
/// non-numeric cell, missing column, range violation) names the line and
/// column, trace_io-style. Structural validation against a graph happens
/// later via FaultSchedule::validate.
FaultSchedule load_schedule_csv(const std::string& path);

/// Structural limits for strict CSV loading. Operator-facing paths (CLI
/// --chaos-csv, the control-plane service) know the graph they will replay
/// against, so the loader can reject what FaultSchedule::validate would
/// only catch later — but with the line and column of the offending row.
struct ScheduleLoadLimits {
  std::size_t n_sites = 0;
  std::size_t n_ticks = 0;
};

/// Strict variant: everything the plain loader rejects, plus sites/peers
/// >= limits.n_sites, start/end ticks outside [0, n_ticks], and windows of
/// the same kind overlapping on the same site (same endpoint pair for
/// link_down) — an operator schedule with two blackouts covering the same
/// (site, tick) is almost certainly a typo, and silently compounding
/// overlapping brownouts is worse. Errors name line and column; overlap
/// errors also name the line of the earlier window.
FaultSchedule load_schedule_csv(const std::string& path,
                                const ScheduleLoadLimits& limits);

/// Reject out-of-range ChaosConfig fields (negative intensity or rates,
/// non-positive durations, alpha/sigma/fraction outside their domains)
/// with a std::runtime_error naming the offending field. Shared by every
/// surface that accepts operator-supplied chaos knobs (CLI flags, service
/// reconfigure commands) so the message is identical everywhere.
void validate_chaos_config(const ChaosConfig& config);

}  // namespace vbatt::fault
