#include "vbatt/fault/schedule.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "vbatt/util/rng.h"

namespace vbatt::fault {

namespace {

[[noreturn]] void bad_event(std::size_t index, const std::string& what) {
  throw std::runtime_error{"FaultSchedule: event " + std::to_string(index) +
                           ": " + what};
}

/// "load_schedule_csv: <what> at line L, column C".
[[noreturn]] void reject(const std::string& what, std::size_t line_no,
                         int column) {
  throw std::runtime_error{"load_schedule_csv: " + what + " at line " +
                           std::to_string(line_no) + ", column " +
                           std::to_string(column)};
}

double parse_number(const std::string& cell, std::size_t line_no,
                    int column) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(cell, &consumed);
  } catch (const std::exception&) {
    reject("non-numeric value", line_no, column);
  }
  if (consumed == 0 || std::isnan(value)) {
    reject("non-numeric value", line_no, column);
  }
  return value;
}

FaultKind parse_kind(const std::string& cell, std::size_t line_no) {
  for (const FaultKind kind :
       {FaultKind::site_blackout, FaultKind::site_brownout,
        FaultKind::forecast_error, FaultKind::link_down,
        FaultKind::server_failure}) {
    if (cell == to_string(kind)) return kind;
  }
  reject("unknown fault kind '" + cell + "'", line_no, 0);
}

/// Shortest decimal string that parses back to exactly `value` — keeps
/// the CSV round-trip bit-exact for alpha/sigma without fixed precision.
std::string shortest_double(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return std::string{buf, end};
}

/// Sort key making generation order irrelevant to the emitted schedule.
auto event_key(const FaultEvent& e) {
  return std::make_tuple(e.start, static_cast<int>(e.kind), e.site, e.peer,
                         e.end);
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::site_blackout:
      return "site_blackout";
    case FaultKind::site_brownout:
      return "site_brownout";
    case FaultKind::forecast_error:
      return "forecast_error";
    case FaultKind::link_down:
      return "link_down";
    case FaultKind::server_failure:
      return "server_failure";
  }
  return "unknown";
}

void FaultSchedule::validate(std::size_t n_sites, std::size_t n_ticks) const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (e.site >= n_sites) bad_event(i, "site out of range");
    if (e.start < 0 || e.start >= static_cast<util::Tick>(n_ticks)) {
      bad_event(i, "start out of range");
    }
    if (e.end <= e.start) bad_event(i, "end must exceed start");
    switch (e.kind) {
      case FaultKind::site_brownout:
        if (e.alpha < 0.0 || e.alpha >= 1.0) {
          bad_event(i, "brownout alpha out of [0, 1)");
        }
        break;
      case FaultKind::forecast_error:
        if (e.alpha < -1.0) bad_event(i, "forecast bias below -1");
        if (e.sigma < 0.0) bad_event(i, "negative forecast sigma");
        break;
      case FaultKind::link_down:
        if (e.peer >= n_sites) bad_event(i, "peer out of range");
        if (e.peer == e.site) bad_event(i, "link endpoints identical");
        break;
      case FaultKind::server_failure:
        if (e.count <= 0) bad_event(i, "server count must be positive");
        break;
      case FaultKind::site_blackout:
        break;
    }
  }
}

FaultSchedule make_chaos_schedule(const core::VbGraph& graph,
                                  const ChaosConfig& config,
                                  std::uint64_t seed) {
  FaultSchedule schedule;
  if (config.intensity <= 0.0) return schedule;

  const std::size_t n_sites = graph.n_sites();
  const auto n_ticks = static_cast<util::Tick>(graph.n_ticks());
  const double weeks =
      static_cast<double>(n_ticks) /
      static_cast<double>(std::max<util::Tick>(1, config.ticks_per_day) * 7);

  /// Poisson-many windows of exponential duration for one (stream, site).
  const auto windows = [&](std::string_view stream, std::size_t site,
                           double per_week, util::Tick mean_ticks,
                           auto&& emit) {
    util::Rng rng{util::seed_for(seed, stream, site)};
    const std::uint64_t n =
        rng.poisson(per_week * config.intensity * weeks);
    for (std::uint64_t k = 0; k < n; ++k) {
      const auto start =
          static_cast<util::Tick>(rng.below(static_cast<std::uint64_t>(
              std::max<util::Tick>(1, n_ticks))));
      const auto span = std::max<util::Tick>(
          1, static_cast<util::Tick>(std::llround(
                 rng.exponential(static_cast<double>(mean_ticks)))));
      emit(rng, start, std::min(n_ticks, start + span));
    }
  };

  for (std::size_t s = 0; s < n_sites; ++s) {
    windows("chaos-blackout", s, config.blackouts_per_site_week,
            config.blackout_mean_ticks,
            [&](util::Rng&, util::Tick start, util::Tick end) {
              FaultEvent e;
              e.kind = FaultKind::site_blackout;
              e.start = start;
              e.end = end;
              e.site = s;
              schedule.events.push_back(e);
            });
    windows("chaos-brownout", s, config.brownouts_per_site_week,
            config.brownout_mean_ticks,
            [&](util::Rng& rng, util::Tick start, util::Tick end) {
              FaultEvent e;
              e.kind = FaultKind::site_brownout;
              e.start = start;
              e.end = end;
              e.site = s;
              // Jitter around the configured mean, clamped into [0, 0.95].
              e.alpha = std::clamp(
                  rng.normal(config.brownout_alpha, 0.1), 0.0, 0.95);
              schedule.events.push_back(e);
            });
    windows("chaos-forecast", s, config.forecast_errors_per_site_week,
            config.forecast_error_mean_ticks,
            [&](util::Rng& rng, util::Tick start, util::Tick end) {
              FaultEvent e;
              e.kind = FaultKind::forecast_error;
              e.start = start;
              e.end = end;
              e.site = s;
              // Bias direction flips per event: optimistic forecasts hurt
              // differently than pessimistic ones.
              e.alpha = rng.chance(0.5) ? config.forecast_bias
                                        : -config.forecast_bias;
              e.sigma = config.forecast_sigma;
              schedule.events.push_back(e);
            });
    windows("chaos-servers", s, config.server_failures_per_site_week,
            config.server_repair_mean_ticks,
            [&](util::Rng&, util::Tick start, util::Tick end) {
              const int servers = std::max(
                  1, graph.site(s).capacity_cores /
                         std::max(1, config.server_cores));
              FaultEvent e;
              e.kind = FaultKind::server_failure;
              e.start = start;
              e.end = end;
              e.site = s;
              e.count = std::max(
                  1, static_cast<int>(std::llround(
                         servers * config.server_failure_frac)));
              schedule.events.push_back(e);
            });
  }

  // Link flaps: one stream per existing link, indexed by the packed pair
  // (a * n_sites + b) so streams are stable under site reordering of the
  // loop, not of the graph.
  for (std::size_t a = 0; a < n_sites; ++a) {
    for (std::size_t b = a + 1; b < n_sites; ++b) {
      if (!graph.latency().link_exists(a, b)) continue;
      windows("chaos-link", a * n_sites + b, config.link_downs_per_link_week,
              config.link_down_mean_ticks,
              [&](util::Rng&, util::Tick start, util::Tick end) {
                FaultEvent e;
                e.kind = FaultKind::link_down;
                e.start = start;
                e.end = end;
                e.site = a;
                e.peer = b;
                schedule.events.push_back(e);
              });
    }
  }

  std::sort(schedule.events.begin(), schedule.events.end(),
            [](const FaultEvent& lhs, const FaultEvent& rhs) {
              return event_key(lhs) < event_key(rhs);
            });
  schedule.validate(n_sites, graph.n_ticks());
  return schedule;
}

void save_schedule_csv(const FaultSchedule& schedule,
                       const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"save_schedule_csv: cannot open " + path};
  }
  out << "kind,start,end,site,peer,alpha,sigma,count\n";
  for (const FaultEvent& e : schedule.events) {
    out << to_string(e.kind) << ',' << e.start << ',' << e.end << ','
        << e.site << ',' << e.peer << ',' << shortest_double(e.alpha) << ','
        << shortest_double(e.sigma) << ',' << e.count << '\n';
  }
}

namespace {

FaultSchedule load_schedule_csv_impl(const std::string& path,
                                     const ScheduleLoadLimits* limits) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"load_schedule_csv: cannot open " + path};
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error{"load_schedule_csv: empty file " + path};
  }

  /// Accepted windows per (kind, site, peer), with the line that declared
  /// each — overlap rejection names both rows.
  struct SeenWindow {
    util::Tick start;
    util::Tick end;
    std::size_t line_no;
  };
  std::map<std::tuple<int, std::size_t, std::size_t>,
           std::vector<SeenWindow>>
      seen;

  FaultSchedule schedule;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream row{line};
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    if (cells.size() != 8) {
      reject("expected 8 columns, got " + std::to_string(cells.size()),
             line_no, static_cast<int>(cells.size()));
    }
    FaultEvent e;
    e.kind = parse_kind(cells[0], line_no);
    e.start = static_cast<util::Tick>(parse_number(cells[1], line_no, 1));
    e.end = static_cast<util::Tick>(parse_number(cells[2], line_no, 2));
    const double site = parse_number(cells[3], line_no, 3);
    const double peer = parse_number(cells[4], line_no, 4);
    if (site < 0) reject("negative site", line_no, 3);
    if (peer < 0) reject("negative peer", line_no, 4);
    e.site = static_cast<std::size_t>(site);
    e.peer = static_cast<std::size_t>(peer);
    e.alpha = parse_number(cells[5], line_no, 5);
    e.sigma = parse_number(cells[6], line_no, 6);
    e.count = static_cast<int>(parse_number(cells[7], line_no, 7));
    if (e.end <= e.start) reject("end must exceed start", line_no, 2);
    if (e.sigma < 0.0) reject("negative sigma", line_no, 6);

    if (limits != nullptr) {
      if (e.start < 0 ||
          e.start >= static_cast<util::Tick>(limits->n_ticks)) {
        reject("start tick outside [0, " + std::to_string(limits->n_ticks) +
                   ")",
               line_no, 1);
      }
      if (e.end > static_cast<util::Tick>(limits->n_ticks)) {
        reject("end tick past the horizon (" +
                   std::to_string(limits->n_ticks) + ")",
               line_no, 2);
      }
      if (e.site >= limits->n_sites) {
        reject("site outside [0, " + std::to_string(limits->n_sites) + ")",
               line_no, 3);
      }
      if (e.kind == FaultKind::link_down && e.peer >= limits->n_sites) {
        reject("peer outside [0, " + std::to_string(limits->n_sites) + ")",
               line_no, 4);
      }
      // Overlap check within the same (kind, site[, peer]) lane. Links are
      // undirected: canonicalize the endpoint pair.
      std::size_t a = e.site;
      std::size_t b = e.kind == FaultKind::link_down ? e.peer : 0;
      if (a > b && e.kind == FaultKind::link_down) std::swap(a, b);
      const auto key = std::make_tuple(static_cast<int>(e.kind), a, b);
      for (const SeenWindow& w : seen[key]) {
        if (e.start < w.end && w.start < e.end) {
          reject("window [" + std::to_string(e.start) + ", " +
                     std::to_string(e.end) + ") overlaps the " +
                     std::string{to_string(e.kind)} + " window from line " +
                     std::to_string(w.line_no) + " on the same site",
                 line_no, 1);
        }
      }
      seen[key].push_back({e.start, e.end, line_no});
    }
    schedule.events.push_back(e);
  }
  return schedule;
}

}  // namespace

FaultSchedule load_schedule_csv(const std::string& path) {
  return load_schedule_csv_impl(path, nullptr);
}

FaultSchedule load_schedule_csv(const std::string& path,
                                const ScheduleLoadLimits& limits) {
  return load_schedule_csv_impl(path, &limits);
}

void validate_chaos_config(const ChaosConfig& config) {
  const auto bad = [](const std::string& field, const std::string& why) {
    throw std::runtime_error{"ChaosConfig: field '" + field + "' " + why};
  };
  if (config.intensity < 0.0) bad("intensity", "must not be negative");
  if (config.ticks_per_day <= 0) bad("ticks_per_day", "must be positive");
  if (config.blackouts_per_site_week < 0.0) {
    bad("blackouts_per_site_week", "must not be negative");
  }
  if (config.blackout_mean_ticks <= 0) {
    bad("blackout_mean_ticks", "must be positive");
  }
  if (config.brownouts_per_site_week < 0.0) {
    bad("brownouts_per_site_week", "must not be negative");
  }
  if (config.brownout_mean_ticks <= 0) {
    bad("brownout_mean_ticks", "must be positive");
  }
  if (config.brownout_alpha < 0.0 || config.brownout_alpha >= 1.0) {
    bad("brownout_alpha", "must lie in [0, 1)");
  }
  if (config.forecast_errors_per_site_week < 0.0) {
    bad("forecast_errors_per_site_week", "must not be negative");
  }
  if (config.forecast_error_mean_ticks <= 0) {
    bad("forecast_error_mean_ticks", "must be positive");
  }
  if (config.forecast_bias < -1.0) {
    bad("forecast_bias", "must not fall below -1");
  }
  if (config.forecast_sigma < 0.0) {
    bad("forecast_sigma", "must not be negative");
  }
  if (config.link_downs_per_link_week < 0.0) {
    bad("link_downs_per_link_week", "must not be negative");
  }
  if (config.link_down_mean_ticks <= 0) {
    bad("link_down_mean_ticks", "must be positive");
  }
  if (config.server_failures_per_site_week < 0.0) {
    bad("server_failures_per_site_week", "must not be negative");
  }
  if (config.server_repair_mean_ticks <= 0) {
    bad("server_repair_mean_ticks", "must be positive");
  }
  if (config.server_failure_frac <= 0.0 || config.server_failure_frac > 1.0) {
    bad("server_failure_frac", "must lie in (0, 1]");
  }
  if (config.server_cores <= 0) bad("server_cores", "must be positive");
}

}  // namespace vbatt::fault
