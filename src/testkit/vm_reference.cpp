#include "vbatt/testkit/vm_reference.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace vbatt::testkit {

namespace {

using namespace vbatt;

// The pre-index dcsim::Site: flat server array, linear-scan best-fit
// placement, shrink_to that rebuilds and sorts a by-server table on every
// call.

struct RefServer {
  int free_cores = 0;
  double free_memory_gb = 0.0;
  int vm_count = 0;
};

class RefSite {
 public:
  RefSite(int n_servers, const dcsim::ServerSpec& server) {
    servers_.assign(static_cast<std::size_t>(n_servers),
                    RefServer{server.cores, server.memory_gb, 0});
  }

  int allocated_cores() const { return allocated_cores_; }
  const std::vector<RefServer>& servers() const { return servers_; }

  bool place(const dcsim::VmInstance& vm) {
    std::optional<int> best;
    int best_free = 0;
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      const RefServer& s = servers_[i];
      if (s.free_cores < vm.shape.cores ||
          s.free_memory_gb < vm.shape.memory_gb) {
        continue;
      }
      if (!best || s.free_cores < best_free) {
        best = static_cast<int>(i);
        best_free = s.free_cores;
      }
    }
    if (!best) return false;
    RefServer& s = servers_[static_cast<std::size_t>(*best)];
    s.free_cores -= vm.shape.cores;
    s.free_memory_gb -= vm.shape.memory_gb;
    ++s.vm_count;
    allocated_cores_ += vm.shape.cores;
    dcsim::VmInstance placed = vm;
    placed.server = *best;
    vms_.emplace(vm.vm_id, placed);
    return true;
  }

  std::optional<dcsim::VmInstance> remove(std::int64_t vm_id) {
    const auto it = vms_.find(vm_id);
    if (it == vms_.end()) return std::nullopt;
    const dcsim::VmInstance vm = it->second;
    detach(vm);
    vms_.erase(it);
    return vm;
  }

  std::vector<dcsim::VmInstance> shrink_to(int available_cores) {
    std::vector<dcsim::VmInstance> evicted;
    if (allocated_cores_ <= available_cores) return evicted;
    std::vector<std::vector<const dcsim::VmInstance*>> by_server(
        servers_.size());
    for (const auto& [id, vm] : vms_) {
      by_server[static_cast<std::size_t>(vm.server)].push_back(&vm);
    }
    for (auto& list : by_server) {
      std::sort(list.begin(), list.end(),
                [](const dcsim::VmInstance* a, const dcsim::VmInstance* b) {
                  if (a->vm_class != b->vm_class) {
                    return a->vm_class == workload::VmClass::degradable;
                  }
                  return a->vm_id < b->vm_id;
                });
    }
    const int n = static_cast<int>(servers_.size());
    std::vector<std::int64_t> victim_ids;
    for (int step = 0; step < n && allocated_cores_ > available_cores;
         ++step) {
      const auto server =
          static_cast<std::size_t>((eviction_cursor_ + step) % n);
      for (const dcsim::VmInstance* vm : by_server[server]) {
        if (allocated_cores_ <= available_cores) break;
        victim_ids.push_back(vm->vm_id);
        evicted.push_back(*vm);
        detach(*vm);
      }
      by_server[server].clear();
    }
    eviction_cursor_ = (eviction_cursor_ + 1) % n;
    for (const std::int64_t id : victim_ids) vms_.erase(id);
    return evicted;
  }

 private:
  void detach(const dcsim::VmInstance& vm) {
    RefServer& s = servers_[static_cast<std::size_t>(vm.server)];
    s.free_cores += vm.shape.cores;
    s.free_memory_gb += vm.shape.memory_gb;
    --s.vm_count;
    allocated_cores_ -= vm.shape.cores;
  }

  std::vector<RefServer> servers_;
  std::unordered_map<std::int64_t, dcsim::VmInstance> vms_;
  int allocated_cores_ = 0;
  int eviction_cursor_ = 0;
};

struct RefTrackedApp {
  workload::Application app;
  util::Tick end_tick = 0;
  std::size_t home = 0;
  std::vector<std::size_t> allowed;
  std::vector<std::int64_t> stable_ids;
  /// Resident degradable VMs only; paused ones are counted, not listed.
  std::vector<std::int64_t> degradable_ids;
  int paused_degradable = 0;
};

struct RefDisplacedVm {
  dcsim::VmInstance vm;
  std::size_t source = 0;
};

void erase_id(std::vector<std::int64_t>& ids, std::int64_t id) {
  const auto pos = std::find(ids.begin(), ids.end(), id);
  if (pos != ids.end()) ids.erase(pos);
}

}  // namespace

core::VmLevelResult reference_vm_run(
    const core::VbGraph& graph,
    const std::vector<workload::Application>& apps, core::Scheduler& scheduler,
    const core::VmLevelConfig& config) {
  const std::size_t n_sites = graph.n_sites();
  const std::size_t n_ticks = graph.n_ticks();
  core::VmLevelResult result{n_sites, n_ticks};

  std::vector<RefSite> sites;
  sites.reserve(n_sites);
  for (std::size_t s = 0; s < n_sites; ++s) {
    sites.emplace_back(
        std::max(1, graph.site(s).capacity_cores / config.server.cores),
        config.server);
  }

  std::map<std::int64_t, RefTrackedApp> live;
  std::map<std::int64_t, std::vector<core::Move>> pending_moves;
  std::deque<RefDisplacedVm> displaced;
  std::int64_t next_vm_id = 0;
  std::size_t next_app = 0;

  core::FleetState state;
  state.graph = &graph;
  state.stable_cores.assign(n_sites, 0);
  state.degradable_cores.assign(n_sites, 0);

  std::unordered_map<std::int64_t, std::size_t> vm_site;

  const auto place_vm = [&](dcsim::VmInstance vm, std::size_t s) -> bool {
    if (!sites[s].place(vm)) return false;
    if (vm.vm_class == workload::VmClass::stable) {
      state.stable_cores[s] += vm.shape.cores;
    } else {
      state.degradable_cores[s] += vm.shape.cores;
    }
    vm_site[vm.vm_id] = s;
    return true;
  };
  const auto remove_vm =
      [&](std::int64_t vm_id,
          std::size_t s) -> std::optional<dcsim::VmInstance> {
    const auto removed = sites[s].remove(vm_id);
    if (removed) {
      if (removed->vm_class == workload::VmClass::stable) {
        state.stable_cores[s] -= removed->shape.cores;
      } else {
        state.degradable_cores[s] -= removed->shape.cores;
      }
      vm_site.erase(vm_id);
    }
    return removed;
  };

  const double hours_per_tick = graph.axis().minutes_per_tick() / 60.0;
  const util::Tick replan_period = scheduler.replan_period_ticks();

  for (std::size_t i = 0; i < n_ticks; ++i) {
    const auto t = static_cast<util::Tick>(i);
    state.now = t;

    // 1. App departures — full sweep of the live map.
    for (auto it = live.begin(); it != live.end();) {
      RefTrackedApp& app = it->second;
      if (app.end_tick >= 0 && app.end_tick <= t) {
        const auto remove_resident = [&](std::int64_t id) {
          const auto at = vm_site.find(id);
          if (at != vm_site.end()) remove_vm(id, at->second);
        };
        for (const std::int64_t id : app.stable_ids) remove_resident(id);
        for (const std::int64_t id : app.degradable_ids) remove_resident(id);
        pending_moves.erase(it->first);
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    displaced.erase(
        std::remove_if(displaced.begin(), displaced.end(),
                       [&](const RefDisplacedVm& d) {
                         return !live.contains(d.vm.app_id);
                       }),
        displaced.end());

    // 2. Replanning.
    if (replan_period > 0 && t > 0 && t % replan_period == 0) {
      state.apps.clear();
      for (const auto& [id, app] : live) {
        core::LiveApp summary;
        summary.app = app.app;
        summary.end_tick = app.end_tick;
        summary.site = app.home;
        summary.allowed = app.allowed;
        summary.active_degradable =
            static_cast<int>(app.degradable_ids.size());
        state.apps.emplace(id, std::move(summary));
      }
      pending_moves.clear();
      for (core::Move& move : scheduler.replan(state)) {
        pending_moves[move.app_id].push_back(move);
      }
    }

    // 3. Arrivals. A degradable VM that finds no server starts paused: it
    //    is counted, and materializes with a fresh vm_id on resume.
    while (next_app < apps.size() && apps[next_app].arrival <= t) {
      const workload::Application& app = apps[next_app];
      const core::Scheduler::Placement placement = scheduler.place(app, state);
      RefTrackedApp tracked;
      tracked.app = app;
      tracked.end_tick = app.lifetime_ticks < 0 ? -1 : t + app.lifetime_ticks;
      tracked.home = placement.site;
      tracked.allowed = placement.allowed;
      const util::Tick vm_end = tracked.end_tick;
      for (int v = 0; v < app.n_stable + app.n_degradable; ++v) {
        dcsim::VmInstance vm;
        vm.vm_id = next_vm_id++;
        vm.app_id = app.app_id;
        vm.shape = app.shape;
        vm.vm_class = v < app.n_stable ? workload::VmClass::stable
                                       : workload::VmClass::degradable;
        vm.end_tick = vm_end;
        if (place_vm(vm, placement.site)) {
          (vm.vm_class == workload::VmClass::stable ? tracked.stable_ids
                                                    : tracked.degradable_ids)
              .push_back(vm.vm_id);
        } else if (vm.vm_class == workload::VmClass::stable) {
          ++result.fragmentation_failures;
          displaced.push_back(RefDisplacedVm{vm, placement.site});
          tracked.stable_ids.push_back(vm.vm_id);
        } else {
          ++tracked.paused_degradable;
        }
      }
      if (!placement.scheduled_moves.empty()) {
        pending_moves[app.app_id] = placement.scheduled_moves;
      }
      ++result.base.apps_placed;
      live.emplace(app.app_id, std::move(tracked));
      ++next_app;
    }

    // 4. Execute due proactive moves — scan of every pending entry.
    for (auto& [app_id, moves] : pending_moves) {
      const auto live_it = live.find(app_id);
      if (live_it == live.end()) continue;
      RefTrackedApp& app = live_it->second;
      for (const core::Move& move : moves) {
        if (move.at_tick != t || move.to_site == app.home) continue;
        const std::size_t from = app.home;
        app.home = move.to_site;
        bool moved_any = false;
        for (const std::int64_t id : app.stable_ids) {
          const auto vm = remove_vm(id, from);
          if (!vm) continue;
          if (place_vm(*vm, move.to_site)) {
            const double gb = vm->shape.memory_gb;
            result.base.ledger.record_out(from, t, gb);
            result.base.ledger.record_in(move.to_site, t, gb);
            result.base.moved_gb[i] += gb;
            ++result.vm_migrations;
            moved_any = true;
          } else {
            ++result.fragmentation_failures;
            displaced.push_back(RefDisplacedVm{*vm, from});
          }
        }
        std::vector<std::int64_t> kept;
        kept.reserve(app.degradable_ids.size());
        for (const std::int64_t id : app.degradable_ids) {
          const auto vm = remove_vm(id, from);
          if (!vm) {
            kept.push_back(id);
            continue;
          }
          if (place_vm(*vm, move.to_site)) {
            kept.push_back(id);
          } else {
            ++app.paused_degradable;
          }
        }
        app.degradable_ids = std::move(kept);
        if (moved_any) ++result.base.planned_migrations;
      }
    }

    // 5. Power enforcement, serial over sites.
    for (std::size_t s = 0; s < n_sites; ++s) {
      const int avail = graph.available_cores(s, t);
      const std::vector<dcsim::VmInstance> evicted = sites[s].shrink_to(avail);
      for (const dcsim::VmInstance& vm : evicted) {
        vm_site.erase(vm.vm_id);
        if (vm.vm_class == workload::VmClass::stable) {
          state.stable_cores[s] -= vm.shape.cores;
          displaced.push_back(RefDisplacedVm{vm, s});
        } else {
          state.degradable_cores[s] -= vm.shape.cores;
          const auto it = live.find(vm.app_id);
          if (it != live.end()) {
            ++it->second.paused_degradable;
            erase_id(it->second.degradable_ids, vm.vm_id);
          }
        }
      }
    }

    // 6. Re-home displaced stable VMs.
    for (std::size_t d = displaced.size(); d-- > 0;) {
      RefDisplacedVm entry = displaced.front();
      displaced.pop_front();
      const auto it = live.find(entry.vm.app_id);
      if (it == live.end()) continue;
      bool placed = false;
      for (const std::size_t cand : it->second.allowed) {
        if (graph.available_cores(cand, t) - sites[cand].allocated_cores() <
            entry.vm.shape.cores) {
          continue;
        }
        if (place_vm(entry.vm, cand)) {
          const double gb = entry.vm.shape.memory_gb;
          if (cand != entry.source) {
            result.base.ledger.record_out(entry.source, t, gb);
            result.base.ledger.record_in(cand, t, gb);
            result.base.moved_gb[i] += gb;
            ++result.vm_migrations;
            ++result.base.forced_migrations;
          }
          placed = true;
          break;
        }
      }
      if (!placed) {
        result.base.displaced_stable_core_ticks += entry.vm.shape.cores;
        result.base.displaced_by_app[entry.vm.app_id] +=
            entry.vm.shape.cores;
        result.base.displaced_stable_cores_per_tick[i] +=
            entry.vm.shape.cores;
        displaced.push_back(entry);
      }
    }

    // 7. Resume paused degradable VMs — full sweep of the live map. The
    //    degradable_ids list holds exactly the resident VMs, so its size
    //    is the active count.
    for (auto& [id, app] : live) {
      while (app.paused_degradable > 0) {
        const int headroom = graph.available_cores(app.home, t) -
                             sites[app.home].allocated_cores();
        if (headroom < app.app.shape.cores) break;
        dcsim::VmInstance vm;
        vm.vm_id = next_vm_id++;
        vm.app_id = id;
        vm.shape = app.app.shape;
        vm.vm_class = workload::VmClass::degradable;
        vm.end_tick = app.end_tick;
        if (!place_vm(vm, app.home)) break;
        app.degradable_ids.push_back(vm.vm_id);
        --app.paused_degradable;
      }
      result.base.paused_degradable_vm_ticks += app.paused_degradable;
      result.base.degradable_active_vm_ticks +=
          static_cast<std::int64_t>(app.degradable_ids.size());
    }

    // 8. Energy — per-server scan of every site, every tick.
    for (std::size_t s = 0; s < n_sites; ++s) {
      int powered = 0;
      int active_cores = 0;
      for (const RefServer& server : sites[s].servers()) {
        if (server.vm_count > 0) {
          ++powered;
          active_cores += config.server.cores - server.free_cores;
        }
      }
      result.powered_server_ticks += powered;
      const double mwh = (powered * config.power.server_idle_watts +
                          active_cores * config.power.watts_per_active_core) *
                         hours_per_tick / 1e6;
      result.base.energy_mwh += mwh;
      result.base.energy_mwh_per_tick[i] += mwh;
    }
  }
  result.base.fallback_activations = scheduler.fallback_count();
  return result;
}

std::string diff_vm_results(const core::VmLevelResult& a,
                            const core::VmLevelResult& b,
                            std::size_t n_sites) {
  std::ostringstream out;
  const auto mismatch = [&](const char* field, auto lhs, auto rhs) {
    out << field << ": " << lhs << " != " << rhs;
    return out.str();
  };
  if (a.vm_migrations != b.vm_migrations) {
    return mismatch("vm_migrations", a.vm_migrations, b.vm_migrations);
  }
  if (a.fragmentation_failures != b.fragmentation_failures) {
    return mismatch("fragmentation_failures", a.fragmentation_failures,
                    b.fragmentation_failures);
  }
  if (a.powered_server_ticks != b.powered_server_ticks) {
    return mismatch("powered_server_ticks", a.powered_server_ticks,
                    b.powered_server_ticks);
  }
  if (a.base.apps_placed != b.base.apps_placed) {
    return mismatch("apps_placed", a.base.apps_placed, b.base.apps_placed);
  }
  if (a.base.planned_migrations != b.base.planned_migrations) {
    return mismatch("planned_migrations", a.base.planned_migrations,
                    b.base.planned_migrations);
  }
  if (a.base.forced_migrations != b.base.forced_migrations) {
    return mismatch("forced_migrations", a.base.forced_migrations,
                    b.base.forced_migrations);
  }
  if (a.base.displaced_stable_core_ticks !=
      b.base.displaced_stable_core_ticks) {
    return mismatch("displaced_stable_core_ticks",
                    a.base.displaced_stable_core_ticks,
                    b.base.displaced_stable_core_ticks);
  }
  if (a.base.paused_degradable_vm_ticks !=
      b.base.paused_degradable_vm_ticks) {
    return mismatch("paused_degradable_vm_ticks",
                    a.base.paused_degradable_vm_ticks,
                    b.base.paused_degradable_vm_ticks);
  }
  if (a.base.degradable_active_vm_ticks !=
      b.base.degradable_active_vm_ticks) {
    return mismatch("degradable_active_vm_ticks",
                    a.base.degradable_active_vm_ticks,
                    b.base.degradable_active_vm_ticks);
  }
  if (a.base.energy_mwh != b.base.energy_mwh) {  // bit-equal, no tolerance
    return mismatch("energy_mwh", a.base.energy_mwh, b.base.energy_mwh);
  }
  if (a.base.moved_gb != b.base.moved_gb) return "moved_gb series differ";
  if (a.base.energy_mwh_per_tick != b.base.energy_mwh_per_tick) {
    return "energy_mwh_per_tick series differ";
  }
  if (a.base.displaced_by_app != b.base.displaced_by_app) {
    return "displaced_by_app maps differ";
  }
  if (a.base.displaced_stable_cores_per_tick !=
      b.base.displaced_stable_cores_per_tick) {
    return "displaced_stable_cores_per_tick series differ";
  }
  for (std::size_t s = 0; s < n_sites; ++s) {
    if (a.base.ledger.out_series(s) != b.base.ledger.out_series(s) ||
        a.base.ledger.in_series(s) != b.base.ledger.in_series(s)) {
      return "ledger series differ at site " + std::to_string(s);
    }
  }
  if (a.base.batch != b.base.batch) return "batch overlay stats differ";
  if (a.base.cost_usd != b.base.cost_usd) {  // bit-equal, no tolerance
    return mismatch("cost_usd", a.base.cost_usd, b.base.cost_usd);
  }
  if (a.base.carbon_kg != b.base.carbon_kg) {
    return mismatch("carbon_kg", a.base.carbon_kg, b.base.carbon_kg);
  }
  if (a.base.cost_usd_per_tick != b.base.cost_usd_per_tick) {
    return "cost_usd_per_tick series differ";
  }
  if (a.base.carbon_kg_per_tick != b.base.carbon_kg_per_tick) {
    return "carbon_kg_per_tick series differ";
  }
  return {};
}

}  // namespace vbatt::testkit
