// Frozen seed VM-level engine — the differential oracle for
// core::run_vm_level_simulation.
//
// This is the pre-index engine (linear-scan best-fit placement,
// rebuild-and-sort shrink, full live-map sweeps, per-server energy scan)
// that used to live inside bench_scale_dcsim; it moved here so the fuzz
// properties and the bench share one oracle. It intentionally stays
// O(n_servers)-per-operation — it is an executable specification, not a
// fast engine — and models best-fit placement only (the VmLevelConfig
// default and the only policy it ever supported).
#pragma once

#include <string>
#include <vector>

#include "vbatt/core/vm_level_sim.h"
#include "vbatt/workload/app.h"

namespace vbatt::testkit {

/// Run the frozen seed engine. Must produce results field-for-field
/// identical to core::run_vm_level_simulation on the same inputs (at any
/// thread count) — that identity is the differential property.
core::VmLevelResult reference_vm_run(
    const core::VbGraph& graph,
    const std::vector<workload::Application>& apps, core::Scheduler& scheduler,
    const core::VmLevelConfig& config = {});

/// Field-for-field comparison of two VM-level results, including the
/// energy series (bit-equal, no tolerance), displaced/ledger series, and
/// per-app displacement. Returns "" when identical, else a description
/// naming the first differing field.
std::string diff_vm_results(const core::VmLevelResult& a,
                            const core::VmLevelResult& b,
                            std::size_t n_sites);

}  // namespace vbatt::testkit
