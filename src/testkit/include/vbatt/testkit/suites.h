// The built-in property registry.
//
// Five suites, each an oracle inventory entry (docs/TESTING.md):
//   sim     conservation laws on VmLevelResult, thread-count invariance,
//           empty-chaos identity, and the event-driven engine vs the
//           frozen seed engine (vm_reference.h)
//   dcsim   indexed Site::choose_* vs the retained linear scans
//           (scan_reference.h) on random reachable site states
//   solver  pinned engine vs frozen seed solver (bitwise), revised engine
//           vs seed (objective + feasibility audit), MIP dominance over
//           sampled feasible points, solve_lexicographic in-place restore
//   fault   schedule CSV round-trip + malformed-CSV diagnostics, chaos
//           generator determinism, InvariantChecker-armed chaos runs
//   energy  trace/forecast range invariants, stable-share superadditivity
//           under aggregation
#pragma once

#include <vector>

#include "vbatt/testkit/property.h"

namespace vbatt::testkit {

/// All built-in properties, in stable registration order.
std::vector<Property> all_properties();

}  // namespace vbatt::testkit
