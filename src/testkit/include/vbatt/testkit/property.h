// Property combinators: generate → eval → (on failure) shrink.
//
// A Property owns two functions. `generate(Rng&)` draws a random Spec —
// and only a Spec; all heavyweight construction happens inside `eval`,
// which re-derives everything from the Spec so that replay and shrinking
// are exact. `eval(Spec)` returns ok or a violation message. The shrinker
// never needs property-specific code: it edits the integer keys listed in
// `shrink_keys` (halve toward the floor, then decrement) and keeps any
// edit under which eval still fails.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "vbatt/testkit/spec.h"
#include "vbatt/util/rng.h"

namespace vbatt::testkit {

struct CaseResult {
  bool ok = true;
  std::string message;  // violation description when !ok

  static CaseResult pass() { return {}; }
  static CaseResult fail(std::string msg) { return {false, std::move(msg)}; }
};

/// Integer spec key the shrinker may reduce, and the smallest value that
/// still makes sense for it (e.g. sites can't shrink below 1).
struct ShrinkKey {
  std::string key;
  std::int64_t floor = 0;
};

struct Property {
  std::string suite;  // e.g. "dcsim"
  std::string name;   // e.g. "placement_diff"
  std::function<Spec(util::Rng&)> generate;
  std::function<CaseResult(const Spec&)> eval;
  std::vector<ShrinkKey> shrink_keys;

  std::string full_name() const { return suite + "." + name; }
};

struct Failure {
  std::string property;
  std::uint64_t case_index = 0;
  Spec original;
  Spec minimized;
  std::string message;       // eval message for the *minimized* spec
  int shrink_steps = 0;      // accepted shrink edits
};

struct PropertyReport {
  std::string property;
  std::uint64_t cases_run = 0;
  std::vector<Failure> failures;
  bool ok() const { return failures.empty(); }
};

struct CheckOptions {
  std::uint64_t seed = 1;
  std::uint64_t cases = 100;
  bool shrink = true;
  std::uint64_t max_failures = 1;  // stop the property after this many
};

/// Run `opts.cases` cases. Case i draws from
/// Rng(seed_for(opts.seed, property.full_name(), i)), so case i is
/// independent of every other case and of every other property.
PropertyReport check(const Property& property, const CheckOptions& opts);

/// Greedily minimize `spec` while `eval` keeps failing. Returns the
/// minimized spec and the number of accepted edits.
std::pair<Spec, int> shrink(const Property& property, Spec spec);

/// Re-evaluate a previously printed spec. The property is looked up in
/// `registry` via the spec's `prop` key. Throws std::invalid_argument on
/// an unknown property name.
CaseResult replay(const std::vector<Property>& registry, const Spec& spec);

}  // namespace vbatt::testkit
