// Compact replayable generator specs.
//
// Every fuzz case is described by a Spec: an ordered list of `key=value`
// pairs joined by ';' (e.g. "prop=dcsim.placement_diff;seed=77;servers=9;
// ops=40"). The generators derive *all* randomness from the spec through
// util::seed_for child streams, so a spec is a complete, portable repro:
// `vbatt_fuzz --replay=<spec>` re-runs the exact case, and the shrinker
// minimizes failing cases by editing spec values, never by replaying RNG
// tapes. Values are integers or plain tokens — integers so the shrinker
// can halve them, tokens for categorical choices (trace=square).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vbatt::testkit {

class Spec {
 public:
  Spec() = default;

  /// Parse "k1=v1;k2=v2". Throws std::invalid_argument naming the bad pair
  /// on malformed input (empty key, missing '=', duplicate key, characters
  /// outside [A-Za-z0-9_.+-]).
  static Spec parse(std::string_view text);

  /// Canonical form: pairs in insertion order, `key=value` joined by ';'.
  /// parse(to_string()) round-trips exactly.
  std::string to_string() const;

  bool has(std::string_view key) const;

  /// Integer value of `key`, or `fallback` when absent. Throws on a
  /// non-integer value (specs are typed by convention, not by schema).
  std::int64_t get(std::string_view key, std::int64_t fallback) const;

  /// Token value of `key`, or `fallback` when absent.
  std::string get(std::string_view key, const std::string& fallback) const;

  /// Set (insert or overwrite, keeping the original position).
  void set(std::string_view key, std::int64_t value);
  void set(std::string_view key, std::string value);

  /// Seed for the named child stream: seed_for(get("seed"), name, index).
  /// Keeps every generated component on its own stream so shrinking one
  /// spec key never perturbs the others.
  std::uint64_t child_seed(std::string_view name, std::uint64_t index = 0) const;

  const std::vector<std::pair<std::string, std::string>>& pairs() const noexcept {
    return pairs_;
  }

  friend bool operator==(const Spec&, const Spec&) = default;

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
};

}  // namespace vbatt::testkit
