// Seeded builders for every fuzzable input in the system.
//
// Each builder is a pure function of a Spec: the spec's integer keys set
// the sizes/knobs and its `seed` key roots the util::Rng child streams, so
// the same spec always produces the same fleet/workload/schedule/model on
// every platform. The matching `gen_*_keys` helpers draw a random spec; a
// property composes them, and the shrinker then edits the keys directly.
//
// Spec key glossary (all integers unless noted):
//   graph   sites (total), wind (wind sites among them), days, peak (MW),
//           region (km), oracle (0/1), trace (token: model|square|cliff|
//           calm), amp (power-drop amplitude, percent of peak), period
//           (square-wave half-period, ticks)
//   apps    aph100 (apps per hour x100), maxvms, deg100 (degradable
//           fraction x100), life (median lifetime, hours)
//   faults  events (event count; event i draws from child stream
//           ("fault", i), so shrinking `events` keeps a prefix)
//   model   vars, rows, ints (integer variables among vars)
//   batch   jph100 / tph100 (deadline-job / harvest-task arrivals per hour
//           x100), bcores (max gang width), brun (max run ticks),
//           bslack100 (max deadline slack x100), blat (max resume latency)
//   econ    pbase/pswing/pspread (price $/MWh), cbase/cswing/cspread
//           (carbon gCO2/kWh)
#pragma once

#include <vector>

#include "vbatt/core/vb_graph.h"
#include "vbatt/energy/signal.h"
#include "vbatt/fault/schedule.h"
#include "vbatt/solver/model.h"
#include "vbatt/testkit/spec.h"
#include "vbatt/util/rng.h"
#include "vbatt/workload/app.h"
#include "vbatt/workload/batch.h"

namespace vbatt::testkit {

/// Build the VB graph a spec describes. trace=model runs the full
/// solar/wind generator; square/cliff/calm build adversarial synthetic
/// traces (square wave between 1 and 1-amp%, one cliff drop, or a flat
/// line) that stress exactly the power-dip paths directed tests
/// under-sample.
core::VbGraph make_graph(const Spec& spec);

/// Application arrival trace sized to the spec'd graph.
std::vector<workload::Application> make_apps(const Spec& spec,
                                             const core::VbGraph& graph);

struct Scenario {
  core::VbGraph graph;
  std::vector<workload::Application> apps;
};

/// make_graph + make_apps in one call.
Scenario make_scenario(const Spec& spec);

/// Random fault events (`events` of them; not tied to any graph — sites
/// and ticks are drawn inside generous fixed ranges). Used by the CSV
/// round-trip properties, which need arbitrary well-formed events rather
/// than graph-consistent ones.
fault::FaultSchedule make_fault_events(const Spec& spec);

/// Random bounded LP/MIP: `vars` variables (first `ints` integral, all
/// with finite upper bounds so no run is unbounded), `rows` constraints of
/// mixed sense. Infeasible draws are intentional — the engines must agree
/// on the status, too.
solver::Model make_model(const Spec& spec);

/// Deadline-job + harvest-task overlay workload over `n_ticks` (child
/// stream "batch"). jph100=0 and tph100=0 disable a class each; both zero
/// yields an empty workload.
workload::BatchWorkload make_batch(const Spec& spec, const util::TimeAxis& axis,
                                   std::size_t n_ticks);

/// Per-site day-ahead electricity price series (child stream "price").
energy::SiteSeries make_price_series(const Spec& spec, std::size_t n_sites,
                                     std::size_t n_ticks);

/// Per-site grid carbon-intensity series (child stream "carbon").
energy::SiteSeries make_carbon_series(const Spec& spec, std::size_t n_sites,
                                      std::size_t n_ticks);

// Spec drawers: append this component's keys to `spec` using `rng`.
void gen_graph_keys(Spec& spec, util::Rng& rng);
void gen_app_keys(Spec& spec, util::Rng& rng);
void gen_batch_keys(Spec& spec, util::Rng& rng);
void gen_econ_keys(Spec& spec, util::Rng& rng);

}  // namespace vbatt::testkit
