#include "vbatt/testkit/suites.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "vbatt/core/fleet_sim.h"
#include "vbatt/core/mip_scheduler.h"
#include "vbatt/core/vm_level_sim.h"
#include "vbatt/dcsim/scan_reference.h"
#include "vbatt/dcsim/site.h"
#include "vbatt/energy/aggregate.h"
#include "vbatt/energy/site.h"
#include "vbatt/core/simulation.h"
#include "vbatt/fault/injector.h"
#include "vbatt/fault/schedule.h"
#include "vbatt/fault/stream.h"
#include "vbatt/solver/branch_bound.h"
#include "vbatt/svc/config.h"
#include "vbatt/svc/event_log.h"
#include "vbatt/svc/scenario.h"
#include "vbatt/svc/service.h"
#include "vbatt/solver/decompose.h"
#include "vbatt/solver/parallel_bb.h"
#include "vbatt/solver/reference.h"
#include "vbatt/testkit/generators.h"
#include "vbatt/testkit/vm_reference.h"
#include "vbatt/util/thread_pool.h"

namespace vbatt::testkit {

namespace {

// --- shared helpers ------------------------------------------------------

std::unique_ptr<core::Scheduler> make_scheduler(const Spec& spec) {
  if (spec.get("sched", std::string{"greedy"}) == "mip24h") {
    return std::make_unique<core::MipScheduler>(core::make_mip24h_config());
  }
  return std::make_unique<core::GreedyScheduler>();
}

CaseResult fail_str(std::string msg) { return CaseResult::fail(std::move(msg)); }

bool near(double a, double b, double tol_rel) {
  return std::abs(a - b) <= tol_rel * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Unique-per-process temp file; deterministic for a given (spec, tag)
/// within one process, collision-free across concurrently running fuzz
/// binaries (the pid).
std::filesystem::path temp_file(const Spec& spec, const char* tag) {
  std::ostringstream name;
  name << "vbatt_fuzz_" << ::getpid() << '_' << std::hex
       << spec.child_seed("tmpfile") << '_' << tag << ".csv";
  return std::filesystem::temp_directory_path() / name.str();
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- sim suite -----------------------------------------------------------

Spec gen_scenario_spec(util::Rng& rng) {
  Spec spec;
  spec.set("seed", static_cast<std::int64_t>(rng.next() >> 1));
  gen_graph_keys(spec, rng);
  gen_app_keys(spec, rng);
  return spec;
}

const std::vector<ShrinkKey> kScenarioShrink = {
    {"days", 1},   {"sites", 1},  {"wind", 0},   {"peak", 1},
    {"amp", 0},    {"period", 1}, {"aph100", 0}, {"maxvms", 1},
    {"deg100", 0}, {"life", 1},
};

/// Scenario keys plus the batch-overlay knobs (harvest_closure,
/// batch_sharded_diff).
const std::vector<ShrinkKey> kBatchScenarioShrink = {
    {"days", 1},     {"sites", 1},  {"wind", 0},      {"peak", 1},
    {"amp", 0},      {"period", 1}, {"aph100", 0},    {"maxvms", 1},
    {"deg100", 0},   {"life", 1},   {"jph100", 0},    {"tph100", 0},
    {"bcores", 1},   {"brun", 1},   {"bslack100", 100}, {"blat", 0},
};

/// Bare-overlay keys (deadline_conservation drives BatchOverlay directly,
/// no graph).
const std::vector<ShrinkKey> kOverlayShrink = {
    {"days", 1},   {"jph100", 0}, {"tph100", 0},      {"bcores", 1},
    {"brun", 1},   {"bslack100", 100}, {"blat", 0},   {"bsites", 1},
    {"bfree", 0},
};

/// Scenario keys plus the price/carbon trace knobs (objective_identity).
const std::vector<ShrinkKey> kEconScenarioShrink = {
    {"days", 1},   {"sites", 1},  {"wind", 0},   {"peak", 1},
    {"amp", 0},    {"period", 1}, {"aph100", 0}, {"maxvms", 1},
    {"deg100", 0}, {"life", 1},   {"pbase", 20}, {"pswing", 0},
    {"pspread", 0}, {"cbase", 200}, {"cswing", 0}, {"cspread", 0},
};

CaseResult eval_conservation(const Spec& spec) {
  const Scenario sc = make_scenario(spec);
  const auto scheduler = make_scheduler(spec);
  const core::VmLevelResult r = core::run_vm_level_simulation(
      sc.graph, sc.apps, *scheduler, {}, nullptr);
  const auto n_ticks = static_cast<util::Tick>(sc.graph.n_ticks());

  // Non-negativity of every counter.
  for (const auto& [name, v] :
       {std::pair{"apps_placed", r.base.apps_placed},
        {"planned_migrations", r.base.planned_migrations},
        {"forced_migrations", r.base.forced_migrations},
        {"displaced_stable_core_ticks", r.base.displaced_stable_core_ticks},
        {"paused_degradable_vm_ticks", r.base.paused_degradable_vm_ticks},
        {"degradable_active_vm_ticks", r.base.degradable_active_vm_ticks},
        {"vm_migrations", r.vm_migrations},
        {"fragmentation_failures", r.fragmentation_failures},
        {"powered_server_ticks", r.powered_server_ticks}}) {
    if (v < 0) {
      return fail_str(std::string{name} + " negative: " + std::to_string(v));
    }
  }

  // Per-app displacement must sum to the fleet total, and so must the
  // per-tick series (both integer-exact).
  std::int64_t by_app = 0;
  for (const auto& [app_id, cores] : r.base.displaced_by_app) {
    if (cores < 0) return fail_str("negative displaced_by_app entry");
    by_app += cores;
  }
  if (by_app != r.base.displaced_stable_core_ticks) {
    return fail_str("sum(displaced_by_app)=" + std::to_string(by_app) +
                    " != displaced_stable_core_ticks=" +
                    std::to_string(r.base.displaced_stable_core_ticks));
  }
  std::int64_t by_tick = 0;
  for (const std::int64_t v : r.base.displaced_stable_cores_per_tick) {
    by_tick += v;
  }
  if (by_tick != r.base.displaced_stable_core_ticks) {
    return fail_str("sum(displaced_stable_cores_per_tick)=" +
                    std::to_string(by_tick) +
                    " != displaced_stable_core_ticks=" +
                    std::to_string(r.base.displaced_stable_core_ticks));
  }

  // Degradable bookkeeping closes exactly: every degradable VM of a live
  // app is active or paused on every tick of the app's residency.
  std::int64_t expected_degradable = 0;
  for (const workload::Application& app : sc.apps) {
    if (app.arrival >= n_ticks) continue;
    const util::Tick end = app.lifetime_ticks < 0
                               ? n_ticks
                               : std::min(n_ticks, app.arrival +
                                                       app.lifetime_ticks);
    expected_degradable +=
        static_cast<std::int64_t>(app.n_degradable) *
        std::max<util::Tick>(0, end - app.arrival);
  }
  const std::int64_t got = r.base.degradable_active_vm_ticks +
                           r.base.paused_degradable_vm_ticks;
  if (got != expected_degradable) {
    return fail_str("degradable active+paused=" + std::to_string(got) +
                    " != n_degradable x live-ticks=" +
                    std::to_string(expected_degradable));
  }

  // Ledger totals equal per-step sums: every migration records the same GB
  // out, in, and into moved_gb.
  double moved = 0.0;
  for (const double gb : r.base.moved_gb) moved += gb;
  double out_total = 0.0;
  double in_total = 0.0;
  for (std::size_t s = 0; s < sc.graph.n_sites(); ++s) {
    for (const double gb : r.base.ledger.out_series(s)) out_total += gb;
    for (const double gb : r.base.ledger.in_series(s)) in_total += gb;
  }
  if (!near(out_total, moved, 1e-9) || !near(in_total, moved, 1e-9)) {
    return fail_str("ledger totals out=" + std::to_string(out_total) +
                    " in=" + std::to_string(in_total) +
                    " != moved_gb sum=" + std::to_string(moved));
  }

  // Total energy equals the per-tick series (per-tick sums re-add in a
  // different order, so this is a tolerance check, not bitwise).
  double energy = 0.0;
  for (const double mwh : r.base.energy_mwh_per_tick) energy += mwh;
  if (!near(energy, r.base.energy_mwh, 1e-9)) {
    return fail_str("energy_mwh=" + std::to_string(r.base.energy_mwh) +
                    " != per-tick sum=" + std::to_string(energy));
  }
  return CaseResult::pass();
}

CaseResult eval_thread_invariance(const Spec& spec) {
  const Scenario sc = make_scenario(spec);
  const auto sched_a = make_scheduler(spec);
  const core::VmLevelResult serial = core::run_vm_level_simulation(
      sc.graph, sc.apps, *sched_a, {}, nullptr);
  util::ThreadPool pool{3};
  const auto sched_b = make_scheduler(spec);
  const core::VmLevelResult parallel = core::run_vm_level_simulation(
      sc.graph, sc.apps, *sched_b, {}, &pool);
  const std::string diff =
      diff_vm_results(serial, parallel, sc.graph.n_sites());
  if (!diff.empty()) return fail_str("serial vs 3-lane pool: " + diff);
  return CaseResult::pass();
}

CaseResult eval_chaos_zero(const Spec& spec) {
  const Scenario sc = make_scenario(spec);
  const auto sched_a = make_scheduler(spec);
  const core::VmLevelResult bare = core::run_vm_level_simulation(
      sc.graph, sc.apps, *sched_a, {}, nullptr);

  fault::FaultInjector injector{sc.graph, fault::FaultSchedule{},
                                spec.child_seed("noise")};
  core::VmLevelConfig config;
  config.faults.hooks = &injector;
  const auto sched_b = make_scheduler(spec);
  const core::VmLevelResult hooked = core::run_vm_level_simulation(
      injector.graph(), sc.apps, *sched_b, config, nullptr);

  // diff_vm_results covers exactly the non-hook-gated fields, which is the
  // identity an empty schedule must preserve.
  const std::string diff = diff_vm_results(bare, hooked, sc.graph.n_sites());
  if (!diff.empty()) return fail_str("empty-schedule injector: " + diff);
  if (hooked.base.faulted_site_ticks != 0 ||
      hooked.base.retried_moves != 0 || hooked.base.abandoned_moves != 0) {
    return fail_str("empty schedule produced fault counters");
  }
  return CaseResult::pass();
}

CaseResult eval_engine_diff(const Spec& spec) {
  const Scenario sc = make_scenario(spec);
  const auto sched_a = make_scheduler(spec);
  const core::VmLevelResult fast = core::run_vm_level_simulation(
      sc.graph, sc.apps, *sched_a, {}, nullptr);
  const auto sched_b = make_scheduler(spec);
  const core::VmLevelResult ref =
      reference_vm_run(sc.graph, sc.apps, *sched_b, {});
  const std::string diff = diff_vm_results(ref, fast, sc.graph.n_sites());
  if (!diff.empty()) return fail_str("event-driven vs seed engine: " + diff);
  return CaseResult::pass();
}

// --- fleet suite ---------------------------------------------------------

/// Sharded vs unsharded on a random fleet: run_fleet_simulation must be a
/// field-for-field, bit-for-bit drop-in for run_vm_level_simulation.
CaseResult eval_fleet_diff(const Spec& spec) {
  const Scenario sc = make_scenario(spec);
  const auto sched_a = make_scheduler(spec);
  const core::VmLevelResult unsharded = core::run_vm_level_simulation(
      sc.graph, sc.apps, *sched_a, {}, nullptr);
  const auto sched_b = make_scheduler(spec);
  core::FleetSimOptions options;
  options.n_shards = static_cast<int>(
      std::clamp<std::int64_t>(spec.get("shards", 2), 1, 64));
  const core::VmLevelResult sharded =
      core::run_fleet_simulation(sc.graph, sc.apps, *sched_b, {}, options);
  const std::string diff =
      diff_vm_results(unsharded, sharded, sc.graph.n_sites());
  if (!diff.empty()) {
    return fail_str("unsharded vs " + std::to_string(options.n_shards) +
                    "-shard engine: " + diff);
  }
  return CaseResult::pass();
}

/// Shard-count and thread-count bit-invariance under a chaos schedule:
/// every (shards, pool) combination must reproduce the unsharded faulted
/// run exactly.
CaseResult eval_fleet_shard_invariance(const Spec& spec) {
  const Scenario sc = make_scenario(spec);
  fault::ChaosConfig chaos;
  chaos.intensity = std::max<std::int64_t>(0, spec.get("i100", 150)) / 100.0;
  const fault::FaultSchedule schedule =
      make_chaos_schedule(sc.graph, chaos, spec.child_seed("chaos"));
  const std::uint64_t noise = spec.child_seed("noise");

  const auto faulted_run = [&](auto&& engine) {
    fault::FaultInjector injector{sc.graph, schedule, noise};
    core::VmLevelConfig config;
    config.faults.hooks = &injector;
    const auto scheduler = make_scheduler(spec);
    return engine(injector.graph(), *scheduler, config);
  };
  const core::VmLevelResult baseline = faulted_run(
      [&](const core::VbGraph& graph, core::Scheduler& scheduler,
          const core::VmLevelConfig& config) {
        return core::run_vm_level_simulation(graph, sc.apps, scheduler,
                                             config, nullptr);
      });
  util::ThreadPool pool{3};
  for (const int shards : {1, 2, 7}) {
    for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr),
                                &pool}) {
      const core::VmLevelResult sharded = faulted_run(
          [&](const core::VbGraph& graph, core::Scheduler& scheduler,
              const core::VmLevelConfig& config) {
            core::FleetSimOptions options;
            options.n_shards = shards;
            options.pool = p;
            return core::run_fleet_simulation(graph, sc.apps, scheduler,
                                              config, options);
          });
      const std::string diff =
          diff_vm_results(baseline, sharded, sc.graph.n_sites());
      if (!diff.empty()) {
        return fail_str("chaos run, shards=" + std::to_string(shards) +
                        (p != nullptr ? ", 4 lanes: " : ", serial: ") + diff);
      }
    }
  }
  return CaseResult::pass();
}

// --- batch overlay / econ suite ------------------------------------------

/// Deadline conservation on the bare overlay: drive BatchOverlay with a
/// random free-core sequence, then audit every per-entity record. No
/// entity may be both completed and missed; a miss requires work left and
/// a reachable deadline; every admitted entity whose deadline is inside
/// the horizon resolves one way or the other; and a second run with
/// unlimited cores must complete everything on time (the generator's
/// slack >= 1 guarantees feasibility at full capacity).
CaseResult eval_deadline_conservation(const Spec& spec) {
  const util::TimeAxis axis{15};
  const auto n_ticks = static_cast<std::size_t>(
      std::max<std::int64_t>(1, spec.get("days", 1)) * axis.ticks_per_day());
  const workload::BatchWorkload batch = make_batch(spec, axis, n_ticks);
  const auto n_sites = static_cast<std::size_t>(
      std::clamp<std::int64_t>(spec.get("bsites", 3), 1, 8));
  const auto max_free = static_cast<std::uint64_t>(
      std::clamp<std::int64_t>(spec.get("bfree", 20), 0, 512));

  workload::BatchOverlay overlay{batch};
  util::Rng free_rng{spec.child_seed("free")};
  std::vector<std::int64_t> free(n_sites, 0);
  for (std::size_t t = 0; t < n_ticks; ++t) {
    for (std::int64_t& f : free) {
      f = static_cast<std::int64_t>(free_rng.below(max_free + 1));
    }
    overlay.step(static_cast<util::Tick>(t), free);
  }
  overlay.finalize();

  const auto horizon = static_cast<util::Tick>(n_ticks);
  std::int64_t completed = 0;
  std::int64_t missed = 0;
  // Resolution is only guaranteed while the miss check still runs after
  // the deadline: deadline == horizon leaves no post-deadline step, so an
  // unscheduled final-tick remnant may legally end unresolved.
  const auto audit = [&](std::int64_t id, bool got_admitted, bool got_completed,
                         bool got_missed, util::Tick finish,
                         std::int64_t remaining, util::Tick arrival,
                         util::Tick deadline, const char* kind) -> std::string {
    const std::string tag = std::string{kind} + " " + std::to_string(id);
    if (got_completed && got_missed) {
      return tag + " both completed and missed";
    }
    if (got_admitted != (arrival < horizon)) {
      return tag + " admission disagrees with its arrival";
    }
    if (got_completed &&
        (remaining != 0 || finish < arrival || finish >= deadline)) {
      return tag + " completed outside [arrival, deadline)";
    }
    if (got_missed && remaining <= 0) {
      return tag + " missed with no work left";
    }
    if (got_admitted && deadline < horizon && !got_completed && !got_missed) {
      return tag + " unresolved despite an in-horizon deadline";
    }
    completed += got_completed ? 1 : 0;
    missed += got_missed ? 1 : 0;
    return {};
  };
  const auto job_records = overlay.job_records();
  const auto task_records = overlay.task_records();
  if (job_records.size() != batch.jobs.size() ||
      task_records.size() != batch.tasks.size()) {
    return fail_str("record count disagrees with workload size");
  }
  for (std::size_t i = 0; i < job_records.size(); ++i) {
    const auto& r = job_records[i];
    const workload::DeadlineJob& job = batch.jobs[i];
    if (r.job_id != job.job_id) return fail_str("job record order changed");
    if (std::string bad =
            audit(r.job_id, r.admitted, r.completed, r.missed, r.finish_tick,
                  r.remaining_core_ticks, job.arrival, job.deadline, "job");
        !bad.empty()) {
      return fail_str(std::move(bad));
    }
  }
  if (overlay.stats().deadline_jobs_completed != completed ||
      overlay.stats().deadline_jobs_missed != missed) {
    return fail_str("job counters disagree with per-record flags");
  }
  completed = missed = 0;
  for (std::size_t i = 0; i < task_records.size(); ++i) {
    const auto& r = task_records[i];
    const workload::HarvestTask& task = batch.tasks[i];
    if (r.task_id != task.task_id) return fail_str("task record order changed");
    if (std::string bad =
            audit(r.task_id, r.admitted, r.completed, r.missed, r.finish_tick,
                  r.remaining_core_ticks, task.arrival, task.deadline, "task");
        !bad.empty()) {
      return fail_str(std::move(bad));
    }
    if (r.resumes > r.suspends) {
      return fail_str("task resumed more often than it suspended");
    }
  }
  if (overlay.stats().harvest_tasks_completed != completed ||
      overlay.stats().harvest_deadline_misses != missed) {
    return fail_str("task counters disagree with per-record flags");
  }

  // Unlimited capacity: nothing may miss, suspend, or warm up.
  std::int64_t total_cores = 0;
  for (const workload::DeadlineJob& job : batch.jobs) total_cores += job.cores;
  for (const workload::HarvestTask& task : batch.tasks) {
    total_cores += task.cores;
  }
  workload::BatchOverlay roomy{batch};
  const std::vector<std::int64_t> plenty(1, total_cores);
  for (std::size_t t = 0; t < n_ticks; ++t) {
    roomy.step(static_cast<util::Tick>(t), plenty);
  }
  roomy.finalize();
  const workload::BatchStats& full = roomy.stats();
  if (full.deadline_jobs_missed != 0 || full.harvest_deadline_misses != 0) {
    return fail_str("misses under unlimited capacity");
  }
  if (full.suspend_episodes != 0 || full.harvest_warmup_core_ticks != 0) {
    return fail_str("suspends/warmup under unlimited capacity");
  }
  return CaseResult::pass();
}

/// Harvest goodput closure through a full engine run: offered work splits
/// exactly into goodput + lost + suspended, and occupancy covers every
/// executed/warmup core-tick.
CaseResult eval_harvest_closure(const Spec& spec) {
  const Scenario sc = make_scenario(spec);
  const workload::BatchWorkload batch =
      make_batch(spec, sc.graph.axis(), sc.graph.n_ticks());
  core::ScenarioExtensions ext;
  ext.batch = &batch;
  core::VmLevelConfig config;
  config.ext = &ext;
  const auto scheduler = make_scheduler(spec);
  const core::VmLevelResult r = core::run_vm_level_simulation(
      sc.graph, sc.apps, *scheduler, config, nullptr);
  const workload::BatchStats& b = r.base.batch;

  for (const auto& [name, v] :
       {std::pair{"deadline_jobs_completed", b.deadline_jobs_completed},
        {"deadline_jobs_missed", b.deadline_jobs_missed},
        {"deadline_work_core_ticks", b.deadline_work_core_ticks},
        {"harvest_offered_core_ticks", b.harvest_offered_core_ticks},
        {"harvest_goodput_core_ticks", b.harvest_goodput_core_ticks},
        {"harvest_lost_core_ticks", b.harvest_lost_core_ticks},
        {"harvest_suspended_core_ticks", b.harvest_suspended_core_ticks},
        {"harvest_warmup_core_ticks", b.harvest_warmup_core_ticks},
        {"suspend_episodes", b.suspend_episodes},
        {"resume_episodes", b.resume_episodes},
        {"overlay_active_core_ticks", b.overlay_active_core_ticks}}) {
    if (v < 0) {
      return fail_str(std::string{name} + " negative: " + std::to_string(v));
    }
  }
  if (b.harvest_offered_core_ticks !=
      b.harvest_goodput_core_ticks + b.harvest_lost_core_ticks +
          b.harvest_suspended_core_ticks) {
    return fail_str(
        "closure broken: offered=" +
        std::to_string(b.harvest_offered_core_ticks) + " != goodput=" +
        std::to_string(b.harvest_goodput_core_ticks) + " + lost=" +
        std::to_string(b.harvest_lost_core_ticks) + " + suspended=" +
        std::to_string(b.harvest_suspended_core_ticks));
  }
  if (b.resume_episodes > b.suspend_episodes) {
    return fail_str("more resumes than suspends");
  }
  if (b.overlay_active_core_ticks < b.deadline_work_core_ticks +
                                        b.harvest_goodput_core_ticks +
                                        b.harvest_warmup_core_ticks) {
    return fail_str("occupancy below executed work + warmup");
  }
  // Offered must equal the admitted tasks' total work, recomputed here.
  const auto horizon = static_cast<util::Tick>(sc.graph.n_ticks());
  std::int64_t offered = 0;
  for (const workload::HarvestTask& task : batch.tasks) {
    if (task.arrival < horizon) offered += task.work_core_ticks;
  }
  if (offered != b.harvest_offered_core_ticks) {
    return fail_str("offered=" +
                    std::to_string(b.harvest_offered_core_ticks) +
                    " != admitted work=" + std::to_string(offered));
  }
  return CaseResult::pass();
}

/// Econ accounting identity: the MIP's cost/carbon stage value for every
/// committed trajectory must replay against the per-tick signal to 1e-6,
/// and the metered ledger totals must equal their per-tick series.
CaseResult eval_objective_identity(const Spec& spec) {
  const Scenario sc = make_scenario(spec);
  const bool carbon = spec.get("obj", std::string{"cost"}) == "carbon";
  const energy::SiteSeries signal =
      carbon ? make_carbon_series(spec, sc.graph.n_sites(), sc.graph.n_ticks())
             : make_price_series(spec, sc.graph.n_sites(), sc.graph.n_ticks());
  core::MipSchedulerConfig mc = carbon
                                    ? core::make_mip_carbon_config(&signal)
                                    : core::make_mip_cost_config(&signal);
  mc.horizon_ticks = 96;  // keep the per-case solve budget small
  core::MipScheduler scheduler{mc};
  core::ScenarioExtensions ext;
  if (carbon) {
    ext.carbon = &signal;
  } else {
    ext.price = &signal;
  }
  core::VmLevelConfig config;
  config.ext = &ext;
  const core::VmLevelResult r = core::run_vm_level_simulation(
      sc.graph, sc.apps, scheduler, config, nullptr);

  // Ledger totals close over their per-tick series.
  double per_tick = 0.0;
  for (const double v : r.base.cost_usd_per_tick) per_tick += v;
  if (!near(per_tick, r.base.cost_usd, 1e-9)) {
    return fail_str("cost_usd != per-tick sum");
  }
  per_tick = 0.0;
  for (const double v : r.base.carbon_kg_per_tick) per_tick += v;
  if (!near(per_tick, r.base.carbon_kg, 1e-9)) {
    return fail_str("carbon_kg != per-tick sum");
  }
  if (carbon ? r.base.cost_usd != 0.0 : r.base.carbon_kg != 0.0) {
    return fail_str("unattached ledger metered anyway");
  }

  // Stage-value replay, bucket arithmetic mirrored from refresh_capacity.
  std::map<std::int64_t, int> cores_by_app;
  for (const workload::Application& app : sc.apps) {
    cores_by_app.emplace(app.app_id, app.stable_cores());
  }
  const auto trace_end = static_cast<util::Tick>(sc.graph.n_ticks());
  const double hours = sc.graph.axis().minutes_per_tick() / 60.0;
  for (const auto& [app_id, trajectory] : scheduler.trajectories()) {
    const double scale = static_cast<double>(cores_by_app.at(app_id)) *
                         mc.objective_kw_per_core * hours / 1000.0;
    double replayed = 0.0;
    for (std::size_t k = 0; k < trajectory.sites.size(); ++k) {
      const util::Tick begin =
          trajectory.start + static_cast<util::Tick>(k) * mc.bucket_ticks;
      const util::Tick end = std::min(trace_end, begin + mc.bucket_ticks);
      double sum = 0.0;
      for (util::Tick t = begin; t < end; ++t) {
        sum += signal.value(trajectory.sites[k], static_cast<double>(t));
      }
      replayed += sum * scale;
    }
    if (std::abs(replayed - trajectory.objective_cost) > 1e-6) {
      return fail_str("app " + std::to_string(app_id) +
                      " objective_cost diverges from replay by " +
                      std::to_string(replayed - trajectory.objective_cost));
    }
  }
  return CaseResult::pass();
}

/// Sharded fleet engine vs unsharded on the full extension surface (batch
/// overlay + price + carbon), serial and pooled: bit-for-bit, fingerprint
/// included.
CaseResult eval_batch_fleet_diff(const Spec& spec) {
  const Scenario sc = make_scenario(spec);
  const workload::BatchWorkload batch =
      make_batch(spec, sc.graph.axis(), sc.graph.n_ticks());
  const energy::SiteSeries price =
      make_price_series(spec, sc.graph.n_sites(), sc.graph.n_ticks());
  const energy::SiteSeries carbon =
      make_carbon_series(spec, sc.graph.n_sites(), sc.graph.n_ticks());
  core::ScenarioExtensions ext;
  ext.batch = &batch;
  ext.price = &price;
  ext.carbon = &carbon;
  core::VmLevelConfig config;
  config.ext = &ext;

  const auto sched_a = make_scheduler(spec);
  const core::VmLevelResult unsharded = core::run_vm_level_simulation(
      sc.graph, sc.apps, *sched_a, config, nullptr);
  util::ThreadPool pool{3};
  core::FleetSimOptions options;
  options.n_shards = static_cast<int>(
      std::clamp<std::int64_t>(spec.get("shards", 2), 1, 64));
  for (util::ThreadPool* p :
       {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    options.pool = p;
    const auto sched_b = make_scheduler(spec);
    const core::VmLevelResult sharded = core::run_fleet_simulation(
        sc.graph, sc.apps, *sched_b, config, options);
    const std::string diff =
        diff_vm_results(unsharded, sharded, sc.graph.n_sites());
    if (!diff.empty()) {
      return fail_str("extensions, shards=" + std::to_string(options.n_shards) +
                      (p != nullptr ? ", 4 lanes: " : ", serial: ") + diff);
    }
    if (svc::result_fingerprint(unsharded.base) !=
        svc::result_fingerprint(sharded.base)) {
      return fail_str("fingerprints diverge despite field-level equality");
    }
  }
  return CaseResult::pass();
}

// --- dcsim suite ---------------------------------------------------------

CaseResult eval_placement_diff(const Spec& spec) {
  dcsim::SiteConfig config;
  config.n_servers = static_cast<int>(
      std::clamp<std::int64_t>(spec.get("servers", 6), 1, 24));
  config.server = {8, 32.0};
  config.utilization_cap = 1.0;
  dcsim::Site site{config};

  const auto ops = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, spec.get("ops", 40)));
  util::Rng rng{spec.child_seed("ops")};
  dcsim::FirstFitPolicy first_fit;
  dcsim::BestFitPolicy best_fit;
  dcsim::WorstFitPolicy worst_fit;
  dcsim::ProteanLikePolicy protean;
  dcsim::AllocationPolicy* const policies[] = {&first_fit, &best_fit,
                                               &worst_fit, &protean};
  std::vector<std::int64_t> placed_ids;
  std::int64_t next_id = 0;

  const auto draw_shape = [&] {
    // Zero-core shapes are legal and exercise the best-fit vm_count
    // tie-break, which free cores alone cannot decide.
    workload::VmShape shape;
    shape.cores = static_cast<int>(rng.below(7));
    shape.memory_gb = static_cast<double>(rng.below(5)) * 8.0;
    return shape;
  };
  const auto check_all = [&](std::uint64_t op) -> std::string {
    const workload::VmShape probe = draw_shape();
    const std::pair<const char*, std::pair<std::optional<int>,
                                           std::optional<int>>>
        checks[] = {
            {"first_fit",
             {site.choose_first_fit(probe),
              dcsim::scan_reference::first_fit(site, probe)}},
            {"best_fit",
             {site.choose_best_fit(probe),
              dcsim::scan_reference::best_fit(site, probe)}},
            {"worst_fit",
             {site.choose_worst_fit(probe),
              dcsim::scan_reference::worst_fit(site, probe)}},
            {"protean",
             {site.choose_protean(probe),
              dcsim::scan_reference::protean(site, probe)}},
        };
    for (const auto& [name, pair] : checks) {
      if (pair.first != pair.second) {
        return "op " + std::to_string(op) + ": " + name + " chose " +
               (pair.first ? std::to_string(*pair.first) : "none") +
               ", scan reference chose " +
               (pair.second ? std::to_string(*pair.second) : "none") +
               " (probe " + std::to_string(probe.cores) + "c/" +
               std::to_string(probe.memory_gb) + "gb)";
      }
    }
    return {};
  };

  for (std::uint64_t op = 0; op < ops; ++op) {
    if (std::string diff = check_all(op); !diff.empty()) {
      return fail_str(std::move(diff));
    }
    switch (rng.below(8)) {
      case 0:
      case 1:
      case 2: {  // place (weighted: states with residents matter most)
        dcsim::VmInstance vm;
        vm.vm_id = next_id++;
        vm.app_id = 0;
        vm.shape = draw_shape();
        vm.vm_class = rng.chance(0.4) ? workload::VmClass::degradable
                                      : workload::VmClass::stable;
        vm.end_tick = static_cast<util::Tick>(rng.below(ops + 1));
        if (site.place(vm, *policies[rng.below(4)])) {
          placed_ids.push_back(vm.vm_id);
        }
        break;
      }
      case 3: {  // remove
        if (placed_ids.empty()) break;
        const std::size_t at = rng.below(placed_ids.size());
        site.remove(placed_ids[at]);
        placed_ids.erase(placed_ids.begin() +
                         static_cast<std::ptrdiff_t>(at));
        break;
      }
      case 4: {  // power shrink
        const int cap = site.total_cores();
        const auto evicted = site.shrink_to(
            static_cast<int>(rng.below(static_cast<std::uint64_t>(cap) + 1)));
        for (const dcsim::VmInstance& vm : evicted) {
          placed_ids.erase(
              std::find(placed_ids.begin(), placed_ids.end(), vm.vm_id));
        }
        break;
      }
      case 5: {  // departures
        const auto departed = site.collect_departures(
            static_cast<util::Tick>(rng.below(ops + 1)));
        for (const dcsim::VmInstance& vm : departed) {
          placed_ids.erase(
              std::find(placed_ids.begin(), placed_ids.end(), vm.vm_id));
        }
        break;
      }
      case 6: {  // server failure
        const auto failed =
            site.fail_servers(1 + static_cast<int>(rng.below(2)));
        for (const dcsim::VmInstance& vm : failed) {
          placed_ids.erase(
              std::find(placed_ids.begin(), placed_ids.end(), vm.vm_id));
        }
        break;
      }
      case 7:  // repair
        site.repair_servers(1 + static_cast<int>(rng.below(2)));
        break;
    }
  }
  if (std::string diff = check_all(ops); !diff.empty()) {
    return fail_str(std::move(diff));
  }
  return CaseResult::pass();
}

// --- solver suite --------------------------------------------------------

Spec gen_model_spec(util::Rng& rng) {
  Spec spec;
  spec.set("seed", static_cast<std::int64_t>(rng.next() >> 1));
  spec.set("vars", 2 + static_cast<std::int64_t>(rng.below(8)));
  spec.set("rows", 1 + static_cast<std::int64_t>(rng.below(8)));
  spec.set("ints", static_cast<std::int64_t>(rng.below(4)));
  return spec;
}

const std::vector<ShrinkKey> kModelShrink = {
    {"vars", 1}, {"rows", 0}, {"ints", 0}};

CaseResult eval_pinned_bitwise(const Spec& spec) {
  const solver::Model model = make_model(spec);
  solver::MipOptions pinned;
  pinned.engine = solver::MipEngine::pinned;
  const solver::MipResult got = solver::solve_mip(model, pinned);
  const solver::MipResult want = solver::reference::solve_mip(model);
  if (got.status != want.status) {
    return fail_str("status " + std::to_string(static_cast<int>(got.status)) +
                    " != reference " +
                    std::to_string(static_cast<int>(want.status)));
  }
  if (got.proven_optimal != want.proven_optimal) {
    return fail_str("proven_optimal mismatch");
  }
  if (got.nodes_explored != want.nodes_explored) {
    return fail_str("nodes_explored " + std::to_string(got.nodes_explored) +
                    " != reference " + std::to_string(want.nodes_explored));
  }
  if (got.pivots != want.pivots) {
    return fail_str("pivots " + std::to_string(got.pivots) +
                    " != reference " + std::to_string(want.pivots));
  }
  if (got.objective != want.objective) {  // bitwise by design
    return fail_str("objective bits differ: " +
                    std::to_string(got.objective) + " vs " +
                    std::to_string(want.objective));
  }
  if (got.x != want.x) return fail_str("solution vectors differ bitwise");
  return CaseResult::pass();
}

/// x must satisfy bounds, integrality, and every row of `model` to `tol`.
std::string audit_feasibility(const solver::Model& model,
                              const std::vector<double>& x, double tol) {
  if (x.size() != model.n_vars()) return "solution size mismatch";
  for (std::size_t v = 0; v < x.size(); ++v) {
    const solver::Variable& var = model.vars()[v];
    if (x[v] < var.lb - tol || x[v] > var.ub + tol) {
      return "variable " + var.name + " out of bounds";
    }
    if (var.integer && std::abs(x[v] - std::round(x[v])) > tol) {
      return "variable " + var.name + " not integral";
    }
  }
  for (std::size_t c = 0; c < model.n_constraints(); ++c) {
    const solver::Constraint& con = model.constraints()[c];
    double lhs = 0.0;
    for (const auto& [idx, coeff] : con.terms) {
      lhs += coeff * x[static_cast<std::size_t>(idx)];
    }
    const bool ok = con.rel == solver::Rel::le   ? lhs <= con.rhs + tol
                    : con.rel == solver::Rel::ge ? lhs >= con.rhs - tol
                                                 : std::abs(lhs - con.rhs) <=
                                                       tol;
    if (!ok) return "constraint " + std::to_string(c) + " violated";
  }
  return {};
}

CaseResult eval_revised_objective(const Spec& spec) {
  const solver::Model model = make_model(spec);
  solver::MipOptions revised;
  revised.engine = solver::MipEngine::revised;
  const solver::MipResult got = solver::solve_mip(model, revised);
  const solver::MipResult want = solver::reference::solve_mip(model);
  if (got.status != want.status) {
    return fail_str("status " + std::to_string(static_cast<int>(got.status)) +
                    " != reference " +
                    std::to_string(static_cast<int>(want.status)));
  }
  if (got.status != solver::LpStatus::optimal) return CaseResult::pass();
  if (!near(got.objective, want.objective, 1e-6)) {
    return fail_str("objective " + std::to_string(got.objective) +
                    " != reference " + std::to_string(want.objective));
  }
  if (std::string bad = audit_feasibility(model, got.x, 1e-6); !bad.empty()) {
    return fail_str("revised solution infeasible: " + bad);
  }
  return CaseResult::pass();
}

CaseResult eval_mip_dominance(const Spec& spec) {
  const solver::Model model = make_model(spec);
  const solver::MipResult mip = solver::reference::solve_mip(model);
  // Sample integral points of the box; any one that satisfies the rows is
  // a feasible candidate the optimum must dominate (a greedy/rounding
  // heuristic can never beat the exact solve).
  util::Rng rng{spec.child_seed("candidates")};
  for (int k = 0; k < 32; ++k) {
    std::vector<double> x(model.n_vars(), 0.0);
    for (std::size_t v = 0; v < x.size(); ++v) {
      const solver::Variable& var = model.vars()[v];
      const double hi = std::min(var.ub, var.lb + 8.0);
      double value = var.lb + (hi - var.lb) * rng.uniform();
      if (var.integer) value = std::floor(value);
      x[v] = std::clamp(value, var.lb, var.ub);
    }
    if (!audit_feasibility(model, x, 1e-9).empty()) continue;
    if (mip.status != solver::LpStatus::optimal) {
      return fail_str("reference says " +
                      std::to_string(static_cast<int>(mip.status)) +
                      " but a feasible integral point exists");
    }
    const double candidate = model.objective_of(x);
    if (candidate < mip.objective - 1e-6) {
      return fail_str("sampled point beats the MIP optimum: " +
                      std::to_string(candidate) + " < " +
                      std::to_string(mip.objective));
    }
  }
  return CaseResult::pass();
}

std::string diff_models(const solver::Model& a, const solver::Model& b) {
  if (a.n_vars() != b.n_vars()) return "variable count changed";
  if (a.n_constraints() != b.n_constraints()) return "constraint count changed";
  for (std::size_t v = 0; v < a.n_vars(); ++v) {
    const solver::Variable& x = a.vars()[v];
    const solver::Variable& y = b.vars()[v];
    if (x.name != y.name || x.cost != y.cost || x.lb != y.lb ||
        x.ub != y.ub || x.integer != y.integer) {
      return "variable " + x.name + " changed";
    }
  }
  for (std::size_t c = 0; c < a.n_constraints(); ++c) {
    const solver::Constraint& x = a.constraints()[c];
    const solver::Constraint& y = b.constraints()[c];
    if (x.terms != y.terms || x.rel != y.rel || x.rhs != y.rhs) {
      return "constraint " + std::to_string(c) + " changed";
    }
  }
  return {};
}

CaseResult eval_lexi_restore(const Spec& spec) {
  const solver::Model original = make_model(spec);
  util::Rng rng{spec.child_seed("secondary")};
  std::vector<double> secondary(original.n_vars());
  for (double& c : secondary) c = rng.uniform(-5.0, 5.0);

  for (const solver::MipEngine engine :
       {solver::MipEngine::pinned, solver::MipEngine::revised}) {
    solver::Model model = original;
    solver::MipOptions options;
    options.engine = engine;
    (void)solver::solve_lexicographic(model, secondary, 0.05, 1e-6, options);
    if (std::string diff = diff_models(original, model); !diff.empty()) {
      return fail_str(std::string{"solve_lexicographic left the model "
                                  "modified ("} +
                      (engine == solver::MipEngine::pinned ? "pinned"
                                                           : "revised") +
                      "): " + diff);
    }
  }
  return CaseResult::pass();
}

/// Spec for the decomposition/parallel properties: alternates between the
/// fully random family (usually coupled → monolithic fallback) and a
/// block-diagonal chain family (several independent trajectory chains →
/// the DP master), so both sides of the decomposed engine fuzz every run.
Spec gen_decompose_spec(util::Rng& rng) {
  Spec spec = gen_model_spec(rng);
  spec.set("chains", static_cast<std::int64_t>(rng.below(4)));  // 0 = random
  spec.set("sites", 2 + static_cast<std::int64_t>(rng.below(3)));
  spec.set("buckets", 2 + static_cast<std::int64_t>(rng.below(4)));
  return spec;
}

const std::vector<ShrinkKey> kDecomposeShrink = {
    {"chains", 0}, {"sites", 2}, {"buckets", 2},
    {"vars", 1},   {"rows", 0},  {"ints", 0}};

/// `chains` independent trajectory chains (assignment rows + move rows),
/// the structure the decomposition's DP master is specialized for.
solver::Model make_chain_model(const Spec& spec) {
  const auto chains =
      static_cast<int>(std::clamp<std::int64_t>(spec.get("chains", 1), 1, 4));
  const auto sites =
      static_cast<int>(std::clamp<std::int64_t>(spec.get("sites", 2), 2, 5));
  const auto buckets = static_cast<int>(
      std::clamp<std::int64_t>(spec.get("buckets", 2), 2, 6));
  util::Rng rng{spec.child_seed("chain-model")};
  solver::Model model;
  for (int c = 0; c < chains; ++c) {
    std::vector<std::vector<int>> x(static_cast<std::size_t>(buckets));
    std::vector<std::vector<int>> y(static_cast<std::size_t>(buckets));
    for (int k = 0; k < buckets; ++k) {
      for (int s = 0; s < sites; ++s) {
        x[static_cast<std::size_t>(k)].push_back(
            model.add_binary("x", rng.uniform(0.0, 50.0)));
        y[static_cast<std::size_t>(k)].push_back(
            model.add_var("y", rng.uniform(10.0, 100.0), 0.0, 1.0));
      }
    }
    const int home = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(sites)));
    for (int k = 0; k < buckets; ++k) {
      std::vector<std::pair<int, double>> one;
      for (int s = 0; s < sites; ++s) {
        one.emplace_back(x[static_cast<std::size_t>(k)]
                          [static_cast<std::size_t>(s)],
                         1.0);
      }
      model.add_constraint(std::move(one), solver::Rel::eq, 1.0);
      for (int s = 0; s < sites; ++s) {
        std::vector<std::pair<int, double>> terms;
        terms.emplace_back(x[static_cast<std::size_t>(k)]
                            [static_cast<std::size_t>(s)],
                           1.0);
        double rhs = 0.0;
        if (k > 0) {
          terms.emplace_back(x[static_cast<std::size_t>(k - 1)]
                              [static_cast<std::size_t>(s)],
                             -1.0);
        } else {
          rhs = s == home ? 1.0 : 0.0;
        }
        terms.emplace_back(y[static_cast<std::size_t>(k)]
                            [static_cast<std::size_t>(s)],
                           -1.0);
        model.add_constraint(std::move(terms), solver::Rel::le, rhs);
      }
    }
  }
  return model;
}

solver::Model make_decompose_model(const Spec& spec) {
  return spec.get("chains", std::int64_t{0}) > 0 ? make_chain_model(spec)
                                                 : make_model(spec);
}

CaseResult eval_decomposed_diff(const Spec& spec) {
  const solver::Model model = make_decompose_model(spec);
  solver::MipOptions decomposed;
  decomposed.engine = solver::MipEngine::decomposed;
  solver::MipOptions monolithic;
  monolithic.engine = solver::MipEngine::revised;
  const solver::MipResult got = solver::solve_mip(model, decomposed);
  const solver::MipResult want = solver::solve_mip(model, monolithic);
  if (got.status != want.status) {
    return fail_str("decomposed status " +
                    std::to_string(static_cast<int>(got.status)) +
                    " != monolithic " +
                    std::to_string(static_cast<int>(want.status)));
  }
  if (got.status != solver::LpStatus::optimal) return CaseResult::pass();
  if (!near(got.objective, want.objective, 1e-6)) {
    return fail_str("decomposed objective " + std::to_string(got.objective) +
                    " != monolithic " + std::to_string(want.objective));
  }
  if (std::string bad = audit_feasibility(model, got.x, 1e-6); !bad.empty()) {
    return fail_str("decomposed solution infeasible: " + bad);
  }
  // A chain family must actually decompose; the fallback defeats the test.
  if (spec.get("chains", std::int64_t{0}) > 0 && got.monolithic_fallback) {
    return fail_str("chain-structured model took the monolithic fallback");
  }
  return CaseResult::pass();
}

CaseResult eval_parallel_bb_invariance(const Spec& spec) {
  const solver::Model model = make_decompose_model(spec);
  solver::MipOptions options;
  options.engine = solver::MipEngine::parallel;
  util::ThreadPool serial{0};
  util::ThreadPool wide{3};
  const solver::MipResult one =
      solver::solve_mip_parallel(model, options, nullptr, nullptr, &serial);
  const solver::MipResult four =
      solver::solve_mip_parallel(model, options, nullptr, nullptr, &wide);
  if (one.status != four.status) return fail_str("status depends on width");
  if (one.nodes_explored != four.nodes_explored) {
    return fail_str("node count depends on width: " +
                    std::to_string(one.nodes_explored) + " vs " +
                    std::to_string(four.nodes_explored));
  }
  if (one.pivots != four.pivots) return fail_str("pivots depend on width");
  if (one.proven_optimal != four.proven_optimal) {
    return fail_str("proven_optimal depends on width");
  }
  if (one.status == solver::LpStatus::optimal) {
    if (one.objective != four.objective) {  // bitwise by design
      return fail_str("incumbent objective bits depend on width");
    }
    if (one.x != four.x) return fail_str("incumbent vector depends on width");
    const solver::MipResult want = solver::reference::solve_mip(model);
    if (want.status == solver::LpStatus::optimal &&
        !near(one.objective, want.objective, 1e-6)) {
      return fail_str("parallel objective " + std::to_string(one.objective) +
                      " != reference " + std::to_string(want.objective));
    }
    if (std::string bad = audit_feasibility(model, one.x, 1e-6);
        !bad.empty()) {
      return fail_str("parallel solution infeasible: " + bad);
    }
  }
  return CaseResult::pass();
}

/// MipScheduler's incremental model builder: a faulted run whose patched
/// models are re-verified bitwise against a scratch build on every replan
/// (verify_incremental_build throws on the first diverging bit) must also
/// reproduce the scratch-built simulation exactly. Chaos is on so
/// topology-epoch bumps exercise the cache-invalidation path, and the
/// scheduler's own counters prove the delta path actually ran.
CaseResult eval_delta_model_identity(const Spec& spec) {
  const Scenario sc = make_scenario(spec);
  fault::ChaosConfig chaos;
  chaos.intensity = std::max<std::int64_t>(0, spec.get("i100", 100)) / 100.0;
  const fault::FaultSchedule schedule =
      make_chaos_schedule(sc.graph, chaos, spec.child_seed("chaos"));
  const std::uint64_t noise = spec.child_seed("noise");

  std::int64_t patches = 0;
  std::int64_t invalidations = 0;
  const auto run_with = [&](bool incremental, bool verify) {
    fault::FaultInjector injector{sc.graph, schedule, noise};
    core::VmLevelConfig config;
    config.faults.hooks = &injector;
    core::MipSchedulerConfig mc = core::make_mip24h_config();
    mc.incremental_build = incremental;
    mc.verify_incremental_build = verify;
    core::MipScheduler scheduler{mc};
    core::VmLevelResult result = core::run_vm_level_simulation(
        injector.graph(), sc.apps, scheduler, config, nullptr);
    if (incremental) {
      patches = scheduler.model_patch_count();
      invalidations = scheduler.model_cache_invalidations();
    } else if (scheduler.model_patch_count() != 0) {
      throw std::logic_error{"scratch run patched a model"};
    }
    return result;
  };
  try {
    const core::VmLevelResult scratch = run_with(false, false);
    const core::VmLevelResult delta = run_with(true, true);
    const std::string diff =
        diff_vm_results(scratch, delta, sc.graph.n_sites());
    if (!diff.empty()) {
      return fail_str("incremental vs scratch model build: " + diff);
    }
  } catch (const std::logic_error& e) {
    // verify_incremental_build throws through the sim on a bitwise diff.
    return fail_str(std::string{"delta build diverged: "} + e.what());
  }
  // Patch/invalidation counts depend on how many same-family solves the
  // random scenario happens to produce, so they are observability here,
  // not an assertion — tests/test_solver_delta.cpp pins them on directed
  // scenarios where the counts are forced.
  (void)patches;
  (void)invalidations;
  return CaseResult::pass();
}

// --- fault suite ---------------------------------------------------------

CaseResult eval_csv_roundtrip(const Spec& spec) {
  const fault::FaultSchedule schedule = make_fault_events(spec);
  const std::filesystem::path a = temp_file(spec, "a");
  const std::filesystem::path b = temp_file(spec, "b");
  std::string verdict;
  try {
    fault::save_schedule_csv(schedule, a.string());
    const fault::FaultSchedule loaded = fault::load_schedule_csv(a.string());
    if (loaded.events.size() != schedule.events.size()) {
      verdict = "event count changed: " +
                std::to_string(schedule.events.size()) + " -> " +
                std::to_string(loaded.events.size());
    }
    for (std::size_t i = 0; verdict.empty() && i < schedule.events.size();
         ++i) {
      const fault::FaultEvent& x = schedule.events[i];
      const fault::FaultEvent& y = loaded.events[i];
      if (x.kind != y.kind || x.start != y.start || x.end != y.end ||
          x.site != y.site || x.peer != y.peer || x.alpha != y.alpha ||
          x.sigma != y.sigma || x.count != y.count) {
        verdict = "event " + std::to_string(i) +
                  " not bit-identical after round-trip";
      }
    }
    if (verdict.empty()) {
      // Second save must reproduce the file byte for byte.
      fault::save_schedule_csv(loaded, b.string());
      if (slurp(a) != slurp(b)) verdict = "re-saved CSV differs bytewise";
    }
  } catch (const std::exception& e) {
    verdict = std::string{"round-trip threw: "} + e.what();
  }
  std::filesystem::remove(a);
  std::filesystem::remove(b);
  return verdict.empty() ? CaseResult::pass() : fail_str(std::move(verdict));
}

CaseResult eval_csv_malformed(const Spec& spec) {
  struct BadCsv {
    const char* body;
    int line;
    int column;
    /// When true, load through the strict graph-aware overload with these
    /// limits (the permissive loader accepts the body).
    bool strict = false;
    std::size_t sites = 0;
    std::size_t ticks = 0;
  };
  static const BadCsv kCorpus[] = {
      // unknown kind
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "meteor_strike,0,4,0,0,0,0,0\n",
       2, 0},
      // short row
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "site_blackout,0,4,0,0,0,0\n",
       2, 7},
      // non-numeric start
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "site_blackout,soon,4,0,0,0,0,0\n",
       2, 1},
      // end before start
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "site_blackout,9,3,0,0,0,0,0\n",
       2, 2},
      // negative sigma
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "forecast_error,0,4,0,0,0.1,-0.5,0\n",
       2, 6},
      // error past a valid first row
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "site_blackout,0,4,0,0,0,0,0\n"
       "server_failure,0,4,1,0,0,0,many\n",
       3, 7},
      // negative site
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "site_brownout,0,4,-2,0,0.5,0,0\n",
       2, 3},
      // strict: overlapping same-site blackout windows
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "site_blackout,0,8,0,0,0,0,0\n"
       "site_blackout,5,12,0,0,0,0,0\n",
       3, 1, true, 4, 96},
      // strict: start tick past the horizon
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "site_blackout,200,210,0,0,0,0,0\n",
       2, 1, true, 4, 96},
      // strict: end tick past the horizon
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "site_brownout,90,120,0,0,0.5,0,0\n",
       2, 2, true, 4, 96},
      // strict: site outside the fleet
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "server_failure,0,4,9,0,0,0,2\n",
       2, 3, true, 4, 96},
      // strict: link peer outside the fleet
      {"kind,start,end,site,peer,alpha,sigma,count\n"
       "link_down,0,4,1,7,0,0,0\n",
       2, 4, true, 4, 96},
  };
  const auto n_cases = static_cast<std::int64_t>(std::size(kCorpus));
  const BadCsv& bad = kCorpus[static_cast<std::size_t>(
      std::clamp<std::int64_t>(spec.get("case", 0), 0, n_cases - 1))];

  const std::filesystem::path path = temp_file(spec, "bad");
  {
    std::ofstream out{path, std::ios::binary};
    out << bad.body;
  }
  std::string verdict = "load_schedule_csv accepted malformed CSV";
  try {
    if (bad.strict) {
      (void)fault::load_schedule_csv(
          path.string(), fault::ScheduleLoadLimits{bad.sites, bad.ticks});
    } else {
      (void)fault::load_schedule_csv(path.string());
    }
  } catch (const std::runtime_error& e) {
    const std::string want = "at line " + std::to_string(bad.line) +
                             ", column " + std::to_string(bad.column);
    verdict = std::string{e.what()}.find(want) != std::string::npos
                  ? ""
                  : "error lacks position '" + want + "': " + e.what();
  }
  std::filesystem::remove(path);
  return verdict.empty() ? CaseResult::pass() : fail_str(std::move(verdict));
}

CaseResult eval_chaos_identity(const Spec& spec) {
  const core::VbGraph graph = make_graph(spec);
  fault::ChaosConfig config;
  config.intensity =
      std::max<std::int64_t>(0, spec.get("i100", 150)) / 100.0;
  const std::uint64_t seed = spec.child_seed("chaos");
  const fault::FaultSchedule a = make_chaos_schedule(graph, config, seed);
  const fault::FaultSchedule b = make_chaos_schedule(graph, config, seed);
  if (a.events.size() != b.events.size()) {
    return fail_str("equal seeds drew different event counts");
  }
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const fault::FaultEvent& x = a.events[i];
    const fault::FaultEvent& y = b.events[i];
    if (x.kind != y.kind || x.start != y.start || x.end != y.end ||
        x.site != y.site || x.peer != y.peer || x.alpha != y.alpha ||
        x.sigma != y.sigma || x.count != y.count) {
      return fail_str("equal seeds diverge at event " + std::to_string(i));
    }
  }
  if (config.intensity == 0.0 && !a.empty()) {
    return fail_str("intensity 0 produced events");
  }
  const auto key = [](const fault::FaultEvent& e) {
    return std::make_tuple(e.start, static_cast<int>(e.kind), e.site, e.peer,
                           e.end);
  };
  for (std::size_t i = 1; i < a.events.size(); ++i) {
    if (key(a.events[i - 1]) > key(a.events[i])) {
      return fail_str("schedule not sorted at event " + std::to_string(i));
    }
  }
  for (const fault::FaultEvent& e : a.events) {
    if (e.end > static_cast<util::Tick>(graph.n_ticks())) {
      return fail_str("event overruns the trace");
    }
  }
  return CaseResult::pass();
}

CaseResult eval_chaos_invariants(const Spec& spec) {
  const Scenario sc = make_scenario(spec);
  fault::ChaosConfig config;
  config.intensity =
      std::max<std::int64_t>(0, spec.get("i100", 200)) / 100.0;
  const fault::FaultSchedule schedule =
      make_chaos_schedule(sc.graph, config, spec.child_seed("chaos"));
  fault::FaultInjector injector{sc.graph, schedule, spec.child_seed("noise"),
                                /*check_invariants=*/true};
  core::VmLevelConfig vm_config;
  vm_config.faults.hooks = &injector;
  const auto scheduler = make_scheduler(spec);
  try {
    (void)core::run_vm_level_simulation(injector.graph(), sc.apps, *scheduler,
                                        vm_config, nullptr);
  } catch (const std::logic_error& e) {
    return fail_str(std::string{"invariant violation under chaos: "} +
                    e.what());
  }
  if (injector.checked_ticks() !=
      static_cast<std::int64_t>(sc.graph.n_ticks())) {
    return fail_str("checker vetted " +
                    std::to_string(injector.checked_ticks()) + " of " +
                    std::to_string(sc.graph.n_ticks()) + " ticks");
  }
  return CaseResult::pass();
}

// --- energy suite --------------------------------------------------------

Spec gen_fleet_spec(util::Rng& rng) {
  Spec spec;
  spec.set("seed", static_cast<std::int64_t>(rng.next() >> 1));
  spec.set("solar", static_cast<std::int64_t>(rng.below(4)));
  spec.set("wind", 1 + static_cast<std::int64_t>(rng.below(4)));
  spec.set("days", 1 + static_cast<std::int64_t>(rng.below(4)));
  spec.set("region", 100 + static_cast<std::int64_t>(rng.below(1200)));
  spec.set("storms", rng.chance(0.5) ? 1 : 0);
  return spec;
}

energy::Fleet fleet_from_spec(const Spec& spec) {
  energy::FleetConfig config;
  config.n_solar = static_cast<int>(
      std::max<std::int64_t>(0, spec.get("solar", 1)));
  config.n_wind = static_cast<int>(
      std::max<std::int64_t>(0, spec.get("wind", 1)));
  if (config.n_solar + config.n_wind == 0) config.n_wind = 1;
  config.region_km = static_cast<double>(
      std::max<std::int64_t>(10, spec.get("region", 500)));
  config.enable_storms = spec.get("storms", std::int64_t{0}) != 0;
  config.seed = spec.child_seed("fleet");
  const util::TimeAxis axis{15};
  const auto n_ticks = static_cast<std::size_t>(
      std::max<std::int64_t>(1, spec.get("days", 2)) * axis.ticks_per_day());
  return energy::generate_fleet(config, axis, n_ticks);
}

CaseResult eval_trace_range(const Spec& spec) {
  const energy::Fleet fleet = fleet_from_spec(spec);
  for (std::size_t s = 0; s < fleet.size(); ++s) {
    for (const double v : fleet.traces[s].normalized_series()) {
      if (!std::isfinite(v) || v < 0.0 || v > 1.0) {
        return fail_str(fleet.specs[s].name + " sample out of [0,1]: " +
                        std::to_string(v));
      }
    }
  }
  // Forecasts must stay physical too, and the bulk API must agree with
  // the per-tick one.
  const core::VbGraph graph{fleet, core::VbGraphConfig{}};
  util::Rng rng{spec.child_seed("probe")};
  const auto n_ticks = static_cast<util::Tick>(graph.n_ticks());
  for (int probe = 0; probe < 8; ++probe) {
    const std::size_t s = rng.below(graph.n_sites());
    const auto now = static_cast<util::Tick>(rng.below(
        static_cast<std::uint64_t>(n_ticks)));
    const std::vector<int> series =
        graph.forecast_series(s, now, 0, n_ticks);
    for (util::Tick t = 0; t < n_ticks; ++t) {
      const int cores = graph.forecast_cores(s, t, now);
      if (cores < 0 || cores > graph.site(s).capacity_cores) {
        return fail_str("forecast_cores out of range at site " +
                        std::to_string(s));
      }
      if (series[static_cast<std::size_t>(t)] != cores) {
        return fail_str("forecast_series disagrees with forecast_cores at t=" +
                        std::to_string(t));
      }
    }
  }
  return CaseResult::pass();
}

CaseResult eval_stable_monotone(const Spec& spec) {
  const energy::Fleet fleet = fleet_from_spec(spec);
  if (fleet.size() < 2) return CaseResult::pass();
  util::Rng rng{spec.child_seed("window")};
  const auto n_ticks = static_cast<util::Tick>(
      fleet.traces[0].normalized_series().size());
  const std::size_t a = rng.below(fleet.size());
  std::size_t b = rng.below(fleet.size());
  if (b == a) b = (b + 1) % fleet.size();
  const energy::PowerTrace combined =
      energy::combine({&fleet.traces[a], &fleet.traces[b]});
  // Random window plus the full span: the minimum of a sum dominates the
  // sum of minima, so the combined stable energy is superadditive.
  const util::Tick w0 = static_cast<util::Tick>(
      rng.below(static_cast<std::uint64_t>(n_ticks)));
  const util::Tick w1 =
      w0 + 1 +
      static_cast<util::Tick>(
          rng.below(static_cast<std::uint64_t>(n_ticks - w0)));
  for (const auto& [begin, end] :
       {std::pair<util::Tick, util::Tick>{0, n_ticks}, {w0, w1}}) {
    const double whole =
        energy::decompose(combined, begin, end).stable_mwh;
    const double parts =
        energy::decompose(fleet.traces[a], begin, end).stable_mwh +
        energy::decompose(fleet.traces[b], begin, end).stable_mwh;
    if (whole < parts - 1e-9 * std::max(1.0, parts)) {
      return fail_str("stable energy not superadditive on [" +
                      std::to_string(begin) + "," + std::to_string(end) +
                      "): combined " + std::to_string(whole) + " < parts " +
                      std::to_string(parts));
    }
  }
  return CaseResult::pass();
}

// --- svc suite -----------------------------------------------------------

/// Small spec-driven scenario for the control-plane service. Sizes are
/// clamped hard: every case runs the full tick pipeline twice (streamed
/// and batch), so this is the most expensive eval per case in the suite.
svc::ScenarioConfig svc_scenario_config(const Spec& spec) {
  svc::ScenarioConfig config;
  config.days = static_cast<std::size_t>(
      std::clamp<std::int64_t>(spec.get("days", 1), 1, 2));
  config.n_solar = static_cast<int>(
      std::clamp<std::int64_t>(spec.get("solar", 2), 0, 4));
  config.n_wind = static_cast<int>(
      std::clamp<std::int64_t>(spec.get("wind", 2), 0, 4));
  if (config.n_solar + config.n_wind == 0) config.n_solar = 1;
  config.apps_per_hour =
      std::max<std::int64_t>(0, spec.get("aph100", 120)) / 100.0;
  config.chaos_intensity =
      std::max<std::int64_t>(0, spec.get("i100", 0)) / 100.0;
  config.chaos_seed = spec.child_seed("chaos");
  config.batch_jobs_per_hour =
      std::max<std::int64_t>(0, spec.get("jph100", 0)) / 100.0;
  config.batch_tasks_per_hour =
      std::max<std::int64_t>(0, spec.get("tph100", 0)) / 100.0;
  config.batch_seed = spec.child_seed("batch");
  return config;
}

svc::ServiceConfig svc_service_config(const Spec& spec) {
  svc::ServiceConfig config;
  config.policy = spec.get("sched", std::string{"greedy"}) == "mip24h"
                      ? "mip24h"
                      : "greedy";
  config.noise_seed = spec.child_seed("noise");
  return config;
}

/// The batch half of the equivalence contract: run_simulation over the
/// same scenario, with every scheduled fault pre-injected into a
/// StreamInjector so hook-gated accounting matches the service (same
/// construction as vbatt_svc --verify).
core::SimResult svc_run_batch(const svc::Scenario& scenario,
                              const svc::ServiceConfig& config) {
  fault::StreamInjector injector{scenario.graph, config.noise_seed};
  for (const fault::FaultEvent& f : scenario.schedule.events) {
    injector.inject(f, -1);
  }
  const std::unique_ptr<core::Scheduler> scheduler =
      svc::make_service_scheduler(config.policy);
  core::FaultConfig faults{&injector, config.retry};
  // The service receives batch entities as submission events; the batch
  // engine gets the identical workload attached up front via extensions.
  core::ScenarioExtensions ext;
  if (!scenario.batch.empty()) ext.batch = &scenario.batch;
  return core::run_simulation(injector.graph(), scenario.apps, *scheduler,
                              config.power_model, &faults, &ext);
}

/// Feeding a scenario's event stream through the ControlPlane must
/// reproduce the batch engine's SimResult bit-exactly — telemetry,
/// faults, arrivals, and (when enabled) per-tick heartbeats included.
CaseResult eval_svc_batch_diff(const Spec& spec) {
  const svc::Scenario scenario = svc::make_scenario(svc_scenario_config(spec));
  svc::ServiceConfig config = svc_service_config(spec);
  // Per-tick heartbeats keep every site Alive, so enabling health tracking
  // must not perturb the simulation.
  const bool beats = spec.get("beats", 0) != 0;
  config.health.enabled = beats;

  svc::ControlPlane service{scenario.graph, config};
  for (svc::Event& e : svc::scenario_events(scenario, beats)) {
    try {
      service.submit(std::move(e));
    } catch (const std::exception& ex) {
      return fail_str(std::string{"service rejected a scenario event: "} +
                      ex.what());
    }
  }
  const core::SimResult streamed = service.finish();
  const core::SimResult batch = svc_run_batch(scenario, config);
  if (svc::result_fingerprint(streamed) != svc::result_fingerprint(batch)) {
    return fail_str("streamed result diverges from the batch engine");
  }
  return CaseResult::pass();
}

/// Recovery identity: a snapshot taken at any point of a run, plus replay
/// of the durable log, must land on the exact bytes of the uninterrupted
/// run — and replay must be idempotent (a second pass applies nothing).
CaseResult eval_svc_replay_identity(const Spec& spec) {
  const svc::Scenario scenario = svc::make_scenario(svc_scenario_config(spec));
  const svc::ServiceConfig config = svc_service_config(spec);
  std::vector<svc::Event> events = svc::scenario_events(scenario, false);
  const std::size_t cut = static_cast<std::size_t>(
      std::clamp<std::int64_t>(spec.get("cut100", 50), 0, 100));
  const std::size_t split = events.size() * cut / 100;

  const std::filesystem::path log_path = temp_file(spec, "evlog");
  std::string verdict;
  try {
    svc::ControlPlane a{scenario.graph, config};
    a.attach_log(
        std::make_unique<svc::EventLogWriter>(log_path.string(), true));
    std::string mid;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i == split) mid = a.snapshot_bytes();
      a.submit(std::move(events[i]));
    }
    if (split >= events.size()) mid = a.snapshot_bytes();
    const std::string final_state = a.snapshot_bytes();
    a.attach_log(nullptr);  // close the log before reading it back

    const svc::EventLogContents log = svc::read_event_log(log_path.string());
    if (log.torn_tail()) {
      verdict = "log written by a clean run reports a torn tail";
    }

    // Snapshot + replay of the full log == the uninterrupted run.
    svc::ControlPlane b{scenario.graph, config};
    b.restore_snapshot(mid);
    b.replay(log.records);
    if (verdict.empty() && b.snapshot_bytes() != final_state) {
      verdict = "snapshot@" + std::to_string(split) +
                " + replay diverges from the live run";
    }
    // Replay is idempotent: every record's seq is already covered.
    if (verdict.empty() && b.replay(log.records) != 0) {
      verdict = "second replay re-applied already-covered records";
    }
    if (verdict.empty() && b.snapshot_bytes() != final_state) {
      verdict = "double replay changed the state";
    }
    // Cold start (no snapshot) must converge to the same bytes too.
    svc::ControlPlane c{scenario.graph, config};
    c.replay(log.records);
    if (verdict.empty() && c.snapshot_bytes() != final_state) {
      verdict = "genesis replay diverges from the live run";
    }
  } catch (const std::exception& ex) {
    verdict = std::string{"replay identity threw: "} + ex.what();
  }
  std::filesystem::remove(log_path);
  return verdict.empty() ? CaseResult::pass() : fail_str(std::move(verdict));
}

}  // namespace

std::vector<Property> all_properties() {
  std::vector<Property> registry;

  const auto scenario_gen = [](util::Rng& rng) {
    return gen_scenario_spec(rng);
  };
  const auto scenario_gen_sched = [](util::Rng& rng) {
    Spec spec = gen_scenario_spec(rng);
    if (rng.chance(0.125)) spec.set("sched", std::string{"mip24h"});
    return spec;
  };

  registry.push_back({"sim", "conservation", scenario_gen, eval_conservation,
                      kScenarioShrink});
  registry.push_back({"sim", "thread_invariance", scenario_gen,
                      eval_thread_invariance, kScenarioShrink});
  registry.push_back({"sim", "chaos_zero", scenario_gen_sched,
                      eval_chaos_zero, kScenarioShrink});
  registry.push_back({"sim", "engine_diff", scenario_gen, eval_engine_diff,
                      kScenarioShrink});

  registry.push_back({"fleet", "sharded_diff",
                      [](util::Rng& rng) {
                        Spec spec = gen_scenario_spec(rng);
                        if (rng.chance(0.125)) {
                          spec.set("sched", std::string{"mip24h"});
                        }
                        spec.set("shards", 1 + static_cast<std::int64_t>(
                                                   rng.below(8)));
                        return spec;
                      },
                      eval_fleet_diff, kScenarioShrink});
  registry.push_back({"fleet", "shard_invariance",
                      [](util::Rng& rng) {
                        Spec spec = gen_scenario_spec(rng);
                        spec.set("i100", 50 + static_cast<std::int64_t>(
                                                  rng.below(250)));
                        return spec;
                      },
                      eval_fleet_shard_invariance, kScenarioShrink});

  registry.push_back({"sim", "deadline_conservation",
                      [](util::Rng& rng) {
                        Spec spec;
                        spec.set("seed",
                                 static_cast<std::int64_t>(rng.next() >> 1));
                        spec.set("days",
                                 1 + static_cast<std::int64_t>(rng.below(3)));
                        gen_batch_keys(spec, rng);
                        spec.set("bsites",
                                 1 + static_cast<std::int64_t>(rng.below(6)));
                        spec.set("bfree",
                                 static_cast<std::int64_t>(rng.below(65)));
                        return spec;
                      },
                      eval_deadline_conservation, kOverlayShrink});
  registry.push_back({"sim", "harvest_closure",
                      [](util::Rng& rng) {
                        Spec spec = gen_scenario_spec(rng);
                        gen_batch_keys(spec, rng);
                        if (rng.chance(0.125)) {
                          spec.set("sched", std::string{"mip24h"});
                        }
                        return spec;
                      },
                      eval_harvest_closure, kBatchScenarioShrink});
  registry.push_back({"solver", "objective_identity",
                      [](util::Rng& rng) {
                        Spec spec = gen_scenario_spec(rng);
                        gen_econ_keys(spec, rng);
                        if (rng.chance(0.5)) {
                          spec.set("obj", std::string{"carbon"});
                        }
                        return spec;
                      },
                      eval_objective_identity, kEconScenarioShrink});
  registry.push_back({"fleet", "batch_sharded_diff",
                      [](util::Rng& rng) {
                        Spec spec = gen_scenario_spec(rng);
                        gen_batch_keys(spec, rng);
                        gen_econ_keys(spec, rng);
                        if (rng.chance(0.125)) {
                          spec.set("sched", std::string{"mip24h"});
                        }
                        spec.set("shards", 1 + static_cast<std::int64_t>(
                                                   rng.below(8)));
                        return spec;
                      },
                      eval_batch_fleet_diff, kBatchScenarioShrink});

  registry.push_back({"dcsim", "placement_diff",
                      [](util::Rng& rng) {
                        Spec spec;
                        spec.set("seed",
                                 static_cast<std::int64_t>(rng.next() >> 1));
                        spec.set("servers",
                                 1 + static_cast<std::int64_t>(rng.below(10)));
                        spec.set("ops",
                                 8 + static_cast<std::int64_t>(rng.below(93)));
                        return spec;
                      },
                      eval_placement_diff,
                      {{"ops", 1}, {"servers", 1}}});

  registry.push_back({"solver", "pinned_bitwise", gen_model_spec,
                      eval_pinned_bitwise, kModelShrink});
  registry.push_back({"solver", "revised_objective", gen_model_spec,
                      eval_revised_objective, kModelShrink});
  registry.push_back({"solver", "mip_dominance", gen_model_spec,
                      eval_mip_dominance, kModelShrink});
  registry.push_back({"solver", "lexi_restore", gen_model_spec,
                      eval_lexi_restore, kModelShrink});
  registry.push_back({"solver", "decomposed_diff", gen_decompose_spec,
                      eval_decomposed_diff, kDecomposeShrink});
  registry.push_back({"solver", "parallel_bb_invariance", gen_decompose_spec,
                      eval_parallel_bb_invariance, kDecomposeShrink});
  registry.push_back({"solver", "delta_model_identity",
                      [](util::Rng& rng) {
                        Spec spec = gen_scenario_spec(rng);
                        spec.set("i100",
                                 static_cast<std::int64_t>(rng.below(300)));
                        return spec;
                      },
                      eval_delta_model_identity, kScenarioShrink});

  registry.push_back({"fault", "csv_roundtrip",
                      [](util::Rng& rng) {
                        Spec spec;
                        spec.set("seed",
                                 static_cast<std::int64_t>(rng.next() >> 1));
                        spec.set("events",
                                 static_cast<std::int64_t>(rng.below(24)));
                        return spec;
                      },
                      eval_csv_roundtrip,
                      {{"events", 0}}});
  registry.push_back({"fault", "csv_malformed",
                      [](util::Rng& rng) {
                        Spec spec;
                        spec.set("seed",
                                 static_cast<std::int64_t>(rng.next() >> 1));
                        spec.set("case",
                                 static_cast<std::int64_t>(rng.below(12)));
                        return spec;
                      },
                      eval_csv_malformed,
                      {}});
  registry.push_back({"fault", "chaos_identity",
                      [](util::Rng& rng) {
                        Spec spec = gen_scenario_spec(rng);
                        spec.set("i100",
                                 static_cast<std::int64_t>(rng.below(400)));
                        return spec;
                      },
                      eval_chaos_identity,
                      kScenarioShrink});
  registry.push_back({"fault", "chaos_invariants",
                      [](util::Rng& rng) {
                        Spec spec = gen_scenario_spec(rng);
                        spec.set("i100", 50 + static_cast<std::int64_t>(
                                                  rng.below(250)));
                        return spec;
                      },
                      eval_chaos_invariants,
                      kScenarioShrink});

  const auto svc_gen = [](util::Rng& rng) {
    Spec spec;
    spec.set("seed", static_cast<std::int64_t>(rng.next() >> 1));
    spec.set("days", 1);
    spec.set("solar", static_cast<std::int64_t>(rng.below(4)));
    spec.set("wind", static_cast<std::int64_t>(rng.below(4)));
    spec.set("aph100", 40 + static_cast<std::int64_t>(rng.below(200)));
    if (rng.chance(0.5)) {
      spec.set("i100", static_cast<std::int64_t>(rng.below(300)));
    }
    if (rng.chance(0.125)) spec.set("sched", std::string{"mip24h"});
    if (rng.chance(0.5)) {
      spec.set("jph100", static_cast<std::int64_t>(rng.below(150)));
      spec.set("tph100", static_cast<std::int64_t>(rng.below(250)));
    }
    return spec;
  };
  const std::vector<ShrinkKey> svc_shrink = {
      {"days", 1},   {"solar", 0},  {"wind", 0},   {"aph100", 0},
      {"i100", 0},   {"cut100", 0}, {"jph100", 0}, {"tph100", 0}};

  registry.push_back({"svc", "batch_diff",
                      [svc_gen](util::Rng& rng) {
                        Spec spec = svc_gen(rng);
                        if (rng.chance(0.25)) spec.set("beats", 1);
                        return spec;
                      },
                      eval_svc_batch_diff, svc_shrink});
  registry.push_back({"svc", "replay_identity",
                      [svc_gen](util::Rng& rng) {
                        Spec spec = svc_gen(rng);
                        spec.set("cut100",
                                 static_cast<std::int64_t>(rng.below(101)));
                        return spec;
                      },
                      eval_svc_replay_identity, svc_shrink});

  registry.push_back({"energy", "trace_range", gen_fleet_spec,
                      eval_trace_range,
                      {{"days", 1}, {"solar", 0}, {"wind", 0}}});
  registry.push_back({"energy", "stable_monotone", gen_fleet_spec,
                      eval_stable_monotone,
                      {{"days", 1}, {"solar", 0}, {"wind", 0}}});

  return registry;
}

}  // namespace vbatt::testkit
