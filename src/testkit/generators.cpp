#include "vbatt/testkit/generators.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>

#include "vbatt/energy/carbon.h"
#include "vbatt/energy/cost.h"
#include "vbatt/energy/site.h"

namespace vbatt::testkit {

namespace {

/// Synthetic adversarial trace in [0, 1]. All three kinds drop to
/// 1 - amp/100: `square` toggles every `period` ticks (per-site phase so
/// sites dip out of step), `cliff` holds full power then falls off once
/// and never recovers, `calm` sits at the low level the whole run.
std::vector<double> synth_series(const std::string& kind, std::size_t n_ticks,
                                 double low, std::size_t period,
                                 util::Rng& rng) {
  std::vector<double> series(n_ticks, 1.0);
  if (kind == "calm") {
    std::fill(series.begin(), series.end(), low);
  } else if (kind == "cliff") {
    const std::size_t at = n_ticks > 1 ? rng.below(n_ticks) : 0;
    for (std::size_t t = at; t < n_ticks; ++t) series[t] = low;
  } else {  // square
    const std::size_t phase = rng.below(period);
    for (std::size_t t = 0; t < n_ticks; ++t) {
      series[t] = ((t + phase) / period) % 2 == 0 ? 1.0 : low;
    }
  }
  return series;
}

}  // namespace

core::VbGraph make_graph(const Spec& spec) {
  const auto sites =
      static_cast<int>(std::max<std::int64_t>(1, spec.get("sites", 2)));
  const int wind = static_cast<int>(
      std::clamp<std::int64_t>(spec.get("wind", 1), 0, sites));
  const auto days = std::max<std::int64_t>(1, spec.get("days", 1));
  const double peak_mw =
      static_cast<double>(std::max<std::int64_t>(1, spec.get("peak", 6)));
  const double region_km =
      static_cast<double>(std::max<std::int64_t>(10, spec.get("region", 400)));
  const std::string kind = spec.get("trace", std::string{"square"});
  const util::TimeAxis axis{15};
  const auto n_ticks =
      static_cast<std::size_t>(days * axis.ticks_per_day());

  energy::Fleet fleet;
  if (kind == "model") {
    energy::FleetConfig config;
    config.n_solar = sites - wind;
    config.n_wind = wind;
    config.region_km = region_km;
    config.peak_mw = peak_mw;
    config.seed = spec.child_seed("fleet");
    fleet = energy::generate_fleet(config, axis, n_ticks);
  } else {
    const double amp =
        std::clamp<std::int64_t>(spec.get("amp", 60), 0, 100) / 100.0;
    const auto period = static_cast<std::size_t>(
        std::max<std::int64_t>(1, spec.get("period", 16)));
    util::Rng geo{spec.child_seed("geo")};
    fleet.axis = axis;
    for (int s = 0; s < sites; ++s) {
      energy::SiteSpec site;
      site.id = s;
      site.name = "fuzz-" + std::to_string(s);
      site.source =
          s < wind ? energy::Source::wind : energy::Source::solar;
      site.peak_mw = peak_mw;
      site.location = {geo.uniform(0.0, region_km),
                       geo.uniform(0.0, region_km)};
      util::Rng trace_rng{
          spec.child_seed("trace", static_cast<std::uint64_t>(s))};
      fleet.specs.push_back(site);
      fleet.traces.emplace_back(
          axis, peak_mw,
          synth_series(kind, n_ticks, 1.0 - amp, period, trace_rng),
          site.source);
    }
  }

  core::VbGraphConfig config;
  config.oracle_forecasts = spec.get("oracle", std::int64_t{0}) != 0;
  return core::VbGraph{fleet, config};
}

std::vector<workload::Application> make_apps(const Spec& spec,
                                             const core::VbGraph& graph) {
  workload::AppGeneratorConfig config;
  config.apps_per_hour =
      std::max<std::int64_t>(0, spec.get("aph100", 100)) / 100.0;
  // generate_apps rejects a zero rate; the shrinker's aph100=0 floor means
  // "no workload at all", which is a perfectly good minimal scenario.
  if (config.apps_per_hour <= 0.0) return {};
  config.min_vms = 1;
  config.max_vms = static_cast<int>(
      std::max<std::int64_t>(1, spec.get("maxvms", 8)));
  config.degradable_fraction =
      std::clamp<std::int64_t>(spec.get("deg100", 40), 0, 100) / 100.0;
  config.median_lifetime_hours =
      static_cast<double>(std::max<std::int64_t>(1, spec.get("life", 24)));
  config.seed = spec.child_seed("apps");
  return workload::generate_apps(config, graph.axis(), graph.n_ticks());
}

Scenario make_scenario(const Spec& spec) {
  core::VbGraph graph = make_graph(spec);
  std::vector<workload::Application> apps = make_apps(spec, graph);
  return Scenario{std::move(graph), std::move(apps)};
}

fault::FaultSchedule make_fault_events(const Spec& spec) {
  const auto n_events = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, spec.get("events", 8)));
  constexpr std::uint64_t kSites = 8;
  constexpr std::uint64_t kTicks = 192;
  fault::FaultSchedule schedule;
  schedule.events.reserve(static_cast<std::size_t>(n_events));
  for (std::uint64_t i = 0; i < n_events; ++i) {
    util::Rng rng{spec.child_seed("fault", i)};
    fault::FaultEvent e;
    auto kind = static_cast<fault::FaultKind>(rng.below(5));
    e.site = rng.below(kSites);
    e.start = static_cast<util::Tick>(rng.below(kTicks));
    e.end = e.start + 1 + static_cast<util::Tick>(rng.below(32));
    switch (kind) {
      case fault::FaultKind::site_brownout:
        e.alpha = rng.uniform(0.0, 0.95);
        break;
      case fault::FaultKind::forecast_error:
        e.alpha = rng.uniform(-0.5, 0.5);
        e.sigma = rng.uniform(0.0, 0.3);
        break;
      case fault::FaultKind::link_down:
        e.peer = (e.site + 1 + rng.below(kSites - 1)) % kSites;
        break;
      case fault::FaultKind::server_failure:
        e.count = 1 + static_cast<int>(rng.below(6));
        break;
      case fault::FaultKind::site_blackout:
        break;
    }
    e.kind = kind;
    schedule.events.push_back(e);
  }
  return schedule;
}

solver::Model make_model(const Spec& spec) {
  const auto n_vars = static_cast<int>(
      std::clamp<std::int64_t>(spec.get("vars", 4), 1, 24));
  const auto n_rows = static_cast<int>(
      std::clamp<std::int64_t>(spec.get("rows", 4), 0, 24));
  const auto n_ints = static_cast<int>(
      std::clamp<std::int64_t>(spec.get("ints", 1), 0, n_vars));
  util::Rng rng{spec.child_seed("model")};

  solver::Model model;
  for (int v = 0; v < n_vars; ++v) {
    const bool integer = v < n_ints;
    // Finite upper bounds keep every draw bounded; integrality gets a
    // small box so branch & bound trees stay shallow.
    const double ub = integer ? 1.0 + static_cast<double>(rng.below(4))
                              : rng.uniform(1.0, 12.0);
    model.add_var("x" + std::to_string(v), rng.uniform(-10.0, 10.0), 0.0, ub,
                  integer);
  }
  for (int r = 0; r < n_rows; ++r) {
    const int width = 1 + static_cast<int>(
                              rng.below(static_cast<std::uint64_t>(
                                  std::min(3, n_vars))));
    std::vector<std::pair<int, double>> terms;
    int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_vars)));
    for (int k = 0; k < width; ++k) {
      terms.emplace_back(v, rng.uniform(-5.0, 5.0));
      v = (v + 1 + static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(n_vars)))) %
          n_vars;
    }
    const auto rel = static_cast<solver::Rel>(rng.below(3));
    model.add_constraint(std::move(terms), rel, rng.uniform(-8.0, 20.0));
  }
  return model;
}

workload::BatchWorkload make_batch(const Spec& spec, const util::TimeAxis& axis,
                                   std::size_t n_ticks) {
  workload::BatchGeneratorConfig config;
  config.jobs_per_hour =
      std::max<std::int64_t>(0, spec.get("jph100", 60)) / 100.0;
  config.tasks_per_hour =
      std::max<std::int64_t>(0, spec.get("tph100", 120)) / 100.0;
  config.max_cores = static_cast<int>(
      std::clamp<std::int64_t>(spec.get("bcores", 8), 1, 64));
  config.min_cores = std::min(config.min_cores, config.max_cores);
  config.max_run_ticks = static_cast<util::Tick>(
      std::clamp<std::int64_t>(spec.get("brun", 24), 1, 96));
  config.min_run_ticks = std::min(config.min_run_ticks, config.max_run_ticks);
  config.max_slack =
      std::clamp<std::int64_t>(spec.get("bslack100", 300), 100, 800) / 100.0;
  config.min_slack = std::min(config.min_slack, config.max_slack);
  config.max_resume_latency_ticks = static_cast<util::Tick>(
      std::clamp<std::int64_t>(spec.get("blat", 4), 0, 16));
  config.seed = spec.child_seed("batch");
  return workload::generate_batch(config, axis, n_ticks);
}

energy::SiteSeries make_price_series(const Spec& spec, std::size_t n_sites,
                                     std::size_t n_ticks) {
  energy::PriceSeriesConfig config;
  config.base_usd_per_mwh =
      static_cast<double>(spec.get("pbase", std::int64_t{42}));
  config.swing_usd_per_mwh = static_cast<double>(
      std::max<std::int64_t>(0, spec.get("pswing", 18)));
  config.site_spread_usd_per_mwh = static_cast<double>(
      std::max<std::int64_t>(0, spec.get("pspread", 6)));
  config.seed = spec.child_seed("price");
  return energy::make_price_series(config, util::TimeAxis{15}, n_sites,
                                   n_ticks);
}

energy::SiteSeries make_carbon_series(const Spec& spec, std::size_t n_sites,
                                      std::size_t n_ticks) {
  energy::CarbonSeriesConfig config;
  config.grid.grid_base_gco2_per_kwh = static_cast<double>(
      std::max<std::int64_t>(0, spec.get("cbase", 320)));
  config.grid.grid_swing_gco2_per_kwh = static_cast<double>(
      std::max<std::int64_t>(0, spec.get("cswing", 90)));
  config.site_spread_gco2_per_kwh = static_cast<double>(
      std::max<std::int64_t>(0, spec.get("cspread", 25)));
  config.seed = spec.child_seed("carbon");
  return energy::make_carbon_series(config, util::TimeAxis{15}, n_sites,
                                    n_ticks);
}

void gen_graph_keys(Spec& spec, util::Rng& rng) {
  const auto sites = 1 + static_cast<std::int64_t>(rng.below(3));
  spec.set("sites", sites);
  spec.set("wind", static_cast<std::int64_t>(rng.below(
                       static_cast<std::uint64_t>(sites + 1))));
  spec.set("days", 1 + static_cast<std::int64_t>(rng.below(2)));
  spec.set("peak", 2 + static_cast<std::int64_t>(rng.below(8)));
  static const char* kKinds[] = {"model", "square", "cliff", "calm"};
  spec.set("trace", std::string{kKinds[rng.below(4)]});
  spec.set("amp", 20 + static_cast<std::int64_t>(rng.below(81)));
  spec.set("period", 4 + static_cast<std::int64_t>(rng.below(29)));
}

void gen_app_keys(Spec& spec, util::Rng& rng) {
  spec.set("aph100", 25 + static_cast<std::int64_t>(rng.below(200)));
  spec.set("maxvms", 2 + static_cast<std::int64_t>(rng.below(10)));
  spec.set("deg100", static_cast<std::int64_t>(rng.below(101)));
  spec.set("life", 4 + static_cast<std::int64_t>(rng.below(60)));
}

void gen_batch_keys(Spec& spec, util::Rng& rng) {
  spec.set("jph100", static_cast<std::int64_t>(rng.below(301)));
  spec.set("tph100", static_cast<std::int64_t>(rng.below(401)));
  spec.set("bcores", 1 + static_cast<std::int64_t>(rng.below(16)));
  spec.set("brun", 2 + static_cast<std::int64_t>(rng.below(47)));
  spec.set("bslack100", 100 + static_cast<std::int64_t>(rng.below(501)));
  spec.set("blat", static_cast<std::int64_t>(rng.below(9)));
}

void gen_econ_keys(Spec& spec, util::Rng& rng) {
  spec.set("pbase", 20 + static_cast<std::int64_t>(rng.below(61)));
  spec.set("pswing", static_cast<std::int64_t>(rng.below(41)));
  spec.set("pspread", static_cast<std::int64_t>(rng.below(21)));
  spec.set("cbase", 200 + static_cast<std::int64_t>(rng.below(301)));
  spec.set("cswing", static_cast<std::int64_t>(rng.below(151)));
  spec.set("cspread", static_cast<std::int64_t>(rng.below(61)));
}

}  // namespace vbatt::testkit
