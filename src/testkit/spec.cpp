#include "vbatt/testkit/spec.h"

#include <charconv>
#include <stdexcept>

#include "vbatt/util/rng.h"

namespace vbatt::testkit {
namespace {

bool valid_char(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '+' || c == '-';
}

bool valid_token(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!valid_char(c)) return false;
  return true;
}

[[noreturn]] void bad(std::string_view what, std::string_view pair) {
  throw std::invalid_argument("Spec::parse: " + std::string(what) + " in \"" +
                              std::string(pair) + "\"");
}

}  // namespace

Spec Spec::parse(std::string_view text) {
  Spec spec;
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    const std::string_view pair =
        semi == std::string_view::npos ? text : text.substr(0, semi);
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) bad("missing '='", pair);
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    if (!valid_token(key)) bad("bad key", pair);
    if (!valid_token(value)) bad("bad value", pair);
    if (spec.has(key)) bad("duplicate key", pair);
    spec.pairs_.emplace_back(std::string(key), std::string(value));
  }
  return spec;
}

std::string Spec::to_string() const {
  std::string out;
  for (const auto& [key, value] : pairs_) {
    if (!out.empty()) out += ';';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

bool Spec::has(std::string_view key) const {
  for (const auto& [k, v] : pairs_)
    if (k == key) return true;
  return false;
}

std::int64_t Spec::get(std::string_view key, std::int64_t fallback) const {
  for (const auto& [k, v] : pairs_) {
    if (k != key) continue;
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(v.data(), v.data() + v.size(), value);
    if (ec != std::errc{} || ptr != v.data() + v.size())
      throw std::invalid_argument("Spec: non-integer value for key \"" +
                                  std::string(key) + "\": \"" + v + "\"");
    return value;
  }
  return fallback;
}

std::string Spec::get(std::string_view key, const std::string& fallback) const {
  for (const auto& [k, v] : pairs_)
    if (k == key) return v;
  return fallback;
}

void Spec::set(std::string_view key, std::int64_t value) {
  set(key, std::to_string(value));
}

void Spec::set(std::string_view key, std::string value) {
  for (auto& [k, v] : pairs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  pairs_.emplace_back(std::string(key), std::move(value));
}

std::uint64_t Spec::child_seed(std::string_view name,
                               std::uint64_t index) const {
  const auto root = static_cast<std::uint64_t>(get("seed", std::int64_t{0}));
  return util::seed_for(root, name, index);
}

}  // namespace vbatt::testkit
