#include "vbatt/testkit/property.h"

#include <stdexcept>
#include <utility>

namespace vbatt::testkit {
namespace {

// eval() wrapper: any exception escaping a property is itself a failure
// (the message names the exception), never a crash of the harness.
CaseResult safe_eval(const Property& property, const Spec& spec) {
  try {
    return property.eval(spec);
  } catch (const std::exception& e) {
    return CaseResult::fail(std::string("uncaught exception: ") + e.what());
  }
}

}  // namespace

std::pair<Spec, int> shrink(const Property& property, Spec spec) {
  int steps = 0;
  // Fixpoint loop: keep passing over the keys until no edit is accepted.
  // Each candidate edit is kept only if eval still fails. Capped so a
  // flaky (non-deterministic) eval can't loop forever; in practice specs
  // have < 10 integer keys and converge in a handful of passes.
  constexpr int kMaxSteps = 200;
  bool progressed = true;
  while (progressed && steps < kMaxSteps) {
    progressed = false;
    for (const ShrinkKey& sk : property.shrink_keys) {
      if (!spec.has(sk.key)) continue;
      std::int64_t cur = spec.get(sk.key, std::int64_t{0});
      while (cur > sk.floor && steps < kMaxSteps) {
        // Try the floor first (biggest jump), then halfway, then one less.
        const std::int64_t candidates[] = {sk.floor, sk.floor + (cur - sk.floor) / 2,
                                           cur - 1};
        std::int64_t accepted = cur;
        for (std::int64_t cand : candidates) {
          if (cand >= cur || cand < sk.floor) continue;
          Spec trial = spec;
          trial.set(sk.key, cand);
          if (!safe_eval(property, trial).ok) {
            accepted = cand;
            break;
          }
        }
        if (accepted == cur) break;
        spec.set(sk.key, accepted);
        cur = accepted;
        ++steps;
        progressed = true;
      }
    }
  }
  return {std::move(spec), steps};
}

PropertyReport check(const Property& property, const CheckOptions& opts) {
  PropertyReport report;
  report.property = property.full_name();
  for (std::uint64_t i = 0; i < opts.cases; ++i) {
    util::Rng rng(util::seed_for(opts.seed, property.full_name(), i));
    Spec spec = property.generate(rng);
    spec.set("prop", property.full_name());
    ++report.cases_run;
    CaseResult result = safe_eval(property, spec);
    if (result.ok) continue;
    Failure failure;
    failure.property = property.full_name();
    failure.case_index = i;
    failure.original = spec;
    if (opts.shrink) {
      auto [minimized, steps] = shrink(property, spec);
      failure.minimized = std::move(minimized);
      failure.shrink_steps = steps;
      failure.message = safe_eval(property, failure.minimized).message;
      if (failure.message.empty()) failure.message = result.message;
    } else {
      failure.minimized = spec;
      failure.message = result.message;
    }
    report.failures.push_back(std::move(failure));
    if (report.failures.size() >= opts.max_failures) break;
  }
  return report;
}

CaseResult replay(const std::vector<Property>& registry, const Spec& spec) {
  const std::string prop = spec.get("prop", std::string{});
  for (const Property& property : registry)
    if (property.full_name() == prop) return property.eval(spec);
  throw std::invalid_argument("replay: unknown property \"" + prop +
                              "\" (spec must carry prop=<suite.name>)");
}

}  // namespace vbatt::testkit
