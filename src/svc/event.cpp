#include "vbatt/svc/event.h"

#include <stdexcept>

#include "vbatt/util/wire.h"

namespace vbatt::svc {

namespace {

bool valid_kind(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(EventKind::tick_advance) &&
         k <= static_cast<std::uint8_t>(EventKind::harvest_task);
}

void encode_app(util::wire::Writer& w, const workload::Application& a) {
  w.i64(a.app_id);
  w.i64(a.arrival);
  w.i64(a.lifetime_ticks);
  w.i64(a.shape.cores);
  w.f64(a.shape.memory_gb);
  w.i64(a.n_stable);
  w.i64(a.n_degradable);
}

workload::Application decode_app(util::wire::Reader& r) {
  workload::Application a;
  a.app_id = r.i64();
  a.arrival = r.i64();
  a.lifetime_ticks = r.i64();
  a.shape.cores = static_cast<int>(r.i64());
  a.shape.memory_gb = r.f64();
  a.n_stable = static_cast<int>(r.i64());
  a.n_degradable = static_cast<int>(r.i64());
  return a;
}

void encode_fault(util::wire::Writer& w, const fault::FaultEvent& f) {
  w.u8(static_cast<std::uint8_t>(f.kind));
  w.i64(f.start);
  w.i64(f.end);
  w.u64(f.site);
  w.u64(f.peer);
  w.f64(f.alpha);
  w.f64(f.sigma);
  w.i64(f.count);
}

void encode_job(util::wire::Writer& w, const workload::DeadlineJob& j) {
  w.i64(j.job_id);
  w.i64(j.arrival);
  w.i64(j.cores);
  w.i64(j.work_core_ticks);
  w.i64(j.deadline);
}

workload::DeadlineJob decode_job(util::wire::Reader& r) {
  workload::DeadlineJob j;
  j.job_id = r.i64();
  j.arrival = r.i64();
  j.cores = static_cast<int>(r.i64());
  j.work_core_ticks = r.i64();
  j.deadline = r.i64();
  return j;
}

void encode_task(util::wire::Writer& w, const workload::HarvestTask& t) {
  w.i64(t.task_id);
  w.i64(t.arrival);
  w.i64(t.cores);
  w.i64(t.work_core_ticks);
  w.i64(t.resume_latency_ticks);
  w.i64(t.deadline);
}

workload::HarvestTask decode_task(util::wire::Reader& r) {
  workload::HarvestTask t;
  t.task_id = r.i64();
  t.arrival = r.i64();
  t.cores = static_cast<int>(r.i64());
  t.work_core_ticks = r.i64();
  t.resume_latency_ticks = r.i64();
  t.deadline = r.i64();
  return t;
}

fault::FaultEvent decode_fault(util::wire::Reader& r) {
  fault::FaultEvent f;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(fault::FaultKind::server_failure)) {
    throw std::runtime_error{"decode_event: unknown fault kind " +
                             std::to_string(kind)};
  }
  f.kind = static_cast<fault::FaultKind>(kind);
  f.start = r.i64();
  f.end = r.i64();
  f.site = static_cast<std::size_t>(r.u64());
  f.peer = static_cast<std::size_t>(r.u64());
  f.alpha = r.f64();
  f.sigma = r.f64();
  f.count = static_cast<int>(r.i64());
  return f;
}

}  // namespace

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::tick_advance:
      return "tick_advance";
    case EventKind::power_reading:
      return "power_reading";
    case EventKind::forecast_update:
      return "forecast_update";
    case EventKind::vm_arrival:
      return "vm_arrival";
    case EventKind::vm_departure:
      return "vm_departure";
    case EventKind::fault_report:
      return "fault_report";
    case EventKind::heartbeat:
      return "heartbeat";
    case EventKind::drain_site:
      return "drain_site";
    case EventKind::undrain_site:
      return "undrain_site";
    case EventKind::pause:
      return "pause";
    case EventKind::resume:
      return "resume";
    case EventKind::reconfigure:
      return "reconfigure";
    case EventKind::batch_job:
      return "batch_job";
    case EventKind::harvest_task:
      return "harvest_task";
  }
  return "unknown";
}

std::string encode_event(const Event& e) {
  util::wire::Writer w;
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.u64(e.seq);
  switch (e.kind) {
    case EventKind::tick_advance:
    case EventKind::pause:
    case EventKind::resume:
      break;
    case EventKind::power_reading:
      w.u64(e.site);
      w.i64(e.tick);
      w.vec_f64(e.values);
      break;
    case EventKind::forecast_update:
      w.u64(e.site);
      w.u64(e.lead);
      w.i64(e.tick);
      w.vec_f64(e.values);
      break;
    case EventKind::vm_arrival:
      encode_app(w, e.app);
      break;
    case EventKind::vm_departure:
      w.i64(e.app_id);
      break;
    case EventKind::fault_report:
      encode_fault(w, e.fault);
      break;
    case EventKind::heartbeat:
    case EventKind::drain_site:
    case EventKind::undrain_site:
      w.u64(e.site);
      break;
    case EventKind::reconfigure:
      w.str(e.text);
      break;
    case EventKind::batch_job:
      encode_job(w, e.job);
      break;
    case EventKind::harvest_task:
      encode_task(w, e.task);
      break;
  }
  return w.take();
}

Event decode_event(std::string_view payload) {
  util::wire::Reader r{payload};
  const std::uint8_t kind = r.u8();
  if (!valid_kind(kind)) {
    throw std::runtime_error{"decode_event: unknown event kind " +
                             std::to_string(kind)};
  }
  Event e;
  e.kind = static_cast<EventKind>(kind);
  e.seq = r.u64();
  switch (e.kind) {
    case EventKind::tick_advance:
    case EventKind::pause:
    case EventKind::resume:
      break;
    case EventKind::power_reading:
      e.site = static_cast<std::size_t>(r.u64());
      e.tick = r.i64();
      e.values = r.vec_f64();
      break;
    case EventKind::forecast_update:
      e.site = static_cast<std::size_t>(r.u64());
      e.lead = static_cast<std::size_t>(r.u64());
      e.tick = r.i64();
      e.values = r.vec_f64();
      break;
    case EventKind::vm_arrival:
      e.app = decode_app(r);
      break;
    case EventKind::vm_departure:
      e.app_id = r.i64();
      break;
    case EventKind::fault_report:
      e.fault = decode_fault(r);
      break;
    case EventKind::heartbeat:
    case EventKind::drain_site:
    case EventKind::undrain_site:
      e.site = static_cast<std::size_t>(r.u64());
      break;
    case EventKind::reconfigure:
      e.text = r.str();
      break;
    case EventKind::batch_job:
      e.job = decode_job(r);
      break;
    case EventKind::harvest_task:
      e.task = decode_task(r);
      break;
  }
  if (!r.done()) {
    throw std::runtime_error{"decode_event: trailing bytes after " +
                             std::string{to_string(e.kind)} + " payload"};
  }
  return e;
}

}  // namespace vbatt::svc
