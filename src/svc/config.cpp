#include "vbatt/svc/config.h"

#include <stdexcept>

#include "vbatt/core/mip_scheduler.h"

namespace vbatt::svc {

namespace {

[[noreturn]] void bad_field(const std::string& field, const std::string& why) {
  throw std::runtime_error{"ServiceConfig: field '" + field + "' " + why};
}

bool parse_bool(const std::string& field, std::string_view value) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  bad_field(field, "must be true/false, got '" + std::string{value} + "'");
}

util::Tick parse_tick(const std::string& field, std::string_view value) {
  try {
    std::size_t used = 0;
    const std::string s{value};
    const long long v = std::stoll(s, &used);
    if (used != s.size()) throw std::invalid_argument{"trailing"};
    return static_cast<util::Tick>(v);
  } catch (const std::exception&) {
    bad_field(field, "must be an integer, got '" + std::string{value} + "'");
  }
}

}  // namespace

void validate_service_config(const ServiceConfig& config) {
  if (config.policy != "greedy" && config.policy != "mip" &&
      config.policy != "mip24h" && config.policy != "mippeak") {
    bad_field("policy", "must be greedy|mip|mip24h|mippeak, got '" +
                            config.policy + "'");
  }
  const HealthConfig& h = config.health;
  if (h.suspect_after <= 0) {
    bad_field("health.suspect_after",
              "must be > 0, got " + std::to_string(h.suspect_after));
  }
  if (h.dead_after <= h.suspect_after) {
    bad_field("health.dead_after",
              "must exceed health.suspect_after (" +
                  std::to_string(h.suspect_after) + "), got " +
                  std::to_string(h.dead_after));
  }
  if (h.recovering_ticks < 0) {
    bad_field("health.recovering_ticks",
              "must be >= 0, got " + std::to_string(h.recovering_ticks));
  }
  if (config.retry.max_attempts <= 0) {
    bad_field("retry.max_attempts",
              "must be > 0, got " + std::to_string(config.retry.max_attempts));
  }
  if (config.power_model.cores_per_server <= 0) {
    bad_field("power_model.cores_per_server",
              "must be > 0, got " +
                  std::to_string(config.power_model.cores_per_server));
  }
}

void apply_reconfigure(ServiceConfig& config, std::string_view spec) {
  // Stage the edit so a bad key/value leaves `config` untouched.
  ServiceConfig staged = config;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view pair = spec.substr(pos, end - pos);
    pos = end + 1;
    if (pair.empty()) continue;

    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error{
          "ServiceConfig: reconfigure entry '" + std::string{pair} +
          "' is not key=value"};
    }
    const std::string key{pair.substr(0, eq)};
    const std::string_view value = pair.substr(eq + 1);

    if (key == "health.enabled") {
      staged.health.enabled = parse_bool(key, value);
    } else if (key == "health.suspect_after") {
      staged.health.suspect_after = parse_tick(key, value);
    } else if (key == "health.dead_after") {
      staged.health.dead_after = parse_tick(key, value);
    } else if (key == "health.recovering_ticks") {
      staged.health.recovering_ticks = parse_tick(key, value);
    } else if (key == "replan_on_fault") {
      staged.replan_on_fault = parse_bool(key, value);
    } else if (key == "policy" || key == "noise_seed") {
      bad_field(key, "cannot be changed by reconfigure");
    } else {
      bad_field(key, "is not a reconfigurable field");
    }
  }
  validate_service_config(staged);
  config = std::move(staged);
}

std::unique_ptr<core::Scheduler> make_service_scheduler(
    const std::string& policy) {
  if (policy == "greedy") {
    return std::make_unique<core::GreedyScheduler>();
  }
  core::MipSchedulerConfig mip;
  if (policy == "mip24h") {
    mip = core::make_mip24h_config();
  } else if (policy == "mippeak") {
    mip = core::make_mip_peak_config();
  } else if (policy == "mip") {
    mip = core::make_mip_config();
  } else {
    bad_field("policy",
              "must be greedy|mip|mip24h|mippeak, got '" + policy + "'");
  }
  mip.warm_start = false;
  mip.reuse_basis = false;
  return std::make_unique<core::MipScheduler>(mip);
}

}  // namespace vbatt::svc
