// ControlPlane: the resident control-plane service.
//
// A single-threaded event-sourced state machine. Fleet state — the
// effective graph (StreamInjector), the simulation engine (SimStepper),
// the health machine, and the service's own bookkeeping — is a pure
// function of (initial graph, initial config, accepted event sequence).
// That single invariant buys everything this module promises:
//
//   * determinism: same events in, same bytes out, at any thread count;
//   * durability: persist the accepted events (event_log.h) and state can
//     always be rebuilt by replay;
//   * cheap snapshots: serialize the current state, recovery = snapshot +
//     replay of the log suffix, byte-identical to the uninterrupted run.
//
// Apply-then-log: submit() validates and applies the event first, assigns
// it the next sequence number, and only then appends it to the log. A
// rejected event therefore never reaches the log (replay cannot trip over
// it), and a crash between apply and append loses at most the one event
// whose effect was never made durable — the recovered state is exactly the
// logged prefix, which is a valid state of the machine.
//
// tick_advance is an event like any other: time only moves when the log
// says it does, which is what makes replay reproduce the interleaving of
// telemetry, faults, and ticks exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "vbatt/core/sim_stepper.h"
#include "vbatt/fault/stream.h"
#include "vbatt/svc/config.h"
#include "vbatt/svc/event.h"
#include "vbatt/svc/event_log.h"
#include "vbatt/svc/health.h"

namespace vbatt::svc {

inline constexpr std::string_view kSnapshotMagic{"VBSNAP01"};

/// Operator-facing status surface (the `status` command).
struct ServiceStatus {
  util::Tick tick = -1;  // last fully simulated tick
  std::uint64_t last_seq = 0;
  std::uint64_t applied_events = 0;
  bool paused = false;
  std::size_t pending_arrivals = 0;
  std::size_t pending_departures = 0;
  std::uint64_t accepted_faults = 0;
  std::uint64_t topology_epoch = 0;
  std::size_t sites_alive = 0;
  std::size_t sites_suspect = 0;
  std::size_t sites_dead = 0;
  std::size_t sites_recovering = 0;
  std::size_t sites_draining = 0;
  std::int64_t apps_placed = 0;
  std::int64_t planned_migrations = 0;
  std::int64_t fallback_activations = 0;

  std::string to_string() const;
};

class ControlPlane {
 public:
  /// Own a copy of `graph` (via the injector) and a scheduler built from
  /// `config.policy`. Throws if the config is invalid.
  ControlPlane(const core::VbGraph& graph, const ServiceConfig& config);

  // -- ingestion -----------------------------------------------------------

  /// Validate and apply one event; on success assign it the next sequence
  /// number, append it to the attached log (if any), and return the
  /// sequence number. Throws std::runtime_error on a rejected event —
  /// rejected events mutate nothing and are never logged.
  std::uint64_t submit(Event e);

  /// Re-apply logged records (recovery). Records with seq <= last_seq()
  /// are skipped (already covered by the snapshot); the rest are applied
  /// WITHOUT being re-logged. Returns the number applied.
  std::uint64_t replay(const std::vector<std::string>& records);

  /// Attach (or detach with nullptr) the durable log. Attached after
  /// replay during recovery so replayed events are not double-logged.
  void attach_log(std::unique_ptr<EventLogWriter> log);
  EventLogWriter* log() noexcept { return log_.get(); }

  // -- state ---------------------------------------------------------------

  util::Tick now() const noexcept { return stepper_->now(); }
  std::uint64_t last_seq() const noexcept { return seq_; }
  std::uint64_t applied_events() const noexcept { return applied_; }
  bool paused() const noexcept { return paused_; }
  std::size_t n_sites() const noexcept { return injector_->graph().n_sites(); }
  std::size_t n_ticks() const noexcept { return injector_->graph().n_ticks(); }
  const ServiceConfig& config() const noexcept { return config_; }
  const HealthTracker& health() const noexcept { return health_; }
  const fault::StreamInjector& injector() const noexcept { return *injector_; }
  /// Live result accumulators (finalized counters only in finish()).
  const core::SimResult& result() const noexcept { return stepper_->result(); }

  ServiceStatus status() const;

  /// Wall-clock milliseconds of each replan executed so far. Observability
  /// only — never serialized, never part of the deterministic state.
  const std::vector<double>& replan_latencies_ms() const noexcept {
    return replan_ms_;
  }

  /// Model-construction milliseconds inside each replan (the scheduler's
  /// own meter, so incremental builds show up as near-zero entries);
  /// index-aligned with replan_latencies_ms. Zero for schedulers that
  /// build no models. Observability only, like the latencies.
  const std::vector<double>& replan_build_latencies_ms() const noexcept {
    return replan_build_ms_;
  }

  /// Finalize and move the SimResult out (the stepper is spent; the
  /// service accepts no further events).
  core::SimResult finish();

  // -- durability ----------------------------------------------------------

  /// Serialize the complete logical state: magic, CRC-framed body holding
  /// seq/applied/flags, config, buffered events, health, injector, and
  /// stepper. Deterministic: equal states produce equal bytes.
  std::string snapshot_bytes() const;

  /// Inverse of snapshot_bytes(). Must be called on a freshly constructed
  /// service (no events applied) over the same graph; the snapshot's
  /// policy must match the constructed one (the scheduler is rebuilt, not
  /// serialized). Throws on corruption or mismatch.
  void restore_snapshot(std::string_view bytes);

 private:
  void apply(const Event& e);          // dispatch, validated, may throw
  void advance_one_tick();             // the tick_advance handler
  void check_site(std::size_t site, const char* what) const;

  ServiceConfig config_;
  std::unique_ptr<fault::StreamInjector> injector_;
  std::unique_ptr<core::Scheduler> scheduler_;
  core::FaultConfig fault_config_;
  std::unique_ptr<core::SimStepper> stepper_;
  HealthTracker health_;

  std::uint64_t seq_ = 0;      // last assigned sequence number
  std::uint64_t applied_ = 0;  // events applied (replay included)
  bool paused_ = false;
  bool replan_trigger_ = false;  // force a replan at the next tick

  /// Events buffered between ticks, applied in FIFO order at the next
  /// tick_advance (the stepper's arrival/departure phases).
  std::vector<workload::Application> pending_arrivals_;
  std::vector<std::int64_t> pending_departures_;

  std::unique_ptr<EventLogWriter> log_;
  std::vector<double> replan_ms_;
  std::vector<double> replan_build_ms_;
  bool finished_ = false;
};

}  // namespace vbatt::svc
