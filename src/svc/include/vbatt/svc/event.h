// Typed events for the resident control-plane service.
//
// The service is an event-sourced state machine: every externally visible
// state change enters as one Event, and the full history of accepted
// events (plus the initial graph and config) determines the state
// bit-exactly. That single property buys everything else in this module —
// the append-only log is just the accepted-event sequence, a snapshot is a
// serialization shortcut, and recovery is re-application.
//
// Events are flat and tagged rather than a class hierarchy: one struct
// carries the union of payload fields, and `kind` says which are live.
// This keeps encode/decode a single switch over fixed-width wire fields
// (see encode_event), with no dynamic dispatch in the hot ingest path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "vbatt/fault/schedule.h"
#include "vbatt/util/time.h"
#include "vbatt/workload/app.h"
#include "vbatt/workload/batch.h"

namespace vbatt::svc {

enum class EventKind : std::uint8_t {
  /// Advance the logical clock by one tick: run the full tick pipeline
  /// (health sweep, departures, replan, buffered arrivals, moves,
  /// enforcement). The only event that moves time.
  tick_advance = 1,
  /// Telemetry: actual normalized power for `site`, ticks
  /// [tick, tick + values.size()). Future ticks only.
  power_reading = 2,
  /// Telemetry: forecast series for `site`, lead index `lead`.
  forecast_update = 3,
  /// A new application (`app`) to place at the next tick_advance.
  vm_arrival = 4,
  /// Application `app_id` leaves at the next tick_advance.
  vm_departure = 5,
  /// A fault observed in the field (`fault`); start must be in the future.
  fault_report = 6,
  /// Liveness report from `site`; feeds the health state machine.
  heartbeat = 7,
  /// Operator: evacuate `site` gracefully (capacity to zero, no fault).
  drain_site = 8,
  /// Operator: restore a drained site.
  undrain_site = 9,
  /// Operator: freeze the clock (tick_advance becomes a no-op).
  pause = 10,
  /// Operator: thaw the clock.
  resume = 11,
  /// Operator: adjust runtime config; `text` holds "key=value;..." pairs
  /// (see apply_reconfigure in config.h).
  reconfigure = 12,
  /// A deadline batch job (`job`) submitted to the batch overlay; admitted
  /// at the first tick_advance whose tick reaches its arrival.
  batch_job = 13,
  /// A suspendable harvest task (`task`) submitted to the batch overlay.
  harvest_task = 14,
};

/// Wire/debug name of an event kind.
const char* to_string(EventKind kind) noexcept;

struct Event {
  EventKind kind = EventKind::tick_advance;
  /// Log sequence number, assigned by the service when the event is
  /// accepted (1-based; 0 = not yet accepted).
  std::uint64_t seq = 0;

  std::size_t site = 0;                 // power/forecast/heartbeat/drain
  std::size_t lead = 0;                 // forecast_update
  util::Tick tick = 0;                  // series start tick
  std::vector<double> values;           // power/forecast payload
  workload::Application app{};          // vm_arrival
  std::int64_t app_id = 0;              // vm_departure
  fault::FaultEvent fault{};            // fault_report
  std::string text;                     // reconfigure
  workload::DeadlineJob job{};          // batch_job
  workload::HarvestTask task{};         // harvest_task
};

/// Serialize to the log payload format (little-endian, fixed widths; only
/// the fields live for `kind` are written).
std::string encode_event(const Event& e);

/// Inverse of encode_event. Throws std::runtime_error on a malformed or
/// truncated payload.
Event decode_event(std::string_view payload);

}  // namespace vbatt::svc
