// Per-site liveness state machine driven by heartbeats.
//
//            silence > suspect_after        silence > dead_after
//   Alive ───────────────────────▶ Suspect ─────────────────────▶ Dead
//     ▲                              │                             │
//     │ heartbeat                    │ heartbeat                   │ heartbeat
//     │ (recovering_ticks            ▼                             ▼
//     │  of renewed beats)         Alive                       Recovering
//     └──────────────────────────────────────────────────────────────┘
//
// Transitions are surfaced to the service, which maps Dead -> admin_down
// (site zeroed, topology epoch bumped) and the Recovering -> Alive edge
// -> admin_up. The tracker itself never touches the fleet — it is a pure
// clock-and-counters machine, which keeps it trivially serializable and
// keeps the fault semantics in one place (the StreamInjector).
//
// Determinism: advance(now) visits sites in index order, so the transition
// list — and therefore the admin events and epoch bumps derived from it —
// is a pure function of the heartbeat history.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vbatt/svc/config.h"
#include "vbatt/util/time.h"

namespace vbatt::util::wire {
class Writer;
class Reader;
}  // namespace vbatt::util::wire

namespace vbatt::svc {

enum class SiteHealth : std::uint8_t {
  alive = 0,
  suspect = 1,
  dead = 2,
  recovering = 3,
};

const char* to_string(SiteHealth h) noexcept;

class HealthTracker {
 public:
  struct Transition {
    std::size_t site = 0;
    SiteHealth from = SiteHealth::alive;
    SiteHealth to = SiteHealth::alive;
  };

  /// All sites start Alive with an implicit heartbeat at tick -1, so a
  /// fleet that never beats starts decaying immediately once enabled.
  HealthTracker(std::size_t n_sites, const HealthConfig& config);

  /// Record a heartbeat observed at `now`. Suspect -> Alive instantly;
  /// Dead -> Recovering; Recovering beats accumulate toward Alive (the
  /// Recovering -> Alive edge itself fires in advance()). Returns the
  /// transition if one occurred.
  std::vector<Transition> heartbeat(std::size_t site, util::Tick now);

  /// Advance the clock to `now` (called once per tick, before the tick is
  /// simulated) and decay silent sites. Returns transitions in site order.
  std::vector<Transition> advance(util::Tick now);

  SiteHealth state(std::size_t site) const { return states_.at(site); }
  std::size_t n_sites() const noexcept { return states_.size(); }
  const HealthConfig& config() const noexcept { return config_; }

  /// Swap in new timeouts mid-run (reconfigure); takes effect at the next
  /// advance(). Existing states and heartbeat history are kept.
  void set_config(const HealthConfig& config) { config_ = config; }

  void save(util::wire::Writer& w) const;
  /// Restore into a tracker constructed with the same n_sites; the config
  /// is NOT serialized here (it lives in the ServiceConfig snapshot).
  void restore(util::wire::Reader& r);

 private:
  HealthConfig config_;
  std::vector<SiteHealth> states_;
  std::vector<util::Tick> last_beat_;
  /// Consecutive in-Recovering beats; Alive again once it reaches
  /// config_.recovering_ticks.
  std::vector<util::Tick> recover_streak_;
};

}  // namespace vbatt::svc
