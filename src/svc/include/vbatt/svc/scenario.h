// Scripted scenarios: the bridge between the batch engine and the service.
//
// make_scenario() builds the same (graph, apps, fault schedule) triple the
// CLI's `schedule` command builds, from the same generators and seeds.
// scenario_events() then flattens it into the event stream a telemetry
// plane would have produced live: full power/forecast series as upfront
// readings, fault reports in schedule order, then per tick the arrivals
// due that tick followed by a tick_advance (and optional heartbeats).
//
// Feeding that stream through a ControlPlane must produce the same
// SimResult as run_simulation() over the same scenario — the
// batch-equivalence contract pinned by test_svc_service and the testkit
// property svc.batch_diff. The stream deliberately exercises the telemetry
// path (the readings overwrite the baselines with identical values), so
// equivalence also proves set_power/set_forecast are lossless.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatt/core/simulation.h"
#include "vbatt/core/vb_graph.h"
#include "vbatt/fault/schedule.h"
#include "vbatt/svc/event.h"
#include "vbatt/workload/app.h"

namespace vbatt::svc {

struct ScenarioConfig {
  std::size_t days = 2;
  int n_solar = 4;
  int n_wind = 6;
  double region_km = 2500.0;
  bool storms = false;
  double cores_per_mw = 20.0;
  double apps_per_hour = 2.2;
  /// 0 = fault-free; otherwise a seeded chaos schedule of this intensity.
  double chaos_intensity = 0.0;
  std::uint64_t chaos_seed = 7;
  /// Batch overlay arrival rates (entities per hour); both 0 leaves
  /// Scenario::batch empty (the default, baseline-identical scenario).
  double batch_jobs_per_hour = 0.0;
  double batch_tasks_per_hour = 0.0;
  std::uint64_t batch_seed = 17;
};

struct Scenario {
  core::VbGraph graph;  // pristine, fault-free
  std::vector<workload::Application> apps;
  fault::FaultSchedule schedule;  // empty when chaos_intensity == 0
  /// Optional batch overlay workload; scenario_events() emits one
  /// batch_job / harvest_task submission per entity, and the batch driver
  /// passes it through ScenarioExtensions. Empty on a default scenario.
  workload::BatchWorkload batch;
};

Scenario make_scenario(const ScenarioConfig& config);

/// Flatten a scenario into the full event stream (sequence numbers unset —
/// submit() assigns them). `heartbeats` adds one beat per site per tick.
std::vector<Event> scenario_events(const Scenario& scenario,
                                   bool heartbeats = false);

/// Deterministic byte encoding of every field of a SimResult, ledger
/// included. Two results are equivalent iff their fingerprints are equal —
/// the service-vs-batch comparison and the recovery identity both hang off
/// this single definition of "same result".
std::string result_fingerprint(const core::SimResult& result);

}  // namespace vbatt::svc
