// Service configuration (snippet-2-style typed config with validation).
//
// Everything an operator can set is validated up front with an error that
// names the offending field — a resident service that silently runs with a
// nonsense timeout is worse than one that refuses to start. The same
// validator runs on construction, on every `reconfigure` event, and after
// snapshot restore, so no path can smuggle in an invalid state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "vbatt/core/fault_hooks.h"
#include "vbatt/core/scheduler.h"
#include "vbatt/core/simulation.h"
#include "vbatt/util/time.h"

namespace vbatt::svc {

/// Per-site liveness timeouts, in ticks without a heartbeat.
struct HealthConfig {
  /// Master switch: off (default) means no health tracking at all — no
  /// heartbeats expected, no site ever suspected.
  bool enabled = false;
  /// Alive -> Suspect after this many ticks of silence.
  util::Tick suspect_after = 4;
  /// Suspect -> Dead after this many ticks of silence (total, from the
  /// last heartbeat; must exceed suspect_after).
  util::Tick dead_after = 12;
  /// Recovering -> Alive after this many ticks of renewed heartbeats.
  util::Tick recovering_ticks = 2;
};

struct ServiceConfig {
  /// Scheduler policy: greedy | mip | mip24h | mippeak. The service always
  /// builds MIP schedulers with warm_start and reuse_basis off so a
  /// recovered scheduler is a pure function of the replayed fleet state.
  std::string policy = "mip";
  HealthConfig health{};
  /// Seed for forecast-noise child streams of streamed fault reports.
  std::uint64_t noise_seed = 7;
  /// Force an immediate replan on the tick after a fault report or a
  /// health-machine death (default: wait for the scheduler's cadence).
  bool replan_on_fault = false;
  core::MoveRetryPolicy retry{};
  core::SitePowerModel power_model{};
};

/// Reject invalid fields with a std::runtime_error naming the field
/// ("ServiceConfig: field 'health.dead_after' ...").
void validate_service_config(const ServiceConfig& config);

/// Apply a "key=value;key=value" reconfigure payload in place, then
/// re-validate. Reconfigurable keys: health.enabled, health.suspect_after,
/// health.dead_after, health.recovering_ticks, replan_on_fault. Unknown
/// keys and non-reconfigurable fields (policy, seeds) are rejected by
/// name. Throws without modifying `config` on any error.
void apply_reconfigure(ServiceConfig& config, std::string_view spec);

/// The scheduler the service runs: same policies as the CLI, but MIP warm
/// starts and basis reuse are disabled so a scheduler rebuilt during
/// recovery is a pure function of the replayed fleet state (see
/// sim_stepper.h on why that pins output identity). Used by both the
/// ControlPlane and the batch side of the equivalence check, so the two
/// cannot drift apart.
std::unique_ptr<core::Scheduler> make_service_scheduler(
    const std::string& policy);

}  // namespace vbatt::svc
