// Crash-recoverable append-only event log.
//
// File layout: an 8-byte magic ("VBEVLOG1"), then zero or more records of
//   u32 payload length | u32 CRC-32 of the payload | payload bytes
// all little-endian. Appends are flushed record-by-record, so after a
// crash the file is a clean prefix plus at most one torn record. The
// reader walks records until the first torn or CRC-failing one and drops
// everything from there — a torn tail is an expected artifact of dying
// mid-write, never an error. Recovery = snapshot + replay of the surviving
// records (service.h owns that protocol; this file only moves bytes).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace vbatt::svc {

inline constexpr std::string_view kEventLogMagic{"VBEVLOG1"};

class EventLogWriter {
 public:
  /// Open `path` for appending. `truncate` starts a fresh log (writing the
  /// magic); otherwise an existing log is continued as-is — the caller is
  /// responsible for having dropped any torn tail first (see
  /// read_event_log / truncate_event_log). Throws on I/O failure.
  EventLogWriter(const std::string& path, bool truncate);

  /// Append one framed record and flush it to the OS. Throws on failure.
  void append(std::string_view payload);

  std::uint64_t records_written() const noexcept { return records_; }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t records_ = 0;
};

struct EventLogContents {
  std::vector<std::string> records;
  /// Byte offset just past the last clean record (where appends resume).
  std::uint64_t clean_bytes = 0;
  /// Bytes dropped after the clean prefix (0 on a clean log).
  std::uint64_t dropped_bytes = 0;
  bool torn_tail() const noexcept { return dropped_bytes != 0; }
};

/// Read every clean record of `path`. Throws only on a missing file or a
/// bad magic — torn/corrupt tails are tolerated and reported, not fatal.
EventLogContents read_event_log(const std::string& path);

/// Cut `path` down to `clean_bytes` (drop a torn tail before reopening
/// the log for append). Throws on I/O failure.
void truncate_event_log(const std::string& path, std::uint64_t clean_bytes);

}  // namespace vbatt::svc
