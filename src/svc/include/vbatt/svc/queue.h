// Deterministic single-consumer event queue.
//
// The service is single-threaded by design: determinism comes from a total
// order over accepted events, and the cheapest way to guarantee a total
// order is to never have two consumers. Producers (stdin script, scenario
// feeder, tests) push; the service drains in FIFO order. No locks — if a
// concurrent producer ever appears it must marshal onto the service thread
// first, because interleaving at the queue would destroy replayability.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "vbatt/svc/event.h"

namespace vbatt::svc {

class EventQueue {
 public:
  void push(Event e) {
    q_.push_back(std::move(e));
    ++pushed_;
  }

  bool empty() const noexcept { return q_.empty(); }
  std::size_t size() const noexcept { return q_.size(); }
  /// Total events ever pushed (ingest-rate observability).
  std::uint64_t pushed() const noexcept { return pushed_; }

  /// FIFO pop; undefined on an empty queue (check empty() first).
  Event pop() {
    Event e = std::move(q_.front());
    q_.pop_front();
    return e;
  }

 private:
  std::deque<Event> q_;
  std::uint64_t pushed_ = 0;
};

}  // namespace vbatt::svc
