#include "vbatt/svc/health.h"

#include <stdexcept>

#include "vbatt/util/wire.h"

namespace vbatt::svc {

const char* to_string(SiteHealth h) noexcept {
  switch (h) {
    case SiteHealth::alive:
      return "alive";
    case SiteHealth::suspect:
      return "suspect";
    case SiteHealth::dead:
      return "dead";
    case SiteHealth::recovering:
      return "recovering";
  }
  return "unknown";
}

HealthTracker::HealthTracker(std::size_t n_sites, const HealthConfig& config)
    : config_{config},
      states_(n_sites, SiteHealth::alive),
      last_beat_(n_sites, util::Tick{-1}),
      recover_streak_(n_sites, 0) {}

std::vector<HealthTracker::Transition> HealthTracker::heartbeat(
    std::size_t site, util::Tick now) {
  std::vector<Transition> out;
  if (!config_.enabled) return out;
  if (site >= states_.size()) {
    throw std::runtime_error{"HealthTracker: heartbeat for site " +
                             std::to_string(site) + " out of range (fleet has " +
                             std::to_string(states_.size()) + " sites)"};
  }
  last_beat_[site] = now;
  switch (states_[site]) {
    case SiteHealth::alive:
      break;
    case SiteHealth::suspect:
      out.push_back({site, SiteHealth::suspect, SiteHealth::alive});
      states_[site] = SiteHealth::alive;
      break;
    case SiteHealth::dead:
      out.push_back({site, SiteHealth::dead, SiteHealth::recovering});
      states_[site] = SiteHealth::recovering;
      recover_streak_[site] = 1;
      break;
    case SiteHealth::recovering:
      ++recover_streak_[site];
      break;
  }
  return out;
}

std::vector<HealthTracker::Transition> HealthTracker::advance(util::Tick now) {
  std::vector<Transition> out;
  if (!config_.enabled) return out;
  for (std::size_t site = 0; site < states_.size(); ++site) {
    const util::Tick silence = now - last_beat_[site];
    switch (states_[site]) {
      case SiteHealth::alive:
        if (silence > config_.dead_after) {
          // A site can skip straight past Suspect when the timeouts are
          // reconfigured downward mid-silence; emit both edges so the
          // operator log never shows an impossible Alive -> Dead jump.
          out.push_back({site, SiteHealth::alive, SiteHealth::suspect});
          out.push_back({site, SiteHealth::suspect, SiteHealth::dead});
          states_[site] = SiteHealth::dead;
        } else if (silence > config_.suspect_after) {
          out.push_back({site, SiteHealth::alive, SiteHealth::suspect});
          states_[site] = SiteHealth::suspect;
        }
        break;
      case SiteHealth::suspect:
        if (silence > config_.dead_after) {
          out.push_back({site, SiteHealth::suspect, SiteHealth::dead});
          states_[site] = SiteHealth::dead;
        }
        break;
      case SiteHealth::dead:
        break;
      case SiteHealth::recovering:
        if (silence > config_.suspect_after) {
          // Went quiet again before finishing recovery: back to Dead.
          out.push_back({site, SiteHealth::recovering, SiteHealth::dead});
          states_[site] = SiteHealth::dead;
          recover_streak_[site] = 0;
        } else if (recover_streak_[site] >= config_.recovering_ticks) {
          out.push_back({site, SiteHealth::recovering, SiteHealth::alive});
          states_[site] = SiteHealth::alive;
          recover_streak_[site] = 0;
        }
        break;
    }
  }
  return out;
}

void HealthTracker::save(util::wire::Writer& w) const {
  w.u64(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    w.u8(static_cast<std::uint8_t>(states_[i]));
    w.i64(last_beat_[i]);
    w.i64(recover_streak_[i]);
  }
}

void HealthTracker::restore(util::wire::Reader& r) {
  const std::size_t n = static_cast<std::size_t>(r.u64());
  if (n != states_.size()) {
    throw std::runtime_error{"HealthTracker::restore: snapshot has " +
                             std::to_string(n) + " sites, tracker has " +
                             std::to_string(states_.size())};
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = r.u8();
    if (s > static_cast<std::uint8_t>(SiteHealth::recovering)) {
      throw std::runtime_error{
          "HealthTracker::restore: invalid site health state " +
          std::to_string(s)};
    }
    states_[i] = static_cast<SiteHealth>(s);
    last_beat_[i] = r.i64();
    recover_streak_[i] = r.i64();
  }
}

}  // namespace vbatt::svc
