#include "vbatt/svc/scenario.h"

#include "vbatt/energy/site.h"
#include "vbatt/util/time.h"
#include "vbatt/util/wire.h"

namespace vbatt::svc {

Scenario make_scenario(const ScenarioConfig& config) {
  energy::FleetConfig fleet_config;
  fleet_config.n_solar = config.n_solar;
  fleet_config.n_wind = config.n_wind;
  fleet_config.region_km = config.region_km;
  fleet_config.enable_storms = config.storms;
  const std::size_t n_ticks = 96 * config.days;
  const energy::Fleet fleet =
      energy::generate_fleet(fleet_config, util::TimeAxis{15}, n_ticks);

  core::VbGraphConfig graph_config;
  graph_config.cores_per_mw = config.cores_per_mw;

  workload::AppGeneratorConfig app_config;
  app_config.apps_per_hour = config.apps_per_hour;

  Scenario scenario{core::VbGraph{fleet, graph_config},
                    workload::generate_apps(app_config, util::TimeAxis{15},
                                            n_ticks),
                    {}};
  if (config.chaos_intensity > 0.0) {
    fault::ChaosConfig chaos;
    chaos.intensity = config.chaos_intensity;
    scenario.schedule =
        fault::make_chaos_schedule(scenario.graph, chaos, config.chaos_seed);
  }
  if (config.batch_jobs_per_hour > 0.0 || config.batch_tasks_per_hour > 0.0) {
    workload::BatchGeneratorConfig batch_config;
    batch_config.jobs_per_hour = config.batch_jobs_per_hour;
    batch_config.tasks_per_hour = config.batch_tasks_per_hour;
    batch_config.seed = config.batch_seed;
    scenario.batch =
        workload::generate_batch(batch_config, util::TimeAxis{15}, n_ticks);
  }
  return scenario;
}

std::vector<Event> scenario_events(const Scenario& scenario, bool heartbeats) {
  std::vector<Event> events;
  const std::size_t n_sites = scenario.graph.n_sites();
  const std::size_t n_ticks = scenario.graph.n_ticks();

  // Telemetry upfront: stream every site's full power and forecast series
  // as readings starting at tick 0 (the service starts at now = -1).
  for (std::size_t s = 0; s < n_sites; ++s) {
    const core::VbSite& site = scenario.graph.sites()[s];
    Event power;
    power.kind = EventKind::power_reading;
    power.site = s;
    power.tick = 0;
    power.values = site.power_norm;
    events.push_back(std::move(power));
    for (std::size_t lead = 0; lead < site.forecast_norm.size(); ++lead) {
      Event fc;
      fc.kind = EventKind::forecast_update;
      fc.site = s;
      fc.lead = lead;
      fc.tick = 0;
      fc.values = site.forecast_norm[lead];
      events.push_back(std::move(fc));
    }
  }

  // Fault reports in schedule order (same order FaultInjector consumes the
  // schedule, so forecast-noise child streams line up).
  for (const fault::FaultEvent& f : scenario.schedule.events) {
    Event e;
    e.kind = EventKind::fault_report;
    e.fault = f;
    events.push_back(std::move(e));
  }

  // Batch overlay submissions upfront (jobs then tasks, definition order).
  // The overlay admits each entity when the clock reaches its arrival, so
  // submission time is immaterial — upfront matches how the batch driver
  // hands run_simulation the whole workload.
  for (const workload::DeadlineJob& job : scenario.batch.jobs) {
    Event e;
    e.kind = EventKind::batch_job;
    e.job = job;
    events.push_back(std::move(e));
  }
  for (const workload::HarvestTask& task : scenario.batch.tasks) {
    Event e;
    e.kind = EventKind::harvest_task;
    e.task = task;
    events.push_back(std::move(e));
  }

  // Per tick: the arrivals due that tick (apps are generated in arrival
  // order), optional heartbeats, then the tick itself.
  std::size_t next_app = 0;
  for (std::size_t t = 0; t < n_ticks; ++t) {
    const auto tick = static_cast<util::Tick>(t);
    while (next_app < scenario.apps.size() &&
           scenario.apps[next_app].arrival <= tick) {
      Event e;
      e.kind = EventKind::vm_arrival;
      e.app = scenario.apps[next_app];
      events.push_back(std::move(e));
      ++next_app;
    }
    if (heartbeats) {
      for (std::size_t s = 0; s < n_sites; ++s) {
        Event beat;
        beat.kind = EventKind::heartbeat;
        beat.site = s;
        events.push_back(std::move(beat));
      }
    }
    Event advance;
    advance.kind = EventKind::tick_advance;
    events.push_back(std::move(advance));
  }
  return events;
}

std::string result_fingerprint(const core::SimResult& result) {
  util::wire::Writer w;
  w.i64(result.completed_ticks);
  w.i64(result.apps_placed);
  w.i64(result.planned_migrations);
  w.i64(result.forced_migrations);
  w.i64(result.displaced_stable_core_ticks);
  w.i64(result.paused_degradable_vm_ticks);
  w.i64(result.degradable_active_vm_ticks);
  w.f64(result.energy_mwh);
  w.i64(result.faulted_site_ticks);
  w.i64(result.retried_moves);
  w.i64(result.abandoned_moves);
  w.i64(result.fallback_activations);
  w.i64(result.stable_vm_downtime_ticks);
  w.vec_f64(result.moved_gb);
  w.vec_f64(result.energy_mwh_per_tick);
  w.vec_i64(result.displaced_stable_cores_per_tick);
  w.u64(result.displaced_by_app.size());
  for (const auto& [app_id, core_ticks] : result.displaced_by_app) {
    w.i64(app_id);
    w.i64(core_ticks);
  }
  const net::MigrationLedger& ledger = result.ledger;
  w.u64(ledger.n_sites());
  for (std::size_t s = 0; s < ledger.n_sites(); ++s) {
    w.vec_f64(ledger.out_series(s));
    w.vec_f64(ledger.in_series(s));
  }
  // Scenario-extension counters (all zero on a default run, so default
  // fingerprints differ from the pre-extension format only by these
  // constant trailing bytes).
  const workload::BatchStats& batch = result.batch;
  w.i64(batch.deadline_jobs_completed);
  w.i64(batch.deadline_jobs_missed);
  w.i64(batch.deadline_work_core_ticks);
  w.i64(batch.harvest_offered_core_ticks);
  w.i64(batch.harvest_goodput_core_ticks);
  w.i64(batch.harvest_lost_core_ticks);
  w.i64(batch.harvest_suspended_core_ticks);
  w.i64(batch.harvest_warmup_core_ticks);
  w.i64(batch.harvest_tasks_completed);
  w.i64(batch.harvest_deadline_misses);
  w.i64(batch.suspend_episodes);
  w.i64(batch.resume_episodes);
  w.i64(batch.overlay_active_core_ticks);
  w.f64(result.cost_usd);
  w.vec_f64(result.cost_usd_per_tick);
  w.f64(result.carbon_kg);
  w.vec_f64(result.carbon_kg_per_tick);
  return w.take();
}

}  // namespace vbatt::svc
