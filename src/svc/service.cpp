#include "vbatt/svc/service.h"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "vbatt/core/mip_scheduler.h"
#include "vbatt/core/scheduler.h"
#include "vbatt/util/wire.h"

namespace vbatt::svc {

namespace {

constexpr std::uint64_t kSnapshotVersion = 1;

[[noreturn]] void reject(const std::string& what) {
  throw std::runtime_error{"ControlPlane: " + what};
}

void save_config(util::wire::Writer& w, const ServiceConfig& c) {
  w.str(c.policy);
  w.u8(c.health.enabled ? 1 : 0);
  w.i64(c.health.suspect_after);
  w.i64(c.health.dead_after);
  w.i64(c.health.recovering_ticks);
  w.u64(c.noise_seed);
  w.u8(c.replan_on_fault ? 1 : 0);
  w.i64(c.retry.base_backoff_ticks);
  w.i64(c.retry.max_backoff_ticks);
  w.i64(c.retry.max_attempts);
  w.i64(c.power_model.cores_per_server);
  w.f64(c.power_model.server_idle_watts);
  w.f64(c.power_model.watts_per_active_core);
}

ServiceConfig load_config(util::wire::Reader& r) {
  ServiceConfig c;
  c.policy = r.str();
  c.health.enabled = r.u8() != 0;
  c.health.suspect_after = r.i64();
  c.health.dead_after = r.i64();
  c.health.recovering_ticks = r.i64();
  c.noise_seed = r.u64();
  c.replan_on_fault = r.u8() != 0;
  c.retry.base_backoff_ticks = r.i64();
  c.retry.max_backoff_ticks = r.i64();
  c.retry.max_attempts = static_cast<int>(r.i64());
  c.power_model.cores_per_server = static_cast<int>(r.i64());
  c.power_model.server_idle_watts = r.f64();
  c.power_model.watts_per_active_core = r.f64();
  return c;
}

}  // namespace

std::string ServiceStatus::to_string() const {
  std::ostringstream out;
  out << "tick=" << tick << " seq=" << last_seq << " applied=" << applied_events
      << " paused=" << (paused ? "yes" : "no") << "\n"
      << "health: alive=" << sites_alive << " suspect=" << sites_suspect
      << " dead=" << sites_dead << " recovering=" << sites_recovering
      << " draining=" << sites_draining << "\n"
      << "faults: accepted=" << accepted_faults
      << " topology_epoch=" << topology_epoch << "\n"
      << "fleet: apps_placed=" << apps_placed
      << " planned_migrations=" << planned_migrations
      << " fallback_activations=" << fallback_activations
      << " pending_arrivals=" << pending_arrivals
      << " pending_departures=" << pending_departures;
  return out.str();
}

ControlPlane::ControlPlane(const core::VbGraph& graph,
                           const ServiceConfig& config)
    : config_{(validate_service_config(config), config)},
      injector_{std::make_unique<fault::StreamInjector>(graph,
                                                        config.noise_seed)},
      scheduler_{make_service_scheduler(config.policy)},
      fault_config_{injector_.get(), config.retry},
      stepper_{std::make_unique<core::SimStepper>(
          injector_->graph(), *scheduler_, config.power_model,
          &fault_config_)},
      health_{graph.n_sites(), config.health} {}

std::uint64_t ControlPlane::submit(Event e) {
  if (finished_) reject("service already finished");
  apply(e);  // throws on reject, before any sequence number is burned
  e.seq = ++seq_;
  ++applied_;
  if (log_) log_->append(encode_event(e));
  return e.seq;
}

std::uint64_t ControlPlane::replay(const std::vector<std::string>& records) {
  if (finished_) reject("service already finished");
  std::uint64_t n = 0;
  for (const std::string& record : records) {
    const Event e = decode_event(record);
    if (e.seq <= seq_) continue;  // covered by the snapshot
    if (e.seq != seq_ + 1) {
      reject("replay: sequence gap (expected " + std::to_string(seq_ + 1) +
             ", log has " + std::to_string(e.seq) + ")");
    }
    apply(e);
    seq_ = e.seq;
    ++applied_;
    ++n;
  }
  return n;
}

void ControlPlane::attach_log(std::unique_ptr<EventLogWriter> log) {
  log_ = std::move(log);
}

void ControlPlane::check_site(std::size_t site, const char* what) const {
  if (site >= n_sites()) {
    reject(std::string{what} + ": site " + std::to_string(site) +
           " out of range (fleet has " + std::to_string(n_sites()) +
           " sites)");
  }
}

void ControlPlane::apply(const Event& e) {
  switch (e.kind) {
    case EventKind::tick_advance:
      advance_one_tick();
      break;
    case EventKind::power_reading:
      injector_->set_power(e.site, e.tick, e.values, now());
      break;
    case EventKind::forecast_update:
      injector_->set_forecast(e.site, e.lead, e.tick, e.values, now());
      break;
    case EventKind::vm_arrival: {
      const workload::Application& a = e.app;
      if (a.shape.cores <= 0) {
        reject("vm_arrival: field 'shape.cores' not positive");
      }
      if (a.n_stable < 0 || a.n_degradable < 0 || a.total_vms() <= 0) {
        reject("vm_arrival: vm counts must be non-negative and sum > 0");
      }
      if (a.arrival > now() + 1) {
        reject("vm_arrival: arrival tick " + std::to_string(a.arrival) +
               " posted too early (next tick is " + std::to_string(now() + 1) +
               ")");
      }
      pending_arrivals_.push_back(a);
      break;
    }
    case EventKind::vm_departure:
      pending_departures_.push_back(e.app_id);
      break;
    case EventKind::fault_report:
      injector_->inject(e.fault, now());
      if (config_.replan_on_fault) replan_trigger_ = true;
      break;
    case EventKind::heartbeat:
      check_site(e.site, "heartbeat");
      // Stamped at the tick about to be simulated: a beat that arrives
      // between tick t and t+1 proves liveness *for* t+1.
      health_.heartbeat(e.site, now() + 1);
      break;
    case EventKind::drain_site:
      check_site(e.site, "drain_site");
      injector_->drain(e.site, now() + 1);
      break;
    case EventKind::undrain_site:
      check_site(e.site, "undrain_site");
      injector_->undrain(e.site, now() + 1);
      break;
    case EventKind::pause:
      paused_ = true;
      break;
    case EventKind::resume:
      paused_ = false;
      break;
    case EventKind::reconfigure:
      apply_reconfigure(config_, e.text);
      health_.set_config(config_.health);
      break;
    case EventKind::batch_job: {
      const workload::DeadlineJob& j = e.job;
      if (j.cores <= 0 || j.work_core_ticks <= 0) {
        reject("batch_job: cores and work_core_ticks must be positive");
      }
      if (j.arrival < 0 || j.deadline <= j.arrival) {
        reject("batch_job: deadline must follow a non-negative arrival");
      }
      stepper_->submit_batch_job(j);
      break;
    }
    case EventKind::harvest_task: {
      const workload::HarvestTask& t = e.task;
      if (t.cores <= 0 || t.work_core_ticks <= 0) {
        reject("harvest_task: cores and work_core_ticks must be positive");
      }
      if (t.arrival < 0 || t.deadline <= t.arrival) {
        reject("harvest_task: deadline must follow a non-negative arrival");
      }
      if (t.resume_latency_ticks < 0) {
        reject("harvest_task: resume_latency_ticks must be non-negative");
      }
      stepper_->submit_harvest_task(t);
      break;
    }
  }
}

void ControlPlane::advance_one_tick() {
  if (paused_) {
    reject("tick_advance while paused (resume first)");
  }
  const util::Tick t = now() + 1;
  if (static_cast<std::size_t>(t) >= n_ticks()) {
    reject("tick_advance past the horizon (" + std::to_string(n_ticks()) +
           " ticks)");
  }

  // Health decays before the tick is simulated, so a death at t zeroes the
  // site for t itself (the admin window opens at t).
  for (const HealthTracker::Transition& tr : health_.advance(t)) {
    if (tr.to == SiteHealth::dead) {
      injector_->admin_down(tr.site, t);
      if (config_.replan_on_fault) replan_trigger_ = true;
    } else if (tr.from == SiteHealth::recovering &&
               tr.to == SiteHealth::alive) {
      injector_->admin_up(tr.site, t);
    }
  }

  stepper_->begin_tick(t);
  stepper_->process_departures();
  for (const std::int64_t id : pending_departures_) stepper_->depart_now(id);
  pending_departures_.clear();

  const util::Tick period = scheduler_->replan_period_ticks();
  const bool cadence = period > 0 && t > 0 && t % period == 0;
  if (replan_trigger_ || cadence) {
    const double build0 = scheduler_->model_build_ms();
    const auto t0 = std::chrono::steady_clock::now();
    if (cadence && !replan_trigger_) {
      stepper_->maybe_replan();
    } else {
      stepper_->force_replan();
    }
    replan_trigger_ = false;
    const auto t1 = std::chrono::steady_clock::now();
    replan_ms_.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    // Model construction inside this replan, from the scheduler's own
    // cumulative meter: solve time is replan_ms - build.
    replan_build_ms_.push_back(scheduler_->model_build_ms() - build0);
  }

  for (const workload::Application& app : pending_arrivals_) {
    stepper_->arrive(app);
  }
  pending_arrivals_.clear();

  stepper_->execute_due_moves();
  stepper_->enforce_and_meter();
}

ServiceStatus ControlPlane::status() const {
  ServiceStatus s;
  s.tick = now();
  s.last_seq = seq_;
  s.applied_events = applied_;
  s.paused = paused_;
  s.pending_arrivals = pending_arrivals_.size();
  s.pending_departures = pending_departures_.size();
  s.accepted_faults = injector_->accepted_events();
  s.topology_epoch = injector_->topology_epoch();
  for (std::size_t i = 0; i < n_sites(); ++i) {
    switch (health_.state(i)) {
      case SiteHealth::alive:
        ++s.sites_alive;
        break;
      case SiteHealth::suspect:
        ++s.sites_suspect;
        break;
      case SiteHealth::dead:
        ++s.sites_dead;
        break;
      case SiteHealth::recovering:
        ++s.sites_recovering;
        break;
    }
    if (injector_->is_draining(i)) ++s.sites_draining;
  }
  s.apps_placed = stepper_->result().apps_placed;
  s.planned_migrations = stepper_->result().planned_migrations;
  s.fallback_activations = stepper_->fallback_activations();
  return s;
}

core::SimResult ControlPlane::finish() {
  if (finished_) reject("service already finished");
  finished_ = true;
  return stepper_->take_result();
}

std::string ControlPlane::snapshot_bytes() const {
  if (finished_) reject("service already finished");
  util::wire::Writer body;
  body.u64(kSnapshotVersion);
  body.u64(seq_);
  body.u64(applied_);
  body.u8(paused_ ? 1 : 0);
  body.u8(replan_trigger_ ? 1 : 0);
  save_config(body, config_);
  body.u64(pending_arrivals_.size());
  for (const workload::Application& a : pending_arrivals_) {
    body.i64(a.app_id);
    body.i64(a.arrival);
    body.i64(a.lifetime_ticks);
    body.i64(a.shape.cores);
    body.f64(a.shape.memory_gb);
    body.i64(a.n_stable);
    body.i64(a.n_degradable);
  }
  body.vec_i64(pending_departures_);
  health_.save(body);
  injector_->save(body);
  stepper_->save(body);

  util::wire::Writer out;
  out.bytes(kSnapshotMagic.data(), kSnapshotMagic.size());
  const std::string& payload = body.data();
  out.u32(static_cast<std::uint32_t>(payload.size()));
  out.u32(util::wire::crc32(payload.data(), payload.size()));
  out.bytes(payload.data(), payload.size());
  return out.take();
}

void ControlPlane::restore_snapshot(std::string_view bytes) {
  if (applied_ != 0 || seq_ != 0) {
    reject("restore_snapshot requires a freshly constructed service");
  }
  if (bytes.size() < kSnapshotMagic.size() + 8 ||
      bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    reject("restore_snapshot: not a snapshot (bad magic)");
  }
  util::wire::Reader frame{bytes.substr(kSnapshotMagic.size())};
  const std::uint32_t length = frame.u32();
  const std::uint32_t crc = frame.u32();
  const std::string_view payload =
      bytes.substr(kSnapshotMagic.size() + 8);
  if (payload.size() != length) {
    reject("restore_snapshot: truncated snapshot (body " +
           std::to_string(payload.size()) + " bytes, header says " +
           std::to_string(length) + ")");
  }
  if (util::wire::crc32(payload.data(), payload.size()) != crc) {
    reject("restore_snapshot: CRC mismatch (corrupt snapshot)");
  }

  util::wire::Reader r{payload};
  const std::uint64_t version = r.u64();
  if (version != kSnapshotVersion) {
    reject("restore_snapshot: unsupported snapshot version " +
           std::to_string(version));
  }
  seq_ = r.u64();
  applied_ = r.u64();
  paused_ = r.u8() != 0;
  replan_trigger_ = r.u8() != 0;
  ServiceConfig snap_config = load_config(r);
  validate_service_config(snap_config);
  if (snap_config.policy != config_.policy) {
    reject("restore_snapshot: snapshot policy '" + snap_config.policy +
           "' does not match constructed policy '" + config_.policy + "'");
  }
  config_ = std::move(snap_config);
  health_.set_config(config_.health);

  const std::uint64_t n_arrivals = r.u64();
  pending_arrivals_.clear();
  pending_arrivals_.reserve(static_cast<std::size_t>(n_arrivals));
  for (std::uint64_t i = 0; i < n_arrivals; ++i) {
    workload::Application a;
    a.app_id = r.i64();
    a.arrival = r.i64();
    a.lifetime_ticks = r.i64();
    a.shape.cores = static_cast<int>(r.i64());
    a.shape.memory_gb = r.f64();
    a.n_stable = static_cast<int>(r.i64());
    a.n_degradable = static_cast<int>(r.i64());
    pending_arrivals_.push_back(a);
  }
  pending_departures_ = r.vec_i64();
  health_.restore(r);
  injector_->restore(r);
  stepper_->restore(r);
  if (!r.done()) {
    reject("restore_snapshot: trailing bytes after snapshot body");
  }
}

}  // namespace vbatt::svc
