#include "vbatt/svc/event_log.h"

#include <filesystem>
#include <stdexcept>

#include "vbatt/util/wire.h"

namespace vbatt::svc {

EventLogWriter::EventLogWriter(const std::string& path, bool truncate)
    : path_{path} {
  const auto mode = std::ios::binary |
                    (truncate ? std::ios::trunc : std::ios::app);
  out_.open(path, mode);
  if (!out_) {
    throw std::runtime_error{"EventLogWriter: cannot open " + path};
  }
  if (truncate) {
    out_.write(kEventLogMagic.data(),
               static_cast<std::streamsize>(kEventLogMagic.size()));
    out_.flush();
    if (!out_) {
      throw std::runtime_error{"EventLogWriter: cannot write magic to " +
                               path};
    }
  }
}

void EventLogWriter::append(std::string_view payload) {
  util::wire::Writer frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(util::wire::crc32(payload.data(), payload.size()));
  const std::string& header = frame.data();
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error{"EventLogWriter: append failed on " + path_};
  }
  ++records_;
}

EventLogContents read_event_log(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{"read_event_log: cannot open " + path};
  }
  std::string bytes{std::istreambuf_iterator<char>{in},
                    std::istreambuf_iterator<char>{}};
  if (bytes.size() < kEventLogMagic.size() ||
      std::string_view{bytes}.substr(0, kEventLogMagic.size()) !=
          kEventLogMagic) {
    throw std::runtime_error{"read_event_log: " + path +
                             " is not an event log (bad magic)"};
  }

  EventLogContents contents;
  std::size_t pos = kEventLogMagic.size();
  contents.clean_bytes = pos;
  while (pos + 8 <= bytes.size()) {
    util::wire::Reader header{std::string_view{bytes}.substr(pos, 8)};
    const std::uint32_t length = header.u32();
    const std::uint32_t crc = header.u32();
    if (pos + 8 + length > bytes.size()) break;  // torn final record
    const std::string_view payload =
        std::string_view{bytes}.substr(pos + 8, length);
    if (util::wire::crc32(payload.data(), payload.size()) != crc) {
      break;  // corrupt record: drop it and everything after
    }
    contents.records.emplace_back(payload);
    pos += 8 + length;
    contents.clean_bytes = pos;
  }
  contents.dropped_bytes = bytes.size() - contents.clean_bytes;
  return contents;
}

void truncate_event_log(const std::string& path, std::uint64_t clean_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, clean_bytes, ec);
  if (ec) {
    throw std::runtime_error{"truncate_event_log: cannot truncate " + path +
                             ": " + ec.message()};
  }
}

}  // namespace vbatt::svc
