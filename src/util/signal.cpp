#include "vbatt/util/signal.h"

#include <atomic>
#include <csignal>

namespace vbatt::util {

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<int> g_signal{0};

void on_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  g_shutdown.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_handlers() {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

bool shutdown_requested() noexcept {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() noexcept {
  g_shutdown.store(true, std::memory_order_relaxed);
}

void reset_shutdown_flag() noexcept {
  g_shutdown.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
}

int shutdown_signal() noexcept {
  return g_signal.load(std::memory_order_relaxed);
}

}  // namespace vbatt::util
