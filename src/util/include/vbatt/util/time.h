// Discrete simulation time model.
//
// The whole system runs on a fixed-width tick grid (15 minutes by default,
// matching the granularity of the ELIA power dataset the paper analyzes).
// A `Tick` is an index on that grid; `TimeAxis` converts between ticks and
// wall-clock-like quantities (hours, days).
#pragma once

#include <cstdint>
#include <stdexcept>

namespace vbatt::util {

/// Index of one simulation step on a fixed-width time grid.
using Tick = std::int64_t;

/// A uniform time grid: `minutes_per_tick` wide steps starting at tick 0.
///
/// The axis is a value type; everything that consumes a power trace or a
/// workload trace carries (a copy of) the axis that produced it so that
/// mixed-resolution bugs are caught at the API boundary.
class TimeAxis {
 public:
  /// Default grid: 15-minute ticks (the ELIA dataset resolution).
  constexpr TimeAxis() noexcept = default;

  constexpr explicit TimeAxis(int minutes_per_tick)
      : minutes_per_tick_{minutes_per_tick} {
    if (minutes_per_tick <= 0 || 1440 % minutes_per_tick != 0) {
      throw std::invalid_argument{"minutes_per_tick must divide a day"};
    }
  }

  constexpr int minutes_per_tick() const noexcept { return minutes_per_tick_; }

  constexpr Tick ticks_per_hour() const noexcept {
    return 60 / minutes_per_tick_;
  }
  constexpr Tick ticks_per_day() const noexcept {
    return 1440 / minutes_per_tick_;
  }

  /// Hours since tick 0, as a real number.
  constexpr double hours(Tick t) const noexcept {
    return static_cast<double>(t) * minutes_per_tick_ / 60.0;
  }
  /// Days since tick 0, as a real number.
  constexpr double days(Tick t) const noexcept { return hours(t) / 24.0; }

  /// Hour-of-day in [0, 24) for tick `t`.
  constexpr double hour_of_day(Tick t) const noexcept {
    const Tick per_day = ticks_per_day();
    const Tick in_day = ((t % per_day) + per_day) % per_day;
    return hours(in_day);
  }
  /// Day index (0-based) containing tick `t` (floor for negative ticks too).
  constexpr std::int64_t day_index(Tick t) const noexcept {
    const Tick per_day = ticks_per_day();
    return (t >= 0) ? t / per_day : -(((-t) + per_day - 1) / per_day);
  }

  constexpr Tick from_hours(double h) const noexcept {
    return static_cast<Tick>(h * 60.0 / minutes_per_tick_);
  }
  constexpr Tick from_days(double d) const noexcept {
    return from_hours(d * 24.0);
  }

  friend constexpr bool operator==(const TimeAxis&, const TimeAxis&) = default;

 private:
  int minutes_per_tick_{15};
};

}  // namespace vbatt::util
