// Fixed-size thread pool and a deterministic parallel_for.
//
// The scheduler hot path (clique ranking, per-site capacity refresh) and
// the sharded fleet engine fan independent work items across cores.
// Determinism is part of the contract: parallel_for cuts [0, n) into
// contiguous chunks and every index is executed exactly once, with every
// item writing only its own pre-assigned output slot — so parallel
// results are bit-identical to a serial run. The thread count (and which
// thread happens to claim which chunk) changes wall-clock time, never
// the answer.
//
// Dispatch is built for barrier-heavy callers: a parallel_for publishes
// one job descriptor and a packed atomic claim word; the caller and any
// awake workers claim chunks with a CAS each, the caller participating
// until no chunks remain. Workers spin briefly between jobs before
// parking on a condition variable; a publisher wakes at most one parked
// worker and claimants chain further wakeups only while unclaimed chunks
// remain. On a single-core host the caller typically claims every chunk
// itself and a barrier costs little more than the CAS loop — the pooled
// path stays within a few percent of serial instead of paying a
// wake/park round-trip per chunk.
//
// Sizing: ThreadPool::shared() holds `default_threads() - 1` workers
// (the calling thread participates as the extra lane). default_threads()
// honors the VBATT_THREADS environment variable; VBATT_THREADS=1 (or a
// zero-worker pool) is the serial fallback — the body runs inline on the
// caller with no synchronization at all.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vbatt::util {

class ThreadPool {
 public:
  /// Spawn `n_workers` worker threads (0 = serial pool, no threads).
  explicit ThreadPool(std::size_t n_workers);

  /// Drains every queued task, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (the caller adds one more lane during
  /// parallel_for).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a fire-and-forget task. Runs inline when the pool has no
  /// workers. Exception-safe: a task that throws never terminates the
  /// process — the first exception is captured and rethrown by the next
  /// drain() (mirroring parallel_for's caller-rethrow contract).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished, then rethrow
  /// the first exception any of them threw (clearing it). Safe to call
  /// repeatedly; a no-op on an idle pool. Throws std::logic_error when
  /// called from one of this pool's own workers (it would deadlock:
  /// running_ counts the caller itself).
  void drain();

  /// Run `body(begin, end)` over contiguous chunks of [0, n). The calling
  /// thread claims and executes chunks alongside the workers; returns
  /// after every chunk finished. The first exception thrown by any chunk
  /// is rethrown on the caller (remaining chunks still complete). With no
  /// workers (or n too small to split) the body runs inline as
  /// body(0, n) — the serial fallback. Concurrent parallel_for calls from
  /// different external threads are serialized on an internal gate.
  /// Throws std::logic_error when called from one of this pool's own
  /// workers: the nested job would wait on lanes that are already
  /// occupied, a silent deadlock once every worker nests. Nested
  /// parallelism needs a separate pool (or a serial inner loop).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Intended total parallelism: VBATT_THREADS if set (clamped to >= 1),
  /// otherwise std::thread::hardware_concurrency().
  static std::size_t default_threads();

  /// Parse a VBATT_THREADS-style value; nullptr/empty/garbage fall back
  /// to `fallback`. Exposed for tests.
  static std::size_t parse_threads(const char* value, std::size_t fallback);

  /// Process-wide pool sized from default_threads() (that many lanes
  /// including the caller). Serial when default_threads() <= 1.
  static ThreadPool& shared();

 private:
  void worker_loop();
  bool run_one_task();
  bool run_job_chunks();
  bool try_claim(std::size_t& chunk);
  void run_chunk(std::size_t chunk);
  bool job_available() const;

  // Submit/drain machinery: a mutex-guarded task queue, as in the
  // original design (submissions are rare and latency-insensitive).
  std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> tasks_;
  /// Lock-free mirror of tasks_.size() so spinning workers can poll the
  /// queue without touching mutex_.
  std::atomic<std::size_t> pending_tasks_{0};
  std::atomic<bool> stopping_{false};
  /// Tasks popped from the queue but still running (guarded by mutex_).
  std::size_t running_ = 0;
  /// Workers parked on ready_ (modified under mutex_; read relaxed as a
  /// wake heuristic — a stale read costs parallelism, never correctness:
  /// the publisher always completes its own job).
  std::atomic<int> sleepers_{0};
  /// First exception thrown by a submitted task; rethrown by drain().
  std::exception_ptr submit_error_;

  // parallel_for job slot. One job is in flight at a time (job_gate_
  // serializes publishers); the descriptor below is written by the
  // publisher before the release-store of job_word_ and read by workers
  // after their acquire CAS on it.
  std::mutex job_gate_;
  /// Packed [unused:40][n_chunks:12][next:12]. A claim CASes next+1 while
  /// next < n_chunks; once all chunks are claimed the word is inert until
  /// the next publish.
  std::atomic<std::uint64_t> job_word_{0};
  const std::function<void(std::size_t, std::size_t)>* job_body_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunks_ = 0;
  std::atomic<std::size_t> job_done_{0};
  std::mutex job_error_mutex_;
  std::exception_ptr job_error_;
  std::mutex job_wait_mutex_;
  std::condition_variable job_cv_;

  std::vector<std::thread> workers_;
};

}  // namespace vbatt::util
