// Fixed-size thread pool and a deterministic parallel_for.
//
// The scheduler hot path (clique ranking, per-site capacity refresh) fans
// independent work items across cores. Determinism is part of the
// contract: parallel_for statically chunks the index range and every item
// writes only its own pre-assigned output slot, so parallel results are
// bit-identical to a serial run — the thread count changes wall-clock
// time, never the answer.
//
// Sizing: ThreadPool::shared() holds `default_threads() - 1` workers
// (the calling thread participates as the extra lane). default_threads()
// honors the VBATT_THREADS environment variable; VBATT_THREADS=1 (or a
// zero-worker pool) is the serial fallback — the body runs inline on the
// caller with no synchronization at all.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vbatt::util {

class ThreadPool {
 public:
  /// Spawn `n_workers` worker threads (0 = serial pool, no threads).
  explicit ThreadPool(std::size_t n_workers);

  /// Drains every queued task, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (the caller adds one more lane during
  /// parallel_for).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a fire-and-forget task. Runs inline when the pool has no
  /// workers. Exception-safe: a task that throws never terminates the
  /// process — the first exception is captured and rethrown by the next
  /// drain() (mirroring parallel_for's caller-rethrow contract).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished, then rethrow
  /// the first exception any of them threw (clearing it). Safe to call
  /// repeatedly; a no-op on an idle pool. Throws std::logic_error when
  /// called from one of this pool's own workers (it would deadlock:
  /// running_ counts the caller itself).
  void drain();

  /// Run `body(begin, end)` over static chunks of [0, n). The calling
  /// thread executes chunk 0 while workers take the rest; returns after
  /// every chunk finished. The first exception thrown by any chunk is
  /// rethrown on the caller (remaining chunks still complete). With no
  /// workers (or n too small to split) the body runs inline as
  /// body(0, n) — the serial fallback. Throws std::logic_error when
  /// called from one of this pool's own workers: the nested chunks would
  /// queue behind the tasks the workers are already stuck in, a silent
  /// deadlock once every worker nests. Nested parallelism needs a
  /// separate pool (or a serial inner loop).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Intended total parallelism: VBATT_THREADS if set (clamped to >= 1),
  /// otherwise std::thread::hardware_concurrency().
  static std::size_t default_threads();

  /// Parse a VBATT_THREADS-style value; nullptr/empty/garbage fall back
  /// to `fallback`. Exposed for tests.
  static std::size_t parse_threads(const char* value, std::size_t fallback);

  /// Process-wide pool sized from default_threads() (that many lanes
  /// including the caller). Serial when default_threads() <= 1.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
  /// Tasks popped from the queue but still running (guarded by mutex_).
  std::size_t running_ = 0;
  /// First exception thrown by a submitted task; rethrown by drain().
  std::exception_ptr submit_error_;
  std::vector<std::thread> workers_;
};

}  // namespace vbatt::util
