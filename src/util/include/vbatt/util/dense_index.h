// Flat map from dense non-negative integer ids to small values.
//
// Both VM-level engines key their hot per-VM state (current site, current
// server) by vm_id, and vm_ids are dense sequential integers. A flat
// vector makes every lookup and update one indexed access — no hashing,
// no per-placement node allocation — but the naive version grows with
// `resize(id + 1)` per new id, which is a reallocation-per-arrival on
// implementations that size resize exactly. DenseIndex owns the growth
// policy instead: reserve the workload's known id budget up front, grow
// geometrically past it, and read unmapped ids as a caller-chosen
// `missing` sentinel.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vbatt::util {

template <typename T>
class DenseIndex {
 public:
  /// `missing` is what unregistered ids read as (e.g. -1 for "no site").
  explicit DenseIndex(T missing = T{}) : missing_{missing} {}

  /// Pre-size for `n` ids (e.g. the workload's total VM budget) so the
  /// steady state never reallocates.
  void reserve(std::size_t n) { slots_.reserve(n); }

  /// Make `id` addressable and return its slot; newly created slots read
  /// as `missing`. Growth past the reserved capacity is geometric, so a
  /// sequential id stream stays amortized O(1) regardless of how the
  /// standard library sizes resize.
  T& ensure(std::int64_t id) {
    const auto i = static_cast<std::size_t>(id);
    if (i >= slots_.size()) {
      if (i >= slots_.capacity()) {
        slots_.reserve(std::max(i + 1, slots_.capacity() * 2));
      }
      slots_.resize(i + 1, missing_);
    }
    return slots_[i];
  }

  /// Value for `id`; ids past the end read as `missing` (never grows).
  T get(std::int64_t id) const {
    const auto i = static_cast<std::size_t>(id);
    return i < slots_.size() ? slots_[i] : missing_;
  }

  /// Unchecked access to an id known to be registered.
  T& operator[](std::int64_t id) {
    return slots_[static_cast<std::size_t>(id)];
  }
  const T& operator[](std::int64_t id) const {
    return slots_[static_cast<std::size_t>(id)];
  }

  /// True when `id` has a slot (registered via ensure or covered by a
  /// larger ensure).
  bool contains(std::int64_t id) const {
    return static_cast<std::size_t>(id) < slots_.size();
  }

  std::size_t size() const noexcept { return slots_.size(); }
  T missing() const { return missing_; }

 private:
  std::vector<T> slots_;
  T missing_;
};

}  // namespace vbatt::util
