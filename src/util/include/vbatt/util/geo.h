// Planar site coordinates.
//
// Renewable farms in one multi-VB region are a few hundred km apart; a flat
// local tangent plane in kilometers is accurate enough for the latency
// model and keeps the math trivial.
#pragma once

#include <cmath>

namespace vbatt::util {

struct GeoPoint {
  double x_km = 0.0;
  double y_km = 0.0;
};

inline double distance_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double dx = a.x_km - b.x_km;
  const double dy = a.y_km - b.y_km;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace vbatt::util
