// Monotonic chunked arena for write-once hot data.
//
// The fleet engine interns one immutable int array per distinct
// allowed-site list and keeps millions of them alive for the whole run;
// individually heap-allocated vectors would scatter that read-mostly data
// across the heap and pay a malloc per list. The arena bump-allocates out
// of large chunks instead: allocation is a pointer increment, spans stay
// contiguous and cache-friendly, and everything is freed wholesale when
// the arena dies. Nothing is ever freed individually — only use it for
// data whose lifetime is the arena's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace vbatt::util {

class Arena {
 public:
  /// Chunks are at least `chunk_bytes`; oversized requests get a chunk of
  /// their own.
  explicit Arena(std::size_t chunk_bytes = std::size_t{1} << 20)
      : chunk_bytes_{chunk_bytes == 0 ? 1 : chunk_bytes} {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` objects of T. T must be trivially
  /// destructible: the arena never runs destructors.
  template <typename T>
  T* allocate(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is freed without running destructors");
    return static_cast<T*>(raw(n * sizeof(T), alignof(T)));
  }

  /// Copy `[first, first + n)` into the arena and return the stable copy.
  template <typename T>
  T* copy(const T* first, std::size_t n) {
    T* out = allocate<T>(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = first[i];
    return out;
  }

  /// Aligned raw storage; never returns nullptr (zero-byte requests get a
  /// unique valid pointer into the current chunk).
  void* raw(std::size_t bytes, std::size_t align) {
    if (chunks_.empty() || !fits(chunks_.back(), bytes, align)) {
      grow(bytes + align);
    }
    Chunk& chunk = chunks_.back();
    const std::size_t aligned = align_up(chunk.used, align);
    chunk.used = aligned + bytes;
    allocated_ += bytes;
    return chunk.data.get() + aligned;
  }

  /// Total bytes handed out (excludes alignment padding and chunk slack).
  std::size_t bytes_allocated() const noexcept { return allocated_; }
  std::size_t n_chunks() const noexcept { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t align_up(std::size_t offset, std::size_t align) {
    return (offset + align - 1) & ~(align - 1);
  }
  static bool fits(const Chunk& chunk, std::size_t bytes, std::size_t align) {
    const std::size_t aligned = align_up(chunk.used, align);
    return aligned <= chunk.size && chunk.size - aligned >= bytes;
  }
  void grow(std::size_t at_least) {
    const std::size_t size = at_least > chunk_bytes_ ? at_least : chunk_bytes_;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size, 0});
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_bytes_;
  std::size_t allocated_ = 0;
};

}  // namespace vbatt::util
