// Deterministic random number generation.
//
// Every stochastic component in the reproduction derives its stream from a
// single root seed through *named* children (`seed_for`). Two consequences:
// results are bit-reproducible across runs, and adding a new consumer of
// randomness never perturbs existing streams (unlike sharing one engine).
#pragma once

#include <cstdint>
#include <string_view>

namespace vbatt::util {

/// splitmix64 step; used both as a stream seeder and a string hasher mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive a child seed from (root, name, index). FNV-1a over the name mixed
/// through splitmix64 — stable across platforms and compiler versions.
constexpr std::uint64_t seed_for(std::uint64_t root, std::string_view name,
                                 std::uint64_t index = 0) noexcept {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  std::uint64_t s = root ^ h;
  (void)splitmix64(s);
  s ^= index * 0x9e3779b97f4a7c15ULL;
  (void)splitmix64(s);
  return s;
}

/// xoshiro256** engine with convenience distributions.
///
/// Not std::mt19937 because we want identical streams on every platform and
/// distribution implementations that are pinned by this codebase, not by the
/// standard library vendor.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Raw 64 uniform bits.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }
  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

  /// Standard normal via Box–Muller (fresh pair each call, no cached state,
  /// so interleaving with other draws stays reproducible).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean) noexcept;

  /// Log-normal: exp(Normal(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log) noexcept;

  /// Poisson-distributed count (inversion for small mean, PTRS otherwise).
  std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace vbatt::util
