// Cooperative shutdown flag for long-running drivers.
//
// The CLI and the control-plane service install SIGINT/SIGTERM handlers
// that set one process-wide atomic; the simulation loops poll it once per
// tick and break out cleanly, leaving partial results flushable. Library
// users that never call install_shutdown_handlers() see a flag that is
// permanently false, so batch behavior is untouched.
#pragma once

namespace vbatt::util {

/// Install SIGINT + SIGTERM handlers that set the shutdown flag. Safe to
/// call more than once.
void install_shutdown_handlers();

/// True once a handled signal has been delivered (or request_shutdown()
/// was called).
bool shutdown_requested() noexcept;

/// Programmatic trigger (tests; also usable from a service event).
void request_shutdown() noexcept;

/// Reset the flag (tests only — handlers stay installed).
void reset_shutdown_flag() noexcept;

/// The signal that triggered shutdown (0 if none / programmatic).
int shutdown_signal() noexcept;

/// Exit code drivers use for a signal-interrupted-but-flushed run; distinct
/// from success (0), usage errors (2), and script errors (3).
inline constexpr int kInterruptedExitCode = 40;

}  // namespace vbatt::util
