// Minimal CSV emission for benchmark outputs.
//
// Every bench binary can dump the series behind a paper figure as CSV so a
// reader can re-plot it; this writer keeps that dependency-free.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace vbatt::util {

/// Streams rows to a CSV file. Throws std::runtime_error if the file cannot
/// be opened; write errors surface via the stream's exception mask.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// Write one row; the value count must equal the column count.
  void row(std::initializer_list<double> values);
  void row(const std::vector<double>& values);

  /// Row with a leading string label column followed by numeric columns.
  void labeled_row(std::string_view label, const std::vector<double>& values);

  const std::string& path() const noexcept { return path_; }

 private:
  void write_values(const std::vector<double>& values, bool had_label);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace vbatt::util
