// Portable binary (de)serialization for durable state.
//
// The event log and fleet snapshots must be byte-stable across runs and
// platforms: a recovered service proves itself by re-serializing to the
// exact bytes an uninterrupted run produces. Everything is therefore
// written explicitly little-endian with fixed widths — no struct dumps,
// no host-order shortcuts. Doubles travel as their IEEE-754 bit patterns,
// so values round-trip bit-exactly.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vbatt::util::wire {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `size` bytes.
/// check("123456789") == 0xCBF43926. Table built on first use.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0) noexcept;

/// Append-only byte sink. All integers little-endian, fixed width.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw_le(v); }
  void u64(std::uint64_t v) { raw_le(v); }
  void i64(std::int64_t v) { raw_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    raw_le(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    out_.append(s.data(), s.size());
  }
  void bytes(const void* data, std::size_t size) {
    out_.append(static_cast<const char*>(data), size);
  }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& item) {
    u64(v.size());
    for (const T& x : v) item(*this, x);
  }
  void vec_f64(const std::vector<double>& v) {
    vec(v, [](Writer& w, double x) { w.f64(x); });
  }
  void vec_i64(const std::vector<std::int64_t>& v) {
    vec(v, [](Writer& w, std::int64_t x) { w.i64(x); });
  }
  void vec_int(const std::vector<int>& v) {
    vec(v, [](Writer& w, int x) { w.i64(x); });
  }
  void vec_u8(const std::vector<char>& v) {
    u64(v.size());
    out_.append(v.data(), v.size());
  }

  const std::string& data() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  template <typename T>
  void raw_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string out_;
};

/// Bounds-checked reader over a byte span. Throws std::runtime_error on
/// truncation — durable-state consumers turn that into a recovery decision
/// (drop the torn tail), never into UB.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_{data} {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(raw_le(4)); }
  std::uint64_t u64() { return raw_le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(raw_le(8)); }
  double f64() {
    const std::uint64_t bits = raw_le(8);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = checked_count(u64());
    const std::string_view s = take(n);
    return std::string{s};
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& item) {
    const std::uint64_t n = checked_count(u64());
    std::vector<T> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(item(*this));
    return v;
  }
  std::vector<double> vec_f64() {
    return vec<double>([](Reader& r) { return r.f64(); });
  }
  std::vector<std::int64_t> vec_i64() {
    return vec<std::int64_t>([](Reader& r) { return r.i64(); });
  }
  std::vector<int> vec_int() {
    return vec<int>([](Reader& r) { return static_cast<int>(r.i64()); });
  }
  std::vector<char> vec_u8() {
    const std::uint64_t n = checked_count(u64());
    const std::string_view s = take(n);
    return std::vector<char>{s.begin(), s.end()};
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }
  std::size_t position() const noexcept { return pos_; }

 private:
  std::string_view take(std::size_t n) {
    if (remaining() < n) {
      throw std::runtime_error{"wire::Reader: truncated input"};
    }
    const std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  std::uint64_t raw_le(std::size_t width) {
    const std::string_view s = take(width);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[i]))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t checked_count(std::uint64_t n) {
    if (n > remaining()) {
      throw std::runtime_error{"wire::Reader: count exceeds input"};
    }
    return n;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace vbatt::util::wire
