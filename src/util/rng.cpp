#include "vbatt/util/rng.h"

#include <cmath>

namespace vbatt::util {

double Rng::normal() noexcept {
  // Box–Muller; discard the second variate to keep the draw count per call
  // fixed (reproducibility when calls interleave with other distributions).
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::lognormal(double mu_log, double sigma_log) noexcept {
  return std::exp(normal(mu_log, sigma_log));
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // arrival-rate magnitudes used in the workload generator.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

}  // namespace vbatt::util
