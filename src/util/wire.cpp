#include "vbatt/util/wire.h"

#include <array>

namespace vbatt::util::wire {

namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace vbatt::util::wire
