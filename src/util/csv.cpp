#include "vbatt/util/csv.h"

#include <stdexcept>

namespace vbatt::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : path_{path}, out_{path}, columns_{columns.size()} {
  if (!out_) throw std::runtime_error{"CsvWriter: cannot open " + path};
  out_.exceptions(std::ofstream::badbit);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  row(std::vector<double>{values});
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != columns_) {
    throw std::invalid_argument{"CsvWriter: row width mismatch"};
  }
  write_values(values, /*had_label=*/false);
}

void CsvWriter::labeled_row(std::string_view label,
                            const std::vector<double>& values) {
  if (values.size() + 1 != columns_) {
    throw std::invalid_argument{"CsvWriter: labeled row width mismatch"};
  }
  out_ << label;
  write_values(values, /*had_label=*/true);
}

void CsvWriter::write_values(const std::vector<double>& values,
                             bool had_label) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0 || had_label) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

}  // namespace vbatt::util
