#include "vbatt/util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <stdexcept>

namespace vbatt::util {

namespace {

/// The pool whose worker_loop the current thread is running, if any. Set
/// once per worker thread; the blocking entry points compare against it
/// to fail fast instead of deadlocking (see assert_not_own_worker).
thread_local const ThreadPool* t_worker_pool = nullptr;

/// The pool whose parallel_for this thread is currently publishing (it
/// holds that pool's job_gate_). A re-entrant parallel_for from inside
/// one of the publisher's own chunks would self-deadlock on the gate, so
/// it degrades to the serial inline fallback instead — identical results
/// by the per-index-slot contract, just no extra fan-out.
thread_local const ThreadPool* t_job_publisher = nullptr;

/// A worker that calls parallel_for or drain on its own pool blocks on
/// work only the pool's (now occupied) workers could run: parallel_for
/// waits on a job whose lanes include the caller's own, and drain waits
/// for running_ to hit zero while the caller itself is counted in
/// running_. Both are silent deadlocks when every worker nests, so they
/// are rejected deterministically.
void assert_not_own_worker(const ThreadPool* pool, const char* what) {
  if (t_worker_pool == pool) {
    throw std::logic_error{
        std::string{"ThreadPool::"} + what +
        " called from inside one of this pool's own workers; nested "
        "blocking on the same pool deadlocks once every worker nests. "
        "Run the nested loop serially or use a separate pool."};
  }
}

constexpr std::uint64_t kIdxBits = 12;
constexpr std::uint64_t kIdxMask = (std::uint64_t{1} << kIdxBits) - 1;

/// Chunks per lane: over-chunking past the lane count lets fast lanes
/// steal tail work from slow ones; each extra chunk costs only one CAS.
constexpr std::size_t kChunksPerLane = 4;

/// Spin budget before a worker parks / the caller blocks on the job cv.
/// Yield periodically so a single-core host hands the CPU back to
/// whichever thread actually holds unfinished chunks.
constexpr int kSpinIters = 2048;
constexpr int kSpinYieldEvery = 16;

std::uint64_t pack_job(std::size_t n_chunks, std::size_t next) {
  return (static_cast<std::uint64_t>(n_chunks) << kIdxBits) |
         static_cast<std::uint64_t>(next);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t n_workers) {
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopping_.store(true, std::memory_order_relaxed);
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::job_available() const {
  const std::uint64_t w = job_word_.load(std::memory_order_acquire);
  return (w & kIdxMask) < ((w >> kIdxBits) & kIdxMask);
}

bool ThreadPool::try_claim(std::size_t& chunk) {
  std::uint64_t w = job_word_.load(std::memory_order_acquire);
  for (;;) {
    const std::uint64_t next = w & kIdxMask;
    const std::uint64_t chunks = (w >> kIdxBits) & kIdxMask;
    if (next >= chunks) return false;
    // On success the acquire half synchronizes with the publisher's
    // release-store, making the job descriptor fields visible. A stale
    // `w` can only win the CAS if it still equals the current word, in
    // which case `next` is the current job's next chunk — claims can
    // never leak across jobs.
    if (job_word_.compare_exchange_weak(w, w + 1, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      chunk = static_cast<std::size_t>(next);
      return true;
    }
  }
}

void ThreadPool::run_chunk(std::size_t chunk) {
  const std::size_t n = job_n_;
  const std::size_t chunks = job_chunks_;
  const std::size_t begin = chunk * n / chunks;
  const std::size_t end = (chunk + 1) * n / chunks;
  try {
    (*job_body_)(begin, end);
  } catch (...) {
    const std::lock_guard<std::mutex> lock{job_error_mutex_};
    if (!job_error_) job_error_ = std::current_exception();
  }
  // The error write above must precede this increment: the publisher
  // reads job_error_ unguarded after observing done == chunks.
  if (job_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
    // Last chunk may finish on a worker while the caller is parked; the
    // empty critical section pairs with the caller's predicate check.
    const std::lock_guard<std::mutex> lock{job_wait_mutex_};
    job_cv_.notify_all();
  }
}

bool ThreadPool::run_job_chunks() {
  bool any = false;
  std::size_t chunk = 0;
  while (try_claim(chunk)) {
    any = true;
    // Wake chain: pass the baton to one more sleeper while unclaimed
    // chunks remain, instead of the publisher waking everyone up front.
    if (job_available() && sleepers_.load(std::memory_order_relaxed) > 0) {
      const std::lock_guard<std::mutex> lock{mutex_};
      ready_.notify_one();
    }
    run_chunk(chunk);
  }
  return any;
}

bool ThreadPool::run_one_task() {
  if (pending_tasks_.load(std::memory_order_acquire) == 0) return false;
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
    pending_tasks_.fetch_sub(1, std::memory_order_relaxed);
    ++running_;
  }
  task();
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (--running_ == 0 && tasks_.empty()) idle_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    if (run_job_chunks()) continue;
    if (run_one_task()) continue;
    // Spin-then-park: barriers usually arrive back-to-back, so burn a
    // short budget polling before paying the futex round-trip.
    bool found = false;
    for (int spin = 0; spin < kSpinIters; ++spin) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (job_available() ||
          pending_tasks_.load(std::memory_order_relaxed) > 0) {
        found = true;
        break;
      }
      if ((spin & (kSpinYieldEvery - 1)) == kSpinYieldEvery - 1) {
        std::this_thread::yield();
      }
    }
    if (found) continue;
    std::unique_lock<std::mutex> lock{mutex_};
    ++sleepers_;
    ready_.wait(lock, [this] {
      return stopping_.load(std::memory_order_relaxed) || !tasks_.empty() ||
             job_available();
    });
    --sleepers_;
    // Drain the queue even when stopping: destruction must not drop
    // queued work (drain() callers are still waiting on it).
    if (stopping_.load(std::memory_order_relaxed) && tasks_.empty() &&
        !job_available()) {
      return;
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  // Guard every raw submission: a throwing task must surface on drain(),
  // never std::terminate the worker.
  auto guarded = [this, task = std::move(task)]() mutable {
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (!submit_error_) submit_error_ = std::current_exception();
    }
  };
  if (workers_.empty()) {
    guarded();
    return;
  }
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    tasks_.push(std::move(guarded));
    pending_tasks_.fetch_add(1, std::memory_order_release);
  }
  ready_.notify_one();
}

void ThreadPool::drain() {
  assert_not_own_worker(this, "drain");
  std::unique_lock<std::mutex> lock{mutex_};
  idle_.wait(lock, [this] { return tasks_.empty() && running_ == 0; });
  if (submit_error_) {
    std::exception_ptr error = std::move(submit_error_);
    submit_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  // Rejected even when n is small enough to run inline: whether the call
  // deadlocks must not depend on the data size.
  assert_not_own_worker(this, "parallel_for");
  if (n == 0) return;
  const std::size_t lanes = workers_.size() + 1;
  if (lanes == 1 || n == 1 || t_job_publisher == this) {
    body(0, n);
    return;
  }

  // One job in flight at a time; concurrent external callers queue here.
  const std::lock_guard<std::mutex> gate{job_gate_};
  struct PublisherScope {
    const ThreadPool* prev;
    explicit PublisherScope(const ThreadPool* pool) : prev{t_job_publisher} {
      t_job_publisher = pool;
    }
    ~PublisherScope() { t_job_publisher = prev; }
  } publisher_scope{this};
  const std::size_t chunks =
      std::min({n, lanes * kChunksPerLane, static_cast<std::size_t>(kIdxMask)});
  job_body_ = &body;
  job_n_ = n;
  job_chunks_ = chunks;
  job_done_.store(0, std::memory_order_relaxed);
  job_error_ = nullptr;
  job_word_.store(pack_job(chunks, 0), std::memory_order_release);
  // Wake at most one parked worker; claimants chain further wakeups. A
  // stale sleepers_ read only costs this job some parallelism — the
  // caller's claim loop below completes the job regardless.
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    const std::lock_guard<std::mutex> lock{mutex_};
    ready_.notify_one();
  }

  // Caller participation: claim until nothing is left. On a host where
  // workers never get scheduled in time this runs every chunk inline.
  std::size_t chunk = 0;
  while (try_claim(chunk)) run_chunk(chunk);

  if (job_done_.load(std::memory_order_acquire) != chunks) {
    for (int spin = 0;
         spin < kSpinIters && job_done_.load(std::memory_order_acquire) != chunks;
         ++spin) {
      if ((spin & (kSpinYieldEvery - 1)) == kSpinYieldEvery - 1) {
        std::this_thread::yield();
      }
    }
    if (job_done_.load(std::memory_order_acquire) != chunks) {
      std::unique_lock<std::mutex> lock{job_wait_mutex_};
      job_cv_.wait(lock, [this, chunks] {
        return job_done_.load(std::memory_order_acquire) == chunks;
      });
    }
  }
  if (job_error_) {
    std::exception_ptr error = std::move(job_error_);
    job_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::parse_threads(const char* value, std::size_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) return fallback;
  return static_cast<std::size_t>(parsed);
}

std::size_t ThreadPool::default_threads() {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return parse_threads(std::getenv("VBATT_THREADS"), hardware);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool{default_threads() - 1};
  return pool;
}

}  // namespace vbatt::util
