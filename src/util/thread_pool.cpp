#include "vbatt/util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <stdexcept>

namespace vbatt::util {

namespace {

/// The pool whose worker_loop the current thread is running, if any. Set
/// once per worker thread; the blocking entry points compare against it
/// to fail fast instead of deadlocking (see assert_not_own_worker).
thread_local const ThreadPool* t_worker_pool = nullptr;

/// A worker that calls parallel_for or drain on its own pool blocks on
/// work only the pool's (now occupied) workers could run: parallel_for
/// waits on chunks that sit in the queue behind the very tasks the
/// workers are stuck in, and drain waits for running_ to hit zero while
/// the caller itself is counted in running_. Both are silent deadlocks
/// when every worker nests, so they are rejected deterministically.
void assert_not_own_worker(const ThreadPool* pool, const char* what) {
  if (t_worker_pool == pool) {
    throw std::logic_error{
        std::string{"ThreadPool::"} + what +
        " called from inside one of this pool's own workers; nested "
        "blocking on the same pool deadlocks once every worker nests. "
        "Run the nested loop serially or use a separate pool."};
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t n_workers) {
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      // Drain the queue even when stopping: destruction must not drop
      // queued work (parallel_for callers are still waiting on it).
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++running_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (--running_ == 0 && tasks_.empty()) idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  // Guard every raw submission: a throwing task must surface on drain(),
  // never std::terminate the worker.
  auto guarded = [this, task = std::move(task)]() mutable {
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (!submit_error_) submit_error_ = std::current_exception();
    }
  };
  if (workers_.empty()) {
    guarded();
    return;
  }
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    tasks_.push(std::move(guarded));
  }
  ready_.notify_one();
}

void ThreadPool::drain() {
  assert_not_own_worker(this, "drain");
  std::unique_lock<std::mutex> lock{mutex_};
  idle_.wait(lock, [this] { return tasks_.empty() && running_ == 0; });
  if (submit_error_) {
    std::exception_ptr error = std::move(submit_error_);
    submit_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  // Rejected even when n is small enough to run inline: whether the call
  // deadlocks must not depend on the data size.
  assert_not_own_worker(this, "parallel_for");
  if (n == 0) return;
  const std::size_t lanes = workers_.size() + 1;
  if (lanes == 1 || n == 1) {
    body(0, n);
    return;
  }
  const std::size_t chunks = std::min(lanes, n);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;  // first `extra` chunks get +1

  struct State {
    std::size_t remaining;  // guarded by mutex
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;  // first exception wins, guarded by mutex
  };
  State state;
  state.remaining = chunks;

  const auto run_chunk = [&body, &state](std::size_t begin, std::size_t end) {
    std::exception_ptr error;
    try {
      body(begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    // Decrement and notify under the lock: the waiter may destroy State
    // the moment it observes remaining == 0, which it can only do after
    // this scope released the mutex.
    const std::lock_guard<std::mutex> lock{state.mutex};
    if (error && !state.error) state.error = std::move(error);
    if (--state.remaining == 0) state.done.notify_all();
  };

  std::size_t begin = base + (extra > 0 ? 1 : 0);  // chunk 0 is the caller's
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t width = base + (c < extra ? 1 : 0);
      const std::size_t end = begin + width;
      tasks_.push([run_chunk, begin, end] { run_chunk(begin, end); });
      begin = end;
    }
  }
  ready_.notify_all();

  run_chunk(0, base + (extra > 0 ? 1 : 0));

  std::unique_lock<std::mutex> lock{state.mutex};
  state.done.wait(lock, [&state] { return state.remaining == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

std::size_t ThreadPool::parse_threads(const char* value, std::size_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) return fallback;
  return static_cast<std::size_t>(parsed);
}

std::size_t ThreadPool::default_threads() {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return parse_threads(std::getenv("VBATT_THREADS"), hardware);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool{default_threads() - 1};
  return pool;
}

}  // namespace vbatt::util
