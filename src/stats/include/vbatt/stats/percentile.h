// Stored-sample percentile / CDF estimation.
//
// The paper reports results almost exclusively as percentiles (99th/75th
// power ratios, 99th/50th migration ratios) and CDFs (Figs 2b, 4b, 7); this
// type is the single implementation all of those share.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace vbatt::stats {

/// Collects samples and answers percentile / CDF queries.
///
/// Samples are sorted lazily on first query after a mutation; repeated
/// queries are O(1)/O(log n).
class Sampler {
 public:
  Sampler() = default;
  explicit Sampler(std::vector<double> samples)
      : samples_(std::move(samples)), sorted_{samples_.size() <= 1} {}

  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void add_all(const std::vector<double>& xs);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// p-th percentile, p in [0, 100], linear interpolation between order
  /// statistics (the "linear" / type-7 convention). Returns 0 when empty.
  double percentile(double p);

  double median() { return percentile(50.0); }

  /// Fraction of samples that equal zero exactly (paper's "zero values").
  double zero_fraction() const noexcept;

  /// Fraction of samples <= x (empirical CDF evaluated at x).
  double cdf_at(double x);

  /// Evaluate the empirical CDF at `points` x-positions spread between the
  /// min and max sample (log-spaced if `log_x` and min > 0). Returns (x, F).
  std::vector<std::pair<double, double>> cdf_points(std::size_t points,
                                                    bool log_x = false);

  /// A copy of the samples with zeros removed (Fig. 4b plots only the
  /// non-zero overheads).
  Sampler nonzero() const;

  const std::vector<double>& raw() const noexcept { return samples_; }

 private:
  void ensure_sorted();

  std::vector<double> samples_;
  bool sorted_{true};
};

}  // namespace vbatt::stats
