// Operations on equally-spaced numeric series.
//
// Free functions over std::vector<double>; a power trace, a forecast, and a
// migration-traffic history are all just series on the shared tick grid.
#pragma once

#include <cstddef>
#include <vector>

namespace vbatt::stats {

/// Element-wise sum of `a` and `b` (sizes must match).
std::vector<double> add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Series scaled by a constant.
std::vector<double> scale(const std::vector<double>& a, double factor);

/// Centered moving average with window `w` (clamped at the edges).
std::vector<double> moving_average(const std::vector<double>& a,
                                   std::size_t w);

/// Exponentially weighted moving average, smoothing factor alpha in (0, 1].
std::vector<double> ewma(const std::vector<double>& a, double alpha);

/// First differences: out[i] = a[i+1] - a[i]; size n-1.
std::vector<double> diff(const std::vector<double>& a);

/// Coefficient of variation of the series (stddev / mean).
double cov(const std::vector<double>& a) noexcept;

/// Mean absolute percentage error of `forecast` against `actual`, in percent.
/// Points where |actual| < `floor` are skipped (solar nights would otherwise
/// blow MAPE up to infinity; the ELIA methodology does the same).
double mape(const std::vector<double>& actual,
            const std::vector<double>& forecast, double floor = 1e-3);

/// Minimum over each non-overlapping window of `w` elements; the trailing
/// partial window (if any) also contributes. Used by the stable-energy
/// decomposition (§2.3: stable energy = window min × window length).
std::vector<double> window_min(const std::vector<double>& a, std::size_t w);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double correlation(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace vbatt::stats
