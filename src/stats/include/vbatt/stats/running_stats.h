// Single-pass summary statistics (Welford's algorithm).
#pragma once

#include <cstdint>
#include <limits>

namespace vbatt::stats {

/// Accumulates count / mean / variance / min / max in one pass with O(1)
/// state. Numerically stable for the long (3-month @ 15 min) series the
/// benchmarks produce.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Coefficient of variation (stddev / mean) — the paper's §2.3 metric.
  /// Returns +inf for zero mean with nonzero spread, 0 for empty input.
  double cov() const noexcept;

  /// Merge another accumulator (parallel reduction support).
  void merge(const RunningStats& other) noexcept;

 private:
  std::uint64_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace vbatt::stats
