// Selection-based quantiles (std::nth_element, expected O(n)).
//
// Sampler keeps a fully sorted copy because its CDF queries consume the
// whole order; callers that need a *single* quantile of a series they own
// should come through here instead — a one-off percentile does not need
// an O(n log n) sort. The interpolation convention is shared with
// Sampler::percentile (linear / "type-7"), so routing a caller through
// either path yields bit-identical values.
#pragma once

#include <cstddef>
#include <vector>

namespace vbatt::stats {

/// p-th percentile (p in [0, 100], clamped) of `xs` using nth_element;
/// linear interpolation between the two bracketing order statistics,
/// exactly as Sampler::percentile. Reorders `xs`. Returns 0 when empty.
double quantile_in_place(std::vector<double>& xs, double p);

/// The `index`-th order statistic (0-based) of `xs` via nth_element;
/// reorders `xs`. `index` is clamped to the last element. Returns 0 when
/// empty. This is the raw quantile refresh_capacity uses (index = n/4 for
/// the lower quartile), with no interpolation.
double order_statistic_in_place(std::vector<double>& xs, std::size_t index);

/// Shared interpolation formula over an already **sorted** series: the
/// single implementation behind both quantile_in_place and
/// Sampler::percentile, so the two stay bit-identical.
double interpolate_sorted(const std::vector<double>& sorted, double p);

}  // namespace vbatt::stats
